#include <gtest/gtest.h>

#include "core/optimizer.h"

namespace vcoadc::core {
namespace {

OptimizeOptions fast_opts() {
  OptimizeOptions o;
  o.slice_choices = {8, 16};
  o.osr_choices = {50, 75};
  o.n_samples = 1 << 12;
  return o;
}

TEST(Optimizer, FindsDesignForModestTarget) {
  OptimizeTarget t;
  t.min_sndr_db = 55.0;
  t.bandwidth_hz = 2e6;
  const auto res = optimize_spec(t, fast_opts());
  ASSERT_TRUE(res.best.has_value());
  EXPECT_GT(res.best_sndr_db, 55.0);
  EXPECT_GT(res.best_power_w, 0.0);
  EXPECT_TRUE(res.best->validate().empty());
  EXPECT_DOUBLE_EQ(res.best->bandwidth_hz, 2e6);
}

TEST(Optimizer, PicksMinimumPowerAmongMeeting) {
  OptimizeTarget t;
  t.min_sndr_db = 55.0;
  t.bandwidth_hz = 2e6;
  const auto res = optimize_spec(t, fast_opts());
  ASSERT_TRUE(res.best.has_value());
  for (const auto& cr : res.evaluated) {
    if (cr.meets) {
      EXPECT_GE(cr.power_w, res.best_power_w - 1e-12);
    }
  }
}

TEST(Optimizer, ImpossibleTargetReturnsEmpty) {
  OptimizeTarget t;
  t.min_sndr_db = 120.0;  // not reachable with first-order shaping here
  t.bandwidth_hz = 2e6;
  const auto res = optimize_spec(t, fast_opts());
  EXPECT_FALSE(res.best.has_value());
  // Every candidate was still evaluated and recorded.
  EXPECT_EQ(res.evaluated.size(), 4u);
}

TEST(Optimizer, TighterTargetCostsMorePower) {
  OptimizeTarget loose;
  loose.min_sndr_db = 50.0;
  loose.bandwidth_hz = 2e6;
  OptimizeTarget tight = loose;
  tight.min_sndr_db = 65.0;
  OptimizeOptions opts;
  opts.slice_choices = {4, 8, 16};
  opts.osr_choices = {32, 75, 150};
  opts.n_samples = 1 << 12;
  const auto r_loose = optimize_spec(loose, opts);
  const auto r_tight = optimize_spec(tight, opts);
  ASSERT_TRUE(r_loose.best.has_value());
  ASSERT_TRUE(r_tight.best.has_value());
  EXPECT_LE(r_loose.best_power_w, r_tight.best_power_w);
}

TEST(Optimizer, InvalidCandidatesSkippedNotCrashed) {
  OptimizeTarget t;
  t.node_nm = 180;         // slow node: high-OSR/high-slices rings invalid
  t.min_sndr_db = 55.0;
  t.bandwidth_hz = 2e6;
  OptimizeOptions opts;
  opts.slice_choices = {16, 32};
  opts.osr_choices = {75, 300};  // OSR 300 -> 1.2 GHz fs: unrealizable ring
  opts.n_samples = 1 << 12;
  const auto res = optimize_spec(t, opts);
  int invalid = 0;
  for (const auto& cr : res.evaluated) invalid += !cr.valid;
  EXPECT_GT(invalid, 0);
}

}  // namespace
}  // namespace vcoadc::core
