// Stage-graph flow tests: cache-key determinism and sensitivity,
// cached-vs-fresh bit-identity, structured synthesis diagnostics, LRU
// bounds, ExecContext forwarding, trace rendering and concurrent cache
// access from batch workers.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "core/adc.h"
#include "core/artifact_cache.h"
#include "core/batch.h"
#include "core/datasheet.h"
#include "core/flow.h"
#include "core/monte_carlo.h"
#include "netlist/generator.h"
#include "util/trace.h"

namespace {

using namespace vcoadc;
using core::AdcSpec;
using core::ArtifactCache;
using core::CacheKey;
using core::ExecContext;
using core::Flow;
using core::SimulationOptions;

AdcSpec small_spec() {
  AdcSpec spec = AdcSpec::paper_40nm();
  spec.num_slices = 4;
  return spec;
}

SimulationOptions small_sim() {
  SimulationOptions sim;
  sim.n_samples = 1 << 10;
  return sim;
}

// ---------------------------------------------------------------------------
// Cache keys

TEST(FlowKeys, StableAcrossProcesses) {
  // Golden values pinned from an independent process: the key is a pure
  // function of the serialized fields, so a key that matches here matches
  // in every process (no address, iteration-order or ASLR leakage).
  const AdcSpec spec = AdcSpec::paper_40nm();
  EXPECT_EQ(core::tech_library_key(spec).hex(),
            "f7538add10e2970ff28f500c2fc3faab");
  EXPECT_EQ(core::netlist_key(spec).hex(),
            "3e817309c55ff650f37e9134880437ba");
  EXPECT_EQ(core::sim_run_key(spec, SimulationOptions{}).hex(),
            "25f0bdd5837936c782b7e95ed49d0fb3");
  EXPECT_EQ(core::synthesis_key(spec, {}).hex(),
            "31bdec3e5c757d4aafaeb26f5fc31bac");
}

TEST(FlowKeys, DeterministicForEqualInputs) {
  const AdcSpec a = AdcSpec::paper_40nm();
  const AdcSpec b = AdcSpec::paper_40nm();
  EXPECT_EQ(core::netlist_key(a), core::netlist_key(b));
  EXPECT_EQ(core::sim_run_key(a, small_sim()),
            core::sim_run_key(b, small_sim()));
  EXPECT_EQ(core::synthesis_key(a, {}), core::synthesis_key(b, {}));
}

TEST(FlowKeys, EverySpecFieldChangesSimKey) {
  const AdcSpec base = AdcSpec::paper_40nm();
  const SimulationOptions sim;
  const CacheKey k0 = core::sim_run_key(base, sim);

  std::vector<AdcSpec> variants;
  auto vary = [&](auto mutate) {
    AdcSpec s = base;
    mutate(s);
    variants.push_back(s);
  };
  vary([](AdcSpec& s) { s.node_nm = 180; });
  vary([](AdcSpec& s) { s.num_slices = 4; });
  vary([](AdcSpec& s) { s.fs_hz *= 2; });
  vary([](AdcSpec& s) { s.bandwidth_hz *= 2; });
  vary([](AdcSpec& s) { s.loop_gain = 0.5; });
  vary([](AdcSpec& s) { s.dac_fragments = 3; });
  vary([](AdcSpec& s) { s.vco_center_over_fs = 3.1; });
  vary([](AdcSpec& s) { s.with_nonidealities = false; });
  vary([](AdcSpec& s) { s.pvt.process = 1.2; });
  vary([](AdcSpec& s) { s.pvt.voltage = 0.9; });
  vary([](AdcSpec& s) { s.pvt.temperature_k = 398; });
  vary([](AdcSpec& s) { s.seed = 77; });

  std::set<std::string> seen{k0.hex()};
  for (const AdcSpec& s : variants) {
    const CacheKey k = core::sim_run_key(s, sim);
    EXPECT_NE(k, k0);
    // Also pairwise distinct: no two variants alias.
    EXPECT_TRUE(seen.insert(k.hex()).second);
  }
}

TEST(FlowKeys, EverySimOptionChangesSimKey) {
  const AdcSpec spec = AdcSpec::paper_40nm();
  const SimulationOptions base;
  const CacheKey k0 = core::sim_run_key(spec, base);

  std::vector<SimulationOptions> variants;
  auto vary = [&](auto mutate) {
    SimulationOptions s = base;
    mutate(s);
    variants.push_back(s);
  };
  vary([](SimulationOptions& s) { s.n_samples = 1 << 12; });
  vary([](SimulationOptions& s) { s.amplitude_dbfs = -6.0; });
  vary([](SimulationOptions& s) { s.fin_target_hz = 2e6; });
  vary([](SimulationOptions& s) {
    s.comparator = msim::ComparatorKind::kStrongArm;
  });
  vary([](SimulationOptions& s) { s.dac = msim::DacKind::kCurrentSteering; });
  vary([](SimulationOptions& s) { s.record_bits = true; });
  vary([](SimulationOptions& s) { s.wire_cap_f = 1e-13; });
  vary([](SimulationOptions& s) { s.seed = 42; });
  vary([](SimulationOptions& s) { s.pvt = core::PvtCorner{1.2, 1.0, 300}; });

  std::set<std::string> seen{k0.hex()};
  for (const SimulationOptions& s : variants) {
    EXPECT_TRUE(seen.insert(core::sim_run_key(spec, s).hex()).second);
  }
}

TEST(FlowKeys, SeedAndPvtOverridesCanonicalize) {
  // A per-run override and the same value baked into the spec are the same
  // run and must share a key (otherwise MC warm-ups would never hit).
  AdcSpec spec = AdcSpec::paper_40nm();
  SimulationOptions with_override;
  with_override.seed = 99;

  AdcSpec baked = spec;
  baked.seed = 99;
  EXPECT_EQ(core::sim_run_key(spec, with_override),
            core::sim_run_key(baked, SimulationOptions{}));

  SimulationOptions pvt_override;
  pvt_override.pvt = core::PvtCorner{1.2, 0.95, 398.0};
  AdcSpec pvt_baked = spec;
  pvt_baked.pvt = *pvt_override.pvt;
  EXPECT_EQ(core::sim_run_key(spec, pvt_override),
            core::sim_run_key(pvt_baked, SimulationOptions{}));
}

TEST(FlowKeys, GateLevelStageKeysAreDeterministicAndSensitive) {
  const AdcSpec a = AdcSpec::paper_40nm();
  const AdcSpec b = AdcSpec::paper_40nm();
  const core::GateSimOptions gopts;

  // Deterministic for equal inputs.
  EXPECT_EQ(core::hdl_emit_key(a), core::hdl_emit_key(b));
  EXPECT_EQ(core::gate_sim_key(a, gopts), core::gate_sim_key(b, gopts));

  // Distinct from every upstream stage key (no tag collisions).
  std::set<std::string> keys{core::netlist_key(a).hex(),
                             core::sim_run_key(a, gopts.sim).hex()};
  EXPECT_TRUE(keys.insert(core::hdl_emit_key(a).hex()).second);
  EXPECT_TRUE(keys.insert(core::gate_sim_key(a, gopts).hex()).second);

  // Netlist-shaping spec fields reach both keys through the upstream fold.
  AdcSpec more_slices = a;
  more_slices.num_slices = 8;
  EXPECT_NE(core::hdl_emit_key(more_slices), core::hdl_emit_key(a));
  EXPECT_NE(core::gate_sim_key(more_slices, gopts),
            core::gate_sim_key(a, gopts));

  // Every gate-sim option is result-affecting.
  core::GateSimOptions longer = gopts;
  longer.sim.n_samples = 1 << 10;
  EXPECT_NE(core::gate_sim_key(a, longer), core::gate_sim_key(a, gopts));
  core::GateSimOptions tol = gopts;
  tol.ring_period_tol = 0.5;
  EXPECT_NE(core::gate_sim_key(a, tol), core::gate_sim_key(a, gopts));
  core::GateSimOptions top = gopts;
  top.top = "ADC_slice";
  EXPECT_NE(core::gate_sim_key(a, top), core::gate_sim_key(a, gopts));

  // record_bits canonicalizes on: the stage always replays per-slice bits,
  // so a caller toggling the flag must land on the same artifact.
  core::GateSimOptions bits = gopts;
  bits.sim.record_bits = true;
  EXPECT_EQ(core::gate_sim_key(a, bits), core::gate_sim_key(a, gopts));
}

TEST(FlowKeys, SynthesisOptionsChangeTheRightStages) {
  const AdcSpec spec = AdcSpec::paper_40nm();
  synth::SynthesisOptions base;

  // Floorplan-stage knobs invalidate floorplan + everything downstream.
  synth::SynthesisOptions fp = base;
  fp.target_utilization = 0.12;
  EXPECT_NE(core::floorplan_key(spec, fp), core::floorplan_key(spec, base));
  EXPECT_NE(core::synthesis_key(spec, fp), core::synthesis_key(spec, base));

  // Placement-stage knobs leave the floorplan key untouched.
  synth::SynthesisOptions pl = base;
  pl.seed = 7;
  EXPECT_EQ(core::floorplan_key(spec, pl), core::floorplan_key(spec, base));
  EXPECT_NE(core::placement_key(spec, pl), core::placement_key(spec, base));

  // Route-stage knobs leave the placement key untouched.
  synth::SynthesisOptions rt = base;
  rt.detailed_route = false;
  EXPECT_EQ(core::placement_key(spec, rt), core::placement_key(spec, base));
  EXPECT_NE(core::synthesis_key(spec, rt), core::synthesis_key(spec, base));

  // Execution knobs (threads, trace) must not change any key.
  synth::SynthesisOptions ex = base;
  ex.threads = 8;
  util::Trace trace;
  ex.trace = &trace;
  EXPECT_EQ(core::synthesis_key(spec, ex), core::synthesis_key(spec, base));
}

// ---------------------------------------------------------------------------
// Cached-vs-fresh bit-identity

TEST(FlowCache, CachedSimRunBitIdenticalToFresh) {
  const AdcSpec spec = small_spec();
  const SimulationOptions sim = small_sim();

  ArtifactCache cache(32);
  ExecContext cached_ctx;
  cached_ctx.cache = &cache;
  ExecContext fresh_ctx;
  fresh_ctx.cache = nullptr;  // every stage recomputes

  Flow cached(cached_ctx);
  Flow fresh(fresh_ctx);

  const auto cold = cached.sim_run(spec, sim);   // populates the cache
  const auto warm = cached.sim_run(spec, sim);   // served from the cache
  const auto direct = fresh.sim_run(spec, sim);  // no cache at all

  // The warm result IS the cold object (shared, not rebuilt)...
  EXPECT_EQ(cold.get(), warm.get());
  EXPECT_GE(cache.stats().hits, 1u);

  // ...and matches an uncached compute bit for bit.
  ASSERT_EQ(cold->mod.output.size(), direct->mod.output.size());
  for (std::size_t i = 0; i < cold->mod.output.size(); ++i) {
    ASSERT_EQ(cold->mod.output[i], direct->mod.output[i]) << "sample " << i;
  }
  EXPECT_EQ(cold->sndr.sndr_db, direct->sndr.sndr_db);
  EXPECT_EQ(cold->power.total_w(), direct->power.total_w());
  EXPECT_EQ(cold->fom_fj, direct->fom_fj);
  EXPECT_EQ(cold->fin_hz, direct->fin_hz);
}

TEST(FlowCache, CachedSynthesisBitIdenticalToFresh) {
  const AdcSpec spec = small_spec();

  ArtifactCache cache(32);
  ExecContext cached_ctx;
  cached_ctx.cache = &cache;
  ExecContext fresh_ctx;
  fresh_ctx.cache = nullptr;

  const auto cold = Flow(cached_ctx).synthesis(spec);
  const auto warm = Flow(cached_ctx).synthesis(spec);
  const auto direct = Flow(fresh_ctx).synthesis(spec);

  EXPECT_EQ(cold.get(), warm.get());

  EXPECT_EQ(cold->floorplan_spec, direct->floorplan_spec);
  EXPECT_EQ(cold->stats.die_area_m2, direct->stats.die_area_m2);
  EXPECT_EQ(cold->routing.total_hpwl_m, direct->routing.total_hpwl_m);
  EXPECT_EQ(cold->detailed_routing.total_wirelength_m,
            direct->detailed_routing.total_wirelength_m);
  EXPECT_EQ(cold->drc.violations.size(), direct->drc.violations.size());
  ASSERT_TRUE(cold->layout && direct->layout);
  const auto& a = cold->layout->placement().cells;
  const auto& b = direct->layout->placement().cells;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].rect.x, b[i].rect.x) << "cell " << i;
    ASSERT_EQ(a[i].rect.y, b[i].rect.y) << "cell " << i;
  }

  // clone() (the AdcDesign::synthesize contract) deep-copies the artifact.
  const synth::SynthesisResult owned = cold->clone();
  EXPECT_EQ(owned.floorplan_spec, cold->floorplan_spec);
  ASSERT_TRUE(owned.layout);
  EXPECT_NE(owned.layout.get(), cold->layout.get());
  EXPECT_EQ(owned.layout->placement().cells.size(),
            cold->layout->placement().cells.size());
}

TEST(FlowCache, MonteCarloWarmRunBitIdentical) {
  const core::AdcDesign adc(small_spec());
  ArtifactCache cache(64);

  core::MonteCarloOptions opts;
  opts.runs = 5;
  opts.sim.n_samples = 1 << 10;
  opts.exec.cache = &cache;
  opts.exec.threads = 2;

  const auto cold = core::monte_carlo_sndr(adc, opts);
  const auto before = cache.stats();
  const auto warm = core::monte_carlo_sndr(adc, opts);
  const auto after = cache.stats();

  ASSERT_EQ(cold.sndr_db.size(), warm.sndr_db.size());
  for (std::size_t i = 0; i < cold.sndr_db.size(); ++i) {
    EXPECT_EQ(cold.sndr_db[i], warm.sndr_db[i]) << "run " << i;
  }
  // The warm batch added no misses — every draw came from the cache.
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_GE(after.hits, before.hits + 5);
}

TEST(FlowCache, SharedAcrossDriversBuildsNetlistOnce) {
  // The tentpole property: MC + corners + a datasheet over the same spec
  // share one TechLibrary and one Netlist build.
  const AdcSpec spec = small_spec();
  ArtifactCache cache(128);
  ExecContext ctx;
  ctx.cache = &cache;

  const core::AdcDesign adc(spec, ctx);

  core::MonteCarloOptions mc;
  mc.runs = 3;
  mc.sim.n_samples = 1 << 10;
  mc.exec = ctx;
  core::monte_carlo_sndr(adc, mc);
  core::corner_sweep(adc, ctx, 1 << 10);

  core::DatasheetOptions ds;
  ds.n_samples = 1 << 10;
  ds.exec = ctx;
  core::generate_datasheet(spec, ds);

  // Count the Netlist-stage builds: exactly one miss for its key means the
  // library+netlist were built once and shared by every driver.
  const auto key = core::netlist_key(spec);
  bool hit = false;
  cache.get_or_build<core::DesignBundle>(
      key,
      []() {
        ADD_FAILURE() << "netlist artifact should already be resident";
        return std::make_shared<const core::DesignBundle>();
      },
      {}, &hit);
  EXPECT_TRUE(hit);
}

// ---------------------------------------------------------------------------
// Structured synthesis diagnostics

TEST(FlowDiagnostics, CorruptedNetlistReportsInsteadOfAborting) {
  const AdcSpec spec = small_spec();
  auto lib = std::make_unique<netlist::CellLibrary>(
      netlist::make_standard_library(spec.tech_node()));
  netlist::add_resistor_cells(*lib, spec.tech_node());
  netlist::GeneratorConfig gen;
  gen.num_slices = spec.num_slices;
  gen.dac_fragments = spec.dac_fragments;
  netlist::Design design = netlist::build_adc_design(*lib, gen);

  // Deliberately corrupt the top module: point an instance at a master
  // that exists nowhere, the classic hand-edited-netlist mistake.
  auto& instances = design.at(design.top()).instances();
  ASSERT_FALSE(instances.empty());
  const std::string victim = instances.front().name;
  instances.front().master = "NO_SUCH_CELL";

  const synth::SynthesisResult result = synth::synthesize(design, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.layout, nullptr);
  ASSERT_FALSE(result.diagnostics.empty());
  const synth::FlowDiagnostic& d = result.diagnostics.front();
  EXPECT_EQ(d.stage, "validate");
  EXPECT_FALSE(d.reason.empty());
  // The offending instance is attributed by name.
  bool attributed = false;
  for (const auto& diag : result.diagnostics) {
    if (diag.item.find(victim) != std::string::npos) attributed = true;
  }
  EXPECT_TRUE(attributed);

  // A clean design still reports ok() with no diagnostics.
  netlist::Design good = netlist::build_adc_design(*lib, gen);
  const synth::SynthesisResult clean = synth::synthesize(good, {});
  EXPECT_TRUE(clean.ok());
  EXPECT_TRUE(clean.diagnostics.empty());
  ASSERT_NE(clean.layout, nullptr);
}

// ---------------------------------------------------------------------------
// Cache mechanics

TEST(ArtifactCacheTest, LruEvictionBoundsResidency) {
  ArtifactCache cache(2);
  for (int i = 0; i < 5; ++i) {
    core::KeyHasher h;
    h.i64(i);
    cache.get_or_build<int>(h.digest(), [i]() {
      return std::make_shared<const int>(i);
    });
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 5u);
  EXPECT_EQ(st.evictions, 3u);
  EXPECT_LE(st.entries, 2u);

  // The most recently inserted key is still resident...
  core::KeyHasher h4;
  h4.i64(4);
  bool hit = false;
  cache.get_or_build<int>(h4.digest(), []() {
    return std::make_shared<const int>(-1);
  }, {}, &hit);
  EXPECT_TRUE(hit);

  // ...and the oldest was evicted (rebuilds).
  core::KeyHasher h0;
  h0.i64(0);
  hit = true;
  auto v = cache.get_or_build<int>(h0.digest(), []() {
    return std::make_shared<const int>(100);
  }, {}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(*v, 100);
}

// ---------------------------------------------------------------------------
// Tracing

TEST(FlowTrace, SpansNestAndRenderBothWays) {
  util::Trace trace;
  ExecContext ctx;
  ArtifactCache cache(32);
  ctx.cache = &cache;
  ctx.trace = &trace;

  Flow flow(ctx);
  flow.report(small_spec(), small_sim());

  const auto events = trace.events();
  ASSERT_FALSE(events.empty());
  int report_idx = -1, route_idx = -1, sim_idx = -1, netlist_idx = -1;
  for (int i = 0; i < static_cast<int>(events.size()); ++i) {
    if (events[i].name == "report") report_idx = i;
    if (events[i].name == "route") route_idx = i;
    if (events[i].name == "sim_run") sim_idx = i;
    if (events[i].name == "netlist") netlist_idx = i;
  }
  ASSERT_GE(report_idx, 0);
  ASSERT_GE(route_idx, 0);
  ASSERT_GE(sim_idx, 0);
  ASSERT_GE(netlist_idx, 0);
  // The Route and SimRun stages are children of the report span.
  EXPECT_EQ(events[route_idx].parent, report_idx);
  EXPECT_EQ(events[sim_idx].parent, report_idx);
  // Every flow stage records its cache disposition (a first run: misses).
  EXPECT_EQ(events[route_idx].cache_hit, 0);
  EXPECT_GT(events[route_idx].bytes, 0u);

  const std::string tree = trace.render_tree();
  EXPECT_NE(tree.find("report"), std::string::npos);
  EXPECT_NE(tree.find("route"), std::string::npos);
  const std::string jsonl = trace.render_jsonl();
  EXPECT_NE(jsonl.find("\"name\":\"sim_run\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"cache_hit\":"), std::string::npos);

  // A warm re-run of the same report is all hits.
  util::Trace warm_trace;
  ctx.trace = &warm_trace;
  Flow(ctx).report(small_spec(), small_sim());
  for (const auto& e : warm_trace.events()) {
    if (e.name == "route" || e.name == "sim_run") {
      EXPECT_EQ(e.cache_hit, 1) << e.name;
    }
  }
}

TEST(FlowTrace, SameNameSiblingsCollapseInTree) {
  util::Trace trace;
  for (int i = 0; i < 4; ++i) {
    util::TraceSpan span(&trace, "sim_run");
    span.cache(i > 0, 100);
  }
  const std::string tree = trace.render_tree();
  EXPECT_NE(tree.find("x4"), std::string::npos);
  // One collapsed line, not four.
  EXPECT_EQ(tree.find("sim_run"), tree.rfind("sim_run"));
}

// ---------------------------------------------------------------------------
// Concurrency

TEST(FlowConcurrency, BatchWorkersShareSingleFlightBuilds) {
  // Many workers request the same sim over an empty cache: single-flight
  // must build it exactly once, and everyone gets the same object.
  const AdcSpec spec = small_spec();
  const core::AdcDesign adc(spec);
  ArtifactCache cache(32);
  ExecContext ctx;
  ctx.cache = &cache;
  ctx.threads = 4;
  Flow flow(ctx);

  const SimulationOptions sim = small_sim();
  core::BatchRunner runner(4);
  const auto runs = runner.map(16, [&](std::size_t, std::uint64_t) {
    return flow.sim_run(adc, sim);
  });

  for (const auto& r : runs) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), runs.front().get());
  }
  // One miss (the single build); the design was pre-built, so only the
  // SimRun stage touches this cache and every other request hits.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 16u - 1u);
}

TEST(FlowConcurrency, DistinctKeysBuildConcurrently) {
  ArtifactCache cache(64);
  ExecContext ctx;
  ctx.cache = &cache;
  Flow flow(ctx);
  const core::AdcDesign adc(small_spec());

  core::BatchRunner runner(4);
  const auto runs = runner.map(8, [&](std::size_t, std::uint64_t seed) {
    SimulationOptions sim = small_sim();
    sim.seed = seed;
    return flow.sim_run(adc, sim)->sndr.sndr_db;
  });
  // 8 distinct seeds -> 8 distinct artifacts, all resident.
  EXPECT_GE(cache.stats().misses, 8u);
  EXPECT_EQ(cache.stats().entries, 8u);

  // Serial reference run over a fresh cache must agree bit for bit.
  ArtifactCache cache2(64);
  ExecContext sctx;
  sctx.cache = &cache2;
  Flow sflow(sctx);
  core::BatchRunner serial(1);
  const auto ref = serial.map(8, [&](std::size_t, std::uint64_t seed) {
    SimulationOptions sim = small_sim();
    sim.seed = seed;
    return sflow.sim_run(adc, sim)->sndr.sndr_db;
  });
  ASSERT_EQ(runs.size(), ref.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i], ref[i]) << "seed " << i;
  }
}

}  // namespace
