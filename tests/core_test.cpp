#include <gtest/gtest.h>

#include <cmath>

#include "core/adc.h"
#include "core/adc_spec.h"
#include "core/migration.h"
#include "core/power_model.h"
#include "netlist/generator.h"
#include "util/units.h"

namespace vcoadc::core {
namespace {

TEST(AdcSpec, PaperOperatingPoints) {
  const AdcSpec s40 = AdcSpec::paper_40nm();
  EXPECT_DOUBLE_EQ(s40.fs_hz, 750e6);
  EXPECT_DOUBLE_EQ(s40.bandwidth_hz, 5e6);
  EXPECT_NEAR(s40.osr(), 75.0, 1e-9);
  const AdcSpec s180 = AdcSpec::paper_180nm();
  EXPECT_DOUBLE_EQ(s180.fs_hz, 250e6);
  EXPECT_DOUBLE_EQ(s180.bandwidth_hz, 1.4e6);
}

TEST(AdcSpec, ValidationAcceptsPaperPointsRejectsNonsense) {
  EXPECT_TRUE(AdcSpec::paper_40nm().validate().empty());
  EXPECT_TRUE(AdcSpec::paper_180nm().validate().empty());

  AdcSpec bad_node = AdcSpec::paper_40nm();
  bad_node.node_nm = 55;
  EXPECT_FALSE(bad_node.validate().empty());

  AdcSpec bad_slices = AdcSpec::paper_40nm();
  bad_slices.num_slices = 1;
  EXPECT_FALSE(bad_slices.validate().empty());

  AdcSpec nyquist = AdcSpec::paper_40nm();
  nyquist.bandwidth_hz = nyquist.fs_hz;  // not oversampled
  EXPECT_FALSE(nyquist.validate().empty());

  AdcSpec low_osr = AdcSpec::paper_40nm();
  low_osr.bandwidth_hz = low_osr.fs_hz / 8;  // OSR 4
  EXPECT_FALSE(low_osr.validate().empty());

  // Ring realizability: 750 MHz clock at 180 nm with 16 stages demands a
  // 2 GHz ring against a ~1.7 GHz limit -> rejected.
  AdcSpec too_fast = AdcSpec::paper_180nm();
  too_fast.fs_hz = 750e6;
  EXPECT_FALSE(too_fast.validate().empty());

  AdcSpec hot_loop = AdcSpec::paper_40nm();
  hot_loop.loop_gain = 10.0;
  EXPECT_FALSE(hot_loop.validate().empty());
}

TEST(AdcSpec, SimConfigDerivation) {
  const msim::SimConfig cfg = AdcSpec::paper_40nm().to_sim_config();
  EXPECT_DOUBLE_EQ(cfg.vdd, 1.1);       // 40 nm supply
  EXPECT_DOUBLE_EQ(cfg.vrefp, 1.1);
  EXPECT_DOUBLE_EQ(cfg.r_dac_ohms, 44000.0);  // four 11k fragments
  EXPECT_NEAR(cfg.r_input_ohms, 44000.0 / 16, 1e-9);
  EXPECT_GT(cfg.kvco_hz_per_v, 1e8);
  EXPECT_LT(cfg.kvco_hz_per_v, 5e9);
  EXPECT_GT(cfg.comparator_offset_sigma_v, 0.0);
}

TEST(AdcSpec, LoopGainLandsAtRequested) {
  for (double g : {0.5, 1.0, 2.0}) {
    AdcSpec spec = AdcSpec::paper_40nm();
    spec.loop_gain = g;
    msim::VcoDsmModulator mod(spec.to_sim_config());
    EXPECT_NEAR(mod.loop_gain_lsb_per_clock(), g, 0.02 * g);
  }
}

TEST(AdcSpec, FullScaleEqualsSupply) {
  // With the input bank mirroring the DAC bank, FS_diff == VREFP == VDD.
  AdcSpec spec = AdcSpec::paper_40nm();
  spec.with_nonidealities = false;  // exact without resistor mismatch draws
  msim::VcoDsmModulator mod(spec.to_sim_config());
  EXPECT_NEAR(mod.full_scale_diff(), 1.1, 1e-9);
}

TEST(AdcDesign, SimulateReachesPaperSndr) {
  // The headline Table 3 number: ~69.5 dB SNDR in 5 MHz at 40 nm. Accept a
  // band around it (the substrate is a behavioral model, not their PDK).
  AdcDesign adc(AdcSpec::paper_40nm());
  SimulationOptions opts;
  opts.n_samples = 1 << 15;  // shorter capture for test speed
  const RunResult res = adc.simulate(opts);
  EXPECT_GT(res.sndr.sndr_db, 64.0);
  EXPECT_LT(res.sndr.sndr_db, 80.0);
  EXPECT_NEAR(res.sndr.fundamental_dbfs, -3.0, 1.0);
}

TEST(AdcDesign, NoiseShapingTwentyDbPerDecade) {
  AdcDesign adc(AdcSpec::paper_40nm());
  SimulationOptions opts;
  opts.n_samples = 1 << 15;
  const RunResult res = adc.simulate(opts);
  EXPECT_NEAR(res.shaping.db_per_decade, 20.0, 6.0);
}

TEST(AdcDesign, BothNodesReachSimilarSndr) {
  // Table 3's central claim: the SAME architecture hits ~the same SNDR at
  // both nodes (69.5 dB in the paper).
  AdcDesign adc40(AdcSpec::paper_40nm());
  AdcDesign adc180(AdcSpec::paper_180nm());
  SimulationOptions o40;
  o40.n_samples = 1 << 15;
  SimulationOptions o180 = o40;
  o180.fin_target_hz = 250e3;  // the paper's 180 nm test tone
  const RunResult r40 = adc40.simulate(o40);
  const RunResult r180 = adc180.simulate(o180);
  EXPECT_GT(r40.sndr.sndr_db, 64.0);
  EXPECT_GT(r180.sndr.sndr_db, 64.0);
  EXPECT_NEAR(r40.sndr.sndr_db, r180.sndr.sndr_db, 6.0);
}

TEST(AdcDesign, PowerAndFomImproveWithScaling) {
  // Table 3 shapes: 40 nm wins power (~4x), FOM (>5x) at equal SNDR.
  AdcDesign adc40(AdcSpec::paper_40nm());
  AdcDesign adc180(AdcSpec::paper_180nm());
  SimulationOptions o40;
  o40.n_samples = 1 << 14;
  SimulationOptions o180 = o40;
  o180.fin_target_hz = 250e3;
  const RunResult r40 = adc40.simulate(o40);
  const RunResult r180 = adc180.simulate(o180);
  EXPECT_LT(r40.power.total_w(), r180.power.total_w() / 2.5);
  EXPECT_LT(r40.fom_fj, r180.fom_fj / 5.0);
  // Absolute ballparks (paper: 1.37 mW / 5.45 mW), generous factor-2 bands.
  EXPECT_GT(r40.power.total_w(), 0.6e-3);
  EXPECT_LT(r40.power.total_w(), 3.0e-3);
  EXPECT_GT(r180.power.total_w(), 2.5e-3);
  EXPECT_LT(r180.power.total_w(), 12e-3);
}

TEST(AdcDesign, PowerBreakdownMatchesFig15Shape) {
  // Fig. 15: digital fraction 73% at 40 nm, 88% at 180 nm - the digital
  // share must be large at both and LARGER at the older node.
  AdcDesign adc40(AdcSpec::paper_40nm());
  AdcDesign adc180(AdcSpec::paper_180nm());
  SimulationOptions o40;
  o40.n_samples = 1 << 14;
  SimulationOptions o180 = o40;
  o180.fin_target_hz = 250e3;
  const RunResult r40 = adc40.simulate(o40);
  const RunResult r180 = adc180.simulate(o180);
  EXPECT_GT(r40.power.digital_fraction(), 0.55);
  EXPECT_LT(r40.power.digital_fraction(), 0.88);
  EXPECT_GT(r180.power.digital_fraction(), 0.78);
  EXPECT_GT(r180.power.digital_fraction(), r40.power.digital_fraction());
}

TEST(AdcDesign, FullReportHasAreaAndCleanDrc) {
  AdcDesign adc(AdcSpec::paper_40nm());
  SimulationOptions opts;
  opts.n_samples = 1 << 13;
  const NodeReport report = adc.full_report(opts);
  EXPECT_TRUE(report.synthesis.drc.clean());
  EXPECT_GT(report.area_mm2, 1e-4);
  EXPECT_LT(report.area_mm2, 0.2);
  // Wire load got folded into the power model.
  EXPECT_GT(report.run.power.wire_w, 0.0);
}

TEST(AdcDesign, AreaRatioBetweenNodesInPaperBallpark) {
  // Table 3: 0.151 / 0.012 = 12.6x. Accept 6x..25x from our geometry model.
  AdcDesign adc40(AdcSpec::paper_40nm());
  AdcDesign adc180(AdcSpec::paper_180nm());
  const auto r40 = adc40.synthesize();
  const auto r180 = adc180.synthesize();
  const double ratio = r180.stats.die_area_m2 / r40.stats.die_area_m2;
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 25.0);
}

TEST(AdcDesign, LowAmplitudeInputHasNoIdleTones) {
  // Fig. 18: 10 mV input, "no idle tones are observed".
  AdcDesign adc(AdcSpec::paper_40nm());
  SimulationOptions opts;
  opts.n_samples = 1 << 15;
  opts.amplitude_dbfs = util::db_amplitude(0.010 / (1.1 / 2));  // 10 mV amp
  const RunResult res = adc.simulate(opts);
  EXPECT_TRUE(res.idle_tones.empty())
      << "found " << res.idle_tones.size() << " idle tones, first at "
      << (res.idle_tones.empty() ? 0.0 : res.idle_tones[0].freq_hz);
}

TEST(PowerModel, WireCapAddsPower) {
  AdcDesign adc(AdcSpec::paper_40nm());
  SimulationOptions no_wire;
  no_wire.n_samples = 1 << 12;
  SimulationOptions wired = no_wire;
  wired.wire_cap_f = 1e-12;
  const RunResult a = adc.simulate(no_wire);
  const RunResult b = adc.simulate(wired);
  EXPECT_GT(b.power.total_w(), a.power.total_w());
  EXPECT_DOUBLE_EQ(a.power.wire_w, 0.0);
}

TEST(PowerModel, ComponentsAllPositive) {
  AdcDesign adc(AdcSpec::paper_40nm());
  SimulationOptions opts;
  opts.n_samples = 1 << 12;
  const RunResult res = adc.simulate(opts);
  EXPECT_GT(res.power.vco_w, 0.0);
  EXPECT_GT(res.power.sampling_w, 0.0);
  EXPECT_GT(res.power.dac_drive_w, 0.0);
  EXPECT_GT(res.power.buffer_sw_w, 0.0);
  EXPECT_GT(res.power.dac_static_w, 0.0);
  EXPECT_GT(res.power.buffer_bias_w, 0.0);
  EXPECT_GT(res.power.leakage_w, 0.0);
}

TEST(AdcDesign, NetlistMatchesSimConfigResistorNetwork) {
  // The behavioral model and the generated netlist must describe the SAME
  // feedback network: R_dac = dac_fragments series RES11K per slice/side,
  // input bank = num_slices parallel chains per side.
  const AdcSpec spec = AdcSpec::paper_40nm();
  AdcDesign adc(spec);
  const auto stats = adc.netlist().stats();
  const int per_chain = spec.dac_fragments;
  const int expected =
      2 * spec.num_slices * per_chain      // DAC resistors (both sides)
      + 2 * spec.num_slices * per_chain;   // input banks (both sides)
  EXPECT_EQ(stats.resistors, expected);
  // And the simulator derives exactly that network.
  const msim::SimConfig cfg = spec.to_sim_config();
  EXPECT_DOUBLE_EQ(cfg.r_dac_ohms, 11000.0 * per_chain);
  EXPECT_DOUBLE_EQ(cfg.r_input_ohms, cfg.r_dac_ohms / spec.num_slices);
}

TEST(Migration, IdentityWhenLibrariesMatch) {
  AdcDesign adc(AdcSpec::paper_40nm());
  const auto& lib180 = netlist::make_standard_library(
      tech::TechDatabase::standard().at(180));
  netlist::CellLibrary target = lib180;
  netlist::add_resistor_cells(target, tech::TechDatabase::standard().at(180));
  const MigrationResult res = migrate_design(adc.netlist(), target);
  EXPECT_TRUE(res.remapped.empty());
  EXPECT_TRUE(res.unmappable.empty());
  EXPECT_GT(res.exact_matches, 0);
  EXPECT_TRUE(res.design.validate().empty());
}

TEST(Migration, NearestSizeMappingIntoSparseLibrary) {
  // Target library missing X4 cells: NOR3X4 must land on NOR3X2.
  AdcDesign adc(AdcSpec::paper_40nm());
  const tech::TechNode node180 = tech::TechDatabase::standard().at(180);
  netlist::CellLibrary sparse("sparse_180");
  const netlist::CellLibrary full180 = netlist::make_standard_library(node180);
  for (const auto& cell : full180.cells()) {
    // Keep the clock buffer (sole drive in its class); drop other X4+ cells.
    if (cell.drive < 4 || cell.function == "clkbuf") sparse.add(cell);
  }
  netlist::add_resistor_cells(sparse, node180);
  const MigrationResult res = migrate_design(adc.netlist(), sparse);
  EXPECT_GT(res.nearest_matches, 0);
  bool found = false;
  for (const auto& rec : res.remapped) {
    if (rec.from_cell == "NOR3X4") {
      EXPECT_EQ(rec.to_cell, "NOR3X2");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(res.design.validate().empty());
}

TEST(Migration, MigratedDesignSynthesizesClean) {
  AdcDesign adc(AdcSpec::paper_40nm());
  const tech::TechNode node180 = tech::TechDatabase::standard().at(180);
  netlist::CellLibrary target =
      netlist::make_standard_library(node180);
  netlist::add_resistor_cells(target, node180);
  const MigrationResult res = migrate_design(adc.netlist(), target);
  const auto synth_result = synth::synthesize(res.design, {});
  EXPECT_TRUE(synth_result.drc.clean());
}

}  // namespace
}  // namespace vcoadc::core
