#include <gtest/gtest.h>

#include "core/adc_spec.h"
#include "core/adc.h"
#include "netlist/cell_library.h"
#include "netlist/lef.h"
#include "netlist/liberty.h"
#include "synth/gdsii.h"
#include "tech/tech_node.h"

namespace vcoadc {
namespace {

const tech::TechNode& node40() {
  static const tech::TechNode n = tech::TechDatabase::standard().at(40);
  return n;
}

netlist::CellLibrary full_lib() {
  netlist::CellLibrary lib = netlist::make_standard_library(node40());
  netlist::add_resistor_cells(lib, node40());
  return lib;
}

TEST(Lef, WriterEmitsExpectedSections) {
  const auto lib = full_lib();
  const std::string lef = netlist::write_lef(lib);
  EXPECT_NE(lef.find("VERSION 5.8 ;"), std::string::npos);
  EXPECT_NE(lef.find("MACRO INVX1"), std::string::npos);
  EXPECT_NE(lef.find("MACRO RES11K"), std::string::npos);
  EXPECT_NE(lef.find("DIRECTION INPUT ;"), std::string::npos);
  EXPECT_NE(lef.find("USE POWER ;"), std::string::npos);
  EXPECT_NE(lef.find("PROPERTY resistance_ohms 11000.0 ;"),
            std::string::npos);
  EXPECT_NE(lef.find("END LIBRARY"), std::string::npos);
}

TEST(Lef, RoundTripIsLossless) {
  const auto lib = full_lib();
  const std::string lef = netlist::write_lef(lib);
  netlist::CellLibrary parsed("parsed");
  const auto res = netlist::parse_lef(lef, parsed);
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(parsed.cells().size(), lib.cells().size());
  for (const auto& orig : lib.cells()) {
    const netlist::StdCell* back = parsed.find(orig.name);
    ASSERT_NE(back, nullptr) << orig.name;
    EXPECT_EQ(back->function, orig.function);
    EXPECT_EQ(back->drive, orig.drive);
    EXPECT_NEAR(back->width_m, orig.width_m, 1e-10);
    EXPECT_NEAR(back->height_m, orig.height_m, 1e-10);
    EXPECT_NEAR(back->input_cap_f, orig.input_cap_f, 1e-21);
    EXPECT_NEAR(back->leakage_w, orig.leakage_w, 1e-15);
    EXPECT_EQ(back->is_resistor, orig.is_resistor);
    EXPECT_EQ(back->pins.size(), orig.pins.size());
    EXPECT_EQ(back->power_pin, orig.power_pin);
    EXPECT_EQ(back->ground_pin, orig.ground_pin);
    if (orig.is_resistor) {
      EXPECT_DOUBLE_EQ(back->resistance_ohms, orig.resistance_ohms);
    }
  }
}

TEST(Lef, ParserRejectsTruncatedMacro) {
  netlist::CellLibrary lib("x");
  const auto res = netlist::parse_lef("MACRO FOO\n  CLASS CORE ;\n", lib);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("unterminated"), std::string::npos);
}

TEST(Liberty, WriterEmitsTimingAndPower) {
  const auto lib = full_lib();
  const std::string lib_text = netlist::write_liberty(lib, node40());
  EXPECT_NE(lib_text.find("library (stdlib_40nm)"), std::string::npos);
  EXPECT_NE(lib_text.find("cell (NOR3X4)"), std::string::npos);
  EXPECT_NE(lib_text.find("intrinsic_rise"), std::string::npos);
  EXPECT_NE(lib_text.find("capacitance"), std::string::npos);
  EXPECT_NE(lib_text.find("cell_leakage_power"), std::string::npos);
}

TEST(Liberty, RoundTripPreservesElectricals) {
  const auto lib = full_lib();
  const std::string text = netlist::write_liberty(lib, node40());
  netlist::CellLibrary parsed("parsed");
  const auto res = netlist::parse_liberty(text, parsed);
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(parsed.cells().size(), lib.cells().size());
  for (const auto& orig : lib.cells()) {
    const netlist::StdCell* back = parsed.find(orig.name);
    ASSERT_NE(back, nullptr) << orig.name;
    EXPECT_EQ(back->function, orig.function);
    EXPECT_EQ(back->drive, orig.drive);
    EXPECT_NEAR(back->width_m, orig.width_m, 1e-10);
    EXPECT_NEAR(back->leakage_w, orig.leakage_w, 1e-15);
    EXPECT_EQ(back->pins.size(), orig.pins.size());
  }
}

TEST(Liberty, DelayModelMatchesDriveScaling) {
  const auto lib = full_lib();
  const double d1 = netlist::cell_intrinsic_delay(lib.at("INVX1"), node40());
  const double d4 = netlist::cell_intrinsic_delay(lib.at("INVX4"), node40());
  EXPECT_GT(d1, d4);  // stronger drive = faster
  EXPECT_NEAR(d1 / d4, 2.0, 1e-9);  // sqrt(4)
  EXPECT_DOUBLE_EQ(
      netlist::cell_intrinsic_delay(lib.at("RES11K"), node40()), 0.0);
}

TEST(Gdsii, WriteProducesValidHeaderAndTrailer) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  const auto synth_res = adc.synthesize();
  const auto bytes = synth::write_gdsii(*synth_res.layout, "vcoadc");
  ASSERT_GT(bytes.size(), 64u);
  // HEADER record: len=6, type 0x0002, version 600.
  EXPECT_EQ(bytes[0], 0x00);
  EXPECT_EQ(bytes[1], 0x06);
  EXPECT_EQ(bytes[2], 0x00);
  EXPECT_EQ(bytes[3], 0x02);
  // ENDLIB at the very end: len=4, type 0x0400.
  EXPECT_EQ(bytes[bytes.size() - 2], 0x04);
  EXPECT_EQ(bytes[bytes.size() - 1], 0x00);
}

TEST(Gdsii, RoundTripStructureAndPlacement) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  const auto synth_res = adc.synthesize();
  const auto bytes = synth::write_gdsii(*synth_res.layout, "vcoadc");
  const auto parsed = synth::read_gdsii(bytes);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.library.name, "vcoadc");
  EXPECT_NEAR(parsed.library.meters_per_db, 1e-9, 1e-15);

  const synth::GdsStructure* top = parsed.library.find("TOP");
  ASSERT_NE(top, nullptr);
  // Every placed cell appears as an SREF at its placement position.
  EXPECT_EQ(top->srefs.size(), synth_res.layout->flat().size());
  for (std::size_t i = 0; i < top->srefs.size(); ++i) {
    const auto& sref = top->srefs[i];
    const auto& pc = synth_res.layout->placement().cells[i];
    EXPECT_EQ(sref.structure, synth_res.layout->flat()[i].cell->name);
    EXPECT_NEAR(sref.x * parsed.library.meters_per_db, pc.rect.x, 1e-9);
    EXPECT_NEAR(sref.y * parsed.library.meters_per_db, pc.rect.y, 1e-9);
  }
  // Die + 10 regions as boundaries.
  EXPECT_EQ(top->boundaries.size(),
            1 + synth_res.layout->floorplan().regions.size());
  // Each referenced master exists as a structure with its outline box.
  const synth::GdsStructure* inv = parsed.library.find("INVX1");
  ASSERT_NE(inv, nullptr);
  ASSERT_EQ(inv->boundaries.size(), 1u);
  EXPECT_EQ(inv->boundaries[0].xy.size(), 5u);  // closed rectangle
}

TEST(Gdsii, Real8EncodingSurvivesUnitsRoundTrip) {
  // UNITS carries two excess-64 reals; the values must survive exactly
  // enough to recover nanometre DB units.
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  const auto synth_res = adc.synthesize();
  const auto bytes = synth::write_gdsii(*synth_res.layout, "u");
  const auto parsed = synth::read_gdsii(bytes);
  ASSERT_TRUE(parsed.ok);
  EXPECT_NEAR(parsed.library.user_unit, 1e-3, 1e-9);
  EXPECT_NEAR(parsed.library.meters_per_db / 1e-9, 1.0, 1e-6);
}

TEST(Gdsii, ReaderRejectsTruncatedStream) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  const auto synth_res = adc.synthesize();
  auto bytes = synth::write_gdsii(*synth_res.layout, "u");
  bytes.resize(bytes.size() - 8);  // drop ENDLIB (and more)
  const auto parsed = synth::read_gdsii(bytes);
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("ENDLIB"), std::string::npos);
}

TEST(Gdsii, ReaderRejectsGarbage) {
  const std::vector<std::uint8_t> junk{1, 2, 3, 4, 5};
  const auto parsed = synth::read_gdsii(junk);
  EXPECT_FALSE(parsed.ok);
}

}  // namespace
}  // namespace vcoadc
