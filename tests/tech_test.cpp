#include <gtest/gtest.h>

#include "tech/scaling_model.h"
#include "tech/tech_node.h"

namespace vcoadc::tech {
namespace {

TEST(TechDatabase, ContainsPaperAnchors) {
  const auto& db = TechDatabase::standard();
  ASSERT_TRUE(db.find(500).has_value());
  ASSERT_TRUE(db.find(180).has_value());
  ASSERT_TRUE(db.find(40).has_value());
  ASSERT_TRUE(db.find(22).has_value());
  EXPECT_FALSE(db.find(55).has_value());
}

TEST(TechDatabase, Fig1aAnchorsMatchPaper) {
  // "as the transistor feature size shrinks from 0.5um to 22nm, the
  //  transistor intrinsic gain drops from 180 to 6, and the supply voltage
  //  decreases from 5V to 1V."
  const auto& db = TechDatabase::standard();
  const TechNode n500 = db.at(500);
  const TechNode n22 = db.at(22);
  EXPECT_DOUBLE_EQ(n500.intrinsic_gain, 180.0);
  EXPECT_DOUBLE_EQ(n500.vdd, 5.0);
  EXPECT_DOUBLE_EQ(n22.intrinsic_gain, 6.0);
  EXPECT_DOUBLE_EQ(n22.vdd, 1.0);
}

TEST(TechDatabase, Fig1bAnchorsMatchPaper) {
  // "fT has increased from 16 GHz at 0.5um to 400 GHz at 22nm. The FO4
  //  delay has also improved from 140ps to 6ps."
  const auto& db = TechDatabase::standard();
  EXPECT_DOUBLE_EQ(db.at(500).ft_hz, 16e9);
  EXPECT_DOUBLE_EQ(db.at(22).ft_hz, 400e9);
  EXPECT_DOUBLE_EQ(db.at(500).fo4_delay_s, 140e-12);
  EXPECT_DOUBLE_EQ(db.at(22).fo4_delay_s, 6e-12);
}

TEST(TechDatabase, MonotoneTrends) {
  const auto& db = TechDatabase::standard();
  const auto& nodes = db.nodes();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    // L strictly decreasing (old -> new).
    EXPECT_LT(nodes[i].gate_length_nm, nodes[i - 1].gate_length_nm);
    // VD quantities non-increasing.
    EXPECT_LE(nodes[i].vdd, nodes[i - 1].vdd);
    EXPECT_LT(nodes[i].intrinsic_gain, nodes[i - 1].intrinsic_gain);
    // TD quantities strictly improving.
    EXPECT_GT(nodes[i].ft_hz, nodes[i - 1].ft_hz);
    EXPECT_LT(nodes[i].fo4_delay_s, nodes[i - 1].fo4_delay_s);
    // Geometry shrinks.
    EXPECT_LT(nodes[i].cell_row_height_m, nodes[i - 1].cell_row_height_m);
    EXPECT_LT(nodes[i].min_inv_input_cap_f, nodes[i - 1].min_inv_input_cap_f);
  }
}

TEST(TechNode, RingFrequencyScalesWithStages) {
  const TechNode n = TechDatabase::standard().at(40);
  const double f4 = n.max_ring_freq_hz(4);
  const double f8 = n.max_ring_freq_hz(8);
  EXPECT_NEAR(f4 / f8, 2.0, 1e-9);
  // 40 nm: stage delay ~3.2 ps, 8 stages -> ~20 GHz max ring rate.
  EXPECT_GT(f8, 5e9);
  EXPECT_LT(f8, 50e9);
}

TEST(TechNode, SwitchingEnergy) {
  const TechNode n = TechDatabase::standard().at(40);
  EXPECT_NEAR(n.switching_energy_j(1e-15), 1e-15 * 1.1 * 1.1, 1e-20);
}

TEST(TechNode, FortyVsOneEightyContrasts) {
  // The contrasts Table 3 depends on.
  const auto& db = TechDatabase::standard();
  const TechNode n40 = db.at(40);
  const TechNode n180 = db.at(180);
  EXPECT_LT(n40.fo4_delay_s, n180.fo4_delay_s / 4.0);  // much faster
  EXPECT_LT(n40.vdd, n180.vdd);                        // lower supply
  EXPECT_LT(n40.cell_row_height_m, n180.cell_row_height_m);
  EXPECT_GT(n180.cell_row_height_m / n40.cell_row_height_m, 3.0);
}

TEST(TechDatabase, InterpolateExactPassThrough) {
  const auto& db = TechDatabase::standard();
  const TechNode n = db.interpolate(180);
  EXPECT_DOUBLE_EQ(n.vdd, db.at(180).vdd);
}

TEST(TechDatabase, InterpolateBetweenNodes) {
  const auto& db = TechDatabase::standard();
  const TechNode n = db.interpolate(150);  // between 180 and 130
  EXPECT_LT(n.vdd, db.at(180).vdd);
  EXPECT_GT(n.vdd, db.at(130).vdd);
  EXPECT_LT(n.fo4_delay_s, db.at(180).fo4_delay_s);
  EXPECT_GT(n.fo4_delay_s, db.at(130).fo4_delay_s);
}

TEST(TechDatabase, InterpolateClampsOutOfRange) {
  const auto& db = TechDatabase::standard();
  EXPECT_DOUBLE_EQ(db.interpolate(1000).vdd, db.at(500).vdd);
  EXPECT_DOUBLE_EQ(db.interpolate(10).vdd, db.at(22).vdd);
}

TEST(ScalingModel, PowerLawFitRecoversExponent) {
  // y = 3 * L^2 exactly.
  std::vector<double> ls, ys;
  for (double l : {22.0, 40.0, 90.0, 180.0, 500.0}) {
    ls.push_back(l);
    ys.push_back(3.0 * l * l);
  }
  const TrendFit fit = fit_power_law(ls, ys);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
  EXPECT_NEAR(fit.coeff, 3.0, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(ScalingModel, Fo4TrendIsRoughlyLinearInL) {
  // FO4 delay scales roughly proportionally with L; exponent ~ 1.
  const auto& db = TechDatabase::standard();
  std::vector<double> ls, ys;
  for (const auto& n : db.nodes()) {
    ls.push_back(n.gate_length_nm);
    ys.push_back(n.fo4_delay_s);
  }
  const TrendFit fit = fit_power_law(ls, ys);
  EXPECT_GT(fit.exponent, 0.8);
  EXPECT_LT(fit.exponent, 1.2);
  EXPECT_GT(fit.r_squared, 0.97);
}

TEST(ScalingModel, DomainHeadroomDiverges) {
  // The paper's core observation: VD headroom collapses while TD resolution
  // grows, monotonically, as L shrinks.
  const auto rows = domain_headroom_trend(TechDatabase::standard());
  ASSERT_GT(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows.front().vd_headroom, 1.0);
  EXPECT_DOUBLE_EQ(rows.front().td_resolution, 1.0);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i].vd_headroom, rows[i - 1].vd_headroom);
    EXPECT_GT(rows[i].td_resolution, rows[i - 1].td_resolution);
  }
  // End-to-end: >100x divergence over the full range.
  EXPECT_LT(rows.back().vd_headroom, 0.01);
  EXPECT_GT(rows.back().td_resolution, 20.0);
}

TEST(ScalingModel, ClosestDriveStrength) {
  const std::vector<int> lib{1, 2, 4, 8};
  EXPECT_EQ(closest_drive_strength(3, lib), 4);  // log-space: 3 nearer 4
  EXPECT_EQ(closest_drive_strength(1, lib), 1);
  EXPECT_EQ(closest_drive_strength(16, lib), 8);
  EXPECT_EQ(closest_drive_strength(6, lib), 8);  // log2(6)=2.58 -> 8
}

}  // namespace
}  // namespace vcoadc::tech
