// ArtifactStore under concurrent writers and readers: the write-then-
// rename durability claim ("a record is either fully present or absent,
// never torn") is exactly what a race detector plus content checks can
// falsify. Self-contained over artifact_store + artifact_cache (CacheKey)
// and util/diag so it compiles standalone into the tsan./asan. ctest
// variants.
#include "core/artifact_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "util/diag.h"

namespace fs = std::filesystem;
using namespace vcoadc;

namespace {

struct TempStoreDir {
  fs::path path;
  explicit TempStoreDir(const std::string& tag) {
    path = fs::temp_directory_path() / ("vcoadc_store_conc_" + tag);
    fs::remove_all(path);
  }
  ~TempStoreDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

/// A payload whose every byte identifies its writer, so a torn mix of two
/// writers cannot masquerade as either.
std::vector<std::uint8_t> writer_payload(std::uint8_t writer,
                                         std::size_t n = 8192) {
  return std::vector<std::uint8_t>(n, writer);
}

bool is_uniform(const std::vector<std::uint8_t>& p, std::uint8_t* writer) {
  if (p.empty()) return false;
  for (std::uint8_t b : p) {
    if (b != p[0]) return false;
  }
  *writer = p[0];
  return true;
}

TEST(StoreConcurrencyTest, SameKeyWritersNeverTearTheRecord) {
  TempStoreDir dir("samekey");
  core::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.ok());
  const core::CacheKey key{0xaaaaull, 0xbbbbull};

  constexpr int kWriters = 8;
  constexpr int kRounds = 16;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> threads;
    threads.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&store, &key, w] {
        store.save(key, "conc", 1,
                   writer_payload(static_cast<std::uint8_t>(w + 1)));
      });
    }
    for (auto& t : threads) t.join();

    // Whoever won the final rename, the record must be whole: one
    // writer's payload end to end, never an interleaving.
    std::vector<std::uint8_t> loaded;
    util::DiagSink diags;
    ASSERT_TRUE(store.load(key, "conc", 1, &loaded, &diags))
        << diags.render();
    std::uint8_t writer = 0;
    ASSERT_TRUE(is_uniform(loaded, &writer));
    EXPECT_GE(writer, 1);
    EXPECT_LE(writer, kWriters);
    EXPECT_EQ(loaded.size(), 8192u);
  }
}

TEST(StoreConcurrencyTest, DistinctKeysWriteAndReadBackIndependently) {
  TempStoreDir dir("distinct");
  core::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.ok());

  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 24;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kKeysPerThread; ++i) {
        const core::CacheKey key{static_cast<std::uint64_t>(t),
                                 static_cast<std::uint64_t>(i)};
        const auto payload =
            writer_payload(static_cast<std::uint8_t>(t * 32 + i), 512);
        ASSERT_TRUE(store.save(key, "conc", 1, payload));
        std::vector<std::uint8_t> loaded;
        ASSERT_TRUE(store.load(key, "conc", 1, &loaded));
        ASSERT_EQ(loaded, payload);
      }
    });
  }
  for (auto& t : threads) t.join();

  const core::ArtifactStoreStats st = store.stats();
  EXPECT_EQ(st.writes, static_cast<std::uint64_t>(kThreads * kKeysPerThread));
  EXPECT_EQ(st.hits, static_cast<std::uint64_t>(kThreads * kKeysPerThread));
  EXPECT_EQ(st.write_failures, 0u);
}

TEST(StoreConcurrencyTest, ReadersDuringRewritesSeeOnlyWholeRecords) {
  TempStoreDir dir("rw");
  core::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.ok());
  const core::CacheKey key{0x1111ull, 0x2222ull};
  ASSERT_TRUE(store.save(key, "conc", 1, writer_payload(1)));

  std::atomic<bool> stop{false};
  std::atomic<int> good_loads{0};
  std::thread writer([&] {
    std::uint8_t w = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      w = static_cast<std::uint8_t>(w % 7 + 1);
      store.save(key, "conc", 1, writer_payload(w));
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        std::vector<std::uint8_t> loaded;
        // Absent is legal mid-rename on some filesystems; torn is not.
        if (store.load(key, "conc", 1, &loaded)) {
          std::uint8_t writer_id = 0;
          ASSERT_TRUE(is_uniform(loaded, &writer_id));
          ASSERT_GE(writer_id, 1);
          ASSERT_LE(writer_id, 7);
          good_loads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();
  EXPECT_GT(good_loads.load(), 0);
}

TEST(StoreConcurrencyTest, StatsStayCoherentUnderContention) {
  TempStoreDir dir("stats");
  core::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.ok());

  constexpr int kThreads = 6;
  constexpr int kOps = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kOps; ++i) {
        const core::CacheKey key{static_cast<std::uint64_t>(i % 5),
                                 static_cast<std::uint64_t>(t)};
        std::vector<std::uint8_t> loaded;
        store.load(key, "conc", 1, &loaded);  // may hit or miss
        store.save(key, "conc", 1, writer_payload(2, 64));
        (void)store.stats();  // concurrent snapshot must not race
      }
    });
  }
  for (auto& t : threads) t.join();

  const core::ArtifactStoreStats st = store.stats();
  EXPECT_EQ(st.writes, static_cast<std::uint64_t>(kThreads * kOps));
  EXPECT_EQ(st.hits + st.misses, static_cast<std::uint64_t>(kThreads * kOps));
  EXPECT_EQ(st.misses, st.absent + st.corrupt + st.version_skew);
}

/// Record bytes currently resident under `root` (final .art files only).
std::uint64_t resident_record_bytes(const fs::path& root) {
  std::uint64_t total = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file(ec) && it->path().extension() == ".art") {
      total += static_cast<std::uint64_t>(it->file_size(ec));
    }
  }
  return total;
}

// GC racing live writers and readers: eviction must never surface as a
// torn record — a concurrent reader sees either a whole record or a clean
// absent-miss (POSIX unlink keeps an opened record readable; an unopened
// one simply vanishes) — and once the writers stop, one more pass must
// leave the directory at or under the bound.
TEST(StoreConcurrencyTest, GcUnderConcurrentLoadNeverTearsAndBoundsTheDir) {
  TempStoreDir dir("gc_load");
  core::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.ok());

  constexpr std::uint64_t kMaxBytes = 64 * 1024;
  constexpr int kWriters = 3;
  constexpr int kKeysPerWriter = 40;
  constexpr std::size_t kPayload = 4096;

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Writers churn distinct keys, repeatedly pushing the store over the
  // bound while GC runs.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kKeysPerWriter; ++i) {
        const core::CacheKey key{static_cast<std::uint64_t>(w),
                                 static_cast<std::uint64_t>(i)};
        store.save(key, "conc", 1,
                   writer_payload(static_cast<std::uint8_t>(w * 64 + i % 61),
                                  kPayload));
      }
    });
  }
  // Readers: every successful load is a whole, single-writer record.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const core::CacheKey key{i % kWriters,
                                 (i / kWriters) % kKeysPerWriter};
        std::vector<std::uint8_t> loaded;
        if (store.load(key, "conc", 1, &loaded)) {
          std::uint8_t writer_id = 0;
          ASSERT_TRUE(is_uniform(loaded, &writer_id));
          ASSERT_EQ(loaded.size(), kPayload);
        }
        ++i;
      }
    });
  }
  // The GC thread hammers the bound the whole time.
  std::thread gc([&store, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      store.gc(kMaxBytes);
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  gc.join();

  // Quiescent pass: with no writers racing, the bound must hold exactly.
  const auto gr = store.gc(kMaxBytes);
  EXPECT_LE(gr.bytes_after, kMaxBytes);
  EXPECT_LE(resident_record_bytes(dir.path), kMaxBytes);

  // No torn records anywhere: every survivor still loads whole, and the
  // miss taxonomy shows zero corruption — eviction degrades to clean
  // absent-misses only.
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      const core::CacheKey key{static_cast<std::uint64_t>(w),
                               static_cast<std::uint64_t>(i)};
      std::vector<std::uint8_t> loaded;
      util::DiagSink diags;
      if (store.load(key, "conc", 1, &loaded, &diags)) {
        std::uint8_t writer_id = 0;
        ASSERT_TRUE(is_uniform(loaded, &writer_id));
      }
      EXPECT_EQ(diags.size(), 0u) << diags.render();
    }
  }
  const core::ArtifactStoreStats st = store.stats();
  EXPECT_EQ(st.corrupt, 0u);
  EXPECT_EQ(st.version_skew, 0u);
  EXPECT_EQ(st.misses, st.absent + st.corrupt + st.version_skew);
  // (write_failures is NOT asserted zero: gc's shard compaction may
  // legitimately race one save's fresh empty shard dir — the save
  // reports the failure and the record is simply absent, never torn.)
}

}  // namespace
