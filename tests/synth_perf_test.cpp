// Fast-path guarantees of the synth stack: the interned NetDb must be an
// exact replacement for the historical string-keyed net maps, the windowed
// A* must return Dijkstra-optimal path costs, and the parallel rip-up
// router must be bit-identical to the serial one.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <queue>
#include <set>

#include "core/adc.h"
#include "core/adc_spec.h"
#include "netlist/cell_library.h"
#include "netlist/generator.h"
#include "synth/drc.h"
#include "synth/floorplan.h"
#include "synth/maze_router.h"
#include "synth/net_db.h"
#include "synth/placer.h"
#include "synth/route_grid.h"
#include "synth/router.h"
#include "synth/synthesis_flow.h"
#include "tech/tech_node.h"
#include "util/rng.h"

namespace vcoadc::synth {
namespace {

std::vector<netlist::FlatInstance> flat_adc(double node_nm) {
  core::AdcDesign adc(node_nm == 40 ? core::AdcSpec::paper_40nm()
                                    : core::AdcSpec::paper_180nm());
  return adc.netlist().flatten();
}

/// The pre-NetDb view, rebuilt the way every stage used to build it: a
/// name-keyed map of sorted-unique member lists plus multiplicity counts.
struct StringMapReference {
  std::map<std::string, std::vector<int>> members;
  std::map<std::string, int> conn_count;

  explicit StringMapReference(
      const std::vector<netlist::FlatInstance>& flat) {
    for (int i = 0; i < static_cast<int>(flat.size()); ++i) {
      for (const auto& [pin, net] : flat[static_cast<std::size_t>(i)].conn) {
        if (netlist::is_supply_net(net)) continue;
        members[net].push_back(i);
        ++conn_count[net];
      }
    }
    for (auto& [name, cells] : members) {
      std::sort(cells.begin(), cells.end());
      cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    }
  }
};

TEST(NetDb, MatchesStringMapsAtBothNodes) {
  for (double nm : {40.0, 180.0}) {
    const auto flat = flat_adc(nm);
    const NetDb db(flat);
    const StringMapReference ref(flat);

    ASSERT_EQ(db.num_nets(), static_cast<int>(ref.members.size()));
    ASSERT_EQ(db.num_cells(), static_cast<int>(flat.size()));

    // Ids are dense and lexicographic: iterating ascending ids must visit
    // nets in exactly the historical std::map order, with identical member
    // lists and multiplicity counts.
    int id = 0;
    for (const auto& [name, cells] : ref.members) {
      ASSERT_EQ(db.name(id), name) << "node " << nm;
      EXPECT_EQ(db.id_of(name), id);
      const auto span = db.members(id);
      ASSERT_EQ(span.size(), cells.size()) << name;
      for (std::size_t k = 0; k < cells.size(); ++k) {
        EXPECT_EQ(span[k], cells[k]) << name;
      }
      EXPECT_EQ(db.connection_count(id), ref.conn_count.at(name)) << name;
      ++id;
    }

    // Supply nets are not interned.
    EXPECT_EQ(db.id_of("VDD"), -1);
    EXPECT_EQ(db.id_of("no/such/net"), -1);

    // Per-cell views agree with the per-net views.
    for (int c = 0; c < db.num_cells(); ++c) {
      for (int n : db.nets_of(c)) {
        const auto span = db.members(n);
        EXPECT_TRUE(std::find(span.begin(), span.end(), c) != span.end());
      }
      for (const auto& cp : db.cell_pins(c)) {
        const auto& net =
            flat[static_cast<std::size_t>(c)].conn.at(*cp.pin);
        EXPECT_EQ(cp.net, db.id_of(net));
      }
    }
  }
}

TEST(NetDb, UnifiedHpwlMatchesStringMapReference) {
  for (double nm : {40.0, 180.0}) {
    const auto flat = flat_adc(nm);
    const NetDb db(flat);
    const auto regions = partition_into_regions(flat);
    FloorplanOptions fo;
    fo.target_utilization = 0.08;
    auto fp = make_floorplan(regions, fo);
    const auto pl = place(flat, fp, {}, db);

    const StringMapReference ref(flat);
    double want = 0;
    for (const auto& [name, cells] : ref.members) {
      BBox bb;
      for (int c : cells) {
        bb.expand(pl.cells[static_cast<std::size_t>(c)].rect.center());
      }
      want += bb.half_perimeter();
    }
    // Bit-identical, not just close: summation order is the name order.
    EXPECT_EQ(total_hpwl(db, pl), want) << "node " << nm;
    EXPECT_EQ(total_hpwl(flat, pl), want) << "node " << nm;
  }
}

TEST(NetDb, RoutingEstimatePinCountsMatchReference) {
  const auto flat = flat_adc(40);
  const NetDb db(flat);
  const auto regions = partition_into_regions(flat);
  FloorplanOptions fo;
  fo.target_utilization = 0.08;
  auto fp = make_floorplan(regions, fo);
  const auto pl = place(flat, fp, {}, db);

  // The estimator reports multi-pin nets only (single-connection nets have
  // no wire), in name order, with multiplicity-counted pins.
  const StringMapReference ref(flat);
  const auto est = estimate_routing(flat, pl, fp.die, {}, db);
  std::size_t i = 0;
  for (const auto& [name, count] : ref.conn_count) {
    if (count < 2) continue;
    ASSERT_LT(i, est.nets.size());
    EXPECT_EQ(est.nets[i].net, name);
    EXPECT_EQ(est.nets[i].pins, count) << name;
    ++i;
  }
  EXPECT_EQ(est.nets.size(), i);
}

// The full-flow HPWL goldens. These are bit-stable: the NetDb rewrite
// reproduced the string-map flow exactly (same sums, same RNG stream), so
// any drift here means the determinism contract broke.
TEST(NetDb, FullFlowHpwlGoldens) {
  core::AdcDesign adc40(core::AdcSpec::paper_40nm());
  const auto r40 = adc40.synthesize();
  EXPECT_NEAR(r40.routing.total_hpwl_m * 1e6, 21637.630, 1e-3);
  core::AdcDesign adc180(core::AdcSpec::paper_180nm());
  const auto r180 = adc180.synthesize();
  EXPECT_NEAR(r180.routing.total_hpwl_m * 1e6, 59815.980, 1e-3);
}

/// Plain Dijkstra over the full grid, the way the pre-A* router searched:
/// multi-source from `sources`, target accepted on either layer. Returns
/// the optimal path cost (not the path), or +inf when unreachable.
double dijkstra_cost(const RouteGrid& g, const std::vector<int>& sources,
                     const GridPoint& target, double via_cost, int cap,
                     double pressure) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(g.num_nodes()), inf);
  using QE = std::pair<double, int>;
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> pq;
  for (int s : sources) {
    dist[static_cast<std::size_t>(s)] = 0;
    pq.push({0, s});
  }
  const int t0 = g.node_id({target.x, target.y, 0});
  const int t1 = g.node_id({target.x, target.y, 1});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == t0 || u == t1) return d;
    const GridPoint p = g.from_id(u);
    auto relax = [&](const GridPoint& q, double w) {
      const int v = g.node_id(q);
      if (d + w < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = d + w;
        pq.push({d + w, v});
      }
    };
    if (p.layer == 0) {
      if (p.x > 0) {
        relax({p.x - 1, p.y, 0},
              route_edge_cost(
                  g.h_use[static_cast<std::size_t>(g.h_idx(p.x - 1, p.y))],
                  g.h_hist[static_cast<std::size_t>(g.h_idx(p.x - 1, p.y))],
                  cap, pressure));
      }
      if (p.x + 1 < g.nx) {
        relax({p.x + 1, p.y, 0},
              route_edge_cost(
                  g.h_use[static_cast<std::size_t>(g.h_idx(p.x, p.y))],
                  g.h_hist[static_cast<std::size_t>(g.h_idx(p.x, p.y))],
                  cap, pressure));
      }
      relax({p.x, p.y, 1}, via_cost);
    } else {
      if (p.y > 0) {
        relax({p.x, p.y - 1, 1},
              route_edge_cost(
                  g.v_use[static_cast<std::size_t>(g.v_idx(p.x, p.y - 1))],
                  g.v_hist[static_cast<std::size_t>(g.v_idx(p.x, p.y - 1))],
                  cap, pressure));
      }
      if (p.y + 1 < g.ny) {
        relax({p.x, p.y + 1, 1},
              route_edge_cost(
                  g.v_use[static_cast<std::size_t>(g.v_idx(p.x, p.y))],
                  g.v_hist[static_cast<std::size_t>(g.v_idx(p.x, p.y))],
                  cap, pressure));
      }
      relax({p.x, p.y, 0}, via_cost);
    }
  }
  return inf;
}

/// Cost of a path as the router priced it: per-edge route_edge_cost plus
/// via_cost per layer change.
double path_cost(const RouteGrid& g, const std::vector<GridPoint>& path,
                 double via_cost, int cap, double pressure) {
  double c = 0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const GridPoint& a = path[i - 1];
    const GridPoint& b = path[i];
    if (a.layer != b.layer) {
      c += via_cost;
    } else if (a.layer == 0) {
      const auto e = static_cast<std::size_t>(g.h_idx(std::min(a.x, b.x), a.y));
      c += route_edge_cost(g.h_use[e], g.h_hist[e], cap, pressure);
    } else {
      const auto e = static_cast<std::size_t>(g.v_idx(a.x, std::min(a.y, b.y)));
      c += route_edge_cost(g.v_use[e], g.v_hist[e], cap, pressure);
    }
  }
  return c;
}

// A* optimality: on a grid with random usage and history (so edge costs are
// wildly non-uniform), the windowed A* restricted to the full grid must
// return exactly the Dijkstra-optimal cost for every query.
TEST(AStar, CostsEqualDijkstraOnRandomGrid) {
  RouteGrid g({0, 0, 24e-6, 18e-6}, 1e-6);
  util::Rng rng(7);
  for (auto& u : g.h_use) u = static_cast<int>(rng.below(12));
  for (auto& u : g.v_use) u = static_cast<int>(rng.below(12));
  for (auto& h : g.h_hist) h = 2.0 * rng.uniform();
  for (auto& h : g.v_hist) h = 2.0 * rng.uniform();

  const double via_cost = 3.0;
  const int cap = 8;
  const double pressure = 4.0;
  const RouteWindow full{0, 0, g.nx - 1, g.ny - 1};
  SearchScratch s;
  s.bind(g.num_nodes());

  for (int trial = 0; trial < 50; ++trial) {
    GridPoint src{static_cast<int>(rng.below(static_cast<std::size_t>(g.nx))),
                  static_cast<int>(rng.below(static_cast<std::size_t>(g.ny))),
                  0};
    GridPoint dst{static_cast<int>(rng.below(static_cast<std::size_t>(g.nx))),
                  static_cast<int>(rng.below(static_cast<std::size_t>(g.ny))),
                  0};
    if (src.x == dst.x && src.y == dst.y) continue;

    // Seed the tree the way route_net does: the source on both layers.
    s.new_tree();
    s.add_tree(g.node_id(src));
    GridPoint src1 = src;
    src1.layer = 1;
    s.add_tree(g.node_id(src1));

    const auto path = astar_search(g, s, dst, via_cost, cap, pressure, full);
    ASSERT_FALSE(path.empty()) << "trial " << trial;
    EXPECT_EQ(path.back().x, dst.x);
    EXPECT_EQ(path.back().y, dst.y);

    const double want =
        dijkstra_cost(g, {g.node_id(src), g.node_id(src1)}, dst, via_cost,
                      cap, pressure);
    EXPECT_DOUBLE_EQ(path_cost(g, path, via_cost, cap, pressure), want)
        << "trial " << trial;
  }
}

// Parallel rip-up batches must be bit-identical to the serial router on the
// real design: identical per-net paths, not just identical totals.
TEST(ParallelRoute, BitIdenticalToSerialOnFullAdc) {
  for (double nm : {40.0, 180.0}) {
    core::AdcDesign adc(nm == 40 ? core::AdcSpec::paper_40nm()
                                 : core::AdcSpec::paper_180nm());
    SynthesisOptions so;
    auto serial = adc.synthesize(so);
    so.threads = 4;
    auto parallel = adc.synthesize(so);

    const auto& a = serial.detailed_routing;
    const auto& b = parallel.detailed_routing;
    EXPECT_EQ(a.total_wirelength_m, b.total_wirelength_m) << "node " << nm;
    EXPECT_EQ(a.total_vias, b.total_vias);
    EXPECT_EQ(a.overflowed_edges, b.overflowed_edges);
    EXPECT_EQ(a.failed_nets, b.failed_nets);
    ASSERT_EQ(a.nets.size(), b.nets.size());
    for (std::size_t i = 0; i < a.nets.size(); ++i) {
      EXPECT_EQ(a.nets[i].name, b.nets[i].name);
      EXPECT_TRUE(a.nets[i].paths == b.nets[i].paths)
          << "net " << a.nets[i].name << " node " << nm;
    }
  }
}

// Off-row-grid cells are reported once and excluded from the row-bucket
// overlap pass: rounding them into a row used to fabricate overlap pairs
// against cells they do not abut.
TEST(Drc, OffGridCellSkipsRowOverlapPass) {
  netlist::StdCell cell;
  cell.name = "INVX1";
  cell.function = "inv";
  cell.width_m = 1e-6;
  cell.height_m = 1e-6;
  cell.pins = {{"A", netlist::PortDir::kInput},
               {"Y", netlist::PortDir::kOutput}};

  std::vector<netlist::FlatInstance> flat(2);
  flat[0].path = "u0";
  flat[0].cell = &cell;
  flat[0].power_domain = "PD_VDD";
  flat[1].path = "u1";
  flat[1].cell = &cell;
  flat[1].power_domain = "PD_VDD";

  Floorplan fp;
  fp.die = {0, 0, 10e-6, 10e-6};
  fp.row_height_m = 1e-6;
  fp.site_width_m = 1e-7;

  Placement pl;
  pl.cells.resize(2);
  pl.cells[0].rect = {1e-6, 1e-6, 1e-6, 1e-6};  // on the row grid
  // Half a row off grid, geometrically overlapping u0. Before the fix this
  // cell was rounded into the nearest row bucket and compared against
  // cells it does not actually abut.
  pl.cells[1].rect = {1e-6, 1.5e-6, 1e-6, 1e-6};

  const DrcReport rep = run_drc(flat, pl, fp);
  EXPECT_EQ(rep.count(DrcKind::kOffRowGrid), 1);
  EXPECT_EQ(rep.count(DrcKind::kOverlap), 0);

  // Control: put u1 on the grid in u0's row and the overlap is caught.
  pl.cells[1].rect = {1.5e-6, 1e-6, 1e-6, 1e-6};
  const DrcReport rep2 = run_drc(flat, pl, fp);
  EXPECT_EQ(rep2.count(DrcKind::kOffRowGrid), 0);
  EXPECT_EQ(rep2.count(DrcKind::kOverlap), 1);
}

}  // namespace
}  // namespace vcoadc::synth
