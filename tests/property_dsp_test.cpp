// Parameterized property sweeps over the DSP substrate: invariants that
// must hold for every window/size/rate combination, not just the defaults.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <tuple>

#include "core/backend.h"
#include "dsp/decimator.h"
#include "dsp/fft.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "dsp/window.h"
#include "util/rng.h"

namespace vcoadc::dsp {
namespace {

// ---------------------------------------------------------------- FFT ----
class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.gaussian();
  double te = 0;
  for (double v : x) te += v * v;
  const auto spec = fft_real(x);
  double fe = 0;
  for (const auto& c : spec) fe += std::norm(c);
  EXPECT_NEAR(fe / static_cast<double>(n) / te, 1.0, 1e-9);
}

TEST_P(FftSizes, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  util::Rng rng(n * 7);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  auto y = x;
  fft_in_place(y);
  ifft_in_place(y);
  double worst = 0;
  for (std::size_t i = 0; i < n; ++i) worst = std::max(worst, std::abs(y[i] - x[i]));
  EXPECT_LT(worst, 1e-9);
}

TEST_P(FftSizes, LinearityOfTransform) {
  const std::size_t n = GetParam();
  util::Rng rng(n * 13);
  std::vector<double> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.gaussian();
    b[i] = rng.gaussian();
    sum[i] = 2.0 * a[i] - 3.0 * b[i];
  }
  const auto fa = fft_real(a);
  const auto fb = fft_real(b);
  const auto fs = fft_real(sum);
  double worst = 0;
  for (std::size_t k = 0; k < n; ++k) {
    worst = std::max(worst, std::abs(fs[k] - (2.0 * fa[k] - 3.0 * fb[k])));
  }
  EXPECT_LT(worst, 1e-7 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(std::size_t{8}, std::size_t{64},
                                           std::size_t{256}, std::size_t{1024},
                                           std::size_t{4096}));

// ------------------------------------------------------------- windows ----
class WindowAmp
    : public ::testing::TestWithParam<std::tuple<WindowKind, double>> {};

TEST_P(WindowAmp, ToneReadsItsAmplitude) {
  const auto [window, dbfs] = GetParam();
  const std::size_t n = 1 << 13;
  const double fs = 1e6;
  const double fin = coherent_freq(23e3, fs, n);
  const double amp = std::pow(10.0, dbfs / 20.0);
  const auto x = sample(make_sine(amp, fin), fs, n);
  const Spectrum spec = compute_spectrum(x, fs, 1.0, window);
  const SndrReport rep = analyze_sndr(spec, fs / 2, fin);
  EXPECT_NEAR(rep.fundamental_dbfs, dbfs, 0.1)
      << to_string(window) << " at " << dbfs << " dBFS";
}

TEST_P(WindowAmp, SnrCalibratedAgainstInjectedNoise) {
  const auto [window, dbfs] = GetParam();
  const std::size_t n = 1 << 14;
  const double fs = 1e6;
  const double fin = coherent_freq(37e3, fs, n);
  const double amp = std::pow(10.0, dbfs / 20.0);
  const double sigma = amp * 1e-3;
  util::Rng rng(99);
  auto x = sample(make_sine(amp, fin), fs, n);
  for (auto& v : x) v += rng.gaussian(0.0, sigma);
  const Spectrum spec = compute_spectrum(x, fs, 1.0, window);
  const SndrReport rep = analyze_sndr(spec, fs / 2, fin);
  const double expected = 10 * std::log10(amp * amp / 2 / (sigma * sigma));
  EXPECT_NEAR(rep.snr_db, expected, 1.5) << to_string(window);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WindowAmp,
    ::testing::Combine(::testing::Values(WindowKind::kRect, WindowKind::kHann,
                                         WindowKind::kBlackmanHarris),
                       ::testing::Values(0.0, -3.0, -20.0)));

// ----------------------------------------------------------------- CIC ----
class CicParams : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CicParams, UnityDcGainAndExactRate) {
  const auto [order, rate] = GetParam();
  CicDecimator cic(order, rate);
  std::vector<double> in(static_cast<std::size_t>(rate) * 64, 0.37);
  const auto out = cic.process(in);
  EXPECT_EQ(out.size(), 64u);
  EXPECT_NEAR(out.back(), 0.37, 1e-9);
}

TEST_P(CicParams, ImageAttenuationGrowsWithOrder) {
  const auto [order, rate] = GetParam();
  if (order < 2) GTEST_SKIP() << "needs order comparison";
  const double fs = 1e6;
  const std::size_t n = 1 << 13;
  auto image = sample(make_sine(1.0, fs / rate - 2e3), fs, n);
  auto power_after = [&](int ord) {
    CicDecimator cic(ord, rate);
    const auto out = cic.process(image);
    double p = 0;
    for (std::size_t i = out.size() / 2; i < out.size(); ++i) p += out[i] * out[i];
    return p;
  };
  EXPECT_LT(power_after(order), power_after(order - 1));
}

INSTANTIATE_TEST_SUITE_P(Grid, CicParams,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(4, 16, 64)));

// ----------------------------------------------- CIC droop compensation ---
class CompensatorParams
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CompensatorParams, SymmetricAndFlattening) {
  const auto [order, rate] = GetParam();
  const auto comp = core::design_cic_compensator(order, rate, 15);
  ASSERT_EQ(comp.size(), 15u);
  for (std::size_t k = 0; k < comp.size() / 2; ++k) {
    EXPECT_NEAR(comp[k], comp[comp.size() - 1 - k], 1e-12);
  }
  auto fir_mag = [&](double f) {
    double re = 0, im = 0;
    for (std::size_t k = 0; k < comp.size(); ++k) {
      re += comp[k] * std::cos(2 * std::numbers::pi * f * static_cast<double>(k));
      im -= comp[k] * std::sin(2 * std::numbers::pi * f * static_cast<double>(k));
    }
    return std::sqrt(re * re + im * im);
  };
  auto cic_mag = [&](double f_in) {
    if (f_in == 0) return 1.0;
    const double num = std::sin(std::numbers::pi * f_in * rate);
    const double den = rate * std::sin(std::numbers::pi * f_in);
    return std::pow(std::fabs(num / den), order);
  };
  double worst = 0;
  for (double f = 0.02; f <= 0.2; f += 0.02) {
    const double total = cic_mag(f / rate) * fir_mag(f);
    worst = std::max(worst, std::fabs(20 * std::log10(total)));
  }
  EXPECT_LT(worst, 0.3) << "order " << order << " rate " << rate;
}

INSTANTIATE_TEST_SUITE_P(Grid, CompensatorParams,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(8, 16, 32)));

// ----------------------------------------------------- coherent sampling --
class CoherentFreqs : public ::testing::TestWithParam<double> {};

TEST_P(CoherentFreqs, WholeOddCyclesInWindow) {
  const double target = GetParam();
  const double fs = 750e6;
  const std::size_t n = 1 << 14;
  const std::size_t k = coherent_cycles(target, fs, n);
  EXPECT_EQ(k % 2, 1u);
  const double fin = coherent_freq(target, fs, n);
  // fin * n / fs is an exact integer.
  const double cycles = fin * static_cast<double>(n) / fs;
  EXPECT_NEAR(cycles, std::round(cycles), 1e-9);
  EXPECT_NEAR(fin, target, fs / static_cast<double>(n) * 2);
}

INSTANTIATE_TEST_SUITE_P(Targets, CoherentFreqs,
                         ::testing::Values(100e3, 1e6, 5e6, 20e6));

}  // namespace
}  // namespace vcoadc::dsp
