// ArtifactStore: the persistent tier's durability contract. Every failure
// mode (absent, truncated, corrupted, version-skewed, mistagged) must
// degrade to a miss-plus-diagnostic, never a crash or a wrong artifact —
// and a warm start from a populated store must reproduce a cold run
// bit-identically with zero cold stage builds (the cross-process
// acceptance test of the persistence layer; the serve round-trip ctest
// repeats it across real processes).
#include "core/artifact_store.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/artifact_serde.h"
#include "core/eval.h"
#include "core/flow.h"
#include "core/serde.h"
#include "util/diag.h"
#include "util/json.h"

namespace fs = std::filesystem;
using namespace vcoadc;

namespace {

/// Fresh per-test store root under the system temp dir; removed on
/// destruction so repeated ctest runs never see stale records.
struct TempStoreDir {
  fs::path path;
  explicit TempStoreDir(const std::string& tag) {
    path = fs::temp_directory_path() / ("vcoadc_store_test_" + tag);
    fs::remove_all(path);
  }
  ~TempStoreDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

std::vector<std::uint8_t> make_payload(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return p;
}

constexpr core::CacheKey kKey{0x1234567890abcdefull, 0xfedcba0987654321ull};

TEST(ArtifactStoreTest, SaveThenLoadRoundTripsBytes) {
  TempStoreDir dir("roundtrip");
  core::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.ok());

  const auto payload = make_payload(4096, 7);
  util::DiagSink diags;
  ASSERT_TRUE(store.save(kKey, "unit", 1, payload, &diags));
  std::vector<std::uint8_t> loaded;
  ASSERT_TRUE(store.load(kKey, "unit", 1, &loaded, &diags));
  EXPECT_EQ(loaded, payload);
  EXPECT_TRUE(diags.empty());

  const core::ArtifactStoreStats st = store.stats();
  EXPECT_EQ(st.writes, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 0u);
  EXPECT_GT(st.bytes_written, payload.size());
}

TEST(ArtifactStoreTest, AbsentRecordIsSilentMiss) {
  TempStoreDir dir("absent");
  core::ArtifactStore store(dir.str());
  util::DiagSink diags;
  std::vector<std::uint8_t> loaded;
  EXPECT_FALSE(store.load(kKey, "unit", 1, &loaded, &diags));
  EXPECT_TRUE(diags.empty()) << diags.render();  // the normal miss is quiet
  const core::ArtifactStoreStats st = store.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.absent, 1u);
}

TEST(ArtifactStoreTest, CorruptRecordIsMissWithWarning) {
  TempStoreDir dir("corrupt");
  core::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.save(kKey, "unit", 1, make_payload(512, 3)));

  // Flip one payload byte in place; the whole-record checksum must catch it.
  const std::string path = store.path_for(kKey);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(100);
    char b = 0;
    f.seekg(100);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5a);
    f.seekp(100);
    f.write(&b, 1);
  }

  util::DiagSink diags;
  std::vector<std::uint8_t> loaded;
  EXPECT_FALSE(store.load(kKey, "unit", 1, &loaded, &diags));
  EXPECT_EQ(diags.size(), 1u);
  EXPECT_FALSE(diags.has_errors());  // kWarning: the flow rebuilds and goes on
  const core::ArtifactStoreStats st = store.stats();
  EXPECT_EQ(st.corrupt, 1u);
  EXPECT_EQ(st.misses, 1u);
}

TEST(ArtifactStoreTest, TruncatedRecordIsMissWithWarning) {
  TempStoreDir dir("truncated");
  core::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.save(kKey, "unit", 1, make_payload(512, 9)));
  fs::resize_file(store.path_for(kKey), 40);

  util::DiagSink diags;
  std::vector<std::uint8_t> loaded;
  EXPECT_FALSE(store.load(kKey, "unit", 1, &loaded, &diags));
  EXPECT_EQ(diags.size(), 1u);
  EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST(ArtifactStoreTest, TypeVersionBumpIsVersionSkewMiss) {
  TempStoreDir dir("verskew");
  core::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.save(kKey, "unit", 1, make_payload(64, 1)));

  util::DiagSink diags;
  std::vector<std::uint8_t> loaded;
  // A reader one format version ahead must refuse the old record rather
  // than decode it against new semantics.
  EXPECT_FALSE(store.load(kKey, "unit", 2, &loaded, &diags));
  EXPECT_EQ(diags.size(), 1u);
  const core::ArtifactStoreStats st = store.stats();
  EXPECT_EQ(st.version_skew, 1u);
  EXPECT_EQ(st.hits, 0u);
}

TEST(ArtifactStoreTest, WrongTypeTagIsMissWithWarning) {
  TempStoreDir dir("wrongtag");
  core::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.save(kKey, "placement", 1, make_payload(64, 2)));

  util::DiagSink diags;
  std::vector<std::uint8_t> loaded;
  EXPECT_FALSE(store.load(kKey, "floorplan", 1, &loaded, &diags));
  EXPECT_EQ(diags.size(), 1u);
  EXPECT_EQ(store.stats().hits, 0u);
}

TEST(ArtifactStoreTest, NoteDecodeFailureDemotesHitToCorruptMiss) {
  TempStoreDir dir("demote");
  core::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.save(kKey, "unit", 1, make_payload(64, 4)));
  std::vector<std::uint8_t> loaded;
  ASSERT_TRUE(store.load(kKey, "unit", 1, &loaded));
  ASSERT_EQ(store.stats().hits, 1u);
  const std::uint64_t served = store.stats().bytes_read;
  ASSERT_GT(served, 0u);  // the hit counted its record bytes

  util::DiagSink diags;
  store.note_decode_failure(kKey, "unit", &diags);
  const core::ArtifactStoreStats st = store.stats();
  EXPECT_EQ(st.hits, 0u);  // the stage rebuilt after all: not an avoided build
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.corrupt, 1u);
  // Regression: the demoted hit's record bytes must leave bytes_read too —
  // a rejected record was never *served* — and the miss taxonomy must
  // still tile the misses exactly.
  EXPECT_EQ(st.bytes_read, 0u);
  EXPECT_EQ(st.misses, st.absent + st.corrupt + st.version_skew);
  EXPECT_EQ(diags.size(), 1u);

  // A later genuine hit counts afresh (the per-key bookkeeping reset).
  ASSERT_TRUE(store.load(kKey, "unit", 1, &loaded));
  EXPECT_EQ(store.stats().bytes_read, served);
  EXPECT_EQ(store.stats().misses,
            store.stats().absent + store.stats().corrupt +
                store.stats().version_skew);
}

TEST(ArtifactStoreTest, UnusableRootDegradesToMissesAndWriteFailures) {
  TempStoreDir dir("degraded");
  // Make the root path a *file* so the store cannot create its directory.
  fs::create_directories(dir.path.parent_path());
  { std::ofstream(dir.str()) << "not a directory"; }

  core::ArtifactStore store(dir.str());
  EXPECT_FALSE(store.ok());
  util::DiagSink diags;
  EXPECT_FALSE(store.save(kKey, "unit", 1, make_payload(16, 5), &diags));
  std::vector<std::uint8_t> loaded;
  EXPECT_FALSE(store.load(kKey, "unit", 1, &loaded, &diags));
  const core::ArtifactStoreStats st = store.stats();
  EXPECT_EQ(st.write_failures, 1u);
  EXPECT_EQ(st.misses, 1u);
}

TEST(ArtifactStoreTest, OverwriteSameKeyKeepsLatestIntact) {
  TempStoreDir dir("overwrite");
  core::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.save(kKey, "unit", 1, make_payload(128, 1)));
  const auto second = make_payload(256, 2);
  ASSERT_TRUE(store.save(kKey, "unit", 1, second));
  std::vector<std::uint8_t> loaded;
  ASSERT_TRUE(store.load(kKey, "unit", 1, &loaded));
  EXPECT_EQ(loaded, second);
}

// --- lifecycle: tmp-sweep and size-bounded GC -----------------------------

/// Backdates a file's mtime by `seconds`, so age-gated sweeps and LRU
/// ordering are deterministic regardless of test speed.
void age_file(const fs::path& p, int seconds) {
  fs::last_write_time(p,
                      fs::last_write_time(p) - std::chrono::seconds(seconds));
}

std::uint64_t dir_record_bytes(const fs::path& root) {
  std::uint64_t total = 0;
  for (const auto& e : fs::recursive_directory_iterator(root)) {
    if (e.is_regular_file() && e.path().extension() == ".art") {
      total += static_cast<std::uint64_t>(e.file_size());
    }
  }
  return total;
}

// Regression: a writer killed between write and rename leaked its *.tmp.*
// file forever. Opening a store must sweep such orphans — but only old
// ones, so a concurrent live writer's fresh tmp is never stolen.
TEST(ArtifactStoreTest, OpenSweepsStaleTmpOrphanKeepsFreshTmp) {
  TempStoreDir dir("tmpsweep");
  fs::path shard;
  {
    core::ArtifactStore store(dir.str());
    ASSERT_TRUE(store.save(kKey, "unit", 1, make_payload(64, 9)));
    shard = fs::path(store.path_for(kKey)).parent_path();
  }
  ASSERT_TRUE(fs::exists(shard));
  const fs::path orphan = shard / "deadbeef.art.tmp.12345.0";
  const fs::path fresh = shard / "cafef00d.art.tmp.12345.1";
  std::ofstream(orphan) << "killed writer leftovers";
  std::ofstream(fresh) << "in-flight writer";
  age_file(orphan, 3600);  // an hour stale: clearly orphaned

  core::ArtifactStore reopened(dir.str());
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(fs::exists(orphan)) << "stale tmp must be swept at open";
  EXPECT_TRUE(fs::exists(fresh)) << "fresh tmp may be a live writer's";
  EXPECT_EQ(reopened.stats().tmp_swept, 1u);

  // The real record survived the sweep.
  std::vector<std::uint8_t> loaded;
  EXPECT_TRUE(reopened.load(kKey, "unit", 1, &loaded));
  fs::remove(fresh);
}

TEST(ArtifactStoreTest, GcEvictsOldestFirstDownToTheBound) {
  TempStoreDir dir("gc_lru");
  core::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.ok());

  // Four records, mtimes spaced so LRU order is unambiguous: key 0 is the
  // oldest, key 3 the newest.
  constexpr int kN = 4;
  std::uint64_t record_size = 0;
  for (int i = 0; i < kN; ++i) {
    const core::CacheKey key{static_cast<std::uint64_t>(i + 1), 0x77ull};
    ASSERT_TRUE(store.save(key, "unit", 1, make_payload(2048, 3)));
    const fs::path p = store.path_for(key);
    record_size = static_cast<std::uint64_t>(fs::file_size(p));
    age_file(p, (kN - i) * 100);
  }

  // Bound to two records' worth: the two oldest must go.
  const core::ArtifactStore::GcResult gr = store.gc(2 * record_size);
  EXPECT_EQ(gr.evicted, 2u);
  EXPECT_EQ(gr.bytes_before, static_cast<std::uint64_t>(kN) * record_size);
  EXPECT_LE(gr.bytes_after, 2 * record_size);
  EXPECT_LE(dir_record_bytes(dir.path), 2 * record_size);

  std::vector<std::uint8_t> loaded;
  EXPECT_FALSE(store.load(core::CacheKey{1, 0x77ull}, "unit", 1, &loaded));
  EXPECT_FALSE(store.load(core::CacheKey{2, 0x77ull}, "unit", 1, &loaded));
  EXPECT_TRUE(store.load(core::CacheKey{3, 0x77ull}, "unit", 1, &loaded));
  EXPECT_TRUE(store.load(core::CacheKey{4, 0x77ull}, "unit", 1, &loaded));

  const core::ArtifactStoreStats st = store.stats();
  EXPECT_EQ(st.evictions, 2u);
  EXPECT_EQ(st.gc_bytes_reclaimed, 2 * record_size);
  // Evicted records read as clean absent-misses, keeping the taxonomy
  // tiling intact.
  EXPECT_EQ(st.misses, st.absent + st.corrupt + st.version_skew);
}

TEST(ArtifactStoreTest, GcCompactsEmptyShardDirsAndIsIdempotent) {
  TempStoreDir dir("gc_compact");
  core::ArtifactStore store(dir.str());
  const core::CacheKey key{0xabcdull, 0x1ull};
  ASSERT_TRUE(store.save(key, "unit", 1, make_payload(512, 5)));
  const fs::path shard = fs::path(store.path_for(key)).parent_path();
  ASSERT_TRUE(fs::exists(shard));

  // Bound of zero evicts everything; the shard dir goes with its record.
  const auto gr = store.gc(0);
  EXPECT_EQ(gr.evicted, 1u);
  EXPECT_EQ(gr.bytes_after, 0u);
  EXPECT_FALSE(fs::exists(shard)) << "empty shard dirs are compacted away";

  // A second pass over the now-empty store is a no-op, not an error.
  const auto gr2 = store.gc(0);
  EXPECT_EQ(gr2.evicted, 0u);
  EXPECT_EQ(gr2.bytes_before, 0u);

  // The store still works after full eviction.
  ASSERT_TRUE(store.save(key, "unit", 1, make_payload(512, 6)));
  std::vector<std::uint8_t> loaded;
  EXPECT_TRUE(store.load(key, "unit", 1, &loaded));
}

TEST(ArtifactStoreTest, GcUnderBoundEvictsNothing) {
  TempStoreDir dir("gc_under");
  core::ArtifactStore store(dir.str());
  ASSERT_TRUE(store.save(kKey, "unit", 1, make_payload(512, 8)));
  const auto gr = store.gc(1ull << 30);
  EXPECT_EQ(gr.evicted, 0u);
  EXPECT_EQ(gr.bytes_before, gr.bytes_after);
  EXPECT_EQ(store.stats().evictions, 0u);
  std::vector<std::uint8_t> loaded;
  EXPECT_TRUE(store.load(kKey, "unit", 1, &loaded));
}

// --- typed codec round-trips ----------------------------------------------

core::AdcSpec small_spec() {
  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  spec.num_slices = 6;
  spec.fs_hz = 400e6;
  spec.bandwidth_hz = 2e6;
  return spec;
}

TEST(ArtifactSerdeTest, CellLibraryRoundTripsBitExactly) {
  core::ExecContext ctx;
  core::Flow flow(ctx);
  const auto lib = flow.tech_library(small_spec());
  ASSERT_NE(lib, nullptr);

  const auto& codec = core::cell_library_codec();
  core::serde::Writer w;
  codec.encode(*lib, w);
  core::serde::Reader r(w.bytes());
  const auto back = codec.decode(r);
  ASSERT_NE(back, nullptr);

  // Re-encoding the decoded library must produce the same bytes: the
  // canonical form is a fixed point, which is what makes store records
  // stable across processes.
  core::serde::Writer w2;
  codec.encode(*back, w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
  EXPECT_EQ(back->cells().size(), lib->cells().size());
}

TEST(ArtifactSerdeTest, RunResultRoundTripsBitExactly) {
  core::ExecContext ctx;
  core::Flow flow(ctx);
  core::SimulationOptions sim;
  sim.n_samples = 1 << 12;
  const auto run = flow.sim_run(small_spec(), sim);
  ASSERT_NE(run, nullptr);

  const auto& codec = core::run_result_codec();
  core::serde::Writer w;
  codec.encode(*run, w);
  core::serde::Reader r(w.bytes());
  const auto back = codec.decode(r);
  ASSERT_NE(back, nullptr);

  EXPECT_EQ(back->sndr.sndr_db, run->sndr.sndr_db);  // bit-exact, not near
  EXPECT_EQ(back->fom_fj, run->fom_fj);
  EXPECT_EQ(back->mod.output, run->mod.output);
  EXPECT_EQ(back->spectrum.dbfs, run->spectrum.dbfs);
  core::serde::Writer w2;
  codec.encode(*back, w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

TEST(ArtifactSerdeTest, SynthesisResultRoundTripRepointsCells) {
  core::ExecContext ctx;
  core::Flow flow(ctx);
  const auto res = flow.synthesis(small_spec());
  ASSERT_NE(res, nullptr);
  ASSERT_NE(res->layout, nullptr);

  const auto& codec = core::synthesis_codec();
  core::serde::Writer w;
  codec.encode(*res, w);
  core::serde::Reader r(w.bytes());
  const auto back = codec.decode(r);
  ASSERT_NE(back, nullptr);
  ASSERT_NE(back->layout, nullptr);

  const auto& flat = res->layout->flat();
  const auto& flat2 = back->layout->flat();
  ASSERT_EQ(flat2.size(), flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    ASSERT_NE(flat2[i].cell, nullptr);
    // Pointers were re-aimed at the embedded library, but the pointee
    // carries the same cell definition.
    EXPECT_EQ(flat2[i].cell->name, flat[i].cell->name);
    EXPECT_EQ(flat2[i].cell->width_m, flat[i].cell->width_m);
  }
  EXPECT_EQ(back->stats.die_area_m2, res->stats.die_area_m2);
  EXPECT_EQ(back->drc.violations.size(), res->drc.violations.size());
  EXPECT_EQ(back->detailed_routing.total_vias, res->detailed_routing.total_vias);
}

TEST(ArtifactSerdeTest, HdlEmitRoundTripReparsesTheStoredText) {
  core::AdcSpec spec = small_spec();
  spec.num_slices = 4;
  core::ExecContext ctx;
  core::Flow flow(ctx);
  const auto hdl = flow.hdl_emit(spec);
  ASSERT_NE(hdl, nullptr);

  const auto& codec = core::hdl_emit_codec();
  core::serde::Writer w;
  codec.encode(*hdl, w);
  core::serde::Reader r(w.bytes());
  const auto back = codec.decode(r);
  ASSERT_NE(back, nullptr);

  // The text is the artifact of record: byte-identical through the store,
  // and the decoded view is re-parsed from it (same top, same modules).
  EXPECT_EQ(back->verilog, hdl->verilog);
  EXPECT_EQ(back->top, hdl->top);
  EXPECT_EQ(back->instances_compared, hdl->instances_compared);
  ASSERT_NE(back->parsed, nullptr);
  EXPECT_EQ(back->parsed->top(), hdl->parsed->top());
  EXPECT_EQ(back->parsed->modules().size(), hdl->parsed->modules().size());
  core::serde::Writer w2;
  codec.encode(*back, w2);
  EXPECT_EQ(w.bytes(), w2.bytes());

  // Corrupting the stored text past parseability is a decode miss, not a
  // half-parsed design: the codec's re-parse is the integrity check.
  core::HdlEmitResult mangled = *hdl;
  mangled.verilog = "module broken (;"; // unparseable on purpose
  core::serde::Writer wm;
  codec.encode(mangled, wm);
  core::serde::Reader rm(wm.bytes());
  EXPECT_EQ(codec.decode(rm), nullptr);
}

TEST(ArtifactSerdeTest, GateSimResultRoundTripsBitExactly) {
  core::AdcSpec spec = small_spec();
  spec.num_slices = 4;
  core::ExecContext ctx;
  core::Flow flow(ctx);
  core::GateSimOptions gopts;
  gopts.sim.n_samples = 64;
  const auto gate = flow.gate_sim(spec, gopts);
  ASSERT_NE(gate, nullptr);

  const auto& codec = core::gate_sim_codec();
  core::serde::Writer w;
  codec.encode(*gate, w);
  core::serde::Reader r(w.bytes());
  const auto back = codec.decode(r);
  ASSERT_NE(back, nullptr);

  EXPECT_EQ(back->comparator_ok, gate->comparator_ok);
  EXPECT_EQ(back->ring_period_s, gate->ring_period_s);  // bit-exact f64
  EXPECT_EQ(back->ring_period_pred_s, gate->ring_period_pred_s);
  EXPECT_EQ(back->ring_ok, gate->ring_ok);
  EXPECT_EQ(back->n_samples, gate->n_samples);
  EXPECT_EQ(back->num_slices, gate->num_slices);
  EXPECT_EQ(back->decoded, gate->decoded);
  EXPECT_EQ(back->decimated, gate->decimated);
  EXPECT_EQ(back->matches_behavioral, gate->matches_behavioral);
  EXPECT_EQ(back->transitions, gate->transitions);
  core::serde::Writer w2;
  codec.encode(*back, w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

TEST(ArtifactSerdeTest, DecoderRejectsTruncatedPayload) {
  core::ExecContext ctx;
  core::Flow flow(ctx);
  const auto lib = flow.tech_library(small_spec());
  ASSERT_NE(lib, nullptr);
  const auto& codec = core::cell_library_codec();
  core::serde::Writer w;
  codec.encode(*lib, w);

  std::vector<std::uint8_t> cut(w.bytes().begin(),
                                w.bytes().begin() + w.bytes().size() / 2);
  core::serde::Reader r(cut);
  EXPECT_EQ(codec.decode(r), nullptr);  // null, never UB
}

// --- the cross-process acceptance test ------------------------------------

/// Process A (fresh cache + store over an empty dir) runs a datasheet with
/// Monte-Carlo; process B (fresh cache, fresh store handle, same dir) runs
/// the same request. B must be bit-identical to A with *zero* store
/// misses: every stage artifact came off disk, none were rebuilt cold.
/// Fresh ArtifactCache + ArtifactStore instances are exactly the state a
/// new process starts with; the serve round-trip ctest repeats this with
/// two real processes.
TEST(ArtifactStoreTest, CrossProcessWarmStartIsBitIdenticalWithZeroColdBuilds) {
  TempStoreDir dir("warmstart");

  core::EvalRequest req;
  req.kind = core::EvalKind::kDatasheet;
  req.spec = small_spec();
  req.datasheet.n_samples = 1 << 12;
  req.datasheet.mc_runs = 2;

  // "Process" A: cold, populates the store.
  core::ArtifactCache cache_a(64);
  core::ArtifactStore store_a(dir.str());
  core::ExecContext ctx_a;
  ctx_a.threads = 1;
  ctx_a.cache = &cache_a;
  ctx_a.store = &store_a;
  const core::EvalResponse resp_a = core::evaluate(req, ctx_a);
  ASSERT_TRUE(resp_a.ok);
  ASSERT_GT(store_a.stats().writes, 0u);

  // "Process" B: warm from disk only.
  core::ArtifactCache cache_b(64);
  core::ArtifactStore store_b(dir.str());
  core::ExecContext ctx_b;
  ctx_b.threads = 1;
  ctx_b.cache = &cache_b;
  ctx_b.store = &store_b;
  const core::EvalResponse resp_b = core::evaluate(req, ctx_b);
  ASSERT_TRUE(resp_b.ok);

  const core::ArtifactStoreStats sb = store_b.stats();
  EXPECT_EQ(sb.misses, 0u) << "cold stage builds in the warm process";
  EXPECT_GT(sb.hits, 0u);

  // Bit-identical, not approximately equal: the store hands back the very
  // artifact bytes process A computed.
  EXPECT_EQ(resp_b.datasheet.nominal.sndr.sndr_db,
            resp_a.datasheet.nominal.sndr.sndr_db);
  EXPECT_EQ(resp_b.datasheet.nominal.power.total_w(),
            resp_a.datasheet.nominal.power.total_w());
  EXPECT_EQ(resp_b.datasheet.area_mm2, resp_a.datasheet.area_mm2);
  EXPECT_EQ(resp_b.datasheet.mc.sndr_db, resp_a.datasheet.mc.sndr_db);
  EXPECT_EQ(resp_b.datasheet.render(), resp_a.datasheet.render());

  // Same equality through the wire format the serve protocol reports.
  const std::string fp_a =
      core::eval_result_fingerprint(core::eval_result_to_json(resp_a));
  const std::string fp_b =
      core::eval_result_fingerprint(core::eval_result_to_json(resp_b));
  EXPECT_EQ(fp_a, fp_b);
}

/// A corrupted record in the store must not poison a warm run: the stage
/// rebuilds from scratch, the result is still correct, and the store
/// reports the record as a corrupt miss with a warning diagnostic.
TEST(ArtifactStoreTest, WarmStartSurvivesCorruptedRecord) {
  TempStoreDir dir("warmcorrupt");

  core::AdcSpec spec = small_spec();
  core::SimulationOptions sim;
  sim.n_samples = 1 << 12;

  core::ArtifactCache cache_a(64);
  core::ArtifactStore store_a(dir.str());
  core::ExecContext ctx_a;
  ctx_a.threads = 1;
  ctx_a.cache = &cache_a;
  ctx_a.store = &store_a;
  core::Flow flow_a(ctx_a);
  const auto run_a = flow_a.sim_run(spec, sim);
  ASSERT_NE(run_a, nullptr);

  // Corrupt every record on disk (flip a byte well inside each payload).
  for (const auto& entry : fs::recursive_directory_iterator(dir.path)) {
    if (!entry.is_regular_file()) continue;
    std::fstream f(entry.path(), std::ios::in | std::ios::out | std::ios::binary);
    char b = 0;
    f.seekg(70);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0xff);
    f.seekp(70);
    f.write(&b, 1);
  }

  core::ArtifactCache cache_b(64);
  core::ArtifactStore store_b(dir.str());
  util::DiagSink diags_b;
  core::ExecContext ctx_b;
  ctx_b.threads = 1;
  ctx_b.cache = &cache_b;
  ctx_b.store = &store_b;
  ctx_b.diag = &diags_b;
  core::Flow flow_b(ctx_b);
  const auto run_b = flow_b.sim_run(spec, sim);
  ASSERT_NE(run_b, nullptr);
  EXPECT_EQ(run_b->sndr.sndr_db, run_a->sndr.sndr_db);  // rebuilt correctly
  EXPECT_GT(store_b.stats().corrupt, 0u);
  EXPECT_FALSE(diags_b.has_errors());  // warnings only: the flow degraded soft
  EXPECT_GT(diags_b.size(), 0u);
}

}  // namespace
