// Golden-output regression tests for the modulator fast path.
//
// The PR that introduced the incremental-DAC / packed-bit hot loop changed
// one floating-point evaluation order (the DAC current is now computed as
// g_on*VREFP - g_total*v from running sums; see DESIGN.md "Numerical
// equivalence policy"). These tests pin the exact post-change output of a
// short, fully-featured fixed-seed run so any future change to the hot loop
// that silently perturbs results — RNG draw order, summation order, cached
// constants — fails loudly instead of shifting SNDR statistics.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dsp/signal_gen.h"
#include "msim/batched_modulator.h"
#include "msim/modulator.h"
#include "msim/resistor_dac.h"
#include "msim/slice_bits.h"
#include "util/simd.h"

namespace vcoadc {
namespace {

/// A config exercising every per-substep and per-edge noise/mismatch draw
/// (thermal noise, white-FM phase noise, stage/kvco/resistor mismatch,
/// comparator offset+noise, clock jitter) so the golden covers the full RNG
/// consumption pattern of the hot loop.
msim::SimConfig golden_config() {
  msim::SimConfig cfg;
  cfg.num_slices = 8;
  cfg.seed = 42;
  cfg.thermal_noise = true;
  cfg.vco_stage_mismatch_sigma = 0.01;
  cfg.vco_kvco_mismatch_sigma = 0.005;
  cfg.r_dac_mismatch_sigma = 0.001;
  cfg.comparator_offset_sigma_v = 0.002;
  cfg.comparator_noise_sigma_v = 0.0005;
  cfg.clock_jitter_sigma_s = 200e-15;
  cfg.vco_white_fm_hz2_per_hz = 1e3;
  return cfg;
}

constexpr std::size_t kGoldenSamples = 48;

msim::ModulatorResult run_golden(msim::SimWorkspace* ws = nullptr) {
  const msim::SimConfig cfg = golden_config();
  msim::VcoDsmModulator mod(cfg);
  const dsp::SignalFn sine =
      dsp::make_sine(0.45 * mod.full_scale_diff(), cfg.fs_hz / 64.0);
  if (ws != nullptr) return mod.run(sine, kGoldenSamples, *ws);
  return mod.run(sine, kGoldenSamples);
}

TEST(ModulatorGoldenTest, PinnedCountsAndMeans) {
  const msim::ModulatorResult res = run_golden();

  const std::vector<int> expected_counts = {
      4, 4, 5, 4, 5, 5, 5, 5, 6, 5, 6, 5, 6, 5, 6, 6,
      6, 6, 5, 6, 6, 5, 6, 5, 6, 5, 4, 5, 5, 4, 5, 4,
      3, 4, 4, 3, 4, 3, 2, 3, 3, 2, 3, 2, 3, 2, 2, 2};
  ASSERT_EQ(res.counts, expected_counts);
  ASSERT_EQ(res.output.size(), kGoldenSamples);
  for (std::size_t n = 0; n < kGoldenSamples; ++n) {
    EXPECT_DOUBLE_EQ(res.output[n], (2.0 * res.counts[n] - 8) / 8.0);
  }

  EXPECT_DOUBLE_EQ(res.mean_vctrlp, 0.54830643026514958);
  EXPECT_DOUBLE_EQ(res.mean_vctrln, 0.55171783827349186);
  EXPECT_DOUBLE_EQ(res.mean_freq1_hz, 2042240083.1979506);
  EXPECT_DOUBLE_EQ(res.mean_freq2_hz, 2043780337.4088008);
  EXPECT_DOUBLE_EQ(res.bit_toggle_rate, 5.625);
}

TEST(ModulatorGoldenTest, WorkspaceOverloadIsBitIdentical) {
  const msim::ModulatorResult plain = run_golden();
  msim::SimWorkspace ws;
  const msim::ModulatorResult with_ws = run_golden(&ws);
  EXPECT_EQ(plain.counts, with_ws.counts);
  EXPECT_EQ(plain.output, with_ws.output);
  EXPECT_DOUBLE_EQ(plain.mean_vctrlp, with_ws.mean_vctrlp);
  EXPECT_DOUBLE_EQ(plain.mean_vctrln, with_ws.mean_vctrln);
  EXPECT_DOUBLE_EQ(plain.mean_freq1_hz, with_ws.mean_freq1_hz);
  EXPECT_DOUBLE_EQ(plain.mean_freq2_hz, with_ws.mean_freq2_hz);
  EXPECT_DOUBLE_EQ(plain.bit_toggle_rate, with_ws.bit_toggle_rate);
}

TEST(ModulatorGoldenTest, WorkspaceReuseDoesNotPerturbResults) {
  msim::SimWorkspace ws;
  // Warm the workspace with a differently-shaped run (longer, other seed).
  {
    msim::SimConfig other = golden_config();
    other.seed = 7;
    msim::VcoDsmModulator mod(other);
    const dsp::SignalFn sine =
        dsp::make_sine(0.3 * mod.full_scale_diff(), other.fs_hz / 32.0);
    mod.run(sine, 2 * kGoldenSamples, ws);
  }
  const msim::ModulatorResult fresh = run_golden();
  const msim::ModulatorResult reused = run_golden(&ws);
  EXPECT_EQ(fresh.counts, reused.counts);
  EXPECT_EQ(fresh.output, reused.output);
  EXPECT_DOUBLE_EQ(fresh.bit_toggle_rate, reused.bit_toggle_rate);

  // reset() drops the retained buffers; results must still be identical.
  ws.reset();
  EXPECT_TRUE(ws.result.counts.empty());
  const msim::ModulatorResult after_reset = run_golden(&ws);
  EXPECT_EQ(fresh.counts, after_reset.counts);
}

TEST(ModulatorGoldenTest, RecordBitsConsistentWithCounts) {
  const msim::SimConfig cfg = golden_config();
  msim::VcoDsmModulator::Options opts;
  opts.record_bits = true;
  msim::VcoDsmModulator mod(cfg, opts);
  const dsp::SignalFn sine =
      dsp::make_sine(0.45 * mod.full_scale_diff(), cfg.fs_hz / 64.0);
  msim::SimWorkspace ws;
  const msim::ModulatorResult& res = mod.run(sine, kGoldenSamples, ws);
  ASSERT_EQ(res.slice_bits.size(), 8u);
  for (std::size_t n = 0; n < kGoldenSamples; ++n) {
    int sum = 0;
    for (const auto& bits : res.slice_bits) sum += bits[n] ? 1 : 0;
    EXPECT_EQ(sum, res.counts[n]) << "sample " << n;
  }
}

// ---- Batched (SoA) engine: lane-k must equal serial draw-k bit-for-bit ----

/// Scalar reference: a fresh modulator at `seed` driven by the same signal
/// shape the batched run uses (0.45 FS sine at fs/64).
msim::ModulatorResult run_scalar_at_seed(
    std::uint64_t seed,
    const msim::VcoDsmModulator::Options& opts = {},
    msim::SimConfig cfg = golden_config()) {
  cfg.seed = seed;
  msim::VcoDsmModulator mod(cfg, opts);
  const dsp::SignalFn sine =
      dsp::make_sine(0.45 * mod.full_scale_diff(), cfg.fs_hz / 64.0);
  return mod.run(sine, kGoldenSamples);
}

/// Exact equality on every ModulatorResult field (EXPECT_EQ on doubles is
/// bit-compare up to -0.0/NaN, which the equivalence contract forbids).
void expect_bit_identical(const msim::ModulatorResult& got,
                          const msim::ModulatorResult& want) {
  EXPECT_EQ(got.counts, want.counts);
  EXPECT_EQ(got.output, want.output);
  EXPECT_EQ(got.slice_bits, want.slice_bits);
  EXPECT_EQ(got.mean_vctrlp, want.mean_vctrlp);
  EXPECT_EQ(got.mean_vctrln, want.mean_vctrln);
  EXPECT_EQ(got.mean_freq1_hz, want.mean_freq1_hz);
  EXPECT_EQ(got.mean_freq2_hz, want.mean_freq2_hz);
  EXPECT_EQ(got.bit_toggle_rate, want.bit_toggle_rate);
}

/// Runs a batch over `seeds` and checks lane k against the scalar run at
/// seeds[k].
void check_batch_vs_serial(const std::vector<std::uint64_t>& seeds,
                           const msim::VcoDsmModulator::Options& opts = {},
                           const msim::SimConfig& cfg = golden_config()) {
  auto batch = msim::BatchedModulator::create(cfg, seeds, opts);
  ASSERT_NE(batch, nullptr) << "width " << seeds.size();
  const dsp::SignalFn base = dsp::make_sine(1.0, cfg.fs_hz / 64.0);
  std::vector<double> scale(seeds.size());
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    scale[k] = 0.45 * batch->full_scale_diff(static_cast<int>(k));
  }
  msim::BatchedWorkspace ws;
  const auto& res = batch->run(base, scale, kGoldenSamples, ws);
  ASSERT_EQ(res.size(), seeds.size());
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    SCOPED_TRACE(::testing::Message() << "lane " << k << " seed " << seeds[k]);
    expect_bit_identical(res[k], run_scalar_at_seed(seeds[k], opts, cfg));
  }
}

TEST(BatchedModulatorTest, LanesBitIdenticalToSerialAtEveryWidth) {
  check_batch_vs_serial({42, 7});
  check_batch_vs_serial({42, 7, 1000, 1001});
  check_batch_vs_serial({42, 7, 1000, 1001, 5, 6, 99, 123456789});
}

TEST(BatchedModulatorTest, LaneZeroMatchesPinnedGolden) {
  // The W=2 batch containing seed 42 must reproduce the pinned scalar
  // golden above, not merely agree with a freshly-run scalar modulator.
  const msim::SimConfig cfg = golden_config();
  auto batch = msim::BatchedModulator::create(cfg, {42, 7});
  ASSERT_NE(batch, nullptr);
  const dsp::SignalFn base = dsp::make_sine(1.0, cfg.fs_hz / 64.0);
  const std::vector<double> scale = {0.45 * batch->full_scale_diff(0),
                                     0.45 * batch->full_scale_diff(1)};
  msim::BatchedWorkspace ws;
  const auto& res = batch->run(base, scale, kGoldenSamples, ws);
  EXPECT_DOUBLE_EQ(res[0].mean_vctrlp, 0.54830643026514958);
  EXPECT_DOUBLE_EQ(res[0].mean_vctrln, 0.55171783827349186);
  EXPECT_DOUBLE_EQ(res[0].mean_freq1_hz, 2042240083.1979506);
  EXPECT_DOUBLE_EQ(res[0].mean_freq2_hz, 2043780337.4088008);
  EXPECT_DOUBLE_EQ(res[0].bit_toggle_rate, 5.625);
}

TEST(BatchedModulatorTest, AllCompiledTiersProduceIdenticalBits) {
  // Which kernel TU runs (scalar / sse2 / avx2) must never change a result
  // bit — only throughput. Runs the same batch under every tier this build
  // and CPU can execute and compares element-wise.
  const auto max_tier =
      std::min(util::simd::compiled_cap(), util::simd::cpu_tier());
  const msim::SimConfig cfg = golden_config();
  const std::vector<std::uint64_t> seeds = {42, 7, 1000, 1001};
  const dsp::SignalFn base = dsp::make_sine(1.0, cfg.fs_hz / 64.0);

  std::vector<msim::ModulatorResult> reference;
  for (int t = 0; t <= static_cast<int>(max_tier); ++t) {
    util::simd::set_tier_override_for_testing(t);
    SCOPED_TRACE(::testing::Message()
                 << "tier "
                 << util::simd::tier_name(static_cast<util::simd::Tier>(t)));
    auto batch = msim::BatchedModulator::create(cfg, seeds);
    ASSERT_NE(batch, nullptr);
    std::vector<double> scale(seeds.size());
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      scale[k] = 0.45 * batch->full_scale_diff(static_cast<int>(k));
    }
    msim::BatchedWorkspace ws;
    const auto& res = batch->run(base, scale, kGoldenSamples, ws);
    if (t == 0) {
      reference = res;
    } else {
      for (std::size_t k = 0; k < seeds.size(); ++k) {
        SCOPED_TRACE(::testing::Message() << "lane " << k);
        expect_bit_identical(res[k], reference[k]);
      }
    }
  }
  util::simd::set_tier_override_for_testing(-1);
}

TEST(BatchedModulatorTest, RecordBitsAndStaticMappingMatchSerial) {
  msim::VcoDsmModulator::Options opts;
  opts.record_bits = true;
  opts.mapping = msim::ElementMapping::kStaticThermometer;
  check_batch_vs_serial({42, 7, 1000, 1001}, opts);
}

TEST(BatchedModulatorTest, RippleAndMetastabilityMatchSerial) {
  // Exercises the remaining kernel branches: VREF ripple evaluation, the
  // data-dependent metastability draw, and the common-mode error flip.
  msim::SimConfig cfg = golden_config();
  cfg.vref_ripple_amp_v = 0.01;
  cfg.vref_ripple_freq_hz = 60e6;
  cfg.comparator_meta_window_s = 5e-12;
  check_batch_vs_serial({42, 7, 1000, 1001}, {}, cfg);
}

TEST(BatchedModulatorTest, CurrentSteeringDacFallsBackToScalar) {
  msim::VcoDsmModulator::Options opts;
  opts.dac = msim::DacKind::kCurrentSteering;
  EXPECT_EQ(msim::BatchedModulator::create(golden_config(), {42, 7}, opts),
            nullptr);
  EXPECT_EQ(msim::BatchedModulator::create(golden_config(), {42, 7, 9}),
            nullptr)
      << "width 3 is not a kernel width";
}

TEST(BatchedModulatorTest, PreferredWidthIsSupported) {
  EXPECT_TRUE(
      msim::BatchedModulator::width_supported(msim::BatchedModulator::preferred_width()));
  EXPECT_GE(msim::BatchedModulator::preferred_width(), 2);
}

TEST(ResistorDacEquivalenceTest, PackedRunningSumMatchesLegacyPath) {
  util::Rng rng(123);
  msim::ResistorDacBank bank(8, 10e3, 1.1, 0.01, util::Rng(9).fork("dac"));
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<bool> levels(8);
    for (std::size_t i = 0; i < levels.size(); ++i) levels[i] = rng.bernoulli(0.5);
    const double v = rng.uniform(0.0, 1.1);
    const double legacy = bank.current_into_node(levels, v);
    bank.set_levels(msim::SliceBits::from_vector(levels));
    // Same slice-order summation in both paths => bit-identical.
    EXPECT_DOUBLE_EQ(bank.current_into_node(v), legacy);
  }
}

TEST(SliceBitsTest, BasicOperations) {
  const msim::SliceBits alt = msim::SliceBits::alternating(8);
  EXPECT_EQ(alt.count(), 4);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(alt.test(i), i % 2 == 0);
  EXPECT_EQ(alt.complement().mask(), 0xAAu);
  EXPECT_EQ(alt.toggles_vs(alt.complement()), 8);

  const msim::SliceBits th = msim::SliceBits::first_k(8, 3);
  EXPECT_EQ(th.mask(), 0x7u);
  EXPECT_EQ(msim::SliceBits::first_k(64, 64).count(), 64);

  msim::SliceBits b(8);
  b.set(2, true);
  b.set(7, true);
  EXPECT_EQ(b.count(), 2);
  b.set(2, false);
  EXPECT_EQ(b.mask(), 0x80u);

  EXPECT_EQ(msim::SliceBits::from_vector({true, false, true}).mask(), 0x5u);
  EXPECT_EQ(msim::SliceBits::full_mask(64), ~0ULL);
}

}  // namespace
}  // namespace vcoadc
