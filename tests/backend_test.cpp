#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/adc.h"
#include "core/backend.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "msim/modulator.h"

namespace vcoadc::core {
namespace {

double fir_mag(const std::vector<double>& h, double f_norm) {
  double re = 0, im = 0;
  for (std::size_t k = 0; k < h.size(); ++k) {
    re += h[k] * std::cos(2 * std::numbers::pi * f_norm * static_cast<double>(k));
    im -= h[k] * std::sin(2 * std::numbers::pi * f_norm * static_cast<double>(k));
  }
  return std::sqrt(re * re + im * im);
}

double cic_mag(int order, int rate, double f_in) {
  if (f_in == 0) return 1.0;
  const double num = std::sin(std::numbers::pi * f_in * rate);
  const double den = rate * std::sin(std::numbers::pi * f_in);
  return std::pow(std::fabs(num / den), order);
}

TEST(CicCompensator, FlattensDroop) {
  const int order = 3, rate = 16;
  const auto comp = design_cic_compensator(order, rate, 15);
  ASSERT_EQ(comp.size(), 15u);
  // Symmetric (linear phase).
  for (std::size_t k = 0; k < comp.size() / 2; ++k) {
    EXPECT_NEAR(comp[k], comp[comp.size() - 1 - k], 1e-12);
  }
  // Combined response |H_cic * H_comp| flat within 0.2 dB over the
  // passband; uncompensated CIC droops much more.
  double worst_comp = 0, worst_raw = 0;
  for (double f_out = 0.01; f_out <= 0.2; f_out += 0.01) {
    const double cic = cic_mag(order, rate, f_out / rate);
    const double total = cic * fir_mag(comp, f_out);
    worst_comp = std::max(worst_comp, std::fabs(20 * std::log10(total)));
    worst_raw = std::max(worst_raw, std::fabs(20 * std::log10(cic)));
  }
  EXPECT_LT(worst_comp, 0.2);
  EXPECT_GT(worst_raw, 0.5);
}

TEST(Backend, RateDerivation) {
  const AdcSpec spec = AdcSpec::paper_40nm();  // OSR 75
  DigitalBackend be(spec);
  EXPECT_EQ(be.cic_rate(), 16);  // power-of-2 floor of 75/4
  EXPECT_EQ(be.total_decimation(), 16 * 4);
  EXPECT_NEAR(be.output_rate_hz(), spec.fs_hz / 64.0, 1.0);
  // Output Nyquist comfortably covers the signal band.
  EXPECT_GT(be.output_rate_hz() / 2.0, spec.bandwidth_hz);
}

TEST(Backend, PreservesInBandSndr) {
  // End-to-end product view: modulator -> digital back end; the decimated
  // stream must retain the in-band SNDR (within ~3 dB of the modulator
  // measurement). The tone is chosen coherent over HALF the capture so the
  // post-decimation analysis window (which discards the filter warm-up)
  // still holds an integer number of cycles.
  const AdcSpec spec = AdcSpec::paper_40nm();
  const msim::SimConfig cfg = spec.to_sim_config();
  const std::size_t n_total = 1 << 16;
  const std::size_t n_half = n_total / 2;
  const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n_half);

  msim::VcoDsmModulator mod(cfg);
  const double amp = mod.full_scale_diff() * std::pow(10.0, -3.0 / 20.0);
  const auto res = mod.run(dsp::make_sine(amp, fin), n_total);

  // Modulator-domain reference SNDR over the full (coherent) capture.
  const auto sp_mod = dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0,
                                            dsp::WindowKind::kHann);
  const double sndr_mod =
      dsp::analyze_sndr(sp_mod, spec.bandwidth_hz, fin).sndr_db;

  DigitalBackend be(spec);
  const auto dec = be.process(res.output);
  const std::size_t n_dec = n_half / static_cast<std::size_t>(be.total_decimation());
  ASSERT_GE(dec.size(), 2 * n_dec);
  std::vector<double> tail(dec.end() - static_cast<long>(n_dec), dec.end());
  const auto sp = dsp::compute_spectrum(tail, be.output_rate_hz(), 1.0,
                                        dsp::WindowKind::kHann);
  const auto rep = dsp::analyze_sndr(sp, spec.bandwidth_hz, fin);
  EXPECT_GT(rep.sndr_db, sndr_mod - 3.0);
  EXPECT_NEAR(rep.fundamental_dbfs, -3.0, 1.0);
}

TEST(Backend, DroopCompensationHelpsNearBandEdge) {
  // A tone near the band edge suffers CIC droop without compensation.
  const AdcSpec spec = AdcSpec::paper_40nm();
  AdcDesign adc(spec);
  SimulationOptions opts;
  opts.n_samples = 1 << 15;
  opts.fin_target_hz = spec.bandwidth_hz * 0.9;  // near the edge
  const RunResult run = adc.simulate(opts);

  BackendConfig with;
  BackendConfig without;
  without.droop_compensation = false;
  auto amp_of = [&](const BackendConfig& cfg) {
    DigitalBackend be(spec, cfg);
    const auto dec = be.process(run.mod.output);
    std::size_t n = 1;
    while (n * 2 <= dec.size()) n *= 2;
    std::vector<double> tail(dec.end() - static_cast<long>(n), dec.end());
    const auto sp = dsp::compute_spectrum(tail, be.output_rate_hz(), 1.0,
                                          dsp::WindowKind::kHann);
    return dsp::analyze_sndr(sp, spec.bandwidth_hz, run.fin_hz)
        .fundamental_dbfs;
  };
  const double amp_with = amp_of(with);
  const double amp_without = amp_of(without);
  EXPECT_GT(amp_with, amp_without + 0.1);  // droop recovered
  EXPECT_NEAR(amp_with, -3.0, 0.5);
}

}  // namespace
}  // namespace vcoadc::core
