#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "msim/comparator.h"
#include "msim/modulator.h"
#include "msim/noise.h"
#include "msim/resistor_dac.h"
#include "msim/ring_vco.h"
#include "util/rng.h"

namespace vcoadc::msim {
namespace {

constexpr double kPi = std::numbers::pi;

SimConfig ideal_40nm_config() {
  SimConfig cfg;
  cfg.num_slices = 8;
  cfg.fs_hz = 750e6;
  cfg.substeps = 8;
  cfg.vdd = 1.1;
  cfg.vrefp = 1.1;
  cfg.vctrl_mid = 0.55;
  // Deliberately NOT a rational multiple of fs (2.0e9 = (8/3)*750 MHz would
  // lock the sampled ring phase into a 3-point orbit and tone up the idle
  // pattern); a real design would pick the center frequency the same way.
  cfg.vco_center_hz = 2.043e9;
  cfg.kvco_hz_per_v = 4.5e8;
  cfg.r_input_ohms = 1250.0;
  cfg.r_dac_ohms = 10000.0;
  cfg.g_vco_load_s = 5e-4;
  cfg.c_node_f = 200e-15;
  cfg.thermal_noise = false;
  cfg.seed = 1234;
  return cfg;
}

TEST(RingVco, FrequencyFollowsControl) {
  RingVco vco(8, 2e9, 5e8, 0.55, 0.0, 0.0, 1.0, 0.0, util::Rng(1));
  EXPECT_DOUBLE_EQ(vco.freq_hz(0.55), 2e9);
  EXPECT_DOUBLE_EQ(vco.freq_hz(0.65), 2e9 + 5e7);
  EXPECT_DOUBLE_EQ(vco.freq_hz(0.45), 2e9 - 5e7);
}

TEST(RingVco, FrequencyNeverNegative) {
  RingVco vco(8, 2e9, 5e8, 0.55, 0.0, 0.0, 1.0, 0.0, util::Rng(1));
  EXPECT_GT(vco.freq_hz(-100.0), 0.0);
}

TEST(RingVco, PhaseAccumulation) {
  RingVco vco(8, 1e9, 0.0, 0.55, 0.0, 0.0, 1.0, 0.0, util::Rng(1));
  const double dt = 1e-12;
  for (int i = 0; i < 1000; ++i) vco.advance(0.55, dt);
  // 1 ns at 1 GHz = exactly one cycle.
  EXPECT_NEAR(vco.phase(), 2 * kPi, 1e-6);
}

TEST(RingVco, TapSpacingNominal) {
  RingVco vco(8, 1e9, 0.0, 0.55, 0.0, 0.0, 1.0, 0.0, util::Rng(1));
  const auto& offs = vco.tap_offsets();
  ASSERT_EQ(offs.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(offs[static_cast<std::size_t>(i)], i * kPi / 8, 1e-12);
  }
}

TEST(RingVco, TapSpacingWithMismatchDeviates) {
  RingVco vco(8, 1e9, 0.0, 0.55, 0.0, 0.05, 1.0, 0.0, util::Rng(7));
  const auto& offs = vco.tap_offsets();
  double max_dev = 0;
  for (int i = 0; i < 8; ++i) {
    max_dev = std::max(max_dev,
                       std::fabs(offs[static_cast<std::size_t>(i)] - i * kPi / 8));
  }
  EXPECT_GT(max_dev, 1e-4);
  EXPECT_LT(max_dev, 0.5);  // still recognizably a ring
}

TEST(RingVco, TapLevelSquareWave) {
  RingVco vco(4, 1e9, 0.0, 0.55, 0.0, 0.0, 1.0, 0.0, util::Rng(1));
  EXPECT_TRUE(vco.tap_level(0));  // phase 0 -> first half period high
  // Advance half a period -> low.
  for (int i = 0; i < 500; ++i) vco.advance(0.55, 1e-12);
  EXPECT_FALSE(vco.tap_level(0));
}

TEST(RingVco, TimeToEdgeBounded) {
  RingVco vco(8, 2e9, 0.0, 0.55, 0.0, 0.0, 1.0, 0.0, util::Rng(1));
  const double half_period = 0.5 / 2e9;
  for (int i = 0; i < 8; ++i) {
    const double tte = vco.time_to_edge(i, 0.55);
    EXPECT_GE(tte, 0.0);
    EXPECT_LE(tte, half_period * 1.001);
  }
}

TEST(RingVco, WhiteFmNoiseAccumulates) {
  RingVco quiet(8, 2e9, 0.0, 0.55, 0.0, 0.0, 1.0, 0.0, util::Rng(3));
  RingVco noisy(8, 2e9, 0.0, 0.55, 0.0, 0.0, 1.0, 1e6, util::Rng(3));
  for (int i = 0; i < 10000; ++i) {
    quiet.advance(0.55, 1e-12);
    noisy.advance(0.55, 1e-12);
  }
  EXPECT_NE(quiet.phase(), noisy.phase());
  // Expected random-walk sigma after 10k steps of 1 ps at 1e6 Hz^2/Hz is
  // 2*pi*sqrt(1e6 * 1e-8) = 0.63 rad; allow 5 sigma.
  EXPECT_NEAR(quiet.phase(), noisy.phase(), 3.2);
}

TEST(Comparator, StrongArmAlwaysValid) {
  for (double vcm : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(common_mode_error_prob(ComparatorKind::kStrongArm, vcm, 1.1),
                     0.0);
  }
}

TEST(Comparator, Nand3FailsAtLowCommonMode) {
  // The Sec. 2.2.1 story: at the buffer's 0.25 V CM, NAND3 mis-decides.
  const double low = common_mode_error_prob(ComparatorKind::kNand3, 0.25, 1.1);
  const double high = common_mode_error_prob(ComparatorKind::kNand3, 0.9, 1.1);
  EXPECT_GT(low, 0.2);
  EXPECT_LT(high, 1e-3);
}

TEST(Comparator, Nor3WorksAtLowCommonMode) {
  const double low = common_mode_error_prob(ComparatorKind::kNor3, 0.25, 1.1);
  const double high = common_mode_error_prob(ComparatorKind::kNor3, 1.05, 1.1);
  EXPECT_LT(low, 1e-3);
  EXPECT_GT(high, 0.2);
}

TEST(Comparator, OffsetMapsToTime) {
  SamplingFrontEnd::Params p;
  p.offset_sigma_v = 5e-3;
  p.tap_slew_v_per_s = 1e10;
  SamplingFrontEnd fe(p, util::Rng(5));
  EXPECT_NE(fe.offset_v(), 0.0);
  EXPECT_NEAR(fe.offset_time_s(), fe.offset_v() / 1e10, 1e-18);
}

TEST(Comparator, MetastabilityRandomizesNearEdge) {
  SamplingFrontEnd::Params p;
  p.meta_window_s = 10e-12;
  SamplingFrontEnd fe(p, util::Rng(6));
  auto level_true = [](double) { return true; };
  int ones = 0;
  for (int i = 0; i < 1000; ++i) {
    ones += fe.sample(level_true, /*time_to_edge=*/1e-12, 0.0);
  }
  EXPECT_GT(ones, 300);
  EXPECT_LT(ones, 700);
  // Far from the edge, the decision is deterministic.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(fe.sample(level_true, /*time_to_edge=*/1e-9, 0.0));
  }
}

TEST(ResistorDac, CurrentsAndConductance) {
  ResistorDacBank bank(4, 10000.0, 1.0, 0.0, util::Rng(1));
  EXPECT_NEAR(bank.total_conductance(), 4.0 / 10000.0, 1e-12);
  // All high at node 0 V: I = 4 * 1.0/10k.
  EXPECT_NEAR(bank.current_into_node({true, true, true, true}, 0.0), 4e-4,
              1e-12);
  // All low at node 0.5: I = -4 * 0.5/10k.
  EXPECT_NEAR(bank.current_into_node({false, false, false, false}, 0.5),
              -2e-4, 1e-12);
  // Mixed.
  EXPECT_NEAR(bank.current_into_node({true, false, false, false}, 0.5),
              (0.5 / 10000.0) - 3 * (0.5 / 10000.0), 1e-12);
}

TEST(ResistorDac, MismatchPerturbsConductances) {
  ResistorDacBank bank(8, 10000.0, 1.0, 0.01, util::Rng(9));
  double min_g = 1e9, max_g = 0;
  for (double g : bank.conductances()) {
    min_g = std::min(min_g, g);
    max_g = std::max(max_g, g);
  }
  EXPECT_NE(min_g, max_g);
  EXPECT_NEAR(min_g, 1e-4, 5e-6);
  EXPECT_NEAR(max_g, 1e-4, 5e-6);
}

TEST(ControlNode, SettlesToDividerVoltage) {
  ControlNode::Params p;
  p.g_input_s = 1e-3;
  p.g_load_s = 1e-3;
  p.c_node_f = 100e-15;
  p.thermal_noise = false;
  p.v_init = 0.0;
  ControlNode node(p, util::Rng(1));
  // No DAC: v_inf = G_in*v_in/(G_in+G_load) = 0.5*v_in.
  for (int i = 0; i < 10000; ++i) node.step(1.0, 0.0, 0.0, 1e-12);
  EXPECT_NEAR(node.voltage(), 0.5, 1e-9);
}

TEST(ControlNode, ThermalNoiseIsKtOverC) {
  ControlNode::Params p;
  p.g_input_s = 1e-3;
  p.g_load_s = 0.0;
  p.c_node_f = 50e-15;
  p.thermal_noise = true;
  p.v_init = 1.0;
  ControlNode node(p, util::Rng(77));
  // Let it reach steady state, then measure variance around the mean.
  for (int i = 0; i < 2000; ++i) node.step(1.0, 0.0, 0.0, 1e-11);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    node.step(1.0, 0.0, 0.0, 1e-11);
    sum += node.voltage();
    sum2 += node.voltage() * node.voltage();
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  const double kt_over_c = 1.380649e-23 * 300.0 / 50e-15;
  EXPECT_NEAR(var / kt_over_c, 1.0, 0.15);
}

TEST(Modulator, LoopGainInSanityWindow) {
  VcoDsmModulator mod(ideal_40nm_config());
  const double g = mod.loop_gain_lsb_per_clock();
  EXPECT_GT(g, 0.3);
  EXPECT_LT(g, 4.0);
}

TEST(Modulator, FullScaleMatchesNetworkMath) {
  const SimConfig cfg = ideal_40nm_config();
  VcoDsmModulator mod(cfg);
  // FS = (N/Rdac)*VREFP*Rin = (8/10k)*1.1*1250 = 1.1 V.
  EXPECT_NEAR(mod.full_scale_diff(), 1.1, 1e-9);
}

TEST(Modulator, MidscaleIdleAverageIsHalf) {
  const SimConfig cfg = ideal_40nm_config();
  VcoDsmModulator mod(cfg);
  const auto res = mod.run(dsp::make_dc(0.0), 4096);
  double mean = 0;
  for (double y : res.output) mean += y;
  mean /= static_cast<double>(res.output.size());
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(res.mean_vctrlp, cfg.vctrl_mid, 0.05);
  EXPECT_NEAR(res.mean_vctrln, cfg.vctrl_mid, 0.05);
}

TEST(Modulator, DcTransferIsLinear) {
  // Sweep DC inputs across +/-60% FS; the mean output must track linearly
  // (STF ~ 1 in band) with gain -1/FS... sign per the feedback polarity.
  const SimConfig cfg = ideal_40nm_config();
  VcoDsmModulator probe(cfg);
  const double fs_diff = probe.full_scale_diff();
  std::vector<double> ins, outs;
  for (double frac : {-0.6, -0.3, 0.0, 0.3, 0.6}) {
    SimConfig c = cfg;
    c.seed = 999;
    VcoDsmModulator mod(c);
    const auto res = mod.run(dsp::make_dc(frac * fs_diff), 8192);
    double mean = 0;
    for (std::size_t i = 2048; i < res.output.size(); ++i) mean += res.output[i];
    mean /= static_cast<double>(res.output.size() - 2048);
    ins.push_back(frac);
    outs.push_back(mean);
  }
  // Fit gain: out = a*in.
  double sxy = 0, sxx = 0;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    sxy += ins[i] * outs[i];
    sxx += ins[i] * ins[i];
  }
  const double gain = sxy / sxx;
  EXPECT_NEAR(std::fabs(gain), 1.0, 0.06);
  // Residuals small -> linear.
  for (std::size_t i = 0; i < ins.size(); ++i) {
    EXPECT_NEAR(outs[i], gain * ins[i], 0.02) << "at input " << ins[i];
  }
}

TEST(Modulator, IdealSndrReachesPaperBallpark) {
  // 40 nm operating point of Table 3: fs = 750 MHz, BW = 5 MHz, -2 dBFS
  // input near 1 MHz. Ideal components: expect SNDR in the high 60s over a
  // 2^15-sample capture (quantization-limited).
  const SimConfig cfg = ideal_40nm_config();
  VcoDsmModulator mod(cfg);
  const std::size_t n = 1 << 15;
  const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n);
  const double amp = mod.full_scale_diff() * std::pow(10.0, -2.0 / 20.0);
  const auto res = mod.run(dsp::make_sine(amp, fin), n);
  const auto spec =
      dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0, dsp::WindowKind::kHann);
  const auto rep = dsp::analyze_sndr(spec, 5e6, fin);
  EXPECT_GT(rep.sndr_db, 62.0);
  EXPECT_LT(rep.sndr_db, 85.0);
  EXPECT_NEAR(rep.fundamental_dbfs, -2.0, 1.0);
}

TEST(Modulator, NoiseShapingSlopeIsFirstOrder) {
  const SimConfig cfg = ideal_40nm_config();
  VcoDsmModulator mod(cfg);
  const std::size_t n = 1 << 15;
  const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n);
  const auto res = mod.run(dsp::make_sine(0.3 * mod.full_scale_diff(), fin), n);
  const auto spec =
      dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0, dsp::WindowKind::kHann);
  const auto fit = dsp::fit_noise_slope(spec, 3e6, 2e8);
  EXPECT_NEAR(fit.db_per_decade, 20.0, 6.0);
}

TEST(Modulator, MoreSlicesMoreSqnr) {
  // Sec. 2.2: "to increase the effective quantizer resolution, we can simply
  // add more slices."
  double sndr4 = 0, sndr16 = 0;
  for (int slices : {4, 16}) {
    SimConfig cfg = ideal_40nm_config();
    cfg.num_slices = slices;
    // Keep the per-LSB loop gain constant: LSB shrinks as 1/N while the
    // DAC bank conductance grows as N, so rescale Kvco accordingly.
    cfg.kvco_hz_per_v *= 8.0 / slices * (8.0 / slices);
    // Keep FS constant by scaling R_in with the DAC bank strength.
    cfg.r_input_ohms *= slices / 8.0;
    VcoDsmModulator mod(cfg);
    const std::size_t n = 1 << 15;
    const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n);
    const auto res =
        mod.run(dsp::make_sine(0.7 * mod.full_scale_diff(), fin), n);
    const auto spec = dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0,
                                            dsp::WindowKind::kHann);
    const auto rep = dsp::analyze_sndr(spec, 5e6, fin);
    if (slices == 4) sndr4 = rep.sndr_db;
    if (slices == 16) sndr16 = rep.sndr_db;
  }
  EXPECT_GT(sndr16, sndr4 + 6.0);  // ~12 dB/2x-slices ideally, allow margin
}

TEST(Modulator, MismatchIsShapedOutOfBand) {
  // VCO stage mismatch and DAC mismatch barely move in-band SNDR (Sec. 2.2,
  // Fig. 17 annotation), though they raise the floor out of band.
  SimConfig clean = ideal_40nm_config();
  SimConfig dirty = clean;
  dirty.vco_stage_mismatch_sigma = 0.03;
  dirty.r_dac_mismatch_sigma = 0.005;
  dirty.vco_kvco_mismatch_sigma = 0.02;
  dirty.comparator_offset_sigma_v = 5e-3;
  const std::size_t n = 1 << 15;
  double sndr_clean = 0, sndr_dirty = 0;
  for (int pass = 0; pass < 2; ++pass) {
    const SimConfig& cfg = (pass == 0) ? clean : dirty;
    VcoDsmModulator mod(cfg);
    const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n);
    const auto res =
        mod.run(dsp::make_sine(0.7 * mod.full_scale_diff(), fin), n);
    const auto spec = dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0,
                                            dsp::WindowKind::kHann);
    const auto rep = dsp::analyze_sndr(spec, 5e6, fin);
    if (pass == 0) sndr_clean = rep.sndr_db;
    else sndr_dirty = rep.sndr_db;
  }
  EXPECT_GT(sndr_dirty, sndr_clean - 6.0);
  EXPECT_GT(sndr_dirty, 60.0);
}

TEST(Modulator, Nand3ComparatorBreaksAtLowCm) {
  // The ablation behind the NOR3 proposal: swap in the NAND3 comparator at
  // the 0.25 V buffer CM and the converter falls apart.
  const SimConfig cfg = ideal_40nm_config();
  VcoDsmModulator::Options nor3;
  nor3.comparator = ComparatorKind::kNor3;
  VcoDsmModulator::Options nand3;
  nand3.comparator = ComparatorKind::kNand3;
  const std::size_t n = 1 << 13;
  const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n);
  double sndr[2];
  int idx = 0;
  for (const auto* opts : {&nor3, &nand3}) {
    VcoDsmModulator mod(cfg, *opts);
    const auto res =
        mod.run(dsp::make_sine(0.7 * mod.full_scale_diff(), fin), n);
    const auto spec = dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0,
                                            dsp::WindowKind::kHann);
    sndr[idx++] = dsp::analyze_sndr(spec, 5e6, fin).sndr_db;
  }
  EXPECT_GT(sndr[0], sndr[1] + 20.0);
  EXPECT_LT(sndr[1], 30.0);
}

TEST(Modulator, BitStreamsAreBalancedAtMidscale) {
  SimConfig cfg = ideal_40nm_config();
  VcoDsmModulator::Options opts;
  opts.record_bits = true;
  VcoDsmModulator mod(cfg, opts);
  const auto res = mod.run(dsp::make_dc(0.0), 4096);
  ASSERT_EQ(res.slice_bits.size(), 8u);
  for (const auto& bits : res.slice_bits) {
    double duty = 0;
    for (bool b : bits) duty += b;
    duty /= static_cast<double>(bits.size());
    EXPECT_NEAR(duty, 0.5, 0.15);
  }
}

TEST(Modulator, IntrinsicRotationShapesElementMismatch) {
  // The intrinsic-CLA property inherited from refs [5,6]: with mismatched
  // DAC elements, the tap-rotating mapping keeps SNDR high, while a static
  // thermometer re-encoding of the same code collapses into harmonic
  // distortion.
  const std::size_t n = 1 << 14;
  SimConfig cfg = ideal_40nm_config();
  cfg.r_dac_mismatch_sigma = 0.01;
  // The effect grows with element count; 8 slices shows ~7 dB, 16 shows
  // ~15 dB. Use 16 (the paper operating point) and Kvco/R scaled to keep
  // the loop at gain ~1 as in the spec derivation.
  cfg.num_slices = 16;
  cfg.r_dac_ohms = 44000.0;
  cfg.r_input_ohms = 44000.0 / 16;
  cfg.kvco_hz_per_v = 3.05e8;
  double sndr[2], thd[2];
  for (int mode = 0; mode < 2; ++mode) {
    VcoDsmModulator::Options o;
    o.mapping = mode ? ElementMapping::kStaticThermometer
                     : ElementMapping::kIntrinsicRotation;
    VcoDsmModulator mod(cfg, o);
    const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n);
    const auto res =
        mod.run(dsp::make_sine(0.7 * mod.full_scale_diff(), fin), n);
    const auto sp = dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0,
                                          dsp::WindowKind::kHann);
    const auto rep = dsp::analyze_sndr(sp, 5e6, fin);
    sndr[mode] = rep.sndr_db;
    thd[mode] = rep.thd_db;
  }
  EXPECT_GT(sndr[0], sndr[1] + 8.0);  // rotation wins big
  EXPECT_GT(thd[1], thd[0] + 8.0);    // static mapping distorts
}

TEST(Modulator, MappingsIdenticalWithoutMismatch) {
  // Sanity: with perfectly matched elements the two mappings inject the
  // same feedback charge, so the outputs agree exactly.
  const SimConfig cfg = ideal_40nm_config();
  VcoDsmModulator::Options rot;
  VcoDsmModulator::Options stat;
  stat.mapping = ElementMapping::kStaticThermometer;
  VcoDsmModulator a(cfg, rot);
  VcoDsmModulator b(cfg, stat);
  const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, 2048);
  const auto sig = dsp::make_sine(0.5 * a.full_scale_diff(), fin);
  const auto ra = a.run(sig, 2048);
  const auto rb = b.run(sig, 2048);
  for (std::size_t i = 0; i < ra.counts.size(); ++i) {
    ASSERT_EQ(ra.counts[i], rb.counts[i]) << i;
  }
}

TEST(PinkNoiseModel, RoughAmplitude) {
  PinkNoise pn(0.01, 1e3, 1e7, 1e-8, util::Rng(3));
  double sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = pn.step();
    sum2 += v * v;
  }
  const double rms = std::sqrt(sum2 / n);
  EXPECT_GT(rms, 0.002);
  EXPECT_LT(rms, 0.05);
}

}  // namespace
}  // namespace vcoadc::msim
