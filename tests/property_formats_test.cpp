// Parameterized property sweeps over the exchange formats and the logic
// simulator: every library view must round-trip at every node, and every
// combinational master must match its truth table in the event simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "netlist/cell_library.h"
#include "netlist/lef.h"
#include "netlist/liberty.h"
#include "netlist/logic_sim.h"
#include "netlist/spice.h"
#include "tech/tech_node.h"

namespace vcoadc::netlist {
namespace {

// ------------------------------------------------ formats across nodes ----
class FormatsNodes : public ::testing::TestWithParam<double> {};

TEST_P(FormatsNodes, LefRoundTripEveryNode) {
  const tech::TechNode node = tech::TechDatabase::standard().at(GetParam());
  CellLibrary lib = make_standard_library(node);
  add_resistor_cells(lib, node);
  CellLibrary back("back");
  const auto res = parse_lef(write_lef(lib), back);
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(back.cells().size(), lib.cells().size());
  for (const auto& cell : lib.cells()) {
    const StdCell* b = back.find(cell.name);
    ASSERT_NE(b, nullptr);
    EXPECT_NEAR(b->width_m, cell.width_m, 1e-10) << cell.name;
    EXPECT_EQ(b->function, cell.function);
  }
}

TEST_P(FormatsNodes, LibertyDelaysPositiveAndNodeOrdered) {
  const tech::TechNode node = tech::TechDatabase::standard().at(GetParam());
  const CellLibrary lib = make_standard_library(node);
  for (const auto& cell : lib.cells()) {
    EXPECT_GT(cell_intrinsic_delay(cell, node), 0.0) << cell.name;
  }
  // Liberty text parses back with the same cell count.
  CellLibrary back("b");
  const auto res = parse_liberty(write_liberty(lib, node), back);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(back.cells().size(), lib.cells().size());
}

TEST_P(FormatsNodes, SpiceSubcktsForEveryMaster) {
  const tech::TechNode node = tech::TechDatabase::standard().at(GetParam());
  CellLibrary lib = make_standard_library(node);
  add_resistor_cells(lib, node);
  for (const auto& cell : lib.cells()) {
    const std::string sub = spice_cell_subckt(cell, node);
    ASSERT_FALSE(sub.empty()) << cell.name;
    EXPECT_NE(sub.find(".SUBCKT " + cell.name), std::string::npos);
    EXPECT_NE(sub.find(".ENDS " + cell.name), std::string::npos);
    // Device count matches the declared topology.
    int fets = 0;
    for (std::size_t pos = 0; (pos = sub.find("\nM", pos)) != std::string::npos;
         ++pos) {
      ++fets;
    }
    EXPECT_EQ(fets, spice_transistor_count(cell)) << cell.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Nodes, FormatsNodes,
                         ::testing::Values(22.0, 40.0, 90.0, 180.0, 500.0));

// -------------------------------------------------- logic truth tables ----
struct GateCase {
  const char* master;
  int inputs;
  // expected output for input index (bit i of the case index = input i)
  int truth;  // bitmask over 2^inputs cases
};

class GateTruth : public ::testing::TestWithParam<GateCase> {};

TEST_P(GateTruth, MatchesTruthTable) {
  const GateCase gc = GetParam();
  const tech::TechNode node = tech::TechDatabase::standard().at(40);
  CellLibrary lib = make_standard_library(node);
  Design d(&lib);
  Module& m = d.add_module("t");
  const char* pin_names[3] = {"A", "B", "C"};
  for (int i = 0; i < gc.inputs; ++i) {
    m.add_port(pin_names[i], PortDir::kInput);
  }
  m.add_port("Y", PortDir::kOutput);
  m.add_port("VDD", PortDir::kInout);
  m.add_port("VSS", PortDir::kInout);
  Instance inst;
  inst.name = "u0";
  inst.master = gc.master;
  for (int i = 0; i < gc.inputs; ++i) {
    inst.conn[pin_names[i]] = pin_names[i];
  }
  inst.conn["Y"] = "Y";
  inst.conn["VDD"] = "VDD";
  inst.conn["VSS"] = "VSS";
  m.add_instance(inst);
  d.set_top("t");

  LogicSim sim(d, node);
  for (int c = 0; c < (1 << gc.inputs); ++c) {
    for (int i = 0; i < gc.inputs; ++i) {
      sim.set(pin_names[i], ((c >> i) & 1) ? Logic::k1 : Logic::k0);
    }
    ASSERT_TRUE(sim.settle(sim.now() + 1e-9));
    const Logic expect = ((gc.truth >> c) & 1) ? Logic::k1 : Logic::k0;
    EXPECT_EQ(sim.get("Y"), expect) << gc.master << " case " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Gates, GateTruth,
    ::testing::Values(GateCase{"INVX1", 1, 0b01},      // Y = !A
                      GateCase{"INVX4", 1, 0b01},
                      GateCase{"BUFX2", 1, 0b10},      // Y = A
                      GateCase{"CLKBUFX8", 1, 0b10},
                      GateCase{"NAND2X1", 2, 0b0111},  // !(A&B)
                      GateCase{"NOR2X1", 2, 0b0001},   // !(A|B)
                      GateCase{"XOR2X1", 2, 0b0110},
                      GateCase{"NAND3X1", 3, 0b01111111},
                      GateCase{"NOR3X4", 3, 0b00000001}),
    [](const ::testing::TestParamInfo<GateCase>& info) {
      return info.param.master;
    });

}  // namespace
}  // namespace vcoadc::netlist
