// util::json: the serve protocol's wire format. What matters here is
// strictness (malformed wire input is rejected with a positioned error,
// never guessed at), round-trip stability (dump(parse(x)) is a fixed
// point, since result_fp hashes dumped bytes) and insertion-order
// preservation (responses must be byte-stable run to run).
#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

using namespace vcoadc::util;

namespace {

json::Value parse_ok(const std::string& text) {
  json::ParseResult pr = json::parse(text);
  EXPECT_TRUE(pr.ok) << text << " -> " << pr.error;
  return pr.value;
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").bool_or(false));
  EXPECT_FALSE(parse_ok("false").bool_or(true));
  EXPECT_EQ(parse_ok("42").number_or(0), 42.0);
  EXPECT_EQ(parse_ok("-0.5").number_or(0), -0.5);
  EXPECT_EQ(parse_ok("4e8").number_or(0), 4e8);
  EXPECT_EQ(parse_ok("1.25e-3").number_or(0), 1.25e-3);
  EXPECT_EQ(parse_ok("\"hi\"").string_or(""), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(parse_ok("\"a\\\"b\"").string_or(""), "a\"b");
  EXPECT_EQ(parse_ok("\"line\\nbreak\"").string_or(""), "line\nbreak");
  EXPECT_EQ(parse_ok("\"tab\\there\"").string_or(""), "tab\there");
  EXPECT_EQ(parse_ok("\"back\\\\slash\"").string_or(""), "back\\slash");
  EXPECT_EQ(parse_ok("\"\\u0041\"").string_or(""), "A");
}

TEST(JsonParseTest, NestedContainers) {
  const json::Value v = parse_ok(
      "{\"a\": [1, 2, {\"b\": true}], \"c\": {\"d\": null}, \"e\": \"x\"}");
  ASSERT_TRUE(v.is_object());
  const json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[1].number_or(0), 2.0);
  const json::Value* b = a->array[2].find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->bool_or(false));
  EXPECT_EQ(v.find("nope"), nullptr);
}

TEST(JsonParseTest, MalformedInputsRejectedWithPosition) {
  const char* bad[] = {
      "",            "{",           "[1, 2",        "{\"a\": }",
      "{\"a\" 1}",   "{bad: 1}",    "\"unterminated",
      "1 2",         "nul",         "[1,]",          "{\"a\":1,}",
      "\"bad \\q escape\"",
  };
  for (const char* text : bad) {
    json::ParseResult pr = json::parse(text);
    EXPECT_FALSE(pr.ok) << "accepted: " << text;
    EXPECT_FALSE(pr.error.empty()) << text;
  }
}

TEST(JsonParseTest, TrailingGarbageIsAnError) {
  // NDJSON framing already split lines; anything after the document is
  // a protocol violation, not a second document.
  EXPECT_FALSE(json::parse("{} {}").ok);
  EXPECT_FALSE(json::parse("42 null").ok);
  EXPECT_TRUE(json::parse("  {\"a\": 1}  ").ok);  // whitespace is fine
}

TEST(JsonDumpTest, RoundTripIsAFixedPoint) {
  const char* docs[] = {
      "null",
      "[1,2.5,-3,\"x\",true,null]",
      "{\"a\":1,\"b\":[{\"c\":\"d\"}],\"e\":{}}",
      "{\"nested\":{\"deep\":[[[1]]]}}",
  };
  for (const char* text : docs) {
    const std::string once = json::dump(parse_ok(text));
    const std::string twice = json::dump(parse_ok(once));
    EXPECT_EQ(once, twice) << text;
  }
}

TEST(JsonDumpTest, ObjectsKeepInsertionOrder) {
  json::Value v = json::Value::make_object();
  v.set("zulu", json::Value::make_number(1));
  v.set("alpha", json::Value::make_number(2));
  v.set("mike", json::Value::make_number(3));
  EXPECT_EQ(json::dump(v), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");
}

TEST(JsonDumpTest, NumbersPrintRoundTrippably) {
  EXPECT_EQ(json::dump(json::Value::make_number(42)), "42");
  EXPECT_EQ(json::dump(json::Value::make_number(-7)), "-7");
  // A value with a fraction must survive parse(dump(x)) bit-exactly.
  const double pi = 3.141592653589793;
  const json::Value back = parse_ok(json::dump(json::Value::make_number(pi)));
  EXPECT_EQ(back.number_or(0), pi);
}

TEST(JsonDumpTest, NonFiniteNumbersDumpAsNull) {
  // JSON cannot carry inf/nan; the writer must not emit invalid documents.
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(json::dump(json::Value::make_number(inf)), "null");
  EXPECT_EQ(json::dump(json::Value::make_number(nan)), "null");
}

TEST(JsonDumpTest, StringsEscapeControlAndQuoteCharacters) {
  json::Value v = json::Value::make_string("a\"b\\c\nd\te");
  const std::string dumped = json::dump(v);
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(parse_ok(dumped).string_or(""), "a\"b\\c\nd\te");
}

TEST(JsonValueTest, TypedReadsFallBackOnMismatch) {
  const json::Value v = parse_ok("{\"s\": \"x\", \"n\": 5}");
  EXPECT_EQ(v.find("s")->number_or(-1), -1.0);  // string read as number
  EXPECT_EQ(v.find("n")->string_or("fb"), "fb");
  EXPECT_TRUE(v.find("s")->bool_or(true));
}

}  // namespace
