#include <gtest/gtest.h>

#include "core/adc_spec.h"
#include "core/adc.h"
#include "netlist/cell_library.h"
#include "netlist/generator.h"
#include "synth/maze_router.h"
#include "synth/synthesis_flow.h"
#include "tech/tech_node.h"

namespace vcoadc::synth {
namespace {

/// Tiny hand-built placement: a few inverters in a row sharing nets.
struct TinyFixture {
  netlist::CellLibrary lib;
  netlist::Design design;
  std::vector<netlist::FlatInstance> flat;
  Placement pl;
  Rect die{0, 0, 20e-6, 20e-6};

  TinyFixture()
      : lib(netlist::make_standard_library(
            tech::TechDatabase::standard().at(40))),
        design(&lib) {
    netlist::Module& m = design.add_module("tiny");
    m.add_port("A", netlist::PortDir::kInput);
    m.add_port("Y", netlist::PortDir::kOutput);
    m.add_port("VDD", netlist::PortDir::kInout);
    m.add_port("VSS", netlist::PortDir::kInout);
    m.add_net("n1");
    m.add_net("n2");
    auto inv = [&](const char* name, const char* a, const char* y) {
      netlist::Instance i;
      i.name = name;
      i.master = "INVX1";
      i.conn = {{"A", a}, {"Y", y}, {"VDD", "VDD"}, {"VSS", "VSS"}};
      m.add_instance(i);
    };
    inv("u0", "A", "n1");
    inv("u1", "n1", "n2");
    inv("u2", "n2", "Y");
    design.set_top("tiny");
    flat = design.flatten();
    pl.cells.resize(flat.size());
    const double h = lib.row_height_m();
    for (std::size_t i = 0; i < flat.size(); ++i) {
      pl.cells[i].flat_index = static_cast<int>(i);
      // Spread the cells across the die so routes have real length.
      pl.cells[i].rect = {2e-6 + 6e-6 * static_cast<double>(i),
                          2e-6 + 5e-6 * static_cast<double>(i),
                          flat[i].cell->width_m, h};
    }
  }
};

TEST(MazeRouter, RoutesTinyDesignCompletely) {
  TinyFixture f;
  const MazeRouteResult res = maze_route(f.flat, f.pl, f.die, {});
  EXPECT_EQ(res.failed_nets, 0);
  EXPECT_EQ(res.overflowed_edges, 0);
  // Two 2-pin nets (n1, n2); A and Y are single-pin at top level.
  ASSERT_EQ(res.nets.size(), 2u);
  for (const auto& net : res.nets) {
    EXPECT_TRUE(net.routed) << net.name;
    EXPECT_GT(net.wirelength_m, 0.0) << net.name;
  }
  EXPECT_GT(res.total_wirelength_m, 0.0);
}

TEST(MazeRouter, PathsAreContiguousGridWalks) {
  TinyFixture f;
  const MazeRouteResult res = maze_route(f.flat, f.pl, f.die, {});
  for (const auto& net : res.nets) {
    for (const auto& path : net.paths) {
      ASSERT_GE(path.size(), 2u);
      for (std::size_t i = 1; i < path.size(); ++i) {
        const GridPoint& a = path[i - 1];
        const GridPoint& b = path[i];
        const int manhattan =
            std::abs(a.x - b.x) + std::abs(a.y - b.y) +
            std::abs(a.layer - b.layer);
        EXPECT_EQ(manhattan, 1) << "non-adjacent step in " << net.name;
        // Direction legality: layer 0 horizontal, layer 1 vertical.
        if (a.layer == b.layer) {
          if (a.layer == 0) {
            EXPECT_EQ(a.y, b.y);
          } else {
            EXPECT_EQ(a.x, b.x);
          }
        }
      }
    }
  }
}

TEST(MazeRouter, WirelengthAtLeastManhattanBound) {
  TinyFixture f;
  const MazeRouteResult res = maze_route(f.flat, f.pl, f.die, {});
  // For a 2-pin net, routed length >= manhattan distance of the snapped
  // pins (in grid steps * pitch).
  for (const auto& net : res.nets) {
    ASSERT_EQ(net.paths.size(), 1u);
    const auto& path = net.paths[0];
    const GridPoint& s = path.front();
    const GridPoint& t = path.back();
    const int manhattan = std::abs(s.x - t.x) + std::abs(s.y - t.y);
    const double pitch =
        f.lib.row_height_m();  // default grid pitch = row height
    EXPECT_GE(net.wirelength_m + 1e-12, manhattan * pitch);
  }
}

TEST(MazeRouter, CapacityForcesDetours) {
  // Many parallel nets through a 1-track channel must spread out or fail;
  // with ripup enabled they spread (no overflow).
  netlist::CellLibrary lib =
      netlist::make_standard_library(tech::TechDatabase::standard().at(40));
  netlist::Design design(&lib);
  netlist::Module& m = design.add_module("bus");
  std::vector<netlist::FlatInstance> flat;
  Placement pl;
  const double h = lib.row_height_m();
  const int kNets = 6;
  for (int i = 0; i < kNets; ++i) {
    m.add_net("n" + std::to_string(i));
  }
  // Drivers on the left, loads on the right, all in the SAME row at
  // distinct columns: the middle horizontal edges of that row are
  // contested (capacity 1), so routes must detour through other rows.
  for (int i = 0; i < kNets; ++i) {
    netlist::Instance d;
    d.name = "L" + std::to_string(i);
    d.master = "INVX1";
    d.conn = {{"Y", "n" + std::to_string(i)}};
    m.add_instance(d);
    netlist::Instance r;
    r.name = "R" + std::to_string(i);
    r.master = "INVX1";
    r.conn = {{"A", "n" + std::to_string(i)}};
    m.add_instance(r);
  }
  design.set_top("bus");
  flat = design.flatten();
  pl.cells.resize(flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    pl.cells[i].flat_index = static_cast<int>(i);
    const bool left = flat[i].path[0] == 'L';
    const int k = flat[i].path[1] - '0';
    pl.cells[i].rect = {(left ? 0.5e-6 : 12.0e-6) + 1.3e-6 * k,
                        8e-6,  // same row
                        flat[i].cell->width_m, h};
  }
  MazeRouterOptions opts;
  opts.edge_capacity = 1;
  opts.max_iterations = 4;
  const MazeRouteResult res =
      maze_route(flat, pl, Rect{0, 0, 20e-6, 20e-6}, opts);
  EXPECT_EQ(res.failed_nets, 0);
  EXPECT_EQ(res.overflowed_edges, 0);
}

TEST(MazeRouter, FullAdcRoutesWithoutOverflow) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  const auto res = adc.synthesize();
  EXPECT_EQ(res.detailed_routing.failed_nets, 0);
  EXPECT_EQ(res.detailed_routing.overflowed_edges, 0);
  EXPECT_GT(res.detailed_routing.nets.size(), 100u);
  // Routed length upper-bounds the HPWL estimate but stays within ~3x.
  EXPECT_GE(res.detailed_routing.total_wirelength_m,
            res.routing.total_hpwl_m * 0.5);
  EXPECT_LE(res.detailed_routing.total_wirelength_m,
            res.routing.total_hpwl_m * 3.0);
  EXPECT_GT(res.detailed_routing.total_vias, 0);
}

TEST(MazeRouter, DisableFlagSkipsRouting) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  SynthesisOptions opts;
  opts.detailed_route = false;
  const auto res = adc.synthesize(opts);
  EXPECT_TRUE(res.detailed_routing.nets.empty());
}

}  // namespace
}  // namespace vcoadc::synth
