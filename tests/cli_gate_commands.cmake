# CLI-level acceptance of the gate-level backend commands (ctest -P script).
#
# Exercises the emit-verilog / gatesim subcommands end to end over a shared
# persistent store:
#   1. emit-verilog writes the sign-off Verilog and reports equivalence;
#   2. gatesim (warm store: the emitted HDL loads from disk) reports the
#      comparator/ring checks passing and the decode bit-identical;
#   3. gatesim --top=<nonexistent> must fail with a structured diagnostic
#      naming the module, exit nonzero, and leave the store usable (a
#      follow-up clean run still succeeds warm).
#
# Expects -DCLI=<vcoadc_cli path> -DWORK=<dir>.

foreach(var CLI WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_gate_commands: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")
set(STORE "${WORK}/store")
set(SPEC --slices=4 --samples=256)

# --- 1. emit-verilog ------------------------------------------------------
execute_process(
  COMMAND "${CLI}" emit-verilog ${SPEC} "--out=${WORK}" "--store=${STORE}"
  OUTPUT_VARIABLE out1 ERROR_VARIABLE err1 RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "emit-verilog failed (${rc1}):\n${out1}\n${err1}")
endif()
if(NOT out1 MATCHES "instances verified equivalent")
  message(FATAL_ERROR "emit-verilog did not report equivalence:\n${out1}")
endif()
if(NOT EXISTS "${WORK}/adc_top.v")
  message(FATAL_ERROR "emit-verilog wrote no adc_top.v under ${WORK}")
endif()
file(SIZE "${WORK}/adc_top.v" VSIZE)
if(VSIZE EQUAL 0)
  message(FATAL_ERROR "emit-verilog wrote an empty adc_top.v")
endif()

# --- 2. gatesim over the warm store ---------------------------------------
execute_process(
  COMMAND "${CLI}" gatesim ${SPEC} "--store=${STORE}"
  OUTPUT_VARIABLE out2 ERROR_VARIABLE err2 RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "gatesim failed (${rc2}):\n${out2}\n${err2}")
endif()
if(NOT out2 MATCHES "comparator truth table: pass")
  message(FATAL_ERROR "gatesim comparator check did not pass:\n${out2}")
endif()
if(NOT out2 MATCHES "ring period .*: pass")
  message(FATAL_ERROR "gatesim ring check did not pass:\n${out2}")
endif()
if(NOT out2 MATCHES "bit-identical")
  message(FATAL_ERROR "gatesim decode was not bit-identical:\n${out2}")
endif()

# --- 3. unresolvable top: structured refusal, clean recovery --------------
execute_process(
  COMMAND "${CLI}" gatesim ${SPEC} --top=no_such_module "--store=${STORE}"
  OUTPUT_VARIABLE out3 ERROR_VARIABLE err3 RESULT_VARIABLE rc3)
if(rc3 EQUAL 0)
  message(FATAL_ERROR "gatesim accepted a nonexistent top module:\n${out3}")
endif()
if(NOT err3 MATCHES "no_such_module")
  message(FATAL_ERROR
    "gatesim refusal did not name the bad module:\n${err3}")
endif()
execute_process(
  COMMAND "${CLI}" gatesim ${SPEC} "--store=${STORE}"
  OUTPUT_VARIABLE out4 ERROR_VARIABLE err4 RESULT_VARIABLE rc4)
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR
    "gatesim did not recover after the refused top (${rc4}):\n${err4}")
endif()

message(STATUS "cli gate commands: emit-verilog + gatesim pass, bad top "
  "refused cleanly")
