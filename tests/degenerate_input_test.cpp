// Degenerate-input suite (DESIGN.md §3f): every boundary that used to
// assert, divide by zero or underflow an unsigned count now degrades with
// structured diagnostics. These tests drive exactly those inputs — 0/1
// point transfer sweeps, settle windows eating the whole capture, singular
// linearity fits, empty/corrupt netlists, non-power-of-two and
// zero-amplitude spectra — plain and (via the sanitizer variants in
// tests/CMakeLists.txt) under ASan/UBSan.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/adc.h"
#include "core/flow.h"
#include "core/linearity.h"
#include "dsp/spectrum.h"
#include "msim/modulator.h"
#include "netlist/cell_library.h"
#include "netlist/netlist.h"
#include "tech/tech_node.h"
#include "util/diag.h"

namespace {

using namespace vcoadc;
using core::AdcSpec;

AdcSpec small_spec() {
  AdcSpec spec = AdcSpec::paper_40nm();
  spec.num_slices = 4;
  return spec;
}

bool mentions(const std::vector<util::Diagnostic>& diags,
              const std::string& needle) {
  for (const auto& d : diags) {
    if (d.to_string().find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Checked<T> plumbing

TEST(CheckedTest, ValueAndFailureSemantics) {
  util::Checked<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_TRUE(ok.diagnostics().empty());

  auto bad = util::Checked<int>::failure(
      util::Diagnostic{util::Severity::kError, "stage", "item", "reason"});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.value_or(-1), -1);
  ASSERT_EQ(bad.diagnostics().size(), 1u);
  EXPECT_EQ(bad.diagnostics()[0].to_string(),
            "[error] stage item: reason");

  util::DiagSink sink;
  bad.report_to(&sink);
  EXPECT_EQ(sink.size(), 1u);
  bad.report_to(nullptr);  // null-safe
}

// ---------------------------------------------------------------------------
// Transfer-curve measurement: 0/1 points, settle >= samples

TEST(DegenerateTransfer, RejectsSweepsTooShortToAverage) {
  const AdcSpec spec = small_spec();

  core::TransferOptions one;
  one.points = 1;
  const auto r1 = core::measure_transfer_checked(spec, one);
  EXPECT_FALSE(r1.ok());
  EXPECT_TRUE(mentions(r1.diagnostics(), "points")) << r1.diagnostics().size();

  core::TransferOptions zero;
  zero.points = 0;
  EXPECT_FALSE(core::measure_transfer_checked(spec, zero).ok());

  // The unchecked wrapper degrades to an empty curve (it used to divide by
  // points - 1 == 0 when building the sweep grid).
  const core::TransferCurve curve = core::measure_transfer(spec, one);
  EXPECT_TRUE(curve.input_v.empty());
  EXPECT_TRUE(curve.output.empty());
}

TEST(DegenerateTransfer, RejectsSettleWindowEatingTheCapture) {
  const AdcSpec spec = small_spec();
  core::TransferOptions opts;
  opts.points = 3;
  opts.samples_per_point = 256;
  opts.settle_samples = 256;  // output.size() - settle would underflow
  const auto r = core::measure_transfer_checked(spec, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r.diagnostics(), "settle"));

  opts.settle_samples = 512;  // strictly larger, same refusal
  EXPECT_FALSE(core::measure_transfer_checked(spec, opts).ok());
}

TEST(DegenerateTransfer, RejectsInvalidSpecAndSpan) {
  AdcSpec bad = small_spec();
  bad.num_slices = 0;
  EXPECT_FALSE(core::measure_transfer_checked(bad, {}).ok());

  core::TransferOptions span;
  span.span_of_fs = 0.0;
  EXPECT_FALSE(core::measure_transfer_checked(small_spec(), span).ok());
}

TEST(DegenerateTransfer, MinimalValidSweepStillWorks) {
  core::TransferOptions opts;
  opts.points = 2;  // the smallest legal sweep
  opts.samples_per_point = 128;
  opts.settle_samples = 32;
  const auto r = core::measure_transfer_checked(small_spec(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().input_v.size(), 2u);
  EXPECT_EQ(r.value().output.size(), 2u);
  for (double v : r.value().output) EXPECT_TRUE(std::isfinite(v));
}

// ---------------------------------------------------------------------------
// Linearity fit: singular denominators never become +/-inf gains

TEST(DegenerateLinearity, IdenticalInputsYieldDiagnosticsNotInfiniteGain) {
  // All sweep inputs identical: dn*sxx - sx*sx == 0, the fit is singular.
  core::TransferCurve curve;
  curve.input_v = {0.1, 0.1, 0.1, 0.1};
  curve.output = {-0.5, 0.0, 0.25, 0.5};
  const core::LinearityReport rep = core::analyze_linearity(curve, 0.5);
  EXPECT_FALSE(rep.diagnostics.empty());
  EXPECT_TRUE(mentions(rep.diagnostics, "degenerate"));
  EXPECT_TRUE(std::isfinite(rep.gain));
  EXPECT_TRUE(std::isfinite(rep.offset));
  EXPECT_TRUE(std::isfinite(rep.max_inl_lsb));
}

TEST(DegenerateLinearity, RejectsShortMismatchedOrBadLsbCurves) {
  core::TransferCurve two;
  two.input_v = {-1.0, 1.0};
  two.output = {-0.9, 0.9};
  EXPECT_FALSE(core::analyze_linearity(two, 0.5).diagnostics.empty());

  core::TransferCurve mismatched;
  mismatched.input_v = {-1.0, 0.0, 1.0};
  mismatched.output = {-0.9, 0.9};
  EXPECT_FALSE(core::analyze_linearity(mismatched, 0.5).diagnostics.empty());

  core::TransferCurve fine;
  fine.input_v = {-1.0, 0.0, 1.0};
  fine.output = {-0.9, 0.0, 0.9};
  EXPECT_FALSE(core::analyze_linearity(fine, 0.0).diagnostics.empty());
  EXPECT_FALSE(
      core::analyze_linearity(fine, std::nan("")).diagnostics.empty());

  // The healthy 3-point fit still produces the expected gain, no diags.
  const core::LinearityReport ok = core::analyze_linearity(fine, 0.5);
  EXPECT_TRUE(ok.diagnostics.empty());
  EXPECT_NEAR(ok.gain, 0.9, 1e-12);
  EXPECT_NEAR(ok.offset, 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Spectrum: non-power-of-two, zero amplitude, near-DC harmonic folding

TEST(DegenerateSpectrum, RejectsUnusableRecordsWithEmptySpectrum) {
  const dsp::Spectrum empty = dsp::compute_spectrum(
      {}, 750e6, 1.0, dsp::WindowKind::kHann);
  EXPECT_TRUE(empty.power.empty());

  const std::vector<double> odd(1000, 0.5);  // not a power of two
  EXPECT_TRUE(dsp::compute_spectrum(odd, 750e6, 1.0, dsp::WindowKind::kHann)
                  .power.empty());

  const std::vector<double> x(1024, 0.5);
  EXPECT_TRUE(dsp::compute_spectrum(x, 750e6, 0.0, dsp::WindowKind::kHann)
                  .power.empty());
  EXPECT_TRUE(dsp::compute_spectrum(x, 750e6, std::nan(""),
                                    dsp::WindowKind::kHann)
                  .power.empty());

  // analyze_sndr on an empty spectrum returns the zeroed report.
  const dsp::SndrReport rep = dsp::analyze_sndr(empty, 5e6);
  EXPECT_EQ(rep.signal_power, 0.0);
  EXPECT_EQ(rep.fundamental_hz, 0.0);
}

TEST(DegenerateSpectrum, ZeroAmplitudeInputAnalyzesWithoutNaN) {
  const std::vector<double> silent(1 << 12, 0.0);
  const dsp::Spectrum spec =
      dsp::compute_spectrum(silent, 750e6, 1.0, dsp::WindowKind::kHann);
  ASSERT_EQ(spec.power.size(), silent.size() / 2);
  for (double p : spec.power) EXPECT_EQ(p, 0.0);

  const dsp::SndrReport rep = dsp::analyze_sndr(spec, 5e6);
  EXPECT_FALSE(std::isnan(rep.sndr_db));
  EXPECT_FALSE(std::isnan(rep.snr_db));
  EXPECT_FALSE(std::isnan(rep.sfdr_db));
  EXPECT_FALSE(std::isnan(rep.enob));
}

TEST(DegenerateSpectrum, NearDcFundamentalFoldsHarmonicsIntoBand) {
  // Synthetic one-sided spectrum: 512 bins over a 10.24 MHz Nyquist span.
  // Fundamental near DC at bin 8; H2..H4 land at bins 16/24/32, all well
  // inside the band. Before the negative-modulo guard in analyze_sndr, a
  // mis-normalized fold could skip or mis-bin exactly these low harmonics.
  dsp::Spectrum spec;
  const std::size_t n = 512;
  spec.bin_hz = 2e4;
  spec.fs_hz = spec.bin_hz * 2 * n;
  spec.window = dsp::WindowKind::kRect;
  spec.freq_hz.resize(n);
  spec.power.assign(n, 1e-12);
  spec.dbfs.assign(n, -120.0);
  for (std::size_t k = 0; k < n; ++k) {
    spec.freq_hz[k] = spec.bin_hz * static_cast<double>(k);
  }
  const std::size_t kf = 8;
  spec.power[kf] = 1.0;
  spec.power[2 * kf] = 1e-4;
  spec.power[3 * kf] = 1e-5;
  spec.power[4 * kf] = 1e-6;

  const double bw = spec.freq_hz[n - 1];
  const dsp::SndrReport rep =
      dsp::analyze_sndr(spec, bw, spec.freq_hz[kf]);
  EXPECT_EQ(rep.fundamental_hz, spec.freq_hz[kf]);
  // The harmonic bins are attributed to distortion, not left in the noise.
  EXPECT_NEAR(rep.distortion_power, 1e-4 + 1e-5 + 1e-6, 1e-8);
  EXPECT_FALSE(std::isnan(rep.thd_db));
}

TEST(DegenerateSpectrum, HarmonicsFoldBackAcrossNyquist) {
  // Fundamental high in the band: H2 of bin 300 (of 512) aliases to
  // 1024 - 600 = 424, H3 to |900 - 1024| = 124. The fold must land there.
  dsp::Spectrum spec;
  const std::size_t n = 512;
  spec.bin_hz = 2e4;
  spec.fs_hz = spec.bin_hz * 2 * n;
  spec.window = dsp::WindowKind::kRect;
  spec.freq_hz.resize(n);
  spec.power.assign(n, 0.0);
  spec.dbfs.assign(n, -200.0);
  for (std::size_t k = 0; k < n; ++k) {
    spec.freq_hz[k] = spec.bin_hz * static_cast<double>(k);
  }
  spec.power[300] = 1.0;
  spec.power[424] = 1e-4;  // folded H2
  spec.power[124] = 1e-5;  // folded H3

  const dsp::SndrReport rep =
      dsp::analyze_sndr(spec, spec.freq_hz[n - 1], spec.freq_hz[300]);
  EXPECT_EQ(rep.fundamental_hz, spec.freq_hz[300]);
  EXPECT_NEAR(rep.distortion_power, 1e-4 + 1e-5, 1e-9);
  EXPECT_NEAR(rep.noise_power, 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Netlist validation: empty designs, duplicates, dangling nets

TEST(DegenerateNetlist, EmptyDesignAndEmptyTopAreErrors) {
  const netlist::Design empty(nullptr);
  const auto no_modules = core::validate_netlist(empty);
  ASSERT_FALSE(no_modules.empty());
  EXPECT_TRUE(core::has_errors(no_modules));
  EXPECT_TRUE(mentions(no_modules, "no modules"));

  const netlist::CellLibrary lib("empty");
  netlist::Design hollow(&lib);
  hollow.add_module("adc_top");
  hollow.set_top("adc_top");
  const auto no_instances = core::validate_netlist(hollow);
  EXPECT_TRUE(core::has_errors(no_instances));
  EXPECT_TRUE(mentions(no_instances, "no instances"));
}

TEST(DegenerateNetlist, DuplicateInstanceNamesAreErrors) {
  const AdcSpec spec = small_spec();
  const tech::TechNode node = spec.tech_node();
  netlist::CellLibrary lib = netlist::make_standard_library(node);
  netlist::Design d(&lib);
  netlist::Module& top = d.add_module("top");
  d.set_top("top");
  top.add_net("a");
  top.add_net("y");
  netlist::Instance inv;
  inv.name = "u1";
  inv.master = "INVX1";
  inv.conn = {{"A", "a"}, {"Y", "y"}};
  top.add_instance(inv);
  top.add_instance(inv);  // same name again
  const auto diags = core::validate_netlist(d);
  EXPECT_TRUE(core::has_errors(diags));
  EXPECT_TRUE(mentions(diags, "duplicate instance name"));
}

TEST(DegenerateNetlist, DanglingNetsAreWarningsNotErrors) {
  const AdcSpec spec = small_spec();
  const tech::TechNode node = spec.tech_node();
  netlist::CellLibrary lib = netlist::make_standard_library(node);
  netlist::Design d(&lib);
  netlist::Module& top = d.add_module("top");
  d.set_top("top");
  top.add_net("a");
  top.add_net("y");
  top.add_net("never_used");
  netlist::Instance inv;
  inv.name = "u1";
  inv.master = "INVX1";
  inv.conn = {{"A", "a"}, {"Y", "y"}};
  top.add_instance(inv);
  const auto diags = core::validate_netlist(d);
  EXPECT_FALSE(core::has_errors(diags));
  bool warned = false;
  for (const auto& dg : diags) {
    if (dg.severity == util::Severity::kWarning &&
        dg.item.find("never_used") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
}

TEST(DegenerateNetlist, GeneratedDesignValidatesClean) {
  util::DiagSink sink;
  core::ExecContext ctx;
  core::ArtifactCache cache(16);
  ctx.cache = &cache;
  ctx.diag = &sink;
  const auto bundle = core::Flow(ctx).netlist(small_spec());
  ASSERT_NE(bundle.design, nullptr);
  EXPECT_FALSE(core::has_errors(core::validate_netlist(*bundle.design)));
}

// ---------------------------------------------------------------------------
// Flow boundaries: invalid specs and options propagate as null artifacts

TEST(DegenerateFlow, InvalidSpecYieldsNullArtifactsEverywhere) {
  util::DiagSink sink;
  core::ExecContext ctx;
  core::ArtifactCache cache(16);
  ctx.cache = &cache;
  ctx.diag = &sink;
  core::Flow flow(ctx);

  AdcSpec bad = small_spec();
  bad.fs_hz = -750e6;
  EXPECT_EQ(flow.tech_library(bad), nullptr);
  EXPECT_EQ(flow.netlist(bad).design, nullptr);
  EXPECT_EQ(flow.floorplan(bad), nullptr);
  EXPECT_EQ(flow.synthesis(bad), nullptr);
  EXPECT_EQ(flow.sim_run(bad, core::SimulationOptions{}), nullptr);
  EXPECT_FALSE(flow.report(bad).complete);
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(cache.stats().entries, 0u);  // nothing poisoned the cache
}

TEST(DegenerateFlow, SimOptionValidatorCoversEveryKnob) {
  auto errs = [](core::SimulationOptions o) {
    return core::has_errors(core::validate_sim_options(o));
  };
  core::SimulationOptions o;
  EXPECT_FALSE(errs(o));
  o.n_samples = 0;
  EXPECT_TRUE(errs(o));
  o.n_samples = 1000;  // not a power of two
  EXPECT_TRUE(errs(o));
  o.n_samples = 8;  // below the 16-sample floor
  EXPECT_TRUE(errs(o));
  o.n_samples = std::size_t{1} << 27;  // above the FFT cap
  EXPECT_TRUE(errs(o));

  core::SimulationOptions amp;
  amp.amplitude_dbfs = std::nan("");
  EXPECT_TRUE(errs(amp));
  core::SimulationOptions fin;
  fin.fin_target_hz = -1.0;
  EXPECT_TRUE(errs(fin));
  core::SimulationOptions wc;
  wc.wire_cap_f = -1e-15;
  EXPECT_TRUE(errs(wc));
}

TEST(DegenerateFlow, SpecValidatorRejectsNonFiniteAndOversizedSpecs) {
  AdcSpec nan_spec = small_spec();
  nan_spec.bandwidth_hz = std::nan("");
  EXPECT_FALSE(nan_spec.validate().empty());

  AdcSpec wide = small_spec();
  wide.num_slices = 65;  // SliceBits packs into one uint64
  EXPECT_FALSE(wide.validate().empty());

  AdcSpec inf_spec = small_spec();
  inf_spec.fs_hz = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(inf_spec.validate().empty());

  AdcSpec neg_vco = small_spec();
  neg_vco.vco_center_over_fs = -2.7;
  EXPECT_FALSE(neg_vco.validate().empty());
}

// ---------------------------------------------------------------------------
// Low-level degraded fallbacks: lookups warn and substitute, never abort

TEST(DegenerateFallbacks, TechDatabaseUnknownNodeDegrades) {
  const auto& db = tech::TechDatabase::standard();
  EXPECT_FALSE(db.find(37.0).has_value());
  const tech::TechNode interp = db.at(37.0);  // warns, interpolates
  EXPECT_TRUE(std::isfinite(interp.vdd));
  EXPECT_GT(interp.vdd, 0.0);
  EXPECT_GT(interp.fo4_delay_s, 0.0);

  const tech::TechNode junk = db.at(-5.0);  // warns, newest node
  EXPECT_EQ(junk.gate_length_nm, db.nodes().back().gate_length_nm);
  const tech::TechNode nan_node = db.at(std::nan(""));
  EXPECT_EQ(nan_node.gate_length_nm, db.nodes().back().gate_length_nm);
}

TEST(DegenerateFallbacks, CellLibraryDuplicatesAndUnknownsDegrade) {
  netlist::CellLibrary lib("t");
  netlist::StdCell c;
  c.name = "X1";
  c.width_m = 1.0;
  lib.add(c);
  c.width_m = 2.0;
  lib.add(c);  // duplicate: dropped with a warning
  EXPECT_EQ(lib.cells().size(), 1u);
  EXPECT_EQ(lib.at("X1").width_m, 1.0);  // first definition wins

  const netlist::StdCell& ghost = lib.at("NO_SUCH_CELL");
  EXPECT_EQ(ghost.name, "<unknown>");
  EXPECT_EQ(ghost.width_m, 0.0);
}

TEST(DegenerateFallbacks, DesignModuleLookupsDegrade) {
  const netlist::CellLibrary lib("t");
  netlist::Design d(&lib);
  d.add_module("m");
  netlist::Module& dup = d.add_module("m");  // returns the existing module
  EXPECT_EQ(dup.name(), "m");
  EXPECT_EQ(d.modules().size(), 1u);
  EXPECT_EQ(d.at("nope").name(), "<unknown>");
}

// ---------------------------------------------------------------------------
// Modulator config sanitization: clamped, finite, allocation-safe

TEST(DegenerateModulator, HostileConfigIsClampedAndRuns) {
  msim::SimConfig cfg;
  cfg.num_slices = 500;   // > the 64-slice cap
  cfg.substeps = 0;       // would make the CT solver loop degenerate
  cfg.fs_hz = -1.0;       // non-positive clock
  cfg.r_input_ohms = 0;   // division by zero in the conductances
  cfg.c_node_f = std::nan("");
  msim::VcoDsmModulator mod(cfg);
  EXPECT_LE(mod.config().num_slices, 64);
  EXPECT_GE(mod.config().num_slices, 2);
  EXPECT_GE(mod.config().substeps, 1);
  EXPECT_GT(mod.config().fs_hz, 0.0);
  EXPECT_GT(mod.config().r_input_ohms, 0.0);
  EXPECT_TRUE(std::isfinite(mod.config().c_node_f));

  const auto res = mod.run([](double) { return 0.0; }, 64);
  ASSERT_EQ(res.output.size(), 64u);
  for (double v : res.output) EXPECT_TRUE(std::isfinite(v));
}

TEST(DegenerateModulator, SingleSliceConfigIsPromotedToAPair) {
  msim::SimConfig cfg;
  cfg.num_slices = 1;  // the ring needs at least a pseudo-differential pair
  msim::VcoDsmModulator mod(cfg);
  EXPECT_GE(mod.config().num_slices, 2);
  const auto res = mod.run([](double) { return 0.0; }, 32);
  EXPECT_EQ(res.output.size(), 32u);
}

}  // namespace
