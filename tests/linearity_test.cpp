#include <gtest/gtest.h>

#include <cmath>

#include "core/linearity.h"
#include "synth/floorplan.h"
#include "synth/synthesis_flow.h"
#include "core/adc.h"

namespace vcoadc::core {
namespace {

TEST(Linearity, AnalyzerRecoversSyntheticLine) {
  TransferCurve c;
  for (int i = 0; i <= 20; ++i) {
    const double x = -1.0 + 0.1 * i;
    c.input_v.push_back(x);
    c.output.push_back(0.05 + 0.9 * x);  // perfect line
  }
  const auto rep = analyze_linearity(c, 0.125);
  EXPECT_NEAR(rep.gain, 0.9, 1e-9);
  EXPECT_NEAR(rep.offset, 0.05, 1e-9);
  EXPECT_NEAR(rep.max_inl_lsb, 0.0, 1e-9);
  EXPECT_NEAR(rep.max_dnl_lsb, 0.0, 1e-9);
}

TEST(Linearity, AnalyzerSeesInjectedBow) {
  TransferCurve c;
  for (int i = 0; i <= 20; ++i) {
    const double x = -1.0 + 0.1 * i;
    c.input_v.push_back(x);
    c.output.push_back(x + 0.05 * (1.0 - x * x));  // parabola bow
  }
  const auto rep = analyze_linearity(c, 0.125);
  // Bow magnitude ~0.033 after line fit -> ~0.27 LSB of 0.125.
  EXPECT_GT(rep.max_inl_lsb, 0.15);
}

TEST(Linearity, IdealAdcTransferIsStraight) {
  AdcSpec spec = AdcSpec::paper_40nm();
  spec.with_nonidealities = false;
  TransferOptions opts;
  opts.points = 17;
  opts.samples_per_point = 3072;
  const TransferCurve c = measure_transfer(spec, opts);
  const double lsb = 2.0 / spec.num_slices;
  const auto rep = analyze_linearity(c, lsb);
  // Averaged delta-sigma transfer: residuals far below one raw LSB.
  EXPECT_LT(rep.max_inl_lsb, 0.15);
  // Inverting feedback: gain ~ -1/FS.
  EXPECT_NEAR(std::fabs(rep.gain) * 1.1, 1.0, 0.1);
}

TEST(Linearity, StaticMappingBendsTransferUnderMismatch) {
  AdcSpec spec = AdcSpec::paper_40nm();
  spec.with_nonidealities = false;
  // Inject element mismatch only.
  TransferOptions rot;
  rot.points = 17;
  rot.samples_per_point = 2048;
  TransferOptions stat = rot;
  stat.mapping = msim::ElementMapping::kStaticThermometer;

  auto inl_with = [&](const TransferOptions& o) {
    AdcSpec s = spec;
    s.with_nonidealities = true;  // enables the mismatch draws
    // Strip the noise sources, keep only the DAC mismatch, by zeroing the
    // other magnitudes through a custom config via seed-stable spec knobs:
    // simplest faithful proxy is to compare both mappings under the SAME
    // nonidealities - rotation must stay straighter.
    const TransferCurve c = measure_transfer(s, o);
    return analyze_linearity(c, 2.0 / s.num_slices).max_inl_lsb;
  };
  const double inl_rot = inl_with(rot);
  const double inl_stat = inl_with(stat);
  EXPECT_LT(inl_rot, inl_stat);
}

TEST(FloorplanSpec, RoundTripGeometry) {
  AdcDesign adc(AdcSpec::paper_40nm());
  const auto res = adc.synthesize();
  const std::string spec_text = res.floorplan_spec;
  const auto parsed = synth::parse_floorplan_spec(spec_text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto& orig = res.layout->floorplan();
  EXPECT_NEAR(parsed.floorplan.die.w, orig.die.w, 1e-9);
  EXPECT_NEAR(parsed.floorplan.die.h, orig.die.h, 1e-9);
  EXPECT_NEAR(parsed.floorplan.row_height_m, orig.row_height_m, 1e-12);
  ASSERT_EQ(parsed.floorplan.regions.size(), orig.regions.size());
  for (std::size_t i = 0; i < orig.regions.size(); ++i) {
    const auto* r = parsed.floorplan.find(orig.regions[i].spec.name);
    ASSERT_NE(r, nullptr) << orig.regions[i].spec.name;
    EXPECT_NEAR(r->rect.x, orig.regions[i].rect.x, 1e-9);
    EXPECT_NEAR(r->rect.w, orig.regions[i].rect.w, 1e-9);
    EXPECT_EQ(r->spec.is_group, orig.regions[i].spec.is_group);
  }
}

TEST(FloorplanSpec, ParserRejectsBadInput) {
  EXPECT_FALSE(synth::parse_floorplan_spec("").ok);
  EXPECT_FALSE(synth::parse_floorplan_spec("DIE 0 0\n").ok);
  EXPECT_FALSE(synth::parse_floorplan_spec("BOGUS x\n").ok);
  const auto res =
      synth::parse_floorplan_spec("DIE 0 0 10 10\nPOWER_DOMAIN P 0 0 5 5 x\n");
  EXPECT_TRUE(res.ok);
}

}  // namespace
}  // namespace vcoadc::core
