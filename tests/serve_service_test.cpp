// The evaluation service end-to-end, in-process: the handler built by
// make_eval_handler dispatched over both transports. The load-bearing
// claim is transport neutrality — the socket path must produce responses
// (and result_fp values in particular) bit-identical to the stdio path,
// because campaign drivers fingerprint results across transports and
// hosts. Also covers the parse-error response shape and the per-request
// cache delta block.
#include "core/serve_loop.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_cache.h"
#include "core/exec_context.h"
#include "util/json.h"
#include "util/net.h"

namespace fs = std::filesystem;
namespace json = vcoadc::util::json;
using namespace vcoadc;
using util::net::Connection;
using util::net::Endpoint;
using util::net::Listener;

namespace {

/// Cheap-but-real request mix: different kinds, one repeated spec so the
/// shared cache matters, and small sample counts to keep the test fast.
std::vector<std::string> request_lines() {
  const char* spec = "\"spec\":{\"slices\":6,\"fs\":4e8,\"bw\":2e6}";
  return {
      std::string("{\"id\":\"mig-a\",\"cmd\":\"migrate\",") + spec +
          ",\"options\":{\"target_node\":180}}",
      std::string("{\"id\":\"mc-a\",\"cmd\":\"monte_carlo\",") + spec +
          ",\"options\":{\"runs\":2,\"n_samples\":1024}}",
      std::string("{\"id\":\"mig-b\",\"cmd\":\"migrate\",") + spec +
          ",\"options\":{\"target_node\":180}}",
  };
}

std::string fp_of(const std::string& response_line) {
  json::ParseResult pr = json::parse(response_line);
  EXPECT_TRUE(pr.ok) << pr.error << " in: " << response_line;
  const json::Value* fp = pr.value.find("result_fp");
  EXPECT_NE(fp, nullptr) << response_line;
  return fp != nullptr && fp->is_string() ? fp->string : "";
}

std::string id_of(const std::string& response_line) {
  json::ParseResult pr = json::parse(response_line);
  const json::Value* id = pr.ok ? pr.value.find("id") : nullptr;
  return id != nullptr && id->is_string() ? id->string : "";
}

/// Runs the request lines through serve_stdio and returns the response
/// lines in order.
std::vector<std::string> stdio_responses(const core::ServeHandler& handler,
                                         const std::vector<std::string>& reqs) {
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  EXPECT_NE(in, nullptr);
  EXPECT_NE(out, nullptr);
  for (const std::string& r : reqs) {
    std::fputs(r.c_str(), in);
    std::fputc('\n', in);
  }
  std::rewind(in);
  const core::ServeResult res = core::serve_stdio(in, out, handler);
  EXPECT_TRUE(res.clean) << res.error;
  std::rewind(out);
  std::vector<std::string> lines;
  std::string line;
  char buf[1 << 16];
  while (std::fgets(buf, sizeof buf, out) != nullptr) {
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    lines.push_back(line);
  }
  std::fclose(in);
  std::fclose(out);
  return lines;
}

TEST(ServeServiceTest, ParseErrorGetsAnErrorResponseNotSilence) {
  core::ArtifactCache cache(64);
  core::ExecContext ctx;
  ctx.threads = 1;
  ctx.cache = &cache;
  const core::ServeHandler handler =
      core::make_eval_handler(ctx, core::EvalServeOptions{});

  const std::string resp = handler("{this is not json");
  json::ParseResult pr = json::parse(resp);
  ASSERT_TRUE(pr.ok) << resp;
  const json::Value* ok = pr.value.find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(ok->bool_or(true));
  const json::Value* err = pr.value.find("error");
  ASSERT_NE(err, nullptr);
  EXPECT_NE(err->string.find("parse error"), std::string::npos);
}

TEST(ServeServiceTest, CacheDeltaBlockCarriesLifecycleCounters) {
  core::ArtifactCache cache(64);
  core::ExecContext ctx;
  ctx.threads = 1;
  ctx.cache = &cache;
  core::EvalServeOptions opts;
  opts.cache_stats = true;
  const core::ServeHandler handler = core::make_eval_handler(ctx, opts);

  const std::string resp = handler(request_lines()[0]);
  json::ParseResult pr = json::parse(resp);
  ASSERT_TRUE(pr.ok) << resp;
  const json::Value* cachev = pr.value.find("cache");
  ASSERT_NE(cachev, nullptr) << resp;
  EXPECT_NE(cachev->find("hits"), nullptr);
  EXPECT_NE(cachev->find("misses"), nullptr);
  EXPECT_NE(cachev->find("cold_builds"), nullptr);
  EXPECT_NE(cachev->find("simd_tier"), nullptr);
}

#if !defined(_WIN32)

// The acceptance gate of this PR: N concurrent socket clients replaying
// interleaved requests (plus one mid-line disconnect) get per-client
// result_fp lists bit-identical to a stdio serve of the same requests.
TEST(ServeServiceTest, SocketResponsesBitIdenticalToStdio) {
  core::ArtifactCache cache(128);
  core::ExecContext ctx;
  ctx.threads = 1;  // per-request; connections still run concurrently
  ctx.cache = &cache;
  const core::ServeHandler handler =
      core::make_eval_handler(ctx, core::EvalServeOptions{});

  const std::vector<std::string> reqs = request_lines();

  // Reference pass: the original stdio transport.
  const std::vector<std::string> ref = stdio_responses(handler, reqs);
  ASSERT_EQ(ref.size(), reqs.size());
  std::map<std::string, std::string> ref_fp;  // id -> fingerprint
  for (const std::string& line : ref) ref_fp[id_of(line)] = fp_of(line);

  // Socket pass: 4 concurrent clients, each replaying the whole mix.
  const fs::path sock =
      fs::temp_directory_path() / "vcoadc_serve_svc.sock";
  std::error_code ec;
  fs::remove(sock, ec);
  const Endpoint ep = util::net::parse_endpoint(sock.string());
  std::string err;
  Listener listener = Listener::listen(ep, &err);
  ASSERT_TRUE(listener.valid()) << err;

  std::atomic<bool> stop{false};
  core::SocketServeOptions sopts;
  sopts.poll_ms = 20;
  sopts.stop = &stop;
  core::ServeResult sres;
  std::thread server(
      [&] { sres = core::serve_socket(listener, handler, sopts); });

  constexpr int kClients = 4;
  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::string derr;
      Connection conn = util::net::dial(ep, &derr);
      ASSERT_TRUE(conn.valid()) << derr;
      // Stagger the replay order per client so requests interleave.
      for (std::size_t k = 0; k < reqs.size(); ++k) {
        const std::size_t i = (k + static_cast<std::size_t>(c)) % reqs.size();
        ASSERT_TRUE(conn.write_line(reqs[i]));
        std::string resp;
        ASSERT_EQ(conn.read_line(&resp), Connection::ReadStatus::kLine);
        got[c].push_back(resp);
      }
    });
  }
  // One extra client dies mid-line; the fragment must not be dispatched
  // and must not disturb anyone else's responses.
  {
    std::string derr;
    Connection mid = util::net::dial(ep, &derr);
    ASSERT_TRUE(mid.valid()) << derr;
    ASSERT_TRUE(mid.write_all("{\"id\":\"torn\",\"cmd\":\"datash"));
    mid.close();
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  server.join();
  EXPECT_TRUE(sres.clean) << sres.error;

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[c].size(), reqs.size());
    for (std::size_t k = 0; k < reqs.size(); ++k) {
      const std::string id = id_of(got[c][k]);
      ASSERT_TRUE(ref_fp.count(id)) << got[c][k];
      EXPECT_EQ(fp_of(got[c][k]), ref_fp[id])
          << "client " << c << " response " << k
          << " diverged from the stdio transport";
    }
  }
  // The torn fragment produced no response and no request count.
  EXPECT_EQ(sres.stats.requests,
            static_cast<std::uint64_t>(kClients) * reqs.size());
}

#endif  // !_WIN32

}  // namespace
