// Tier-1 promotion of examples/gate_level_verification.cpp plus the
// emitted-HDL backend seam (DESIGN.md §3j): the Table-1 comparator truth
// table, the ring-period check against the stage-delay prediction, the
// VCD/SPICE export paths, writer→parser round-trip equivalence at both
// paper nodes, and the hdl_emit/gate_sim flow stages cross-checked against
// the behavioral engine.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/artifact_cache.h"
#include "core/backend.h"
#include "core/flow.h"
#include "netlist/cell_library.h"
#include "netlist/equivalence.h"
#include "netlist/generator.h"
#include "netlist/logic_sim.h"
#include "netlist/spice.h"
#include "netlist/vcd.h"
#include "netlist/verilog_parser.h"
#include "netlist/verilog_writer.h"
#include "tech/tech_node.h"

namespace {

using namespace vcoadc;
using core::AdcSpec;

AdcSpec small_spec() {
  AdcSpec spec = AdcSpec::paper_40nm();
  spec.num_slices = 4;
  return spec;
}

core::GateSimOptions small_gate_opts() {
  core::GateSimOptions opts;
  opts.sim.n_samples = 256;
  return opts;
}

netlist::Design small_design(const netlist::CellLibrary& lib, int slices) {
  netlist::GeneratorConfig cfg;
  cfg.num_slices = slices;
  return netlist::build_adc_design(lib, cfg);
}

// ---------------------------------------------------------------------------
// Table 1 comparator: decide/latch truth table

TEST(GateLevel, ComparatorFollowsTable1TruthTable) {
  const tech::TechNode node = tech::TechDatabase::standard().at(40);
  netlist::CellLibrary lib = netlist::make_standard_library(node);
  netlist::add_resistor_cells(lib, node);
  netlist::Design cmp = small_design(lib, 4);
  cmp.set_top("comparator");
  netlist::LogicSim sim(cmp, node);

  auto cycle = [&](netlist::Logic inp, netlist::Logic inm) {
    sim.set("INP", inp);
    sim.set("INM", inm);
    sim.set("CLK", netlist::Logic::k1);  // reset phase
    sim.settle(sim.now() + 1e-9);
    sim.set("CLK", netlist::Logic::k0);  // decide phase
    sim.settle(sim.now() + 1e-9);
  };

  // INP > INM decides Q=1, the mirror image decides Q=0, and flipping back
  // proves the latch regenerates rather than sticking.
  cycle(netlist::Logic::k1, netlist::Logic::k0);
  EXPECT_EQ(sim.get("Q"), netlist::Logic::k1);
  EXPECT_EQ(sim.get("QB"), netlist::Logic::k0);
  cycle(netlist::Logic::k0, netlist::Logic::k1);
  EXPECT_EQ(sim.get("Q"), netlist::Logic::k0);
  EXPECT_EQ(sim.get("QB"), netlist::Logic::k1);
  cycle(netlist::Logic::k1, netlist::Logic::k0);
  EXPECT_EQ(sim.get("Q"), netlist::Logic::k1);
  EXPECT_EQ(sim.get("QB"), netlist::Logic::k0);
  EXPECT_GT(sim.transition_count(), 0u);
}

// ---------------------------------------------------------------------------
// Fig. 5 distributed ring: oscillation at the predicted period

TEST(GateLevel, RingOscillatesAtStageDelayPrediction) {
  const tech::TechNode node = tech::TechDatabase::standard().at(40);
  netlist::CellLibrary lib = netlist::make_standard_library(node);
  netlist::add_resistor_cells(lib, node);
  const int slices = 4;
  netlist::Design design = small_design(lib, slices);
  netlist::LogicSim sim(design, node);

  for (int i = 0; i < slices; ++i) {
    sim.set("R1P_" + std::to_string(i), netlist::Logic::k0);
    sim.set("R1N_" + std::to_string(i), netlist::Logic::k1);
  }
  std::vector<double> edges;
  sim.on_change("R1P_0",
                [&](double t, netlist::Logic) { edges.push_back(t); });
  const double pred = core::predicted_ring_period_s(node, slices);
  sim.run_until(std::max(3e-10, 8.0 * pred));

  ASSERT_GT(edges.size(), 4u) << "ring failed to oscillate";
  const double period = (edges.back() - edges[edges.size() - 5]) / 2.0;
  EXPECT_GT(pred, 0.0);
  EXPECT_LE(std::abs(period - pred), 0.25 * pred)
      << "measured " << period << " s vs predicted " << pred << " s";
}

// ---------------------------------------------------------------------------
// Export paths: VCD trace and SPICE deck are non-empty and well-formed

TEST(GateLevel, VcdAndSpiceExportsAreNonEmpty) {
  const tech::TechNode node = tech::TechDatabase::standard().at(40);
  netlist::CellLibrary lib = netlist::make_standard_library(node);
  netlist::add_resistor_cells(lib, node);
  netlist::Design cmp = small_design(lib, 4);
  cmp.set_top("comparator");
  netlist::LogicSim sim(cmp, node);
  netlist::VcdWriter vcd;
  vcd.watch_all(sim, {"CLK", "INP", "INM", "OUTP", "OUTM", "Q", "QB"});

  sim.set("INP", netlist::Logic::k1);
  sim.set("INM", netlist::Logic::k0);
  sim.set("CLK", netlist::Logic::k1);
  sim.settle(sim.now() + 1e-9);
  sim.set("CLK", netlist::Logic::k0);
  sim.settle(sim.now() + 1e-9);

  EXPECT_GT(vcd.num_signals(), 0);
  EXPECT_GT(vcd.num_changes(), 0u);
  const std::string trace = vcd.render("comparator");
  EXPECT_NE(trace.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(trace.find("comparator"), std::string::npos);

  netlist::Design design = small_design(lib, 4);
  const std::string deck = netlist::write_spice(design, node);
  EXPECT_FALSE(deck.empty());
  int fets = 0;
  for (const auto& mod : design.modules()) {
    for (const auto& inst : mod.instances()) {
      if (const auto* cell = lib.find(inst.master)) {
        fets += netlist::spice_transistor_count(*cell);
      }
    }
  }
  EXPECT_GT(fets, 0);
}

// ---------------------------------------------------------------------------
// Writer -> parser round trip: structural equivalence at both paper nodes

void expect_roundtrip_equivalent(double node_nm) {
  SCOPED_TRACE(node_nm);
  const tech::TechNode node =
      tech::TechDatabase::standard().at(static_cast<int>(node_nm));
  netlist::CellLibrary lib = netlist::make_standard_library(node);
  netlist::add_resistor_cells(lib, node);  // resistor-cell extension incl.
  netlist::Design design = small_design(lib, 4);

  const std::string text = netlist::write_verilog(design);
  ASSERT_FALSE(text.empty());

  netlist::Design reparsed(&lib);
  const netlist::ParseResult pr = netlist::parse_verilog(text, reparsed);
  ASSERT_TRUE(pr.ok) << pr.error;
  reparsed.set_top(design.top());

  netlist::EquivalenceOptions eopts;
  eopts.match_drive = true;  // parse-back: bit-equal, not just same function
  const netlist::EquivalenceResult eq =
      netlist::check_equivalence(design, reparsed, eopts);
  EXPECT_TRUE(eq.equivalent)
      << (eq.mismatches.empty() ? "" : eq.mismatches.front());
  EXPECT_GT(eq.instances_compared, 0);

  // Idempotent emission: re-emitting the re-parsed design reproduces the
  // text byte for byte, so the stored artifact is a fixed point.
  EXPECT_EQ(netlist::write_verilog(reparsed), text);
}

TEST(GateLevel, VerilogRoundTripEquivalentAt40nm) {
  expect_roundtrip_equivalent(40);
}

TEST(GateLevel, VerilogRoundTripEquivalentAt180nm) {
  expect_roundtrip_equivalent(180);
}

// ---------------------------------------------------------------------------
// The hdl_emit flow stage

TEST(GateLevel, HdlEmitStageEmitsVerifiedTextAndCaches) {
  const AdcSpec spec = small_spec();
  core::ArtifactCache cache(64);
  util::DiagSink sink;
  core::ExecContext ctx;
  ctx.cache = &cache;
  ctx.diag = &sink;
  core::Flow flow(ctx);

  const auto cold = flow.hdl_emit(spec);
  ASSERT_NE(cold, nullptr) << sink.render();
  EXPECT_FALSE(cold->verilog.empty());
  EXPECT_FALSE(cold->top.empty());
  ASSERT_NE(cold->parsed, nullptr);
  EXPECT_EQ(cold->parsed->top(), cold->top);
  EXPECT_GT(cold->instances_compared, 0);
  EXPECT_NE(cold->verilog.find("module"), std::string::npos);

  // Warm call returns the identical object (cache hit, not a rebuild).
  const auto warm = flow.hdl_emit(spec);
  EXPECT_EQ(warm.get(), cold.get());
  EXPECT_FALSE(sink.has_errors()) << sink.render();
}

// ---------------------------------------------------------------------------
// The gate_sim flow stage: sign-off + bit-identity with the behavioral path

TEST(GateLevel, GateSimMatchesBehavioralBitForBit) {
  const AdcSpec spec = small_spec();
  core::ArtifactCache cache(64);
  util::DiagSink sink;
  core::ExecContext ctx;
  ctx.cache = &cache;
  ctx.diag = &sink;
  core::Flow flow(ctx);

  const core::GateSimOptions gopts = small_gate_opts();
  const auto gate = flow.gate_sim(spec, gopts);
  ASSERT_NE(gate, nullptr) << sink.render();
  EXPECT_TRUE(gate->comparator_ok);
  EXPECT_TRUE(gate->ring_ok);
  EXPECT_GT(gate->ring_period_s, 0.0);
  EXPECT_GT(gate->ring_period_pred_s, 0.0);
  EXPECT_EQ(gate->n_samples, gopts.sim.n_samples);
  EXPECT_EQ(gate->num_slices, spec.num_slices);
  EXPECT_TRUE(gate->matches_behavioral);
  EXPECT_GT(gate->transitions, 0u);

  // The stage's claim, re-proved here: the gate-level decoded stream and
  // its decimation equal the behavioral modulator's, sample for sample.
  core::SimulationOptions sim = gopts.sim;
  sim.record_bits = true;
  const auto behavioral = flow.sim_run(spec, sim);
  ASSERT_NE(behavioral, nullptr);
  ASSERT_EQ(gate->decoded.size(), behavioral->mod.output.size());
  for (std::size_t i = 0; i < gate->decoded.size(); ++i) {
    ASSERT_EQ(gate->decoded[i], behavioral->mod.output[i]) << "sample " << i;
  }
  core::DigitalBackend backend(spec);
  const std::vector<double> ref = backend.process(behavioral->mod.output);
  ASSERT_EQ(gate->decimated.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(gate->decimated[i], ref[i]) << "decimated sample " << i;
  }
}

TEST(GateLevel, DecodedStreamAgreesAcrossBackends) {
  const AdcSpec spec = small_spec();
  core::ArtifactCache cache(64);
  core::ExecContext ctx;
  ctx.cache = &cache;
  core::Flow flow(ctx);

  core::SimulationOptions sim;
  sim.n_samples = 256;
  const std::vector<double> behavioral =
      flow.decoded_stream(spec, sim, core::SimBackend::kBehavioral);
  const std::vector<double> gate =
      flow.decoded_stream(spec, sim, core::SimBackend::kGateLevel);
  ASSERT_FALSE(behavioral.empty());
  ASSERT_EQ(gate.size(), behavioral.size());
  for (std::size_t i = 0; i < gate.size(); ++i) {
    ASSERT_EQ(gate[i], behavioral[i]) << "sample " << i;
  }
}

TEST(GateLevel, UnresolvableTopFailsCleanlyThenRecovers) {
  const AdcSpec spec = small_spec();
  core::ArtifactCache cache(64);
  util::DiagSink sink;
  core::ExecContext ctx;
  ctx.cache = &cache;
  ctx.diag = &sink;
  core::Flow flow(ctx);

  core::GateSimOptions bad = small_gate_opts();
  bad.top = "no_such_module";
  EXPECT_EQ(flow.gate_sim(spec, bad), nullptr);
  EXPECT_TRUE(sink.has_errors());
  bool named = false;
  for (const auto& d : sink.all()) {
    if (d.item == "no_such_module") named = true;
  }
  EXPECT_TRUE(named) << sink.render();

  // The refusal never reached the cache: the same context immediately
  // serves a clean run with the default top.
  sink.clear();
  EXPECT_NE(flow.gate_sim(spec, small_gate_opts()), nullptr)
      << sink.render();
  EXPECT_FALSE(sink.has_errors()) << sink.render();
}

}  // namespace
