#include <gtest/gtest.h>

#include "util/cli.h"

namespace vcoadc::util {
namespace {

ArgParser parse(std::vector<const char*> argv) {
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, EqualsForm) {
  const auto a = parse({"prog", "cmd", "--node=180", "--fs=250e6"});
  EXPECT_EQ(a.program(), "prog");
  ASSERT_EQ(a.positional().size(), 1u);
  EXPECT_EQ(a.positional()[0], "cmd");
  EXPECT_EQ(a.get("node"), "180");
  EXPECT_DOUBLE_EQ(a.get_double("fs", 0), 250e6);
}

TEST(ArgParser, SpaceForm) {
  const auto a = parse({"prog", "--out", "build/artifacts", "run"});
  EXPECT_EQ(a.get("out"), "build/artifacts");
  ASSERT_EQ(a.positional().size(), 1u);
  EXPECT_EQ(a.positional()[0], "run");
}

TEST(ArgParser, BooleanFlag) {
  const auto a = parse({"prog", "--verbose", "--x=1"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get("verbose"), "true");
  EXPECT_FALSE(a.has("quiet"));
}

TEST(ArgParser, Fallbacks) {
  const auto a = parse({"prog"});
  EXPECT_EQ(a.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(a.get_double("missing", 3.5), 3.5);
  EXPECT_EQ(a.get_int("missing", 7), 7);
}

TEST(ArgParser, UnknownFlagDetection) {
  const auto a = parse({"prog", "--node=40", "--typo=1"});
  const auto unknown = a.unknown_flags({"node", "fs"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "--typo");
}

TEST(ArgParser, NumericParsing) {
  const auto a = parse({"prog", "--slices=16", "--bw=5e6"});
  EXPECT_EQ(a.get_int("slices", 0), 16);
  EXPECT_DOUBLE_EQ(a.get_double("bw", 0), 5e6);
}

TEST(ArgParser, GateSimFlagVocabulary) {
  // The vcoadc_cli gatesim flags: --top is a plain string, --ring-tol a
  // double, and both must clear an unknown-flags registry that names them.
  const auto a =
      parse({"prog", "gatesim", "--top=ADC_slice", "--ring-tol=0.3"});
  ASSERT_EQ(a.positional().size(), 1u);
  EXPECT_EQ(a.positional()[0], "gatesim");
  EXPECT_EQ(a.get("top", ""), "ADC_slice");
  EXPECT_DOUBLE_EQ(a.get_double("ring-tol", 0.25), 0.3);
  EXPECT_TRUE(a.unknown_flags({"top", "ring-tol"}).empty());
  // A registry without them flags both (the CLI's typo guard).
  EXPECT_EQ(a.unknown_flags({"node"}).size(), 2u);
}

}  // namespace
}  // namespace vcoadc::util
