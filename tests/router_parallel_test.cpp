// Determinism of the parallel rip-up router, on synthetic netlist-free
// grids (route_grid.h only). This file is compiled twice: once into
// vcoadc_tests and once with -fsanitize=thread (the tsan. ctest prefix), so
// it deliberately exercises the batch phase with real worker threads and
// enough window-disjoint nets to actually run concurrently.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "synth/route_grid.h"
#include "util/rng.h"

namespace vcoadc::synth {
namespace {

/// A field of short two-pin nets spread over the grid, plus a few long
/// multi-pin nets, all funneled through capacity-1 edges so the rip-up
/// iterations (and their parallel batches) genuinely run.
std::vector<NetPins> make_congested_nets(const RouteGrid& g, int n_short,
                                         int n_long, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<NetPins> nets;
  auto pt = [&](int x, int y) {
    return GridPoint{std::min(x, g.nx - 1), std::min(y, g.ny - 1), 0};
  };
  for (int i = 0; i < n_short; ++i) {
    NetPins np;
    np.name = "s" + std::to_string(i);
    const int x = static_cast<int>(rng.below(static_cast<std::size_t>(g.nx)));
    const int y = static_cast<int>(rng.below(static_cast<std::size_t>(g.ny)));
    np.pins = {pt(x, y), pt(x + 1 + static_cast<int>(rng.below(3)),
                            y + 1 + static_cast<int>(rng.below(3)))};
    nets.push_back(std::move(np));
  }
  for (int i = 0; i < n_long; ++i) {
    NetPins np;
    np.name = "l" + std::to_string(i);
    for (int k = 0; k < 4; ++k) {
      np.pins.push_back(
          pt(static_cast<int>(rng.below(static_cast<std::size_t>(g.nx))),
             static_cast<int>(rng.below(static_cast<std::size_t>(g.ny)))));
    }
    nets.push_back(std::move(np));
  }
  for (auto& np : nets) {
    std::sort(np.pins.begin(), np.pins.end());
    np.pins.erase(std::unique(np.pins.begin(), np.pins.end()),
                  np.pins.end());
    BBox bb;
    for (const auto& p : np.pins) {
      bb.expand({static_cast<double>(p.x), static_cast<double>(p.y)});
    }
    np.hpwl = bb.half_perimeter();
  }
  return nets;
}

MazeRouteResult route_with_threads(int threads, int capacity,
                                   std::uint64_t seed) {
  RouteGrid g({0, 0, 40e-6, 40e-6}, 1e-6);
  MazeRouterOptions opts;
  opts.edge_capacity = capacity;
  opts.threads = threads;
  opts.window_margin = 4;
  auto nets = make_congested_nets(g, 60, 6, seed);
  return route_nets(g, std::move(nets), opts);
}

void expect_identical(const MazeRouteResult& a, const MazeRouteResult& b) {
  EXPECT_EQ(a.total_wirelength_m, b.total_wirelength_m);
  EXPECT_EQ(a.total_vias, b.total_vias);
  EXPECT_EQ(a.overflowed_edges, b.overflowed_edges);
  EXPECT_EQ(a.failed_nets, b.failed_nets);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_EQ(a.nets[i].name, b.nets[i].name);
    EXPECT_EQ(a.nets[i].routed, b.nets[i].routed);
    EXPECT_TRUE(a.nets[i].paths == b.nets[i].paths) << a.nets[i].name;
  }
}

TEST(ParallelRouter, BitIdenticalAcrossThreadCounts) {
  // Capacity 1 forces heavy rip-up; every thread count must produce the
  // same routing, path for path.
  const auto serial = route_with_threads(0, 1, 11);
  for (int threads : {1, 2, 4, 8}) {
    const auto par = route_with_threads(threads, 1, 11);
    expect_identical(serial, par);
  }
}

TEST(ParallelRouter, BitIdenticalOnUncongestedGrid) {
  const auto serial = route_with_threads(0, 8, 23);
  const auto par = route_with_threads(4, 8, 23);
  expect_identical(serial, par);
  EXPECT_EQ(serial.overflowed_edges, 0);
  EXPECT_EQ(serial.failed_nets, 0);
}

TEST(ParallelRouter, RepeatedRunsAreDeterministic) {
  const auto a = route_with_threads(4, 1, 42);
  const auto b = route_with_threads(4, 1, 42);
  expect_identical(a, b);
}

// The disjointness predicate the whole parallel scheme rests on.
TEST(ParallelRouter, WindowDisjointness) {
  RouteWindow a{0, 0, 4, 4};
  RouteWindow b{5, 0, 8, 4};   // abutting columns: disjoint (inclusive)
  RouteWindow c{4, 4, 8, 8};   // shares the corner node (4,4)
  EXPECT_TRUE(a.disjoint(b));
  EXPECT_TRUE(b.disjoint(a));
  EXPECT_FALSE(a.disjoint(c));
  EXPECT_FALSE(c.disjoint(a));
}

}  // namespace
}  // namespace vcoadc::synth
