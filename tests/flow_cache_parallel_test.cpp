// Concurrency tests for the artifact cache and trace sink, kept
// self-contained (artifact_cache.cpp + trace.cpp + thread_pool.cpp only)
// so they can be recompiled under ThreadSanitizer and UBSan as the
// tsan.* / ubsan.* tier-1 variants without dragging the simulator in.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_cache.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace {

using vcoadc::core::ArtifactCache;
using vcoadc::core::CacheKey;
using vcoadc::core::KeyHasher;

CacheKey key_of(std::uint64_t n) {
  KeyHasher h;
  h.tag("test");
  h.u64(n);
  return h.digest();
}

TEST(KeyHasherParallel, DigestIsPureFunctionOfInput) {
  // Hammer the hasher from many threads: the digest depends only on the
  // fed bytes, so every thread must compute the same keys.
  const CacheKey expect0 = key_of(0);
  const CacheKey expect7 = key_of(7);
  vcoadc::util::ThreadPool pool(8);
  std::atomic<int> mismatches{0};
  vcoadc::util::parallel_for_each(pool, 64, [&](std::size_t i) {
    if (key_of(0) != expect0) ++mismatches;
    if (key_of(7) != expect7) ++mismatches;
    if (key_of(i) == key_of(i + 1)) ++mismatches;  // no trivial collisions
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(KeyHasherParallel, FieldOrderAndTagsMatter) {
  KeyHasher a;
  a.tag("x");
  a.u64(1);
  a.tag("y");
  a.u64(2);
  KeyHasher b;
  b.tag("y");
  b.u64(2);
  b.tag("x");
  b.u64(1);
  EXPECT_NE(a.digest(), b.digest());

  // -0.0 normalizes to +0.0 (one value, one key).
  KeyHasher n, p;
  n.f64(-0.0);
  p.f64(0.0);
  EXPECT_EQ(n.digest(), p.digest());
}

TEST(ArtifactCacheParallel, SingleFlightBuildsOnce) {
  ArtifactCache cache(16);
  std::atomic<int> builds{0};
  const CacheKey key = key_of(42);

  vcoadc::util::ThreadPool pool(8);
  std::vector<std::shared_ptr<const int>> got(64);
  vcoadc::util::parallel_for_each(pool, 64, [&](std::size_t i) {
    got[i] = cache.get_or_build<int>(key, [&builds]() {
      ++builds;
      // Widen the race window so concurrent callers really do pile onto
      // the in-flight future rather than serializing by luck.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      return std::make_shared<const int>(1234);
    });
  });

  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 63u);
  for (const auto& p : got) {
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 1234);
    EXPECT_EQ(p.get(), got.front().get());  // shared, not rebuilt
  }
}

TEST(ArtifactCacheParallel, DistinctKeysBuildIndependently) {
  ArtifactCache cache(256);
  std::atomic<int> builds{0};
  vcoadc::util::ThreadPool pool(8);
  vcoadc::util::parallel_for_each(pool, 128, [&](std::size_t i) {
    const auto v = cache.get_or_build<std::uint64_t>(
        key_of(i % 32), [&builds, i]() {
          ++builds;
          return std::make_shared<const std::uint64_t>(i % 32);
        });
    EXPECT_EQ(*v, i % 32);  // never someone else's artifact
  });
  // 32 distinct keys; single-flight means each built at least once and the
  // hit/miss totals add up.
  EXPECT_GE(builds.load(), 32);
  EXPECT_EQ(builds.load(), static_cast<int>(cache.stats().misses));
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 128u);
  EXPECT_EQ(cache.stats().entries, 32u);
}

TEST(ArtifactCacheParallel, LruStaysBoundedUnderChurn) {
  ArtifactCache cache(8);
  vcoadc::util::ThreadPool pool(8);
  vcoadc::util::parallel_for_each(pool, 512, [&](std::size_t i) {
    cache.get_or_build<std::size_t>(key_of(i), [i]() {
      return std::make_shared<const std::size_t>(i);
    });
  });
  const auto st = cache.stats();
  EXPECT_LE(st.entries, 8u);
  EXPECT_EQ(st.misses, 512u);
  EXPECT_EQ(st.evictions, 512u - st.entries);
  EXPECT_EQ(cache.max_entries(), 8u);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(ArtifactCacheParallel, FailedBuildDoesNotPoisonTheKey) {
  ArtifactCache cache(16);
  const CacheKey key = key_of(9);
  EXPECT_THROW(cache.get_or_build<int>(key, []() -> std::shared_ptr<const int> {
    throw std::runtime_error("transient");
  }), std::runtime_error);
  // The key is buildable again after the failure.
  const auto v = cache.get_or_build<int>(
      key, []() { return std::make_shared<const int>(7); });
  EXPECT_EQ(*v, 7);
}

TEST(ArtifactCacheParallel, ApproxBytesFeedStats) {
  ArtifactCache cache(16);
  cache.get_or_build<std::string>(
      key_of(1), []() { return std::make_shared<const std::string>("hello"); },
      [](const std::string& s) { return s.size(); });
  EXPECT_EQ(cache.stats().bytes, 5u);
}

TEST(TraceParallel, ConcurrentSpansStayWellFormed) {
  vcoadc::util::Trace trace;
  vcoadc::util::ThreadPool pool(8);
  vcoadc::util::parallel_for_each(pool, 64, [&](std::size_t i) {
    vcoadc::util::TraceSpan outer(&trace, "outer");
    vcoadc::util::TraceSpan inner(&trace, "inner");
    inner.cache(i % 2 == 0, 10);
  });
  const auto evs = trace.events();
  ASSERT_EQ(evs.size(), 128u);
  int outers = 0, inners = 0;
  for (const auto& e : evs) {
    if (e.name == "outer") {
      ++outers;
      // Worker-thread roots: an outer span never nests under another
      // thread's span.
      EXPECT_EQ(e.parent, -1);
    }
    if (e.name == "inner") {
      ++inners;
      // Nesting is per-thread: the parent is this thread's own outer span.
      ASSERT_GE(e.parent, 0);
      EXPECT_EQ(evs[static_cast<std::size_t>(e.parent)].name, "outer");
    }
  }
  EXPECT_EQ(outers, 64);
  EXPECT_EQ(inners, 64);

  // Both renderings stay parseable under the collapsed counts.
  const std::string tree = trace.render_tree();
  EXPECT_NE(tree.find("outer x64"), std::string::npos);
  const std::string jsonl = trace.render_jsonl();
  EXPECT_NE(jsonl.find("\"name\":\"inner\""), std::string::npos);
}

TEST(TraceParallel, NullTraceIsANoOp) {
  // The flow traces unconditionally; a null sink must cost nothing and
  // crash nowhere, including from worker threads.
  vcoadc::util::ThreadPool pool(4);
  vcoadc::util::parallel_for_each(pool, 32, [&](std::size_t) {
    vcoadc::util::TraceSpan span(nullptr, "ghost");
    span.note("ignored");
    span.cache(true, 1);
  });
  SUCCEED();
}

}  // namespace
