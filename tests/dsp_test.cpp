#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/decimator.h"
#include "dsp/fft.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "dsp/window.h"
#include "util/rng.h"

namespace vcoadc::dsp {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Fft, PowersOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(1000));
  EXPECT_EQ(next_power_of_two(1000), 1024u);
  EXPECT_EQ(next_power_of_two(1024), 1024u);
  EXPECT_EQ(next_power_of_two(1), 1u);
}

TEST(Fft, DeltaFunctionIsFlat) {
  std::vector<Complex> x(64, Complex(0, 0));
  x[0] = 1.0;
  fft_in_place(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v - Complex(1, 0)), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsOnBin) {
  const std::size_t n = 256;
  std::vector<Complex> x(n);
  const std::size_t k = 17;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(2 * kPi * static_cast<double>(k * i) / static_cast<double>(n));
  }
  fft_in_place(x);
  EXPECT_NEAR(std::abs(x[k]), static_cast<double>(n) / 2, 1e-9);
  EXPECT_NEAR(std::abs(x[n - k]), static_cast<double>(n) / 2, 1e-9);
  for (std::size_t i = 1; i < n / 2; ++i) {
    if (i != k) {
      EXPECT_NEAR(std::abs(x[i]), 0.0, 1e-8);
    }
  }
}

TEST(Fft, RoundTripInverse) {
  util::Rng rng(5);
  std::vector<Complex> x(512);
  for (auto& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  auto y = x;
  fft_in_place(y);
  ifft_in_place(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  util::Rng rng(6);
  std::vector<double> x(1024);
  for (auto& v : x) v = rng.gaussian();
  double time_energy = 0;
  for (double v : x) time_energy += v * v;
  const auto spec = fft_real(x);
  double freq_energy = 0;
  for (const auto& v : spec) freq_energy += std::norm(v);
  freq_energy /= static_cast<double>(x.size());
  EXPECT_NEAR(freq_energy / time_energy, 1.0, 1e-10);
}

TEST(Fft, GoertzelMatchesFft) {
  const std::size_t n = 512;
  std::vector<double> x(n);
  util::Rng rng(7);
  for (auto& v : x) v = rng.gaussian();
  const auto spec = fft_real(x);
  for (std::size_t k : {std::size_t{3}, std::size_t{100}, std::size_t{255}}) {
    const Complex g = goertzel(x, k);
    EXPECT_NEAR(std::abs(g - spec[k]), 0.0, 1e-6 * static_cast<double>(n));
  }
}

TEST(Window, KnownEnbw) {
  EXPECT_NEAR(enbw_bins(make_window(WindowKind::kRect, 1024)), 1.0, 1e-12);
  EXPECT_NEAR(enbw_bins(make_window(WindowKind::kHann, 1024)), 1.5, 1e-3);
  EXPECT_NEAR(enbw_bins(make_window(WindowKind::kBlackmanHarris, 1024)), 2.0,
              0.01);
}

TEST(Window, CoherentGain) {
  EXPECT_NEAR(coherent_gain(make_window(WindowKind::kRect, 256)), 1.0, 1e-12);
  EXPECT_NEAR(coherent_gain(make_window(WindowKind::kHann, 4096)), 0.5, 1e-3);
}

TEST(Spectrum, FullScaleToneReadsZeroDbfs) {
  const std::size_t n = 4096;
  const double fs = 1e6;
  const double fin = coherent_freq(10e3, fs, n);
  const auto x = sample(make_sine(1.0, fin), fs, n);
  for (auto wk : {WindowKind::kRect, WindowKind::kHann,
                  WindowKind::kBlackmanHarris}) {
    const Spectrum spec = compute_spectrum(x, fs, 1.0, wk);
    const SndrReport rep = analyze_sndr(spec, fs / 2, fin);
    EXPECT_NEAR(rep.fundamental_dbfs, 0.0, 0.05) << to_string(wk);
    EXPECT_NEAR(rep.fundamental_hz, fin, fs / n + 1.0);
  }
}

TEST(Spectrum, HalfScaleToneReadsMinusSix) {
  const std::size_t n = 4096;
  const double fs = 1e6;
  const double fin = coherent_freq(17e3, fs, n);
  const auto x = sample(make_sine(0.5, fin), fs, n);
  const Spectrum spec = compute_spectrum(x, fs, 1.0, WindowKind::kHann);
  const SndrReport rep = analyze_sndr(spec, fs / 2, fin);
  EXPECT_NEAR(rep.fundamental_dbfs, -6.02, 0.05);
}

TEST(Spectrum, SndrOfToneInWhiteNoise) {
  // Tone amplitude 1.0 (power 1.0 after normalization), white gaussian noise
  // sigma chosen for a known SNR over the full Nyquist band.
  const std::size_t n = 1 << 15;
  const double fs = 1e6;
  const double fin = coherent_freq(50e3, fs, n);
  const double sigma = 0.001;  // noise power relative to tone: 2*sigma^2
  util::Rng rng(9);
  auto x = sample(make_sine(1.0, fin), fs, n);
  for (auto& v : x) v += rng.gaussian(0.0, sigma);
  const Spectrum spec = compute_spectrum(x, fs, 1.0, WindowKind::kHann);
  const SndrReport rep = analyze_sndr(spec, fs / 2, fin);
  const double expected_snr = 10 * std::log10(0.5 / (sigma * sigma));
  EXPECT_NEAR(rep.sndr_db, expected_snr, 1.0);
  EXPECT_NEAR(rep.snr_db, expected_snr, 1.0);
}

TEST(Spectrum, ThdOfDistortedTone) {
  const std::size_t n = 1 << 14;
  const double fs = 1e6;
  const double fin = coherent_freq(11e3, fs, n);
  // 1% HD3 -> THD = -40 dB, SNDR ~ 40 dB.
  auto x = sample(
      [fin](double t) {
        const double s = std::sin(2 * kPi * fin * t);
        return s + 0.01 * std::sin(3 * 2 * kPi * fin * t);
      },
      fs, n);
  const Spectrum spec = compute_spectrum(x, fs, 1.0, WindowKind::kBlackmanHarris);
  const SndrReport rep = analyze_sndr(spec, fs / 2, fin);
  EXPECT_NEAR(rep.thd_db, -40.0, 0.5);
  EXPECT_NEAR(rep.sndr_db, 40.0, 0.5);
  EXPECT_NEAR(rep.sfdr_db, 40.0, 6.0);  // worst in-band spur is noise-free
}

TEST(Spectrum, NoiseSlopeOfShapedNoise) {
  // Synthesize first-order-shaped noise: e[n] - e[n-1]; its PSD rises at
  // +20 dB/dec well below fs/2.
  const std::size_t n = 1 << 16;
  const double fs = 1e6;
  util::Rng rng(21);
  std::vector<double> x(n);
  double prev = 0;
  for (auto& v : x) {
    const double e = rng.uniform(-0.5, 0.5);
    v = e - prev;
    prev = e;
  }
  const Spectrum spec = compute_spectrum(x, fs, 1.0, WindowKind::kHann);
  const SlopeFit fit = fit_noise_slope(spec, fs / 2000, fs / 8);
  EXPECT_NEAR(fit.db_per_decade, 20.0, 3.0);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(Spectrum, IdleToneDetectorFindsPlantedSpur) {
  const std::size_t n = 1 << 14;
  const double fs = 1e6;
  const double fin = coherent_freq(9e3, fs, n);
  const double fspur = coherent_freq(113e3, fs, n);
  util::Rng rng(31);
  auto x = sample(make_sine(0.5, fin), fs, n);
  const auto spur = sample(make_sine(0.02, fspur), fs, n);
  for (std::size_t i = 0; i < n; ++i) x[i] += spur[i] + rng.gaussian(0, 1e-4);
  const Spectrum spec = compute_spectrum(x, fs, 1.0, WindowKind::kHann);
  const SndrReport rep = analyze_sndr(spec, fs / 2, fin);
  const auto tones = find_idle_tones(spec, rep, 1e3, fs / 2, 10.0);
  bool found = false;
  for (const auto& t : tones) {
    if (std::fabs(t.freq_hz - fspur) < 5 * spec.bin_hz) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Spectrum, IdleToneDetectorQuietOnCleanSignal) {
  const std::size_t n = 1 << 14;
  const double fs = 1e6;
  const double fin = coherent_freq(9e3, fs, n);
  // The 12 dB prominence threshold sits ~1 dB above the tallest noise bin
  // for this seed; a white-noise realization has a ~10% chance per seed of
  // poking a bin above it, so the seed pins a quiet realization.
  util::Rng rng(35);
  auto x = sample(make_sine(0.5, fin), fs, n);
  for (auto& v : x) v += rng.gaussian(0, 1e-4);
  const Spectrum spec = compute_spectrum(x, fs, 1.0, WindowKind::kHann);
  const SndrReport rep = analyze_sndr(spec, fs / 2, fin);
  const auto tones = find_idle_tones(spec, rep, 1e3, fs / 2, 12.0);
  EXPECT_TRUE(tones.empty());
}

TEST(SignalGen, CoherentCyclesOddAndClose) {
  const std::size_t n = 65536;
  const double fs = 750e6;
  const std::size_t k = coherent_cycles(1e6, fs, n);
  EXPECT_EQ(k % 2, 1u);
  const double fin = coherent_freq(1e6, fs, n);
  EXPECT_NEAR(fin, 1e6, 2 * fs / static_cast<double>(n));
}

TEST(SignalGen, RampEndpoints) {
  auto r = make_ramp(-1.0, 1.0, 1e-3);
  EXPECT_DOUBLE_EQ(r(-1.0), -1.0);
  EXPECT_DOUBLE_EQ(r(0.0), -1.0);
  EXPECT_NEAR(r(0.5e-3), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(r(2e-3), 1.0);
}

TEST(Cic, DcGainIsUnity) {
  CicDecimator cic(3, 16);
  std::vector<double> in(16 * 64, 0.7);
  const auto out = cic.process(in);
  ASSERT_GT(out.size(), 10u);
  EXPECT_NEAR(out.back(), 0.7, 1e-9);
}

TEST(Cic, RateChange) {
  CicDecimator cic(2, 8);
  std::vector<double> in(800, 1.0);
  const auto out = cic.process(in);
  EXPECT_EQ(out.size(), 100u);
}

TEST(Cic, AttenuatesNearNyquistOfOutput) {
  // A tone at the post-decimation image frequency must be strongly
  // attenuated relative to a passband tone.
  const double fs = 1e6;
  const int r = 16;
  const std::size_t n = 1 << 14;
  auto passband = sample(make_sine(1.0, 3e3), fs, n);
  auto image = sample(make_sine(1.0, fs / r - 3e3), fs, n);
  CicDecimator cic_a(3, r), cic_b(3, r);
  const auto out_pass = cic_a.process(passband);
  const auto out_img = cic_b.process(image);
  double p_pass = 0, p_img = 0;
  for (std::size_t i = out_pass.size() / 2; i < out_pass.size(); ++i) {
    p_pass += out_pass[i] * out_pass[i];
  }
  for (std::size_t i = out_img.size() / 2; i < out_img.size(); ++i) {
    p_img += out_img[i] * out_img[i];
  }
  EXPECT_GT(10 * std::log10(p_pass / p_img), 50.0);
}

TEST(Fir, LowpassPassesAndStops) {
  const auto taps = design_lowpass_fir(127, 0.05);
  double dc = 0;
  for (double t : taps) dc += t;
  EXPECT_NEAR(dc, 1.0, 1e-9);
  // Frequency response at passband/stopband probes.
  auto mag_at = [&](double f_norm) {
    double re = 0, im = 0;
    for (std::size_t k = 0; k < taps.size(); ++k) {
      re += taps[k] * std::cos(2 * kPi * f_norm * static_cast<double>(k));
      im -= taps[k] * std::sin(2 * kPi * f_norm * static_cast<double>(k));
    }
    return std::sqrt(re * re + im * im);
  };
  EXPECT_NEAR(mag_at(0.01), 1.0, 0.01);
  EXPECT_LT(mag_at(0.15), 0.01);
}

TEST(DecimateChain, PreservesInBandTone) {
  const double fs = 1e6;
  const std::size_t n = 1 << 15;
  const double fin = coherent_freq(2e3, fs, n);
  const auto x = sample(make_sine(0.8, fin), fs, n);
  const auto out = decimate_chain(x, 3, 8, 4);
  ASSERT_GT(out.size(), 256u);
  // Amplitude of the tone in the decimated stream stays ~0.8.
  double peak = 0;
  for (std::size_t i = out.size() / 2; i < out.size(); ++i) {
    peak = std::max(peak, std::fabs(out[i]));
  }
  EXPECT_NEAR(peak, 0.8, 0.05);
}

}  // namespace
}  // namespace vcoadc::dsp
