#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "netlist/cell_library.h"
#include "netlist/generator.h"
#include "netlist/logic_sim.h"
#include "tech/tech_node.h"

namespace vcoadc::netlist {
namespace {

const tech::TechNode& node40() {
  static const tech::TechNode n = tech::TechDatabase::standard().at(40);
  return n;
}

struct MiniFixture {
  CellLibrary lib;
  Design design;
  MiniFixture() : lib(make_standard_library(node40())), design(&lib) {}
};

TEST(LogicValues, NotTable) {
  EXPECT_EQ(logic_not(Logic::k0), Logic::k1);
  EXPECT_EQ(logic_not(Logic::k1), Logic::k0);
  EXPECT_EQ(logic_not(Logic::kX), Logic::kX);
  EXPECT_EQ(to_char(Logic::k0), '0');
  EXPECT_EQ(to_char(Logic::kX), 'X');
}

TEST(LogicSim, InverterChainPropagatesWithDelay) {
  MiniFixture f;
  Module& m = f.design.add_module("chain");
  m.add_port("IN", PortDir::kInput);
  m.add_port("OUT", PortDir::kOutput);
  m.add_net("n1");
  m.add_net("n2");
  auto inv = [&](const char* name, const char* a, const char* y) {
    Instance i;
    i.name = name;
    i.master = "INVX1";
    i.conn = {{"A", a}, {"Y", y}, {"VDD", "IN"}, {"VSS", "IN"}};
    // supply pins wired arbitrarily; they are ignored by the simulator
    m.add_instance(i);
  };
  inv("u0", "IN", "n1");
  inv("u1", "n1", "n2");
  inv("u2", "n2", "OUT");
  f.design.set_top("chain");

  LogicSim sim(f.design, node40());
  sim.set("IN", Logic::k0);
  ASSERT_TRUE(sim.settle(1e-9));
  EXPECT_EQ(sim.get("OUT"), Logic::k1);  // three inversions of 0

  double t_change = -1;
  sim.on_change("OUT", [&](double t, Logic) { t_change = t; });
  const double t0 = sim.now();
  sim.set("IN", Logic::k1);
  ASSERT_TRUE(sim.settle(t0 + 1e-9));
  EXPECT_EQ(sim.get("OUT"), Logic::k0);
  // Three INVX1 delays of FO4/4 each.
  const double expected = 3.0 * node40().fo4_delay_s / 4.0;
  EXPECT_NEAR(t_change - t0, expected, expected * 0.01);
}

TEST(LogicSim, Nor3TruthTable) {
  MiniFixture f;
  Module& m = f.design.add_module("t");
  for (const char* p : {"A", "B", "C"}) m.add_port(p, PortDir::kInput);
  m.add_port("Y", PortDir::kOutput);
  Instance i;
  i.name = "u0";
  i.master = "NOR3X1";
  i.conn = {{"A", "A"}, {"B", "B"}, {"C", "C"}, {"Y", "Y"},
            {"VDD", "A"}, {"VSS", "A"}};
  m.add_instance(i);
  f.design.set_top("t");

  LogicSim sim(f.design, node40());
  auto l = [](int v) { return v ? Logic::k1 : Logic::k0; };
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int c = 0; c < 2; ++c) {
        sim.set("A", l(a));
        sim.set("B", l(b));
        sim.set("C", l(c));
        ASSERT_TRUE(sim.settle(sim.now() + 1e-9));
        EXPECT_EQ(sim.get("Y"), l(!(a || b || c)))
            << a << b << c;
      }
    }
  }
}

TEST(LogicSim, XUnknownsPropagateConservatively) {
  MiniFixture f;
  Module& m = f.design.add_module("t");
  m.add_port("A", PortDir::kInput);
  m.add_port("B", PortDir::kInput);
  m.add_port("Y", PortDir::kOutput);
  Instance i;
  i.name = "u0";
  i.master = "NOR2X1";
  i.conn = {{"A", "A"}, {"B", "B"}, {"Y", "Y"}, {"VDD", "A"}, {"VSS", "A"}};
  m.add_instance(i);
  f.design.set_top("t");

  LogicSim sim(f.design, node40());
  // B unknown: a 1 on A still forces the NOR low (controlling value).
  sim.set("A", Logic::k1);
  ASSERT_TRUE(sim.settle(1e-9));
  EXPECT_EQ(sim.get("Y"), Logic::k0);
  // A low with B unknown stays unknown.
  sim.set("A", Logic::k0);
  ASSERT_TRUE(sim.settle(sim.now() + 1e-9));
  EXPECT_EQ(sim.get("Y"), Logic::kX);
}

TEST(LogicSim, DLatchTransparencyAndHold) {
  MiniFixture f;
  Module& m = f.design.add_module("t");
  m.add_port("D", PortDir::kInput);
  m.add_port("G", PortDir::kInput);
  m.add_port("Q", PortDir::kOutput);
  Instance i;
  i.name = "u0";
  i.master = "DLATX1";
  i.conn = {{"D", "D"}, {"G", "G"}, {"Q", "Q"}, {"VDD", "D"}, {"VSS", "D"}};
  m.add_instance(i);
  f.design.set_top("t");

  LogicSim sim(f.design, node40());
  sim.set("G", Logic::k1);
  sim.set("D", Logic::k1);
  ASSERT_TRUE(sim.settle(1e-9));
  EXPECT_EQ(sim.get("Q"), Logic::k1);  // transparent
  sim.set("G", Logic::k0);
  ASSERT_TRUE(sim.settle(sim.now() + 1e-9));
  sim.set("D", Logic::k0);
  ASSERT_TRUE(sim.settle(sim.now() + 1e-9));
  EXPECT_EQ(sim.get("Q"), Logic::k1);  // held
  sim.set("G", Logic::k1);
  ASSERT_TRUE(sim.settle(sim.now() + 1e-9));
  EXPECT_EQ(sim.get("Q"), Logic::k0);  // transparent again
}

// Executes the PAPER's comparator netlist (Table 1): reset on CLK high,
// regenerate the input decision on CLK low, hold it in the SR latch
// through the next reset.
TEST(LogicSim, Table1ComparatorDecidesAndLatches) {
  CellLibrary lib = make_standard_library(node40());
  add_resistor_cells(lib, node40());
  Design design = build_adc_design(lib, {});
  design.set_top("comparator");

  LogicSim sim(design, node40());
  // Reset phase: CLK high forces both NOR3 outputs low.
  sim.set("CLK", Logic::k1);
  sim.set("INP", Logic::k0);
  sim.set("INM", Logic::k1);
  ASSERT_TRUE(sim.settle(1e-9));
  EXPECT_EQ(sim.get("OUTP"), Logic::k0);
  EXPECT_EQ(sim.get("OUTM"), Logic::k0);

  // Decision: CLK low with INM high -> OUTM stays low, OUTP goes high,
  // the SR latch captures Q = 0.
  sim.set("CLK", Logic::k0);
  ASSERT_TRUE(sim.settle(sim.now() + 1e-9));
  EXPECT_EQ(sim.get("OUTP"), Logic::k1);
  EXPECT_EQ(sim.get("Q"), Logic::k0);
  EXPECT_EQ(sim.get("QB"), Logic::k1);

  // Back to reset: the SR latch must HOLD the decision.
  sim.set("CLK", Logic::k1);
  ASSERT_TRUE(sim.settle(sim.now() + 1e-9));
  EXPECT_EQ(sim.get("Q"), Logic::k0);
  EXPECT_EQ(sim.get("QB"), Logic::k1);

  // Opposite decision next cycle.
  sim.set("INP", Logic::k1);
  sim.set("INM", Logic::k0);
  sim.set("CLK", Logic::k0);
  ASSERT_TRUE(sim.settle(sim.now() + 1e-9));
  EXPECT_EQ(sim.get("Q"), Logic::k1);
  EXPECT_EQ(sim.get("QB"), Logic::k0);
}

// The Fig. 5 ring, as generated: once kicked out of X, the distributed
// differential ring oscillates with a period of ~2 * N * stage delay.
TEST(LogicSim, GeneratedRingOscillates) {
  CellLibrary lib = make_standard_library(node40());
  add_resistor_cells(lib, node40());
  GeneratorConfig cfg;
  cfg.num_slices = 4;
  Design design = build_adc_design(lib, cfg);

  LogicSim sim(design, node40());
  // Kick ring 1 out of the all-X state with a consistent differential seed.
  for (int i = 0; i < cfg.num_slices; ++i) {
    sim.set("R1P_" + std::to_string(i), Logic::k0);
    sim.set("R1N_" + std::to_string(i), Logic::k1);
  }
  std::vector<double> edges;
  sim.on_change("R1P_0", [&](double t, Logic) { edges.push_back(t); });
  sim.run_until(2e-10);  // 200 ps

  ASSERT_GT(edges.size(), 8u) << "ring did not oscillate";
  // Average period from rising-to-rising (every second edge).
  std::vector<double> periods;
  for (std::size_t i = 2; i < edges.size(); i += 2) {
    periods.push_back(edges[i] - edges[i - 2]);
  }
  double mean = 0;
  for (double p : periods) mean += p;
  mean /= static_cast<double>(periods.size());
  // Stage delay ~ forward INVX2 delay = (FO4/4) / sqrt(2).
  const double stage = node40().fo4_delay_s / 4.0 / std::sqrt(2.0);
  const double expected = 2.0 * cfg.num_slices * stage;
  EXPECT_NEAR(mean, expected, expected * 0.5);
}

// Full ADC netlist under a toggling clock with oscillating rings. In the
// pure-digital abstraction both rings run at exactly the same rate (no
// analog detuning), so the XOR outputs settle to a *constant, valid*
// pattern - the check is that every slice decision resolves out of X and
// the comparators keep resetting/regenerating each cycle (activity).
TEST(LogicSim, AdcTopProducesSliceActivity) {
  CellLibrary lib = make_standard_library(node40());
  add_resistor_cells(lib, node40());
  GeneratorConfig cfg;
  cfg.num_slices = 4;
  Design design = build_adc_design(lib, cfg);

  LogicSim sim(design, node40());
  for (int i = 0; i < cfg.num_slices; ++i) {
    sim.set("R1P_" + std::to_string(i), Logic::k0);
    sim.set("R1N_" + std::to_string(i), Logic::k1);
    sim.set("R2P_" + std::to_string(i), Logic::k1);
    sim.set("R2N_" + std::to_string(i), Logic::k0);
  }
  int d_transitions = 0;
  for (int i = 0; i < cfg.num_slices; ++i) {
    sim.on_change("D" + std::to_string(i),
                  [&](double, Logic) { ++d_transitions; });
  }
  // 100 clock cycles, period incommensurate with the ring period so the
  // sampled ring phase sweeps instead of orbit-locking.
  const double half = 0.317e-9;
  Logic clk = Logic::k0;
  for (int c = 0; c < 200; ++c) {
    sim.set("CLK", clk);
    sim.run_until(sim.now() + half);
    clk = logic_not(clk);
  }
  // Every slice bit resolved (X -> 0/1 at least once each).
  EXPECT_GE(d_transitions, cfg.num_slices);
  for (int i = 0; i < cfg.num_slices; ++i) {
    EXPECT_NE(sim.get("D" + std::to_string(i)), Logic::kX) << i;
  }
  // Rings + per-cycle comparator reset/regeneration keep the net busy.
  EXPECT_GT(sim.transition_count(), 5000u);
}

}  // namespace
}  // namespace vcoadc::netlist
