// Edge-case and robustness tests across the parsing/reporting substrate:
// hostile Verilog inputs, degenerate spectra, empty tables, DRC label
// coverage — the inputs a shipped library must not fall over on.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "dsp/spectrum.h"
#include "netlist/cell_library.h"
#include "netlist/netlist.h"
#include "netlist/verilog_parser.h"
#include "synth/drc.h"
#include "tech/tech_node.h"
#include "util/ascii_plot.h"
#include "util/table.h"

namespace vcoadc {
namespace {

netlist::CellLibrary lib40() {
  auto lib = netlist::make_standard_library(
      tech::TechDatabase::standard().at(40));
  netlist::add_resistor_cells(lib, tech::TechDatabase::standard().at(40));
  return lib;
}

TEST(VerilogParserRobustness, EmptyInput) {
  const auto lib = lib40();
  netlist::Design d(&lib);
  const auto res = netlist::parse_verilog("", d);
  EXPECT_TRUE(res.ok);  // zero modules is a valid (empty) file
  EXPECT_TRUE(d.modules().empty());
}

TEST(VerilogParserRobustness, GarbageTokens) {
  const auto lib = lib40();
  netlist::Design d(&lib);
  const auto res = netlist::parse_verilog("%%% not verilog @@@", d);
  EXPECT_FALSE(res.ok);
  EXPECT_GT(res.line, 0);
}

TEST(VerilogParserRobustness, UnterminatedModule) {
  const auto lib = lib40();
  netlist::Design d(&lib);
  const auto res =
      netlist::parse_verilog("module m(A);\n input A;\n", d);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("end of file"), std::string::npos);
}

TEST(VerilogParserRobustness, MissingSemicolonReported) {
  const auto lib = lib40();
  netlist::Design d(&lib);
  const auto res = netlist::parse_verilog(
      "module m(A, Y);\n input A\n output Y;\nendmodule\n", d);
  EXPECT_FALSE(res.ok);
}

TEST(VerilogParserRobustness, EscapedIdentifiers) {
  const auto lib = lib40();
  netlist::Design d(&lib);
  const std::string src =
      "module m(A, Y, VDD, VSS);\n"
      " input A; output Y; inout VDD, VSS;\n"
      " wire \\weird.net ;\n"
      " INVX1 u0 (.A(A), .Y(\\weird.net ), .VDD(VDD), .VSS(VSS));\n"
      " INVX1 u1 (.A(\\weird.net ), .Y(Y), .VDD(VDD), .VSS(VSS));\n"
      "endmodule\n";
  const auto res = netlist::parse_verilog(src, d);
  ASSERT_TRUE(res.ok) << res.error;
  d.set_top("m");
  EXPECT_TRUE(d.validate().empty());
}

TEST(VerilogParserRobustness, DeepNestingOfComments) {
  const auto lib = lib40();
  netlist::Design d(&lib);
  std::string src = "// c1\n/* c2 // c3 */ module m(A);\ninput A;\n";
  src += "/* multi\nline\ncomment */ endmodule\n";
  const auto res = netlist::parse_verilog(src, d);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(SpectrumRobustness, ConstantSignal) {
  // All-DC input: spectrum floors, analysis does not divide by zero.
  std::vector<double> x(1024, 0.7);
  const auto sp = dsp::compute_spectrum(x, 1e6, 1.0, dsp::WindowKind::kHann);
  for (double v : sp.dbfs) {
    EXPECT_LE(v, 0.0);
  }
  const auto rep = dsp::analyze_sndr(sp, 5e5, 0.0);
  EXPECT_TRUE(std::isfinite(rep.sndr_db));
}

TEST(SpectrumRobustness, TinySpectrumNoCrash) {
  std::vector<double> x(4, 0.0);
  x[1] = 1.0;
  const auto sp = dsp::compute_spectrum(x, 1e6, 1.0, dsp::WindowKind::kRect);
  const auto rep = dsp::analyze_sndr(sp, 5e5, 0.0);
  (void)rep;  // must simply not crash / UB
  const auto fit = dsp::fit_noise_slope(sp, 1e3, 5e5);
  EXPECT_TRUE(std::isfinite(fit.db_per_decade));
}

TEST(TableRobustness, EmptyTablePrintsNothing) {
  util::Table t;
  std::ostringstream os;
  t.print(os);
  EXPECT_TRUE(os.str().empty());
  EXPECT_TRUE(t.to_csv().empty());
}

TEST(AsciiPlotRobustness, EmptyAndSingularInputs) {
  util::PlotOptions opts;
  EXPECT_FALSE(util::ascii_plot(std::vector<double>{}, opts).empty());
  EXPECT_FALSE(util::ascii_plot(std::vector<double>{1.0}, opts).empty());
  // All-equal y values (zero range) must not divide by zero.
  std::vector<double> flat(16, 3.0);
  EXPECT_NE(util::ascii_plot(flat, opts).find('*'), std::string::npos);
}

TEST(DrcRobustness, AllKindsHaveLabels) {
  using synth::DrcKind;
  for (DrcKind kind :
       {DrcKind::kOverlap, DrcKind::kOutsideDie, DrcKind::kOutsideRegion,
        DrcKind::kOffRowGrid, DrcKind::kPowerRailShort,
        DrcKind::kRegionOverlap}) {
    EXPECT_NE(synth::to_string(kind), "?");
    EXPECT_FALSE(synth::to_string(kind).empty());
  }
}

TEST(DesignRobustness, FlattenOnMissingTopIsEmpty) {
  const auto lib = lib40();
  netlist::Design d(&lib);
  d.set_top("nonexistent");
  EXPECT_TRUE(d.flatten().empty());
  EXPECT_FALSE(d.validate().empty());
}

}  // namespace
}  // namespace vcoadc
