#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/ascii_plot.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/units.h"

namespace vcoadc::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng r(11);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, GaussianMoments) {
  Rng r(13);
  double sum = 0, sum2 = 0, sum3 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    sum += g;
    sum2 += g * g;
    sum3 += g * g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
  EXPECT_NEAR(sum3 / n, 0.0, 0.1);  // skewness ~ 0
}

TEST(Rng, GaussianScaled) {
  Rng r(17);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian(3.0, 2.0);
    sum += g;
    sum2 += (g - 3.0) * (g - 3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum2 / n), 2.0, 0.05);
}

TEST(Rng, BelowBounds) {
  Rng r(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = r.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(Rng, ForkIndependence) {
  Rng parent(23);
  Rng childa = parent.fork("a");
  Rng childb = parent.fork("b");
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (childa.next_u64() == childb.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(29);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += r.bernoulli(0.3);
  EXPECT_NEAR(ones / 10000.0, 0.3, 0.02);
}

// LaneRng's contract (the batched engine's bit-identity foundation): lane w
// of a LaneRng<W> produces exactly the draw sequence an independent scalar
// Rng with the same state would, under every draw kind and every width, and
// a draw in one lane never perturbs another. Comparisons are on bit
// patterns, not values, so even a -0.0 vs +0.0 drift would be caught.
template <int W>
void expect_lanes_match_scalar_streams() {
  LaneRng<W> lanes;
  Rng scalar[W];
  for (int w = 0; w < W; ++w) {
    scalar[w] = Rng(2000 + static_cast<std::uint64_t>(w));
    lanes.set_lane(w, scalar[w]);
  }
  // Mixed schedule over every draw kind, including the per-lane scalar
  // draws (next_lane / bernoulli_lane) that advance only one stream — the
  // shape a metastability event or a ziggurat rejection produces.
  std::uint64_t u[W];
  double d[W];
  for (int i = 0; i < 512; ++i) {
    lanes.next_lanes(u);
    for (int w = 0; w < W; ++w) EXPECT_EQ(u[w], scalar[w].next_u64());
    lanes.gaussian_lanes(d);
    for (int w = 0; w < W; ++w) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(d[w]),
                std::bit_cast<std::uint64_t>(scalar[w].gaussian()));
    }
    lanes.uniform_lanes(d);
    for (int w = 0; w < W; ++w) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(d[w]),
                std::bit_cast<std::uint64_t>(scalar[w].uniform()));
    }
    // Data-dependent single-lane advance: only lane (i % W) moves.
    const int hot = i % W;
    EXPECT_EQ(lanes.bernoulli_lane(hot, 0.5), scalar[hot].bernoulli(0.5));
  }
}

TEST(LaneRng, StreamsMatchScalarRngAtWidth2) {
  expect_lanes_match_scalar_streams<2>();
}

TEST(LaneRng, StreamsMatchScalarRngAtWidth4) {
  expect_lanes_match_scalar_streams<4>();
}

TEST(LaneRng, StreamsMatchScalarRngAtWidth8) {
  expect_lanes_match_scalar_streams<8>();
}

// Golden pin of the gaussian stream: the first draws of lane 0 as exact
// bit patterns (hex-float literals) plus an FNV-1a hash over the first 64
// draws of every lane. Lane 0's sequence must not depend on W (streams are
// independent), so one literal table covers all widths while the per-width
// hash still covers every lane. If this test moves, the RNG or the
// ziggurat tables changed and every recorded experiment is invalidated.
template <int W>
std::uint64_t gaussian_lanes_fnv(const double (&lane0_expect)[8]) {
  LaneRng<W> lanes;
  for (int w = 0; w < W; ++w) {
    lanes.set_lane(w, Rng(1000 + static_cast<std::uint64_t>(w)));
  }
  double d[W];
  std::uint64_t h = 1469598103934665603ULL;
  for (int i = 0; i < 64; ++i) {
    lanes.gaussian_lanes(d);
    if (i < 8) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(d[0]),
                std::bit_cast<std::uint64_t>(lane0_expect[i]))
          << "lane 0 draw " << i << " at W=" << W;
    }
    for (int w = 0; w < W; ++w) {
      const std::uint64_t b = std::bit_cast<std::uint64_t>(d[w]);
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (b >> (8 * byte)) & 0xffu;
        h *= 1099511628211ULL;
      }
    }
  }
  return h;
}

TEST(LaneRng, GaussianGoldenDraws) {
  static constexpr double kLane0[8] = {
      -0x1.8322e8fbc6593p-1, 0x1.3f8f1804a11e8p+0,  0x1.32baef9bb005bp-1,
      0x1.808b70ed6aae9p-3,  0x1.174a824fe006cp+0,  0x1.c880220d59aabp-1,
      0x1.19da81acf4ae7p-2,  -0x1.020be811da7e6p-7,
  };
  EXPECT_EQ(gaussian_lanes_fnv<2>(kLane0), 0x19a0167b86460a7cULL);
  EXPECT_EQ(gaussian_lanes_fnv<4>(kLane0), 0x1f084cdd9aba1890ULL);
  EXPECT_EQ(gaussian_lanes_fnv<8>(kLane0), 0xe15527913b7e90d1ULL);
}

TEST(Units, SiFormat) {
  EXPECT_EQ(si_format(750e6, "Hz"), "750 MHz");
  EXPECT_EQ(si_format(1.37e-3, "W"), "1.37 mW");
  EXPECT_EQ(si_format(0.0, "s"), "0 s");
  EXPECT_EQ(si_format(5e-9, "s"), "5 ns");
}

TEST(Units, DbRoundTrip) {
  EXPECT_NEAR(db_power(100.0), 20.0, 1e-12);
  EXPECT_NEAR(db_amplitude(10.0), 20.0, 1e-12);
  EXPECT_NEAR(from_db_power(db_power(3.7)), 3.7, 1e-12);
  EXPECT_NEAR(from_db_amplitude(db_amplitude(0.3)), 0.3, 1e-12);
  EXPECT_TRUE(std::isinf(db_power(0.0)));
}

TEST(Units, EnobMatchesPaperFootnote) {
  // Table 3 footnote: ENOB = (SNDR - 1.76)/6.02. 69.5 dB -> 11.25 bits.
  EXPECT_NEAR(enob_from_sndr_db(69.5), 11.252, 0.01);
}

TEST(Units, WaldenFomMatchesPaper) {
  // Table 3 row 1: P = 1.37 mW, SNDR = 69.5 dB, BW = 5 MHz -> 56.2 fJ/conv.
  EXPECT_NEAR(walden_fom_fj(1.37e-3, 69.5, 5e6), 56.2, 1.0);
  // Table 3 row 2: P = 5.45 mW, SNDR = 69.5 dB, BW = 1.4 MHz -> ~798.
  EXPECT_NEAR(walden_fom_fj(5.45e-3, 69.5, 1.4e6), 798.0, 15.0);
}

TEST(Strings, Split) {
  const auto parts = split("a, b,,c", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Strings, Identifiers) {
  EXPECT_TRUE(is_identifier("VCO_cell"));
  EXPECT_TRUE(is_identifier("_n1$"));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a b"));
}

TEST(Strings, FormatAndJoin) {
  EXPECT_EQ(format("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(join({}, "."), "");
}

TEST(Table, RendersAllCells) {
  Table t("Demo");
  t.set_header({"A", "B"});
  t.add_row({"1", "22"});
  t.add_row({"333"});  // ragged row padded
  t.add_footnote("note");
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("* note"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t;
  t.set_header({"x"});
  t.add_row({"a,b"});
  t.add_row({"q\"q"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"q\""), std::string::npos);
}

TEST(AsciiPlot, ContainsPointsAndAxes) {
  std::vector<double> y(50);
  for (std::size_t i = 0; i < y.size(); ++i)
    y[i] = std::sin(0.3 * static_cast<double>(i));
  PlotOptions opts;
  opts.title = "wave";
  const std::string s = ascii_plot(y, opts);
  EXPECT_NE(s.find("wave"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find('+'), std::string::npos);
}

TEST(AsciiPlot, LogXHandlesDecades) {
  std::vector<double> x, y;
  for (int i = 1; i <= 1000; ++i) {
    x.push_back(i * 1e3);
    y.push_back(-20.0 * std::log10(i));
  }
  PlotOptions opts;
  opts.log_x = true;
  const std::string s = ascii_plot(x, y, opts);
  EXPECT_NE(s.find('*'), std::string::npos);
}

}  // namespace
}  // namespace vcoadc::util
