#include <gtest/gtest.h>

#include "baselines/domino_adc.h"
#include "baselines/opamp_dsm.h"
#include "baselines/passive_dsm.h"
#include "baselines/published.h"
#include "baselines/stochastic_flash.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "tech/tech_node.h"

namespace vcoadc::baselines {
namespace {

double measure_sndr(const std::vector<double>& y, double fs, double bw,
                    double fin) {
  const auto spec = dsp::compute_spectrum(y, fs, 1.0, dsp::WindowKind::kHann);
  return dsp::analyze_sndr(spec, bw, fin).sndr_db;
}

TEST(Published, Table4RowsPresent) {
  const auto& rows = table4_prior_works();
  ASSERT_EQ(rows.size(), 4u);
  // Table 4 exact values.
  EXPECT_DOUBLE_EQ(rows[0].sndr_db, 56.3);
  EXPECT_DOUBLE_EQ(rows[1].sndr_db, 56.2);
  EXPECT_DOUBLE_EQ(rows[2].sndr_db, 35.9);
  EXPECT_DOUBLE_EQ(rows[3].sndr_db, 34.2);
  EXPECT_DOUBLE_EQ(table4_this_work().sndr_db, 69.5);
  EXPECT_DOUBLE_EQ(table4_this_work().fom_fj, 56.2);
  // The paper's claim: our SNDR is 13 dB above the second best.
  double second_best = 0;
  for (const auto& r : rows) second_best = std::max(second_best, r.sndr_db);
  EXPECT_NEAR(table4_this_work().sndr_db - second_best, 13.2, 0.5);
}

TEST(PassiveDsm, ReproducesPublishedSndrBand) {
  PassiveDsmAdc::Params p;  // defaults = [15] 65 nm operating point
  PassiveDsmAdc adc(p);
  const std::size_t n = 1 << 15;
  const double fin = dsp::coherent_freq(300e3, p.fs_hz, n);
  const auto y = adc.run(dsp::make_sine(0.7, fin), n);
  const double sndr = measure_sndr(y, p.fs_hz, p.bw_hz, fin);
  // Published: 56.3 dB. Behavioral band: 52..60.
  EXPECT_GT(sndr, 52.0);
  EXPECT_LT(sndr, 60.0);
}

TEST(PassiveDsm, LeakierIntegratorIsWorse) {
  const std::size_t n = 1 << 14;
  double sndr_tight = 0, sndr_leaky = 0;
  for (double leak : {0.02, 0.3}) {
    PassiveDsmAdc::Params p;
    p.integrator_leak = leak;
    PassiveDsmAdc adc(p);
    const double fin = dsp::coherent_freq(300e3, p.fs_hz, n);
    const auto y = adc.run(dsp::make_sine(0.5, fin), n);
    const double sndr = measure_sndr(y, p.fs_hz, p.bw_hz, fin);
    if (leak < 0.1) sndr_tight = sndr;
    else sndr_leaky = sndr;
  }
  EXPECT_GT(sndr_tight, sndr_leaky + 3.0);
}

TEST(StochasticFlash, ReproducesPublishedSndrBand) {
  StochasticFlashAdc::Params p;  // defaults = [16] 90 nm operating point
  p.seed = 12;  // mid-band mismatch realization (the band spans ~±6 dB)
  StochasticFlashAdc adc(p);
  const std::size_t n = 1 << 13;
  const double fin = dsp::coherent_freq(10e6, p.fs_hz, n);
  const auto y = adc.run(dsp::make_sine(0.5, fin), n);
  const double sndr = measure_sndr(y, p.fs_hz, p.bw_hz, fin);
  // Published: 35.9 dB. Behavioral band: 30..42.
  EXPECT_GT(sndr, 30.0);
  EXPECT_LT(sndr, 42.0);
}

TEST(StochasticFlash, MoreComparatorsMoreSndr) {
  const std::size_t n = 1 << 12;
  double sndr_small = 0, sndr_big = 0;
  for (int k : {63, 4095}) {
    StochasticFlashAdc::Params p;
    p.comparators = k;
    StochasticFlashAdc adc(p);
    const double fin = dsp::coherent_freq(10e6, p.fs_hz, n);
    const auto y = adc.run(dsp::make_sine(0.5, fin), n);
    const double sndr = measure_sndr(y, p.fs_hz, p.bw_hz, fin);
    if (k == 63) sndr_small = sndr;
    else sndr_big = sndr;
  }
  EXPECT_GT(sndr_big, sndr_small + 6.0);
}

TEST(StochasticFlash, LinearizationHelps) {
  const std::size_t n = 1 << 12;
  double sndr_lin = 0, sndr_raw = 0;
  for (bool lin : {true, false}) {
    StochasticFlashAdc::Params p;
    p.linearize = lin;
    StochasticFlashAdc adc(p);
    const double fin = dsp::coherent_freq(10e6, p.fs_hz, n);
    const auto y = adc.run(dsp::make_sine(0.6, fin), n);
    const double sndr = measure_sndr(y, p.fs_hz, p.bw_hz, fin);
    (lin ? sndr_lin : sndr_raw) = sndr;
  }
  EXPECT_GT(sndr_lin, sndr_raw);
}

TEST(Domino, ReproducesPublishedSndrBand) {
  DominoAdc::Params p;  // defaults = [17] 180 nm operating point
  DominoAdc adc(p);
  const std::size_t n = 1 << 13;
  const double fin = dsp::coherent_freq(2e6, p.fs_hz, n);
  const auto y = adc.run(dsp::make_sine(0.7, fin), n);
  const double sndr = measure_sndr(y, p.fs_hz, p.bw_hz, fin);
  // Published: 34.2 dB. Behavioral band: 28..40.
  EXPECT_GT(sndr, 28.0);
  EXPECT_LT(sndr, 40.0);
}

TEST(OpampDsm, GainDegradationHurtsSndr) {
  const std::size_t n = 1 << 14;
  double high_gain = 0, low_gain = 0;
  for (double gain : {10000.0, 15.0}) {
    OpampDsmAdc::Params p;
    p.opamp_dc_gain = gain;
    OpampDsmAdc adc(p);
    const double fin = dsp::coherent_freq(200e3, p.fs_hz, n);
    const auto y = adc.run(dsp::make_sine(0.6, fin), n);
    const double sndr = measure_sndr(y, p.fs_hz, p.bw_hz, fin);
    (gain > 100 ? high_gain : low_gain) = sndr;
  }
  EXPECT_GT(high_gain, low_gain + 8.0);
}

TEST(OpampDsm, AchievableGainCollapsesWithScaling) {
  const auto& db = tech::TechDatabase::standard();
  const double g500 = OpampDsmAdc::achievable_opamp_gain(db.at(500));
  const double g40 = OpampDsmAdc::achievable_opamp_gain(db.at(40));
  const double g22 = OpampDsmAdc::achievable_opamp_gain(db.at(22));
  EXPECT_GT(g500, 5000.0);  // two stages of gain ~126
  EXPECT_LT(g40, 10.0);     // single starved stage
  EXPECT_LT(g22, g40);
}

TEST(OpampDsm, RankingMatchesPaperNarrative) {
  // In an old process the VD modulator is competitive; in 40 nm it loses
  // badly to what the paper's TD architecture achieves (~65+ dB measured
  // in our core tests).
  const std::size_t n = 1 << 14;
  auto sndr_at = [&](double node_nm) {
    OpampDsmAdc::Params p;
    p.opamp_dc_gain = OpampDsmAdc::achievable_opamp_gain(
        tech::TechDatabase::standard().at(node_nm));
    OpampDsmAdc adc(p);
    const double fin = dsp::coherent_freq(200e3, p.fs_hz, n);
    const auto y = adc.run(dsp::make_sine(0.6, fin), n);
    return measure_sndr(y, p.fs_hz, p.bw_hz, fin);
  };
  const double sndr_500 = sndr_at(500);
  const double sndr_40 = sndr_at(40);
  EXPECT_GT(sndr_500, sndr_40 + 6.0);
  EXPECT_LT(sndr_40, 60.0);
}

}  // namespace
}  // namespace vcoadc::baselines
