#include <gtest/gtest.h>

#include "core/datasheet.h"

namespace vcoadc::core {
namespace {

TEST(Datasheet, FullFlowProducesConsistentNumbers) {
  DatasheetOptions opts;
  opts.n_samples = 1 << 13;
  opts.mc_runs = 0;
  const Datasheet ds = generate_datasheet(AdcSpec::paper_40nm(), opts);
  EXPECT_GT(ds.nominal.sndr.sndr_db, 60.0);
  EXPECT_GT(ds.area_mm2, 1e-3);
  EXPECT_TRUE(ds.drc.clean());
  EXPECT_TRUE(ds.power_grid.clean());
  EXPECT_EQ(ds.routing.failed_nets, 0);
  EXPECT_GT(ds.timing.slack_s, 0.0);
  EXPECT_TRUE(ds.mc.sndr_db.empty());
  // Wire load reached the power model.
  EXPECT_GT(ds.nominal.power.wire_w, 0.0);
}

TEST(Datasheet, RenderContainsEverySection) {
  DatasheetOptions opts;
  opts.n_samples = 1 << 12;
  opts.mc_runs = 2;
  const Datasheet ds = generate_datasheet(AdcSpec::paper_40nm(), opts);
  const std::string text = ds.render();
  for (const char* needle :
       {"dynamic performance", "SNDR", "ENOB", "Walden FOM", "die area",
        "power grid", "critical path", "slack", "SNDR (MC"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(Datasheet, MonteCarloSectionOptional) {
  DatasheetOptions opts;
  opts.n_samples = 1 << 12;
  opts.mc_runs = 0;
  const Datasheet ds = generate_datasheet(AdcSpec::paper_40nm(), opts);
  EXPECT_EQ(ds.render().find("SNDR (MC"), std::string::npos);
}

}  // namespace
}  // namespace vcoadc::core
