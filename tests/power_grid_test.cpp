#include <gtest/gtest.h>
#include <cmath>

#include "core/adc_spec.h"
#include "core/adc.h"
#include "netlist/generator.h"
#include "synth/power_grid.h"
#include "synth/synthesis_flow.h"

namespace vcoadc::synth {
namespace {

TEST(PowerGrid, DomainToNetMapping) {
  EXPECT_EQ(power_net_of_domain(netlist::kPdVdd), "VDD");
  EXPECT_EQ(power_net_of_domain(netlist::kPdVctrlp), "VCTRLP");
  EXPECT_EQ(power_net_of_domain(netlist::kPdVctrln), "VCTRLN");
  EXPECT_EQ(power_net_of_domain(netlist::kPdVrefp), "VREFP");
  EXPECT_EQ(power_net_of_domain(netlist::kPdVbuf1), "VBUF");
  EXPECT_EQ(power_net_of_domain(netlist::kPdVbuf2), "VBUF");
}

TEST(PowerGrid, RailsOnlyInPowerDomains) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  const auto res = adc.synthesize();
  const PowerGrid grid = generate_power_grid(res.layout->floorplan());
  EXPECT_FALSE(grid.rails.empty());
  for (const RailSegment& r : grid.rails) {
    EXPECT_EQ(r.region.find("GRP_"), std::string::npos)
        << "rail in component group " << r.region;
  }
  // Both rail polarities exist in every domain region.
  for (const PlacedRegion& region : res.layout->floorplan().regions) {
    if (region.spec.is_group) continue;
    bool vss = false, pwr = false;
    for (const RailSegment& r : grid.rails) {
      if (r.region != region.spec.name) continue;
      if (r.net == "VSS") vss = true;
      else pwr = true;
    }
    EXPECT_TRUE(vss) << region.spec.name;
    EXPECT_TRUE(pwr) << region.spec.name;
  }
}

TEST(PowerGrid, RailsAlternateOnRowGrid) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  const auto res = adc.synthesize();
  const auto& fp = res.layout->floorplan();
  const PowerGrid grid = generate_power_grid(fp);
  for (const RailSegment& r : grid.rails) {
    const double yc = r.rect.y + r.rect.h / 2;
    const double line = (yc - fp.die.y) / fp.row_height_m;
    EXPECT_NEAR(line, std::round(line), 1e-6);
    const bool even = (std::lround(line) % 2) == 0;
    if (even) {
      EXPECT_EQ(r.net, "VSS");
    } else {
      EXPECT_NE(r.net, "VSS");
    }
  }
}

TEST(PowerGrid, ProposedFlowIsFullyConnected) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  const auto res = adc.synthesize();
  const PowerGrid grid = generate_power_grid(res.layout->floorplan());
  const PowerGridCheck check =
      check_power_grid(grid, res.layout->flat(), res.layout->placement(),
                       res.layout->floorplan());
  EXPECT_TRUE(check.clean());
  for (const auto& p : check.problems) ADD_FAILURE() << p;
  EXPECT_GT(check.cells_checked, 400);  // 16 slices of gates
}

TEST(PowerGrid, NaiveFlowFailsConnectivity) {
  // PD-oblivious placement scatters cells across foreign regions: their
  // supply pins land on wrong rails - the physical Sec. 3.3 failure.
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  SynthesisOptions naive;
  naive.respect_power_domains = false;
  naive.detailed_route = false;
  const auto res = adc.synthesize(naive);
  const PowerGrid grid = generate_power_grid(res.layout->floorplan());
  const PowerGridCheck check =
      check_power_grid(grid, res.layout->flat(), res.layout->placement(),
                       res.layout->floorplan());
  EXPECT_FALSE(check.clean());
  EXPECT_GT(check.wrong_rail_cells + check.unconnected_cells, 50);
}

TEST(PowerGrid, IrDropSmallAndScalesWithCurrent) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  const auto res = adc.synthesize();
  const PowerGrid grid = generate_power_grid(res.layout->floorplan());
  const auto low = check_power_grid(grid, res.layout->flat(),
                                    res.layout->placement(),
                                    res.layout->floorplan(), 1e-6);
  const auto high = check_power_grid(grid, res.layout->flat(),
                                     res.layout->placement(),
                                     res.layout->floorplan(), 1e-4);
  EXPECT_GT(low.max_ir_drop_v, 0.0);
  EXPECT_NEAR(high.max_ir_drop_v / low.max_ir_drop_v, 100.0, 1.0);
  // At realistic per-gate currents the drop is far below 1% of VDD.
  EXPECT_LT(low.max_ir_drop_v, 0.011);
  EXPECT_FALSE(low.worst_rail.empty());
}

}  // namespace
}  // namespace vcoadc::synth
