// Additional behavioral-model tests: comparator decision noise, two-tone
// intermodulation, overload/recovery behaviour, and golden regression
// vectors pinning the deterministic simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/adc_spec.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "msim/comparator.h"
#include "msim/modulator.h"

namespace vcoadc::msim {
namespace {

SimConfig base_config() {
  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  spec.with_nonidealities = false;
  return spec.to_sim_config();
}

TEST(ComparatorNoise, RandomizesMarginalDecisions) {
  SamplingFrontEnd::Params p;
  p.noise_sigma_v = 10e-3;
  p.tap_slew_v_per_s = 1e10;
  SamplingFrontEnd fe(p, util::Rng(7));
  // Tap flips value 0.5 ps after the sampling instant: noise of 1 ps-e
  // equivalent makes the decision ambiguous.
  auto level = [](double toff) { return toff < 0.5e-12; };
  int ones = 0;
  for (int i = 0; i < 2000; ++i) {
    ones += fe.sample(level, /*time_to_edge=*/1e-9, 0.0);
  }
  EXPECT_GT(ones, 300);
  EXPECT_LT(ones, 1900);
}

TEST(ComparatorNoise, TimeDomainArchitectureDesensitizesIt) {
  // Sec. 2.2.1: "the TD nature of this ADC desensitized VD related
  // non-idealities". A comparator voltage noise converts to a sampling-
  // time perturbation through the tap slew; even 20 mV (4x the offset
  // sigma of the node!) is a small fraction of the quantizer LSB and must
  // cost almost nothing - unlike in a voltage-domain converter, where
  // 20 mV of comparator noise on a 1.1 V range caps SNR near 32 dB.
  const std::size_t n = 1 << 14;
  double sndr_clean = 0, sndr_very_noisy = 0;
  for (double noise : {0.0, 20e-3}) {
    SimConfig cfg = base_config();
    cfg.comparator_noise_sigma_v = noise;
    VcoDsmModulator mod(cfg);
    const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n);
    const auto res =
        mod.run(dsp::make_sine(0.7 * mod.full_scale_diff(), fin), n);
    const auto sp = dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0,
                                          dsp::WindowKind::kHann);
    const double s = dsp::analyze_sndr(sp, 5e6, fin).sndr_db;
    (noise == 0.0 ? sndr_clean : sndr_very_noisy) = s;
  }
  EXPECT_GT(sndr_very_noisy, sndr_clean - 3.0);
  EXPECT_GT(sndr_very_noisy, 60.0);
}

TEST(TwoTone, IntermodProductsStayLow) {
  // Classic IMD3 test: two tones at -9 dBFS each near 1 MHz; third-order
  // products at 2f1-f2 / 2f2-f1 must stay well below the tones.
  SimConfig cfg = base_config();
  const std::size_t n = 1 << 15;
  const double f1 = dsp::coherent_freq(0.9e6, cfg.fs_hz, n);
  const double f2 = dsp::coherent_freq(1.1e6, cfg.fs_hz, n);
  VcoDsmModulator mod(cfg);
  const double amp = mod.full_scale_diff() * std::pow(10.0, -9.0 / 20.0);
  const auto res = mod.run(dsp::make_two_tone(amp, f1, amp, f2), n);
  const auto sp = dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0,
                                        dsp::WindowKind::kHann);
  auto power_near = [&](double f) {
    double p = 0;
    for (std::size_t i = 1; i < sp.power.size(); ++i) {
      if (std::fabs(sp.freq_hz[i] - f) <= 3 * sp.bin_hz) p += sp.power[i];
    }
    return p;
  };
  const double tone = power_near(f1);
  const double imd3 = std::max(power_near(2 * f1 - f2),
                               power_near(2 * f2 - f1));
  const double imd3_dbc = 10 * std::log10(imd3 / tone);
  EXPECT_LT(imd3_dbc, -45.0);
}

TEST(Overload, RecoversAfterInputBurst) {
  // Drive the loop far past full scale for a stretch, then return in
  // range: a first-order loop must recover (no latch-up) and keep
  // converting.
  SimConfig cfg = base_config();
  VcoDsmModulator mod(cfg);
  const double fs_diff = mod.full_scale_diff();
  auto burst = [&](double t) {
    const double period = 4096.0 / cfg.fs_hz;
    return (t < period) ? 1.6 * fs_diff : 0.3 * fs_diff;
  };
  const auto res = mod.run(burst, 8192);
  // During overload the XOR quantizer is periodic, so the code CYCLES
  // (the phase difference wraps) instead of railing - the loop cannot
  // track 1.6x FS.
  double mean_burst = 0;
  for (std::size_t i = 256; i < 4096; ++i) mean_burst += res.output[i];
  mean_burst /= (4096.0 - 256.0);
  EXPECT_LT(std::fabs(mean_burst), 1.0);  // bounded, not meaningful
  // After the burst the loop re-acquires and the mean output tracks the
  // in-range DC level again (sign per the inverting feedback).
  double mean = 0;
  for (std::size_t i = 6144; i < 8192; ++i) mean += res.output[i];
  mean /= 2048.0;
  EXPECT_NEAR(std::fabs(mean), 0.3, 0.06);
  // And it is not stuck: codes keep moving.
  int distinct = 0;
  for (std::size_t i = 6145; i < 8192; ++i) {
    distinct += (res.counts[i] != res.counts[i - 1]);
  }
  EXPECT_GT(distinct, 100);
}

TEST(Golden, FixedSeedCountsAreStable) {
  // Regression pin: the deterministic simulation must not drift silently.
  // (If a deliberate model change breaks this, re-record the vector.)
  SimConfig cfg = base_config();
  cfg.seed = 424242;
  VcoDsmModulator mod(cfg);
  const auto res = mod.run(dsp::make_dc(0.0), 64);
  ASSERT_EQ(res.counts.size(), 64u);
  // All counts near midscale and the exact sequence reproducible.
  int sum_first16 = 0;
  for (int i = 0; i < 16; ++i) sum_first16 += res.counts[static_cast<std::size_t>(i)];
  const auto res2 = VcoDsmModulator(cfg).run(dsp::make_dc(0.0), 64);
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(res.counts[i], res2.counts[i]);
  }
  EXPECT_NEAR(sum_first16 / 16.0, cfg.num_slices / 2.0, 2.0);
}

}  // namespace
}  // namespace vcoadc::msim
