#include <gtest/gtest.h>

#include "netlist/cell_library.h"
#include "netlist/generator.h"
#include "synth/drc.h"
#include "synth/floorplan.h"
#include "synth/geometry.h"
#include "synth/layout.h"
#include "synth/placer.h"
#include "synth/router.h"
#include "synth/synthesis_flow.h"
#include "tech/tech_node.h"

namespace vcoadc::synth {
namespace {

struct Fixture {
  netlist::CellLibrary lib;
  netlist::Design design;

  explicit Fixture(double node_nm = 40, int slices = 8)
      : lib(netlist::make_standard_library(
            tech::TechDatabase::standard().at(node_nm))),
        design(&lib) {
    netlist::add_resistor_cells(lib, tech::TechDatabase::standard().at(node_nm));
    netlist::GeneratorConfig cfg;
    cfg.num_slices = slices;
    design = netlist::build_adc_design(lib, cfg);
  }
};

TEST(Geometry, RectBasics) {
  Rect a{0, 0, 2, 2};
  Rect b{1, 1, 2, 2};
  Rect c{3, 3, 1, 1};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  const Rect big{0, 0, 4, 4};
  EXPECT_TRUE(big.contains(b));
  EXPECT_FALSE(b.contains(a));
  const Rect i = a.intersect(b);
  EXPECT_DOUBLE_EQ(i.area(), 1.0);
  EXPECT_DOUBLE_EQ(a.intersect(c).area(), 0.0);
}

TEST(Geometry, RectTouchingIsNotOverlap) {
  Rect a{0, 0, 1, 1};
  Rect b{1, 0, 1, 1};  // abutting
  EXPECT_FALSE(a.overlaps(b));
}

TEST(Geometry, BBoxHalfPerimeter) {
  BBox bb;
  EXPECT_DOUBLE_EQ(bb.half_perimeter(), 0.0);
  bb.expand({0, 0});
  bb.expand({3, 4});
  bb.expand({1, 1});
  EXPECT_DOUBLE_EQ(bb.half_perimeter(), 7.0);
}

TEST(Partition, RegionsMatchFig12) {
  Fixture f;
  const auto flat = f.design.flatten();
  const auto regions = partition_into_regions(flat);
  // 6 power domains + 4 groups (Fig. 14).
  EXPECT_EQ(regions.size(), 10u);
  int groups = 0, pds = 0;
  int total_members = 0;
  for (const auto& r : regions) {
    (r.is_group ? groups : pds)++;
    total_members += static_cast<int>(r.members.size());
    EXPECT_GT(r.cell_area_m2, 0.0);
    EXPECT_GT(r.max_cell_width_m, 0.0);
  }
  EXPECT_EQ(groups, 4);
  EXPECT_EQ(pds, 6);
  EXPECT_EQ(total_members, static_cast<int>(flat.size()));
}

TEST(Floorplanner, RegionsDisjointAndInsideDie) {
  Fixture f;
  const auto flat = f.design.flatten();
  const auto regions = partition_into_regions(flat);
  FloorplanOptions opts;
  opts.row_height_m = f.lib.row_height_m();
  opts.site_width_m = f.lib.at("INVX1").width_m / 3.0;
  const Floorplan fp = make_floorplan(regions, opts);
  for (std::size_t i = 0; i < fp.regions.size(); ++i) {
    EXPECT_TRUE(fp.die.contains(fp.regions[i].rect))
        << fp.regions[i].spec.name;
    for (std::size_t j = i + 1; j < fp.regions.size(); ++j) {
      EXPECT_FALSE(fp.regions[i].rect.overlaps(fp.regions[j].rect))
          << fp.regions[i].spec.name << " vs " << fp.regions[j].spec.name;
    }
  }
  // The slicing tree covers the die.
  EXPECT_NEAR(fp.region_area_fraction(), 1.0, 0.05);
}

TEST(Floorplanner, RegionAreaTracksCellArea) {
  Fixture f;
  const auto flat = f.design.flatten();
  const auto regions = partition_into_regions(flat);
  FloorplanOptions opts;
  opts.row_height_m = f.lib.row_height_m();
  opts.site_width_m = f.lib.at("INVX1").width_m / 3.0;
  opts.target_utilization = 0.6;
  const Floorplan fp = make_floorplan(regions, opts);
  for (const PlacedRegion& r : fp.regions) {
    // Every region can hold its cells at some reasonable density.
    EXPECT_GE(r.rect.area() * 0.95, r.spec.cell_area_m2) << r.spec.name;
  }
}

TEST(Floorplanner, SpecStringListsEverything) {
  Fixture f;
  const auto flat = f.design.flatten();
  const auto regions = partition_into_regions(flat);
  FloorplanOptions opts;
  opts.row_height_m = f.lib.row_height_m();
  opts.site_width_m = f.lib.at("INVX1").width_m / 3.0;
  const Floorplan fp = make_floorplan(regions, opts);
  const std::string spec = write_floorplan_spec(fp);
  EXPECT_NE(spec.find("DIE"), std::string::npos);
  EXPECT_NE(spec.find("POWER_DOMAIN PD_VCTRLP"), std::string::npos);
  EXPECT_NE(spec.find("GROUP GRP_DAC_RES1"), std::string::npos);
}

TEST(Placer, SupplyNetClassifier) {
  EXPECT_TRUE(is_supply_net("VDD"));
  EXPECT_TRUE(is_supply_net("slice3/VCTRLP"));
  EXPECT_TRUE(is_supply_net("VBUF"));
  EXPECT_FALSE(is_supply_net("CLK_BUF"));
  EXPECT_FALSE(is_supply_net("slice2/DAC_OUT"));
  EXPECT_FALSE(is_supply_net("D3"));
}

TEST(Placer, AllCellsPlacedInTheirRegions) {
  Fixture f;
  const SynthesisResult res = synthesize(f.design, {});
  EXPECT_FALSE(res.layout->placement().overflow);
  const auto& flat = res.layout->flat();
  const auto& pl = res.layout->placement();
  const auto& fp = res.layout->floorplan();
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const std::string want =
        flat[i].cell->is_resistor ? flat[i].group : flat[i].power_domain;
    const PlacedRegion* r = fp.find(want);
    ASSERT_NE(r, nullptr) << want;
    EXPECT_TRUE(r->rect.contains(pl.cells[i].rect))
        << flat[i].path << " not inside " << want;
  }
}

TEST(Placer, CleanDrcWithPowerDomains) {
  Fixture f;
  const SynthesisResult res = synthesize(f.design, {});
  EXPECT_TRUE(res.drc.clean());
  for (const auto& v : res.drc.violations) {
    ADD_FAILURE() << to_string(v.kind) << ": " << v.detail;
  }
}

TEST(Placer, NaiveFlowShortsPowerRails) {
  // Sec. 3.3's motivating failure: run the PD-oblivious flow of the prior
  // works on this circuit and the rails short between domains.
  Fixture f;
  SynthesisOptions opts;
  opts.respect_power_domains = false;
  const SynthesisResult res = synthesize(f.design, opts);
  EXPECT_GT(res.drc.count(DrcKind::kPowerRailShort), 0);
}

TEST(Placer, RefinementDoesNotHurtHpwl) {
  Fixture f;
  SynthesisOptions no_refine;
  no_refine.refine_passes = 0;
  no_refine.barycenter_passes = 0;
  SynthesisOptions full;
  const SynthesisResult base = synthesize(f.design, no_refine);
  const SynthesisResult opt = synthesize(f.design, full);
  EXPECT_LE(opt.routing.total_hpwl_m, base.routing.total_hpwl_m * 1.02);
}

TEST(Placer, DeterministicForFixedSeed) {
  Fixture f;
  const SynthesisResult a = synthesize(f.design, {});
  const SynthesisResult b = synthesize(f.design, {});
  ASSERT_EQ(a.layout->placement().cells.size(),
            b.layout->placement().cells.size());
  for (std::size_t i = 0; i < a.layout->placement().cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.layout->placement().cells[i].rect.x,
                     b.layout->placement().cells[i].rect.x);
    EXPECT_DOUBLE_EQ(a.layout->placement().cells[i].rect.y,
                     b.layout->placement().cells[i].rect.y);
  }
}

TEST(Router, HpwlPositiveAndConsistent) {
  Fixture f;
  const SynthesisResult res = synthesize(f.design, {});
  EXPECT_GT(res.routing.total_hpwl_m, 0.0);
  EXPECT_GE(res.routing.total_est_length_m, res.routing.total_hpwl_m);
  EXPECT_GT(res.routing.wire_cap_f, 0.0);
  double sum = 0;
  for (const auto& nr : res.routing.nets) {
    EXPECT_GE(nr.pins, 2);
    sum += nr.hpwl_m;
  }
  EXPECT_NEAR(sum, res.routing.total_hpwl_m, 1e-12);
}

TEST(Router, CongestionMapPopulated) {
  Fixture f;
  const SynthesisResult res = synthesize(f.design, {});
  EXPECT_GT(res.routing.congestion.max_demand, 0.0);
  EXPECT_GT(res.routing.congestion.mean_demand, 0.0);
  EXPECT_GE(res.routing.congestion.max_demand,
            res.routing.congestion.mean_demand);
}

TEST(Drc, DetectsInjectedOverlap) {
  Fixture f;
  SynthesisResult res = synthesize(f.design, {});
  auto flat = res.layout->flat();
  Placement pl = res.layout->placement();
  // Force cell 1 onto cell 0.
  pl.cells[1].rect = pl.cells[0].rect;
  pl.cells[1].row = pl.cells[0].row;
  pl.cells[1].region = pl.cells[0].region;
  const DrcReport rep = run_drc(flat, pl, res.layout->floorplan());
  EXPECT_GT(rep.count(DrcKind::kOverlap) + rep.count(DrcKind::kOutsideRegion),
            0);
}

TEST(Drc, DetectsOutsideDie) {
  Fixture f;
  SynthesisResult res = synthesize(f.design, {});
  auto flat = res.layout->flat();
  Placement pl = res.layout->placement();
  pl.cells[0].rect.x = res.layout->floorplan().die.x2() + 1e-6;
  const DrcReport rep = run_drc(flat, pl, res.layout->floorplan());
  EXPECT_GT(rep.count(DrcKind::kOutsideDie), 0);
}

TEST(Layout, StatsSaneUtilization) {
  Fixture f;
  const SynthesisResult res = synthesize(f.design, {});
  EXPECT_GT(res.stats.utilization, 0.05);
  EXPECT_LT(res.stats.utilization, 0.95);
  EXPECT_EQ(res.stats.num_cells, 257);
  EXPECT_EQ(res.stats.num_regions, 10);
  EXPECT_GT(res.stats.num_rows, 2);
}

TEST(Layout, AreaScalesAcrossNodes) {
  // Fig. 13: the 180 nm layout is much larger than the 40 nm one.
  Fixture f40(40);
  Fixture f180(180);
  const SynthesisResult r40 = synthesize(f40.design, {});
  const SynthesisResult r180 = synthesize(f180.design, {});
  EXPECT_GT(r180.stats.die_area_m2 / r40.stats.die_area_m2, 5.0);
}

TEST(Layout, GdsTextHasAllCells) {
  Fixture f;
  const SynthesisResult res = synthesize(f.design, {});
  const std::string gds = res.layout->write_gds_text("adc_top");
  EXPECT_NE(gds.find("BGNSTR adc_top"), std::string::npos);
  EXPECT_NE(gds.find("REGION PD_VDD"), std::string::npos);
  // All cells present: count SREF lines.
  int srefs = 0;
  std::size_t pos = 0;
  while ((pos = gds.find("SREF", pos)) != std::string::npos) {
    ++srefs;
    pos += 4;
  }
  EXPECT_EQ(srefs, 257);
}

TEST(Layout, AsciiRenderShowsRegions) {
  Fixture f;
  const SynthesisResult res = synthesize(f.design, {});
  const std::string art = res.layout->render_ascii(80);
  EXPECT_NE(art.find("PD_VCTRLP"), std::string::npos);
  EXPECT_NE(art.find("GRP_DAC_RES1"), std::string::npos);
  EXPECT_NE(art.find("mm^2"), std::string::npos);
}

TEST(Flow, MoreSlicesMoreArea) {
  Fixture f8(40, 8);
  Fixture f16(40, 16);
  const SynthesisResult r8 = synthesize(f8.design, {});
  const SynthesisResult r16 = synthesize(f16.design, {});
  EXPECT_GT(r16.stats.die_area_m2, r8.stats.die_area_m2 * 1.5);
  EXPECT_TRUE(r16.drc.clean());
}

}  // namespace
}  // namespace vcoadc::synth
