#include <gtest/gtest.h>

#include "core/adc_spec.h"
#include "core/adc.h"
#include "netlist/cell_library.h"
#include "netlist/generator.h"
#include "netlist/liberty.h"
#include "synth/sta.h"
#include "tech/tech_node.h"

namespace vcoadc::synth {
namespace {

const tech::TechNode& node40() {
  static const tech::TechNode n = tech::TechDatabase::standard().at(40);
  return n;
}

struct ChainFixture {
  netlist::CellLibrary lib;
  netlist::Design design;
  int length;

  explicit ChainFixture(int n)
      : lib(netlist::make_standard_library(node40())),
        design(&lib),
        length(n) {
    netlist::Module& m = design.add_module("chain");
    m.add_port("IN", netlist::PortDir::kInput);
    m.add_port("OUT", netlist::PortDir::kOutput);
    m.add_port("VDD", netlist::PortDir::kInout);
    m.add_port("VSS", netlist::PortDir::kInout);
    std::string prev = "IN";
    for (int i = 0; i < n; ++i) {
      const std::string out =
          (i == n - 1) ? "OUT" : "w" + std::to_string(i);
      if (i != n - 1) m.add_net(out);
      netlist::Instance inst;
      inst.name = "u" + std::to_string(i);
      inst.master = "INVX1";
      inst.conn = {{"A", prev}, {"Y", out}, {"VDD", "VDD"}, {"VSS", "VSS"}};
      m.add_instance(inst);
      prev = out;
    }
    design.set_top("chain");
  }
};

TEST(Sta, ChainDelayIsSumOfStages) {
  ChainFixture f(10);
  TimingOptions opts;
  const TimingReport rep = analyze_timing(f.design, node40(), opts);
  EXPECT_EQ(rep.loops_cut, 0);
  EXPECT_EQ(rep.num_gates, 10);
  ASSERT_EQ(rep.critical_path.size(), 10u);
  // Inner stages drive one INVX1 input (load = C/4 of the FO4 reference),
  // the last stage drives nothing: delay in (0.5, 1.0) x intrinsic each.
  const double intrinsic =
      netlist::cell_intrinsic_delay(f.lib.at("INVX1"), node40());
  EXPECT_GT(rep.critical_delay_s, 10 * intrinsic * 0.45);
  EXPECT_LT(rep.critical_delay_s, 10 * intrinsic * 1.05);
}

TEST(Sta, LongerChainLongerDelay) {
  ChainFixture f5(5), f20(20);
  TimingOptions opts;
  const auto r5 = analyze_timing(f5.design, node40(), opts);
  const auto r20 = analyze_timing(f20.design, node40(), opts);
  EXPECT_NEAR(r20.critical_delay_s / r5.critical_delay_s, 4.0, 0.3);
}

TEST(Sta, SlackAndMaxClockConsistent) {
  ChainFixture f(8);
  TimingOptions opts;
  opts.clock_period_s = 1e-9;
  const auto rep = analyze_timing(f.design, node40(), opts);
  EXPECT_NEAR(rep.slack_s, opts.clock_period_s - rep.critical_delay_s, 1e-18);
  EXPECT_NEAR(rep.max_clock_hz * rep.critical_delay_s, 1.0, 1e-9);
}

TEST(Sta, AdcNetlistLoopsAreCut) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  TimingOptions opts;
  opts.clock_period_s = 1.0 / 750e6;
  const auto rep = analyze_timing(adc.netlist(), node40(), opts);
  // The design contains intentional loops: 2 distributed rings, the
  // cross-coupled NOR3 pair + SR latch per comparator (2 per slice), ...
  EXPECT_GE(rep.loops_cut, 2);
  // And the remaining DAG has real paths (XOR -> DB inverter -> DAC).
  EXPECT_GT(rep.critical_delay_s, 0.0);
  EXPECT_FALSE(rep.critical_path.empty());
}

TEST(Sta, AdcMeetsPaperClockAtFortyNm) {
  // The combinational feedback path must settle within 1/750 MHz at 40 nm.
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  TimingOptions opts;
  opts.clock_period_s = 1.0 / 750e6;
  const auto rep = analyze_timing(adc.netlist(), node40(), opts);
  EXPECT_GT(rep.slack_s, 0.0);
}

TEST(Sta, MaxClockScalesWithFo4) {
  // The timing face of scaling compatibility: the same netlist's maximum
  // clock improves ~ FO4(180)/FO4(40) when ported to the newer node.
  core::AdcDesign adc40(core::AdcSpec::paper_40nm());
  core::AdcDesign adc180(core::AdcSpec::paper_180nm());
  const auto& db = tech::TechDatabase::standard();
  TimingOptions opts;
  const auto r40 = analyze_timing(adc40.netlist(), db.at(40), opts);
  const auto r180 = analyze_timing(adc180.netlist(), db.at(180), opts);
  const double speedup = r40.max_clock_hz / r180.max_clock_hz;
  const double fo4_ratio = db.at(180).fo4_delay_s / db.at(40).fo4_delay_s;
  EXPECT_NEAR(speedup, fo4_ratio, fo4_ratio * 0.25);
  // Both nodes comfortably meet their paper clocks on the cut DAG (the
  // loop-internal comparator regeneration is the real analog limiter and
  // lives in msim, not in STA).
  EXPECT_GT(r180.max_clock_hz, 250e6);
  EXPECT_GT(r40.max_clock_hz, 750e6);
}

TEST(Sta, PlacementWireLoadSlowsPaths) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  const auto synth_res = adc.synthesize();
  TimingOptions no_wire;
  TimingOptions wired;
  wired.placement = &synth_res.layout->placement();
  const auto fast = analyze_timing(adc.netlist(), node40(), no_wire);
  const auto slow = analyze_timing(adc.netlist(), node40(), wired);
  EXPECT_GT(slow.critical_delay_s, fast.critical_delay_s);
}

}  // namespace
}  // namespace vcoadc::synth
