// Transport half of the evaluation service under test: endpoint parsing,
// the stdio loop (including the dead-reader regression — a closed pipe
// must stop the loop with clean == false, not silently drop responses or
// die on SIGPIPE), and the socket loop with concurrent clients, a
// mid-line disconnect, and the graceful-shutdown drain guarantee.
// Deliberately self-contained over serve_loop + util/net + a stub handler
// (no evaluation stack) so it also compiles into the tsan. ctest variant.
#include "core/serve_loop.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "util/net.h"

namespace fs = std::filesystem;
using namespace vcoadc;
using core::ServeResult;
using util::net::Connection;
using util::net::Endpoint;
using util::net::Listener;

namespace {

/// Unix-socket path under the temp dir, short enough for sun_path.
std::string temp_sock_path(const std::string& tag) {
  const fs::path p =
      fs::temp_directory_path() / ("vcoadc_net_" + tag + ".sock");
  std::error_code ec;
  fs::remove(p, ec);
  return p.string();
}

/// Echo handler: counts dispatches and tags each response with its input,
/// so a response proves which request produced it.
struct EchoHandler {
  std::atomic<int> calls{0};
  core::ServeHandler fn() {
    return [this](const std::string& line) {
      calls.fetch_add(1);
      return "echo:" + line;
    };
  }
};

TEST(EndpointTest, ParsesTcpAndUnixSpecs) {
  Endpoint tcp = util::net::parse_endpoint("tcp:8080");
  EXPECT_TRUE(tcp.ok);
  EXPECT_TRUE(tcp.is_tcp);
  EXPECT_EQ(tcp.tcp_port, 8080);

  Endpoint eph = util::net::parse_endpoint("tcp:0");
  EXPECT_TRUE(eph.ok);
  EXPECT_EQ(eph.tcp_port, 0);

  Endpoint ux = util::net::parse_endpoint("/tmp/x.sock");
  EXPECT_TRUE(ux.ok);
  EXPECT_FALSE(ux.is_tcp);
  EXPECT_EQ(ux.unix_path, "/tmp/x.sock");

  Endpoint pfx = util::net::parse_endpoint("unix:/tmp/y.sock");
  EXPECT_TRUE(pfx.ok);
  EXPECT_EQ(pfx.unix_path, "/tmp/y.sock");

  EXPECT_FALSE(util::net::parse_endpoint("").ok);
  EXPECT_FALSE(util::net::parse_endpoint("tcp:notaport").ok);
  EXPECT_FALSE(util::net::parse_endpoint("tcp:70000").ok);
}

TEST(ServeStdioTest, OneResponseLinePerRequestBlanksSkipped) {
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  std::fputs("alpha\n\n   \nbeta\n", in);
  std::rewind(in);

  EchoHandler h;
  const ServeResult res = core::serve_stdio(in, out, h.fn());
  EXPECT_TRUE(res.clean);
  EXPECT_EQ(res.stats.requests, 2u);
  EXPECT_EQ(res.stats.responses_written, 2u);
  EXPECT_EQ(h.calls.load(), 2);

  std::rewind(out);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof buf, out), nullptr);
  EXPECT_STREQ(buf, "echo:alpha\n");
  ASSERT_NE(std::fgets(buf, sizeof buf, out), nullptr);
  EXPECT_STREQ(buf, "echo:beta\n");
  std::fclose(in);
  std::fclose(out);
}

#if !defined(_WIN32)

// Regression: the original loop wrote responses with unchecked
// fwrite/fflush — a reader that closed early (broken pipe) either killed
// the process via SIGPIPE or let it keep evaluating into the void. The
// loop must stop with clean == false and a counted write failure.
TEST(ServeStdioTest, DeadReaderStopsTheLoopCleanly) {
  util::net::ignore_sigpipe();
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ::close(fds[0]);  // the reader goes away before the first response
  std::FILE* out = fdopen(fds[1], "w");
  ASSERT_NE(out, nullptr);

  std::FILE* in = std::tmpfile();
  ASSERT_NE(in, nullptr);
  std::fputs("req1\nreq2\n", in);
  std::rewind(in);

  EchoHandler h;
  const ServeResult res = core::serve_stdio(in, out, h.fn());
  EXPECT_FALSE(res.clean);
  EXPECT_FALSE(res.error.empty());
  EXPECT_EQ(res.stats.write_failures, 1u);
  EXPECT_EQ(res.stats.responses_written, 0u);
  // The loop stopped at the first failed write instead of burning the
  // second request against a gone reader.
  EXPECT_EQ(h.calls.load(), 1);
  std::fclose(in);
  std::fclose(out);
}

/// Runs serve_socket on a background thread; stops and joins at scope
/// exit. `stop` is the graceful-shutdown flag under test.
struct ServerFixture {
  Listener listener;
  EchoHandler handler;
  std::atomic<bool> stop{false};
  ServeResult result;
  std::thread thread;

  explicit ServerFixture(const Endpoint& ep) {
    std::string err;
    listener = Listener::listen(ep, &err);
    EXPECT_TRUE(listener.valid()) << err;
    core::SocketServeOptions opts;
    opts.poll_ms = 20;
    opts.stop = &stop;
    thread = std::thread([this, opts] {
      result = core::serve_socket(listener, handler.fn(), opts);
    });
  }
  void shutdown() {
    stop.store(true);
    if (thread.joinable()) thread.join();
  }
  ~ServerFixture() { shutdown(); }
};

TEST(ServeSocketTest, ConcurrentClientsGetOrderedResponses) {
  const std::string path = temp_sock_path("clients");
  const Endpoint ep = util::net::parse_endpoint(path);
  ServerFixture server(ep);
  ASSERT_TRUE(server.listener.valid());

  constexpr int kClients = 4;
  constexpr int kRequests = 16;
  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::string err;
      Connection conn = util::net::dial(ep, &err);
      ASSERT_TRUE(conn.valid()) << err;
      for (int i = 0; i < kRequests; ++i) {
        const std::string req =
            "c" + std::to_string(c) + "-r" + std::to_string(i);
        ASSERT_TRUE(conn.write_line(req));
        std::string resp;
        ASSERT_EQ(conn.read_line(&resp), Connection::ReadStatus::kLine);
        got[c].push_back(resp);
      }
    });
  }
  for (auto& t : clients) t.join();
  server.shutdown();

  // Per-connection ordering: client c's i-th response answers its i-th
  // request, for every interleaving the scheduler produced.
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[c].size(), static_cast<std::size_t>(kRequests));
    for (int i = 0; i < kRequests; ++i) {
      EXPECT_EQ(got[c][i], "echo:c" + std::to_string(c) + "-r" +
                               std::to_string(i));
    }
  }
  EXPECT_TRUE(server.result.clean) << server.result.error;
  EXPECT_EQ(server.result.stats.requests,
            static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(server.result.stats.responses_written,
            static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(server.result.stats.connections_accepted,
            static_cast<std::uint64_t>(kClients));
  // Clean shutdown unlinks the socket path.
  EXPECT_FALSE(fs::exists(path));
}

TEST(ServeSocketTest, MidLineDisconnectIsDroppedNotDispatched) {
  const std::string path = temp_sock_path("midline");
  const Endpoint ep = util::net::parse_endpoint(path);
  ServerFixture server(ep);
  ASSERT_TRUE(server.listener.valid());

  std::string err;
  {
    Connection conn = util::net::dial(ep, &err);
    ASSERT_TRUE(conn.valid()) << err;
    ASSERT_TRUE(conn.write_line("complete"));
    std::string resp;
    ASSERT_EQ(conn.read_line(&resp), Connection::ReadStatus::kLine);
    EXPECT_EQ(resp, "echo:complete");
    // Half a request, no terminator, then the client dies mid-line.
    ASSERT_TRUE(conn.write_all("trunca"));
  }  // close
  server.shutdown();

  // The torn fragment was never dispatched as a request; the one whole
  // request was. Other connections would be unaffected (kEof drops only
  // this connection).
  EXPECT_EQ(server.handler.calls.load(), 1);
  EXPECT_EQ(server.result.stats.requests, 1u);
  EXPECT_TRUE(server.result.clean) << server.result.error;
}

TEST(ServeSocketTest, StopDrainsInFlightRequestBeforeClosing) {
  const std::string path = temp_sock_path("drain");
  const Endpoint ep = util::net::parse_endpoint(path);

  std::string err;
  Listener listener = Listener::listen(ep, &err);
  ASSERT_TRUE(listener.valid()) << err;

  std::atomic<bool> stop{false};
  std::atomic<bool> in_handler{false};
  // A deliberately slow handler so the stop flag flips while the request
  // is in flight.
  const core::ServeHandler slow = [&](const std::string& line) {
    in_handler.store(true);
    while (!stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return "late:" + line;
  };
  core::SocketServeOptions opts;
  opts.poll_ms = 20;
  opts.stop = &stop;
  ServeResult result;
  std::thread server(
      [&] { result = core::serve_socket(listener, slow, opts); });

  Connection conn = util::net::dial(ep, &err);
  ASSERT_TRUE(conn.valid()) << err;
  ASSERT_TRUE(conn.write_line("final"));
  while (!in_handler.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);  // shutdown lands mid-request

  // Drain guarantee: the response still arrives before the server closes.
  std::string resp;
  EXPECT_EQ(conn.read_line(&resp), Connection::ReadStatus::kLine);
  EXPECT_EQ(resp, "late:final");
  server.join();
  EXPECT_TRUE(result.clean) << result.error;
  EXPECT_EQ(result.stats.responses_written, 1u);
}

TEST(ServeSocketTest, TcpEphemeralPortResolvesAndServes) {
  const Endpoint ep = util::net::parse_endpoint("tcp:0");
  ASSERT_TRUE(ep.ok);
  ServerFixture server(ep);
  ASSERT_TRUE(server.listener.valid());
  const int port = server.listener.port();
  EXPECT_GT(port, 0);

  const Endpoint dial_ep =
      util::net::parse_endpoint("tcp:" + std::to_string(port));
  std::string err;
  Connection conn = util::net::dial(dial_ep, &err);
  ASSERT_TRUE(conn.valid()) << err;
  ASSERT_TRUE(conn.write_line("over-tcp"));
  std::string resp;
  ASSERT_EQ(conn.read_line(&resp), Connection::ReadStatus::kLine);
  EXPECT_EQ(resp, "echo:over-tcp");
  conn.close();
  server.shutdown();
  EXPECT_TRUE(server.result.clean) << server.result.error;
}

TEST(ServeSocketTest, StaleSocketFileIsReplacedButRegularFileIsNot) {
  const std::string path = temp_sock_path("stale");
  const Endpoint ep = util::net::parse_endpoint(path);
  std::string err;
  {
    // First server leaves... nothing, but simulate a crash by creating
    // the socket file without a listener behind it.
    Listener first = Listener::listen(ep, &err);
    ASSERT_TRUE(first.valid()) << err;
    // Crash simulation: drop the fd but keep the path on disk.
    first = Listener();  // move-assign empties; dtor of old closes fd
  }
  // close() unlinked it; recreate a stale socket file via a throwaway
  // listener whose path we then steal.
  {
    Listener ghost = Listener::listen(ep, &err);
    ASSERT_TRUE(ghost.valid()) << err;
    // Leak the path on purpose: bind a second listener over it.
    Listener second = Listener::listen(ep, &err);
    EXPECT_TRUE(second.valid()) << err;
  }

  // A regular file at the endpoint path must never be deleted — that
  // would turn a typo'd --listen into data loss.
  const std::string filepath = temp_sock_path("regular");
  {
    std::FILE* f = std::fopen(filepath.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("precious\n", f);
    std::fclose(f);
  }
  const Endpoint file_ep = util::net::parse_endpoint(filepath);
  Listener refused = Listener::listen(file_ep, &err);
  EXPECT_FALSE(refused.valid());
  EXPECT_TRUE(fs::exists(filepath));
  fs::remove(filepath);
}

#endif  // !_WIN32

}  // namespace
