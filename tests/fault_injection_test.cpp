// Deterministic fault-injection harness over the flow's stage boundaries
// (DESIGN.md §3f): a util::FaultPlan armed for a stage makes that stage
// corrupt its own input before validation, so these tests prove that
//   * every stage surfaces structured diagnostics instead of crashing,
//   * a faulted build never reaches the artifact cache (the same cache
//     serves clean, bit-identical artifacts immediately afterwards),
//   * every batch driver (Monte Carlo, corner sweep, datasheet, optimizer)
//     degrades gracefully when a run underneath it is refused.
#include <gtest/gtest.h>

#include <cmath>

#include "core/adc.h"
#include "core/artifact_cache.h"
#include "core/datasheet.h"
#include "core/flow.h"
#include "core/monte_carlo.h"
#include "core/optimizer.h"
#include "util/diag.h"

namespace {

using namespace vcoadc;
using core::AdcSpec;
using core::ExecContext;
using core::Flow;
using core::SimulationOptions;

AdcSpec small_spec() {
  AdcSpec spec = AdcSpec::paper_40nm();
  spec.num_slices = 4;
  return spec;
}

SimulationOptions small_sim() {
  SimulationOptions sim;
  sim.n_samples = 1 << 10;
  return sim;
}

/// One isolated execution environment per test: its own cache (so no state
/// leaks between tests), its own sink and its own fault plan.
struct Harness {
  core::ArtifactCache cache{64};
  util::DiagSink sink;
  util::FaultPlan plan;
  ExecContext ctx;

  Harness() {
    ctx.cache = &cache;
    ctx.diag = &sink;
    ctx.faults = &plan;
  }
};

// ---------------------------------------------------------------------------
// FaultPlan mechanics

TEST(FaultPlanTest, ArmsConsumesAndCounts) {
  util::FaultPlan plan;
  EXPECT_FALSE(plan.armed("netlist"));
  EXPECT_FALSE(plan.consume("netlist"));
  EXPECT_EQ(plan.injected(), 0u);

  plan.arm("netlist", 2);
  EXPECT_TRUE(plan.armed("netlist"));
  EXPECT_TRUE(plan.consume("netlist"));
  EXPECT_TRUE(plan.consume("netlist"));
  EXPECT_FALSE(plan.consume("netlist"));  // charges spent
  EXPECT_FALSE(plan.armed("netlist"));
  EXPECT_EQ(plan.injected(), 2u);

  plan.arm("sim_run");  // -1 = unlimited
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(plan.consume("sim_run"));
  EXPECT_TRUE(plan.armed("sim_run"));
  EXPECT_EQ(plan.injected(), 7u);

  // Arming one stage never fires another.
  EXPECT_FALSE(plan.consume("route"));
}

// ---------------------------------------------------------------------------
// Every stage boundary: fault -> diagnostics -> clean recovery

TEST(FaultInjection, EveryStageSurfacesDiagnosticsAndRecovers) {
  const AdcSpec spec = small_spec();
  const SimulationOptions sim = small_sim();
  Harness h;
  Flow flow(h.ctx);

  // Warm the cache with a clean end-to-end pass and pin reference values.
  const core::NodeReport ref = flow.report(spec, sim);
  ASSERT_TRUE(ref.complete) << h.sink.render();
  ASSERT_FALSE(h.sink.has_errors()) << h.sink.render();

  // For each stage: one armed charge must make the stage's own entry point
  // fail with diagnostics, and the very next (un-faulted) call over the
  // same cache must succeed — proving the poisoned build was never cached.
  auto check = [&](const char* stage, auto fails, auto succeeds) {
    SCOPED_TRACE(stage);
    h.sink.clear();
    const auto before = h.plan.injected();
    h.plan.arm(stage, 1);
    EXPECT_TRUE(fails());
    EXPECT_EQ(h.plan.injected(), before + 1);
    EXPECT_TRUE(h.sink.has_errors()) << h.sink.render();
    h.sink.clear();
    EXPECT_TRUE(succeeds()) << h.sink.render();
    EXPECT_FALSE(h.sink.has_errors()) << h.sink.render();
  };

  check(
      "tech_library", [&] { return flow.tech_library(spec) == nullptr; },
      [&] { return flow.tech_library(spec) != nullptr; });
  check(
      "netlist", [&] { return flow.netlist(spec).design == nullptr; },
      [&] { return flow.netlist(spec).design != nullptr; });
  check(
      "floorplan", [&] { return flow.floorplan(spec) == nullptr; },
      [&] { return flow.floorplan(spec) != nullptr; });
  check(
      "placement", [&] { return flow.placement(spec) == nullptr; },
      [&] { return flow.placement(spec) != nullptr; });
  check(
      "route", [&] { return flow.synthesis(spec) == nullptr; },
      [&] {
        const auto s = flow.synthesis(spec);
        return s != nullptr && s->layout != nullptr;
      });
  check(
      "sim_run", [&] { return flow.sim_run(spec, sim) == nullptr; },
      [&] { return flow.sim_run(spec, sim) != nullptr; });
  check(
      "report", [&] { return !flow.report(spec, sim).complete; },
      [&] { return flow.report(spec, sim).complete; });
  check(
      "migrate",
      [&] { return flow.migrate(spec, 22.0).target_lib == nullptr; },
      [&] { return flow.migrate(spec, 22.0).target_lib != nullptr; });
  check(
      "hdl_emit", [&] { return flow.hdl_emit(spec) == nullptr; },
      [&] { return flow.hdl_emit(spec) != nullptr; });
  core::GateSimOptions gopts;
  gopts.sim.n_samples = 64;
  check(
      "gate_sim", [&] { return flow.gate_sim(spec, gopts) == nullptr; },
      [&] { return flow.gate_sim(spec, gopts) != nullptr; });

  // After all ten injections, the warm cache still serves the original
  // artifacts: the final report is bit-identical to the pre-fault one.
  h.sink.clear();
  const core::NodeReport again = flow.report(spec, sim);
  ASSERT_TRUE(again.complete) << h.sink.render();
  EXPECT_EQ(again.run.sndr.sndr_db, ref.run.sndr.sndr_db);
  EXPECT_EQ(again.run.power.total_w(), ref.run.power.total_w());
  EXPECT_EQ(again.area_mm2, ref.area_mm2);
}

TEST(FaultInjection, FaultedBuildsNeverPopulateTheCache) {
  const AdcSpec spec = small_spec();
  Harness h;
  Flow flow(h.ctx);

  // A faulted SimRun fails validation before the lookup: no miss, no entry.
  h.plan.arm("sim_run", 1);
  EXPECT_EQ(flow.sim_run(spec, small_sim()), nullptr);
  EXPECT_EQ(h.cache.stats().misses, 0u);
  EXPECT_EQ(h.cache.stats().entries, 0u);

  // A faulted Netlist builds its corrupted design outside the cache; the
  // netlist key must stay vacant afterwards (a dummy build returning null
  // is how the cache API probes without inserting).
  h.plan.arm("netlist", 1);
  EXPECT_EQ(flow.netlist(spec).design, nullptr);
  bool hit = true;
  const auto probe = h.cache.get_or_build<core::DesignBundle>(
      core::netlist_key(spec),
      []() { return std::shared_ptr<const core::DesignBundle>(); }, {}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(probe, nullptr);

  // A faulted HdlEmit corrupts the emitted text outside the cache path:
  // the equivalence check refuses it and the hdl_emit key stays vacant.
  h.plan.arm("hdl_emit", 1);
  EXPECT_EQ(flow.hdl_emit(spec), nullptr);
  hit = true;
  const auto hdl_probe = h.cache.get_or_build<core::HdlEmitResult>(
      core::hdl_emit_key(spec),
      []() { return std::shared_ptr<const core::HdlEmitResult>(); }, {}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(hdl_probe, nullptr);

  // A faulted GateSim fails top-module resolution before the lookup.
  core::GateSimOptions gopts;
  gopts.sim.n_samples = 64;
  h.plan.arm("gate_sim", 1);
  EXPECT_EQ(flow.gate_sim(spec, gopts), nullptr);
  core::GateSimOptions canon = gopts;
  canon.sim.record_bits = true;
  hit = true;
  const auto gate_probe = h.cache.get_or_build<core::GateSimResult>(
      core::gate_sim_key(spec, canon),
      []() { return std::shared_ptr<const core::GateSimResult>(); }, {}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(gate_probe, nullptr);
}

// ---------------------------------------------------------------------------
// Drivers: per-run faults degrade, they don't crash the batch

TEST(FaultInjection, MonteCarloSurvivesPerRunFaults) {
  Harness h;
  const core::AdcDesign adc(small_spec(), h.ctx);
  ASSERT_TRUE(adc.ok());

  core::MonteCarloOptions mc;
  mc.runs = 4;
  mc.sim.n_samples = 1 << 10;
  mc.exec = h.ctx;
  h.plan.arm("sim_run", 2);  // exactly two of the four draws are refused
  const auto res = core::monte_carlo_sndr(adc, mc);

  ASSERT_EQ(res.sndr_db.size(), 4u);
  int nans = 0;
  for (double s : res.sndr_db) nans += std::isnan(s) ? 1 : 0;
  EXPECT_EQ(nans, 2);
  EXPECT_EQ(h.sink.error_count(), 2u) << h.sink.render();
  EXPECT_EQ(h.plan.injected(), 2u);
}

TEST(FaultInjection, CornerSweepSurvivesPerCornerFaults) {
  Harness h;
  const core::AdcDesign adc(small_spec(), h.ctx);
  ASSERT_TRUE(adc.ok());

  h.plan.arm("sim_run", 1);
  const auto corners = core::corner_sweep(adc, h.ctx, 1 << 10);
  ASSERT_EQ(corners.size(), 6u);
  int nans = 0;
  for (const auto& c : corners) nans += std::isnan(c.sndr_db) ? 1 : 0;
  EXPECT_EQ(nans, 1);
  EXPECT_TRUE(h.sink.has_errors()) << h.sink.render();
}

// ---------------------------------------------------------------------------
// Drivers: malformed input yields diagnostics + empty results, never a crash

TEST(FaultInjection, MonteCarloRejectsInvalidInput) {
  Harness h;

  // An invalid spec never builds a design; the driver refuses to fan out.
  AdcSpec bad = small_spec();
  bad.num_slices = 1;
  core::MonteCarloOptions mc;
  mc.exec = h.ctx;
  const auto res = core::monte_carlo_sndr(bad, mc);
  EXPECT_TRUE(res.sndr_db.empty());
  EXPECT_TRUE(h.sink.has_errors()) << h.sink.render();

  // Bad per-run options are rejected once, before the batch.
  h.sink.clear();
  const core::AdcDesign adc(small_spec(), h.ctx);
  core::MonteCarloOptions badsim;
  badsim.exec = h.ctx;
  badsim.sim.n_samples = 1000;  // not a power of two
  const auto res2 = core::monte_carlo_sndr(adc, badsim);
  EXPECT_TRUE(res2.sndr_db.empty());
  bool names_the_knob = false;
  for (const auto& d : h.sink.all()) {
    if (d.item == "n_samples") names_the_knob = true;
  }
  EXPECT_TRUE(names_the_knob) << h.sink.render();
}

TEST(FaultInjection, CornerSweepRejectsUnbuiltDesign) {
  Harness h;
  AdcSpec bad = small_spec();
  bad.fs_hz = 0;
  const core::AdcDesign adc(bad, h.ctx);
  EXPECT_FALSE(adc.ok());
  h.sink.clear();  // keep only the sweep's own refusal
  const auto corners = core::corner_sweep(adc, h.ctx, 1 << 10);
  EXPECT_TRUE(corners.empty());
  EXPECT_TRUE(h.sink.has_errors()) << h.sink.render();
}

TEST(FaultInjection, DatasheetIncompleteOnInvalidSpec) {
  Harness h;
  AdcSpec bad = small_spec();
  bad.num_slices = 100;  // beyond the 64-slice packing limit
  core::DatasheetOptions opts;
  opts.n_samples = 1 << 10;
  opts.exec = h.ctx;
  const core::Datasheet ds = core::generate_datasheet(bad, opts);
  EXPECT_FALSE(ds.complete);
  EXPECT_TRUE(h.sink.has_errors()) << h.sink.render();
  // The incomplete datasheet still renders without crashing.
  EXPECT_FALSE(ds.render().empty());
}

TEST(FaultInjection, DatasheetIncompleteWhenSynthesisIsFaulted) {
  Harness h;
  h.plan.arm("route", 1);
  core::DatasheetOptions opts;
  opts.n_samples = 1 << 10;
  opts.exec = h.ctx;
  const core::Datasheet ds = core::generate_datasheet(small_spec(), opts);
  EXPECT_FALSE(ds.complete);
  EXPECT_TRUE(h.sink.has_errors()) << h.sink.render();
}

TEST(FaultInjection, OptimizerRejectsMalformedTargetAndGrid) {
  Harness h;
  core::OptimizeTarget target;
  target.bandwidth_hz = -1.0;
  core::OptimizeOptions opts;
  opts.exec = h.ctx;
  const auto res = core::optimize_spec(target, opts);
  EXPECT_FALSE(res.best.has_value());
  EXPECT_TRUE(res.evaluated.empty());
  EXPECT_TRUE(h.sink.has_errors()) << h.sink.render();

  h.sink.clear();
  core::OptimizeTarget ok_target;
  core::OptimizeOptions empty_grid;
  empty_grid.exec = h.ctx;
  empty_grid.slice_choices.clear();
  const auto res2 = core::optimize_spec(ok_target, empty_grid);
  EXPECT_FALSE(res2.best.has_value());
  EXPECT_TRUE(h.sink.has_errors()) << h.sink.render();
}

TEST(FaultInjection, OptimizerRecordsFaultedCandidatesAsUnevaluated) {
  Harness h;
  core::OptimizeTarget target;
  target.min_sndr_db = 20.0;
  core::OptimizeOptions opts;
  opts.exec = h.ctx;
  opts.n_samples = 1 << 10;
  opts.slice_choices = {4};
  opts.osr_choices = {50, 75};
  h.plan.arm("sim_run", 1);  // the first candidate's run is refused
  const auto res = core::optimize_spec(target, opts);
  ASSERT_EQ(res.evaluated.size(), 2u);
  EXPECT_FALSE(res.evaluated.front().valid);
  EXPECT_TRUE(res.evaluated.back().valid);
  EXPECT_TRUE(h.sink.has_errors()) << h.sink.render();
}

// ---------------------------------------------------------------------------
// Diagnostics reach stderr when no sink is attached (never silent)

TEST(FaultInjection, ErrorsFallBackToStderrWithoutASink) {
  core::ArtifactCache cache(16);
  util::FaultPlan plan;
  plan.arm("sim_run", 1);
  ExecContext ctx;
  ctx.cache = &cache;
  ctx.diag = nullptr;  // stderr fallback path
  ctx.faults = &plan;
  // Must not crash; the refusal lands on stderr (visible in test logs).
  EXPECT_EQ(Flow(ctx).sim_run(small_spec(), small_sim()), nullptr);
  EXPECT_EQ(plan.injected(), 1u);
}

}  // namespace
