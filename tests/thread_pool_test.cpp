// Tests for the work-queue thread pool under the parallel evaluation
// engine.
//
// NOTE: this file is deliberately self-contained (thread pool + gtest
// only) — tests/CMakeLists.txt compiles it a second time with
// -fsanitize=thread into vcoadc_tsan_tests, so every test here also runs
// under TSan in the tier-1 ctest pass. Keep heavier library dependencies
// out; mimic their access patterns instead (see MonteCarloShapedFanOut).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace vcoadc::util {
namespace {

TEST(ThreadPool, AllTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.stats().tasks_executed, 100u);
}

TEST(ThreadPool, ReturnsTaskValues) {
  ThreadPool pool(2);
  auto a = pool.submit([] { return 21; });
  auto b = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 21);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForEachRethrowsButFinishesAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      parallel_for_each(pool, 20,
                        [&executed](std::size_t i) {
                          ++executed;
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Every task ran: one exception does not cancel the rest of the batch.
  EXPECT_EQ(executed.load(), 20);
}

TEST(ThreadPool, ZeroWorkerFallbackRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  auto f = pool.submit([&ran_on] { ran_on = std::this_thread::get_id(); });
  // Inline execution: the future is already satisfied when submit returns.
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  f.get();
  EXPECT_EQ(ran_on, caller);
  // Exceptions still travel through the future, not out of submit().
  auto g = pool.submit([]() -> int { throw std::runtime_error("inline"); });
  EXPECT_THROW(g.get(), std::runtime_error);
}

TEST(ThreadPool, StatsTrackBusyTimeAndQueueDepth) {
  ThreadPool pool(2);
  parallel_for_each(pool, 16, [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  const ThreadPoolStats s = pool.stats();
  EXPECT_EQ(s.tasks_executed, 16u);
  EXPECT_GT(s.busy_seconds, 0.0);
  EXPECT_GE(s.max_queue_depth, 1u);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      }));
    }
    // Pool destroyed with work still queued: it must drain, not drop.
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 32);
}

// Mimics BatchRunner's Monte-Carlo fan-out so the TSan build exercises the
// engine's exact sharing pattern: shared read-only inputs, per-index
// writes into a results vector, deterministic per-task seeds.
TEST(ThreadPool, MonteCarloShapedFanOut) {
  const std::vector<double> shared_input = {1.0, 2.0, 3.0, 5.0, 8.0};
  const std::uint64_t seed0 = 1000;
  auto eval = [&shared_input](std::uint64_t seed) {
    double acc = static_cast<double>(seed);
    for (double v : shared_input) acc += v * static_cast<double>(seed % 7);
    return acc;
  };

  constexpr std::size_t kTasks = 64;
  std::vector<double> parallel_out(kTasks), serial_out(kTasks);
  ThreadPool pool(4);
  parallel_for_each(pool, kTasks, [&](std::size_t i) {
    parallel_out[i] = eval(seed0 + i);
  });
  for (std::size_t i = 0; i < kTasks; ++i) serial_out[i] = eval(seed0 + i);

  // Bit-identical to serial: same seeds, same order, regardless of the
  // scheduling of the 4 workers.
  EXPECT_EQ(parallel_out, serial_out);
}

}  // namespace
}  // namespace vcoadc::util
