# Cross-process round trip of `vcoadc_cli serve` (ctest -P script).
#
# Runs the serve loop twice over the same request fixture and the same
# persistent artifact store:
#   run 1: empty store — every stage builds cold and is persisted;
#   run 2: fresh process, warm store — must report the *same* result
#          fingerprints (bit-identical results across processes) and
#          zero cold stage builds on every request.
#
# Expects -DCLI=<vcoadc_cli path> -DFIXTURE=<requests.jsonl> -DWORK=<dir>.

foreach(var CLI FIXTURE WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "serve_roundtrip: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")
set(STORE "${WORK}/store")

function(run_serve out_var)
  execute_process(
    COMMAND "${CLI}" serve "--store=${STORE}" --cache-stats --threads=2
    INPUT_FILE "${FIXTURE}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "serve exited with ${rc}\nstderr:\n${err}")
  endif()
  if(out MATCHES "\"ok\":false")
    message(FATAL_ERROR "serve reported a failed request:\n${out}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_serve(OUT1)
run_serve(OUT2)

# Result fingerprints, in response order, must agree between the two
# processes: the warm run reproduced the cold run bit-identically.
string(REGEX MATCHALL "\"result_fp\":\"[0-9a-f]+\"" FP1 "${OUT1}")
string(REGEX MATCHALL "\"result_fp\":\"[0-9a-f]+\"" FP2 "${OUT2}")
list(LENGTH FP1 N1)
if(N1 EQUAL 0)
  message(FATAL_ERROR "no result fingerprints in serve output:\n${OUT1}")
endif()
if(NOT FP1 STREQUAL FP2)
  message(FATAL_ERROR
    "cross-process results differ:\nrun1: ${FP1}\nrun2: ${FP2}")
endif()

# The cold run must have built stages (nonzero cold_builds somewhere);
# the warm run must have built nothing: every request all-hit from disk.
string(REGEX MATCHALL "\"cold_builds\":[0-9]+" COLD1 "${OUT1}")
string(REGEX MATCHALL "\"cold_builds\":[0-9]+" COLD2 "${OUT2}")
list(LENGTH COLD2 NC2)
if(NC2 EQUAL 0)
  message(FATAL_ERROR "no cold_builds counters in serve output:\n${OUT2}")
endif()
set(SAW_COLD FALSE)
foreach(c IN LISTS COLD1)
  if(NOT c STREQUAL "\"cold_builds\":0")
    set(SAW_COLD TRUE)
  endif()
endforeach()
if(NOT SAW_COLD)
  message(FATAL_ERROR "cold run reported no cold builds — store was not"
    " empty or counters are broken:\n${OUT1}")
endif()
foreach(c IN LISTS COLD2)
  if(NOT c STREQUAL "\"cold_builds\":0")
    message(FATAL_ERROR
      "warm run rebuilt stages cold (${c}) — persistence failed:\n${OUT2}")
  endif()
endforeach()

message(STATUS "serve round trip: ${N1} fingerprints identical, warm run"
  " had zero cold builds")
