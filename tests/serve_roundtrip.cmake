# Cross-process round trip of `vcoadc_cli serve` (ctest -P script).
#
# Runs the serve loop three times over the same request fixture and the
# same persistent artifact store:
#   run 1: empty store — every stage builds cold and is persisted;
#   run 2: fresh process, warm store — must report the *same* result
#          fingerprints (bit-identical results across processes) and
#          zero cold stage builds on every request;
#   run 3: fresh process serving over a unix socket (--listen), driven by
#          `vcoadc_cli client` — the socket transport must reproduce the
#          stdio fingerprints with zero cold builds too, and a SIGTERM
#          must shut the server down cleanly (socket file unlinked).
#
# Expects -DCLI=<vcoadc_cli path> -DFIXTURE=<requests.jsonl> -DWORK=<dir>.

foreach(var CLI FIXTURE WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "serve_roundtrip: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")
set(STORE "${WORK}/store")

function(run_serve out_var)
  execute_process(
    COMMAND "${CLI}" serve "--store=${STORE}" --cache-stats --threads=2
    INPUT_FILE "${FIXTURE}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "serve exited with ${rc}\nstderr:\n${err}")
  endif()
  if(out MATCHES "\"ok\":false")
    message(FATAL_ERROR "serve reported a failed request:\n${out}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_serve(OUT1)
run_serve(OUT2)

# Result fingerprints, in response order, must agree between the two
# processes: the warm run reproduced the cold run bit-identically.
string(REGEX MATCHALL "\"result_fp\":\"[0-9a-f]+\"" FP1 "${OUT1}")
string(REGEX MATCHALL "\"result_fp\":\"[0-9a-f]+\"" FP2 "${OUT2}")
list(LENGTH FP1 N1)
if(N1 EQUAL 0)
  message(FATAL_ERROR "no result fingerprints in serve output:\n${OUT1}")
endif()
if(NOT FP1 STREQUAL FP2)
  message(FATAL_ERROR
    "cross-process results differ:\nrun1: ${FP1}\nrun2: ${FP2}")
endif()

# The cold run must have built stages (nonzero cold_builds somewhere);
# the warm run must have built nothing: every request all-hit from disk.
string(REGEX MATCHALL "\"cold_builds\":[0-9]+" COLD1 "${OUT1}")
string(REGEX MATCHALL "\"cold_builds\":[0-9]+" COLD2 "${OUT2}")
list(LENGTH COLD2 NC2)
if(NC2 EQUAL 0)
  message(FATAL_ERROR "no cold_builds counters in serve output:\n${OUT2}")
endif()
set(SAW_COLD FALSE)
foreach(c IN LISTS COLD1)
  if(NOT c STREQUAL "\"cold_builds\":0")
    set(SAW_COLD TRUE)
  endif()
endforeach()
if(NOT SAW_COLD)
  message(FATAL_ERROR "cold run reported no cold builds — store was not"
    " empty or counters are broken:\n${OUT1}")
endif()
foreach(c IN LISTS COLD2)
  if(NOT c STREQUAL "\"cold_builds\":0")
    message(FATAL_ERROR
      "warm run rebuilt stages cold (${c}) — persistence failed:\n${OUT2}")
  endif()
endforeach()

message(STATUS "serve round trip: ${N1} fingerprints identical, warm run"
  " had zero cold builds")

# ---- run 3: the socket transport, warm over the same store -----------------
if(NOT WIN32)
  set(SOCK "${WORK}/serve.sock")
  set(SRVLOG "${WORK}/server.stderr")
  # Launch the server detached; `sh` prints the pid so we can TERM it.
  execute_process(
    COMMAND sh -c "exec '${CLI}' serve '--listen=${SOCK}' '--store=${STORE}' --cache-stats --threads=2 > '${WORK}/server.stdout' 2> '${SRVLOG}' & echo $!"
    OUTPUT_VARIABLE SRV_PID
    RESULT_VARIABLE rc)
  string(STRIP "${SRV_PID}" SRV_PID)
  if(NOT rc EQUAL 0 OR SRV_PID STREQUAL "")
    message(FATAL_ERROR "could not launch socket server")
  endif()

  # Wait for the socket to appear (the server binds before accepting).
  set(READY FALSE)
  foreach(i RANGE 50)
    if(EXISTS "${SOCK}")
      set(READY TRUE)
      break()
    endif()
    execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.2)
  endforeach()
  if(NOT READY)
    file(READ "${SRVLOG}" SRVERR)
    message(FATAL_ERROR "socket never appeared; server stderr:\n${SRVERR}")
  endif()

  execute_process(
    COMMAND "${CLI}" client "--connect=${SOCK}"
    INPUT_FILE "${FIXTURE}"
    OUTPUT_VARIABLE OUT3
    ERROR_VARIABLE err3
    RESULT_VARIABLE rc3)

  # Graceful shutdown: SIGTERM drains and unlinks the socket path.
  execute_process(COMMAND kill -TERM ${SRV_PID})
  set(GONE FALSE)
  foreach(i RANGE 50)
    if(NOT EXISTS "${SOCK}")
      set(GONE TRUE)
      break()
    endif()
    execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.2)
  endforeach()

  if(NOT rc3 EQUAL 0)
    file(READ "${SRVLOG}" SRVERR)
    message(FATAL_ERROR "socket client exited with ${rc3}\nclient stderr:\n"
      "${err3}\nserver stderr:\n${SRVERR}")
  endif()
  if(OUT3 MATCHES "\"ok\":false")
    message(FATAL_ERROR "socket serve reported a failed request:\n${OUT3}")
  endif()
  if(NOT GONE)
    message(FATAL_ERROR "server did not shut down cleanly on SIGTERM"
      " (socket file still present)")
  endif()

  # Same fingerprints as the stdio passes, and still zero cold builds:
  # the transport changes nothing about evaluation or persistence.
  string(REGEX MATCHALL "\"result_fp\":\"[0-9a-f]+\"" FP3 "${OUT3}")
  if(NOT FP3 STREQUAL FP1)
    message(FATAL_ERROR
      "socket transport results differ from stdio:\nstdio: ${FP1}\n"
      "socket: ${FP3}")
  endif()
  string(REGEX MATCHALL "\"cold_builds\":[0-9]+" COLD3 "${OUT3}")
  list(LENGTH COLD3 NC3)
  if(NC3 EQUAL 0)
    message(FATAL_ERROR "no cold_builds counters in socket output:\n${OUT3}")
  endif()
  foreach(c IN LISTS COLD3)
    if(NOT c STREQUAL "\"cold_builds\":0")
      message(FATAL_ERROR
        "warm socket run rebuilt stages cold (${c}):\n${OUT3}")
    endif()
  endforeach()
  message(STATUS "socket transport: fingerprints identical to stdio, zero"
    " cold builds, clean SIGTERM shutdown")
endif()
