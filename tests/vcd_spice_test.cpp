#include <gtest/gtest.h>

#include "netlist/cell_library.h"
#include "netlist/generator.h"
#include "netlist/logic_sim.h"
#include "netlist/spice.h"
#include "netlist/vcd.h"
#include "tech/tech_node.h"

namespace vcoadc::netlist {
namespace {

const tech::TechNode& node40() {
  static const tech::TechNode n = tech::TechDatabase::standard().at(40);
  return n;
}

Design comparator_design(CellLibrary& lib) {
  lib = make_standard_library(node40());
  add_resistor_cells(lib, node40());
  Design d = build_adc_design(lib, {});
  d.set_top("comparator");
  return d;
}

TEST(Vcd, HeaderAndVarsPresent) {
  CellLibrary lib("x");
  Design d = comparator_design(lib);
  LogicSim sim(d, node40());
  VcdWriter vcd;
  vcd.watch_all(sim, {"CLK", "INP", "INM", "Q", "QB"});
  EXPECT_EQ(vcd.num_signals(), 5);
  const std::string out = vcd.render("comparator");
  EXPECT_NE(out.find("$timescale"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! CLK $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module comparator $end"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(out.find("$dumpvars"), std::string::npos);
}

TEST(Vcd, RecordsTransitionsWithTimestamps) {
  CellLibrary lib("x");
  Design d = comparator_design(lib);
  LogicSim sim(d, node40());
  VcdWriter vcd;
  vcd.watch_all(sim, {"CLK", "Q"});
  sim.set("INP", Logic::k1);
  sim.set("INM", Logic::k0);
  sim.set("CLK", Logic::k1);
  sim.settle(1e-9);
  sim.set("CLK", Logic::k0);
  sim.settle(2e-9);
  EXPECT_GT(vcd.num_changes(), 2u);
  const std::string out = vcd.render();
  // Timestamped sections and value changes exist.
  EXPECT_NE(out.find("\n#"), std::string::npos);
  EXPECT_NE(out.find("1!"), std::string::npos);  // CLK went high
}

TEST(Vcd, SanitizesHierarchicalNames) {
  CellLibrary lib = make_standard_library(node40());
  add_resistor_cells(lib, node40());
  GeneratorConfig cfg;
  cfg.num_slices = 4;
  Design d = build_adc_design(lib, cfg);
  LogicSim sim(d, node40());
  VcdWriter vcd;
  vcd.watch(sim, "slice0/DB");
  const std::string out = vcd.render();
  EXPECT_NE(out.find("slice0.DB"), std::string::npos);
  EXPECT_EQ(out.find("slice0/DB"), std::string::npos);
}

TEST(Spice, TransistorCountsMatchTopology) {
  CellLibrary lib = make_standard_library(node40());
  EXPECT_EQ(spice_transistor_count(lib.at("INVX1")), 2);
  EXPECT_EQ(spice_transistor_count(lib.at("NOR3X4")), 6);
  EXPECT_EQ(spice_transistor_count(lib.at("NAND2X1")), 4);
  EXPECT_EQ(spice_transistor_count(lib.at("XOR2X1")), 16);
  add_resistor_cells(lib, node40());
  EXPECT_EQ(spice_transistor_count(lib.at("RES11K")), 0);
}

TEST(Spice, CellSubcktsEmitDeclaredDevices) {
  CellLibrary lib = make_standard_library(node40());
  const std::string inv = spice_cell_subckt(lib.at("INVX1"), node40());
  EXPECT_NE(inv.find(".SUBCKT INVX1 A Y VDD VSS"), std::string::npos);
  EXPECT_NE(inv.find("PCH"), std::string::npos);
  EXPECT_NE(inv.find("NCH"), std::string::npos);
  // Count devices.
  int fets = 0;
  for (std::size_t pos = 0; (pos = inv.find("\nM", pos)) != std::string::npos;
       ++pos) {
    ++fets;
  }
  EXPECT_EQ(fets + (inv.rfind("M1 ", 0) == 0 ? 1 : 0), 2);

  const std::string nor3 = spice_cell_subckt(lib.at("NOR3X4"), node40());
  int nor_fets = 0;
  for (std::size_t pos = 0;
       (pos = nor3.find("\nM", pos)) != std::string::npos; ++pos) {
    ++nor_fets;
  }
  EXPECT_EQ(nor_fets, 6);
  // Drive 4 widens devices 4x vs drive 1 (NMOS: 4*L*drive = 0.64u at X4).
  const std::string nor3x1 = spice_cell_subckt(lib.at("NOR3X1"), node40());
  EXPECT_NE(nor3.find("W=0.640u"), std::string::npos) << nor3;
  EXPECT_NE(nor3x1.find("W=0.160u"), std::string::npos) << nor3x1;
  // Stacked PMOS widened by fan-in: 2*0.64*3 = 3.84u at X4.
  EXPECT_NE(nor3.find("W=3.840u"), std::string::npos) << nor3;
}

TEST(Spice, ResistorSubckt) {
  CellLibrary lib = make_standard_library(node40());
  add_resistor_cells(lib, node40());
  const std::string r = spice_cell_subckt(lib.at("RES11K"), node40());
  EXPECT_NE(r.find(".SUBCKT RES11K T1 T2"), std::string::npos);
  EXPECT_NE(r.find("R1 T1 T2 11000.0"), std::string::npos);
}

TEST(Spice, FullDeckIsBalancedAndHierarchical) {
  CellLibrary lib("x");
  Design d = comparator_design(lib);
  d.set_top("adc_top");
  const std::string deck = write_spice(d, node40());
  // Balanced .SUBCKT / .ENDS.
  int subckts = 0, ends = 0;
  for (std::size_t pos = 0;
       (pos = deck.find(".SUBCKT", pos)) != std::string::npos; ++pos) {
    ++subckts;
  }
  for (std::size_t pos = 0; (pos = deck.find(".ENDS", pos)) != std::string::npos;
       ++pos) {
    ++ends;
  }
  EXPECT_EQ(subckts, ends);
  EXPECT_GT(subckts, 8);  // cells + 7 modules
  // Models, hierarchy, top instantiation, terminator.
  EXPECT_NE(deck.find(".MODEL NCH NMOS"), std::string::npos);
  EXPECT_NE(deck.find(".SUBCKT ADC_slice"), std::string::npos);
  EXPECT_NE(deck.find("XI7"), std::string::npos);  // slice's VCO instance
  EXPECT_NE(deck.find("XTOP"), std::string::npos);
  EXPECT_NE(deck.find(".END\n"), std::string::npos);
  EXPECT_EQ(deck.find("UNCONN"), std::string::npos);  // everything wired
}

}  // namespace
}  // namespace vcoadc::netlist
