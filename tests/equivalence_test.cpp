#include <gtest/gtest.h>

#include <tuple>

#include "core/adc.h"
#include "core/adc_spec.h"
#include "core/migration.h"
#include "netlist/equivalence.h"
#include "netlist/generator.h"
#include "netlist/verilog_parser.h"
#include "netlist/verilog_writer.h"
#include "tech/tech_node.h"

namespace vcoadc::netlist {
namespace {

CellLibrary lib_for(double node_nm) {
  const tech::TechNode node = tech::TechDatabase::standard().at(node_nm);
  CellLibrary lib = make_standard_library(node);
  add_resistor_cells(lib, node);
  return lib;
}

TEST(Equivalence, DesignEqualsItself) {
  const CellLibrary lib = lib_for(40);
  const Design d = build_adc_design(lib, {});
  EquivalenceOptions strict;
  strict.match_drive = true;
  const auto res = check_equivalence(d, d, strict);
  EXPECT_TRUE(res.equivalent);
  EXPECT_GT(res.instances_compared, 200);
}

TEST(Equivalence, VerilogRoundTripIsEquivalent) {
  const CellLibrary lib = lib_for(40);
  const Design d = build_adc_design(lib, {});
  Design back(&lib);
  const auto parse = parse_verilog(write_verilog(d), back);
  ASSERT_TRUE(parse.ok) << parse.error;
  back.set_top(d.top());
  EquivalenceOptions strict;
  strict.match_drive = true;
  const auto res = check_equivalence(d, back, strict);
  EXPECT_TRUE(res.equivalent);
  for (const auto& m : res.mismatches) ADD_FAILURE() << m;
}

TEST(Equivalence, MigrationPreservesStructure) {
  const CellLibrary lib40 = lib_for(40);
  const Design d = build_adc_design(lib40, {});
  CellLibrary lib180 = lib_for(180);
  const auto mig = core::migrate_design(d, lib180);
  // Function-level equivalence holds across migration.
  const auto res = check_equivalence(d, mig.design, {});
  EXPECT_TRUE(res.equivalent);
  for (const auto& m : res.mismatches) ADD_FAILURE() << m;
}

TEST(Equivalence, DetectsSwappedGate) {
  const CellLibrary lib = lib_for(40);
  Design a = build_adc_design(lib, {});
  Design b = build_adc_design(lib, {});
  // Corrupt one instance in b: swap the comparator's SR-latch NOR for NAND.
  for (auto& inst : b.at("comparator").instances()) {
    if (inst.name == "I2") inst.master = "NAND2X1";
  }
  const auto res = check_equivalence(a, b, {});
  EXPECT_FALSE(res.equivalent);
  bool found = false;
  for (const auto& m : res.mismatches) {
    if (m.find("nor2 vs nand2") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Equivalence, DetectsRewiredNet) {
  const CellLibrary lib = lib_for(40);
  Design a = build_adc_design(lib, {});
  Design b = build_adc_design(lib, {});
  // Swap the comparator inputs of one instance (classic wiring bug).
  for (auto& inst : b.at("pd_VDD").instances()) {
    if (inst.name == "I0") {
      std::swap(inst.conn.at("INP"), inst.conn.at("INM"));
    }
  }
  const auto res = check_equivalence(a, b, {});
  EXPECT_FALSE(res.equivalent);
}

TEST(Equivalence, DetectsMissingInstance) {
  const CellLibrary lib = lib_for(40);
  Design a = build_adc_design(lib, {});
  GeneratorConfig small;
  small.num_slices = 7;
  Design b = build_adc_design(lib, small);
  const auto res = check_equivalence(a, b, {});
  EXPECT_FALSE(res.equivalent);
}

TEST(Equivalence, DriveMatchingIsOptIn) {
  const CellLibrary lib40 = lib_for(40);
  const Design d = build_adc_design(lib40, {});
  // Sparse target: X4 cells remap to X2 -> drive differs, function same.
  const tech::TechNode node180 = tech::TechDatabase::standard().at(180);
  CellLibrary sparse("sparse");
  const CellLibrary full = make_standard_library(node180);
  for (const auto& cell : full.cells()) {
    if (cell.drive < 4 || cell.function == "clkbuf") sparse.add(cell);
  }
  add_resistor_cells(sparse, node180);
  const auto mig = core::migrate_design(d, sparse);
  EXPECT_TRUE(check_equivalence(d, mig.design, {}).equivalent);
  EquivalenceOptions strict;
  strict.match_drive = true;
  EXPECT_FALSE(check_equivalence(d, mig.design, strict).equivalent);
}

// Parameterized: the write->parse->check loop must hold at every size and
// fragment count the generator supports.
class EquivalenceSizes
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EquivalenceSizes, RoundTripAcrossGeneratorConfigs) {
  const auto [slices, fragments] = GetParam();
  const CellLibrary lib = lib_for(40);
  GeneratorConfig cfg;
  cfg.num_slices = slices;
  cfg.dac_fragments = fragments;
  const Design d = build_adc_design(lib, cfg);
  EXPECT_TRUE(d.validate().empty());
  Design back(&lib);
  const auto parse = parse_verilog(write_verilog(d), back);
  ASSERT_TRUE(parse.ok) << parse.error;
  back.set_top(d.top());
  EquivalenceOptions strict;
  strict.match_drive = true;
  const auto res = check_equivalence(d, back, strict);
  EXPECT_TRUE(res.equivalent)
      << slices << " slices, " << fragments << " fragments: "
      << (res.mismatches.empty() ? "" : res.mismatches[0]);
}

INSTANTIATE_TEST_SUITE_P(Grid, EquivalenceSizes,
                         ::testing::Combine(::testing::Values(4, 8, 16),
                                            ::testing::Values(1, 2, 4)));

}  // namespace
}  // namespace vcoadc::netlist
