#include <gtest/gtest.h>

#include "core/adc_spec.h"
#include "core/adc.h"
#include "synth/placer_quadratic.h"
#include "synth/power_grid.h"
#include "synth/synthesis_flow.h"

namespace vcoadc::synth {
namespace {

SynthesisResult synth_with(PlacerKind placer) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  SynthesisOptions opts;
  opts.placer = placer;
  return adc.synthesize(opts);
}

TEST(QuadraticPlacer, LegalAndDrcClean) {
  const auto res = synth_with(PlacerKind::kQuadratic);
  EXPECT_FALSE(res.layout->placement().overflow);
  EXPECT_TRUE(res.drc.clean());
  for (const auto& v : res.drc.violations) {
    ADD_FAILURE() << to_string(v.kind) << ": " << v.detail;
  }
}

TEST(QuadraticPlacer, CellsStayInTheirRegions) {
  const auto res = synth_with(PlacerKind::kQuadratic);
  const auto& flat = res.layout->flat();
  const auto& pl = res.layout->placement();
  const auto& fp = res.layout->floorplan();
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const std::string want =
        flat[i].cell->is_resistor ? flat[i].group : flat[i].power_domain;
    const PlacedRegion* r = fp.find(want);
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->rect.contains(pl.cells[i].rect)) << flat[i].path;
  }
}

TEST(QuadraticPlacer, CompetitiveHpwl) {
  const auto serp = synth_with(PlacerKind::kSerpentine);
  const auto quad = synth_with(PlacerKind::kQuadratic);
  // The analytical placer must land within 35% of the serpentine packer
  // (they trade wins depending on netlist shape; neither may blow up).
  EXPECT_LT(quad.routing.total_hpwl_m, serp.routing.total_hpwl_m * 1.35);
  EXPECT_GT(quad.routing.total_hpwl_m, serp.routing.total_hpwl_m * 0.4);
}

TEST(QuadraticPlacer, RoutesAndPowersCleanly) {
  const auto res = synth_with(PlacerKind::kQuadratic);
  EXPECT_EQ(res.detailed_routing.failed_nets, 0);
  EXPECT_EQ(res.detailed_routing.overflowed_edges, 0);
  const PowerGrid grid = generate_power_grid(res.layout->floorplan());
  const auto check =
      check_power_grid(grid, res.layout->flat(), res.layout->placement(),
                       res.layout->floorplan());
  EXPECT_TRUE(check.clean());
}

TEST(QuadraticPlacer, Deterministic) {
  const auto a = synth_with(PlacerKind::kQuadratic);
  const auto b = synth_with(PlacerKind::kQuadratic);
  ASSERT_EQ(a.layout->placement().cells.size(),
            b.layout->placement().cells.size());
  for (std::size_t i = 0; i < a.layout->placement().cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.layout->placement().cells[i].rect.x,
                     b.layout->placement().cells[i].rect.x);
  }
}

}  // namespace
}  // namespace vcoadc::synth
