#include <gtest/gtest.h>

#include "core/monte_carlo.h"

namespace vcoadc::core {
namespace {

TEST(MonteCarlo, DistributionIsTightAroundNominal) {
  // The robustness claim, statistically: across independent mismatch draws
  // the SNDR spread stays small and the worst case stays near the mean.
  AdcSpec spec = AdcSpec::paper_40nm();
  MonteCarloOptions opts;
  opts.runs = 8;
  opts.sim.n_samples = 1 << 13;
  const MonteCarloResult res = monte_carlo_sndr(spec, opts);
  ASSERT_EQ(res.sndr_db.size(), 8u);
  EXPECT_GT(res.mean_db, 60.0);
  EXPECT_LT(res.stddev_db, 3.0);
  EXPECT_GT(res.min_db, res.mean_db - 8.0);
  EXPECT_LE(res.min_db, res.max_db);
}

TEST(MonteCarlo, YieldSemantics) {
  AdcSpec spec = AdcSpec::paper_40nm();
  MonteCarloOptions opts;
  opts.runs = 6;
  opts.sim.n_samples = 1 << 12;
  const MonteCarloResult res = monte_carlo_sndr(spec, opts);
  EXPECT_DOUBLE_EQ(res.yield(-1000.0), 1.0);   // everything passes
  EXPECT_DOUBLE_EQ(res.yield(1000.0), 0.0);    // nothing passes
  const double y = res.yield(res.mean_db);
  EXPECT_GE(y, 0.0);
  EXPECT_LE(y, 1.0);
}

TEST(MonteCarlo, RunsAreIndependentDraws) {
  AdcSpec spec = AdcSpec::paper_40nm();
  MonteCarloOptions opts;
  opts.runs = 4;
  opts.sim.n_samples = 1 << 12;
  const MonteCarloResult res = monte_carlo_sndr(spec, opts);
  // With mismatch enabled, different seeds cannot yield identical SNDRs.
  for (std::size_t i = 1; i < res.sndr_db.size(); ++i) {
    EXPECT_NE(res.sndr_db[i], res.sndr_db[0]);
  }
}

TEST(MonteCarlo, ParallelIsBitIdenticalToSerial) {
  // The engine's determinism contract: run i always simulates with
  // seed0 + i and results are ordered by index, so the thread count can
  // never change a single bit of the output.
  AdcSpec spec = AdcSpec::paper_40nm();
  AdcDesign adc(spec);
  MonteCarloOptions opts;
  opts.runs = 6;
  opts.sim.n_samples = 1 << 12;

  opts.exec.threads = 1;
  const MonteCarloResult serial = monte_carlo_sndr(adc, opts);
  opts.exec.threads = 4;
  const MonteCarloResult parallel = monte_carlo_sndr(adc, opts);

  ASSERT_EQ(serial.sndr_db.size(), parallel.sndr_db.size());
  for (std::size_t i = 0; i < serial.sndr_db.size(); ++i) {
    EXPECT_EQ(serial.sndr_db[i], parallel.sndr_db[i]) << "run " << i;
  }
  EXPECT_EQ(serial.mean_db, parallel.mean_db);
  EXPECT_EQ(serial.stddev_db, parallel.stddev_db);
}

TEST(MonteCarlo, DesignOverloadMatchesSpecOverload) {
  // The AdcSpec wrapper must be a pure convenience: building the design
  // up front and reusing it yields the same bits.
  AdcSpec spec = AdcSpec::paper_40nm();
  MonteCarloOptions opts;
  opts.runs = 3;
  opts.sim.n_samples = 1 << 12;
  opts.exec.threads = 1;
  const MonteCarloResult from_spec = monte_carlo_sndr(spec, opts);
  AdcDesign adc(spec);
  const MonteCarloResult from_design = monte_carlo_sndr(adc, opts);
  ASSERT_EQ(from_spec.sndr_db.size(), from_design.sndr_db.size());
  for (std::size_t i = 0; i < from_spec.sndr_db.size(); ++i) {
    EXPECT_EQ(from_spec.sndr_db[i], from_design.sndr_db[i]);
  }
}

TEST(MonteCarlo, BatchInstrumentationIsPopulated) {
  AdcSpec spec = AdcSpec::paper_40nm();
  MonteCarloOptions opts;
  opts.runs = 4;
  opts.sim.n_samples = 1 << 12;
  opts.exec.threads = 2;
  const MonteCarloResult res = monte_carlo_sndr(spec, opts);
  EXPECT_EQ(res.batch.threads, 2);
  EXPECT_GT(res.batch.wall_s, 0.0);
  EXPECT_GT(res.batch.busy_s, 0.0);
  ASSERT_EQ(res.batch.task_wall_s.size(), 4u);
  for (double t : res.batch.task_wall_s) EXPECT_GT(t, 0.0);
  EXPECT_GE(res.batch.utilization, 0.0);
  EXPECT_LE(res.batch.utilization, 1.0 + 1e-9);
  EXPECT_GT(res.batch.effective_parallelism(), 0.0);
}

TEST(MonteCarlo, BatchedEngineIsBitIdenticalToScalarPath) {
  // The batched SoA engine's whole-pipeline contract: grouping draws into
  // SIMD lanes (default width) changes nothing but wall time versus the
  // forced per-draw scalar path — the SNDR vector matches bit for bit.
  AdcSpec spec = AdcSpec::paper_40nm();
  AdcDesign adc(spec);
  MonteCarloOptions opts;
  opts.runs = 6;
  opts.sim.n_samples = 1 << 12;
  opts.exec.threads = 1;

  opts.batch_width = 1;  // scalar per-draw reference
  const MonteCarloResult scalar = monte_carlo_sndr(adc, opts);
  opts.batch_width = 0;  // host-preferred lane width
  const MonteCarloResult batched = monte_carlo_sndr(adc, opts);

  ASSERT_EQ(scalar.sndr_db.size(), batched.sndr_db.size());
  for (std::size_t i = 0; i < scalar.sndr_db.size(); ++i) {
    EXPECT_EQ(scalar.sndr_db[i], batched.sndr_db[i]) << "run " << i;
  }
  EXPECT_EQ(scalar.mean_db, batched.mean_db);
  EXPECT_EQ(scalar.stddev_db, batched.stddev_db);
}

TEST(MonteCarlo, BatchedRemainderPartitionCoversEveryDraw) {
  // runs = 7 at a forced width of 4 partitions into one lane group plus
  // three scalar remainder draws; every draw must land at its own index
  // with its own seed, identical to the all-scalar partition, and the
  // per-draw wall times must stay populated (group time amortized).
  AdcSpec spec = AdcSpec::paper_40nm();
  AdcDesign adc(spec);
  MonteCarloOptions opts;
  opts.runs = 7;
  opts.sim.n_samples = 1 << 12;
  opts.exec.threads = 1;

  opts.batch_width = 1;
  const MonteCarloResult scalar = monte_carlo_sndr(adc, opts);
  opts.batch_width = 4;
  const MonteCarloResult batched = monte_carlo_sndr(adc, opts);

  ASSERT_EQ(scalar.sndr_db.size(), 7u);
  ASSERT_EQ(batched.sndr_db.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(scalar.sndr_db[i], batched.sndr_db[i]) << "run " << i;
  }
  ASSERT_EQ(batched.batch.task_wall_s.size(), 7u);
  for (double t : batched.batch.task_wall_s) EXPECT_GT(t, 0.0);
}

TEST(MonteCarlo, ZeroRunsIsEmptyNotUndefined) {
  AdcSpec spec = AdcSpec::paper_40nm();
  MonteCarloOptions opts;
  opts.runs = 0;
  const MonteCarloResult res = monte_carlo_sndr(spec, opts);
  EXPECT_TRUE(res.sndr_db.empty());
  EXPECT_DOUBLE_EQ(res.yield(60.0), 0.0);
}

TEST(Corners, DesignOverloadMatchesSpecOverload) {
  AdcSpec spec = AdcSpec::paper_40nm();
  const auto from_spec = corner_sweep(spec, 1 << 12);
  AdcDesign adc(spec);
  const auto from_design = corner_sweep(adc, 1 << 12);
  ASSERT_EQ(from_spec.size(), from_design.size());
  for (std::size_t i = 0; i < from_spec.size(); ++i) {
    EXPECT_EQ(from_spec[i].name, from_design[i].name);
    EXPECT_EQ(from_spec[i].sndr_db, from_design[i].sndr_db) << "corner " << i;
    EXPECT_EQ(from_spec[i].power_w, from_design[i].power_w) << "corner " << i;
  }
}

TEST(Corners, AllCornersStayFunctional) {
  AdcSpec spec = AdcSpec::paper_40nm();
  const auto corners = corner_sweep(spec, 1 << 13);
  ASSERT_EQ(corners.size(), 6u);
  double tt_sndr = 0;
  for (const auto& c : corners) {
    EXPECT_GT(c.sndr_db, 55.0) << c.name;
    EXPECT_GT(c.power_w, 0.0);
    if (c.name.find("TT  1.00V  27C") != std::string::npos) {
      tt_sndr = c.sndr_db;
    }
  }
  // No corner collapses more than 10 dB below typical.
  for (const auto& c : corners) {
    EXPECT_GT(c.sndr_db, tt_sndr - 10.0) << c.name;
  }
}

TEST(Corners, VoltageScalesPower) {
  AdcSpec spec = AdcSpec::paper_40nm();
  const auto corners = corner_sweep(spec, 1 << 12);
  double p_low = 0, p_high = 0;
  for (const auto& c : corners) {
    if (c.name.find("0.90V") != std::string::npos) p_low = c.power_w;
    if (c.name.find("1.10V") != std::string::npos) p_high = c.power_w;
  }
  ASSERT_GT(p_low, 0.0);
  EXPECT_GT(p_high, p_low);  // CV^2f and static terms both rise with VDD
}

TEST(Corners, ProcessShiftsRingRate) {
  AdcSpec fast = AdcSpec::paper_40nm();
  fast.pvt.process = 0.85;
  AdcSpec slow = AdcSpec::paper_40nm();
  slow.pvt.process = 1.20;
  const auto cfg_fast = fast.to_sim_config();
  const auto cfg_slow = slow.to_sim_config();
  EXPECT_GT(cfg_fast.vco_center_hz, cfg_slow.vco_center_hz);
  EXPECT_GT(cfg_fast.kvco_hz_per_v, cfg_slow.kvco_hz_per_v);
}

}  // namespace
}  // namespace vcoadc::core
