#include <gtest/gtest.h>

#include "core/monte_carlo.h"

namespace vcoadc::core {
namespace {

TEST(MonteCarlo, DistributionIsTightAroundNominal) {
  // The robustness claim, statistically: across independent mismatch draws
  // the SNDR spread stays small and the worst case stays near the mean.
  AdcSpec spec = AdcSpec::paper_40nm();
  MonteCarloOptions opts;
  opts.runs = 8;
  opts.n_samples = 1 << 13;
  const MonteCarloResult res = monte_carlo_sndr(spec, opts);
  ASSERT_EQ(res.sndr_db.size(), 8u);
  EXPECT_GT(res.mean_db, 60.0);
  EXPECT_LT(res.stddev_db, 3.0);
  EXPECT_GT(res.min_db, res.mean_db - 8.0);
  EXPECT_LE(res.min_db, res.max_db);
}

TEST(MonteCarlo, YieldSemantics) {
  AdcSpec spec = AdcSpec::paper_40nm();
  MonteCarloOptions opts;
  opts.runs = 6;
  opts.n_samples = 1 << 12;
  const MonteCarloResult res = monte_carlo_sndr(spec, opts);
  EXPECT_DOUBLE_EQ(res.yield(-1000.0), 1.0);   // everything passes
  EXPECT_DOUBLE_EQ(res.yield(1000.0), 0.0);    // nothing passes
  const double y = res.yield(res.mean_db);
  EXPECT_GE(y, 0.0);
  EXPECT_LE(y, 1.0);
}

TEST(MonteCarlo, RunsAreIndependentDraws) {
  AdcSpec spec = AdcSpec::paper_40nm();
  MonteCarloOptions opts;
  opts.runs = 4;
  opts.n_samples = 1 << 12;
  const MonteCarloResult res = monte_carlo_sndr(spec, opts);
  // With mismatch enabled, different seeds cannot yield identical SNDRs.
  for (std::size_t i = 1; i < res.sndr_db.size(); ++i) {
    EXPECT_NE(res.sndr_db[i], res.sndr_db[0]);
  }
}

TEST(Corners, AllCornersStayFunctional) {
  AdcSpec spec = AdcSpec::paper_40nm();
  const auto corners = corner_sweep(spec, 1 << 13);
  ASSERT_EQ(corners.size(), 6u);
  double tt_sndr = 0;
  for (const auto& c : corners) {
    EXPECT_GT(c.sndr_db, 55.0) << c.name;
    EXPECT_GT(c.power_w, 0.0);
    if (c.name.find("TT  1.00V  27C") != std::string::npos) {
      tt_sndr = c.sndr_db;
    }
  }
  // No corner collapses more than 10 dB below typical.
  for (const auto& c : corners) {
    EXPECT_GT(c.sndr_db, tt_sndr - 10.0) << c.name;
  }
}

TEST(Corners, VoltageScalesPower) {
  AdcSpec spec = AdcSpec::paper_40nm();
  const auto corners = corner_sweep(spec, 1 << 12);
  double p_low = 0, p_high = 0;
  for (const auto& c : corners) {
    if (c.name.find("0.90V") != std::string::npos) p_low = c.power_w;
    if (c.name.find("1.10V") != std::string::npos) p_high = c.power_w;
  }
  ASSERT_GT(p_low, 0.0);
  EXPECT_GT(p_high, p_low);  // CV^2f and static terms both rise with VDD
}

TEST(Corners, ProcessShiftsRingRate) {
  AdcSpec fast = AdcSpec::paper_40nm();
  fast.pvt.process = 0.85;
  AdcSpec slow = AdcSpec::paper_40nm();
  slow.pvt.process = 1.20;
  const auto cfg_fast = fast.to_sim_config();
  const auto cfg_slow = slow.to_sim_config();
  EXPECT_GT(cfg_fast.vco_center_hz, cfg_slow.vco_center_hz);
  EXPECT_GT(cfg_fast.kvco_hz_per_v, cfg_slow.kvco_hz_per_v);
}

}  // namespace
}  // namespace vcoadc::core
