#include <gtest/gtest.h>

#include "netlist/cell_library.h"
#include "netlist/generator.h"
#include "netlist/netlist.h"
#include "netlist/verilog_parser.h"
#include "netlist/verilog_writer.h"
#include "tech/tech_node.h"

namespace vcoadc::netlist {
namespace {

CellLibrary lib40() {
  CellLibrary lib = make_standard_library(tech::TechDatabase::standard().at(40));
  add_resistor_cells(lib, tech::TechDatabase::standard().at(40));
  return lib;
}

TEST(CellLibrary, ContainsExpectedMasters) {
  const CellLibrary lib = lib40();
  // The paper's Table 1/2 masters must exist.
  for (const char* name :
       {"NOR3X4", "NOR2X1", "INVX1", "INVX2", "XOR2X1", "CLKBUFX8", "RES11K",
        "RES1K"}) {
    EXPECT_TRUE(lib.contains(name)) << name;
  }
  EXPECT_FALSE(lib.contains("OPAMP"));  // the whole point of the paper
}

TEST(CellLibrary, DriveStrengthsSorted) {
  const CellLibrary lib = lib40();
  const auto drives = lib.drive_strengths("inv");
  ASSERT_EQ(drives.size(), 4u);
  EXPECT_EQ(drives.front(), 1);
  EXPECT_EQ(drives.back(), 8);
  EXPECT_EQ(lib.cell_for("inv", 4).value(), "INVX4");
  EXPECT_FALSE(lib.cell_for("inv", 16).has_value());
}

TEST(CellLibrary, GeometryScalesWithDrive) {
  const CellLibrary lib = lib40();
  EXPECT_GT(lib.at("INVX4").width_m, lib.at("INVX1").width_m);
  EXPECT_DOUBLE_EQ(lib.at("INVX4").height_m, lib.at("INVX1").height_m);
  EXPECT_GT(lib.at("INVX4").input_cap_f, lib.at("INVX1").input_cap_f);
}

TEST(CellLibrary, ResistorCellsMatchFig11) {
  const CellLibrary lib = lib40();
  const StdCell& r1k = lib.at("RES1K");
  const StdCell& r11k = lib.at("RES11K");
  EXPECT_TRUE(r1k.is_resistor);
  EXPECT_DOUBLE_EQ(r1k.resistance_ohms, 1000.0);
  EXPECT_DOUBLE_EQ(r11k.resistance_ohms, 11000.0);
  // "The actual heights of both resistors standard cells should be similar
  //  to the digital standard cell height."
  EXPECT_DOUBLE_EQ(r1k.height_m, lib.at("INVX1").height_m);
  EXPECT_DOUBLE_EQ(r11k.height_m, lib.at("INVX1").height_m);
  // Resistors have terminals, not supplies.
  EXPECT_TRUE(r1k.has_pin("T1"));
  EXPECT_TRUE(r1k.has_pin("T2"));
  EXPECT_TRUE(r1k.power_pin.empty());
}

TEST(CellLibrary, CellsShrinkWithNode) {
  const auto& db = tech::TechDatabase::standard();
  CellLibrary l40 = make_standard_library(db.at(40));
  CellLibrary l180 = make_standard_library(db.at(180));
  EXPECT_LT(l40.at("INVX1").area_m2(), l180.at("INVX1").area_m2() / 5.0);
  EXPECT_LT(l40.at("INVX1").input_cap_f, l180.at("INVX1").input_cap_f);
}

TEST(Module, PortNetBookkeeping) {
  Module m("t");
  m.add_port("A", PortDir::kInput);
  m.add_net("w1");
  m.add_net("w1");  // duplicate ignored
  m.add_net("A");   // port name not duplicated as a net
  EXPECT_TRUE(m.has_port("A"));
  EXPECT_TRUE(m.has_net("w1"));
  EXPECT_EQ(m.nets().size(), 1u);
}

TEST(Design, ValidateCatchesUnknownMaster) {
  const CellLibrary lib = lib40();
  Design d(&lib);
  Module& m = d.add_module("top");
  m.add_port("X", PortDir::kInput);
  Instance inst;
  inst.name = "u0";
  inst.master = "MISSING";
  m.add_instance(inst);
  d.set_top("top");
  const auto problems = d.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("unknown master"), std::string::npos);
}

TEST(Design, ValidateCatchesBadPinAndNet) {
  const CellLibrary lib = lib40();
  Design d(&lib);
  Module& m = d.add_module("top");
  m.add_net("n1");
  Instance inst;
  inst.name = "u0";
  inst.master = "INVX1";
  inst.conn["A"] = "n1";
  inst.conn["Z"] = "n1";        // INVX1 has Y, not Z
  inst.conn["Y"] = "ghost_net"; // undeclared net
  m.add_instance(inst);
  d.set_top("top");
  const auto problems = d.validate();
  bool bad_pin = false, bad_net = false;
  for (const auto& p : problems) {
    if (p.find("no pin 'Z'") != std::string::npos) bad_pin = true;
    if (p.find("'ghost_net'") != std::string::npos) bad_net = true;
  }
  EXPECT_TRUE(bad_pin);
  EXPECT_TRUE(bad_net);
}

TEST(Design, ValidateCatchesFloatingInput) {
  const CellLibrary lib = lib40();
  Design d(&lib);
  Module& m = d.add_module("top");
  m.add_net("n1");
  Instance inst;
  inst.name = "u0";
  inst.master = "INVX1";
  inst.conn["Y"] = "n1";  // input A left floating
  m.add_instance(inst);
  d.set_top("top");
  const auto problems = d.validate();
  bool floating = false;
  for (const auto& p : problems) {
    if (p.find("input pin 'A' unconnected") != std::string::npos) {
      floating = true;
    }
  }
  EXPECT_TRUE(floating);
}

TEST(Generator, AdcDesignValidates) {
  const CellLibrary lib = lib40();
  const Design d = build_adc_design(lib, {});
  const auto problems = d.validate();
  EXPECT_TRUE(problems.empty());
  for (const auto& p : problems) ADD_FAILURE() << p;
}

TEST(Generator, ComparatorMatchesTable1) {
  const CellLibrary lib = lib40();
  const Design d = build_adc_design(lib, {});
  const Module& cmp = d.at("comparator");
  // Table 1: two NOR3X4 and two NOR2X1.
  int nor3 = 0, nor2 = 0;
  for (const auto& inst : cmp.instances()) {
    if (inst.master == "NOR3X4") ++nor3;
    if (inst.master == "NOR2X1") ++nor2;
  }
  EXPECT_EQ(nor3, 2);
  EXPECT_EQ(nor2, 2);
  EXPECT_EQ(cmp.instances().size(), 4u);
  // Cross-coupling: I0.A ties to OUTM, I1.A ties to OUTP.
  EXPECT_EQ(cmp.instances()[0].conn.at("A"), "OUTM");
  EXPECT_EQ(cmp.instances()[1].conn.at("A"), "OUTP");
}

TEST(Generator, VcoCellIsFourInverters) {
  const CellLibrary lib = lib40();
  const Design d = build_adc_design(lib, {});
  const Module& vco = d.at("VCO_cell");
  EXPECT_EQ(vco.instances().size(), 4u);
  for (const auto& inst : vco.instances()) {
    EXPECT_EQ(lib.at(inst.master).function, "inv");
    // The supply pin of every inverter ties to the control node.
    EXPECT_EQ(inst.conn.at("VDD"), "VCTRL");
  }
}

TEST(Generator, SliceMatchesTable2Structure) {
  const CellLibrary lib = lib40();
  const Design d = build_adc_design(lib, {});
  const Module& slice = d.at("ADC_slice");
  int bufs = 0, vcos = 0, res = 0, pd_vdd = 0, pd_vrefp = 0;
  for (const auto& inst : slice.instances()) {
    if (inst.master == "buf_cell") ++bufs;
    if (inst.master == "VCO_cell") ++vcos;
    if (inst.master == "RES11K") ++res;
    if (inst.master == "pd_VDD") ++pd_vdd;
    if (inst.master == "pd_VREFP") ++pd_vrefp;
  }
  EXPECT_EQ(bufs, 2);
  EXPECT_EQ(vcos, 2);
  EXPECT_EQ(res, 2);
  EXPECT_EQ(pd_vdd, 1);
  EXPECT_EQ(pd_vrefp, 1);
}

TEST(Generator, FlattenedPowerDomainsMatchFig12) {
  const CellLibrary lib = lib40();
  const Design d = build_adc_design(lib, {});
  const auto flat = d.flatten();
  std::map<std::string, int> pd_count;
  for (const auto& fi : flat) {
    pd_count[fi.cell->is_resistor ? fi.group : fi.power_domain]++;
  }
  // All six power domains and all four groups of Fig. 14 are populated.
  for (const char* pd : {kPdVdd, kPdVrefp, kPdVctrlp, kPdVctrln, kPdVbuf1,
                         kPdVbuf2, kGrpDacRes1, kGrpDacRes2, kGrpInRes1,
                         kGrpInRes2}) {
    EXPECT_GT(pd_count[pd], 0) << pd;
  }
  // Ring inverters: 8 slices * 4 inverters per VCO_cell.
  EXPECT_EQ(pd_count[kPdVctrlp], 32);
  EXPECT_EQ(pd_count[kPdVctrln], 32);
}

TEST(Generator, StatsScaleWithSlices) {
  const CellLibrary lib = lib40();
  GeneratorConfig cfg4;
  cfg4.num_slices = 4;
  GeneratorConfig cfg8;
  cfg8.num_slices = 8;
  const auto s4 = build_adc_design(lib, cfg4).stats();
  const auto s8 = build_adc_design(lib, cfg8).stats();
  EXPECT_GT(s8.digital_gates, s4.digital_gates);
  EXPECT_EQ(s8.resistors, 2 * 8 + 2 * 8);  // DAC pair + input bank per side
  EXPECT_EQ(s4.resistors, 2 * 4 + 2 * 4);
  EXPECT_GT(s8.total_cell_area_m2, s4.total_cell_area_m2);
}

TEST(Generator, RingClosesAcrossSlices) {
  // Slice i's ring-1 input must be slice i-1's output, with exactly one
  // polarity twist at the wrap so the differential ring oscillates.
  const CellLibrary lib = lib40();
  const Design d = build_adc_design(lib, {});
  const Module& top = d.at("adc_top");
  int twists = 0;
  for (const auto& inst : top.instances()) {
    if (inst.master != "ADC_slice") continue;
    const std::string& ip = inst.conn.at("IP");
    // A twist is when IP connects to an N-polarity tap.
    if (ip.find("R1N") != std::string::npos) ++twists;
  }
  EXPECT_EQ(twists, 1);
}

TEST(Verilog, WriterEmitsTable1Shape) {
  const CellLibrary lib = lib40();
  const Design d = build_adc_design(lib, {});
  const std::string v = write_module_verilog(d, d.at("comparator"));
  EXPECT_NE(v.find("module comparator(Q, QB, VDD, VSS, CLK, INM, INP);"),
            std::string::npos);
  EXPECT_NE(v.find("NOR3X4 I0"), std::string::npos);
  EXPECT_NE(v.find(".Y(OUTP)"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, RoundTripPreservesStructure) {
  const CellLibrary lib = lib40();
  const Design d = build_adc_design(lib, {});
  const std::string text = write_verilog(d);

  Design d2(&lib);
  const ParseResult res = parse_verilog(text, d2);
  ASSERT_TRUE(res.ok) << res.error << " at line " << res.line;
  d2.set_top(d.top());
  EXPECT_TRUE(d2.validate().empty());

  // Same flattened gate population.
  const auto s1 = d.stats();
  const auto s2 = d2.stats();
  EXPECT_EQ(s1.total_instances, s2.total_instances);
  EXPECT_EQ(s1.digital_gates, s2.digital_gates);
  EXPECT_EQ(s1.resistors, s2.resistors);
  EXPECT_EQ(s1.by_function, s2.by_function);
  EXPECT_EQ(s1.by_power_domain, s2.by_power_domain);
}

TEST(Verilog, ParserReportsErrors) {
  const CellLibrary lib = lib40();
  Design d(&lib);
  const ParseResult res = parse_verilog("module m(;", d);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
}

TEST(Verilog, ParserHandlesCommentsAndAttributes) {
  const CellLibrary lib = lib40();
  Design d(&lib);
  const std::string src = R"(
    // line comment
    module m(A, Y, VDD, VSS);
      input A; output Y; inout VDD, VSS;
      /* block
         comment */
      (* power_domain = "PD_VCTRLP" *)
      INVX1 u0 (.A(A), .Y(Y), .VDD(VDD), .VSS(VSS));
    endmodule
  )";
  const ParseResult res = parse_verilog(src, d);
  ASSERT_TRUE(res.ok) << res.error;
  const Module& m = d.at("m");
  ASSERT_EQ(m.instances().size(), 1u);
  EXPECT_EQ(m.instances()[0].power_domain, "PD_VCTRLP");
  EXPECT_EQ(d.top(), "m");
}

TEST(Design, FlattenNetNamesAreHierarchical) {
  const CellLibrary lib = lib40();
  const Design d = build_adc_design(lib, {});
  const auto flat = d.flatten();
  bool found_local = false, found_global = false;
  for (const auto& fi : flat) {
    for (const auto& [pin, net] : fi.conn) {
      if (net == "VDD") found_global = true;
      if (net.find("slice0/") == 0) found_local = true;
    }
  }
  EXPECT_TRUE(found_global);  // top-level supply visible everywhere
  EXPECT_TRUE(found_local);   // slice-internal nets got prefixed
}

TEST(Design, FlattenCountMatchesHandCount) {
  // Per slice: 2 buf_cells (4 inv) + pd_VDD (2 comparators of 4 gates +
  // XOR + INV = 10) + pd_VREFP (2 inv) + 2 VCO_cells (4 inv) + 2 resistors
  // = 8 + 10 + 2 + 8 + 2 = 30. Top: 8 slices * 30 + 1 clkbuf + 16 input
  // resistors = 240 + 17 = 257.
  const CellLibrary lib = lib40();
  const Design d = build_adc_design(lib, {});
  EXPECT_EQ(d.flatten().size(), 257u);
}

}  // namespace
}  // namespace vcoadc::netlist
