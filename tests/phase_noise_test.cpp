#include <gtest/gtest.h>

#include <cmath>

#include "core/adc_spec.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "msim/modulator.h"
#include "msim/phase_noise.h"
#include "msim/ring_vco.h"
#include "util/units.h"

namespace vcoadc::msim {
namespace {

TEST(PhaseNoise, WhiteFmMatchesTheory) {
  const double k = 10.0;  // Hz^2/Hz
  RingVco vco(8, 2e9, 0.0, 0.55, 0.0, 0.0, 1.0, k, util::Rng(17));
  const double fs = 8e9;
  const auto res = measure_phase_noise(vco, 0.55, fs, 1 << 16);
  ASSERT_GE(res.points.size(), 4u);
  EXPECT_NEAR(res.carrier_hz, 2e9, 1e6);
  // -20 dB/dec slope of a white-FM oscillator.
  EXPECT_NEAR(res.slope_db_per_decade, -20.0, 3.0);
  // Absolute level within 3 dB of theory at a mid-band offset.
  const double f_probe = 10e6;
  const double measured = res.at(f_probe);
  ASSERT_FALSE(std::isnan(measured));
  EXPECT_NEAR(measured, white_fm_theory_dbc(k, f_probe), 3.0);
}

TEST(PhaseNoise, QuietOscillatorIsQuiet) {
  RingVco quiet(8, 2e9, 0.0, 0.55, 0.0, 0.0, 1.0, 0.0, util::Rng(1));
  const auto res = measure_phase_noise(quiet, 0.55, 8e9, 1 << 14);
  // Noiseless phase ramp: residual is numerical only, far below -120 dBc.
  for (const auto& p : res.points) {
    EXPECT_LT(p.dbc_per_hz, -120.0) << p.offset_hz;
  }
}

TEST(PhaseNoise, MoreNoiseHigherFloor) {
  auto level_for = [](double k) {
    RingVco vco(8, 2e9, 0.0, 0.55, 0.0, 0.0, 1.0, k, util::Rng(5));
    const auto res = measure_phase_noise(vco, 0.55, 8e9, 1 << 14);
    return res.at(20e6);
  };
  const double weak = level_for(1.0);
  const double strong = level_for(100.0);
  EXPECT_NEAR(strong - weak, 20.0, 3.0);  // 100x power = +20 dB
}

TEST(VrefRipple, CommonModeToneIsRejectedButIntermodBites) {
  // Reference ripple hits BOTH DAC banks identically; at midscale the
  // pseudo-differential feedback cancels it, so the DIRECT tone at the
  // ripple frequency is tiny (>>30 dB below the single-ended sensitivity
  // of 20*log10(ripple/VREF)). What remains is signal-dependent coupling
  // (the imbalance between sourcing and sinking elements tracks the
  // signal), i.e. intermodulation that erodes SNDR gracefully with the
  // ripple amplitude - the converter's real reference sensitivity.
  auto run_with = [&](double ripple_v, double* tone_dbfs) {
    core::AdcSpec spec = core::AdcSpec::paper_40nm();
    spec.with_nonidealities = false;
    msim::SimConfig cfg = spec.to_sim_config();
    const std::size_t n = 1 << 14;
    cfg.vref_ripple_amp_v = ripple_v;
    cfg.vref_ripple_freq_hz = dsp::coherent_freq(2.2e6, cfg.fs_hz, n);
    VcoDsmModulator mod(cfg);
    const double fin = dsp::coherent_freq(900e3, cfg.fs_hz, n);
    const auto res =
        mod.run(dsp::make_sine(0.5 * mod.full_scale_diff(), fin), n);
    const auto sp = dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0,
                                          dsp::WindowKind::kHann);
    if (tone_dbfs != nullptr) {
      double rp = 0;
      for (std::size_t i = 1; i < sp.power.size(); ++i) {
        if (std::fabs(sp.freq_hz[i] - cfg.vref_ripple_freq_hz) <=
            3 * sp.bin_hz) {
          rp += sp.power[i];
        }
      }
      *tone_dbfs = util::db_power(std::max(rp, 1e-30));
    }
    return dsp::analyze_sndr(sp, spec.bandwidth_hz, fin).sndr_db;
  };

  double tone_10mv = 0;
  const double sndr_10mv = run_with(0.010, &tone_10mv);
  // Single-ended sensitivity of a 10 mV ripple on 1.1 V: -41 dBFS; the
  // differential architecture keeps the direct tone below -80 dBFS.
  EXPECT_LT(tone_10mv, -80.0);

  const double sndr_1mv = run_with(0.001, nullptr);
  const double sndr_0 = run_with(0.0, nullptr);
  EXPECT_GT(sndr_1mv, 60.0);               // 1 mV ripple: still >10 bits
  EXPECT_GT(sndr_0, sndr_1mv);             // monotone degradation...
  EXPECT_GT(sndr_1mv, sndr_10mv + 6.0);    // ...growing with amplitude
}

TEST(VrefRipple, NoRippleNoTone) {
  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  spec.with_nonidealities = false;
  msim::SimConfig cfg = spec.to_sim_config();
  const std::size_t n = 1 << 13;
  VcoDsmModulator mod(cfg);
  const double fin = dsp::coherent_freq(900e3, cfg.fs_hz, n);
  const auto res = mod.run(dsp::make_sine(0.5 * mod.full_scale_diff(), fin), n);
  const auto sp =
      dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0, dsp::WindowKind::kHann);
  const auto rep = dsp::analyze_sndr(sp, spec.bandwidth_hz, fin);
  const auto tones = dsp::find_idle_tones(sp, rep, 1.5e6, spec.bandwidth_hz,
                                          15.0);
  EXPECT_TRUE(tones.empty());
}

}  // namespace
}  // namespace vcoadc::msim
