// core::evaluate(): the unified request/response driver entry point. The
// contract under test: the legacy drivers (monte_carlo_sndr, corner_sweep,
// generate_datasheet, ...) are thin shims over evaluate() and agree with
// it exactly; diagnostics are request-local (collected into the response,
// not leaked between requests); and the JSON bridging parses the serve
// protocol's vocabulary and fingerprints results stably.
#include "core/eval.h"

#include <gtest/gtest.h>

#include <string>

#include "core/artifact_cache.h"
#include "core/datasheet.h"
#include "core/flow.h"
#include "core/monte_carlo.h"
#include "util/json.h"

using namespace vcoadc;
namespace json = util::json;

namespace {

core::AdcSpec small_spec() {
  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  spec.num_slices = 6;
  spec.fs_hz = 400e6;
  spec.bandwidth_hz = 2e6;
  return spec;
}

TEST(EvalKindTest, NamesRoundTrip) {
  const core::EvalKind kinds[] = {
      core::EvalKind::kDatasheet,  core::EvalKind::kMonteCarlo,
      core::EvalKind::kCornerSweep, core::EvalKind::kSynthesize,
      core::EvalKind::kMigrate,    core::EvalKind::kOptimize,
      core::EvalKind::kHdlEmit,    core::EvalKind::kGateSim,
  };
  for (core::EvalKind k : kinds) {
    core::EvalKind back{};
    ASSERT_TRUE(core::eval_kind_from_name(core::eval_kind_name(k), &back))
        << core::eval_kind_name(k);
    EXPECT_EQ(back, k);
  }
  core::EvalKind dummy{};
  EXPECT_FALSE(core::eval_kind_from_name("frobnicate", &dummy));
  EXPECT_FALSE(core::eval_kind_from_name("", &dummy));
}

TEST(EvalRequestJsonTest, ParsesSpecAndOptions) {
  const char* text =
      "{\"id\": 42, \"cmd\": \"monte_carlo\","
      " \"spec\": {\"slices\": 6, \"fs\": 4e8, \"bw\": 2e6, \"seed\": 9},"
      " \"options\": {\"runs\": 3, \"n_samples\": 2048}}";
  json::ParseResult pr = json::parse(text);
  ASSERT_TRUE(pr.ok) << pr.error;

  core::EvalRequest req;
  std::string err;
  ASSERT_TRUE(core::eval_request_from_json(pr.value, &req, &err)) << err;
  EXPECT_EQ(req.kind, core::EvalKind::kMonteCarlo);
  EXPECT_EQ(req.id, "42");
  EXPECT_EQ(req.spec.num_slices, 6);
  EXPECT_EQ(req.spec.fs_hz, 4e8);
  EXPECT_EQ(req.spec.bandwidth_hz, 2e6);
  EXPECT_EQ(req.spec.seed, 9u);
  EXPECT_EQ(req.monte_carlo.runs, 3);
  EXPECT_EQ(req.monte_carlo.sim.n_samples, 2048u);
}

TEST(EvalRequestJsonTest, RejectsMissingOrUnknownCmd) {
  core::EvalRequest req;
  std::string err;
  json::ParseResult pr = json::parse("{\"spec\": {}}");
  ASSERT_TRUE(pr.ok);
  EXPECT_FALSE(core::eval_request_from_json(pr.value, &req, &err));
  EXPECT_FALSE(err.empty());

  pr = json::parse("{\"cmd\": \"launch_rocket\"}");
  ASSERT_TRUE(pr.ok);
  EXPECT_FALSE(core::eval_request_from_json(pr.value, &req, &err));

  pr = json::parse("[1, 2, 3]");
  ASSERT_TRUE(pr.ok);
  EXPECT_FALSE(core::eval_request_from_json(pr.value, &req, &err));
}

TEST(EvalRequestJsonTest, UnknownKeysAreIgnoredForForwardCompat) {
  json::ParseResult pr = json::parse(
      "{\"cmd\": \"synthesize\", \"spec\": {\"slices\": 8},"
      " \"options\": {\"target_utilization\": 0.5},"
      " \"future_field\": {\"nested\": true}}");
  ASSERT_TRUE(pr.ok);
  core::EvalRequest req;
  std::string err;
  ASSERT_TRUE(core::eval_request_from_json(pr.value, &req, &err)) << err;
  EXPECT_EQ(req.kind, core::EvalKind::kSynthesize);
  EXPECT_EQ(req.spec.num_slices, 8);
  EXPECT_EQ(req.synthesis.target_utilization, 0.5);
}

TEST(EvalRequestJsonTest, ParsesBackendAndGateSimOptions) {
  json::ParseResult pr = json::parse(
      "{\"cmd\": \"gate_sim\", \"backend\": \"gate_level\","
      " \"spec\": {\"slices\": 4},"
      " \"options\": {\"n_samples\": 256, \"ring_period_tol\": 0.5,"
      " \"top\": \"ADC_slice\"}}");
  ASSERT_TRUE(pr.ok) << pr.error;
  core::EvalRequest req;
  std::string err;
  ASSERT_TRUE(core::eval_request_from_json(pr.value, &req, &err)) << err;
  EXPECT_EQ(req.kind, core::EvalKind::kGateSim);
  EXPECT_EQ(req.backend, core::SimBackend::kGateLevel);
  EXPECT_EQ(req.gate_sim.sim.n_samples, 256u);
  EXPECT_EQ(req.gate_sim.ring_period_tol, 0.5);
  EXPECT_EQ(req.gate_sim.top, "ADC_slice");

  // Default backend is behavioral; a malformed selector is refused.
  pr = json::parse("{\"cmd\": \"hdl_emit\"}");
  ASSERT_TRUE(pr.ok);
  ASSERT_TRUE(core::eval_request_from_json(pr.value, &req, &err)) << err;
  EXPECT_EQ(req.backend, core::SimBackend::kBehavioral);
  pr = json::parse("{\"cmd\": \"hdl_emit\", \"backend\": \"spice\"}");
  ASSERT_TRUE(pr.ok);
  EXPECT_FALSE(core::eval_request_from_json(pr.value, &req, &err));
  EXPECT_NE(err.find("backend"), std::string::npos);
}

TEST(EvalTest, HdlEmitAndGateSimKindsRoundTripThroughEvaluate) {
  core::AdcSpec spec = small_spec();
  spec.num_slices = 4;
  core::ExecContext ctx;

  core::EvalRequest hdl;
  hdl.kind = core::EvalKind::kHdlEmit;
  hdl.spec = spec;
  const core::EvalResponse hresp = core::evaluate(hdl, ctx);
  ASSERT_TRUE(hresp.ok);
  ASSERT_NE(hresp.hdl, nullptr);
  const json::Value hj = core::eval_result_to_json(hresp);
  EXPECT_NE(hj.find("top"), nullptr);
  EXPECT_GT(hj.find("verilog_bytes")->number_or(0), 0.0);
  EXPECT_GT(hj.find("instances_compared")->number_or(0), 0.0);

  core::EvalRequest gate;
  gate.kind = core::EvalKind::kGateSim;
  gate.spec = spec;
  gate.gate_sim.sim.n_samples = 64;
  const core::EvalResponse gresp = core::evaluate(gate, ctx);
  ASSERT_TRUE(gresp.ok);
  ASSERT_NE(gresp.gate, nullptr);
  EXPECT_TRUE(gresp.gate->matches_behavioral);
  const json::Value gj = core::eval_result_to_json(gresp);
  EXPECT_TRUE(gj.find("comparator_ok")->bool_or(false));
  EXPECT_TRUE(gj.find("ring_ok")->bool_or(false));
  EXPECT_TRUE(gj.find("matches_behavioral")->bool_or(false));
  EXPECT_EQ(gj.find("n_samples")->number_or(0), 64.0);
}

TEST(EvalTest, GateLevelBackendGatesSpecDrivenKinds) {
  core::AdcSpec spec = small_spec();
  spec.num_slices = 4;
  core::ArtifactCache cache(128);
  core::ExecContext ctx;
  ctx.cache = &cache;

  // A passing sign-off lets the driver run as usual.
  core::EvalRequest req;
  req.kind = core::EvalKind::kSynthesize;
  req.spec = spec;
  req.backend = core::SimBackend::kGateLevel;
  req.gate_sim.sim.n_samples = 64;
  const core::EvalResponse ok_resp = core::evaluate(req, ctx);
  ASSERT_TRUE(ok_resp.ok);
  ASSERT_NE(ok_resp.synthesis, nullptr);

  // A failing sign-off (unresolvable top) refuses the request before the
  // driver, with the refusal in the response diagnostics.
  core::EvalRequest bad = req;
  bad.gate_sim.top = "no_such_module";
  const core::EvalResponse bad_resp = core::evaluate(bad, ctx);
  EXPECT_FALSE(bad_resp.ok);
  EXPECT_EQ(bad_resp.synthesis, nullptr);
  bool named = false;
  for (const auto& d : bad_resp.diagnostics) {
    if (d.item == "no_such_module") named = true;
  }
  EXPECT_TRUE(named);
}

TEST(EvalTest, MonteCarloShimMatchesEvaluateExactly) {
  const core::AdcSpec spec = small_spec();

  core::MonteCarloOptions opts;
  opts.runs = 2;
  opts.sim.n_samples = 1 << 12;
  opts.exec.threads = 1;
  const core::MonteCarloResult via_shim = core::monte_carlo_sndr(spec, opts);

  core::EvalRequest req;
  req.kind = core::EvalKind::kMonteCarlo;
  req.spec = spec;
  req.monte_carlo = opts;
  core::ExecContext ctx;
  ctx.threads = 1;
  const core::EvalResponse resp = core::evaluate(req, ctx);
  ASSERT_TRUE(resp.ok);

  // Not approximately: the shim *is* evaluate(), so the draws, seeds and
  // reductions are the same computation.
  EXPECT_EQ(resp.monte_carlo.sndr_db, via_shim.sndr_db);
  EXPECT_EQ(resp.monte_carlo.mean_db, via_shim.mean_db);
  EXPECT_EQ(resp.monte_carlo.stddev_db, via_shim.stddev_db);
}

TEST(EvalTest, CornerSweepShimMatchesEvaluateExactly) {
  const core::AdcSpec spec = small_spec();
  const auto via_shim = core::corner_sweep(spec, 1 << 11);

  core::EvalRequest req;
  req.kind = core::EvalKind::kCornerSweep;
  req.spec = spec;
  req.corners.n_samples = 1 << 11;
  core::ExecContext ctx;
  const core::EvalResponse resp = core::evaluate(req, ctx);
  ASSERT_TRUE(resp.ok);

  ASSERT_EQ(resp.corners.size(), via_shim.size());
  for (std::size_t i = 0; i < via_shim.size(); ++i) {
    EXPECT_EQ(resp.corners[i].name, via_shim[i].name);
    EXPECT_EQ(resp.corners[i].sndr_db, via_shim[i].sndr_db);
  }
}

TEST(EvalTest, InvalidSpecFailsWithRequestLocalDiagnostics) {
  core::EvalRequest req;
  req.kind = core::EvalKind::kDatasheet;
  req.spec = small_spec();
  req.spec.num_slices = 1;  // rejected: pseudo-differential ring needs >= 2
  req.datasheet.n_samples = 1 << 12;

  core::ExecContext ctx;  // deliberately no sink: nothing to leak into
  const core::EvalResponse resp = core::evaluate(req, ctx);
  EXPECT_FALSE(resp.ok);
  EXPECT_FALSE(resp.diagnostics.empty());

  bool found_error = false;
  for (const auto& d : resp.diagnostics) {
    if (d.severity == util::Severity::kError) found_error = true;
  }
  EXPECT_TRUE(found_error);
}

TEST(EvalTest, DiagnosticsAreReEmittedIntoTheContextSink) {
  core::EvalRequest req;
  req.kind = core::EvalKind::kMigrate;
  req.spec = small_spec();
  req.migrate_target_node_nm = 180;

  util::DiagSink sink;
  core::ExecContext ctx;
  ctx.diag = &sink;
  const core::EvalResponse resp = core::evaluate(req, ctx);
  ASSERT_TRUE(resp.ok);
  ASSERT_NE(resp.migrated, nullptr);
  EXPECT_NE(resp.migrated->target_lib, nullptr);
  // Everything in the response's diagnostics also reached the caller's
  // sink (the response is authoritative; the sink is a convenience).
  EXPECT_EQ(sink.size(), resp.diagnostics.size());
}

TEST(EvalTest, ResultJsonAndFingerprintAreStable) {
  core::EvalRequest req;
  req.kind = core::EvalKind::kCornerSweep;
  req.spec = small_spec();
  req.corners.n_samples = 1 << 11;
  core::ExecContext ctx;

  const core::EvalResponse r1 = core::evaluate(req, ctx);
  const core::EvalResponse r2 = core::evaluate(req, ctx);
  ASSERT_TRUE(r1.ok);
  const json::Value j1 = core::eval_result_to_json(r1);
  const json::Value j2 = core::eval_result_to_json(r2);
  EXPECT_EQ(json::dump(j1), json::dump(j2));
  EXPECT_EQ(core::eval_result_fingerprint(j1),
            core::eval_result_fingerprint(j2));
  EXPECT_EQ(core::eval_result_fingerprint(j1).size(), 32u);  // 128-bit hex

  // A different result must fingerprint differently.
  core::EvalRequest other = req;
  other.spec.num_slices = 8;
  const core::EvalResponse r3 = core::evaluate(other, ctx);
  ASSERT_TRUE(r3.ok);
  EXPECT_NE(core::eval_result_fingerprint(core::eval_result_to_json(r3)),
            core::eval_result_fingerprint(j1));
}

TEST(EvalTest, DatasheetShimMatchesEvaluate) {
  const core::AdcSpec spec = small_spec();
  core::DatasheetOptions opts;
  opts.n_samples = 1 << 12;
  const core::Datasheet via_shim = core::generate_datasheet(spec, opts);
  ASSERT_TRUE(via_shim.complete);

  core::EvalRequest req;
  req.kind = core::EvalKind::kDatasheet;
  req.spec = spec;
  req.datasheet = opts;
  core::ExecContext ctx;
  const core::EvalResponse resp = core::evaluate(req, ctx);
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.datasheet.render(), via_shim.render());
}

}  // namespace
