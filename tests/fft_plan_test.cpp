// Tests for the plan-based FFT layer: round trips, equivalence of the
// real-input fast path against both the complex path and a naive DFT, and
// Goertzel vs FFT-bin agreement.
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "dsp/fft.h"
#include "util/rng.h"

namespace vcoadc {
namespace {

using dsp::Complex;

std::vector<double> random_reals(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

std::vector<Complex> random_complex(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Complex> x(n);
  for (Complex& v : x) v = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  return x;
}

/// O(n^2) reference DFT.
std::vector<Complex> naive_dft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) *
                         static_cast<double>(j) / static_cast<double>(n);
      acc += x[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

TEST(FftPlanTest, ForwardInverseRoundTrip) {
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{16},
                        std::size_t{256}, std::size_t{4096}}) {
    const dsp::FftPlan plan(n);
    EXPECT_EQ(plan.size(), n);
    const std::vector<Complex> orig = random_complex(n, 7 + n);
    std::vector<Complex> data = orig;
    plan.forward(data.data());
    plan.inverse(data.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-10) << "n=" << n;
      EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-10) << "n=" << n;
    }
  }
}

TEST(FftPlanTest, MatchesNaiveDftAcrossSizes) {
  // 2^4 .. 2^12 as required by the plan's acceptance envelope.
  for (std::size_t lg = 4; lg <= 12; ++lg) {
    const std::size_t n = std::size_t{1} << lg;
    std::vector<Complex> data = random_complex(n, 100 + lg);
    const std::vector<Complex> ref = naive_dft(data);
    dsp::FftPlan::of(n).forward(data.data());
    // Naive DFT error grows with n; scale the tolerance accordingly.
    const double tol = 1e-9 * static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(data[k].real(), ref[k].real(), tol) << "n=" << n << " k=" << k;
      EXPECT_NEAR(data[k].imag(), ref[k].imag(), tol) << "n=" << n << " k=" << k;
    }
  }
}

TEST(FftPlanTest, FreeFunctionsRouteThroughPlans) {
  const std::size_t n = 512;
  std::vector<Complex> a = random_complex(n, 3);
  std::vector<Complex> b = a;
  dsp::fft_in_place(a);
  dsp::FftPlan::of(n).forward(b.data());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_EQ(a[k], b[k]);  // same code path => bit-identical
  }
  dsp::ifft_in_place(a);
  dsp::FftPlan::of(n).inverse(b.data());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_EQ(a[k], b[k]);
  }
}

TEST(RealFftPlanTest, MatchesComplexPathAcrossSizes) {
  for (std::size_t lg = 4; lg <= 12; ++lg) {
    const std::size_t n = std::size_t{1} << lg;
    const std::vector<double> x = random_reals(n, 200 + lg);

    // Complex reference: same signal with zero imaginary part.
    std::vector<Complex> ref(x.begin(), x.end());
    dsp::fft_in_place(ref);

    const dsp::RealFftPlan& plan = dsp::RealFftPlan::of(n);
    ASSERT_EQ(plan.out_size(), n / 2 + 1);
    std::vector<Complex> half;
    plan.forward(x, half);

    const double tol = 1e-11 * static_cast<double>(n);
    for (std::size_t k = 0; k <= n / 2; ++k) {
      EXPECT_NEAR(half[k].real(), ref[k].real(), tol) << "n=" << n << " k=" << k;
      EXPECT_NEAR(half[k].imag(), ref[k].imag(), tol) << "n=" << n << " k=" << k;
    }
  }
}

TEST(RealFftPlanTest, FftRealMirrorsUpperHalf) {
  const std::size_t n = 1024;
  const std::vector<double> x = random_reals(n, 11);
  const std::vector<Complex> full = dsp::fft_real(x);
  ASSERT_EQ(full.size(), n);
  // A real signal's spectrum is conjugate-symmetric: X[n-k] = conj(X[k]).
  for (std::size_t k = 1; k < n / 2; ++k) {
    EXPECT_EQ(full[n - k], std::conj(full[k]));
  }
  // And matches the complex transform.
  std::vector<Complex> ref(x.begin(), x.end());
  dsp::fft_in_place(ref);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(full[k] - ref[k]), 0.0, 1e-8);
  }
}

TEST(RealFftPlanTest, TinySizes) {
  // n = 2: X[0] = x0 + x1, X[1] = x0 - x1.
  const dsp::RealFftPlan plan2(2);
  std::vector<Complex> out;
  plan2.forward(std::vector<double>{3.0, 5.0}, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].real(), 8.0);
  EXPECT_DOUBLE_EQ(out[0].imag(), 0.0);
  EXPECT_DOUBLE_EQ(out[1].real(), -2.0);
  EXPECT_DOUBLE_EQ(out[1].imag(), 0.0);

  // n = 4 against the closed form.
  const dsp::RealFftPlan plan4(4);
  plan4.forward(std::vector<double>{1.0, 2.0, 3.0, 4.0}, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NEAR(out[0].real(), 10.0, 1e-12);   // sum
  EXPECT_NEAR(out[1].real(), -2.0, 1e-12);   // 1 - 3 + j(4 - 2)... => -2 + 2j
  EXPECT_NEAR(out[1].imag(), 2.0, 1e-12);
  EXPECT_NEAR(out[2].real(), -2.0, 1e-12);   // alternating sum
  EXPECT_NEAR(out[2].imag(), 0.0, 1e-12);
}

TEST(GoertzelTest, AgreesWithFftBin) {
  const std::size_t n = 2048;
  // A couple of coherent tones plus noise; check several bins including the
  // tone bins.
  std::vector<double> x = random_reals(n, 17);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    x[i] = 0.02 * x[i] +
           0.7 * std::sin(2.0 * std::numbers::pi * 37.0 * t / n) +
           0.1 * std::cos(2.0 * std::numbers::pi * 301.0 * t / n);
  }
  const std::vector<Complex> spec = dsp::fft_real(x);
  for (std::size_t bin : {std::size_t{0}, std::size_t{1}, std::size_t{37},
                          std::size_t{301}, std::size_t{900}}) {
    const Complex g = dsp::goertzel(x, bin);
    EXPECT_NEAR(g.real(), spec[bin].real(), 1e-7) << "bin=" << bin;
    EXPECT_NEAR(g.imag(), spec[bin].imag(), 1e-7) << "bin=" << bin;
  }
}

}  // namespace
}  // namespace vcoadc
