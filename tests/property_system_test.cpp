// Parameterized property sweeps over the system layers: modulator
// invariants across seeds and slice counts, synthesis invariants across
// nodes and floorplan settings, migration across node pairs.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/adc.h"
#include "core/adc_spec.h"
#include "core/migration.h"
#include "dsp/signal_gen.h"
#include "msim/modulator.h"
#include "netlist/generator.h"
#include "synth/power_grid.h"
#include "synth/synthesis_flow.h"
#include "tech/tech_node.h"

namespace vcoadc {
namespace {

// ------------------------------------------------ modulator invariants ----
class ModulatorSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModulatorSeeds, OutputsBoundedAndDeterministic) {
  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  spec.seed = GetParam();
  const msim::SimConfig cfg = spec.to_sim_config();
  msim::VcoDsmModulator a(cfg);
  msim::VcoDsmModulator b(cfg);
  const std::size_t n = 2048;
  const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n);
  const auto sig = dsp::make_sine(0.5 * a.full_scale_diff(), fin);
  const auto ra = a.run(sig, n);
  const auto rb = b.run(sig, n);
  ASSERT_EQ(ra.output.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(ra.counts[i], 0);
    EXPECT_LE(ra.counts[i], cfg.num_slices);
    EXPECT_GE(ra.output[i], -1.0);
    EXPECT_LE(ra.output[i], 1.0);
    EXPECT_EQ(ra.counts[i], rb.counts[i]) << "non-deterministic at " << i;
  }
  // The control nodes stay in a sane band around the operating point.
  EXPECT_NEAR(ra.mean_vctrlp, cfg.vctrl_mid, 0.2 * cfg.vctrl_mid);
  EXPECT_NEAR(ra.mean_vctrln, cfg.vctrl_mid, 0.2 * cfg.vctrl_mid);
  EXPECT_GT(ra.mean_freq1_hz, 0.0);
  EXPECT_GT(ra.bit_toggle_rate, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModulatorSeeds,
                         ::testing::Values(1u, 2u, 42u, 1234u, 99999u));

class ModulatorSlices : public ::testing::TestWithParam<int> {};

TEST_P(ModulatorSlices, LoopGainAndFullScaleFollowTheSpec) {
  const int slices = GetParam();
  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  spec.num_slices = slices;
  spec.with_nonidealities = false;
  msim::VcoDsmModulator mod(spec.to_sim_config());
  EXPECT_NEAR(mod.loop_gain_lsb_per_clock(), spec.loop_gain,
              0.02 * spec.loop_gain)
      << slices;
  // Input bank mirrors the DAC bank: FS == VREFP == node VDD.
  EXPECT_NEAR(mod.full_scale_diff(), spec.tech_node().vdd, 1e-9);
}

TEST_P(ModulatorSlices, QuantizationGrainShrinksWithSlices) {
  const int slices = GetParam();
  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  spec.num_slices = slices;
  spec.with_nonidealities = false;
  msim::VcoDsmModulator mod(spec.to_sim_config());
  const std::size_t n = 4096;
  const auto res = mod.run(dsp::make_dc(0.0), n);
  // Midscale DC: counts hover around slices/2 within a few LSB.
  for (std::size_t i = 64; i < n; ++i) {
    EXPECT_NEAR(res.counts[i], slices / 2.0, slices / 2.0 + 0.5) << i;
  }
  double mean = 0;
  for (std::size_t i = 64; i < n; ++i) mean += res.output[i];
  mean /= static_cast<double>(n - 64);
  EXPECT_NEAR(mean, 0.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Slices, ModulatorSlices,
                         ::testing::Values(4, 6, 8, 12, 16, 24));

// --------------------------------------------------- OSR scaling law ------
class OsrScaling : public ::testing::TestWithParam<double> {};

TEST_P(OsrScaling, InbandNoiseFollowsFirstOrderLaw) {
  // First-order shaping: in-band quantization-noise POWER grows ~BW^3, so
  // measured SNDR drops ~9 dB per bandwidth octave (one shared capture,
  // different measurement bandwidths).
  static const auto shared = [] {
    core::AdcSpec spec = core::AdcSpec::paper_40nm();
    spec.with_nonidealities = false;
    const msim::SimConfig cfg = spec.to_sim_config();
    msim::VcoDsmModulator mod(cfg);
    const std::size_t n = 1 << 15;
    const double fin = dsp::coherent_freq(500e3, cfg.fs_hz, n);
    const auto res =
        mod.run(dsp::make_sine(0.7 * mod.full_scale_diff(), fin), n);
    struct Shared {
      dsp::Spectrum spec;
      double fin;
    };
    return Shared{dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0,
                                        dsp::WindowKind::kHann),
                  fin};
  }();
  const double bw = GetParam();
  const double sndr_here =
      dsp::analyze_sndr(shared.spec, bw, shared.fin).sndr_db;
  const double sndr_double =
      dsp::analyze_sndr(shared.spec, 2 * bw, shared.fin).sndr_db;
  EXPECT_NEAR(sndr_here - sndr_double, 9.0, 3.5) << "at BW " << bw;
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, OsrScaling,
                         ::testing::Values(2.5e6, 5e6, 10e6));

// ------------------------------------------------- synthesis invariants ---
class SynthesisNodes : public ::testing::TestWithParam<double> {};

TEST_P(SynthesisNodes, FullFlowCleanAtEveryNode) {
  const double node_nm = GetParam();
  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  spec.node_nm = node_nm;
  // Keep the ring realizable at slower nodes: scale the clock (and band)
  // with the node's FO4, as a real port would.
  const auto& db = tech::TechDatabase::standard();
  const double speed = db.at(40).fo4_delay_s / db.at(node_nm).fo4_delay_s;
  spec.fs_hz *= speed;
  spec.bandwidth_hz *= speed;
  ASSERT_TRUE(spec.validate().empty());
  core::AdcDesign adc(spec);
  const auto res = adc.synthesize();
  EXPECT_TRUE(res.drc.clean()) << node_nm;
  EXPECT_EQ(res.detailed_routing.failed_nets, 0) << node_nm;
  EXPECT_EQ(res.detailed_routing.overflowed_edges, 0) << node_nm;
  const synth::PowerGrid grid =
      synth::generate_power_grid(res.layout->floorplan());
  const auto pg = synth::check_power_grid(grid, res.layout->flat(),
                                          res.layout->placement(),
                                          res.layout->floorplan());
  EXPECT_TRUE(pg.clean()) << node_nm;
}

INSTANTIATE_TEST_SUITE_P(Nodes, SynthesisNodes,
                         ::testing::Values(40.0, 65.0, 90.0, 130.0, 180.0));

class FloorplanSettings
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(FloorplanSettings, RegionsAlwaysLegal) {
  const auto [util_target, aspect, slices] = GetParam();
  netlist::CellLibrary lib = netlist::make_standard_library(
      tech::TechDatabase::standard().at(40));
  netlist::add_resistor_cells(lib, tech::TechDatabase::standard().at(40));
  netlist::GeneratorConfig gen;
  gen.num_slices = slices;
  const netlist::Design design = netlist::build_adc_design(lib, gen);
  synth::SynthesisOptions opts;
  opts.target_utilization = util_target;
  opts.aspect_ratio = aspect;
  opts.detailed_route = false;
  const auto res = synth::synthesize(design, opts);
  const auto& fp = res.layout->floorplan();
  for (std::size_t i = 0; i < fp.regions.size(); ++i) {
    EXPECT_TRUE(fp.die.contains(fp.regions[i].rect));
    for (std::size_t j = i + 1; j < fp.regions.size(); ++j) {
      EXPECT_FALSE(fp.regions[i].rect.overlaps(fp.regions[j].rect));
    }
    // Even-row alignment (the power-rail invariant).
    const double rows =
        (fp.regions[i].rect.y - fp.die.y) / fp.row_height_m;
    EXPECT_NEAR(std::fmod(rows + 1e-9, 2.0), 0.0, 1e-6)
        << fp.regions[i].spec.name;
  }
  EXPECT_TRUE(res.drc.clean());
  EXPECT_NEAR(fp.region_area_fraction(), 1.0, 0.08);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FloorplanSettings,
    ::testing::Combine(::testing::Values(0.05, 0.08, 0.25, 0.5),
                       ::testing::Values(0.75, 1.0, 1.5),
                       ::testing::Values(4, 8, 16)));

// ------------------------------------------------------ migration pairs ---
class MigrationPairs
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MigrationPairs, MigratedDesignValidAndSynthesizable) {
  const auto [from_nm, to_nm] = GetParam();
  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  spec.node_nm = from_nm;
  const auto& db = tech::TechDatabase::standard();
  const double speed = db.at(40).fo4_delay_s / db.at(from_nm).fo4_delay_s;
  spec.fs_hz *= speed;
  spec.bandwidth_hz *= speed;
  core::AdcDesign source(spec);
  const tech::TechNode target_node =
      tech::TechDatabase::standard().at(to_nm);
  netlist::CellLibrary target = netlist::make_standard_library(target_node);
  netlist::add_resistor_cells(target, target_node);
  const auto mig = core::migrate_design(source.netlist(), target);
  EXPECT_TRUE(mig.unmappable.empty());
  EXPECT_TRUE(mig.design.validate().empty());
  synth::SynthesisOptions opts;
  opts.detailed_route = false;
  const auto res = synth::synthesize(mig.design, opts);
  EXPECT_TRUE(res.drc.clean());
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, MigrationPairs,
    ::testing::Values(std::make_tuple(40.0, 180.0),
                      std::make_tuple(180.0, 40.0),
                      std::make_tuple(40.0, 90.0),
                      std::make_tuple(90.0, 65.0)));

}  // namespace
}  // namespace vcoadc
