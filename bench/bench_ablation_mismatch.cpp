// Ablation: robustness against mismatch and offset (Sec. 2.2's claim that
// "both the VCO mismatches and comparator offset are high-pass shaped, and
// thus, hardly affect ADC performance"). Sweeps each non-ideality well past
// its realistic magnitude and reports the in-band SNDR.
#include "bench/bench_common.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "msim/modulator.h"

using namespace vcoadc;

namespace {

double sndr_with(msim::SimConfig cfg, double bw) {
  msim::VcoDsmModulator mod(cfg);
  const std::size_t n = 1 << 15;
  const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n);
  const double amp = mod.full_scale_diff() * 0.708;  // -3 dBFS
  const auto res = mod.run(dsp::make_sine(amp, fin), n);
  const auto sp =
      dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0, dsp::WindowKind::kHann);
  return dsp::analyze_sndr(sp, bw, fin).sndr_db;
}

}  // namespace

int main() {
  bench::header("Ablation - mismatch/offset robustness",
                "Sec. 2.2 robustness claims behind Fig. 17's annotation");

  auto spec = core::AdcSpec::paper_40nm();
  spec.with_nonidealities = false;
  const msim::SimConfig base = spec.to_sim_config();
  const double bw = spec.bandwidth_hz;
  const double ref = sndr_with(base, bw);
  std::printf("ideal reference: %.1f dB SNDR\n\n", ref);

  util::Table t("SNDR vs injected non-ideality (40 nm point, -3 dBFS tone)");
  t.set_header({"non-ideality", "magnitude", "SNDR [dB]", "delta [dB]"});
  double worst_realistic = ref;

  auto sweep = [&](const char* name, auto setter,
                   const std::vector<std::pair<std::string, double>>& pts,
                   double realistic) {
    for (const auto& [label, v] : pts) {
      msim::SimConfig c = base;
      setter(c, v);
      const double s = sndr_with(c, bw);
      t.add_row({name, label, bench::fmt("%.1f", s),
                 bench::fmt("%+.1f", s - ref)});
      if (v <= realistic) worst_realistic = std::min(worst_realistic, s);
    }
  };

  sweep("VCO stage delay mismatch",
        [](msim::SimConfig& c, double v) { c.vco_stage_mismatch_sigma = v; },
        {{"sigma 1%", 0.01}, {"sigma 3%", 0.03}, {"sigma 10%", 0.10}}, 0.03);
  sweep("ring Kvco mismatch",
        [](msim::SimConfig& c, double v) { c.vco_kvco_mismatch_sigma = v; },
        {{"sigma 1%", 0.01}, {"sigma 5%", 0.05}}, 0.01);
  sweep("DAC resistor mismatch",
        [](msim::SimConfig& c, double v) { c.r_dac_mismatch_sigma = v; },
        {{"sigma 0.2%", 0.002}, {"sigma 1%", 0.01}, {"sigma 5%", 0.05}},
        0.002);
  sweep("comparator offset",
        [](msim::SimConfig& c, double v) { c.comparator_offset_sigma_v = v; },
        {{"sigma 6 mV", 6e-3}, {"sigma 20 mV", 20e-3}, {"sigma 60 mV", 60e-3}},
        6e-3);
  sweep("clock jitter",
        [](msim::SimConfig& c, double v) { c.clock_jitter_sigma_s = v; },
        {{"0.25 ps", 0.25e-12}, {"1 ps", 1e-12}, {"4 ps", 4e-12}}, 0.25e-12);
  t.print(std::cout);

  std::printf("\nworst SNDR across REALISTIC magnitudes: %.1f dB "
              "(%.1f dB from ideal)\n", worst_realistic,
              worst_realistic - ref);

  bench::shape_check("realistic mismatch/offset costs < 3 dB (robustness)",
                     ref - worst_realistic < 3.0);
  bench::shape_check("ideal reference near the paper's 69.5 dB (+/-5)",
                     std::fabs(ref - 69.5) < 5.0);
  return 0;
}
