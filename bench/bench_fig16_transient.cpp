// Fig. 16 reproduction: post-layout transient simulation of the ADC
// time-domain outputs in 40 nm (fin = 1 MHz) and 180 nm (fin = 250 kHz).
// The multibit output codes trace the input sine with the delta-sigma
// dither riding on top; the decimated stream recovers the sine cleanly.
#include <vector>

#include "bench/bench_common.h"
#include "dsp/decimator.h"
#include "util/ascii_plot.h"

using namespace vcoadc;

namespace {

void transient(const core::AdcSpec& spec, double fin) {
  core::AdcDesign adc(spec);
  core::SimulationOptions opts;
  opts.n_samples = 1 << 14;
  opts.fin_target_hz = fin;
  const auto res = adc.simulate(opts);

  std::printf("\n--- %s, fin = %s ---\n", spec.describe().c_str(),
              util::si_format(res.fin_hz, "Hz").c_str());

  // Raw modulator output over ~2 input periods.
  const std::size_t span = static_cast<std::size_t>(
      2.0 * spec.fs_hz / res.fin_hz);
  std::vector<double> codes(res.mod.counts.begin(),
                            res.mod.counts.begin() +
                                std::min(span, res.mod.counts.size()));
  util::PlotOptions po;
  po.title = "raw modulator output codes (2 input periods)";
  po.x_label = "sample";
  po.height = 16;
  std::printf("%s", util::ascii_plot(codes, po).c_str());

  // Decimated output: CIC(3, OSR/4) then FIR /4.
  const int cic_rate = std::max(1, static_cast<int>(spec.osr() / 4));
  const auto dec = dsp::decimate_chain(res.mod.output, 3, cic_rate, 4);
  std::vector<double> dec_tail(dec.begin() + static_cast<long>(dec.size() / 4),
                               dec.end());
  po.title = util::format("decimated output (CIC3/%d + FIR/4)", cic_rate);
  std::printf("\n%s", util::ascii_plot(dec_tail, po).c_str());

  // Shape: the decimated waveform swings close to the input amplitude.
  double peak = 0;
  for (double v : dec_tail) peak = std::max(peak, std::fabs(v));
  const double expect = res.amplitude_v / res.full_scale_v;
  std::printf("decimated peak %.3f vs input %.3f (of FS)\n", peak, expect);
  bench::shape_check("decimated output tracks the input sine (+/-15%)",
                     std::fabs(peak - expect) < 0.15 * expect);
  bench::shape_check("codes span multiple quantizer levels",
                     *std::max_element(codes.begin(), codes.end()) -
                             *std::min_element(codes.begin(), codes.end()) >=
                         4);
}

}  // namespace

int main() {
  bench::header("Fig. 16 - transient time-domain outputs",
                "Fig. 16a (40 nm, fin 1 MHz), Fig. 16b (180 nm, fin 250 kHz)");
  transient(core::AdcSpec::paper_40nm(), 1e6);
  transient(core::AdcSpec::paper_180nm(), 250e3);
  return 0;
}
