// Ablation: quantify the introduction's argument (Fig. 1 + Sec. 1) - a
// conventional voltage-domain delta-sigma ADC built around an opamp
// degrades as CMOS scales (intrinsic gain collapses, stacking impossible),
// while the proposed time-domain ADC improves. Both are simulated at the
// same fs/BW across nodes.
#include "bench/bench_common.h"
#include "baselines/opamp_dsm.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "msim/modulator.h"

using namespace vcoadc;

namespace {

double vd_sndr(const tech::TechNode& node) {
  baselines::OpampDsmAdc::Params p;
  p.fs_hz = 150e6;
  p.bw_hz = 2e6;
  p.opamp_dc_gain = baselines::OpampDsmAdc::achievable_opamp_gain(node);
  baselines::OpampDsmAdc adc(p);
  const std::size_t n = 1 << 14;
  const double fin = dsp::coherent_freq(300e3, p.fs_hz, n);
  const auto y = adc.run(dsp::make_sine(0.7, fin), n);
  const auto sp = dsp::compute_spectrum(y, p.fs_hz, 1.0, dsp::WindowKind::kHann);
  return dsp::analyze_sndr(sp, p.bw_hz, fin).sndr_db;
}

double td_sndr(double node_nm) {
  auto spec = core::AdcSpec::paper_40nm();
  spec.node_nm = node_nm;
  // Same converter spec across nodes; only the process changes.
  spec.fs_hz = 150e6;
  spec.bandwidth_hz = 2e6;
  msim::SimConfig cfg = spec.to_sim_config();
  msim::VcoDsmModulator mod(cfg);
  const std::size_t n = 1 << 14;
  const double fin = dsp::coherent_freq(300e3, cfg.fs_hz, n);
  const auto res =
      mod.run(dsp::make_sine(mod.full_scale_diff() * 0.708, fin), n);
  const auto sp =
      dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0, dsp::WindowKind::kHann);
  return dsp::analyze_sndr(sp, spec.bandwidth_hz, fin).sndr_db;
}

}  // namespace

int main() {
  bench::header("Ablation - VD (opamp) vs TD (VCO) architecture vs scaling",
                "Sec. 1 / Fig. 1: why TD-AMS, quantified");

  const auto& db = tech::TechDatabase::standard();
  util::Table t("SNDR at fs 150 MHz / BW 2 MHz across nodes");
  t.set_header({"node", "opamp gain (achievable)", "VD opamp DSM [dB]",
                "TD VCO DSM (this work) [dB]"});
  std::vector<double> vd, td;
  for (double node : {500.0, 180.0, 90.0, 40.0, 22.0}) {
    const tech::TechNode tn = db.at(node);
    const double gain = baselines::OpampDsmAdc::achievable_opamp_gain(tn);
    vd.push_back(vd_sndr(tn));
    td.push_back(td_sndr(node));
    t.add_row({tn.name, bench::fmt("%.0f", gain),
               bench::fmt("%.1f", vd.back()), bench::fmt("%.1f", td.back())});
  }
  t.add_footnote("VD integrator leak = 1/A_dc; A collapses with intrinsic "
                 "gain and the 1-stage limit at low VDD");
  t.add_footnote("TD loop unaffected: timing resolution improves with "
                 "scaling (Fig. 1b)");
  t.print(std::cout);

  bench::shape_check("VD SNDR degrades monotonically from 500 nm to 22 nm",
                     vd.front() > vd.back() + 6.0);
  bench::shape_check("TD SNDR holds (+/-4 dB) across the same span",
                     std::fabs(td.front() - td.back()) < 4.0);
  bench::shape_check("crossover: VD wins at 500 nm or ties; TD wins at <=40 nm",
                     td[3] > vd[3] + 6.0 && td[4] > vd[4] + 6.0);
  return 0;
}
