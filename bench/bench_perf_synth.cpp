// google-benchmark microbenchmarks of the layout-synthesis fast path: the
// full synthesize() flow at both paper nodes, the per-stage throughput
// (NetDb build, placement, detailed maze routing, STA, DRC), and the
// interned-HPWL evaluation against an in-bench string-map reference (the
// pre-NetDb implementation, kept here as the speedup baseline).
//
// The custom main() emits a BENCH_JSON summary line plus the [shape OK]
// self-checks that gate the fast path: the interned HPWL must not be slower
// than the string-map reference, both nodes must synthesize DRC-clean with
// zero routing overflow, and 4-thread routing must be bit-identical to
// serial.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "core/adc.h"
#include "core/adc_spec.h"
#include "synth/drc.h"
#include "synth/maze_router.h"
#include "synth/net_db.h"
#include "synth/placer.h"
#include "synth/router.h"
#include "synth/sta.h"
#include "synth/synthesis_flow.h"
#include "tech/tech_node.h"

using namespace vcoadc;

namespace {

/// Everything the per-stage benchmarks need, built once per node.
struct NodeFixture {
  core::AdcDesign adc;
  std::vector<netlist::FlatInstance> flat;
  synth::NetDb db;
  synth::Floorplan fp;
  synth::Placement pl;

  explicit NodeFixture(double nm)
      : adc(nm == 40 ? core::AdcSpec::paper_40nm()
                     : core::AdcSpec::paper_180nm()) {
    flat = adc.netlist().flatten();
    db = synth::NetDb(flat);
    const auto regions = synth::partition_into_regions(flat);
    synth::FloorplanOptions fo;
    fo.target_utilization = 0.08;
    fo.row_height_m = adc.netlist().library().row_height_m();
    double min_width = 1e9;
    for (const auto& c : adc.netlist().library().cells()) {
      if (c.function == "inv") min_width = std::min(min_width, c.width_m);
    }
    fo.site_width_m = min_width / 3.0;
    fp = synth::make_floorplan(regions, fo);
    pl = synth::place(flat, fp, {}, db);
  }

  static NodeFixture& at(double nm) {
    static NodeFixture f40(40.0);
    static NodeFixture f180(180.0);
    return nm == 40 ? f40 : f180;
  }
};

/// The pre-NetDb total-HPWL implementation: rebuild the name-keyed member
/// map, then walk it. Kept verbatim as the speedup reference.
double total_hpwl_string_map(const std::vector<netlist::FlatInstance>& flat,
                             const synth::Placement& pl) {
  std::map<std::string, std::vector<int>> nets;
  for (int i = 0; i < static_cast<int>(flat.size()); ++i) {
    for (const auto& [pin, net] : flat[static_cast<std::size_t>(i)].conn) {
      if (netlist::is_supply_net(net)) continue;
      nets[net].push_back(i);
    }
  }
  double total = 0;
  for (auto& [name, cells] : nets) {
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    synth::BBox bb;
    for (int c : cells) {
      bb.expand(pl.cells[static_cast<std::size_t>(c)].rect.center());
    }
    total += bb.half_perimeter();
  }
  return total;
}

void BM_Synthesize(benchmark::State& state) {
  const double nm = static_cast<double>(state.range(0));
  core::AdcDesign adc(nm == 40 ? core::AdcSpec::paper_40nm()
                               : core::AdcSpec::paper_180nm());
  for (auto _ : state) {
    auto res = adc.synthesize();
    benchmark::DoNotOptimize(res.stats.die_area_m2);
  }
}
BENCHMARK(BM_Synthesize)->Arg(40)->Arg(180)->Unit(benchmark::kMillisecond);

void BM_NetDbBuild(benchmark::State& state) {
  auto& f = NodeFixture::at(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    synth::NetDb db(f.flat);
    benchmark::DoNotOptimize(db.num_nets());
  }
}
BENCHMARK(BM_NetDbBuild)->Arg(40)->Arg(180);

void BM_Place(benchmark::State& state) {
  auto& f = NodeFixture::at(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    auto pl = synth::place(f.flat, f.fp, {}, f.db);
    benchmark::DoNotOptimize(pl.cells.data());
  }
}
BENCHMARK(BM_Place)->Arg(40)->Arg(180)->Unit(benchmark::kMillisecond);

void BM_MazeRoute(benchmark::State& state) {
  auto& f = NodeFixture::at(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    auto mr = synth::maze_route(f.flat, f.pl, f.fp.die, {}, f.db);
    benchmark::DoNotOptimize(mr.total_wirelength_m);
  }
}
BENCHMARK(BM_MazeRoute)->Arg(40)->Arg(180)->Unit(benchmark::kMillisecond);

void BM_TotalHpwlNetDb(benchmark::State& state) {
  auto& f = NodeFixture::at(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::total_hpwl(f.db, f.pl));
  }
}
BENCHMARK(BM_TotalHpwlNetDb)->Arg(40)->Arg(180);

void BM_TotalHpwlStringMap(benchmark::State& state) {
  auto& f = NodeFixture::at(static_cast<double>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(total_hpwl_string_map(f.flat, f.pl));
  }
}
BENCHMARK(BM_TotalHpwlStringMap)->Arg(40)->Arg(180);

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

template <typename F>
double time_ms(F&& f, double budget_s = 0.5) {
  const auto t0 = std::chrono::steady_clock::now();
  int reps = 0;
  double elapsed = 0;
  do {
    f();
    ++reps;
    elapsed = seconds_since(t0);
  } while (elapsed < budget_s);
  return elapsed / reps * 1e3;
}

bool routing_identical(const synth::MazeRouteResult& a,
                       const synth::MazeRouteResult& b) {
  if (a.total_wirelength_m != b.total_wirelength_m ||
      a.total_vias != b.total_vias ||
      a.overflowed_edges != b.overflowed_edges ||
      a.failed_nets != b.failed_nets || a.nets.size() != b.nets.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    if (!(a.nets[i].paths == b.nets[i].paths)) return false;
  }
  return true;
}

void emit_summary() {
  bench::header("Layout-synthesis fast path",
                "Sec. 3 flow (Fig. 9) as an engine benchmark");

  double synth_ms[2] = {0, 0};
  double route_ms[2] = {0, 0};
  double place_ms[2] = {0, 0};
  bool drc_clean = true;
  bool no_overflow = true;
  bool parallel_ok = true;
  int idx = 0;
  for (double nm : {40.0, 180.0}) {
    core::AdcDesign adc(nm == 40 ? core::AdcSpec::paper_40nm()
                                 : core::AdcSpec::paper_180nm());
    synth::SynthesisOptions so;
    auto res = adc.synthesize(so);
    drc_clean &= res.drc.clean();
    no_overflow &= res.detailed_routing.overflowed_edges == 0 &&
                   res.detailed_routing.failed_nets == 0;
    so.threads = 4;
    auto res4 = adc.synthesize(so);
    parallel_ok &=
        routing_identical(res.detailed_routing, res4.detailed_routing);

    synth_ms[idx] = time_ms([&] {
      auto r = adc.synthesize();
      benchmark::DoNotOptimize(r.stats.die_area_m2);
    });
    auto& f = NodeFixture::at(nm);
    place_ms[idx] = time_ms([&] {
      auto pl = synth::place(f.flat, f.fp, {}, f.db);
      benchmark::DoNotOptimize(pl.cells.data());
    });
    route_ms[idx] = time_ms([&] {
      auto mr = synth::maze_route(f.flat, f.pl, f.fp.die, {}, f.db);
      benchmark::DoNotOptimize(mr.total_wirelength_m);
    });
    std::printf("  node %3.0f nm: synthesize %.2f ms (place %.2f, route %.2f)"
                " | routed %.1f um, %d vias, %d overflow, DRC %zu\n",
                nm, synth_ms[idx], place_ms[idx], route_ms[idx],
                res.detailed_routing.total_wirelength_m * 1e6,
                res.detailed_routing.total_vias,
                res.detailed_routing.overflowed_edges,
                res.drc.violations.size());
    ++idx;
  }

  // Interned HPWL vs the string-map reference on the 40 nm placement.
  auto& f40 = NodeFixture::at(40.0);
  const double hpwl_db = synth::total_hpwl(f40.db, f40.pl);
  const double hpwl_ref = total_hpwl_string_map(f40.flat, f40.pl);
  const double netdb_ms = time_ms(
      [&] { benchmark::DoNotOptimize(synth::total_hpwl(f40.db, f40.pl)); },
      0.2);
  const double strmap_ms = time_ms(
      [&] {
        benchmark::DoNotOptimize(total_hpwl_string_map(f40.flat, f40.pl));
      },
      0.2);
  const double hpwl_speedup = strmap_ms / netdb_ms;

  bench::shape_check("interned HPWL matches the string-map value exactly",
                     hpwl_db == hpwl_ref);
  bench::shape_check("interned HPWL is not slower than the string-map path",
                     hpwl_speedup >= 1.0);
  bench::shape_check("both nodes synthesize DRC-clean", drc_clean);
  bench::shape_check("zero routing overflow / failed nets at both nodes",
                     no_overflow);
  bench::shape_check("4-thread routing bit-identical to serial",
                     parallel_ok);

  std::printf(
      "\nBENCH_JSON {\"bench\":\"perf_synth\","
      "\"synth_40nm_ms\":%.2f,\"synth_180nm_ms\":%.2f,"
      "\"place_40nm_ms\":%.2f,\"route_40nm_ms\":%.2f,"
      "\"route_180nm_ms\":%.2f,\"hpwl_speedup\":%.1f,"
      "\"drc_clean\":%s,\"parallel_identical\":%s}\n",
      synth_ms[0], synth_ms[1], place_ms[0], route_ms[0], route_ms[1],
      hpwl_speedup, drc_clean && no_overflow ? "true" : "false",
      parallel_ok ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_summary();
  return 0;
}
