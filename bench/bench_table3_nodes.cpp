// Table 3 reproduction: full performance comparison between the 40 nm and
// 180 nm implementations - fs, BW, SNDR, power, area, Walden FOM - via the
// complete flow (netlist -> synthesis -> post-layout-style simulation with
// extracted wire load).
//
// The two nodes are independent full-flow evaluations, so they run
// concurrently on the evaluation engine; results stay ordered by node.
#include "bench/bench_common.h"
#include "core/artifact_cache.h"
#include "core/batch.h"

using namespace vcoadc;

int main() {
  bench::header("Table 3 - performance in 40 nm vs 180 nm",
                "Table 3 (+ ENOB/FOM footnote formulas)");

  struct Node {
    core::AdcSpec spec;
    double fin_hz;
  };
  const Node nodes[] = {{core::AdcSpec::paper_40nm(), 1e6},
                        {core::AdcSpec::paper_180nm(), 250e3}};
  core::ExecContext ctx;  // both nodes share the default artifact cache
  core::BatchRunner runner(ctx);
  const auto reports =
      runner.map(std::size(nodes), [&](std::size_t i, std::uint64_t) {
        return bench::run_node(nodes[i].spec, nodes[i].fin_hz,
                               bench::kSpectrumSamples, ctx);
      });
  const core::NodeReport& rep40 = reports[0];
  const core::NodeReport& rep180 = reports[1];
  const core::ArtifactCacheStats cs = ctx.cache->stats();
  std::printf("both nodes evaluated in %.2f s on %d threads "
              "(cache: %llu hits / %llu misses)\n",
              runner.last_stats().wall_s, runner.last_stats().threads,
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses));

  util::Table t("Table 3 (paper value in parentheses)");
  t.set_header({"Process", "fs [MHz]", "BW [MHz]", "SNDR [dB]", "Power [mW]",
                "Area [mm^2]", "FOM [fJ/conv]"});
  auto row = [&](const char* proc, const core::NodeReport& r, double fs,
                 double bw, const char* paper) {
    t.add_row({proc, bench::fmt("%.0f", fs / 1e6), bench::fmt("%.1f", bw / 1e6),
               bench::fmt("%.1f", r.run.sndr.sndr_db),
               bench::fmt("%.2f", r.run.power.total_w() * 1e3),
               bench::fmt("%.4f", r.area_mm2),
               bench::fmt("%.0f", r.run.fom_fj) + std::string("  ") + paper});
  };
  row("40 nm", rep40, 750e6, 5e6, "(paper: 69.5 dB, 1.37 mW, 0.012, 56.2)");
  row("180 nm", rep180, 250e6, 1.4e6, "(paper: 69.5 dB, 5.45 mW, 0.151, 798)");
  t.add_footnote("ENOB = (SNDR - 1.76)/6.02, FOM = P / (2^ENOB * 2 * BW)");
  t.print(std::cout);

  const double p_ratio =
      rep180.run.power.total_w() / rep40.run.power.total_w();
  const double a_ratio = rep180.area_mm2 / rep40.area_mm2;
  const double f_ratio = rep180.run.fom_fj / rep40.run.fom_fj;
  std::printf("\nscaling gains moving 180 nm -> 40 nm:  power %.1fx  "
              "area %.1fx  FOM %.1fx\n", p_ratio, a_ratio, f_ratio);
  std::printf("paper:                                power 4.0x  area 12.6x  "
              "FOM 14.2x\n");

  bench::shape_check("both nodes reach comparable SNDR (paper: equal 69.5)",
                     std::fabs(rep40.run.sndr.sndr_db -
                               rep180.run.sndr.sndr_db) < 6.0);
  bench::shape_check("SNDR within 5 dB of 69.5 at both nodes",
                     std::fabs(rep40.run.sndr.sndr_db - 69.5) < 5.0 &&
                         std::fabs(rep180.run.sndr.sndr_db - 69.5) < 5.0);
  bench::shape_check("40 nm wins power by >2.5x (paper 4.0x)", p_ratio > 2.5);
  bench::shape_check("40 nm wins area by 6-25x (paper 12.6x)",
                     a_ratio > 6.0 && a_ratio < 25.0);
  bench::shape_check("40 nm wins FOM by >5x (paper 14.2x)", f_ratio > 5.0);
  bench::shape_check("powers within ~2x of the paper's absolute numbers",
                     rep40.run.power.total_w() > 0.68e-3 &&
                         rep40.run.power.total_w() < 2.8e-3 &&
                         rep180.run.power.total_w() > 2.7e-3 &&
                         rep180.run.power.total_w() < 11e-3);
  return 0;
}
