// Ablation: timing signoff across nodes (the "within the ADC performance
// boundary in a given process" clause of Sec. 2.2, quantified by STA).
// The netlist's combinational feedback path bounds the usable clock; the
// bound improves with the node's FO4 - the timing face of the paper's
// scaling-compatibility claim.
#include "bench/bench_common.h"
#include "synth/sta.h"
#include "tech/tech_node.h"

using namespace vcoadc;

int main() {
  bench::header("Ablation - STA across nodes",
                "Sec. 2.2 clock-frequency boundary, via static timing");

  util::Table t("critical combinational path of the generated netlist");
  t.set_header({"node", "critical delay [ps]", "max clock [GHz]",
                "slack @ paper fs [ps]", "loops cut"});
  std::vector<double> max_clk;
  const auto& db = tech::TechDatabase::standard();
  for (double node_nm : {180.0, 130.0, 90.0, 65.0, 40.0}) {
    core::AdcSpec spec = core::AdcSpec::paper_40nm();
    spec.node_nm = node_nm;
    // Keep the spec realizable at slow nodes (the netlist under timing
    // analysis is identical either way).
    const double speed =
        db.at(40).fo4_delay_s / db.at(node_nm).fo4_delay_s;
    spec.fs_hz *= speed;
    spec.bandwidth_hz *= speed;
    core::AdcDesign adc(spec);
    const auto synth_res = adc.synthesize();
    synth::TimingOptions opts;
    opts.clock_period_s = (node_nm >= 130) ? 1.0 / 250e6 : 1.0 / 750e6;
    opts.placement = &synth_res.layout->placement();
    const auto rep =
        synth::analyze_timing(adc.netlist(), db.at(node_nm), opts);
    max_clk.push_back(rep.max_clock_hz);
    t.add_row({db.at(node_nm).name,
               bench::fmt("%.1f", rep.critical_delay_s * 1e12),
               bench::fmt("%.2f", rep.max_clock_hz / 1e9),
               bench::fmt("%.0f", rep.slack_s * 1e12),
               std::to_string(rep.loops_cut)});
  }
  t.add_footnote("max clock = 1 / critical combinational delay (XOR -> DB "
                 "inverter -> DAC driver chain); rings/latches are cut loops");
  t.print(std::cout);

  // Critical path detail at 40 nm.
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  synth::TimingOptions opts;
  opts.clock_period_s = 1.0 / 750e6;
  const auto rep = synth::analyze_timing(adc.netlist(), db.at(40), opts);
  std::printf("\n40 nm critical path:\n");
  for (const auto& step : rep.critical_path) {
    std::printf("  %-28s -> %-24s %+6.1f ps (at %6.1f ps)\n",
                step.through_gate.c_str(), step.to_net.c_str(),
                step.arc_delay_s * 1e12, step.arrival_s * 1e12);
  }

  bench::shape_check("max clock improves monotonically with scaling",
                     std::is_sorted(max_clk.begin(), max_clk.end()));
  bench::shape_check("40 nm meets 750 MHz with positive slack",
                     rep.slack_s > 0);
  bench::shape_check(
      "max-clock gain 180 nm -> 40 nm tracks the FO4 ratio (~5.8x)",
      max_clk.back() / max_clk.front() > 3.5 &&
          max_clk.back() / max_clk.front() < 9.0);
  return 0;
}
