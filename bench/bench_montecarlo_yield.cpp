// Extension bench: Monte-Carlo mismatch statistics and PVT corners.
//
// The paper demonstrates robustness with one post-layout run (Sec. 2.2,
// Fig. 17); a generator that ships must quantify it. This bench reports the
// SNDR distribution over independent mismatch draws, the parametric yield
// against a 65 dB spec line, and the classic PVT corner table.
//
// It doubles as the acceptance harness for the parallel evaluation engine:
// the same batch runs at threads = 1 and threads = hardware concurrency,
// the SNDR vectors must be bit-identical (the deterministic seeding
// contract), and the wall-clock speedup is recorded in BENCH JSON so the
// figure is trackable across revisions.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/bench_common.h"
#include "core/artifact_cache.h"
#include "core/artifact_store.h"
#include "core/eval.h"
#include "core/monte_carlo.h"
#include "msim/batched_modulator.h"
#include "util/ascii_plot.h"
#include "util/simd.h"
#include "util/thread_pool.h"

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

using namespace vcoadc;

int main(int argc, char** argv) {
  const std::string json_out = bench::json_out_path(&argc, argv);
  bench::header("Extension - Monte-Carlo mismatch yield and PVT corners",
                "statistical backing for the Sec. 2.2 robustness claims");

  const auto spec = core::AdcSpec::paper_40nm();
  // Build the design once; mismatch draws only perturb the behavioral
  // model, so every MC run and every corner shares this object read-only.
  const core::AdcDesign adc(spec);

  core::MonteCarloOptions opts;
  opts.runs = 16;
  opts.sim.n_samples = 1 << 14;

  // Serial and parallel cold runs get separate fresh caches so both truly
  // compute every draw; the warm run reuses the parallel run's cache and
  // must be all hits.
  core::ArtifactCache cache_serial(64), cache_parallel(64);

  opts.exec.threads = 1;  // serial reference
  opts.exec.cache = &cache_serial;
  const auto mc_serial = core::monte_carlo_sndr(adc, opts);
  opts.exec.threads = 0;  // hardware concurrency
  opts.exec.cache = &cache_parallel;
  const auto mc = core::monte_carlo_sndr(adc, opts);
  const auto mc_warm = core::monte_carlo_sndr(adc, opts);  // cache hot

  bool bit_identical = mc.sndr_db.size() == mc_serial.sndr_db.size();
  for (std::size_t i = 0; bit_identical && i < mc.sndr_db.size(); ++i) {
    bit_identical = (mc.sndr_db[i] == mc_serial.sndr_db[i]);
  }
  bool warm_identical = mc_warm.sndr_db.size() == mc.sndr_db.size();
  for (std::size_t i = 0; warm_identical && i < mc.sndr_db.size(); ++i) {
    warm_identical = (mc_warm.sndr_db[i] == mc.sndr_db[i]);
  }
  const double speedup =
      mc.batch.wall_s > 0 ? mc_serial.batch.wall_s / mc.batch.wall_s : 0.0;
  const double warm_speedup =
      mc_warm.batch.wall_s > 0 ? mc.batch.wall_s / mc_warm.batch.wall_s : 0.0;
  const double cache_hit_rate = cache_parallel.stats().hit_rate();
  const int hw = static_cast<int>(util::ThreadPool::hardware_workers());

  util::Table t("SNDR over independent mismatch draws (40 nm point)");
  t.set_header({"run", "SNDR [dB]", "wall [ms]"});
  for (std::size_t i = 0; i < mc.sndr_db.size(); ++i) {
    t.add_row({std::to_string(i), bench::fmt("%.2f", mc.sndr_db[i]),
               bench::fmt("%.0f", mc.batch.task_wall_s[i] * 1e3)});
  }
  t.print(std::cout);
  std::printf(
      "\nmean %.2f dB | sigma %.2f dB | min %.2f | max %.2f | yield@65dB "
      "%.0f%%\n",
      mc.mean_db, mc.stddev_db, mc.min_db, mc.max_db,
      mc.yield(65.0) * 100.0);
  std::printf(
      "engine: %d threads | serial %.2f s -> parallel %.2f s | speedup "
      "%.2fx | utilization %.0f%% | max queue depth %zu\n",
      mc.batch.threads, mc_serial.batch.wall_s, mc.batch.wall_s, speedup,
      mc.batch.utilization * 100.0, mc.batch.max_queue_depth);
  std::printf(
      "cache: cold %.2f s -> warm %.3f s | warm speedup %.1fx | hit rate "
      "%.0f%%\n",
      mc.batch.wall_s, mc_warm.batch.wall_s, warm_speedup,
      cache_hit_rate * 100.0);

  // Persistent-store phase: phase A runs cold into a fresh store, phase B
  // runs with a fresh in-process cache over the same store directory — the
  // cross-process warm start, measured in-process. Every stage build in
  // phase B must come off disk (store_cold_builds == 0).
  namespace fs = std::filesystem;
  const std::string store_dir =
      (fs::temp_directory_path() /
       ("vcoadc_bench_store_" + std::to_string(getpid())))
          .string();
  fs::remove_all(store_dir);
  double wall_persist_cold = 0, wall_persist_warm = 0;
  std::uint64_t store_cold_builds = 0;
  bool persistent_identical = false;
  {
    core::MonteCarloOptions popts = opts;
    core::ArtifactCache cache_a(64);
    core::ArtifactStore store_a(store_dir);
    popts.exec.cache = &cache_a;
    popts.exec.store = &store_a;
    const auto mc_a = core::monte_carlo_sndr(adc, popts);
    wall_persist_cold = mc_a.batch.wall_s;

    core::ArtifactCache cache_b(64);
    core::ArtifactStore store_b(store_dir);
    popts.exec.cache = &cache_b;
    popts.exec.store = &store_b;
    const auto mc_b = core::monte_carlo_sndr(adc, popts);
    wall_persist_warm = mc_b.batch.wall_s;
    store_cold_builds = store_b.stats().misses;

    persistent_identical = mc_b.sndr_db.size() == mc.sndr_db.size();
    for (std::size_t i = 0; persistent_identical && i < mc.sndr_db.size();
         ++i) {
      persistent_identical = (mc_b.sndr_db[i] == mc.sndr_db[i]);
    }

    // Lifecycle cost: bound the store to half its resident size and time
    // the LRU gc pass — the price a long-lived serve process pays per
    // gc trigger.
    const auto probe = store_b.gc(~0ull);  // scan only: nothing evicted
    const auto t_gc0 = std::chrono::steady_clock::now();
    const auto gr = store_b.gc(probe.bytes_after / 2);
    const double gc_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_gc0)
            .count();
    std::printf(
        "store gc: %.1f KiB -> %.1f KiB | evicted %llu records in %.1f ms\n",
        static_cast<double>(gr.bytes_before) / 1024.0,
        static_cast<double>(gr.bytes_after) / 1024.0,
        static_cast<unsigned long long>(gr.evicted), gc_wall_s * 1e3);
  }
  fs::remove_all(store_dir);
  const double persistent_warm_speedup =
      wall_persist_warm > 0 ? wall_persist_cold / wall_persist_warm : 0.0;
  std::printf(
      "store: cold %.2f s -> persistent warm %.3f s | speedup %.1fx | "
      "cold stage builds in warm pass %llu\n",
      wall_persist_cold, wall_persist_warm, persistent_warm_speedup,
      static_cast<unsigned long long>(store_cold_builds));

  // Batched-vs-scalar engine phase: the same draws once through the scalar
  // per-draw path (batch_width = 1) and once through the SoA lockstep
  // engine (batch_width = 0 = host-preferred width), each into a fresh
  // cache at one thread so the comparison is engine time, not scheduling.
  // Both go through evaluate() so the serve protocol's result_fp — the
  // fingerprint two processes compare — is what asserts bit-identity.
  const int resolved_width = msim::BatchedModulator::preferred_width();
  double wall_engine_scalar = 0, wall_engine_batched = 0;
  std::string fp_scalar, fp_batched;
  {
    core::EvalRequest req;
    req.kind = core::EvalKind::kMonteCarlo;
    req.spec = spec;
    req.monte_carlo = opts;
    req.monte_carlo.exec = core::ExecContext{};

    core::ArtifactCache cache_eng_scalar(64), cache_eng_batched(64);
    core::ExecContext ectx;
    ectx.threads = 1;

    req.monte_carlo.batch_width = 1;
    ectx.cache = &cache_eng_scalar;
    const auto resp_scalar = core::evaluate(req, ectx);
    wall_engine_scalar = resp_scalar.monte_carlo.batch.wall_s;
    fp_scalar =
        core::eval_result_fingerprint(core::eval_result_to_json(resp_scalar));

    req.monte_carlo.batch_width = 0;
    ectx.cache = &cache_eng_batched;
    const auto resp_batched = core::evaluate(req, ectx);
    wall_engine_batched = resp_batched.monte_carlo.batch.wall_s;
    fp_batched =
        core::eval_result_fingerprint(core::eval_result_to_json(resp_batched));
  }
  const double batched_speedup =
      wall_engine_batched > 0 ? wall_engine_scalar / wall_engine_batched : 0.0;
  std::printf(
      "engine: scalar %.2f s -> batched (width %d, %s) %.2f s | speedup "
      "%.2fx | result_fp %s %s\n",
      wall_engine_scalar, resolved_width,
      util::simd::tier_name(util::simd::active_tier()), wall_engine_batched,
      batched_speedup, fp_batched.c_str(),
      fp_scalar == fp_batched ? "(matches scalar)" : "(MISMATCH)");

  const auto corners = core::corner_sweep(adc, 1 << 14);
  util::Table c("PVT corner sweep");
  c.set_header({"corner", "SNDR [dB]", "power [mW]"});
  for (const auto& cr : corners) {
    c.add_row({cr.name, bench::fmt("%.1f", cr.sndr_db),
               bench::fmt("%.2f", cr.power_w * 1e3)});
  }
  c.print(std::cout);

  double worst_corner = 1e9, tt = 0;
  for (const auto& cr : corners) {
    worst_corner = std::min(worst_corner, cr.sndr_db);
    if (cr.name.rfind("TT  1.00V  27C", 0) == 0) tt = cr.sndr_db;
  }

  // Heterogeneous-lane phase: the corner sweep and the datasheet amplitude
  // sweep run once scalar (batch_width = 1) and once through the SoA
  // engine with per-lane PVT / drive constants (batch_width = 0), each
  // into a fresh cache — the per-entry cache keys are shared between the
  // two paths, so fresh caches are what make the second run actually
  // simulate. evaluate()'s result_fp asserts bit-identity end to end.
  std::string corners_fp_scalar, corners_fp_batched;
  std::string amp_fp_scalar, amp_fp_batched;
  {
    core::EvalRequest creq;
    creq.kind = core::EvalKind::kCornerSweep;
    creq.spec = spec;
    creq.corners.n_samples = 1 << 13;
    core::ExecContext ectx;
    ectx.threads = 1;

    core::ArtifactCache cc_scalar(64), cc_batched(64);
    creq.corners.batch_width = 1;
    ectx.cache = &cc_scalar;
    corners_fp_scalar = core::eval_result_fingerprint(
        core::eval_result_to_json(core::evaluate(creq, ectx)));
    creq.corners.batch_width = 0;
    ectx.cache = &cc_batched;
    corners_fp_batched = core::eval_result_fingerprint(
        core::eval_result_to_json(core::evaluate(creq, ectx)));

    core::EvalRequest dreq;
    dreq.kind = core::EvalKind::kDatasheet;
    dreq.spec = spec;
    dreq.datasheet.n_samples = 1 << 12;
    dreq.datasheet.amp_sweep_points = 4;
    core::ArtifactCache dc_scalar(64), dc_batched(64);
    dreq.datasheet.batch_width = 1;
    ectx.cache = &dc_scalar;
    amp_fp_scalar = core::eval_result_fingerprint(
        core::eval_result_to_json(core::evaluate(dreq, ectx)));
    dreq.datasheet.batch_width = 0;
    ectx.cache = &dc_batched;
    amp_fp_batched = core::eval_result_fingerprint(
        core::eval_result_to_json(core::evaluate(dreq, ectx)));
  }
  std::printf(
      "sweeps: corner result_fp %s %s | amp-sweep result_fp %s %s\n",
      corners_fp_batched.c_str(),
      corners_fp_scalar == corners_fp_batched ? "(matches scalar)"
                                              : "(MISMATCH)",
      amp_fp_batched.c_str(),
      amp_fp_scalar == amp_fp_batched ? "(matches scalar)" : "(MISMATCH)");

  // Machine-readable record so BENCH_*.json tracking sees the speedup.
  const std::string payload = util::format(
      "{\"bench\":\"montecarlo_yield\",\"runs\":%d,"
      "\"threads\":%d,\"hardware_threads\":%d,"
      "\"wall_serial_s\":%.4f,\"wall_parallel_s\":%.4f,"
      "\"speedup\":%.3f,\"utilization\":%.3f,\"max_queue_depth\":%zu,"
      "\"bit_identical\":%s,\"mean_db\":%.3f,\"sigma_db\":%.3f,"
      "\"yield_65db\":%.3f,\"wall_warm_s\":%.4f,\"warm_speedup\":%.3f,"
      "\"cache_hit_rate\":%.3f,\"warm_identical\":%s,"
      "\"wall_persistent_cold_s\":%.4f,\"wall_persistent_warm_s\":%.4f,"
      "\"persistent_warm_speedup\":%.3f,\"store_cold_builds\":%llu,"
      "\"persistent_identical\":%s,"
      "\"batch_width\":%d,\"simd_tier\":\"%s\",\"simd_width\":%d,"
      "\"wall_engine_scalar_s\":%.4f,\"wall_engine_batched_s\":%.4f,"
      "\"batched_speedup\":%.3f,\"result_fp\":\"%s\","
      "\"batched_fp_match\":%s,"
      "\"corners_fp_match\":%s,\"amp_sweep_fp_match\":%s}",
      opts.runs, mc.batch.threads, hw, mc_serial.batch.wall_s,
      mc.batch.wall_s, speedup, mc.batch.utilization,
      mc.batch.max_queue_depth, bit_identical ? "true" : "false", mc.mean_db,
      mc.stddev_db, mc.yield(65.0), mc_warm.batch.wall_s, warm_speedup,
      cache_hit_rate, warm_identical ? "true" : "false",
      wall_persist_cold, wall_persist_warm, persistent_warm_speedup,
      static_cast<unsigned long long>(store_cold_builds),
      persistent_identical ? "true" : "false", resolved_width,
      util::simd::tier_name(util::simd::active_tier()),
      util::simd::active_width(),
      wall_engine_scalar, wall_engine_batched, batched_speedup,
      fp_batched.c_str(), fp_scalar == fp_batched ? "true" : "false",
      corners_fp_scalar == corners_fp_batched ? "true" : "false",
      amp_fp_scalar == amp_fp_batched ? "true" : "false");
  bench::emit_json(json_out, payload);

  bench::shape_check("parallel SNDR vector bit-identical to threads=1",
                     bit_identical);
  bench::shape_check("cached re-run bit-identical to the cold run",
                     warm_identical);
  bench::shape_check("warm re-run >= 1.5x faster than cold",
                     warm_speedup >= 1.5);
  bench::shape_check("persistent warm pass >= 1.5x faster than cold",
                     persistent_warm_speedup >= 1.5);
  bench::shape_check("persistent warm pass built zero stages",
                     store_cold_builds == 0);
  bench::shape_check("persistent warm pass bit-identical to in-process run",
                     persistent_identical);
  bench::shape_check("batched engine result_fp matches the scalar engine",
                     !fp_batched.empty() && fp_scalar == fp_batched);
  bench::shape_check("batched corner sweep result_fp matches scalar",
                     !corners_fp_batched.empty() &&
                         corners_fp_scalar == corners_fp_batched);
  bench::shape_check("batched amplitude sweep result_fp matches scalar",
                     !amp_fp_batched.empty() &&
                         amp_fp_scalar == amp_fp_batched);
  if (hw >= 4) {
    bench::shape_check("engine speedup >= 3x on >= 4 cores", speedup >= 3.0);
  } else {
    std::printf("  [shape ----] speedup check skipped (%d hardware "
                "threads < 4); measured %.2fx\n", hw, speedup);
  }
  bench::shape_check("mismatch sigma < 2 dB across draws",
                     mc.stddev_db < 2.0);
  bench::shape_check("100% yield at a 63 dB spec line",
                     mc.yield(63.0) == 1.0);
  bench::shape_check("worst PVT corner within 8 dB of typical",
                     tt - worst_corner < 8.0);
  return 0;
}
