// Extension bench: Monte-Carlo mismatch statistics and PVT corners.
//
// The paper demonstrates robustness with one post-layout run (Sec. 2.2,
// Fig. 17); a generator that ships must quantify it. This bench reports the
// SNDR distribution over independent mismatch draws, the parametric yield
// against a 65 dB spec line, and the classic PVT corner table.
#include "bench/bench_common.h"
#include "core/monte_carlo.h"
#include "util/ascii_plot.h"

using namespace vcoadc;

int main() {
  bench::header("Extension - Monte-Carlo mismatch yield and PVT corners",
                "statistical backing for the Sec. 2.2 robustness claims");

  const auto spec = core::AdcSpec::paper_40nm();
  core::MonteCarloOptions opts;
  opts.runs = 16;
  opts.n_samples = 1 << 14;
  const auto mc = core::monte_carlo_sndr(spec, opts);

  util::Table t("SNDR over independent mismatch draws (40 nm point)");
  t.set_header({"run", "SNDR [dB]"});
  for (std::size_t i = 0; i < mc.sndr_db.size(); ++i) {
    t.add_row({std::to_string(i), bench::fmt("%.2f", mc.sndr_db[i])});
  }
  t.print(std::cout);
  std::printf(
      "\nmean %.2f dB | sigma %.2f dB | min %.2f | max %.2f | yield@65dB "
      "%.0f%%\n",
      mc.mean_db, mc.stddev_db, mc.min_db, mc.max_db,
      mc.yield(65.0) * 100.0);

  const auto corners = core::corner_sweep(spec, 1 << 14);
  util::Table c("PVT corner sweep");
  c.set_header({"corner", "SNDR [dB]", "power [mW]"});
  for (const auto& cr : corners) {
    c.add_row({cr.name, bench::fmt("%.1f", cr.sndr_db),
               bench::fmt("%.2f", cr.power_w * 1e3)});
  }
  c.print(std::cout);

  double worst_corner = 1e9, tt = 0;
  for (const auto& cr : corners) {
    worst_corner = std::min(worst_corner, cr.sndr_db);
    if (cr.name.rfind("TT  1.00V  27C", 0) == 0) tt = cr.sndr_db;
  }
  bench::shape_check("mismatch sigma < 2 dB across draws",
                     mc.stddev_db < 2.0);
  bench::shape_check("100% yield at a 63 dB spec line",
                     mc.yield(63.0) == 1.0);
  bench::shape_check("worst PVT corner within 8 dB of typical",
                     tt - worst_corner < 8.0);
  return 0;
}
