// Ablation: DAC architecture selection (Sec. 2.2.2 / Fig. 8).
// The paper picks a resistor DAC over a current-steering DAC because
// resistors match well raw and need no analog bias network. Both are
// simulated in the same loop: the current-steering cells get realistic
// percent-level mismatch and a shared bias network with low-frequency
// noise, the resistor DAC gets per-mille matching.
#include "bench/bench_common.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "msim/modulator.h"

using namespace vcoadc;

namespace {

struct Case {
  const char* name;
  msim::DacKind kind;
  double r_mismatch;      // resistor DAC mismatch (when resistor)
  double cs_mismatch;     // current cell mismatch (when current steering)
  double cs_bias_noise;   // relative bias flicker
};

double sndr_for(const Case& c) {
  auto spec = core::AdcSpec::paper_40nm();
  msim::SimConfig cfg = spec.to_sim_config();
  cfg.r_dac_mismatch_sigma = c.r_mismatch;

  msim::VcoDsmModulator::Options opts;
  opts.dac = c.kind;
  // Size the current cells to deliver the same feedback strength as the
  // resistor DAC at midscale: I = (VREFP - Vmid)/Rdac.
  opts.cs_params.num_slices = cfg.num_slices;
  opts.cs_params.unit_current_a =
      (cfg.vrefp - cfg.vctrl_mid) / cfg.r_dac_ohms;
  opts.cs_params.mismatch_sigma = c.cs_mismatch;
  opts.cs_params.bias_flicker_rel = c.cs_bias_noise;

  msim::VcoDsmModulator mod(cfg, opts);
  const std::size_t n = 1 << 15;
  const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n);
  const auto res =
      mod.run(dsp::make_sine(mod.full_scale_diff() * 0.708, fin), n);
  const auto sp =
      dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0, dsp::WindowKind::kHann);
  return dsp::analyze_sndr(sp, spec.bandwidth_hz, fin).sndr_db;
}

}  // namespace

int main() {
  bench::header("Ablation - resistor DAC vs current-steering DAC",
                "Sec. 2.2.2 / Fig. 8 architecture selection");

  const Case cases[] = {
      {"resistor DAC, 0.2% matching (proposed)", msim::DacKind::kResistor,
       0.002, 0, 0},
      {"resistor DAC, 1% matching", msim::DacKind::kResistor, 0.01, 0, 0},
      {"current DAC, ideal bias, 2% mismatch",
       msim::DacKind::kCurrentSteering, 0, 0.02, 0},
      {"current DAC, noisy bias (0.5% 1/f), 2% mismatch",
       msim::DacKind::kCurrentSteering, 0, 0.02, 0.005},
      {"current DAC, noisy bias (2% 1/f), 5% mismatch",
       msim::DacKind::kCurrentSteering, 0, 0.05, 0.02},
  };

  util::Table t("In-band SNDR by feedback DAC implementation (40 nm point)");
  t.set_header({"DAC", "SNDR [dB]"});
  std::vector<double> sndr;
  for (const Case& c : cases) {
    sndr.push_back(sndr_for(c));
    t.add_row({c.name, bench::fmt("%.1f", sndr.back())});
  }
  t.add_footnote("current-steering also requires a manually laid-out bias "
                 "network -> not synthesis friendly (Sec. 2.2.2)");
  t.print(std::cout);

  // Intrinsic CLA (refs [5,6]): same mismatched elements, two mappings.
  util::Table mt("element-mapping ablation (1% DAC element mismatch)");
  mt.set_header({"mapping", "SNDR [dB]", "THD [dB]"});
  double sndr_map[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {
    auto spec = core::AdcSpec::paper_40nm();
    spec.with_nonidealities = false;
    msim::SimConfig cfg = spec.to_sim_config();
    cfg.r_dac_mismatch_sigma = 0.01;
    msim::VcoDsmModulator::Options o;
    o.mapping = mode ? msim::ElementMapping::kStaticThermometer
                     : msim::ElementMapping::kIntrinsicRotation;
    msim::VcoDsmModulator mod(cfg, o);
    const std::size_t n = 1 << 15;
    const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n);
    const auto res =
        mod.run(dsp::make_sine(0.708 * mod.full_scale_diff(), fin), n);
    const auto sp = dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0,
                                          dsp::WindowKind::kHann);
    const auto rep = dsp::analyze_sndr(sp, spec.bandwidth_hz, fin);
    sndr_map[mode] = rep.sndr_db;
    mt.add_row({mode ? "static thermometer (conventional)"
                     : "intrinsic rotation (this architecture)",
                bench::fmt("%.1f", rep.sndr_db),
                bench::fmt("%.1f", rep.thd_db)});
  }
  mt.add_footnote("tap rotation scrambles element usage every ring period - "
                  "the intrinsic CLA of refs [5,6] that shapes mismatch");
  mt.print(std::cout);

  bench::shape_check("resistor DAC reaches the paper-level SNDR",
                     sndr[0] > 63.0);
  bench::shape_check("intrinsic rotation beats static mapping by >8 dB "
                     "under 1% element mismatch",
                     sndr_map[0] > sndr_map[1] + 8.0);
  bench::shape_check("intrinsic CLA shapes pure element mismatch "
                     "(current DAC w/ ideal bias within 4 dB)",
                     sndr[2] > sndr[0] - 4.0);
  bench::shape_check("noisy bias network degrades the current DAC >2 dB",
                     sndr[0] - sndr[3] > 2.0);
  bench::shape_check("heavy bias noise is catastrophic (>6 dB loss)",
                     sndr[0] - sndr[4] > 6.0);
  return 0;
}
