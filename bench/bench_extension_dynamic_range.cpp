// Extension bench: SNDR vs input amplitude - the dynamic-range sweep every
// ADC datasheet carries. Shows the linear 1 dB/dB region, the peak-SNDR
// point, and the first-order overload cliff near (1 - 2/N) of full scale
// that fixes the -3 dBFS test amplitude used throughout this reproduction.
#include "bench/bench_common.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "msim/modulator.h"
#include "util/ascii_plot.h"

using namespace vcoadc;

int main() {
  bench::header("Extension - dynamic range sweep (SNDR vs amplitude)",
                "overload boundary behind Sec. 2.2's design margins");

  const auto spec = core::AdcSpec::paper_40nm();
  const msim::SimConfig cfg = spec.to_sim_config();
  const std::size_t n = 1 << 14;
  const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n);

  util::Table t("SNDR vs amplitude (40 nm, 16 slices)");
  t.set_header({"amplitude [dBFS]", "SNDR [dB]"});
  std::vector<double> amps_db, sndrs;
  for (double dbfs = -60; dbfs <= 0.01; dbfs += 3.0) {
    msim::VcoDsmModulator mod(cfg);
    const double amp = mod.full_scale_diff() * util::from_db_amplitude(dbfs);
    const auto res = mod.run(dsp::make_sine(amp, fin), n);
    const auto sp = dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0,
                                          dsp::WindowKind::kHann);
    const auto rep = dsp::analyze_sndr(sp, spec.bandwidth_hz, fin);
    amps_db.push_back(dbfs);
    sndrs.push_back(rep.sndr_db);
    t.add_row({bench::fmt("%.0f", dbfs), bench::fmt("%.1f", rep.sndr_db)});
  }
  t.print(std::cout);

  util::PlotOptions po;
  po.title = "SNDR [dB] vs input amplitude [dBFS]";
  po.x_label = "amplitude [dBFS]";
  po.height = 18;
  std::printf("\n%s", util::ascii_plot(amps_db, sndrs, po).c_str());

  // Peak SNDR and its amplitude; dynamic range (extrapolated 0 dB SNDR).
  double peak = 0, peak_amp = 0;
  for (std::size_t i = 0; i < sndrs.size(); ++i) {
    if (sndrs[i] > peak) {
      peak = sndrs[i];
      peak_amp = amps_db[i];
    }
  }
  // Linearity of the low-amplitude region: slope ~1 dB/dB.
  double slope_lo = (sndrs[5] - sndrs[0]) / (amps_db[5] - amps_db[0]);
  std::printf("\npeak SNDR %.1f dB at %.0f dBFS | low-region slope %.2f "
              "dB/dB | overload: SNDR at 0 dBFS = %.1f dB\n",
              peak, peak_amp, slope_lo, sndrs.back());

  const double theory_overload =
      20.0 * std::log10(1.0 - 2.0 / spec.num_slices);
  std::printf("first-order overload bound (1 - 2/N): %.1f dBFS\n",
              theory_overload);

  bench::shape_check("SNDR tracks amplitude ~1 dB/dB at low levels",
                     std::fabs(slope_lo - 1.0) < 0.3);
  bench::shape_check("peak SNDR lands between -6 and -1 dBFS",
                     peak_amp >= -6.0 && peak_amp <= -1.0);
  bench::shape_check("driving to 0 dBFS falls off the overload cliff "
                     "(> 6 dB below peak)",
                     sndrs.back() < peak - 6.0);
  bench::shape_check("peak SNDR near the paper's 69.5 dB (+/-5)",
                     std::fabs(peak - 69.5) < 5.0);
  return 0;
}
