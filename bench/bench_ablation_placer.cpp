// Ablation: placement engine comparison. The paper's reference [13] is the
// authors' own analytical-placement work for analog circuits; this bench
// compares the serpentine connectivity packer against the quadratic
// analytical placer on the generated ADC, at both nodes, under identical
// region constraints - wirelength, routed length, vias, and DRC.
#include "bench/bench_common.h"
#include "synth/power_grid.h"
#include "synth/synthesis_flow.h"

using namespace vcoadc;

int main() {
  bench::header("Ablation - placement engine (serpentine vs quadratic)",
                "region-constrained placement quality; cf. the authors' "
                "analytical placement line of work [13]");

  util::Table t("placement comparison (identical floorplans & constraints)");
  t.set_header({"node", "placer", "HPWL [um]", "routed [um]", "vias",
                "overflow", "DRC"});
  double hpwl[2][2] = {{0, 0}, {0, 0}};
  bool all_clean = true;
  int row = 0;
  for (double node : {40.0, 180.0}) {
    core::AdcSpec spec =
        (node == 40) ? core::AdcSpec::paper_40nm() : core::AdcSpec::paper_180nm();
    core::AdcDesign adc(spec);
    int col = 0;
    for (auto placer :
         {synth::PlacerKind::kSerpentine, synth::PlacerKind::kQuadratic}) {
      synth::SynthesisOptions opts;
      opts.placer = placer;
      const auto res = adc.synthesize(opts);
      hpwl[row][col] = res.routing.total_hpwl_m * 1e6;
      all_clean &= res.drc.clean() &&
                   res.detailed_routing.overflowed_edges == 0;
      t.add_row({(node == 40) ? "40 nm" : "180 nm",
                 placer == synth::PlacerKind::kSerpentine ? "serpentine"
                                                          : "quadratic",
                 bench::fmt("%.0f", res.routing.total_hpwl_m * 1e6),
                 bench::fmt("%.0f",
                            res.detailed_routing.total_wirelength_m * 1e6),
                 std::to_string(res.detailed_routing.total_vias),
                 std::to_string(res.detailed_routing.overflowed_edges),
                 res.drc.clean() ? "clean" : "FAIL"});
      ++col;
    }
    ++row;
  }
  t.print(std::cout);

  std::printf("\nHPWL ratio (quadratic/serpentine): 40 nm %.2f, 180 nm %.2f\n",
              hpwl[0][1] / hpwl[0][0], hpwl[1][1] / hpwl[1][0]);

  bench::shape_check("both engines produce legal, routable, DRC-clean "
                     "layouts at both nodes", all_clean);
  bench::shape_check("engines land within 35% of each other",
                     hpwl[0][1] / hpwl[0][0] < 1.35 &&
                         hpwl[0][0] / hpwl[0][1] < 1.35 &&
                         hpwl[1][1] / hpwl[1][0] < 1.35 &&
                         hpwl[1][0] / hpwl[1][1] < 1.35);
  return 0;
}
