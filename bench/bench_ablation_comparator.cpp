// Ablation: the NOR3-based comparator proposal of Sec. 2.2.1.
// The buffer output common mode sits at ~0.25 V. The prior NAND3-based
// synthesis-friendly comparator [16] needs a HIGH input CM and mis-decides
// there; the proposed NOR3 pair is functionally a strongARM at low CM.
#include "bench/bench_common.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "msim/comparator.h"
#include "msim/modulator.h"

using namespace vcoadc;

namespace {

double sndr_with(msim::ComparatorKind kind, double vcm) {
  auto spec = core::AdcSpec::paper_40nm();
  msim::SimConfig cfg = spec.to_sim_config();
  msim::VcoDsmModulator::Options opts;
  opts.comparator = kind;
  opts.input_cm_v = vcm;
  msim::VcoDsmModulator mod(cfg, opts);
  const std::size_t n = 1 << 14;
  const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n);
  const auto res =
      mod.run(dsp::make_sine(mod.full_scale_diff() * 0.708, fin), n);
  const auto sp =
      dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0, dsp::WindowKind::kHann);
  return dsp::analyze_sndr(sp, spec.bandwidth_hz, fin).sndr_db;
}

}  // namespace

int main() {
  bench::header("Ablation - TD comparator topology vs input common mode",
                "Sec. 2.2.1 / Fig. 6: NOR3 pair vs NAND3 pair vs strongARM");

  util::Table t("ADC SNDR [dB] by comparator kind and buffer CM (VDD 1.1 V)");
  t.set_header({"comparator", "CM 0.25 V (this ADC)", "CM 0.80 V"});
  struct Row {
    const char* name;
    msim::ComparatorKind kind;
  };
  const Row rows[] = {
      {"strongARM (AMS, not synthesizable)", msim::ComparatorKind::kStrongArm},
      {"NAND3 pair [16] (needs high CM)", msim::ComparatorKind::kNand3},
      {"NOR3 pair (proposed)", msim::ComparatorKind::kNor3},
  };
  double nor3_low = 0, nand3_low = 0, nand3_high = 0, sarm_low = 0;
  for (const Row& r : rows) {
    const double low = sndr_with(r.kind, 0.25);
    const double high = sndr_with(r.kind, 0.80);
    if (r.kind == msim::ComparatorKind::kNor3) nor3_low = low;
    if (r.kind == msim::ComparatorKind::kNand3) {
      nand3_low = low;
      nand3_high = high;
    }
    if (r.kind == msim::ComparatorKind::kStrongArm) sarm_low = low;
    t.add_row({r.name, bench::fmt("%.1f", low), bench::fmt("%.1f", high)});
  }
  t.print(std::cout);

  std::printf("\nmis-decision probability at CM 0.25 V: NAND3 %.3f, NOR3 %.5f\n",
              msim::common_mode_error_prob(msim::ComparatorKind::kNand3, 0.25,
                                           1.1),
              msim::common_mode_error_prob(msim::ComparatorKind::kNor3, 0.25,
                                           1.1));

  bench::shape_check("NOR3 at 0.25 V CM matches the strongARM (+/-2 dB)",
                     std::fabs(nor3_low - sarm_low) < 2.0);
  bench::shape_check("NAND3 collapses at 0.25 V CM (> 25 dB loss vs NOR3)",
                     nor3_low - nand3_low > 25.0);
  bench::shape_check("NAND3 recovers at high CM",
                     nand3_high > nand3_low + 25.0);
  return 0;
}
