// Fig. 1 reproduction: CMOS scaling trends.
//   (a) power supply and transistor intrinsic gain vs gate length
//   (b) f_T and FO4 inverter delay vs gate length
// Plus the derived voltage-domain vs time-domain headroom divergence the
// introduction builds its argument on.
#include <vector>

#include "bench/bench_common.h"
#include "tech/scaling_model.h"
#include "tech/tech_node.h"
#include "util/ascii_plot.h"

using namespace vcoadc;

int main() {
  bench::header("Fig. 1 - technology scaling trends",
                "Fig. 1a (VDD, intrinsic gain), Fig. 1b (fT, FO4 delay)");

  const auto& db = tech::TechDatabase::standard();
  const auto rows = tech::scaling_trend(db);

  util::Table t("Fig. 1 data (ITRS-trend calibrated node table)");
  t.set_header({"L [nm]", "VDD [V]", "intrinsic gain", "fT [GHz]",
                "FO4 [ps]"});
  for (const auto& r : rows) {
    t.add_row({bench::fmt("%.0f", r.gate_length_nm), bench::fmt("%.2f", r.vdd),
               bench::fmt("%.0f", r.intrinsic_gain),
               bench::fmt("%.0f", r.ft_ghz), bench::fmt("%.1f", r.fo4_ps)});
  }
  t.add_footnote("paper anchors: 0.5um -> gain 180, VDD 5 V, fT 16 GHz, FO4 140 ps");
  t.add_footnote("              22 nm -> gain 6, VDD 1 V, fT 400 GHz, FO4 6 ps");
  t.print(std::cout);

  // Fitted exponents of the trends.
  std::vector<double> ls, gains, fo4s, fts;
  for (const auto& r : rows) {
    ls.push_back(r.gate_length_nm);
    gains.push_back(r.intrinsic_gain);
    fo4s.push_back(r.fo4_ps);
    fts.push_back(r.ft_ghz);
  }
  const auto fit_gain = tech::fit_power_law(ls, gains);
  const auto fit_fo4 = tech::fit_power_law(ls, fo4s);
  const auto fit_ft = tech::fit_power_law(ls, fts);
  std::printf("\nfitted power laws (y = c * L^a):\n");
  std::printf("  intrinsic gain: a = %+.2f (R^2 %.3f)\n", fit_gain.exponent,
              fit_gain.r_squared);
  std::printf("  FO4 delay:      a = %+.2f (R^2 %.3f)\n", fit_fo4.exponent,
              fit_fo4.r_squared);
  std::printf("  fT:             a = %+.2f (R^2 %.3f)\n", fit_ft.exponent,
              fit_ft.r_squared);

  const auto headroom = tech::domain_headroom_trend(db);
  util::Table h("Voltage-domain vs time-domain headroom (normalized to 500 nm)");
  h.set_header({"L [nm]", "VD headroom (VDD*gain)", "TD resolution (1/FO4)"});
  for (const auto& r : headroom) {
    h.add_row({bench::fmt("%.0f", r.gate_length_nm),
               bench::fmt("%.4f", r.vd_headroom),
               bench::fmt("%.1f", r.td_resolution)});
  }
  h.print(std::cout);

  std::vector<double> x, vd, td;
  for (const auto& r : headroom) {
    x.push_back(r.gate_length_nm);
    vd.push_back(util::db_power(r.vd_headroom));
    td.push_back(util::db_power(r.td_resolution));
  }
  util::PlotOptions po;
  po.log_x = true;
  po.title = "VD headroom [dB, falling] vs L (log)";
  po.x_label = "gate length [nm]";
  std::printf("\n%s", util::ascii_plot(x, vd, po).c_str());
  po.title = "TD resolution [dB, rising] vs L (log)";
  std::printf("\n%s", util::ascii_plot(x, td, po).c_str());

  bench::shape_check("intrinsic gain falls with scaling (a > 0 vs L)",
                     fit_gain.exponent > 0.5);
  bench::shape_check("FO4 delay falls with scaling", fit_fo4.exponent > 0.5);
  bench::shape_check("fT rises with scaling", fit_ft.exponent < -0.5);
  bench::shape_check(
      "VD/TD divergence exceeds 1000x across 500 nm -> 22 nm",
      headroom.back().td_resolution / headroom.back().vd_headroom > 1000.0);
  return 0;
}
