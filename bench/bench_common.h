// Shared helpers for the per-figure/per-table benchmark binaries.
//
// Every binary prints (a) what the paper reports, (b) what this
// reproduction measures, and (c) the shape checks that must hold, so that
// `for b in build/bench/*; do $b; done` produces a self-contained
// experiment log (EXPERIMENTS.md is generated from these outputs).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/adc.h"
#include "core/flow.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/units.h"

namespace vcoadc::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void shape_check(const std::string& what, bool ok) {
  std::printf("  [shape %s] %s\n", ok ? "OK  " : "FAIL", what.c_str());
}

inline std::string fmt(const char* f, double v) {
  return util::format(f, v);
}

/// Standard capture length for spectra (Fig. 16-18, Table 3/4).
inline constexpr std::size_t kSpectrumSamples = 1 << 16;

/// Runs the full post-layout-style report for one of the two paper nodes
/// as a Report stage of the flow graph (Netlist through Route artifacts
/// land in the context's cache, so repeated reports are nearly free).
inline core::NodeReport run_node(const core::AdcSpec& spec,
                                 double fin_target_hz,
                                 std::size_t n_samples = kSpectrumSamples,
                                 const core::ExecContext& ctx = {}) {
  core::Flow flow(ctx);
  core::SimulationOptions opts;
  opts.n_samples = n_samples;
  opts.fin_target_hz = fin_target_hz;
  return flow.report(spec, opts);
}

}  // namespace vcoadc::bench
