// Shared helpers for the per-figure/per-table benchmark binaries.
//
// Every binary prints (a) what the paper reports, (b) what this
// reproduction measures, and (c) the shape checks that must hold, so that
// `for b in build/bench/*; do $b; done` produces a self-contained
// experiment log (EXPERIMENTS.md is generated from these outputs).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/adc.h"
#include "core/flow.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/units.h"

namespace vcoadc::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void shape_check(const std::string& what, bool ok) {
  std::printf("  [shape %s] %s\n", ok ? "OK  " : "FAIL", what.c_str());
}

inline std::string fmt(const char* f, double v) {
  return util::format(f, v);
}

/// Resolves the BENCH_JSON sink file and strips the flag from argv so
/// downstream parsers (google-benchmark's Initialize) never see it:
/// `--json-out=<file>` / `--json-out <file>` name the file, a bare
/// `--json-out` defaults to BENCH_perf.json, and without the flag the
/// BENCH_JSON_FILE environment variable is consulted. Empty result means
/// stdout-only emission.
inline std::string json_out_path(int* argc, char** argv) {
  std::string path;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--json-out") == 0) {
      if (i + 1 < *argc && argv[i + 1][0] != '-') {
        path = argv[++i];
      } else {
        path = "BENCH_perf.json";
      }
    } else if (std::strncmp(a, "--json-out=", 11) == 0) {
      path = a + 11;
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  if (path.empty()) {
    if (const char* env = std::getenv("BENCH_JSON_FILE")) path = env;
  }
  return path;
}

/// Emits one machine-readable summary line: "BENCH_JSON <payload>" on
/// stdout (the scrape-friendly form every bench already prints) and, when
/// `path` is non-empty, the bare payload appended as one line to that file
/// — BENCH_perf.json collection without scraping the experiment log.
inline void emit_json(const std::string& path, const std::string& payload) {
  std::printf("\nBENCH_JSON %s\n", payload.c_str());
  if (path.empty()) return;
  std::ofstream f(path, std::ios::app);
  if (!f) {
    std::fprintf(stderr, "bench: cannot append BENCH_JSON to %s\n",
                 path.c_str());
    return;
  }
  f << payload << '\n';
}

/// Standard capture length for spectra (Fig. 16-18, Table 3/4).
inline constexpr std::size_t kSpectrumSamples = 1 << 16;

/// Runs the full post-layout-style report for one of the two paper nodes
/// as a Report stage of the flow graph (Netlist through Route artifacts
/// land in the context's cache, so repeated reports are nearly free).
inline core::NodeReport run_node(const core::AdcSpec& spec,
                                 double fin_target_hz,
                                 std::size_t n_samples = kSpectrumSamples,
                                 const core::ExecContext& ctx = {}) {
  core::Flow flow(ctx);
  core::SimulationOptions opts;
  opts.n_samples = n_samples;
  opts.fin_target_hz = fin_target_hz;
  return flow.report(spec, opts);
}

}  // namespace vcoadc::bench
