// Fig. 13 / Fig. 14 reproduction: automatically synthesized layouts in
// 40 nm and 180 nm with power domains and component groups indicated, plus
// the Sec. 3.3 motivation experiment (the naive PD-oblivious flow shorts
// power rails; the proposed flow is DRC clean).
#include "bench/bench_common.h"
#include "core/adc_spec.h"
#include "netlist/generator.h"
#include "netlist/verilog_writer.h"
#include "synth/power_grid.h"
#include "synth/synthesis_flow.h"

using namespace vcoadc;

namespace {

void synthesize_node(const core::AdcSpec& spec) {
  core::AdcDesign adc(spec);
  const auto res = adc.synthesize();

  std::printf("\n--- %s ---\n", spec.describe().c_str());
  std::printf("gate-level netlist: %d digital gates + %d resistor cells\n",
              adc.netlist().stats().digital_gates,
              adc.netlist().stats().resistors);
  std::printf("floorplan spec (Fig. 9 input):\n%s",
              res.floorplan_spec.c_str());
  std::printf("\nlayout (Fig. 14 analog - power domains/groups indicated):\n%s",
              res.layout->render_ascii(96).c_str());
  std::printf("die area: %.4f mm^2, utilization %.2f, %d rows, HPWL %.1f um, "
              "max congestion %.1f\n",
              res.stats.die_area_m2 * 1e6, res.stats.utilization,
              res.stats.num_rows, res.routing.total_hpwl_m * 1e6,
              res.routing.congestion.max_demand);
  std::printf("detailed routing: %.1f um wire, %d vias, %d failed nets, "
              "%d overflowed edges (grid %dx%d)\n",
              res.detailed_routing.total_wirelength_m * 1e6,
              res.detailed_routing.total_vias,
              res.detailed_routing.failed_nets,
              res.detailed_routing.overflowed_edges,
              res.detailed_routing.grid_x, res.detailed_routing.grid_y);
  const synth::PowerGrid grid =
      synth::generate_power_grid(res.layout->floorplan());
  const auto pg = synth::check_power_grid(grid, res.layout->flat(),
                                          res.layout->placement(),
                                          res.layout->floorplan());
  std::printf("power grid: %zu rails, %s, max IR drop %.2f mV (%s)\n",
              grid.rails.size(), pg.clean() ? "fully connected" : "BROKEN",
              pg.max_ir_drop_v * 1e3, pg.worst_rail.c_str());
  std::printf("DRC: %zu violations\n", res.drc.violations.size());
}

}  // namespace

int main() {
  bench::header("Fig. 13/14 - automatically synthesized layouts",
                "Fig. 13a (40 nm), Fig. 13b (180 nm), Fig. 14 (PD/group map)");

  const auto spec40 = core::AdcSpec::paper_40nm();
  const auto spec180 = core::AdcSpec::paper_180nm();
  synthesize_node(spec40);
  synthesize_node(spec180);

  // Area contrast + DRC shape checks.
  core::AdcDesign adc40(spec40);
  core::AdcDesign adc180(spec180);
  const auto r40 = adc40.synthesize();
  const auto r180 = adc180.synthesize();
  const double ratio = r180.stats.die_area_m2 / r40.stats.die_area_m2;
  std::printf("\narea(180 nm) / area(40 nm) = %.1fx (paper: 0.151/0.012 = 12.6x)\n",
              ratio);

  // Sec. 3.3: the prior oversimplified flow on this circuit.
  synth::SynthesisOptions naive;
  naive.respect_power_domains = false;
  const auto rnaive = adc40.synthesize(naive);
  std::printf(
      "\nnaive PD-oblivious APR (prior works' flow) on the same netlist:\n"
      "  power-rail-short violations: %d (proposed flow: %d)\n",
      rnaive.drc.count(synth::DrcKind::kPowerRailShort),
      r40.drc.count(synth::DrcKind::kPowerRailShort));

  bench::shape_check("proposed flow is DRC clean at both nodes",
                     r40.drc.clean() && r180.drc.clean());
  bench::shape_check("naive flow shorts P/G rails (motivates Sec. 3.3)",
                     rnaive.drc.count(synth::DrcKind::kPowerRailShort) > 0);
  bench::shape_check("180 nm layout is much larger (paper: 12.6x)",
                     ratio > 6.0 && ratio < 25.0);
  bench::shape_check("all 6 power domains + 4 groups present in floorplan",
                     r40.stats.num_regions == 10);
  return 0;
}
