// google-benchmark microbenchmarks of the library's engines: FFT throughput
// (complex plan path and the real-input fast path), modulator simulation
// rate (with and without a reused workspace), the full Monte-Carlo-sample
// pipeline, netlist flatten, and the synthesis flow. These gate performance
// regressions in the substrate itself (a 2^16-point Table 3 run must stay
// interactive).
//
// The custom main() additionally emits machine-readable BENCH_JSON summary
// lines (modulator clocks/sec, real-FFT Msamples/sec, single-MC-sample
// milliseconds) for BENCH_*.json tracking.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "core/adc.h"
#include "dsp/fft.h"
#include "dsp/signal_gen.h"
#include "msim/batched_modulator.h"
#include "msim/modulator.h"
#include "netlist/generator.h"
#include "synth/synthesis_flow.h"
#include "util/rng.h"
#include "util/simd.h"

using namespace vcoadc;

static void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<dsp::Complex> data(n);
  for (auto& c : data) c = {rng.gaussian(), rng.gaussian()};
  for (auto _ : state) {
    auto copy = data;
    dsp::fft_in_place(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1 << 12)->Arg(1 << 16);

static void BM_FftRealPlan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.gaussian();
  const dsp::RealFftPlan& plan = dsp::RealFftPlan::of(n);
  std::vector<dsp::Complex> out(plan.out_size());
  for (auto _ : state) {
    plan.forward(x.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FftRealPlan)->Arg(1 << 12)->Arg(1 << 16);

static void BM_ModulatorClock(benchmark::State& state) {
  auto spec = core::AdcSpec::paper_40nm();
  msim::SimConfig cfg = spec.to_sim_config();
  msim::VcoDsmModulator mod(cfg);
  const auto sine = dsp::make_sine(0.5, 1e6);
  for (auto _ : state) {
    auto res = mod.run(sine, 256);
    benchmark::DoNotOptimize(res.output.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_ModulatorClock);

static void BM_ModulatorClockWorkspace(benchmark::State& state) {
  auto spec = core::AdcSpec::paper_40nm();
  msim::SimConfig cfg = spec.to_sim_config();
  msim::VcoDsmModulator mod(cfg);
  const auto sine = dsp::make_sine(0.5, 1e6);
  msim::SimWorkspace ws;
  for (auto _ : state) {
    const auto& res = mod.run(sine, 256, ws);
    benchmark::DoNotOptimize(res.output.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_ModulatorClockWorkspace);

// Batched SoA engine at the dispatcher's preferred lane width: items are
// lane-clocks (W Monte-Carlo draws retire per modulator clock).
static void BM_BatchedModulatorClock(benchmark::State& state) {
  auto spec = core::AdcSpec::paper_40nm();
  msim::SimConfig cfg = spec.to_sim_config();
  const int w = msim::BatchedModulator::preferred_width();
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(w));
  for (int k = 0; k < w; ++k) seeds[static_cast<std::size_t>(k)] = 100 + k;
  auto batch = msim::BatchedModulator::create(cfg, seeds);
  const auto base = dsp::make_sine(1.0, 1e6);
  const std::vector<double> scale(static_cast<std::size_t>(w), 0.5);
  msim::BatchedWorkspace ws;
  for (auto _ : state) {
    const auto& res = batch->run(base, scale, 256, ws);
    benchmark::DoNotOptimize(res.front().output.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256 * w);
}
BENCHMARK(BM_BatchedModulatorClock);

// One full Monte-Carlo sample: modulator run + windowed real FFT + SNDR /
// slope / idle-tone analysis + power model, with the per-thread workspace a
// batch worker would hold. 2^14 points keeps one iteration short enough for
// the benchmark loop; the BENCH_JSON summary below times the full 2^16 run.
static void BM_McSamplePipeline(benchmark::State& state) {
  core::AdcDesign design(core::AdcSpec::paper_40nm());
  core::SimulationOptions opts;
  opts.n_samples = 1 << 14;
  msim::SimWorkspace ws;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    opts.seed = seed++;
    auto res = design.simulate(opts, ws);
    benchmark::DoNotOptimize(res.sndr.sndr_db);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_McSamplePipeline)->Unit(benchmark::kMillisecond);

static void BM_NetlistFlatten(benchmark::State& state) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  for (auto _ : state) {
    auto flat = adc.netlist().flatten();
    benchmark::DoNotOptimize(flat.data());
  }
}
BENCHMARK(BM_NetlistFlatten);

static void BM_SynthesisFlow(benchmark::State& state) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  for (auto _ : state) {
    auto res = adc.synthesize();
    benchmark::DoNotOptimize(res.stats.die_area_m2);
  }
}
BENCHMARK(BM_SynthesisFlow);

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Standalone summary timings (independent of the google-benchmark reporter)
// so the BENCH_JSON line is emitted even under --benchmark_filter.
void emit_bench_json_summary(const std::string& json_out) {
  auto spec = core::AdcSpec::paper_40nm();

  // Modulator throughput: repeated fixed-size runs with a warm workspace.
  msim::SimConfig cfg = spec.to_sim_config();
  msim::VcoDsmModulator mod(cfg);
  const auto sine = dsp::make_sine(0.5, 1e6);
  msim::SimWorkspace ws;
  constexpr std::size_t kClocksPerRep = 4096;
  mod.run(sine, kClocksPerRep, ws);  // warm-up
  std::size_t reps = 0;
  auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    benchmark::DoNotOptimize(mod.run(sine, kClocksPerRep, ws).output.data());
    ++reps;
    elapsed = seconds_since(t0);
  } while (elapsed < 0.5);
  const double clocks_per_s =
      static_cast<double>(reps * kClocksPerRep) / elapsed;

  // Batched SoA engine: same config, lane-clocks/s (clocks x lanes) at each
  // kernel width; the summary reports the best width. The shape gate only
  // applies when the active tier has real vector registers (width >= 4
  // doubles per op, i.e. AVX2+) — on narrower hosts the batch still wins
  // but the floor is not promised. The gate is 2.5x, below the 4-8x a
  // pure-SIMD argument would promise: the packed ziggurat and packed
  // comparator-bit extraction moved most of the once-serial per-lane work
  // into the lanes, but the rejection tail, metastability draws and result
  // write-out stay per-lane (measured on the avx512 reference host: W=4
  // ~2.7-3.0x, W=8 ~2.3-2.6x — 32 zmm registers hold the W=8 state, the
  // wider rejection tail is what costs it the lead).
  const util::simd::Tier tier = util::simd::active_tier();
  const int simd_width = util::simd::tier_width(tier);
  double batched_clocks_per_s = 0.0;
  int batched_width = 0;
  msim::BatchedWorkspace bws;
  const auto base = dsp::make_sine(1.0, 1e6);
  for (int w : {2, 4, 8}) {
    std::vector<std::uint64_t> seeds(static_cast<std::size_t>(w));
    for (int k = 0; k < w; ++k) seeds[static_cast<std::size_t>(k)] = 100 + k;
    auto batch = msim::BatchedModulator::create(cfg, seeds);
    if (batch == nullptr) continue;
    const std::vector<double> scale(static_cast<std::size_t>(w), 0.5);
    batch->run(base, scale, kClocksPerRep, bws);  // warm-up
    reps = 0;
    t0 = std::chrono::steady_clock::now();
    do {
      benchmark::DoNotOptimize(
          batch->run(base, scale, kClocksPerRep, bws).front().output.data());
      ++reps;
      elapsed = seconds_since(t0);
    } while (elapsed < 0.5);
    const double lane_clocks =
        static_cast<double>(reps * kClocksPerRep) * w / elapsed;
    std::printf("  batched W=%d: %.0f lane-clocks/s (%.2fx scalar)\n", w,
                lane_clocks, lane_clocks / clocks_per_s);
    if (lane_clocks > batched_clocks_per_s) {
      batched_clocks_per_s = lane_clocks;
      batched_width = w;
    }
  }
  std::printf("  simd: %s\n", util::simd::runtime_summary().c_str());
  if (simd_width >= 4) {
    bench::shape_check("batched engine >= 2.5x scalar modulator throughput",
                       batched_clocks_per_s >= 2.5 * clocks_per_s);
  }

  // Real-FFT throughput at the spectrum-analysis size (2^16).
  constexpr std::size_t kFftN = 1 << 16;
  util::Rng rng(1);
  std::vector<double> x(kFftN);
  for (auto& v : x) v = rng.gaussian();
  const dsp::RealFftPlan& plan = dsp::RealFftPlan::of(kFftN);
  std::vector<dsp::Complex> bins(plan.out_size());
  plan.forward(x.data(), bins.data());  // warm-up (builds the plan)
  reps = 0;
  t0 = std::chrono::steady_clock::now();
  do {
    plan.forward(x.data(), bins.data());
    benchmark::DoNotOptimize(bins.data());
    ++reps;
    elapsed = seconds_since(t0);
  } while (elapsed < 0.5);
  const double fft_msamples_per_s =
      static_cast<double>(reps * kFftN) / elapsed / 1e6;

  // End-to-end single Monte-Carlo sample at the paper's 2^16 record length.
  core::AdcDesign design(spec);
  core::SimulationOptions opts;
  opts.n_samples = 1 << 16;
  opts.seed = 1;
  design.simulate(opts, ws);  // warm-up
  t0 = std::chrono::steady_clock::now();
  opts.seed = 2;
  const auto res = design.simulate(opts, ws);
  const double sample_ms = seconds_since(t0) * 1e3;

  bench::emit_json(
      json_out,
      util::format(
          "{\"bench\":\"perf_engine\","
          "\"modulator_clocks_per_s\":%.0f,"
          "\"batched_modulator_clocks_per_s\":%.0f,"
          "\"batched_width\":%d,"
          "\"simd_tier\":\"%s\","
          "\"simd_width\":%d,"
          "\"hw_threads\":%u,"
          "\"fft_real_msamples_per_s\":%.2f,"
          "\"mc_sample_2e16_ms\":%.2f,"
          "\"mc_sample_sndr_db\":%.2f}",
          clocks_per_s, batched_clocks_per_s, batched_width,
          util::simd::tier_name(tier), simd_width,
          std::thread::hardware_concurrency(), fft_msamples_per_s, sample_ms,
          res.sndr.sndr_db));
}

}  // namespace

int main(int argc, char** argv) {
  // --json-out is ours, not google-benchmark's: resolve and strip it first.
  const std::string json_out = bench::json_out_path(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_bench_json_summary(json_out);
  return 0;
}
