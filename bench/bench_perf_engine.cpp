// google-benchmark microbenchmarks of the library's engines: FFT throughput,
// modulator simulation rate, netlist flatten, and the full synthesis flow.
// These gate performance regressions in the substrate itself (a 2^16-point
// Table 3 run must stay interactive).
#include <benchmark/benchmark.h>

#include "core/adc.h"
#include "dsp/fft.h"
#include "dsp/signal_gen.h"
#include "msim/modulator.h"
#include "netlist/generator.h"
#include "synth/synthesis_flow.h"
#include "util/rng.h"

using namespace vcoadc;

static void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<dsp::Complex> data(n);
  for (auto& c : data) c = {rng.gaussian(), rng.gaussian()};
  for (auto _ : state) {
    auto copy = data;
    dsp::fft_in_place(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(1 << 12)->Arg(1 << 16);

static void BM_ModulatorClock(benchmark::State& state) {
  auto spec = core::AdcSpec::paper_40nm();
  msim::SimConfig cfg = spec.to_sim_config();
  msim::VcoDsmModulator mod(cfg);
  const auto sine = dsp::make_sine(0.5, 1e6);
  for (auto _ : state) {
    auto res = mod.run(sine, 256);
    benchmark::DoNotOptimize(res.output.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_ModulatorClock);

static void BM_NetlistFlatten(benchmark::State& state) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  for (auto _ : state) {
    auto flat = adc.netlist().flatten();
    benchmark::DoNotOptimize(flat.data());
  }
}
BENCHMARK(BM_NetlistFlatten);

static void BM_SynthesisFlow(benchmark::State& state) {
  core::AdcDesign adc(core::AdcSpec::paper_40nm());
  for (auto _ : state) {
    auto res = adc.synthesize();
    benchmark::DoNotOptimize(res.stats.die_area_m2);
  }
}
BENCHMARK(BM_SynthesisFlow);

BENCHMARK_MAIN();
