// Extension bench: oscillator-level characterization of the behavioral VCO
// model - phase noise L(f) against white-FM theory, tuning linearity, and
// the converter's reference (VREFP) ripple sensitivity.
#include "bench/bench_common.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "msim/modulator.h"
#include "msim/phase_noise.h"
#include "util/ascii_plot.h"

using namespace vcoadc;

int main() {
  bench::header("Extension - VCO phase noise & reference sensitivity",
                "validation of the oscillator noise model behind Fig. 17");

  // --- phase noise ---------------------------------------------------------
  const double k = 40.0;  // Hz^2/Hz white-FM strength
  msim::RingVco vco(16, 2.043e9, 4.5e8, 0.55, 0.0, 0.0, 1.0, k,
                    util::Rng(3));
  const auto pn = msim::measure_phase_noise(vco, 0.55, 8e9, 1 << 16);
  util::Table t("ring VCO phase noise (white-FM model, K = 40 Hz^2/Hz)");
  t.set_header({"offset", "measured L(f) [dBc/Hz]", "theory [dBc/Hz]"});
  for (const auto& p : pn.points) {
    t.add_row({util::si_format(p.offset_hz, "Hz"),
               bench::fmt("%.1f", p.dbc_per_hz),
               bench::fmt("%.1f", msim::white_fm_theory_dbc(k, p.offset_hz))});
  }
  t.print(std::cout);
  std::printf("carrier %.4f GHz | fitted slope %.1f dB/dec (theory -20)\n",
              pn.carrier_hz / 1e9, pn.slope_db_per_decade);

  // --- tuning linearity ----------------------------------------------------
  std::printf("\ntuning curve (Kvco %.0f MHz/V at 0.55 V):\n",
              vco.kvco() / 1e6);
  for (double v : {0.35, 0.45, 0.55, 0.65, 0.75}) {
    std::printf("  Vctrl %.2f V -> %.3f GHz\n", v, vco.freq_hz(v) / 1e9);
  }

  // --- reference ripple sensitivity ---------------------------------------
  util::Table rt("SNDR vs VREFP ripple (40 nm point, common-mode)");
  rt.set_header({"ripple [mV]", "direct tone [dBFS]", "SNDR [dB]"});
  std::vector<double> sndr_by_ripple;
  for (double ripple : {0.0, 1e-3, 3e-3, 10e-3}) {
    core::AdcSpec spec = core::AdcSpec::paper_40nm();
    spec.with_nonidealities = false;
    msim::SimConfig cfg = spec.to_sim_config();
    const std::size_t n = 1 << 14;
    cfg.vref_ripple_amp_v = ripple;
    cfg.vref_ripple_freq_hz = dsp::coherent_freq(2.2e6, cfg.fs_hz, n);
    msim::VcoDsmModulator mod(cfg);
    const double fin = dsp::coherent_freq(900e3, cfg.fs_hz, n);
    const auto res =
        mod.run(dsp::make_sine(0.5 * mod.full_scale_diff(), fin), n);
    const auto sp = dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0,
                                          dsp::WindowKind::kHann);
    double tone = 0;
    for (std::size_t i = 1; i < sp.power.size(); ++i) {
      if (std::fabs(sp.freq_hz[i] - cfg.vref_ripple_freq_hz) <=
          3 * sp.bin_hz) {
        tone += sp.power[i];
      }
    }
    const double sndr = dsp::analyze_sndr(sp, spec.bandwidth_hz, fin).sndr_db;
    sndr_by_ripple.push_back(sndr);
    rt.add_row({bench::fmt("%.1f", ripple * 1e3),
                bench::fmt("%.1f", util::db_power(std::max(tone, 1e-30))),
                bench::fmt("%.1f", sndr)});
  }
  rt.add_footnote("direct tone stays ~40 dB below the single-ended "
                  "sensitivity: pseudo-differential CM rejection");
  rt.add_footnote("SNDR erosion is signal x ripple intermodulation (element "
                  "imbalance tracks the signal)");
  rt.print(std::cout);

  bench::shape_check("phase-noise slope ~ -20 dB/dec (white FM)",
                     std::fabs(pn.slope_db_per_decade + 20.0) < 4.0);
  bench::shape_check("measured L(f) within 3 dB of theory at 10 MHz",
                     std::fabs(pn.at(10e6) -
                               msim::white_fm_theory_dbc(k, 10e6)) < 3.0);
  bench::shape_check("SNDR degrades monotonically with reference ripple",
                     sndr_by_ripple[0] > sndr_by_ripple[1] &&
                         sndr_by_ripple[1] > sndr_by_ripple[2] &&
                         sndr_by_ripple[2] > sndr_by_ripple[3]);
  return 0;
}
