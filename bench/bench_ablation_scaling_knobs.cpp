// Ablation: the Sec. 2.2 spec-adaptation claims.
//   "To increase the effective quantizer resolution, we can simply add more
//    slices. To widen the signal bandwidth, we can increase the clock
//    frequency. To increase SQNR, we can boost the loop gain..."
#include "bench/bench_common.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "msim/modulator.h"

using namespace vcoadc;

namespace {

double sndr_for_spec(const core::AdcSpec& spec, double bw_hz) {
  msim::SimConfig cfg = spec.to_sim_config();
  msim::VcoDsmModulator mod(cfg);
  const std::size_t n = 1 << 15;
  const double fin = dsp::coherent_freq(bw_hz / 5.0, cfg.fs_hz, n);
  const double amp = mod.full_scale_diff() * 0.708;
  const auto res = mod.run(dsp::make_sine(amp, fin), n);
  const auto sp =
      dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0, dsp::WindowKind::kHann);
  return dsp::analyze_sndr(sp, bw_hz, fin).sndr_db;
}

}  // namespace

int main() {
  bench::header("Ablation - architecture scaling knobs",
                "Sec. 2.2: slices -> resolution, fs -> BW, loop gain -> SQNR");

  // Knob 1: slices.
  util::Table ts("SNDR vs number of slices (fs 750 MHz, BW 5 MHz)");
  ts.set_header({"slices", "SNDR [dB]"});
  std::vector<double> sndr_by_slices;
  for (int slices : {4, 8, 16, 32}) {
    auto spec = core::AdcSpec::paper_40nm();
    spec.num_slices = slices;
    const double s = sndr_for_spec(spec, spec.bandwidth_hz);
    sndr_by_slices.push_back(s);
    ts.add_row({std::to_string(slices), bench::fmt("%.1f", s)});
  }
  ts.print(std::cout);

  // Knob 2: clock frequency widens usable bandwidth at fixed OSR.
  util::Table tf("SNDR in BW = fs/150 as the clock scales (fixed OSR 75)");
  tf.set_header({"fs [MHz]", "BW [MHz]", "SNDR [dB]"});
  std::vector<double> sndr_by_fs;
  for (double fs : {250e6, 500e6, 750e6, 1500e6}) {
    auto spec = core::AdcSpec::paper_40nm();
    spec.fs_hz = fs;
    spec.bandwidth_hz = fs / 150.0;
    const double s = sndr_for_spec(spec, spec.bandwidth_hz);
    sndr_by_fs.push_back(s);
    tf.add_row({bench::fmt("%.0f", fs / 1e6),
                bench::fmt("%.2f", spec.bandwidth_hz / 1e6),
                bench::fmt("%.1f", s)});
  }
  tf.print(std::cout);

  // Knob 3: loop gain (DAC feedback current / VCO tuning gain).
  util::Table tg("SNDR vs loop gain (Kvco scaling)");
  tg.set_header({"loop gain [LSB/clock/LSB]", "SNDR [dB]"});
  std::vector<double> sndr_by_gain;
  for (double g : {0.25, 0.5, 1.0, 2.0}) {
    auto spec = core::AdcSpec::paper_40nm();
    spec.loop_gain = g;
    const double s = sndr_for_spec(spec, spec.bandwidth_hz);
    sndr_by_gain.push_back(s);
    tg.add_row({bench::fmt("%.2f", g), bench::fmt("%.1f", s)});
  }
  tg.print(std::cout);

  bench::shape_check("doubling slices buys SNDR (4 -> 32 monotone, > +9 dB)",
                     sndr_by_slices.back() > sndr_by_slices.front() + 9.0 &&
                         sndr_by_slices[1] > sndr_by_slices[0] &&
                         sndr_by_slices[2] > sndr_by_slices[1]);
  bench::shape_check("SNDR holds (+/-4 dB) while fs scales BW 6x",
                     std::fabs(sndr_by_fs.back() - sndr_by_fs.front()) < 4.0);
  bench::shape_check("starved loop gain (0.25) loses > 3 dB vs nominal",
                     sndr_by_gain[2] > sndr_by_gain[0] + 3.0);
  return 0;
}
