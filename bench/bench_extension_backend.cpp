// Extension bench: the digital back end (Sec. 2.1's "low pass filtering and
// decimating in digital domain"). Shows the decimated output spectrum a
// downstream user consumes, the CIC droop compensation at work, and that
// the in-band SNDR survives decimation. A second phase runs the gate-level
// backend (emitted-HDL event simulation, DESIGN.md §3j) over a short
// capture and cross-checks its decoded+decimated stream against the
// behavioral engine, reporting event throughput in the BENCH_JSON line.
#include <chrono>

#include "bench/bench_common.h"
#include "core/backend.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "msim/modulator.h"
#include "util/ascii_plot.h"

using namespace vcoadc;

int main(int argc, char** argv) {
  const std::string json_out = bench::json_out_path(&argc, argv);
  bench::header("Extension - digital back end (CIC + droop comp + FIR)",
                "Sec. 2.1 decimation chain, end-to-end product view");

  const auto spec = core::AdcSpec::paper_40nm();
  const msim::SimConfig cfg = spec.to_sim_config();
  const std::size_t n_total = 1 << 17;
  const std::size_t n_half = n_total / 2;
  const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n_half);

  msim::VcoDsmModulator mod(cfg);
  const double amp = mod.full_scale_diff() * util::from_db_amplitude(-3.0);
  const auto res = mod.run(dsp::make_sine(amp, fin), n_total);

  const auto sp_mod = dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0,
                                            dsp::WindowKind::kHann);
  const double sndr_mod =
      dsp::analyze_sndr(sp_mod, spec.bandwidth_hz, fin).sndr_db;

  core::DigitalBackend be(spec);
  std::printf("chain: CIC^3 /%d -> droop comp (%zu taps) -> FIR /4 "
              "(total /%d, output rate %s)\n",
              be.cic_rate(), be.compensator_taps().size(),
              be.total_decimation(),
              util::si_format(be.output_rate_hz(), "Hz").c_str());

  const auto dec = be.process(res.output);
  const std::size_t n_dec =
      n_half / static_cast<std::size_t>(be.total_decimation());
  std::vector<double> tail(dec.end() - static_cast<long>(n_dec), dec.end());
  const auto sp_dec = dsp::compute_spectrum(tail, be.output_rate_hz(), 1.0,
                                            dsp::WindowKind::kHann);
  const auto rep = dsp::analyze_sndr(sp_dec, spec.bandwidth_hz, fin);

  util::PlotOptions po;
  po.log_x = true;
  po.clamp_y = true;
  po.y_min = -130;
  po.y_max = 0;
  po.title = "decimated output spectrum [dBFS]";
  po.x_label = "frequency [Hz]";
  std::printf("\n%s", util::ascii_plot(sp_dec.freq_hz, sp_dec.dbfs, po).c_str());

  std::printf("SNDR: modulator domain %.1f dB -> decimated domain %.1f dB\n",
              sndr_mod, rep.sndr_db);

  bench::shape_check("decimation preserves in-band SNDR (within 3 dB)",
                     rep.sndr_db > sndr_mod - 3.0);
  bench::shape_check("output Nyquist covers the signal band",
                     be.output_rate_hz() / 2.0 > spec.bandwidth_hz);
  bench::shape_check("tone amplitude preserved (droop compensated)",
                     std::fabs(rep.fundamental_dbfs + 3.0) < 0.5);

  // --- gate-level cross-check phase ---------------------------------------
  // The same digital back end fed from the other engine: event-driven
  // simulation of the emitted Verilog must decode the identical stream.
  std::printf("\ngate-level backend cross-check (emitted HDL, event-driven):\n");
  core::AdcSpec gate_spec = spec;
  gate_spec.num_slices = 4;  // event sim cost scales with slices * samples
  core::ExecContext ctx;
  core::Flow flow(ctx);
  core::GateSimOptions gopts;
  gopts.sim.n_samples = 1 << 12;
  const auto t0 = std::chrono::steady_clock::now();
  const auto gate = flow.gate_sim(gate_spec, gopts);
  const double gate_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const bool identical = gate != nullptr && gate->matches_behavioral;
  const double events_per_s =
      gate != nullptr && gate_s > 0
          ? static_cast<double>(gate->transitions) / gate_s
          : 0.0;
  if (gate != nullptr) {
    std::printf("  %zu samples x %d slices, %llu gate events in %.2f s "
                "(%.0f events/s)\n",
                gate->n_samples, gate->num_slices,
                static_cast<unsigned long long>(gate->transitions), gate_s,
                events_per_s);
    std::printf("  ring period %.1f ps (predicted %.1f ps)\n",
                gate->ring_period_s * 1e12, gate->ring_period_pred_s * 1e12);
  }
  bench::shape_check("gate-level sign-off produced a result", gate != nullptr);
  bench::shape_check("gate-level decode bit-identical to behavioral",
                     identical);

  bench::emit_json(
      json_out,
      util::format("{\"bench\":\"extension_backend\","
                   "\"sndr_modulator_db\":%.2f,"
                   "\"sndr_decimated_db\":%.2f,"
                   "\"gate_sim_events_per_s\":%.0f,"
                   "\"gate_vs_behavioral_identical\":%s}",
                   sndr_mod, rep.sndr_db, events_per_s,
                   identical ? "true" : "false"));
  return 0;
}
