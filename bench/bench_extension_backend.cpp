// Extension bench: the digital back end (Sec. 2.1's "low pass filtering and
// decimating in digital domain"). Shows the decimated output spectrum a
// downstream user consumes, the CIC droop compensation at work, and that
// the in-band SNDR survives decimation.
#include "bench/bench_common.h"
#include "core/backend.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"
#include "msim/modulator.h"
#include "util/ascii_plot.h"

using namespace vcoadc;

int main() {
  bench::header("Extension - digital back end (CIC + droop comp + FIR)",
                "Sec. 2.1 decimation chain, end-to-end product view");

  const auto spec = core::AdcSpec::paper_40nm();
  const msim::SimConfig cfg = spec.to_sim_config();
  const std::size_t n_total = 1 << 17;
  const std::size_t n_half = n_total / 2;
  const double fin = dsp::coherent_freq(1e6, cfg.fs_hz, n_half);

  msim::VcoDsmModulator mod(cfg);
  const double amp = mod.full_scale_diff() * util::from_db_amplitude(-3.0);
  const auto res = mod.run(dsp::make_sine(amp, fin), n_total);

  const auto sp_mod = dsp::compute_spectrum(res.output, cfg.fs_hz, 1.0,
                                            dsp::WindowKind::kHann);
  const double sndr_mod =
      dsp::analyze_sndr(sp_mod, spec.bandwidth_hz, fin).sndr_db;

  core::DigitalBackend be(spec);
  std::printf("chain: CIC^3 /%d -> droop comp (%zu taps) -> FIR /4 "
              "(total /%d, output rate %s)\n",
              be.cic_rate(), be.compensator_taps().size(),
              be.total_decimation(),
              util::si_format(be.output_rate_hz(), "Hz").c_str());

  const auto dec = be.process(res.output);
  const std::size_t n_dec =
      n_half / static_cast<std::size_t>(be.total_decimation());
  std::vector<double> tail(dec.end() - static_cast<long>(n_dec), dec.end());
  const auto sp_dec = dsp::compute_spectrum(tail, be.output_rate_hz(), 1.0,
                                            dsp::WindowKind::kHann);
  const auto rep = dsp::analyze_sndr(sp_dec, spec.bandwidth_hz, fin);

  util::PlotOptions po;
  po.log_x = true;
  po.clamp_y = true;
  po.y_min = -130;
  po.y_max = 0;
  po.title = "decimated output spectrum [dBFS]";
  po.x_label = "frequency [Hz]";
  std::printf("\n%s", util::ascii_plot(sp_dec.freq_hz, sp_dec.dbfs, po).c_str());

  std::printf("SNDR: modulator domain %.1f dB -> decimated domain %.1f dB\n",
              sndr_mod, rep.sndr_db);

  bench::shape_check("decimation preserves in-band SNDR (within 3 dB)",
                     rep.sndr_db > sndr_mod - 3.0);
  bench::shape_check("output Nyquist covers the signal band",
                     be.output_rate_hz() / 2.0 > spec.bandwidth_hz);
  bench::shape_check("tone amplitude preserved (droop compensated)",
                     std::fabs(rep.fundamental_dbfs + 3.0) < 0.5);
  return 0;
}
