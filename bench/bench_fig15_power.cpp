// Fig. 15 reproduction: power breakdown (digital vs analog share) of the
// ADC in 40 nm and 180 nm. Paper: 73% / 27% at 40 nm, 88% / 12% at 180 nm;
// the digital share must shrink as the process advances because only the
// digital portion scales.
#include "bench/bench_common.h"

using namespace vcoadc;

int main() {
  bench::header("Fig. 15 - power breakdown (digital vs analog)",
                "Fig. 15a (40 nm: 73%/27%), Fig. 15b (180 nm: 88%/12%)");

  const auto rep40 = bench::run_node(core::AdcSpec::paper_40nm(), 1e6,
                                     1 << 14);
  const auto rep180 = bench::run_node(core::AdcSpec::paper_180nm(), 250e3,
                                      1 << 14);

  util::Table t("Power breakdown");
  t.set_header({"component", "40 nm [mW]", "180 nm [mW]"});
  auto row = [&](const char* name, double w40, double w180) {
    t.add_row({name, bench::fmt("%.3f", w40 * 1e3),
               bench::fmt("%.3f", w180 * 1e3)});
  };
  const auto& p40 = rep40.run.power;
  const auto& p180 = rep180.run.power;
  row("VCO ring inverters", p40.vco_w, p180.vco_w);
  row("sampling logic (SAFF/XOR/clock)", p40.sampling_w, p180.sampling_w);
  row("DAC drivers", p40.dac_drive_w, p180.dac_drive_w);
  row("buffer switching", p40.buffer_sw_w, p180.buffer_sw_w);
  row("signal wires", p40.wire_w, p180.wire_w);
  row("leakage", p40.leakage_w, p180.leakage_w);
  row("-- digital total", p40.digital_w(), p180.digital_w());
  row("resistor DAC static", p40.dac_static_w, p180.dac_static_w);
  row("buffer bias", p40.buffer_bias_w, p180.buffer_bias_w);
  row("-- analog total", p40.analog_w(), p180.analog_w());
  row("== total", p40.total_w(), p180.total_w());
  t.print(std::cout);

  std::printf("\ndigital share: 40 nm %.0f%% (paper 73%%), 180 nm %.0f%% (paper 88%%)\n",
              p40.digital_fraction() * 100, p180.digital_fraction() * 100);
  std::printf("\"since the digital portion still occupies %.0f%% of total power,\n"
              " further power reduction is expected in more advanced process\"\n",
              p40.digital_fraction() * 100);

  bench::shape_check("digital dominates at both nodes",
                     p40.digital_fraction() > 0.5 &&
                         p180.digital_fraction() > 0.5);
  bench::shape_check("digital share LARGER at 180 nm than at 40 nm "
                     "(digital scales, analog does not)",
                     p180.digital_fraction() > p40.digital_fraction());
  bench::shape_check("40 nm digital share within 15 pts of paper's 73%",
                     std::abs(p40.digital_fraction() - 0.73) < 0.15);
  bench::shape_check("180 nm digital share within 10 pts of paper's 88%",
                     std::abs(p180.digital_fraction() - 0.88) < 0.10);
  return 0;
}
