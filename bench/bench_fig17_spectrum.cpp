// Fig. 17 reproduction: output spectra in 40 nm and 180 nm, with the
// 20 dB/dec noise-shaping annotation and the observation that VCO/DAC
// mismatch tones fall out of band.
#include "bench/bench_common.h"
#include "util/ascii_plot.h"

using namespace vcoadc;

namespace {

void spectrum_for(const core::AdcSpec& spec, double fin) {
  core::AdcDesign adc(spec);
  core::SimulationOptions opts;
  opts.n_samples = bench::kSpectrumSamples;
  opts.fin_target_hz = fin;
  const auto res = adc.simulate(opts);

  std::printf("\n--- %s ---\n", spec.describe().c_str());
  util::PlotOptions po;
  po.log_x = true;
  po.height = 24;
  po.width = 100;
  po.clamp_y = true;
  po.y_min = -130;
  po.y_max = 0;
  po.title = util::format(
      "output spectrum [dBFS] (BW marker at %.3g MHz; %zu-pt FFT, Hann)",
      spec.bandwidth_hz / 1e6, opts.n_samples);
  po.x_label = "frequency [Hz]";
  std::printf("%s", util::ascii_plot(res.spectrum.freq_hz, res.spectrum.dbfs,
                                     po).c_str());
  std::printf("SNDR = %.1f dB in %.3g MHz | fundamental %.1f dBFS at %s\n",
              res.sndr.sndr_db, spec.bandwidth_hz / 1e6,
              res.sndr.fundamental_dbfs,
              util::si_format(res.fin_hz, "Hz").c_str());
  std::printf("fitted noise slope above band edge: %.1f dB/dec (R^2 %.2f) "
              "- paper annotates 20 dB/dec\n",
              res.shaping.db_per_decade, res.shaping.r_squared);

  // Mismatch out-of-band check: compare in-band spur energy against the
  // spur energy between BW and fs/4.
  const auto& sp = res.spectrum;
  double inband = 0, outband = 0;
  for (std::size_t i = 1; i < sp.power.size(); ++i) {
    if (std::fabs(sp.freq_hz[i] - res.fin_hz) < 4 * sp.bin_hz) continue;
    if (sp.freq_hz[i] <= spec.bandwidth_hz) {
      inband += sp.power[i];
    } else if (sp.freq_hz[i] <= spec.fs_hz / 4) {
      outband += sp.power[i];
    }
  }
  std::printf("non-signal power: in-band %.1f dBFS vs out-of-band %.1f dBFS\n",
              util::db_power(inband), util::db_power(outband));

  bench::shape_check("first-order (~20 dB/dec) noise shaping",
                     std::fabs(res.shaping.db_per_decade - 20.0) < 7.0);
  bench::shape_check("SNDR within 5 dB of the paper's 69.5 dB",
                     std::fabs(res.sndr.sndr_db - 69.5) < 5.0);
  bench::shape_check("mismatch/quantization energy lives out of band",
                     outband > inband * 10.0);
}

}  // namespace

int main() {
  bench::header("Fig. 17 - output spectra with noise shaping",
                "Fig. 17a (40 nm), Fig. 17b (180 nm); 20 dB/dec annotation");
  spectrum_for(core::AdcSpec::paper_40nm(), 1e6);
  spectrum_for(core::AdcSpec::paper_180nm(), 250e3);
  return 0;
}
