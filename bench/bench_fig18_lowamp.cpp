// Fig. 18 reproduction: ADC spectrum and time-domain output with a low
// (10 mV) input amplitude in 40 nm. Claim under test: "No idle tones are
// observed for the low input amplitude."
#include "bench/bench_common.h"
#include "util/ascii_plot.h"

using namespace vcoadc;

int main() {
  bench::header("Fig. 18 - low input amplitude (10 mV), 40 nm",
                "Fig. 18: spectrum + transient, no idle tones");

  const auto spec = core::AdcSpec::paper_40nm();
  core::AdcDesign adc(spec);
  core::SimulationOptions opts;
  opts.n_samples = bench::kSpectrumSamples;
  opts.fin_target_hz = 1e6;
  // 10 mV amplitude on a 1.1 V differential full scale.
  opts.amplitude_dbfs = util::db_amplitude(0.010 / (1.1 / 2.0));
  const auto res = adc.simulate(opts);

  std::printf("input amplitude: 10 mV (%.1f dBFS)\n", opts.amplitude_dbfs);

  util::PlotOptions po;
  po.log_x = true;
  po.clamp_y = true;
  po.y_min = -130;
  po.y_max = 0;
  po.title = "low-amplitude output spectrum [dBFS]";
  po.x_label = "frequency [Hz]";
  std::printf("%s", util::ascii_plot(res.spectrum.freq_hz, res.spectrum.dbfs,
                                     po).c_str());

  std::vector<double> codes(res.mod.counts.begin(),
                            res.mod.counts.begin() + 1024);
  util::PlotOptions tw;
  tw.title = "time-domain output codes (first 1024 samples)";
  tw.height = 12;
  std::printf("\n%s", util::ascii_plot(codes, tw).c_str());

  std::printf("fundamental: %.1f dBFS at %s | in-band SNR %.1f dB\n",
              res.sndr.fundamental_dbfs,
              util::si_format(res.fin_hz, "Hz").c_str(), res.sndr.snr_db);
  std::printf("idle-tone scan (spurs >12 dB above local floor, in band): "
              "%zu found\n", res.idle_tones.size());
  for (const auto& t : res.idle_tones) {
    std::printf("  tone at %s, %.1f dBFS (%.1f dB above floor)\n",
                util::si_format(t.freq_hz, "Hz").c_str(), t.dbfs,
                t.above_floor_db);
  }

  bench::shape_check("no idle tones at 10 mV input (paper's claim)",
                     res.idle_tones.empty());
  bench::shape_check("the 10 mV fundamental is still clearly resolved",
                     res.sndr.fundamental_dbfs > -45.0 &&
                         res.sndr.snr_db > 20.0);
  return 0;
}
