// Extension bench: the paper's closing forecast, executed. "Since the power
// consumed by the digital portion still occupies 73% of the total power, we
// can expect to see further power reduction and FOM improvement in more
// advanced process due to digital scaling." We port the same converter to
// 32 nm and 22 nm (clock scaled with FO4, same architecture) and regenerate
// Table 3's columns.
#include "bench/bench_common.h"
#include "tech/tech_node.h"

using namespace vcoadc;

int main() {
  bench::header("Extension - scaling forecast beyond the paper's nodes",
                "Sec. 4 closing claim: FOM keeps improving past 40 nm");

  const auto& db = tech::TechDatabase::standard();
  util::Table t("same architecture across nodes (fs scaled with 1/FO4)");
  t.set_header({"node", "fs [MHz]", "BW [MHz]", "SNDR [dB]", "power [mW]",
                "digital %", "area [mm^2]", "FOM [fJ/conv]"});
  std::vector<double> fom, power, area;
  for (double node : {180.0, 90.0, 40.0, 32.0, 22.0}) {
    core::AdcSpec spec = core::AdcSpec::paper_40nm();
    spec.node_nm = node;
    const double speed = db.at(40).fo4_delay_s / db.at(node).fo4_delay_s;
    spec.fs_hz = 750e6 * speed;
    spec.bandwidth_hz = 5e6 * speed;
    core::AdcDesign adc(spec);
    core::SimulationOptions opts;
    opts.n_samples = 1 << 14;
    opts.fin_target_hz = spec.bandwidth_hz / 5.0;
    const auto rep = adc.full_report(opts);
    fom.push_back(rep.run.fom_fj);
    power.push_back(rep.run.power.total_w());
    area.push_back(rep.area_mm2);
    t.add_row({db.at(node).name, bench::fmt("%.0f", spec.fs_hz / 1e6),
               bench::fmt("%.1f", spec.bandwidth_hz / 1e6),
               bench::fmt("%.1f", rep.run.sndr.sndr_db),
               bench::fmt("%.2f", rep.run.power.total_w() * 1e3),
               bench::fmt("%.0f", rep.run.power.digital_fraction() * 100),
               bench::fmt("%.4f", rep.area_mm2),
               bench::fmt("%.0f", rep.run.fom_fj)});
  }
  t.add_footnote("BW widens with the node (same OSR), power shrinks, FOM "
                 "improves: the scaling-compatibility thesis extrapolated");
  t.print(std::cout);

  bench::shape_check("FOM improves monotonically through 22 nm",
                     std::is_sorted(fom.rbegin(), fom.rend()));
  bench::shape_check("FOM at 22 nm beats 40 nm by > 1.5x",
                     fom[2] / fom[4] > 1.5);
  // Area shrinks strongly through 40 nm, then SATURATES: the matching-
  // limited resistor cells stop scaling and start dominating the die - the
  // same effect that makes the paper's 180->40 area ratio 12.6x, not the
  // 20x pure gate-area ratio.
  bench::shape_check("area shrinks monotonically 180 -> 32 nm",
                     area[0] > area[1] && area[1] > area[2] &&
                         area[2] > area[3]);
  bench::shape_check("area saturates at 22 nm (within 15% of 32 nm: "
                     "non-scaling resistors dominate)",
                     std::fabs(area[4] - area[3]) / area[3] < 0.15);
  return 0;
}
