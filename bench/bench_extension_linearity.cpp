// Extension bench: static linearity (DC transfer, INL) - and the static
// face of the intrinsic-CLA claim: element mismatch that tap rotation
// shapes out of the spectrum must also leave the DC transfer straight,
// while a static thermometer mapping of the same mismatched elements bends
// it into visible INL.
#include "bench/bench_common.h"
#include "core/linearity.h"
#include "util/ascii_plot.h"

using namespace vcoadc;

int main() {
  bench::header("Extension - static linearity (INL) and element mapping",
                "DC-transfer view of the refs-[5,6] intrinsic CLA");

  core::AdcSpec spec = core::AdcSpec::paper_40nm();
  // Full non-idealities (incl. the 0.2% DAC mismatch of the spec).
  const double lsb = 2.0 / spec.num_slices;

  util::Table t("endpoint-fit linearity (±0.85 FS sweep, 33 points)");
  t.set_header({"element mapping", "max INL [LSB]", "max DNL [LSB]",
                "|gain| x FS"});
  double inl[2] = {0, 0};
  std::vector<double> inl_curve_rot, inl_curve_stat, xs;
  for (int mode = 0; mode < 2; ++mode) {
    core::TransferOptions opts;
    opts.mapping = mode ? msim::ElementMapping::kStaticThermometer
                        : msim::ElementMapping::kIntrinsicRotation;
    const auto curve = core::measure_transfer(spec, opts);
    const auto rep = core::analyze_linearity(curve, lsb);
    inl[mode] = rep.max_inl_lsb;
    if (mode == 0) {
      xs = curve.input_v;
      inl_curve_rot = rep.inl_lsb;
    } else {
      inl_curve_stat = rep.inl_lsb;
    }
    t.add_row({mode ? "static thermometer" : "intrinsic rotation",
               bench::fmt("%.3f", rep.max_inl_lsb),
               bench::fmt("%.3f", rep.max_dnl_lsb),
               bench::fmt("%.3f", std::fabs(rep.gain) * 1.1)});
  }
  t.print(std::cout);

  util::PlotOptions po;
  po.title = "INL [LSB] vs input (rotation)";
  po.x_label = "input [V]";
  po.height = 10;
  std::printf("\n%s", util::ascii_plot(xs, inl_curve_rot, po).c_str());
  po.title = "INL [LSB] vs input (static thermometer)";
  std::printf("\n%s", util::ascii_plot(xs, inl_curve_stat, po).c_str());

  bench::shape_check("rotation keeps INL below 0.3 LSB", inl[0] < 0.3);
  bench::shape_check("static mapping at least doubles the INL",
                     inl[1] > 2.0 * inl[0]);
  return 0;
}
