// Table 4 reproduction: comparison with previous synthesis-friendly ADCs.
// Our column is fully measured from this reproduction (simulation +
// synthesized layout); prior works' SNDRs are re-derived from behavioral
// models of their architectures, with their published power/area quoted
// alongside (we cannot re-measure fabricated chips behaviorally).
#include "baselines/domino_adc.h"
#include "baselines/passive_dsm.h"
#include "baselines/published.h"
#include "baselines/stochastic_flash.h"
#include "bench/bench_common.h"
#include "dsp/signal_gen.h"
#include "dsp/spectrum.h"

using namespace vcoadc;

namespace {

double model_sndr(const std::vector<double>& y, double fs, double bw,
                  double fin) {
  const auto spec = dsp::compute_spectrum(y, fs, 1.0, dsp::WindowKind::kHann);
  return dsp::analyze_sndr(spec, bw, fin).sndr_db;
}

}  // namespace

int main() {
  bench::header("Table 4 - comparison with previous synthesis-friendly ADCs",
                "Table 4 (5 designs: this work + [15] x2 + [16] + [17])");

  // Our measured column.
  const auto ours = bench::run_node(core::AdcSpec::paper_40nm(), 1e6);

  // Behavioral models of the prior works at their own operating points.
  const std::size_t n = 1 << 14;
  double sndr_model[4] = {0, 0, 0, 0};
  {
    baselines::PassiveDsmAdc::Params p;  // [15] 65 nm
    baselines::PassiveDsmAdc adc(p);
    const double fin = dsp::coherent_freq(300e3, p.fs_hz, n);
    sndr_model[0] = model_sndr(adc.run(dsp::make_sine(0.7, fin), n), p.fs_hz,
                               p.bw_hz, fin);
  }
  {
    baselines::PassiveDsmAdc::Params p;  // [15] 130 nm variant
    p.fs_hz = 80e6;
    p.bw_hz = 2e6;
    // Lower OSR (20 vs 32); the published part compensates with a finer
    // quantizer ladder, which the slower node's area budget affords.
    p.comparators = 31;
    p.seed = 20;  // mid-band mismatch realization (the draws span ~±5 dB)
    baselines::PassiveDsmAdc adc(p);
    const double fin = dsp::coherent_freq(300e3, p.fs_hz, n);
    sndr_model[1] = model_sndr(adc.run(dsp::make_sine(0.7, fin), n), p.fs_hz,
                               p.bw_hz, fin);
  }
  {
    baselines::StochasticFlashAdc::Params p;  // [16] 90 nm
    p.seed = 25;  // mid-band mismatch realization (the draws span ~±3 dB)
    baselines::StochasticFlashAdc adc(p);
    const double fin = dsp::coherent_freq(10e6, p.fs_hz, n);
    sndr_model[2] = model_sndr(adc.run(dsp::make_sine(0.5, fin), n), p.fs_hz,
                               p.bw_hz, fin);
  }
  {
    baselines::DominoAdc::Params p;  // [17] 180 nm
    baselines::DominoAdc adc(p);
    const double fin = dsp::coherent_freq(2e6, p.fs_hz, n);
    sndr_model[3] = model_sndr(adc.run(dsp::make_sine(0.7, fin), n), p.fs_hz,
                               p.bw_hz, fin);
  }

  util::Table t("Table 4");
  t.set_header({"Metric", "This work (measured)", "[15] 65nm", "[15] 130nm",
                "[16] 90nm", "[17] 180nm"});
  const auto& prior = baselines::table4_prior_works();
  auto prow = [&](const char* metric, auto get_ours,
                  auto get_prior) {
    std::vector<std::string> row{metric, get_ours()};
    for (const auto& w : prior) row.push_back(get_prior(w));
    t.add_row(row);
  };
  prow("Process [nm]", [&] { return std::string("40"); },
       [](const auto& w) { return bench::fmt("%.0f", w.process_nm); });
  prow("fs [MHz]", [&] { return std::string("750"); },
       [](const auto& w) { return bench::fmt("%.0f", w.fs_hz / 1e6); });
  prow("BW [MHz]", [&] { return std::string("5"); },
       [](const auto& w) { return bench::fmt("%.2f", w.bw_hz / 1e6); });
  {
    std::vector<std::string> row{"SNDR [dB] (behavioral)",
                                 bench::fmt("%.1f", ours.run.sndr.sndr_db)};
    for (double s : sndr_model) row.push_back(bench::fmt("%.1f", s));
    t.add_row(row);
  }
  prow("SNDR [dB] (published)", [&] { return std::string("69.5*"); },
       [](const auto& w) { return bench::fmt("%.1f", w.sndr_db); });
  prow("Power [mW] (published)",
       [&] { return bench::fmt("%.2f", ours.run.power.total_w() * 1e3); },
       [](const auto& w) { return bench::fmt("%.3f", w.power_w * 1e3); });
  prow("Area [mm^2] (published)",
       [&] { return bench::fmt("%.4f", ours.area_mm2); },
       [](const auto& w) { return bench::fmt("%.3f", w.area_mm2); });
  prow("FOM [fJ/conv] (published)",
       [&] { return bench::fmt("%.0f", ours.run.fom_fj); },
       [](const auto& w) { return bench::fmt("%.0f", w.fom_fj); });
  t.add_footnote("* paper value from post-layout simulation; ours likewise "
                 "from behavioral simulation + synthesized layout");
  t.add_footnote("prior-work power/area are their published chip "
                 "measurements; SNDR (behavioral) re-derived here");
  t.print(std::cout);

  double best_prior_sndr = 0, best_prior_fom = 1e12;
  for (const auto& w : prior) {
    best_prior_sndr = std::max(best_prior_sndr, w.sndr_db);
    best_prior_fom = std::min(best_prior_fom, w.fom_fj);
  }
  std::printf("\nSNDR margin over best prior work: %.1f dB (paper: 13 dB)\n",
              ours.run.sndr.sndr_db - best_prior_sndr);

  bench::shape_check("our SNDR is the highest of all five designs",
                     ours.run.sndr.sndr_db > best_prior_sndr);
  bench::shape_check("our SNDR margin is ~13 dB (>8 dB) over second best",
                     ours.run.sndr.sndr_db - best_prior_sndr > 8.0);
  bench::shape_check("our FOM beats every prior work (paper: 56.2 fJ best)",
                     ours.run.fom_fj < best_prior_fom);
  bench::shape_check("behavioral [15] models land within 4 dB of published",
                     std::fabs(sndr_model[0] - 56.3) < 4.0 &&
                         std::fabs(sndr_model[1] - 56.2) < 4.0);
  bench::shape_check("behavioral [16]/[17] land within 5 dB of published",
                     std::fabs(sndr_model[2] - 35.9) < 5.0 &&
                         std::fabs(sndr_model[3] - 34.2) < 5.0);
  return 0;
}
