#include "baselines/passive_dsm.h"

namespace vcoadc::baselines {

PassiveDsmAdc::PassiveDsmAdc(const Params& p) : p_(p), rng_(p.seed) {
  // Uniform ladder with per-rung standard-cell comparator offsets.
  thresholds_.reserve(static_cast<std::size_t>(p_.comparators));
  for (int i = 0; i < p_.comparators; ++i) {
    const double nominal =
        p_.ladder_range *
        (2.0 * (i + 1) / static_cast<double>(p_.comparators + 1) - 1.0);
    thresholds_.push_back(nominal + rng_.gaussian(0.0, p_.offset_sigma));
  }
}

std::vector<double> PassiveDsmAdc::run(const dsp::SignalFn& vin,
                                       std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  const double dt = 1.0 / p_.fs_hz;
  const double a = 1.0 - p_.integrator_leak;
  double feedback = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = vin(static_cast<double>(i) * dt);
    // Passive integrator: leaky accumulation of (input - feedback).
    state_ = a * state_ + p_.integrator_gain * (u - feedback);
    // Stochastic comparator bank quantizes the integrator state.
    int count = 0;
    for (double th : thresholds_) {
      const double noise = rng_.gaussian(0.0, p_.comparator_noise);
      if (state_ + noise > th) ++count;
    }
    const double y =
        (2.0 * count - p_.comparators) / static_cast<double>(p_.comparators);
    feedback = y;
    out.push_back(y);
  }
  return out;
}

}  // namespace vcoadc::baselines
