// Published measurement numbers of the prior synthesis-friendly ADCs the
// paper compares against in Table 4. These are the fabricated-chip results
// quoted by the paper; our behavioral models of the same architectures
// reproduce the SNDR column so the ranking can be *re-derived*, while
// power/area stay as published (we cannot meaningfully re-measure someone
// else's silicon with a behavioral model).
#pragma once

#include <string>
#include <vector>

namespace vcoadc::baselines {

struct PublishedAdc {
  std::string label;       ///< e.g. "[15] Waters ASSCC'15"
  std::string architecture;
  double supply_v = 0;
  double process_nm = 0;
  double fs_hz = 0;
  double bw_hz = 0;
  double sndr_db = 0;
  double power_w = 0;
  double area_mm2 = 0;
  double fom_fj = 0;
};

/// The four prior-work columns of Table 4 (columns 2-5).
const std::vector<PublishedAdc>& table4_prior_works();

/// The paper's own reported column (column 1), for paper-vs-measured
/// comparison in EXPERIMENTS.md.
PublishedAdc table4_this_work();

}  // namespace vcoadc::baselines
