// Behavioral model of [16]: Weaver et al.'s digitally synthesized
// stochastic flash ADC (TCAS-I 2014). A large bank of identical standard-
// cell comparators is deliberately left UNtrimmed; random device mismatch
// spreads the thresholds into a Gaussian ladder, and the sum of comparator
// outputs quantizes the input through the Gaussian CDF. The arcsine-like
// CDF nonlinearity plus the sqrt(K) statistical noise cap the SNDR in the
// mid-30s dB - the number Table 4 quotes - no matter the oversampling.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/signal_gen.h"
#include "util/rng.h"

namespace vcoadc::baselines {

class StochasticFlashAdc {
 public:
  struct Params {
    double fs_hz = 210e6;
    double bw_hz = 105e6;         ///< Nyquist converter: BW = fs/2
    int comparators = 1023;
    double offset_sigma = 0.5;    ///< threshold spread / full scale
    double comparator_noise = 0.02;
    /// Linearize the CDF with the ideal inverse (the paper's digital
    /// correction); leaves residual statistical + truncation error.
    bool linearize = true;
    std::uint64_t seed = 11;
  };

  explicit StochasticFlashAdc(const Params& p);

  std::vector<double> run(const dsp::SignalFn& vin, std::size_t n);

  const Params& params() const { return p_; }

 private:
  Params p_;
  util::Rng rng_;
  std::vector<double> thresholds_;
};

}  // namespace vcoadc::baselines
