#include "baselines/stochastic_flash.h"

#include <algorithm>
#include <cmath>

namespace vcoadc::baselines {
namespace {

/// Inverse standard normal CDF (Acklam's rational approximation); ample
/// accuracy for linearizing a quantizer with thousands of elements.
double inv_normal_cdf(double p) {
  p = std::clamp(p, 1e-9, 1.0 - 1e-9);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00, 2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - plow) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

}  // namespace

StochasticFlashAdc::StochasticFlashAdc(const Params& p) : p_(p), rng_(p.seed) {
  thresholds_.reserve(static_cast<std::size_t>(p_.comparators));
  for (int i = 0; i < p_.comparators; ++i) {
    thresholds_.push_back(rng_.gaussian(0.0, p_.offset_sigma));
  }
}

std::vector<double> StochasticFlashAdc::run(const dsp::SignalFn& vin,
                                            std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  const double dt = 1.0 / p_.fs_hz;
  const double k = static_cast<double>(p_.comparators);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = vin(static_cast<double>(i) * dt);
    int count = 0;
    for (double th : thresholds_) {
      const double noise = rng_.gaussian(0.0, p_.comparator_noise);
      if (u + noise > th) ++count;
    }
    if (p_.linearize) {
      // Digital correction: invert the Gaussian CDF of the ladder.
      const double frac = (count + 0.5) / (k + 1.0);
      out.push_back(inv_normal_cdf(frac) * p_.offset_sigma);
    } else {
      out.push_back((2.0 * count - k) / k);
    }
  }
  return out;
}

}  // namespace vcoadc::baselines
