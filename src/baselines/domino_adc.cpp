#include "baselines/domino_adc.h"

#include <algorithm>
#include <cmath>

namespace vcoadc::baselines {

DominoAdc::DominoAdc(const Params& p) : p_(p), rng_(p.seed) {
  stage_delay_.reserve(static_cast<std::size_t>(p_.stages));
  for (int i = 0; i < p_.stages; ++i) {
    stage_delay_.push_back(
        std::max(0.2, 1.0 + rng_.gaussian(0.0, p_.stage_mismatch)));
  }
  for (double d : stage_delay_) nominal_total_ += d;
}

std::vector<double> DominoAdc::run(const dsp::SignalFn& vin, std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  const double dt = 1.0 / p_.fs_hz;
  // Conversion window sized so a zero input reaches mid-chain.
  const double window = nominal_total_ / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = std::clamp(vin(static_cast<double>(i) * dt), -1.0, 1.0);
    // Input speeds up / slows down every domino stage, with a quadratic
    // term modelling the non-ideal V-to-delay law.
    const double rate =
        1.0 + 0.5 * u + p_.delay_nonlinearity * 0.25 * u * u;
    double budget = window * rate * (1.0 + rng_.gaussian(0.0, p_.jitter_rel));
    int reached = 0;
    for (double d : stage_delay_) {
      budget -= d;
      if (budget < 0) break;
      ++reached;
    }
    out.push_back(2.0 * reached / static_cast<double>(p_.stages) - 1.0);
  }
  return out;
}

}  // namespace vcoadc::baselines
