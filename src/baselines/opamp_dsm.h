// Behavioral model of the CONVENTIONAL voltage-domain delta-sigma ADC the
// paper's introduction argues against: an active-RC first-order modulator
// whose integrator is built around an opamp of finite DC gain.
//
// The integrator leak is 1/A_dc: with a transistor intrinsic gain of 180
// (0.5 um) a two-stage opamp reaches A ~ 10^4 and the leak is negligible,
// but at 22 nm (intrinsic gain 6, stacking impossible at 1 V) A collapses
// to ~tens, the in-band quantization-noise suppression degrades, and SNDR
// falls with every node - the Fig. 1a story, quantified. This is the
// ablation benchmark bench_ablation_vd_scaling.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/signal_gen.h"
#include "tech/tech_node.h"
#include "util/rng.h"

namespace vcoadc::baselines {

class OpampDsmAdc {
 public:
  struct Params {
    double fs_hz = 150e6;
    double bw_hz = 2e6;
    double opamp_dc_gain = 1000.0;  ///< A: integrator leak = 1/A
    int quantizer_levels = 16;
    double opamp_noise = 0.0;       ///< input-referred / full scale
    std::uint64_t seed = 17;
  };

  explicit OpampDsmAdc(const Params& p);

  std::vector<double> run(const dsp::SignalFn& vin, std::size_t n);

  const Params& params() const { return p_; }

  /// Achievable opamp DC gain at a node: two gain stages when the supply
  /// allows stacking (VDD >= 2.5 V), one otherwise, each contributing the
  /// node's intrinsic gain (times a 0.7 topology factor).
  static double achievable_opamp_gain(const tech::TechNode& node);

 private:
  Params p_;
  util::Rng rng_;
  double state_ = 0.0;
};

}  // namespace vcoadc::baselines
