// Behavioral model of [15]: Waters & Moon's fully synthesized delta-sigma
// ADC (ASSCC 2015). Architecture essentials for the comparison:
//   * a PASSIVE (switched-RC) first-order loop filter - no opamp, so the
//     integrator is lossy: H(z) = b / (1 - a z^-1) with a < 1,
//   * a bank of standard-cell comparators acting as a coarse stochastic
//     quantizer (offsets spread the thresholds),
//   * 1-bit-per-element DAC feedback.
// The lossy integrator caps the in-band noise suppression, which is why the
// published SNDR saturates in the mid-50s dB despite oversampling.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/signal_gen.h"
#include "util/rng.h"

namespace vcoadc::baselines {

class PassiveDsmAdc {
 public:
  struct Params {
    double fs_hz = 150e6;
    double bw_hz = 2.34e6;
    /// Passive integrator leak per sample (a = 1 - leak). ~0.02 for an RC
    /// ratio ~50, the practical ceiling without an opamp.
    double integrator_leak = 0.02;
    double integrator_gain = 1.0;   ///< b: charge-sharing gain
    int comparators = 15;           ///< quantizer ladder size (4-bit)
    double ladder_range = 2.0;      ///< nominal ladder span (+/-)
    double offset_sigma = 0.02;     ///< random offset on each rung
    double comparator_noise = 0.003;///< input-referred noise / full scale
    std::uint64_t seed = 7;
  };

  explicit PassiveDsmAdc(const Params& p);

  /// Runs n samples against the input signal (full scale = 1.0).
  std::vector<double> run(const dsp::SignalFn& vin, std::size_t n);

  const Params& params() const { return p_; }

 private:
  Params p_;
  util::Rng rng_;
  std::vector<double> thresholds_;
  double state_ = 0.0;
};

}  // namespace vcoadc::baselines
