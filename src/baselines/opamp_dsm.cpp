#include "baselines/opamp_dsm.h"

#include <algorithm>
#include <cmath>

namespace vcoadc::baselines {

OpampDsmAdc::OpampDsmAdc(const Params& p) : p_(p), rng_(p.seed) {}

double OpampDsmAdc::achievable_opamp_gain(const tech::TechNode& node) {
  const double stage = 0.7 * node.intrinsic_gain;
  // Cascoding / two-stage topologies need voltage headroom; below ~2.5 V
  // supply the practical opamp is a single gain stage (gain boosting
  // "requires stacking transistors vertically", Sec. 1).
  const double stages = (node.vdd >= 2.5) ? 2.0 : 1.0;
  return std::pow(stage, stages);
}

std::vector<double> OpampDsmAdc::run(const dsp::SignalFn& vin, std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  const double dt = 1.0 / p_.fs_hz;
  const double a = 1.0 - 1.0 / std::max(p_.opamp_dc_gain, 1.5);
  const int levels = std::max(2, p_.quantizer_levels);
  double feedback = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double u = vin(static_cast<double>(i) * dt);
    if (p_.opamp_noise > 0) u += rng_.gaussian(0.0, p_.opamp_noise);
    state_ = a * state_ + (u - feedback);
    // Mid-tread uniform quantizer over [-2, 2] of integrator state.
    const double step = 4.0 / (levels - 1);
    const double q = std::clamp(
        std::round(state_ / step) * step / 2.0, -1.0, 1.0);
    feedback = q;
    out.push_back(q);
  }
  return out;
}

}  // namespace vcoadc::baselines
