// Behavioral model of [17]: Weaver et al.'s domino-logic ADC (TCAS-II
// 2011). The input voltage gates the discharge rate of a domino chain; a
// counter samples how far the edge propagated in one clock period, giving a
// voltage-to-time-to-code conversion. Per-stage delay mismatch and the
// nonlinear V-to-delay law of the domino gates bound the linearity in the
// ~34 dB SNDR regime of the published part.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/signal_gen.h"
#include "util/rng.h"

namespace vcoadc::baselines {

class DominoAdc {
 public:
  struct Params {
    double fs_hz = 50e6;
    double bw_hz = 25e6;       ///< Nyquist converter
    int stages = 160;          ///< domino chain length
    double stage_mismatch = 0.02;  ///< per-stage delay sigma (relative)
    /// Nonlinearity of the V-to-delay law: delay ~ 1/(1 + u + nl * u^2).
    double delay_nonlinearity = 0.08;
    double jitter_rel = 0.002;  ///< per-conversion timing noise (relative)
    std::uint64_t seed = 13;
  };

  explicit DominoAdc(const Params& p);

  std::vector<double> run(const dsp::SignalFn& vin, std::size_t n);

  const Params& params() const { return p_; }

 private:
  Params p_;
  util::Rng rng_;
  std::vector<double> stage_delay_;  ///< relative per-stage delays
  double nominal_total_ = 0;
};

}  // namespace vcoadc::baselines
