#include "baselines/published.h"

namespace vcoadc::baselines {

const std::vector<PublishedAdc>& table4_prior_works() {
  static const std::vector<PublishedAdc> rows = {
      {"[15] Waters ASSCC'15", "synthesized passive delta-sigma", 1.0, 65,
       150e6, 2.34e6, 56.3, 0.872e-3, 0.014, 348.6},
      {"[15] Waters ASSCC'15 (130nm)", "synthesized passive delta-sigma",
       1.2, 130, 80e6, 2e6, 56.2, 0.983e-3, 0.046, 466.0},
      {"[16] Weaver TCAS'14", "stochastic flash", 1.2, 90, 210e6, 105e6,
       35.9, 34.8e-3, 0.18, 3255.0},
      {"[17] Weaver TCAS-II'11", "domino-logic ADC", 1.3, 180, 50e6, 25e6,
       34.2, 0.433e-3, 0.094, 204.0},
  };
  return rows;
}

PublishedAdc table4_this_work() {
  return {"This work (paper)", "VCO-based CT delta-sigma", 1.1, 40,
          750e6, 5e6, 69.5, 1.37e-3, 0.012, 56.2};
}

}  // namespace vcoadc::baselines
