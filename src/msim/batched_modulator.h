// Batched (structure-of-arrays) transient engine: W Monte-Carlo draws of
// the modulator simulated in lockstep as SIMD lanes.
//
// All MC draws of one sweep share the identical clock-edge control flow —
// same config, same input signal shape, same substep schedule — and differ
// only in their noise/mismatch realizations. That is exactly the shape SIMD
// wants: lane w holds draw w's control-node voltages, ring phases, DAC
// running sums and slice bits side by side, and every arithmetic line of
// the scalar hot loop becomes one packed operation over W lanes.
//
// Bit-identity contract (the ROADMAP lane-0 ≡ serial check, generalized):
// lane k of a batch produces exactly the bits a scalar VcoDsmModulator
// constructed with seeds[k] would produce. Three ingredients make it hold:
//   1. Construction replays the scalar path verbatim: W scalar modulators
//      are built (same ctor-time mismatch draw order) and their state is
//      transposed into lanes (BatchedStateAccess).
//   2. Every per-lane arithmetic expression in the kernel is a transcription
//      of the scalar expression — same operands, same association — and no
//      tier TU enables FMA contraction, so the IEEE op sequence per lane is
//      the scalar one under every dispatch tier.
//   3. Each lane owns independent RNG streams (util::LaneRng) seeded the
//      way the scalar modulator seeds them, so draw sequences per lane are
//      the serial ones even when a ziggurat rejection or a data-dependent
//      metastability draw fires in only one lane.
//
// The kernel itself (batched_lockstep.h) is portable C++ compiled into
// scalar/sse2/avx2/avx512 translation units and dispatched per util::simd
// tier.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "msim/modulator.h"

namespace vcoadc::msim {

/// Reusable scratch for BatchedModulator::run(): per-lane result buffers
/// (the SoA analogue of SimWorkspace). Not thread-safe; one per thread.
/// Buffers grow to the largest run seen; reset() drops them.
struct BatchedWorkspace {
  std::vector<ModulatorResult> results;  ///< one per lane
  std::vector<double> substep_frac;      ///< m / substeps
  // Input signal (and reference ripple) pre-evaluated per substep instant,
  // indexed [n * substeps + m]; shared across lanes. Filled by run() so the
  // lockstep kernel's hot loop makes no indirect std::function / libm calls
  // (a call clobbers the vector registers, forcing the kernel to spill all
  // live lane state around every substep).
  std::vector<double> base_vals;
  std::vector<double> vref_vals;  ///< only sized when ripple is enabled

  void reset() {
    results = {};
    substep_frac = {};
    base_vals = {};
    vref_vals = {};
  }
};

class BatchedModulator {
 public:
  using Options = VcoDsmModulator::Options;

  /// Lane widths the kernels are instantiated for.
  static bool width_supported(int w) { return w == 2 || w == 4 || w == 8; }

  /// The lane width core::monte_carlo should group draws by on this host
  /// (util::simd::active_width, clamped to a supported width).
  static int preferred_width();

  /// Builds a batch of seeds.size() lanes over a shared config; lane k is
  /// a scalar modulator with cfg.seed = seeds[k]. Returns nullptr when the
  /// shape is not batchable (unsupported width or a current-steering DAC,
  /// whose shared bias-noise stream is inherently serial) — callers fall
  /// back to the scalar path.
  static std::unique_ptr<BatchedModulator> create(
      const SimConfig& cfg, const std::vector<std::uint64_t>& seeds,
      const Options& opts = Options{});

  /// Heterogeneous batch: lane k is a scalar modulator built from cfgs[k]
  /// verbatim (seed included). Lanes may differ in any run *value* — PVT
  /// corners move vdd/vrefp/kvco/noise amplitudes, amplitude sweeps move
  /// only the drive — but must share the clock structure (fs, substeps,
  /// num_slices) and agree on every noise-source on/off flag, since the
  /// lane RNG advances all streams together. Returns nullptr when the
  /// shape is not batchable — callers fall back to the scalar path.
  static std::unique_ptr<BatchedModulator> create(
      const std::vector<SimConfig>& cfgs, const Options& opts = Options{});

  int width() const { return static_cast<int>(lanes_.size()); }
  const SimConfig& config() const { return lanes_.front().config(); }

  /// Per-lane scalar-modulator figures (lane DAC mismatch moves them).
  double full_scale_diff(int lane) const;
  double input_common_mode(int lane) const;

  /// Runs n_samples clock periods on every lane. The input signal is
  /// shared across lanes up to a per-lane amplitude: lane w sees
  /// lane_scale[w] * base(t), bit-identical to a scalar run driven by
  /// dsp::make_sine(lane_scale[w], f) when base = make_sine(1.0, f).
  /// Each call restarts from the constructed state, i.e. behaves like a
  /// fresh scalar modulator's first run(). Returns ws.results.
  const std::vector<ModulatorResult>& run(
      const dsp::SignalFn& base, const std::vector<double>& lane_scale,
      std::size_t n_samples, BatchedWorkspace& ws) const;

 private:
  explicit BatchedModulator(std::vector<VcoDsmModulator> lanes)
      : lanes_(std::move(lanes)) {}

  std::vector<VcoDsmModulator> lanes_;
};

}  // namespace vcoadc::msim
