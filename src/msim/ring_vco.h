// Behavioral model of the supply-controlled pseudo-differential ring VCO
// (Fig. 5: each stage is 4 cross-coupled inverters; the control voltage is
// the stage supply).
//
// The ring is represented by its accumulated fundamental phase. An N-stage
// differential ring offers N taps spaced pi/N apart in fundamental phase;
// per-stage delay mismatch perturbs those tap offsets (which the delta-sigma
// loop first-order shapes — the robustness claim of Sec. 2.2).
//
// advance() and freq_hz() are called twice per continuous-time substep and
// tap_phase()/time_to_edge per slice per clock edge, so they are defined
// inline; the white-FM noise amplitude sqrt(S_f * dt) depends only on the
// (constant) substep length and is cached.
#pragma once

#include <cmath>
#include <numbers>
#include <vector>

#include "util/rng.h"

namespace vcoadc::msim {

class RingVco {
 public:
  /// `stage_mismatch_sigma` is the relative sigma of each stage's delay;
  /// `initial_phase_rad` decorrelates the two rings of the pseudo-diff pair.
  RingVco(int num_stages, double center_freq_hz, double kvco_hz_per_v,
          double vctrl_mid_v, double initial_phase_rad,
          double stage_mismatch_sigma, double kvco_gain_factor,
          double white_fm_hz2_per_hz, util::Rng rng);

  /// Instantaneous frequency for a control voltage [Hz]. Clamped at a small
  /// positive floor: a supply-starved ring slows down but never runs
  /// backwards.
  double freq_hz(double vctrl) const {
    const double f = f_center_ + kvco_ * (vctrl - vctrl_mid_);
    // A starved ring approaches (but never reaches) a stall.
    return std::max(f, 0.01 * f_center_);
  }

  /// Advances the ring by dt seconds at control voltage `vctrl`,
  /// accumulating white-FM phase noise if configured.
  void advance(double vctrl, double dt) {
    double dphi = kTwoPi_ * freq_hz(vctrl) * dt;
    if (white_fm_ > 0.0) {
      // White FM noise: S_f(f) = white_fm_ [Hz^2/Hz] => phase random walk
      // with per-step variance (2 pi)^2 * white_fm_ * dt.
      if (dt != noise_dt_) {
        noise_amp_ = kTwoPi_ * std::sqrt(white_fm_ * dt);
        noise_dt_ = dt;
      }
      dphi += noise_amp_ * rng_.gaussian();
    }
    phase_ += dphi;
    // Keep the accumulator in [0, 2*pi). All consumers only ever use the
    // phase mod 2*pi, and a wrapped accumulator both keeps full mantissa
    // precision (an unwrapped phase of ~1e6 rad has only ~2e-10 rad of
    // resolution) and lets every downstream wrap be a conditional subtract
    // instead of a large-quotient fmod, which dominated the hot loop.
    // A single substep advances by well under 2*pi, so one subtract is the
    // common case; the fmod fallback only fires for oversized test dt.
    if (phase_ >= kTwoPi_) {
      phase_ -= kTwoPi_;
      if (phase_ >= kTwoPi_) phase_ = std::fmod(phase_, kTwoPi_);
    } else if (phase_ < 0.0) {
      phase_ += kTwoPi_;
    }
  }

  /// Fundamental phase of tap `i` (0..N-1) right now [rad]. With phase_ in
  /// [0, 2*pi) and tap offsets in [0, ~pi], the result is below 4*pi.
  double tap_phase(int tap) const {
    return phase_ + tap_offsets_[static_cast<std::size_t>(tap)];
  }

  /// Logic level of tap `i`: true while the (square-wave) tap is high.
  bool tap_level(int tap) const {
    double p = tap_phase(tap);
    if (p >= kTwoPi_) p -= kTwoPi_;
    if (p >= kTwoPi_) p = std::fmod(p, kTwoPi_);
    return p < std::numbers::pi;
  }

  /// Time until the next edge (either direction) of tap `i`, given a
  /// pre-computed instantaneous frequency. The clock-edge loop hoists
  /// freq_hz() out so it is evaluated once per edge instead of per slice.
  double time_to_edge_at(int tap, double freq_hz_now) const {
    double p = tap_phase(tap);
    while (p >= std::numbers::pi) p -= std::numbers::pi;  // <= 4 iterations
    const double to_edge_rad = std::numbers::pi - p;
    return to_edge_rad / (kTwoPi_ * freq_hz_now);
  }

  /// Time until the next edge (either direction) of tap `i`, given the
  /// current control voltage. Used for metastability modelling.
  double time_to_edge(int tap, double vctrl) const {
    return time_to_edge_at(tap, freq_hz(vctrl));
  }

  double phase() const { return phase_; }
  int num_stages() const { return num_stages_; }
  double center_freq_hz() const { return f_center_; }
  double kvco() const { return kvco_; }

  /// The per-tap static phase offsets (nominal spacing + mismatch) [rad].
  const std::vector<double>& tap_offsets() const { return tap_offsets_; }

 private:
  // Batched engine state transposer (batched_modulator.cpp): reads the
  // mismatch-drawn constants and the noise stream to build SoA lanes.
  friend struct BatchedStateAccess;

  static constexpr double kTwoPi_ = 2.0 * std::numbers::pi;

  int num_stages_;
  double f_center_;
  double kvco_;
  double vctrl_mid_;
  double phase_;  // accumulated fundamental phase [rad]
  double white_fm_;
  std::vector<double> tap_offsets_;
  util::Rng rng_;
  // Cached white-FM step amplitude; noise_dt_ < 0 forces the first compute.
  double noise_amp_ = 0.0;
  double noise_dt_ = -1.0;
};

}  // namespace vcoadc::msim
