// Behavioral model of the supply-controlled pseudo-differential ring VCO
// (Fig. 5: each stage is 4 cross-coupled inverters; the control voltage is
// the stage supply).
//
// The ring is represented by its accumulated fundamental phase. An N-stage
// differential ring offers N taps spaced pi/N apart in fundamental phase;
// per-stage delay mismatch perturbs those tap offsets (which the delta-sigma
// loop first-order shapes — the robustness claim of Sec. 2.2).
#pragma once

#include <vector>

#include "util/rng.h"

namespace vcoadc::msim {

class RingVco {
 public:
  /// `stage_mismatch_sigma` is the relative sigma of each stage's delay;
  /// `initial_phase_rad` decorrelates the two rings of the pseudo-diff pair.
  RingVco(int num_stages, double center_freq_hz, double kvco_hz_per_v,
          double vctrl_mid_v, double initial_phase_rad,
          double stage_mismatch_sigma, double kvco_gain_factor,
          double white_fm_hz2_per_hz, util::Rng rng);

  /// Instantaneous frequency for a control voltage [Hz]. Clamped at a small
  /// positive floor: a supply-starved ring slows down but never runs
  /// backwards.
  double freq_hz(double vctrl) const;

  /// Advances the ring by dt seconds at control voltage `vctrl`,
  /// accumulating white-FM phase noise if configured.
  void advance(double vctrl, double dt);

  /// Fundamental phase of tap `i` (0..N-1) right now [rad].
  double tap_phase(int tap) const;

  /// Logic level of tap `i`: true while the (square-wave) tap is high.
  bool tap_level(int tap) const;

  /// Time until the next edge (either direction) of tap `i`, given the
  /// current control voltage. Used for metastability modelling.
  double time_to_edge(int tap, double vctrl) const;

  double phase() const { return phase_; }
  int num_stages() const { return num_stages_; }
  double center_freq_hz() const { return f_center_; }
  double kvco() const { return kvco_; }

  /// The per-tap static phase offsets (nominal spacing + mismatch) [rad].
  const std::vector<double>& tap_offsets() const { return tap_offsets_; }

 private:
  int num_stages_;
  double f_center_;
  double kvco_;
  double vctrl_mid_;
  double phase_;  // accumulated fundamental phase [rad]
  double white_fm_;
  std::vector<double> tap_offsets_;
  util::Rng rng_;
};

}  // namespace vcoadc::msim
