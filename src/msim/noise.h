// Auxiliary noise processes: sampling-clock jitter and 1/f (pink) noise.
#pragma once

#include <vector>

#include "util/rng.h"

namespace vcoadc::msim {

/// Gaussian per-edge clock jitter.
class JitterSource {
 public:
  JitterSource(double sigma_s, util::Rng rng) : sigma_(sigma_s), rng_(rng) {}
  /// Jitter of the next clock edge [s]; 0 if disabled.
  double next_edge_jitter() {
    return (sigma_ > 0.0) ? rng_.gaussian(0.0, sigma_) : 0.0;
  }

 private:
  double sigma_;
  util::Rng rng_;
};

/// Pink (1/f) noise via a sum of first-order Ornstein-Uhlenbeck processes
/// with octave-spaced time constants — flat-in-octaves power, the standard
/// cheap flicker model for behavioral circuit simulation.
class PinkNoise {
 public:
  /// `amplitude` is the approximate RMS of the produced process; `f_lo` and
  /// `f_hi` bound the 1/f region; `dt` is the update period.
  PinkNoise(double amplitude, double f_lo, double f_hi, double dt,
            util::Rng rng);

  /// Advances one step of `dt` and returns the current value.
  double step();

  double value() const { return value_; }

 private:
  struct Stage {
    double a = 0.0;      // exp(-dt/tau)
    double sigma = 0.0;  // per-step injection
    double state = 0.0;
  };
  std::vector<Stage> stages_;
  util::Rng rng_;
  double value_ = 0.0;
};

}  // namespace vcoadc::msim
