#include "msim/phase_noise.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dsp/fft.h"
#include "dsp/window.h"

namespace vcoadc::msim {

double white_fm_theory_dbc(double k_hz2_per_hz, double offset_hz) {
  // S_phi(f) = K / f^2 [rad^2/Hz]; L(f) = S_phi/2.
  return 10.0 * std::log10(k_hz2_per_hz / (2.0 * offset_hz * offset_hz));
}

double PhaseNoiseResult::at(double offset_hz) const {
  if (points.size() < 2) return std::nan("");
  if (offset_hz < points.front().offset_hz ||
      offset_hz > points.back().offset_hz) {
    return std::nan("");
  }
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (offset_hz <= points[i].offset_hz) {
      const auto& a = points[i - 1];
      const auto& b = points[i];
      const double t = (std::log10(offset_hz) - std::log10(a.offset_hz)) /
                       (std::log10(b.offset_hz) - std::log10(a.offset_hz));
      return a.dbc_per_hz + t * (b.dbc_per_hz - a.dbc_per_hz);
    }
  }
  return points.back().dbc_per_hz;
}

PhaseNoiseResult measure_phase_noise(RingVco& vco, double vctrl,
                                     double fs_hz, std::size_t n) {
  PhaseNoiseResult result;
  const double dt = 1.0 / fs_hz;

  // Sample accumulated phase. RingVco::advance wraps its accumulator above
  // 1e6 rad; the wrap preserves phase modulo 2*pi, so reconstruct each
  // increment as the nominal step plus its 2*pi-wrapped residual (the
  // per-step noise is orders of magnitude below pi).
  std::vector<double> phase(n, 0.0);
  double acc = 0.0;
  double prev = vco.phase();
  const double expected = 2.0 * std::numbers::pi * vco.freq_hz(vctrl) * dt;
  for (std::size_t i = 0; i < n; ++i) {
    vco.advance(vctrl, dt);
    const double d = vco.phase() - prev;
    prev = vco.phase();
    acc += expected + std::remainder(d - expected, 2.0 * std::numbers::pi);
    phase[i] = acc;
  }

  // Remove the best-fit carrier ramp (least squares line).
  const double dn = static_cast<double>(n);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    sx += x;
    sy += phase[i];
    sxx += x * x;
    sxy += x * phase[i];
  }
  const double slope = (dn * sxy - sx * sy) / (dn * sxx - sx * sx);
  const double intercept = (sy - slope * sx) / dn;
  result.carrier_hz = slope / (2.0 * std::numbers::pi * dt);
  std::vector<double> dev(n);
  for (std::size_t i = 0; i < n; ++i) {
    dev[i] = phase[i] - (intercept + slope * static_cast<double>(i));
  }

  // Windowed periodogram of the phase deviation: S_phi(f) in rad^2/Hz.
  const auto w = dsp::make_window(dsp::WindowKind::kHann, n);
  double sum_w2 = 0;
  for (double v : w) sum_w2 += v * v;
  std::vector<dsp::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = dev[i] * w[i];
  dsp::fft_in_place(data);
  const double bin_hz = fs_hz / dn;
  const double scale = 2.0 / (fs_hz * sum_w2);  // one-sided PSD

  // Log-spaced offsets, median-averaged in octave buckets to tame the
  // chi-squared scatter of a single periodogram.
  const std::size_t lo_bin = 4;
  const std::size_t hi_bin = n / 2 - 1;
  for (double f = lo_bin * bin_hz * 1.5; f < hi_bin * bin_hz / 1.5;
       f *= 2.0) {
    std::vector<double> vals;
    for (std::size_t k = lo_bin; k <= hi_bin; ++k) {
      const double fk = static_cast<double>(k) * bin_hz;
      if (fk > f / 1.4 && fk < f * 1.4) {
        vals.push_back(std::norm(data[k]) * scale);
      }
    }
    if (vals.size() < 3) continue;
    std::nth_element(vals.begin(), vals.begin() + vals.size() / 2,
                     vals.end());
    const double s_phi = vals[vals.size() / 2];
    if (s_phi <= 0) continue;
    result.points.push_back({f, 10.0 * std::log10(s_phi / 2.0)});
  }

  // Slope fit (dB vs log10 f).
  if (result.points.size() >= 3) {
    double fx = 0, fy = 0, fxx = 0, fxy = 0;
    for (const auto& p : result.points) {
      const double x = std::log10(p.offset_hz);
      fx += x;
      fy += p.dbc_per_hz;
      fxx += x * x;
      fxy += x * p.dbc_per_hz;
    }
    const double m = static_cast<double>(result.points.size());
    result.slope_db_per_decade = (m * fxy - fx * fy) / (m * fxx - fx * fx);
  }
  return result;
}

}  // namespace vcoadc::msim
