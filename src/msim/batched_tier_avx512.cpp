// AVX-512 tier of the lockstep kernel. The build compiles this TU with
// -mavx512f/dq/vl/bw plus -ffp-contract=off when the toolchain targets x86
// (-mavx512f implies FMA availability, and GCC's default contraction would
// fuse a*b+c here and break the cross-tier bit-identity contract — the
// other tiers avoid this only because their ISAs carry no FMA); otherwise
// it is plain portable C++ and the runtime CPUID probe keeps it unselected.
#include "msim/batched_lockstep.h"

namespace vcoadc::msim::lockstep::tier_avx512 {

namespace {
void run_w2(const BatchedSetup& s, BatchedWorkspace& ws) {
  run_lockstep<2>(s, ws);
}
void run_w4(const BatchedSetup& s, BatchedWorkspace& ws) {
  run_lockstep<4>(s, ws);
}
void run_w8(const BatchedSetup& s, BatchedWorkspace& ws) {
  run_lockstep<8>(s, ws);
}
}  // namespace

const LockstepTable& table() {
  static const LockstepTable t{&run_w2, &run_w4, &run_w8};
  return t;
}

}  // namespace vcoadc::msim::lockstep::tier_avx512
