#include "msim/noise.h"

#include <cmath>
#include <numbers>

namespace vcoadc::msim {

PinkNoise::PinkNoise(double amplitude, double f_lo, double f_hi, double dt,
                     util::Rng rng)
    : rng_(rng) {
  if (amplitude <= 0.0 || f_lo <= 0.0 || f_hi <= f_lo) return;
  // One OU stage per octave between f_lo and f_hi; equal per-stage variance
  // yields ~1/f total PSD.
  const int octaves =
      std::max(1, static_cast<int>(std::ceil(std::log2(f_hi / f_lo))));
  const double per_stage_var =
      amplitude * amplitude / static_cast<double>(octaves);
  for (int k = 0; k < octaves; ++k) {
    const double f = f_lo * std::pow(2.0, k + 0.5);
    const double tau = 1.0 / (2.0 * std::numbers::pi * f);
    Stage s;
    s.a = std::exp(-dt / tau);
    s.sigma = std::sqrt(per_stage_var * (1.0 - s.a * s.a));
    stages_.push_back(s);
  }
}

double PinkNoise::step() {
  double v = 0.0;
  for (Stage& s : stages_) {
    s.state = s.a * s.state + rng_.gaussian(0.0, s.sigma);
    v += s.state;
  }
  value_ = v;
  return v;
}

}  // namespace vcoadc::msim
