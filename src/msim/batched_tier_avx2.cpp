// AVX2 tier of the lockstep kernel. The build compiles this TU with -mavx2
// (and deliberately WITHOUT -mfma: fused contraction would change per-lane
// results vs the other tiers) when the toolchain targets x86; otherwise it
// is plain portable C++ and the runtime CPUID probe keeps it unselected.
#include "msim/batched_lockstep.h"

namespace vcoadc::msim::lockstep::tier_avx2 {

namespace {
void run_w2(const BatchedSetup& s, BatchedWorkspace& ws) {
  run_lockstep<2>(s, ws);
}
void run_w4(const BatchedSetup& s, BatchedWorkspace& ws) {
  run_lockstep<4>(s, ws);
}
void run_w8(const BatchedSetup& s, BatchedWorkspace& ws) {
  run_lockstep<8>(s, ws);
}
}  // namespace

const LockstepTable& table() {
  static const LockstepTable t{&run_w2, &run_w4, &run_w8};
  return t;
}

}  // namespace vcoadc::msim::lockstep::tier_avx2
