#include "msim/comparator.h"

#include <algorithm>
#include <cmath>

namespace vcoadc::msim {

double common_mode_error_prob(ComparatorKind kind, double vcm, double vdd) {
  // Smooth logistic roll-off around the topology's CM limit. Width ~50 mV.
  auto logistic = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
  constexpr double kWidth = 0.05;
  switch (kind) {
    case ComparatorKind::kStrongArm:
      return 0.0;  // full-range AMS comparator
    case ComparatorKind::kNand3: {
      // NMOS input pair: needs vcm comfortably above ~0.45*VDD.
      const double limit = 0.45 * vdd;
      return 0.5 * logistic((limit - vcm) / kWidth);
    }
    case ComparatorKind::kNor3: {
      // PMOS input pair: valid at low CM, degrades near the supply.
      const double limit = 0.70 * vdd;
      return 0.5 * logistic((vcm - limit) / kWidth);
    }
  }
  return 0.0;
}

SamplingFrontEnd::SamplingFrontEnd(const Params& p, util::Rng rng)
    : params_(p), rng_(rng) {
  if (p.offset_sigma_v > 0.0) offset_v_ = rng_.gaussian(0.0, p.offset_sigma_v);
  const double slew = std::max(p.tap_slew_v_per_s, 1.0);
  offset_time_s_ = offset_v_ / slew;
  cm_error_prob_ = common_mode_error_prob(p.kind, p.input_cm_v, p.vdd);
}

}  // namespace vcoadc::msim
