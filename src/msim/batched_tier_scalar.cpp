// Scalar tier of the lockstep kernel: compiled with the tree vectorizers
// disabled (see src/msim/CMakeLists.txt) so the portable per-lane code path
// stays genuinely scalar and exercisable on any host. Bit-identical to the
// other tiers by the no-FMA/no-reassociation contract in util/simd.h.
#include "msim/batched_lockstep.h"

namespace vcoadc::msim::lockstep::tier_scalar {

namespace {
void run_w2(const BatchedSetup& s, BatchedWorkspace& ws) {
  run_lockstep<2>(s, ws);
}
void run_w4(const BatchedSetup& s, BatchedWorkspace& ws) {
  run_lockstep<4>(s, ws);
}
void run_w8(const BatchedSetup& s, BatchedWorkspace& ws) {
  run_lockstep<8>(s, ws);
}
}  // namespace

const LockstepTable& table() {
  static const LockstepTable t{&run_w2, &run_w4, &run_w8};
  return t;
}

}  // namespace vcoadc::msim::lockstep::tier_scalar
