// Internal lane-lockstep kernel of the batched transient engine.
//
// run_lockstep<W>() is a line-for-line transcription of
// VcoDsmModulator::run() with every per-draw scalar replaced by a W-lane
// structure-of-arrays value (util::simd::vec). It is compiled four times —
// batched_tier_{scalar,sse2,avx2,avx512}.cpp — with different codegen flags
// and dispatched at runtime (see util/simd.h). The TUs contain no
// intrinsics and never contract FMA (the avx512 TU carries -ffp-contract=off
// because -mavx512f implies FMA), so each lane's IEEE operation sequence is
// identical across tiers and identical to the scalar modulator's; the tier
// changes only how many lanes one instruction retires.
//
// Everything allocation- or libm-setup-related (pole factors, noise
// amplitudes, mismatch transposition, result-buffer sizing) happens in
// batched_modulator.cpp (baseline TU) and arrives here precomputed in
// BatchedSetup; the kernel holds only the per-clock hot loop.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "msim/batched_modulator.h"
#include "util/rng.h"
#include "util/simd.h"

namespace vcoadc::msim::lockstep {

/// Flattened, lane-major launch state. Per-lane vectors are indexed [w];
/// per-slice-per-lane vectors are indexed [i * width + w] so the lane loop
/// over one slice touches contiguous memory.
struct BatchedSetup {
  int width = 0;
  int n_slices = 0;
  int substeps = 0;
  std::size_t n_samples = 0;
  double ts = 0.0;
  double dt = 0.0;

  // Shared control-flow flags (identical across lanes by construction —
  // BatchedModulator::create refuses batches whose lanes disagree, because
  // gaussian_lanes advances every lane's stream: a noise source firing in
  // one lane but not another would desynchronize the per-lane draw
  // sequences from the scalar modulator's).
  bool vref_ripple = false;
  double ripple_amp = 0.0;
  double ripple_freq = 0.0;
  bool thermal_noise = false;
  bool white_fm = false;
  bool has_jitter = false;
  bool has_comp_noise = false;
  bool has_meta = false;
  bool has_cm_error = false;
  bool record_bits = false;
  bool static_mapping = false;
  std::uint64_t d_init = 0;  ///< SliceBits::alternating start word

  // Per-lane run constants [w]. Formerly shared scalars; heterogeneous
  // batches (PVT corners, amplitude sweeps) give each lane its own value.
  // Only the *values* may differ lane-to-lane — the flags above must agree.
  // A homogeneous batch loads W identical values, which is the exact same
  // compare/arithmetic the old splat produced, so bits are unchanged.
  std::vector<double> vctrl_mid, f_center, g_input, vrefp;
  std::vector<double> f_floor;  ///< 0.01 * f_center (RingVco's stall clamp)
  std::vector<double> fm_noise_amp;  ///< 2*pi*sqrt(white_fm*dt) per lane
  std::vector<double> jitter_sigma, comp_noise_sigma, comp_meta_window;
  std::vector<double> comp_slew_div;  ///< max(tap_slew, 1.0)
  std::vector<double> comp_buffer_delay, cm_error_prob;

  // Per-lane constants [w].
  std::vector<double> scale, vcm_in, kvco1, kvco2, phase1, phase2;
  std::vector<double> g_total_p, g_total_n, g_fold;
  std::vector<double> pole_a, pole_g_total, node_noise_sigma;
  // Per-slice-per-lane constants [i * width + w].
  std::vector<double> tap_off1, tap_off2, offt1, offt2, g_p, g_n;
  // RNG stream positions to install into the lanes (scalar Rng copies,
  // exactly as the per-lane modulators forked them).
  std::vector<util::Rng> rng_node_p, rng_node_n, rng_vco1, rng_vco2,
      rng_jit;                          // [w]
  std::vector<util::Rng> rng_fe1, rng_fe2;  // [i * width + w]
};

// `static` is load-bearing: as an ordinary header template this would be a
// weak (comdat) symbol, and the linker would merge the three tier TUs'
// instantiations into one — silently running a single tier's codegen under
// every dispatch table entry. Internal linkage keeps one independently
// compiled copy per TU, which is the whole point of the tier scheme.
template <int W>
static void run_lockstep(const BatchedSetup& s, BatchedWorkspace& ws) {
  using V = util::simd::vec<W>;
  using util::simd::vmax;
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  constexpr double kPi = std::numbers::pi;

  const int n_slices = s.n_slices;
  const double dt = s.dt;
  // Input signal / reference pre-evaluated per substep instant by run();
  // the hot loop below is call-free on its common path.
  const double* bv = ws.base_vals.data();
  const double* vv = ws.vref_vals.data();

  // Every run constant is copied to a local: the result buffers are
  // written through ws (heap pointers the compiler cannot prove distinct
  // from the setup struct's storage), so reads of s.* inside the clock loop
  // would otherwise be reloaded — and re-broadcast — on every use. The
  // formerly shared scalars are now per-lane vectors (heterogeneous
  // corner/amplitude batches); a homogeneous batch loads W identical
  // values, making every V⊙V below bit-identical to the old V⊙scalar.
  const int substeps = s.substeps;
  const V vctrl_mid = V::load(s.vctrl_mid.data());
  const V f_center = V::load(s.f_center.data());
  const V f_floor = V::load(s.f_floor.data());
  const V g_input = V::load(s.g_input.data());
  const V vrefp = V::load(s.vrefp.data());
  const bool vref_ripple = s.vref_ripple;
  const bool thermal_noise = s.thermal_noise;
  const bool white_fm = s.white_fm;
  const V fm_noise_amp = V::load(s.fm_noise_amp.data());
  const bool has_jitter = s.has_jitter;
  const V jitter_sigma = V::load(s.jitter_sigma.data());
  const bool has_comp_noise = s.has_comp_noise;
  const V comp_noise_sigma = V::load(s.comp_noise_sigma.data());
  const bool has_meta = s.has_meta;
  // The scalar path computes `window * (1.0 + 1e-9)` once outside the loop;
  // the same per-lane product here keeps the pre-filter bound's association.
  const V meta_margin =
      V::load(s.comp_meta_window.data()) * (1.0 + 1e-9);
  const double* meta_window_data = s.comp_meta_window.data();
  const V comp_slew_div = V::load(s.comp_slew_div.data());
  const V comp_buffer_delay = V::load(s.comp_buffer_delay.data());
  const bool has_cm_error = s.has_cm_error;
  const double* cm_error_data = s.cm_error_prob.data();
  const bool record_bits = s.record_bits;
  const bool static_mapping = s.static_mapping;
  const double* g_p_data = s.g_p.data();
  const double* g_n_data = s.g_n.data();
  const double* tap_off1_data = s.tap_off1.data();
  const double* tap_off2_data = s.tap_off2.data();
  const double* offt1_data = s.offt1.data();
  const double* offt2_data = s.offt2.data();

  // Install the RNG streams (SoA lanes).
  util::LaneRng<W> rng_np, rng_nn, rng_v1, rng_v2, rng_jit;
  std::vector<util::LaneRng<W>> rng_fe1(static_cast<std::size_t>(n_slices));
  std::vector<util::LaneRng<W>> rng_fe2(static_cast<std::size_t>(n_slices));
  for (int w = 0; w < W; ++w) {
    rng_np.set_lane(w, s.rng_node_p[static_cast<std::size_t>(w)]);
    rng_nn.set_lane(w, s.rng_node_n[static_cast<std::size_t>(w)]);
    rng_v1.set_lane(w, s.rng_vco1[static_cast<std::size_t>(w)]);
    rng_v2.set_lane(w, s.rng_vco2[static_cast<std::size_t>(w)]);
    rng_jit.set_lane(w, s.rng_jit[static_cast<std::size_t>(w)]);
    for (int i = 0; i < n_slices; ++i) {
      const std::size_t iw = static_cast<std::size_t>(i * W + w);
      rng_fe1[static_cast<std::size_t>(i)].set_lane(w, s.rng_fe1[iw]);
      rng_fe2[static_cast<std::size_t>(i)].set_lane(w, s.rng_fe2[iw]);
    }
  }

  // Lane state.
  const V scale = V::load(s.scale.data());
  const V vcm_in = V::load(s.vcm_in.data());
  const V kvco1 = V::load(s.kvco1.data());
  const V kvco2 = V::load(s.kvco2.data());
  const V g_total_p = V::load(s.g_total_p.data());
  const V g_total_n = V::load(s.g_total_n.data());
  const V g_fold = V::load(s.g_fold.data());
  const V pole_a = V::load(s.pole_a.data());
  const V pole_g_total = V::load(s.pole_g_total.data());
  const V node_sigma = V::load(s.node_noise_sigma.data());
  V ph1 = V::load(s.phase1.data());
  V ph2 = V::load(s.phase2.data());
  V vp = vctrl_mid;
  V vn = vctrl_mid;
  V acc_vp = V::splat(0.0), acc_vn = V::splat(0.0);
  V acc_f1 = V::splat(0.0), acc_f2 = V::splat(0.0);
  std::uint64_t d[W];
  std::size_t toggles[W];
  for (int w = 0; w < W; ++w) {
    d[w] = s.d_init;
    toggles[w] = 0;
  }

  // Streamed per-group write-out: run() pre-sizes counts/output to
  // n_samples, so the per-clock stores below are branch-free indexed writes
  // through cached data pointers instead of per-lane push_backs (each of
  // which re-checks capacity and re-loads the vector header per value).
  int* counts_ptr[W];
  double* out_ptr[W];
  for (int w = 0; w < W; ++w) {
    counts_ptr[w] = ws.results[static_cast<std::size_t>(w)].counts.data();
    out_ptr[w] = ws.results[static_cast<std::size_t>(w)].output.data();
  }

  // DAC running on-conductance sums for the current bits, rebuilt in slice
  // order per edge exactly like ResistorDacBank::set_levels (the off-slice
  // contributes +0.0, which is bitwise the same as skipping the add for
  // the positive partial sums involved). P sees the complement of d.
  V g_on_p, g_on_n;
  auto sync_dac_levels = [&]() {
    g_on_p = V::splat(0.0);
    g_on_n = V::splat(0.0);
#if VCOADC_SIMD_NATIVE
    // Branch-free: the DAC word bits are effectively random, so the
    // per-lane ternary below is an unpredictable branch 2*W*n_slices times
    // per clock. The masked adds accumulate the identical partial sums
    // (+0.0 for the off term, exactly as the scalar code's ternary).
    typename util::simd::native_u64vec<W>::type dv;
    for (int w = 0; w < W; ++w) dv[w] = d[w];
    const V zero = V::splat(0.0);
    for (int k = 0; k < n_slices; ++k) {
      const V gp = V::load(&g_p_data[static_cast<std::size_t>(k * W)]);
      const V gn = V::load(&g_n_data[static_cast<std::size_t>(k * W)]);
      const auto on = ((dv >> k) & 1ULL) != 0;
      g_on_p.v += on ? zero.v : gp.v;
      g_on_n.v += on ? gn.v : zero.v;
    }
#else
    for (int k = 0; k < n_slices; ++k) {
      const double* gp = &g_p_data[static_cast<std::size_t>(k * W)];
      const double* gn = &g_n_data[static_cast<std::size_t>(k * W)];
      for (int w = 0; w < W; ++w) {
        const bool on = (d[w] >> k) & 1ULL;
        g_on_p.v[w] += on ? 0.0 : gp[w];
        g_on_n.v[w] += on ? gn[w] : 0.0;
      }
    }
#endif
  };
  sync_dac_levels();

  // Same conditional-subtract wrap as the scalar modulator's wrap_2pi.
  auto wrap_2pi = [](double p) {
    while (p >= kTwoPi) p -= kTwoPi;
    while (p < 0.0) p += kTwoPi;
    return p;
  };

  double lanes_buf[W], lanes_buf2[W];
#if !VCOADC_SIMD_NATIVE
  bool s1[W], s2[W];
#endif

  std::size_t sub_k = 0;
  for (std::size_t n = 0; n < s.n_samples; ++n) {
    for (int m = 0; m < substeps; ++m, ++sub_k) {
      const double sb = bv[sub_k];
      // With ripple the reference is a shared time series (create() demands
      // a uniform vrefp in that case); otherwise each lane's own reference.
      const V vref = vref_ripple ? V::splat(vv[sub_k]) : vrefp;
      const V vin = scale * sb;
      const V vinp = vcm_in + 0.5 * vin;
      const V vinn = vcm_in - 0.5 * vin;
      const V ip = g_on_p * vref - g_total_p * vp;
      const V in = g_on_n * vref - g_total_n * vn;
      // ControlNode::step, exact expression per lane.
      const V i_fixed_p = g_input * vinp + ip + g_fold * vp;
      const V i_fixed_n = g_input * vinn + in + g_fold * vn;
      const V v_inf_p = i_fixed_p / pole_g_total;
      const V v_inf_n = i_fixed_n / pole_g_total;
      vp = v_inf_p + (vp - v_inf_p) * pole_a;
      vn = v_inf_n + (vn - v_inf_n) * pole_a;
      if (thermal_noise) {
        rng_np.gaussian_lanes(lanes_buf);
        rng_nn.gaussian_lanes(lanes_buf2);
        // Rng::gaussian(mean, sigma) is mean + sigma * g; the vector ops
        // below run that exact expression per lane.
        vp += 0.0 + node_sigma * V::load(lanes_buf);
        vn += 0.0 + node_sigma * V::load(lanes_buf2);
      }
      // RingVco::advance per lane.
      const V f1 = vmax(f_center + kvco1 * (vp - vctrl_mid), f_floor);
      const V f2 = vmax(f_center + kvco2 * (vn - vctrl_mid), f_floor);
      V dphi1 = kTwoPi * f1 * dt;
      V dphi2 = kTwoPi * f2 * dt;
      if (white_fm) {
        rng_v1.gaussian_lanes(lanes_buf);
        rng_v2.gaussian_lanes(lanes_buf2);
        dphi1 += fm_noise_amp * V::load(lanes_buf);
        dphi2 += fm_noise_amp * V::load(lanes_buf2);
      }
      // RingVco's wrap, if-converted so it packs: one conditional subtract
      // (or add) is exact for every phase increment the physics can produce
      // (|dphi| < 2*pi); the fmod fallback of the scalar code survives as a
      // rare scalar fixup, so the transcription is exact for any input.
      const V p1 = ph1 + dphi1;
      const V p2 = ph2 + dphi2;
      ph1 = util::simd::select_lt(p1, 0.0, p1 + kTwoPi,
                                  util::simd::select_ge(p1, kTwoPi,
                                                        p1 - kTwoPi, p1));
      ph2 = util::simd::select_lt(p2, 0.0, p2 + kTwoPi,
                                  util::simd::select_ge(p2, kTwoPi,
                                                        p2 - kTwoPi, p2));
      int wrap_rare = 0;
      for (int w = 0; w < W; ++w) {
        wrap_rare |= (ph1.v[w] >= kTwoPi) | (ph1.v[w] < 0.0) |
                     (ph2.v[w] >= kTwoPi) | (ph2.v[w] < 0.0);
      }
      if (wrap_rare != 0) [[unlikely]] {
        for (int w = 0; w < W; ++w) {
          double p = p1.v[w];
          if (p >= kTwoPi) {
            p -= kTwoPi;
            if (p >= kTwoPi) p = std::fmod(p, kTwoPi);
          } else if (p < 0.0) {
            p += kTwoPi;
          }
          ph1.v[w] = p;
          double q = p2.v[w];
          if (q >= kTwoPi) {
            q -= kTwoPi;
            if (q >= kTwoPi) q = std::fmod(q, kTwoPi);
          } else if (q < 0.0) {
            q += kTwoPi;
          }
          ph2.v[w] = q;
        }
      }
      acc_vp += vp;
      acc_vn += vn;
      acc_f1 += f1;
      acc_f2 += f2;
    }

    // Clock edge.
    V jit;
    if (has_jitter) {
      rng_jit.gaussian_lanes(lanes_buf);
      jit = 0.0 + jitter_sigma * V::load(lanes_buf);
    } else {
      jit = V::splat(0.0);
    }
    const V f1e = vmax(f_center + kvco1 * (vp - vctrl_mid), f_floor);
    const V f2e = vmax(f_center + kvco2 * (vn - vctrl_mid), f_floor);
    const V w1 = kTwoPi * f1e;
    const V w2 = kTwoPi * f2e;
    // SamplingFrontEnd::sample for one ring across all lanes of one slice.
    // The common path is if-converted select arithmetic (so it packs); the
    // unbounded while-wrap of the scalar code survives as a rare per-lane
    // fixup, keeping the transcription exact for any argument. The
    // metastability window is resolved per lane because its coin flip is a
    // data-dependent draw on that lane's stream alone.
    // Force-inlined: left to its own devices GCC outlines this lambda and
    // re-loads every by-reference capture through the frame on each of the
    // 2 * n_slices calls per clock, which costs more than the sampling math
    // itself.
#if VCOADC_SIMD_NATIVE
    // Packed comparator path: the decision leaves each sample_ring call as
    // a 0/1 lane-mask vector, the two-ring XOR happens packed, and the
    // decision bit is gathered into the per-lane DAC words with one packed
    // shift+or per slice (movemask-style bit gather). The only per-lane
    // extraction left is one transfer of the W finished words per clock.
    using MV = typename util::simd::native_u64vec<W>::type;
    auto sample_ring = [&](const V& ph, const double* tap, const double* offt,
                           const V& omega, const V& fe, util::LaneRng<W>& rng,
                           MV* outm) VCOADC_LANE_INLINE_LAMBDA {
      V t_eff = (V::load(offt) + comp_buffer_delay) + jit;
      if (has_comp_noise) {
        rng.gaussian_lanes(lanes_buf);
        t_eff += (0.0 + comp_noise_sigma * V::load(lanes_buf)) /
                 comp_slew_div;
      }
      const V arg = (ph + V::load(tap)) + omega * t_eff;
      V wr = util::simd::select_ge(arg, kTwoPi, arg - kTwoPi, arg);
      wr = util::simd::select_ge(wr, kTwoPi, wr - kTwoPi, wr);
      wr = util::simd::select_lt(wr, 0.0, wr + kTwoPi, wr);
      int rare = 0;
      for (int w = 0; w < W; ++w) {
        rare |= (wr.v[w] >= kTwoPi) | (wr.v[w] < 0.0);
      }
      if (rare != 0) [[unlikely]] {
        for (int w = 0; w < W; ++w) wr.v[w] = wrap_2pi(arg.v[w]);
      }
      // The packed compare yields 0/~0 per lane; masking with 1 leaves the
      // scalar decision bit (wr < pi) in every lane at once. (The vector
      // cast reinterprets bits; std::bit_cast would draw -Wpsabi.)
      MV m = (MV)(wr.v < kPi) & 1ULL;
      if (has_meta) {
        // ph < 2*pi and tap < 2*pi, so the scalar `while (p >= pi) p -= pi`
        // runs at most 3 times; three chained conditional subtracts replay
        // it exactly, with a per-lane fallback for anything larger.
        const V p0 = ph + V::load(tap);
        V p = util::simd::select_ge(p0, kPi, p0 - kPi, p0);
        p = util::simd::select_ge(p, kPi, p - kPi, p);
        p = util::simd::select_ge(p, kPi, p - kPi, p);
        int wrap_more = 0;
        for (int w = 0; w < W; ++w) wrap_more |= (p.v[w] >= kPi);
        if (wrap_more != 0) [[unlikely]] {
          for (int w = 0; w < W; ++w) {
            double pw = p0.v[w];
            while (pw >= kPi) pw -= kPi;
            p.v[w] = pw;
          }
        }
        // The scalar decision is `fl(fl(pi - p) / fl(2*pi*fe)) < window`,
        // one division per lane per decision — the costliest instruction on
        // the edge path, and ~99.9% of the quotients land far from the
        // aperture. Pre-filter with a conservative multiply: any true hit
        // satisfies (pi - p) < window * (2*pi*fe) * (1 + 1e-9), because the
        // divide and multiply round within 2^-52 each, orders of magnitude
        // inside the 1e-9 margin. Only candidate lanes (mostly none) pay
        // the exact division, which then decides, bit-for-bit.
        const V lhs = kPi - p;
        const V bnd = (kTwoPi * fe) * meta_margin;
        int cand = 0;
        for (int w = 0; w < W; ++w) {
          cand |= (lhs.v[w] < bnd.v[w]) << w;
        }
        if (cand != 0) [[unlikely]] {
          for (int w = 0; w < W; ++w) {
            if (((cand >> w) & 1) == 0) continue;
            const double tte = lhs.v[w] / (kTwoPi * fe.v[w]);
            if (tte < meta_window_data[w]) {
              m[w] = rng.bernoulli_lane(w, 0.5) ? 1ULL : 0ULL;
            }
          }
        }
      }
      if (has_cm_error) {
        rng.uniform_lanes(lanes_buf);
        for (int w = 0; w < W; ++w) {
          if (lanes_buf[w] < cm_error_data[w]) m[w] ^= 1ULL;
        }
      }
      *outm = m;
    };
    MV raw_v = {};
    for (int i = 0; i < n_slices; ++i) {
      const std::size_t si = static_cast<std::size_t>(i);
      MV m1, m2;
      sample_ring(ph1, &tap_off1_data[static_cast<std::size_t>(i * W)],
                  &offt1_data[static_cast<std::size_t>(i * W)], w1, f1e,
                  rng_fe1[si], &m1);
      sample_ring(ph2, &tap_off2_data[static_cast<std::size_t>(i * W)],
                  &offt2_data[static_cast<std::size_t>(i * W)], w2, f2e,
                  rng_fe2[si], &m2);
      const MV di = m1 ^ m2;
      raw_v |= di << i;
      if (record_bits) {
        for (int w = 0; w < W; ++w) {
          ws.results[static_cast<std::size_t>(w)].slice_bits[si].push_back(
              di[w] != 0);
        }
      }
    }
    std::uint64_t raw[W];
    for (int w = 0; w < W; ++w) raw[w] = raw_v[w];
#else
    auto sample_ring = [&](const V& ph, const double* tap, const double* offt,
                           const V& omega, const V& fe, util::LaneRng<W>& rng,
                           bool out[W]) VCOADC_LANE_INLINE_LAMBDA {
      V t_eff = (V::load(offt) + comp_buffer_delay) + jit;
      if (has_comp_noise) {
        rng.gaussian_lanes(lanes_buf);
        t_eff += (0.0 + comp_noise_sigma * V::load(lanes_buf)) /
                 comp_slew_div;
      }
      const V arg = (ph + V::load(tap)) + omega * t_eff;
      V wr = util::simd::select_ge(arg, kTwoPi, arg - kTwoPi, arg);
      wr = util::simd::select_ge(wr, kTwoPi, wr - kTwoPi, wr);
      wr = util::simd::select_lt(wr, 0.0, wr + kTwoPi, wr);
      int rare = 0;
      for (int w = 0; w < W; ++w) {
        rare |= (wr.v[w] >= kTwoPi) | (wr.v[w] < 0.0);
      }
      if (rare != 0) [[unlikely]] {
        for (int w = 0; w < W; ++w) wr.v[w] = wrap_2pi(arg.v[w]);
      }
      for (int w = 0; w < W; ++w) out[w] = wr.v[w] < kPi;
      if (has_meta) {
        const V p0 = ph + V::load(tap);
        V p = util::simd::select_ge(p0, kPi, p0 - kPi, p0);
        p = util::simd::select_ge(p, kPi, p - kPi, p);
        p = util::simd::select_ge(p, kPi, p - kPi, p);
        int wrap_more = 0;
        for (int w = 0; w < W; ++w) wrap_more |= (p.v[w] >= kPi);
        if (wrap_more != 0) [[unlikely]] {
          for (int w = 0; w < W; ++w) {
            double pw = p0.v[w];
            while (pw >= kPi) pw -= kPi;
            p.v[w] = pw;
          }
        }
        const V lhs = kPi - p;
        const V bnd = (kTwoPi * fe) * meta_margin;
        int cand = 0;
        for (int w = 0; w < W; ++w) {
          cand |= (lhs.v[w] < bnd.v[w]) << w;
        }
        if (cand != 0) [[unlikely]] {
          for (int w = 0; w < W; ++w) {
            if (((cand >> w) & 1) == 0) continue;
            const double tte = lhs.v[w] / (kTwoPi * fe.v[w]);
            if (tte < meta_window_data[w]) {
              out[w] = rng.bernoulli_lane(w, 0.5);
            }
          }
        }
      }
      if (has_cm_error) {
        rng.uniform_lanes(lanes_buf);
        for (int w = 0; w < W; ++w) {
          if (lanes_buf[w] < cm_error_data[w]) out[w] = !out[w];
        }
      }
    };
    std::uint64_t raw[W];
    for (int w = 0; w < W; ++w) raw[w] = 0;
    for (int i = 0; i < n_slices; ++i) {
      const std::size_t si = static_cast<std::size_t>(i);
      sample_ring(ph1, &tap_off1_data[static_cast<std::size_t>(i * W)],
                  &offt1_data[static_cast<std::size_t>(i * W)], w1, f1e,
                  rng_fe1[si], s1);
      sample_ring(ph2, &tap_off2_data[static_cast<std::size_t>(i * W)],
                  &offt2_data[static_cast<std::size_t>(i * W)], w2, f2e,
                  rng_fe2[si], s2);
      for (int w = 0; w < W; ++w) {
        const bool di = s1[w] != s2[w];
        // Branch-free: di is the modulator's output bit, i.e. unpredictable.
        raw[w] |= static_cast<std::uint64_t>(di) << i;
        if (record_bits) {
          ws.results[static_cast<std::size_t>(w)].slice_bits[si].push_back(
              di);
        }
      }
    }
#endif
    for (int w = 0; w < W; ++w) {
      const int count = std::popcount(raw[w]);
      toggles[w] += static_cast<std::size_t>(std::popcount(raw[w] ^ d[w]));
      d[w] = static_mapping
                 ? ((count >= 64) ? ~0ULL : ((1ULL << count) - 1ULL))
                 : raw[w];
      counts_ptr[w][n] = count;
      out_ptr[w][n] = (2.0 * count - n_slices) /
                      static_cast<double>(n_slices);
    }
    sync_dac_levels();
  }

  const double steps = static_cast<double>(s.n_samples) *
                       static_cast<double>(substeps);
  for (int w = 0; w < W; ++w) {
    ModulatorResult& res = ws.results[static_cast<std::size_t>(w)];
    if (steps > 0) {
      res.mean_vctrlp = acc_vp.v[w] / steps;
      res.mean_vctrln = acc_vn.v[w] / steps;
      res.mean_freq1_hz = acc_f1.v[w] / steps;
      res.mean_freq2_hz = acc_f2.v[w] / steps;
    }
    if (s.n_samples > 0) {
      res.bit_toggle_rate = static_cast<double>(toggles[w]) /
                            static_cast<double>(s.n_samples);
    }
  }
}

/// Per-tier entry points (one TU per tier; see batched_tier_*.cpp).
using LockstepFn = void (*)(const BatchedSetup&, BatchedWorkspace&);
struct LockstepTable {
  LockstepFn w2 = nullptr;
  LockstepFn w4 = nullptr;
  LockstepFn w8 = nullptr;
};
namespace tier_scalar {
const LockstepTable& table();
}
namespace tier_sse2 {
const LockstepTable& table();
}
namespace tier_avx2 {
const LockstepTable& table();
}
namespace tier_avx512 {
const LockstepTable& table();
}

}  // namespace vcoadc::msim::lockstep
