// Feedback DAC models and the control-node solver.
//
// The paper (Sec. 2.2.2, Fig. 8) argues for a resistor DAC - an inverter
// driving a resistor to VREFP or ground - over a conventional current-
// steering DAC, because resistors match well raw (no bias network, no
// special P&R). Both are modelled here so the choice can be ablated:
//   * ResistorDacBank  - per-slice resistor + inverter, ~0.1% raw matching,
//     no bias noise; feedback current depends on the node voltage.
//   * CurrentSteeringDacBank - per-slice current cell, percent-level
//     matching plus a shared bias network contributing low-frequency noise.
//
// The ControlNode integrates the VCTRLP / VCTRLN node: a first-order RC
// solved exactly per substep, with physically-scaled kT/C thermal noise.
#pragma once

#include <vector>

#include "util/rng.h"

namespace vcoadc::msim {

/// Bank of per-slice resistor DACs (Fig. 8b) driving one control node.
class ResistorDacBank {
 public:
  /// `mismatch_sigma` is the relative sigma of each slice's resistor.
  ResistorDacBank(int num_slices, double r_dac_ohms, double vrefp,
                  double mismatch_sigma, util::Rng rng);

  /// Sum of DAC currents into the node at node voltage `v_node`, for the
  /// current slice bits. levels[i] true => resistor tied to VREFP (sourcing).
  double current_into_node(const std::vector<bool>& levels,
                           double v_node) const;

  /// Total DAC-bank conductance seen by the node (levels-independent).
  double total_conductance() const;

  /// The per-slice conductances (for power models and tests).
  const std::vector<double>& conductances() const { return g_; }
  double vrefp() const { return vrefp_; }
  /// Instantaneous reference update (ripple injection).
  void set_vrefp(double v) { vrefp_ = v; }

 private:
  std::vector<double> g_;
  double vrefp_;
};

/// Bank of current-steering DAC cells (Fig. 8a) for the ablation study.
class CurrentSteeringDacBank {
 public:
  struct Params {
    int num_slices = 8;
    double unit_current_a = 50e-6;     ///< nominal cell current
    double mismatch_sigma = 0.02;      ///< relative cell mismatch (~2%)
    double output_conductance_s = 2e-6;///< finite cascode output conductance
    double bias_flicker_rel = 0.0;     ///< relative 1/f bias-noise amplitude
  };
  CurrentSteeringDacBank(const Params& p, util::Rng rng);

  /// Current into the node; levels[i] true => cell sources, else sinks.
  /// Advances the bias-noise state by dt.
  double current_into_node(const std::vector<bool>& levels, double v_node,
                           double dt);

  double total_conductance() const;
  double unit_current_a() const { return params_.unit_current_a; }

 private:
  Params params_;
  std::vector<double> cell_current_;
  util::Rng rng_;
  double bias_noise_state_ = 0.0;
};

/// First-order RC solver for one control node (VCTRLP or VCTRLN).
class ControlNode {
 public:
  struct Params {
    double g_input_s = 8e-4;   ///< 1/R_in
    double g_load_s = 5e-4;    ///< VCO supply-current load conductance
    double c_node_f = 200e-15;
    bool thermal_noise = true;
    double temperature_k = 300.0;
    double v_init = 0.55;
  };
  ControlNode(const Params& p, util::Rng rng);

  /// Advances the node by dt given the input-side voltage and the DAC
  /// current (evaluated at the current node voltage by the caller).
  void step(double v_input, double i_dac, double g_dac_total, double dt);

  double voltage() const { return v_; }
  void set_voltage(double v) { v_ = v; }

 private:
  Params params_;
  util::Rng rng_;
  double v_;
};

}  // namespace vcoadc::msim
