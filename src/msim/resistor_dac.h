// Feedback DAC models and the control-node solver.
//
// The paper (Sec. 2.2.2, Fig. 8) argues for a resistor DAC - an inverter
// driving a resistor to VREFP or ground - over a conventional current-
// steering DAC, because resistors match well raw (no bias network, no
// special P&R). Both are modelled here so the choice can be ablated:
//   * ResistorDacBank  - per-slice resistor + inverter, ~0.1% raw matching,
//     no bias noise; feedback current depends on the node voltage.
//   * CurrentSteeringDacBank - per-slice current cell, percent-level
//     matching plus a shared bias network contributing low-frequency noise.
//
// Hot-path contract: slice bits are NRZ (they change only at clock edges),
// so each bank keeps a running level-dependent sum — the on-conductance for
// the resistor bank, the signed cell-current sum for the current-steering
// bank — refreshed by set_levels() once per edge. current_into_node() is
// then O(1) per continuous-time substep instead of O(num_slices).
//
// The ControlNode integrates the VCTRLP / VCTRLN node: a first-order RC
// solved exactly per substep, with physically-scaled kT/C thermal noise.
// Its pole factor exp(-dt/tau) depends only on run constants, so it is
// cached and recomputed only when (g_dac_total, dt) change.
#pragma once

#include <cmath>
#include <vector>

#include "msim/slice_bits.h"
#include "util/rng.h"
#include "util/units.h"

namespace vcoadc::msim {

/// Bank of per-slice resistor DACs (Fig. 8b) driving one control node.
class ResistorDacBank {
 public:
  /// `mismatch_sigma` is the relative sigma of each slice's resistor.
  ResistorDacBank(int num_slices, double r_dac_ohms, double vrefp,
                  double mismatch_sigma, util::Rng rng);

  /// Refreshes the running on-conductance sum for the new slice bits.
  /// Called once per clock edge (bits are NRZ over the period). The sum is
  /// rebuilt from scratch in slice order — O(N) per *edge*, not per substep
  /// — so no incremental floating-point drift accumulates across a run.
  void set_levels(const SliceBits& levels) {
    double g_on = 0.0;
    const int n = static_cast<int>(g_.size());
    for (int k = 0; k < n; ++k) {
      if (levels.test(k)) g_on += g_[k];
    }
    g_on_sum_ = g_on;
  }

  /// Sum of DAC currents into the node at node voltage `v_node` for the
  /// levels last passed to set_levels(). O(1):
  ///   I = sum_on g_k * (VREFP - v) + sum_off g_k * (0 - v)
  ///     = g_on * VREFP - g_total * v.
  double current_into_node(double v_node) const {
    return g_on_sum_ * vrefp_ - g_total_ * v_node;
  }

  /// Legacy one-shot evaluation (tests / non-hot callers). Same formula as
  /// the stateful path, independent of set_levels() state.
  double current_into_node(const std::vector<bool>& levels,
                           double v_node) const;

  /// Total DAC-bank conductance seen by the node (levels-independent).
  double total_conductance() const { return g_total_; }

  /// The per-slice conductances (for power models and tests).
  const std::vector<double>& conductances() const { return g_; }
  double vrefp() const { return vrefp_; }
  /// Instantaneous reference update (ripple injection). Orthogonal to the
  /// running sum: the on-conductance does not depend on VREFP.
  void set_vrefp(double v) { vrefp_ = v; }

 private:
  std::vector<double> g_;
  double vrefp_;
  double g_total_ = 0.0;  ///< sum of g_ in slice order, fixed at build
  double g_on_sum_ = 0.0; ///< sum of g_ over high slices, per set_levels()
};

/// Bank of current-steering DAC cells (Fig. 8a) for the ablation study.
class CurrentSteeringDacBank {
 public:
  struct Params {
    int num_slices = 8;
    double unit_current_a = 50e-6;     ///< nominal cell current
    double mismatch_sigma = 0.02;      ///< relative cell mismatch (~2%)
    double output_conductance_s = 2e-6;///< finite cascode output conductance
    double bias_flicker_rel = 0.0;     ///< relative 1/f bias-noise amplitude
  };
  CurrentSteeringDacBank(const Params& p, util::Rng rng);

  /// Refreshes the signed cell-current sum for the new slice bits (true =
  /// cell sources, false = sinks). Called once per clock edge.
  void set_levels(const SliceBits& levels) {
    double i = 0.0;
    const int n = static_cast<int>(cell_current_.size());
    for (int k = 0; k < n; ++k) {
      i += levels.test(k) ? cell_current_[k] : -cell_current_[k];
    }
    i_signed_sum_ = i;
  }

  /// Current into the node for the levels last passed to set_levels().
  /// Advances the shared bias-noise state by dt. O(1) per substep.
  double current_into_node(double v_node, double dt) {
    advance_bias_noise(dt);
    return i_signed_sum_ * (1.0 + bias_noise_state_) -
           g_out_total_ * v_node;
  }

  /// Legacy one-shot evaluation; also advances the bias-noise state.
  double current_into_node(const std::vector<bool>& levels, double v_node,
                           double dt);

  double total_conductance() const { return g_out_total_; }
  double unit_current_a() const { return params_.unit_current_a; }

 private:
  void advance_bias_noise(double dt) {
    // Shared bias network noise: a slow Ornstein-Uhlenbeck process
    // modulating every cell's current together (this is the "analog
    // intensive bias generation network" liability the paper cites).
    if (params_.bias_flicker_rel > 0.0) {
      const double tau = 1e-6;  // ~1 us bias-network time constant
      const double a = std::exp(-dt / tau);
      const double sigma = params_.bias_flicker_rel * std::sqrt(1.0 - a * a);
      bias_noise_state_ = a * bias_noise_state_ + rng_.gaussian(0.0, sigma);
    }
  }

  Params params_;
  std::vector<double> cell_current_;
  util::Rng rng_;
  double bias_noise_state_ = 0.0;
  double g_out_total_ = 0.0;   ///< output_conductance_s * num_slices
  double i_signed_sum_ = 0.0;  ///< sum of +/- cell currents per set_levels()
};

/// First-order RC solver for one control node (VCTRLP or VCTRLN).
class ControlNode {
 public:
  struct Params {
    double g_input_s = 8e-4;   ///< 1/R_in
    double g_load_s = 5e-4;    ///< VCO supply-current load conductance
    double c_node_f = 200e-15;
    bool thermal_noise = true;
    double temperature_k = 300.0;
    double v_init = 0.55;
  };
  ControlNode(const Params& p, util::Rng rng);

  /// Advances the node by dt given the input-side voltage and the DAC
  /// current (evaluated at the current node voltage by the caller).
  ///
  /// C dv/dt = G_in (v_in - v) - G_load v + I_dac(v). I_dac was evaluated
  /// at the current v; fold its conductance into the pole so the exact
  /// one-pole update stays stable for any dt. The pole factor and the
  /// per-step kT/C injection sigma depend only on (g_dac_total, dt), both
  /// run constants, so they are cached across the substep loop.
  void step(double v_input, double i_dac, double g_dac_total, double dt) {
    if (g_dac_total != pole_g_dac_ || dt != pole_dt_) {
      prepare_pole(g_dac_total, dt);
    }
    const double i_fixed =
        params_.g_input_s * v_input + i_dac + g_dac_total * v_;
    const double v_inf = i_fixed / pole_g_total_;
    v_ = v_inf + (v_ - v_inf) * pole_a_;
    if (params_.thermal_noise) {
      // Discretized OU noise: stationary variance kT/C, per-step injection
      // variance (kT/C)(1 - a^2).
      v_ += rng_.gaussian(0.0, noise_sigma_);
    }
  }

  double voltage() const { return v_; }
  void set_voltage(double v) { v_ = v; }

 private:
  // Batched engine state transposer (batched_modulator.cpp).
  friend struct BatchedStateAccess;

  void prepare_pole(double g_dac_total, double dt) {
    pole_g_dac_ = g_dac_total;
    pole_dt_ = dt;
    pole_g_total_ = params_.g_input_s + params_.g_load_s + g_dac_total;
    const double tau = params_.c_node_f / pole_g_total_;
    pole_a_ = std::exp(-dt / tau);
    const double var_stat =
        util::kBoltzmann * params_.temperature_k / params_.c_node_f;
    noise_sigma_ = std::sqrt(var_stat * (1.0 - pole_a_ * pole_a_));
  }

  Params params_;
  util::Rng rng_;
  double v_;
  // Cached pole; pole_dt_ < 0 forces the first prepare_pole().
  double pole_g_dac_ = 0.0;
  double pole_dt_ = -1.0;
  double pole_g_total_ = 0.0;
  double pole_a_ = 0.0;
  double noise_sigma_ = 0.0;
};

}  // namespace vcoadc::msim
