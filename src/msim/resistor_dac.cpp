#include "msim/resistor_dac.h"

#include <cassert>
#include <cmath>

#include "util/units.h"

namespace vcoadc::msim {

ResistorDacBank::ResistorDacBank(int num_slices, double r_dac_ohms,
                                 double vrefp, double mismatch_sigma,
                                 util::Rng rng)
    : vrefp_(vrefp) {
  assert(num_slices > 0 && r_dac_ohms > 0);
  g_.reserve(static_cast<std::size_t>(num_slices));
  for (int i = 0; i < num_slices; ++i) {
    const double e = (mismatch_sigma > 0) ? rng.gaussian(0.0, mismatch_sigma) : 0.0;
    g_.push_back(1.0 / (r_dac_ohms * (1.0 + e)));
  }
}

double ResistorDacBank::current_into_node(const std::vector<bool>& levels,
                                          double v_node) const {
  assert(levels.size() == g_.size());
  double i = 0.0;
  for (std::size_t k = 0; k < g_.size(); ++k) {
    const double v_drive = levels[k] ? vrefp_ : 0.0;
    i += g_[k] * (v_drive - v_node);
  }
  return i;
}

double ResistorDacBank::total_conductance() const {
  double g = 0.0;
  for (double gk : g_) g += gk;
  return g;
}

CurrentSteeringDacBank::CurrentSteeringDacBank(const Params& p, util::Rng rng)
    : params_(p), rng_(rng) {
  cell_current_.reserve(static_cast<std::size_t>(p.num_slices));
  for (int i = 0; i < p.num_slices; ++i) {
    const double e =
        (p.mismatch_sigma > 0) ? rng_.gaussian(0.0, p.mismatch_sigma) : 0.0;
    cell_current_.push_back(p.unit_current_a * (1.0 + e));
  }
}

double CurrentSteeringDacBank::current_into_node(
    const std::vector<bool>& levels, double v_node, double dt) {
  assert(levels.size() == cell_current_.size());
  // Shared bias network noise: a slow Ornstein-Uhlenbeck process modulating
  // every cell's current together (this is the "analog intensive bias
  // generation network" liability the paper cites).
  if (params_.bias_flicker_rel > 0.0) {
    const double tau = 1e-6;  // ~1 us bias-network time constant
    const double a = std::exp(-dt / tau);
    const double sigma = params_.bias_flicker_rel *
                         std::sqrt(1.0 - a * a);
    bias_noise_state_ = a * bias_noise_state_ + rng_.gaussian(0.0, sigma);
  }
  double i = 0.0;
  for (std::size_t k = 0; k < cell_current_.size(); ++k) {
    const double cell = cell_current_[k] * (1.0 + bias_noise_state_);
    i += levels[k] ? cell : -cell;
    // Finite output conductance: code-independent term folded in here.
    i -= params_.output_conductance_s * v_node;
  }
  return i;
}

double CurrentSteeringDacBank::total_conductance() const {
  return params_.output_conductance_s *
         static_cast<double>(cell_current_.size());
}

ControlNode::ControlNode(const Params& p, util::Rng rng)
    : params_(p), rng_(rng), v_(p.v_init) {}

void ControlNode::step(double v_input, double i_dac, double g_dac_total,
                       double dt) {
  // C dv/dt = G_in (v_in - v) - G_load v + I_dac(v).
  // I_dac was evaluated at the current v; fold its conductance into the
  // pole so the exact one-pole update stays stable for any dt.
  const double g_total = params_.g_input_s + params_.g_load_s + g_dac_total;
  const double i_fixed = params_.g_input_s * v_input + i_dac + g_dac_total * v_;
  const double v_inf = i_fixed / g_total;
  const double tau = params_.c_node_f / g_total;
  const double a = std::exp(-dt / tau);
  v_ = v_inf + (v_ - v_inf) * a;
  if (params_.thermal_noise) {
    // Discretized OU noise: stationary variance kT/C, per-step injection
    // variance (kT/C)(1 - a^2).
    const double var_stat =
        util::kBoltzmann * params_.temperature_k / params_.c_node_f;
    v_ += rng_.gaussian(0.0, std::sqrt(var_stat * (1.0 - a * a)));
  }
}

}  // namespace vcoadc::msim
