#include "msim/resistor_dac.h"

#include <cassert>

namespace vcoadc::msim {

ResistorDacBank::ResistorDacBank(int num_slices, double r_dac_ohms,
                                 double vrefp, double mismatch_sigma,
                                 util::Rng rng)
    : vrefp_(vrefp) {
  assert(num_slices > 0 && num_slices <= 64 && r_dac_ohms > 0);
  g_.reserve(static_cast<std::size_t>(num_slices));
  for (int i = 0; i < num_slices; ++i) {
    const double e = (mismatch_sigma > 0) ? rng.gaussian(0.0, mismatch_sigma) : 0.0;
    g_.push_back(1.0 / (r_dac_ohms * (1.0 + e)));
  }
  for (double gk : g_) g_total_ += gk;
}

double ResistorDacBank::current_into_node(const std::vector<bool>& levels,
                                          double v_node) const {
  assert(levels.size() == g_.size());
  double g_on = 0.0;
  for (std::size_t k = 0; k < g_.size(); ++k) {
    if (levels[k]) g_on += g_[k];
  }
  return g_on * vrefp_ - g_total_ * v_node;
}

CurrentSteeringDacBank::CurrentSteeringDacBank(const Params& p, util::Rng rng)
    : params_(p), rng_(rng) {
  assert(p.num_slices > 0 && p.num_slices <= 64);
  cell_current_.reserve(static_cast<std::size_t>(p.num_slices));
  for (int i = 0; i < p.num_slices; ++i) {
    const double e =
        (p.mismatch_sigma > 0) ? rng_.gaussian(0.0, p.mismatch_sigma) : 0.0;
    cell_current_.push_back(p.unit_current_a * (1.0 + e));
  }
  g_out_total_ = params_.output_conductance_s *
                 static_cast<double>(cell_current_.size());
}

double CurrentSteeringDacBank::current_into_node(
    const std::vector<bool>& levels, double v_node, double dt) {
  assert(levels.size() == cell_current_.size());
  set_levels(SliceBits::from_vector(levels));
  return current_into_node(v_node, dt);
}

ControlNode::ControlNode(const Params& p, util::Rng rng)
    : params_(p), rng_(rng), v_(p.v_init) {}

}  // namespace vcoadc::msim
