// Parameter bundle for the behavioral mixed-signal simulation of the
// proposed ADC (Fig. 4 architecture).
//
// The architecture being simulated, restated from Sec. 2.2 / Table 2:
//   * Two N-stage pseudo-differential ring VCOs, supply-controlled by the
//     VCTRLP / VCTRLN nodes. The ring is *distributed*: slice i contains
//     stage i of both rings (the paper's Table 2 slice instantiates one
//     VCO_cell of each ring), so the N stage taps give N quantizer phases.
//   * Slice i retimes both ring taps through a buffer + SAFF (NOR3-based
//     comparator, Fig. 6b/7) and XORs them into the slice bit d_i.
//   * d_i drives the slice's resistor DAC (Fig. 8b): an inverter connects
//     the DAC resistor to VREFP or ground, injecting feedback current into
//     the shared control nodes, closing the first-order CT delta-sigma loop
//     (the VCO phase is the loop integrator).
//
// All parameters are plain physical quantities; `core::AdcSpec` derives
// defaults for a given technology node.
#pragma once

#include <cstdint>

namespace vcoadc::msim {

struct SimConfig {
  // --- architecture ---
  int num_slices = 8;        ///< N: ring stages == quantizer taps == DACs
  double fs_hz = 750e6;      ///< modulator clock
  int substeps = 8;          ///< CT solver substeps per clock period

  // --- supplies / references ---
  double vdd = 1.1;          ///< digital supply [V]
  double vrefp = 1.1;        ///< DAC reference (tied to VDD in the paper)
  double vctrl_mid = 0.55;   ///< control-node operating point [V]

  // --- VCO ---
  /// Ring frequency at vctrl_mid. Chosen away from rational multiples of fs
  /// so the sampled ring phase sweeps uniformly instead of locking into a
  /// short orbit (which would produce idle tones).
  double vco_center_hz = 2.043e9;
  double kvco_hz_per_v = 4.5e8;  ///< supply-tuning gain
  double vco_white_fm_hz2_per_hz = 0.0;  ///< white-FM phase noise strength
  double vco_stage_mismatch_sigma = 0.0; ///< relative per-stage delay sigma
  double vco_kvco_mismatch_sigma = 0.0;  ///< relative Kvco mismatch (ring pair)

  // --- feedback network (Fig. 8b) ---
  double r_input_ohms = 1250.0;   ///< input resistor per side
  double r_dac_ohms = 10000.0;    ///< DAC resistor per slice
  double r_dac_mismatch_sigma = 0.0; ///< relative per-slice resistor sigma
  double g_vco_load_s = 5e-4;     ///< VCO supply-current load conductance
  double c_node_f = 200e-15;      ///< control-node capacitance
  bool thermal_noise = true;      ///< kT/R noise at the control nodes
  double temperature_k = 300.0;

  // --- sampling front end (buffer + SAFF) ---
  double comparator_offset_sigma_v = 0.0; ///< per-slice offset [V]
  double comparator_noise_sigma_v = 0.0;  ///< input noise per decision [V]
  double comparator_meta_window_s = 0.0;  ///< metastable aperture [s]
  double buffer_delay_s = 0.0;            ///< replica-buffer delay
  double clock_jitter_sigma_s = 0.0;      ///< sampling clock jitter

  // --- supply/reference ripple (PSRR-style robustness testing) ---
  /// Sinusoidal ripple on VREFP, common to both DAC banks. The pseudo-
  /// differential feedback largely rejects it; the residual sets the
  /// converter's reference sensitivity.
  double vref_ripple_amp_v = 0.0;
  double vref_ripple_freq_hz = 0.0;

  // --- misc ---
  std::uint64_t seed = 1;
  /// Edge slope seen by the comparator, used to convert a voltage offset
  /// into an equivalent sampling-phase offset [V/s]. 0 = derive from VCO.
  double tap_slew_v_per_s = 0.0;
};

}  // namespace vcoadc::msim
