// Packed slice-bit bank: the quantizer decisions d[0..N-1] of one clock
// period as a single uint64_t word.
//
// The modulator and both DAC models share this representation: bits change
// only at clock edges (NRZ feedback holds them over the whole period), so
// the DAC banks can refresh their level-dependent running sums once per
// edge from the packed word instead of re-walking a std::vector<bool> on
// every continuous-time substep.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace vcoadc::msim {

class SliceBits {
 public:
  SliceBits() = default;
  explicit SliceBits(int n, std::uint64_t mask = 0)
      : n_(n), mask_(mask & full_mask(n)) {
    assert(n >= 0 && n <= 64);
  }

  /// The midscale start pattern: even-indexed slices high (...0101).
  static SliceBits alternating(int n) {
    return SliceBits(n, 0x5555555555555555ULL);
  }

  /// Thermometer word with the k lowest bits set (static element mapping).
  static SliceBits first_k(int n, int k) {
    assert(k >= 0 && k <= n);
    return SliceBits(n, (k >= 64) ? ~0ULL : ((1ULL << k) - 1ULL));
  }

  int size() const { return n_; }
  std::uint64_t mask() const { return mask_; }
  static std::uint64_t full_mask(int n) {
    return (n >= 64) ? ~0ULL : ((1ULL << n) - 1ULL);
  }

  bool test(int i) const { return (mask_ >> i) & 1ULL; }
  void set(int i, bool v) {
    const std::uint64_t bit = 1ULL << i;
    mask_ = v ? (mask_ | bit) : (mask_ & ~bit);
  }

  /// Number of high slices (the flash-quantizer output code).
  int count() const { return std::popcount(mask_); }

  /// Bits that differ from `other` (DAC/XOR toggle activity).
  int toggles_vs(const SliceBits& other) const {
    return std::popcount(mask_ ^ other.mask_);
  }

  /// The complementary word !d (what the P-side DAC inverters see).
  SliceBits complement() const { return SliceBits(n_, ~mask_); }

  /// Conversion for the legacy std::vector<bool> call sites and tests.
  static SliceBits from_vector(const std::vector<bool>& v) {
    SliceBits b(static_cast<int>(v.size()));
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i]) b.mask_ |= 1ULL << i;
    }
    return b;
  }

  bool operator==(const SliceBits&) const = default;

 private:
  int n_ = 0;
  std::uint64_t mask_ = 0;
};

}  // namespace vcoadc::msim
