// Phase-noise analysis of the ring VCO model.
//
// Measures single-sideband phase noise L(f_offset) = S_phi(f)/2 by sampling
// the ring's accumulated phase, detrending the carrier ramp, and taking a
// windowed periodogram of the residual. For the white-FM model used in the
// simulator (S_freq = K [Hz^2/Hz]), theory says S_phi(f) = K/f^2, i.e.
// L(f) = 10*log10(K / (2 f^2)) with the classic -20 dB/dec slope - the
// analyzer validates that the model injects exactly the noise it claims.
#pragma once

#include <cstddef>
#include <vector>

#include "msim/ring_vco.h"

namespace vcoadc::msim {

struct PhaseNoisePoint {
  double offset_hz = 0;
  double dbc_per_hz = 0;  ///< L(f) in dBc/Hz
};

struct PhaseNoiseResult {
  std::vector<PhaseNoisePoint> points;  ///< log-spaced offsets
  double carrier_hz = 0;                ///< measured mean frequency
  double slope_db_per_decade = 0;       ///< fitted over the points

  /// L(f) interpolated at a given offset (log-log), NAN when out of range.
  double at(double offset_hz) const;
};

/// Samples `n` phase points at rate `fs_hz` with the VCO held at `vctrl`.
/// `n` must be a power of two.
PhaseNoiseResult measure_phase_noise(RingVco& vco, double vctrl,
                                     double fs_hz, std::size_t n);

/// Theoretical L(f) of a white-FM oscillator with strength `k_hz2_per_hz`.
double white_fm_theory_dbc(double k_hz2_per_hz, double offset_hz);

}  // namespace vcoadc::msim
