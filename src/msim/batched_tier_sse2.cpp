// SSE2 tier of the lockstep kernel: baseline x86-64 codegen (SSE2 is
// architectural there), which lets the auto-vectorizer pack 2 doubles per
// operation. On non-x86 hosts this TU is plain portable C++ and the
// dispatcher never selects it.
#include "msim/batched_lockstep.h"

namespace vcoadc::msim::lockstep::tier_sse2 {

namespace {
void run_w2(const BatchedSetup& s, BatchedWorkspace& ws) {
  run_lockstep<2>(s, ws);
}
void run_w4(const BatchedSetup& s, BatchedWorkspace& ws) {
  run_lockstep<4>(s, ws);
}
void run_w8(const BatchedSetup& s, BatchedWorkspace& ws) {
  run_lockstep<8>(s, ws);
}
}  // namespace

const LockstepTable& table() {
  static const LockstepTable t{&run_w2, &run_w4, &run_w8};
  return t;
}

}  // namespace vcoadc::msim::lockstep::tier_sse2
