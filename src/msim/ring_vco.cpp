#include "msim/ring_vco.h"

#include <cmath>
#include <numbers>

namespace vcoadc::msim {
namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

RingVco::RingVco(int num_stages, double center_freq_hz, double kvco_hz_per_v,
                 double vctrl_mid_v, double initial_phase_rad,
                 double stage_mismatch_sigma, double kvco_gain_factor,
                 double white_fm_hz2_per_hz, util::Rng rng)
    : num_stages_(num_stages),
      f_center_(center_freq_hz),
      kvco_(kvco_hz_per_v * kvco_gain_factor),
      vctrl_mid_(vctrl_mid_v),
      phase_(initial_phase_rad),
      white_fm_(white_fm_hz2_per_hz),
      rng_(rng) {
  // Nominal tap spacing for an N-stage differential ring is pi/N of the
  // fundamental. A stage whose delay is (1+e) times nominal shifts every
  // downstream tap; accumulate the per-stage errors.
  tap_offsets_.resize(static_cast<std::size_t>(num_stages_));
  double acc = 0.0;
  const double nominal = std::numbers::pi / num_stages_;
  for (int i = 0; i < num_stages_; ++i) {
    tap_offsets_[static_cast<std::size_t>(i)] = acc;
    const double e =
        (stage_mismatch_sigma > 0) ? rng_.gaussian(0.0, stage_mismatch_sigma) : 0.0;
    acc += nominal * (1.0 + e);
  }
}

double RingVco::freq_hz(double vctrl) const {
  const double f = f_center_ + kvco_ * (vctrl - vctrl_mid_);
  // A starved ring approaches (but never reaches) a stall.
  return std::max(f, 0.01 * f_center_);
}

void RingVco::advance(double vctrl, double dt) {
  double dphi = kTwoPi * freq_hz(vctrl) * dt;
  if (white_fm_ > 0.0) {
    // White FM noise: S_f(f) = white_fm_ [Hz^2/Hz] => phase random walk with
    // per-step variance (2 pi)^2 * white_fm_ * dt.
    dphi += kTwoPi * std::sqrt(white_fm_ * dt) * rng_.gaussian();
  }
  phase_ += dphi;
  // Keep the accumulator bounded; all consumers use phase mod 2*pi.
  if (phase_ > 1e6) phase_ = std::fmod(phase_, kTwoPi);
}

double RingVco::tap_phase(int tap) const {
  return phase_ + tap_offsets_[static_cast<std::size_t>(tap)];
}

bool RingVco::tap_level(int tap) const {
  const double p = std::fmod(tap_phase(tap), kTwoPi);
  const double w = (p < 0) ? p + kTwoPi : p;
  return w < std::numbers::pi;
}

double RingVco::time_to_edge(int tap, double vctrl) const {
  const double p = std::fmod(tap_phase(tap), std::numbers::pi);
  const double w = (p < 0) ? p + std::numbers::pi : p;
  const double to_edge_rad = std::numbers::pi - w;
  return to_edge_rad / (kTwoPi * freq_hz(vctrl));
}

}  // namespace vcoadc::msim
