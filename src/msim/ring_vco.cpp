#include "msim/ring_vco.h"

namespace vcoadc::msim {

RingVco::RingVco(int num_stages, double center_freq_hz, double kvco_hz_per_v,
                 double vctrl_mid_v, double initial_phase_rad,
                 double stage_mismatch_sigma, double kvco_gain_factor,
                 double white_fm_hz2_per_hz, util::Rng rng)
    : num_stages_(num_stages),
      f_center_(center_freq_hz),
      kvco_(kvco_hz_per_v * kvco_gain_factor),
      vctrl_mid_(vctrl_mid_v),
      phase_(initial_phase_rad),
      white_fm_(white_fm_hz2_per_hz),
      rng_(rng) {
  // Establish the phase-accumulator invariant (see advance()): phase_ lives
  // in [0, 2*pi) for the whole simulation.
  phase_ = std::fmod(phase_, kTwoPi_);
  if (phase_ < 0.0) phase_ += kTwoPi_;
  // Nominal tap spacing for an N-stage differential ring is pi/N of the
  // fundamental. A stage whose delay is (1+e) times nominal shifts every
  // downstream tap; accumulate the per-stage errors.
  tap_offsets_.resize(static_cast<std::size_t>(num_stages_));
  double acc = 0.0;
  const double nominal = std::numbers::pi / num_stages_;
  for (int i = 0; i < num_stages_; ++i) {
    tap_offsets_[static_cast<std::size_t>(i)] = acc;
    const double e =
        (stage_mismatch_sigma > 0) ? rng_.gaussian(0.0, stage_mismatch_sigma) : 0.0;
    acc += nominal * (1.0 + e);
  }
}

}  // namespace vcoadc::msim
