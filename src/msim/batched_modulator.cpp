#include "msim/batched_modulator.h"

#include <cmath>
#include <numbers>

#include "msim/batched_lockstep.h"
#include "util/simd.h"
#include "util/units.h"

namespace vcoadc::msim {

/// Friend-access transposer: reads the private post-construction state of
/// the W per-lane scalar modulators into the flattened lane-major setup.
/// Construction itself already happened through the scalar code path, so
/// every ctor-time mismatch draw is the serial one by construction; this
/// struct only copies results out, it never mutates a lane modulator.
struct BatchedStateAccess {
  /// True when the constructed lanes can run in lockstep. Per-lane run
  /// *values* (kvco, vrefp, noise amplitudes, ...) may differ freely — the
  /// kernel holds them in lane vectors — but the clock structure and every
  /// noise-source on/off decision must agree: gaussian_lanes advances all
  /// lane streams together, so a source firing in one lane but not another
  /// would desynchronize the per-lane draw sequences from the scalar
  /// modulator's. Checked on the *derived* component state (not the raw
  /// SimConfig) because e.g. the comparator's common-mode error rate is a
  /// function of vdd and could cross zero between corners.
  static bool batchable(const std::vector<VcoDsmModulator>& lanes) {
    const VcoDsmModulator& m0 = lanes.front();
    const SimConfig& c0 = m0.cfg_;
    for (const VcoDsmModulator& m : lanes) {
      const SimConfig& c = m.cfg_;
      // Clock / loop structure shapes the substep schedule and buffers.
      if (c.fs_hz != c0.fs_hz || c.substeps != c0.substeps ||
          c.num_slices != c0.num_slices) {
        return false;
      }
      if (c.thermal_noise != c0.thermal_noise) return false;
      if ((m.vco1_.white_fm_ > 0.0) != (m0.vco1_.white_fm_ > 0.0)) {
        return false;
      }
      if ((c.clock_jitter_sigma_s > 0.0) !=
          (c0.clock_jitter_sigma_s > 0.0)) {
        return false;
      }
      const SamplingFrontEnd::Params& fp = m.fe1_.front().params_;
      const SamplingFrontEnd::Params& fp0 = m0.fe1_.front().params_;
      if ((fp.noise_sigma_v > 0.0) != (fp0.noise_sigma_v > 0.0)) {
        return false;
      }
      if ((fp.meta_window_s > 0.0) != (fp0.meta_window_s > 0.0)) {
        return false;
      }
      if ((m.fe1_.front().cm_error_prob_ > 0.0) !=
          (m0.fe1_.front().cm_error_prob_ > 0.0)) {
        return false;
      }
      // The reference-ripple time series is shared across lanes, so with
      // ripple enabled the reference itself must be uniform too.
      if (c.vref_ripple_amp_v != c0.vref_ripple_amp_v ||
          c.vref_ripple_freq_hz != c0.vref_ripple_freq_hz) {
        return false;
      }
      if (c0.vref_ripple_amp_v > 0.0 && c.vrefp != c0.vrefp) return false;
    }
    return true;
  }

  static lockstep::BatchedSetup build(
      const std::vector<VcoDsmModulator>& lanes) {
    const int W = static_cast<int>(lanes.size());
    const VcoDsmModulator& m0 = lanes.front();
    const SimConfig& cfg = m0.cfg_;
    const int n_slices = cfg.num_slices;

    lockstep::BatchedSetup s;
    s.width = W;
    s.n_slices = n_slices;
    s.substeps = cfg.substeps;
    s.ts = 1.0 / cfg.fs_hz;
    s.dt = s.ts / cfg.substeps;
    s.vref_ripple = cfg.vref_ripple_amp_v > 0.0;
    s.ripple_amp = cfg.vref_ripple_amp_v;
    s.ripple_freq = cfg.vref_ripple_freq_hz;
    // Control-flow flags from lane 0; batchable() (checked by create())
    // guarantees every lane agrees on them.
    s.thermal_noise = cfg.thermal_noise;
    s.white_fm = m0.vco1_.white_fm_ > 0.0;
    s.has_jitter = cfg.clock_jitter_sigma_s > 0.0;
    s.has_comp_noise = m0.fe1_.front().params_.noise_sigma_v > 0.0;
    s.has_meta = m0.fe1_.front().params_.meta_window_s > 0.0;
    s.has_cm_error = m0.fe1_.front().cm_error_prob_ > 0.0;
    s.record_bits = m0.opts_.record_bits;
    s.static_mapping = m0.opts_.mapping == ElementMapping::kStaticThermometer;
    s.d_init = SliceBits::alternating(n_slices).mask();

    const std::size_t lw = static_cast<std::size_t>(W);
    const std::size_t slw = static_cast<std::size_t>(n_slices) * lw;
    s.vctrl_mid.resize(lw);
    s.f_center.resize(lw);
    s.f_floor.resize(lw);
    s.g_input.resize(lw);
    s.vrefp.resize(lw);
    s.fm_noise_amp.resize(lw);
    s.jitter_sigma.resize(lw);
    s.comp_noise_sigma.resize(lw);
    s.comp_meta_window.resize(lw);
    s.comp_slew_div.resize(lw);
    s.comp_buffer_delay.resize(lw);
    s.cm_error_prob.resize(lw);
    s.scale.resize(lw);
    s.vcm_in.resize(lw);
    s.kvco1.resize(lw);
    s.kvco2.resize(lw);
    s.phase1.resize(lw);
    s.phase2.resize(lw);
    s.g_total_p.resize(lw);
    s.g_total_n.resize(lw);
    s.g_fold.resize(lw);
    s.pole_a.resize(lw);
    s.pole_g_total.resize(lw);
    s.node_noise_sigma.resize(lw);
    s.tap_off1.resize(slw);
    s.tap_off2.resize(slw);
    s.offt1.resize(slw);
    s.offt2.resize(slw);
    s.g_p.resize(slw);
    s.g_n.resize(slw);
    s.rng_node_p.resize(lw);
    s.rng_node_n.resize(lw);
    s.rng_vco1.resize(lw);
    s.rng_vco2.resize(lw);
    s.rng_jit.resize(lw);
    s.rng_fe1.resize(slw);
    s.rng_fe2.resize(slw);

    for (int w = 0; w < W; ++w) {
      const VcoDsmModulator& m = lanes[static_cast<std::size_t>(w)];
      const std::size_t sw = static_cast<std::size_t>(w);
      // Formerly shared run constants, now per lane (PVT corners and
      // amplitude points move them); each expression is the one the scalar
      // modulator computes for its own config.
      s.vctrl_mid[sw] = m.cfg_.vctrl_mid;
      s.f_center[sw] = m.vco1_.center_freq_hz();
      s.f_floor[sw] = 0.01 * s.f_center[sw];
      s.g_input[sw] = m.node_p_.params_.g_input_s;
      s.vrefp[sw] = m.cfg_.vrefp;
      // RingVco::advance caches 2*pi*sqrt(S_f*dt) on its first step; same
      // expression here (baseline TU), per lane (S_f may differ, dt shared).
      s.fm_noise_amp[sw] =
          2.0 * std::numbers::pi * std::sqrt(m.vco1_.white_fm_ * s.dt);
      s.jitter_sigma[sw] = m.cfg_.clock_jitter_sigma_s;
      const SamplingFrontEnd::Params& fp = m.fe1_.front().params_;
      s.comp_noise_sigma[sw] = fp.noise_sigma_v;
      s.comp_meta_window[sw] = fp.meta_window_s;
      s.comp_slew_div[sw] = std::max(fp.tap_slew_v_per_s, 1.0);
      s.comp_buffer_delay[sw] = fp.buffer_delay_s;
      s.cm_error_prob[sw] = m.fe1_.front().cm_error_prob_;
      s.vcm_in[sw] = m.vcm_in_;
      s.kvco1[sw] = m.vco1_.kvco();
      s.kvco2[sw] = m.vco2_.kvco();
      s.phase1[sw] = m.vco1_.phase();
      s.phase2[sw] = m.vco2_.phase();
      s.g_total_p[sw] = m.dac_p_.total_conductance();
      s.g_total_n[sw] = m.dac_n_.total_conductance();
      // The scalar run folds dac_p's conductance into BOTH node poles.
      s.g_fold[sw] = s.g_total_p[sw];
      // ControlNode::prepare_pole, exact expressions (both nodes share the
      // parameters and the folded conductance, hence one pole per lane).
      const ControlNode::Params& np = m.node_p_.params_;
      const double pole_g_total = np.g_input_s + np.g_load_s + s.g_fold[sw];
      const double tau = np.c_node_f / pole_g_total;
      const double pole_a = std::exp(-s.dt / tau);
      const double var_stat =
          util::kBoltzmann * np.temperature_k / np.c_node_f;
      s.pole_g_total[sw] = pole_g_total;
      s.pole_a[sw] = pole_a;
      s.node_noise_sigma[sw] = std::sqrt(var_stat * (1.0 - pole_a * pole_a));
      s.rng_node_p[sw] = m.node_p_.rng_;
      s.rng_node_n[sw] = m.node_n_.rng_;
      s.rng_vco1[sw] = m.vco1_.rng_;
      s.rng_vco2[sw] = m.vco2_.rng_;
      // The scalar run() constructs the jitter stream at run time from the
      // lane seed; replicate the same fork.
      s.rng_jit[sw] = util::Rng(m.cfg_.seed).fork("clkjit");
      for (int i = 0; i < n_slices; ++i) {
        const std::size_t si = static_cast<std::size_t>(i);
        const std::size_t iw = static_cast<std::size_t>(i * W + w);
        s.tap_off1[iw] = m.vco1_.tap_offsets()[si];
        s.tap_off2[iw] = m.vco2_.tap_offsets()[si];
        s.offt1[iw] = m.fe1_[si].offset_time_s();
        s.offt2[iw] = m.fe2_[si].offset_time_s();
        s.g_p[iw] = m.dac_p_.conductances()[si];
        s.g_n[iw] = m.dac_n_.conductances()[si];
        s.rng_fe1[iw] = m.fe1_[si].rng_;
        s.rng_fe2[iw] = m.fe2_[si].rng_;
      }
    }
    return s;
  }
};

namespace {

const lockstep::LockstepTable& tier_table(util::simd::Tier t) {
  switch (t) {
    case util::simd::Tier::kAvx512: return lockstep::tier_avx512::table();
    case util::simd::Tier::kAvx2: return lockstep::tier_avx2::table();
    case util::simd::Tier::kSse2: return lockstep::tier_sse2::table();
    case util::simd::Tier::kScalar: break;
  }
  return lockstep::tier_scalar::table();
}

lockstep::LockstepFn pick_kernel(int width) {
  const lockstep::LockstepTable& t = tier_table(util::simd::active_tier());
  if (width == 2) return t.w2;
  if (width == 4) return t.w4;
  return t.w8;
}

}  // namespace

int BatchedModulator::preferred_width() {
  const int w = util::simd::active_width();
  return width_supported(w) ? w : 2;
}

std::unique_ptr<BatchedModulator> BatchedModulator::create(
    const SimConfig& cfg, const std::vector<std::uint64_t>& seeds,
    const Options& opts) {
  std::vector<SimConfig> cfgs(seeds.size(), cfg);
  for (std::size_t k = 0; k < seeds.size(); ++k) cfgs[k].seed = seeds[k];
  return create(cfgs, opts);
}

std::unique_ptr<BatchedModulator> BatchedModulator::create(
    const std::vector<SimConfig>& cfgs, const Options& opts) {
  if (!width_supported(static_cast<int>(cfgs.size()))) return nullptr;
  // The current-steering bank threads one shared bias-noise stream through
  // every substep — a serial dependency the lane model cannot batch.
  if (opts.dac != DacKind::kResistor) return nullptr;
  std::vector<VcoDsmModulator> lanes;
  lanes.reserve(cfgs.size());
  for (const SimConfig& lane_cfg : cfgs) lanes.emplace_back(lane_cfg, opts);
  // Heterogeneous lanes (PVT corners, amplitude points) batch as long as
  // the clock structure and noise-source flags agree; otherwise the caller
  // falls back to the scalar path.
  if (!BatchedStateAccess::batchable(lanes)) return nullptr;
  return std::unique_ptr<BatchedModulator>(
      new BatchedModulator(std::move(lanes)));
}

double BatchedModulator::full_scale_diff(int lane) const {
  return lanes_[static_cast<std::size_t>(lane)].full_scale_diff();
}

double BatchedModulator::input_common_mode(int lane) const {
  return lanes_[static_cast<std::size_t>(lane)].input_common_mode();
}

const std::vector<ModulatorResult>& BatchedModulator::run(
    const dsp::SignalFn& base, const std::vector<double>& lane_scale,
    std::size_t n_samples, BatchedWorkspace& ws) const {
  const int W = width();
  const SimConfig& cfg = config();
  lockstep::BatchedSetup setup = BatchedStateAccess::build(lanes_);
  setup.n_samples = n_samples;
  for (int w = 0; w < W; ++w) {
    setup.scale[static_cast<std::size_t>(w)] =
        lane_scale[static_cast<std::size_t>(w)];
  }

  // Same buffer reuse contract as the scalar SimWorkspace: a warmed-up
  // workspace runs allocation-free. counts/output are pre-sized to
  // n_samples (not just reserved) — the kernel streams its per-clock
  // results through raw data pointers with indexed stores, writing every
  // element exactly once.
  ws.results.resize(static_cast<std::size_t>(W));
  for (ModulatorResult& res : ws.results) {
    res.output.resize(n_samples);
    res.counts.resize(n_samples);
    if (setup.record_bits) {
      res.slice_bits.resize(static_cast<std::size_t>(cfg.num_slices));
      for (auto& v : res.slice_bits) {
        v.clear();
        v.reserve(n_samples);
      }
    } else {
      res.slice_bits.clear();
    }
    res.mean_vctrlp = res.mean_vctrln = 0.0;
    res.mean_freq1_hz = res.mean_freq2_hz = 0.0;
    res.bit_toggle_rate = 0.0;
  }
  if (ws.substep_frac.size() != static_cast<std::size_t>(cfg.substeps)) {
    ws.substep_frac.resize(static_cast<std::size_t>(cfg.substeps));
    for (int m = 0; m < cfg.substeps; ++m) {
      ws.substep_frac[static_cast<std::size_t>(m)] =
          static_cast<double>(m) / cfg.substeps;
    }
  }

  // Pre-evaluate the input (and the reference ripple, when enabled) at
  // every substep instant. The instants depend only on (n, m), and the
  // pre-pass calls `base` once per instant in exactly the order the scalar
  // modulator would, so even a stateful SignalFn sees the identical call
  // sequence and the values are bit-identical.
  const std::size_t n_sub =
      n_samples * static_cast<std::size_t>(cfg.substeps);
  ws.base_vals.resize(n_sub);
  if (setup.vref_ripple) {
    ws.vref_vals.resize(n_sub);
  } else {
    ws.vref_vals.clear();
  }
  {
    constexpr double kTwoPi = 2.0 * std::numbers::pi;
    const double* frac = ws.substep_frac.data();
    double* bv = ws.base_vals.data();
    double* vv = ws.vref_vals.data();
    std::size_t k = 0;
    for (std::size_t n = 0; n < n_samples; ++n) {
      for (int m = 0; m < cfg.substeps; ++m, ++k) {
        const double t =
            (static_cast<double>(n) + frac[m]) * setup.ts;
        bv[k] = base(t);
        if (setup.vref_ripple) {
          // batchable() guarantees a uniform vrefp whenever ripple is on,
          // so lane 0's reference stands for the whole batch.
          vv[k] = setup.vrefp.front() +
                  setup.ripple_amp *
                      std::sin(kTwoPi * setup.ripple_freq * t);
        }
      }
    }
  }

  pick_kernel(W)(setup, ws);
  return ws.results;
}

}  // namespace vcoadc::msim
