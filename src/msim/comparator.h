// Behavioral model of the sampling front end of one slice: replica buffer,
// clocked regenerative comparator, and SR latch (the SAFF of Fig. 7).
//
// Three comparator variants are modelled, matching Sec. 2.2.1:
//   * kStrongArm  - the conventional AMS strongARM latch (Fig. 6a); works at
//                   any common mode but is NOT in a standard-cell library,
//                   i.e. not synthesis friendly.
//   * kNand3      - [16]'s cross-coupled 3-input NAND pair; synthesis
//                   friendly but requires a HIGH input common mode. At the
//                   0.25 V CM of the VCO buffer output it mis-decides.
//   * kNor3       - the paper's proposal (Fig. 6b): cross-coupled 3-input
//                   NOR pair; at low CM the extra NMOS pair is cut off and
//                   the circuit is functionally a strongARM.
//
// Electrical non-idealities modelled: input-referred offset (converted to a
// sampling-phase error through the tap slew rate), a metastable aperture
// around tap edges, buffer delay, and per-edge clock jitter.
#pragma once

#include <algorithm>

#include "util/rng.h"

namespace vcoadc::msim {

enum class ComparatorKind { kStrongArm, kNand3, kNor3 };

/// Common-mode validity window: probability that one comparison mis-decides
/// purely because the input CM starves the input pair of the chosen topology.
/// 0 = always valid. The thresholds encode Sec. 2.2.1: NAND3 input pairs cut
/// off below ~0.45*VDD; NOR3 (PMOS input) degrades only above ~0.7*VDD.
double common_mode_error_prob(ComparatorKind kind, double vcm, double vdd);

class SamplingFrontEnd {
 public:
  struct Params {
    ComparatorKind kind = ComparatorKind::kNor3;
    double offset_sigma_v = 0.0;  ///< per-instance offset draw
    double noise_sigma_v = 0.0;   ///< input-referred noise per decision
    double meta_window_s = 0.0;   ///< metastable aperture around a tap edge
    double buffer_delay_s = 0.0;
    double tap_slew_v_per_s = 1e9;
    double input_cm_v = 0.25;     ///< buffer output CM (paper: ~0.25 V)
    double vdd = 1.1;
  };

  SamplingFrontEnd(const Params& p, util::Rng rng);

  /// Resolves one clocked comparison.
  ///
  /// `tap_level_at` must return the tap's logic level at a time offset
  /// (seconds) relative to the nominal sampling instant; `time_to_edge_s`
  /// is the distance from the sampling instant to the nearest tap edge.
  /// Template keeps the hot path inlined without a std::function allocation.
  template <typename LevelAt>
  bool sample(LevelAt&& tap_level_at, double time_to_edge_s,
              double clock_jitter_s) {
    // The voltage offset shifts the effective decision instant by
    // offset / slew; buffer delay and jitter shift it further. Per-decision
    // input noise adds a fresh time perturbation the same way.
    double t_eff = offset_time_s_ + params_.buffer_delay_s + clock_jitter_s;
    if (params_.noise_sigma_v > 0.0) {
      t_eff += rng_.gaussian(0.0, params_.noise_sigma_v) /
               std::max(params_.tap_slew_v_per_s, 1.0);
    }
    bool level = tap_level_at(t_eff);
    // Metastable aperture: if the edge is closer than the aperture, the
    // regeneration starts from ~zero differential and resolves randomly.
    if (params_.meta_window_s > 0.0 &&
        time_to_edge_s < params_.meta_window_s) {
      level = rng_.bernoulli(0.5);
    }
    // Common-mode starvation errors (NAND3 at low CM).
    if (cm_error_prob_ > 0.0 && rng_.bernoulli(cm_error_prob_)) {
      level = !level;
    }
    latched_ = level;  // SR latch holds the decision through reset
    return latched_;
  }

  bool latched() const { return latched_; }
  double offset_v() const { return offset_v_; }
  double offset_time_s() const { return offset_time_s_; }

 private:
  // Batched engine state transposer (batched_modulator.cpp).
  friend struct BatchedStateAccess;

  Params params_;
  util::Rng rng_;
  double offset_v_ = 0.0;
  double offset_time_s_ = 0.0;
  double cm_error_prob_ = 0.0;
  bool latched_ = false;
};

}  // namespace vcoadc::msim
