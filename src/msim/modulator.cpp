#include "msim/modulator.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <numbers>

#include "msim/noise.h"

namespace vcoadc::msim {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Clamps a config the solver cannot run with into the nearest runnable one,
// warning once per offending field. Boundary validators (core::validate_spec)
// reject bad specs upstream; this keeps direct msim users (tests, benches,
// fuzzing) out of division-by-zero / allocation-blowup territory when they
// hand-build a SimConfig.
SimConfig sanitize(const SimConfig& cfg) {
  SimConfig c = cfg;
  auto fix_int = [](const char* field, int& v, int lo, int hi) {
    if (v < lo || v > hi) {
      std::fprintf(stderr,
                   "vcoadc: [warning] msim %s: %d clamped into [%d, %d]\n",
                   field, v, lo, hi);
      v = v < lo ? lo : hi;
    }
  };
  auto fix_pos = [](const char* field, double& v, double fallback) {
    if (!(std::isfinite(v) && v > 0)) {
      std::fprintf(stderr,
                   "vcoadc: [warning] msim %s: %g replaced with %g "
                   "(must be finite and positive)\n",
                   field, v, fallback);
      v = fallback;
    }
  };
  // 64 slices is the SliceBits packing limit (one uint64 word per sample).
  fix_int("num_slices", c.num_slices, 2, 64);
  fix_int("substeps", c.substeps, 1, 1024);
  fix_pos("fs_hz", c.fs_hz, SimConfig{}.fs_hz);
  fix_pos("r_input_ohms", c.r_input_ohms, SimConfig{}.r_input_ohms);
  fix_pos("r_dac_ohms", c.r_dac_ohms, SimConfig{}.r_dac_ohms);
  fix_pos("c_node_f", c.c_node_f, SimConfig{}.c_node_f);
  fix_pos("vco_center_hz", c.vco_center_hz, SimConfig{}.vco_center_hz);
  return c;
}

// Wrap a phase to [0, 2*pi). Hot-path arguments are a wrapped tap phase
// (< 4*pi) plus a sub-clock excursion, so the subtraction loop runs at most
// twice; fmod would take glibc's slow large-quotient path for nothing.
double wrap_2pi(double p) {
  while (p >= kTwoPi) p -= kTwoPi;
  while (p < 0.0) p += kTwoPi;
  return p;
}

}  // namespace

VcoDsmModulator::VcoDsmModulator(const SimConfig& cfg, const Options& opts)
    // cfg_ is the first member, so every later initializer reads the
    // sanitized copy — a hand-built config with zero slices or a zero
    // resistance is clamped (with a warning) instead of dividing by zero.
    : cfg_(sanitize(cfg)),
      opts_(opts),
      rng_(cfg_.seed),
      vco1_(cfg_.num_slices, cfg_.vco_center_hz, cfg_.kvco_hz_per_v,
            cfg_.vctrl_mid, std::numbers::pi / 2.0,
            cfg_.vco_stage_mismatch_sigma,
            1.0 + ((cfg_.vco_kvco_mismatch_sigma > 0)
                       ? util::Rng(cfg_.seed ^ 0xa5a5).gaussian(
                             0.0, cfg_.vco_kvco_mismatch_sigma)
                       : 0.0),
            cfg_.vco_white_fm_hz2_per_hz, util::Rng(cfg_.seed).fork("vco1")),
      vco2_(cfg_.num_slices, cfg_.vco_center_hz, cfg_.kvco_hz_per_v,
            cfg_.vctrl_mid, 0.0, cfg_.vco_stage_mismatch_sigma,
            1.0 + ((cfg_.vco_kvco_mismatch_sigma > 0)
                       ? util::Rng(cfg_.seed ^ 0x5a5a).gaussian(
                             0.0, cfg_.vco_kvco_mismatch_sigma)
                       : 0.0),
            cfg_.vco_white_fm_hz2_per_hz, util::Rng(cfg_.seed).fork("vco2")),
      dac_p_(cfg_.num_slices, cfg_.r_dac_ohms, cfg_.vrefp,
             cfg_.r_dac_mismatch_sigma, util::Rng(cfg_.seed).fork("dacp")),
      dac_n_(cfg_.num_slices, cfg_.r_dac_ohms, cfg_.vrefp,
             cfg_.r_dac_mismatch_sigma, util::Rng(cfg_.seed).fork("dacn")),
      cs_dac_p_(opts.cs_params, util::Rng(cfg_.seed).fork("csdacp")),
      cs_dac_n_(opts.cs_params, util::Rng(cfg_.seed).fork("csdacn")),
      node_p_({.g_input_s = 1.0 / cfg_.r_input_ohms,
               .g_load_s = cfg_.g_vco_load_s,
               .c_node_f = cfg_.c_node_f,
               .thermal_noise = cfg_.thermal_noise,
               .temperature_k = cfg_.temperature_k,
               .v_init = cfg_.vctrl_mid},
              util::Rng(cfg_.seed).fork("nodep")),
      node_n_({.g_input_s = 1.0 / cfg_.r_input_ohms,
               .g_load_s = cfg_.g_vco_load_s,
               .c_node_f = cfg_.c_node_f,
               .thermal_noise = cfg_.thermal_noise,
               .temperature_k = cfg_.temperature_k,
               .v_init = cfg_.vctrl_mid},
              util::Rng(cfg_.seed).fork("noden")) {
  // Tap edge slew seen by the comparators; a starved ring's edge rise time
  // is about one stage delay of a ~0.5 V swing.
  double slew = cfg_.tap_slew_v_per_s;
  if (slew <= 0.0) {
    slew = 0.5 * 2.0 * cfg_.num_slices * cfg_.vco_center_hz;
  }
  SamplingFrontEnd::Params fp;
  fp.kind = opts_.comparator;
  fp.offset_sigma_v = cfg_.comparator_offset_sigma_v;
  fp.noise_sigma_v = cfg_.comparator_noise_sigma_v;
  fp.meta_window_s = cfg_.comparator_meta_window_s;
  fp.buffer_delay_s = cfg_.buffer_delay_s;
  fp.tap_slew_v_per_s = slew;
  fp.input_cm_v = opts_.input_cm_v;
  fp.vdd = cfg_.vdd;
  util::Rng fe_rng = util::Rng(cfg_.seed).fork("frontend");
  for (int i = 0; i < cfg_.num_slices; ++i) {
    fe1_.emplace_back(fp, fe_rng.fork("fe1"));
    fe2_.emplace_back(fp, fe_rng.fork("fe2"));
  }

  // Input common mode that biases the nodes at vctrl_mid for midscale duty.
  const double g_in = 1.0 / cfg_.r_input_ohms;
  if (opts_.dac == DacKind::kResistor) {
    const double g_dac = dac_p_.total_conductance();
    const double g_tot = g_in + g_dac + cfg_.g_vco_load_s;
    vcm_in_ = (cfg_.vctrl_mid * g_tot - 0.5 * g_dac * cfg_.vrefp) / g_in;
  } else {
    const double g_tot =
        g_in + cfg_.g_vco_load_s + cs_dac_p_.total_conductance();
    vcm_in_ = cfg_.vctrl_mid * g_tot / g_in;
  }
}

double VcoDsmModulator::full_scale_diff() const {
  const double g_in = 1.0 / cfg_.r_input_ohms;
  if (opts_.dac == DacKind::kResistor) {
    return dac_p_.total_conductance() * cfg_.vrefp / g_in;
  }
  return 2.0 * cfg_.num_slices * cs_dac_p_.unit_current_a() / g_in;
}

double VcoDsmModulator::input_common_mode() const { return vcm_in_; }

double VcoDsmModulator::loop_gain_lsb_per_clock() const {
  const double g_in = 1.0 / cfg_.r_input_ohms;
  double dv_node_range = 0.0;
  if (opts_.dac == DacKind::kResistor) {
    const double g_dac = dac_p_.total_conductance();
    const double g_tot = g_in + g_dac + cfg_.g_vco_load_s;
    dv_node_range = g_dac * cfg_.vrefp / g_tot;
  } else {
    const double g_tot = g_in + cfg_.g_vco_load_s + cs_dac_p_.total_conductance();
    dv_node_range =
        2.0 * cfg_.num_slices * cs_dac_p_.unit_current_a() / g_tot;
  }
  // Differential: both nodes move by +/- range/2 around midscale, so the
  // full-swing differential frequency step is Kvco * 2 * range ... per bit:
  const double dphi_full =
      kTwoPi * cfg_.kvco_hz_per_v * 2.0 * dv_node_range / cfg_.fs_hz;
  const double lsb = std::numbers::pi / cfg_.num_slices;
  return dphi_full / lsb / cfg_.num_slices;  // per-LSB-of-feedback move
}

ModulatorResult VcoDsmModulator::run(const dsp::SignalFn& vin_diff,
                                     std::size_t n_samples) {
  SimWorkspace ws;
  run(vin_diff, n_samples, ws);
  return std::move(ws.result);
}

const ModulatorResult& VcoDsmModulator::run(const dsp::SignalFn& vin_diff,
                                            std::size_t n_samples,
                                            SimWorkspace& ws) {
  const int n_slices = cfg_.num_slices;
  const double ts = 1.0 / cfg_.fs_hz;
  const double dt = ts / cfg_.substeps;

  // Reuse the workspace buffers: clear() keeps capacity, so a warmed-up
  // workspace makes this call allocation-free.
  ModulatorResult& res = ws.result;
  res.output.clear();
  res.output.reserve(n_samples);
  res.counts.clear();
  res.counts.reserve(n_samples);
  if (opts_.record_bits) {
    res.slice_bits.resize(static_cast<std::size_t>(n_slices));
    for (auto& v : res.slice_bits) {
      v.clear();
      v.reserve(n_samples);
    }
  } else {
    res.slice_bits.clear();
  }
  res.mean_vctrlp = res.mean_vctrln = 0.0;
  res.mean_freq1_hz = res.mean_freq2_hz = 0.0;
  res.bit_toggle_rate = 0.0;

  // Substep time fractions m / substeps, precomputed once (same division
  // the loop used to perform per substep, so t is bit-identical).
  if (ws.substep_frac.size() != static_cast<std::size_t>(cfg_.substeps)) {
    ws.substep_frac.resize(static_cast<std::size_t>(cfg_.substeps));
    for (int m = 0; m < cfg_.substeps; ++m) {
      ws.substep_frac[static_cast<std::size_t>(m)] =
          static_cast<double>(m) / cfg_.substeps;
    }
  }
  const double* substep_frac = ws.substep_frac.data();

  SliceBits d = SliceBits::alternating(n_slices);  // midscale start

  JitterSource jitter(cfg_.clock_jitter_sigma_s,
                      util::Rng(cfg_.seed).fork("clkjit"));

  double acc_vp = 0, acc_vn = 0, acc_f1 = 0, acc_f2 = 0;
  std::size_t toggles = 0;

  const bool use_rdac = opts_.dac == DacKind::kResistor;
  const bool vref_ripple = cfg_.vref_ripple_amp_v > 0.0;
  const double g_fold =
      use_rdac ? dac_p_.total_conductance() : cs_dac_p_.total_conductance();

  // Prime the DAC running sums for the initial bits; from here on they are
  // refreshed only at clock edges (bits are NRZ over the period), making
  // the per-substep DAC evaluation O(1) instead of O(n_slices).
  auto sync_dac_levels = [&](const SliceBits& bits) {
    // P-node DAC inverters see !d, N-node DACs see d (feedback polarity).
    if (use_rdac) {
      dac_p_.set_levels(bits.complement());
      dac_n_.set_levels(bits);
    } else {
      cs_dac_p_.set_levels(bits.complement());
      cs_dac_n_.set_levels(bits);
    }
  };
  sync_dac_levels(d);

  for (std::size_t n = 0; n < n_samples; ++n) {
    // Continuous-time interval: NRZ DAC holds d over the whole period.
    for (int m = 0; m < cfg_.substeps; ++m) {
      const double t = (static_cast<double>(n) + substep_frac[m]) * ts;
      const double vin = vin_diff(t);
      const double vinp = vcm_in_ + 0.5 * vin;
      const double vinn = vcm_in_ - 0.5 * vin;
      if (vref_ripple) {
        const double vref =
            cfg_.vrefp + cfg_.vref_ripple_amp_v *
                             std::sin(kTwoPi * cfg_.vref_ripple_freq_hz * t);
        dac_p_.set_vrefp(vref);
        dac_n_.set_vrefp(vref);
      }
      const double vp = node_p_.voltage();
      const double vn = node_n_.voltage();
      double ip, in;
      if (use_rdac) {
        ip = dac_p_.current_into_node(vp);
        in = dac_n_.current_into_node(vn);
      } else {
        ip = cs_dac_p_.current_into_node(vp, dt);
        in = cs_dac_n_.current_into_node(vn, dt);
      }
      node_p_.step(vinp, ip, g_fold, dt);
      node_n_.step(vinn, in, g_fold, dt);
      const double vp2 = node_p_.voltage();
      const double vn2 = node_n_.voltage();
      vco1_.advance(vp2, dt);
      vco2_.advance(vn2, dt);
      acc_vp += vp2;
      acc_vn += vn2;
      acc_f1 += vco1_.freq_hz(vp2);
      acc_f2 += vco2_.freq_hz(vn2);
    }

    // Clock edge: retime every tap through its SAFF and XOR per slice. The
    // node voltages and ring frequencies are edge constants — evaluate them
    // once instead of per slice / per comparator lambda.
    const double jit = jitter.next_edge_jitter();
    const double vp = node_p_.voltage();
    const double vn = node_n_.voltage();
    const double f1 = vco1_.freq_hz(vp);
    const double f2 = vco2_.freq_hz(vn);
    const double w1 = kTwoPi * f1;
    const double w2 = kTwoPi * f2;
    SliceBits raw(n_slices);
    for (int i = 0; i < n_slices; ++i) {
      const std::size_t si = static_cast<std::size_t>(i);
      const double base1 = vco1_.tap_phase(i);
      const double base2 = vco2_.tap_phase(i);
      auto level1 = [&](double toff) {
        return wrap_2pi(base1 + w1 * toff) < std::numbers::pi;
      };
      auto level2 = [&](double toff) {
        return wrap_2pi(base2 + w2 * toff) < std::numbers::pi;
      };
      const bool s1 =
          fe1_[si].sample(level1, vco1_.time_to_edge_at(i, f1), jit);
      const bool s2 =
          fe2_[si].sample(level2, vco2_.time_to_edge_at(i, f2), jit);
      const bool di = s1 != s2;
      if (di) raw.set(i, true);
      if (opts_.record_bits) res.slice_bits[si].push_back(di);
    }
    const int count = raw.count();
    toggles += static_cast<std::size_t>(raw.toggles_vs(d));
    // Static thermometer re-encoding (ablation): the summed code drives
    // elements 0..count-1 instead of the taps that produced it, exposing
    // element mismatch as code-dependent (in-band) error.
    d = (opts_.mapping == ElementMapping::kStaticThermometer)
            ? SliceBits::first_k(n_slices, count)
            : raw;
    sync_dac_levels(d);
    res.counts.push_back(count);
    res.output.push_back((2.0 * count - n_slices) /
                         static_cast<double>(n_slices));
  }

  const double steps =
      static_cast<double>(n_samples) * static_cast<double>(cfg_.substeps);
  if (steps > 0) {
    res.mean_vctrlp = acc_vp / steps;
    res.mean_vctrln = acc_vn / steps;
    res.mean_freq1_hz = acc_f1 / steps;
    res.mean_freq2_hz = acc_f2 / steps;
  }
  if (n_samples > 0) {
    res.bit_toggle_rate =
        static_cast<double>(toggles) / static_cast<double>(n_samples);
  }
  return res;
}

}  // namespace vcoadc::msim
