// Top-level behavioral model of the proposed N-slice VCO-based CT
// delta-sigma modulator (Fig. 4).
//
// Signal path being simulated, per clock period (with `substeps` continuous-
// time sub-intervals):
//   1. The differential input drives the VCTRLP/VCTRLN nodes through the
//      input resistors; each slice's resistor DAC injects feedback current
//      (NRZ, bits held over the clock period).
//   2. The two distributed N-stage rings integrate the node voltages into
//      phase (the VCO-as-integrator).
//   3. At each (jittered) clock edge, slice i samples ring tap i of both
//      rings through its buffer + NOR3 SAFF and XORs them into bit d_i.
//   4. d_i's inverter drives the DAC resistor: P-node sees !d_i, N-node
//      sees d_i, closing the loop with negative feedback.
//
// The sum of slice bits is an N+1-level flash quantization of the ring
// phase difference; tap rotation scrambles element usage (the intrinsic
// clocked-level-averaging the architecture inherits from refs [5,6]), which
// is what first-order-shapes VCO/DAC mismatch out of band (Fig. 17).
#pragma once

#include <functional>
#include <vector>

#include "dsp/signal_gen.h"
#include "msim/comparator.h"
#include "msim/resistor_dac.h"
#include "msim/ring_vco.h"
#include "msim/sim_config.h"
#include "msim/slice_bits.h"

namespace vcoadc::msim {

/// Which feedback DAC topology to simulate (Sec. 2.2.2 ablation).
enum class DacKind { kResistor, kCurrentSteering };

/// How quantizer decisions map onto DAC elements.
///   kIntrinsicRotation - each tap's decision drives its own slice DAC; as
///     the ring phase rotates, element usage rotates with it (the intrinsic
///     clocked-level-averaging of refs [5,6] that shapes element mismatch).
///   kStaticThermometer - the summed code re-encodes onto elements 0..k-1
///     every cycle (a conventional thermometer DAC): element mismatch maps
///     straight to code-dependent error, i.e. in-band distortion.
enum class ElementMapping { kIntrinsicRotation, kStaticThermometer };

struct ModulatorResult {
  /// Normalized output y[n] = (count - N/2) / (N/2), in [-1, 1].
  std::vector<double> output;
  /// Raw per-sample slice-bit sums, in [0, N].
  std::vector<int> counts;
  /// Per-slice bit streams (only if record_bits was set).
  std::vector<std::vector<bool>> slice_bits;
  /// Mean control-node voltages over the run.
  double mean_vctrlp = 0.0;
  double mean_vctrln = 0.0;
  /// Time-averaged ring frequencies [Hz] (for the power model).
  double mean_freq1_hz = 0.0;
  double mean_freq2_hz = 0.0;
  /// Average per-sample toggle count of the slice bits (DAC/XOR activity).
  double bit_toggle_rate = 0.0;
};

/// Reusable scratch for VcoDsmModulator::run(): the result buffers and the
/// precomputed substep time fractions. A workspace owned by one thread and
/// passed to successive run() calls makes the hot loop allocation-free after
/// the first run of a given size — Monte-Carlo sweeps reuse one workspace
/// per worker thread instead of churning the allocator per draw.
///
/// Contract: a workspace is NOT thread-safe; give each thread its own.
/// Buffers grow to the largest run seen and are retained; reset() drops
/// them. Results stay valid until the next run() with the same workspace.
struct SimWorkspace {
  ModulatorResult result;
  std::vector<double> substep_frac;  ///< m / substeps for m in [0, substeps)

  /// Releases all retained buffers (capacity back to zero).
  void reset() {
    result = ModulatorResult{};
    substep_frac = {};
  }
};

class VcoDsmModulator {
 public:
  struct Options {
    ComparatorKind comparator = ComparatorKind::kNor3;
    DacKind dac = DacKind::kResistor;
    ElementMapping mapping = ElementMapping::kIntrinsicRotation;
    CurrentSteeringDacBank::Params cs_params{};
    bool record_bits = false;
    /// Buffer-output common mode presented to the comparators [V].
    double input_cm_v = 0.25;
  };

  explicit VcoDsmModulator(const SimConfig& cfg)
      : VcoDsmModulator(cfg, Options{}) {}
  VcoDsmModulator(const SimConfig& cfg, const Options& opts);

  /// Runs `n_samples` clock periods against the differential input signal
  /// (volts, differential; full scale is full_scale_diff()).
  ModulatorResult run(const dsp::SignalFn& vin_diff, std::size_t n_samples);

  /// Same simulation, but all output and scratch buffers live in `ws` and
  /// are reused across calls (no per-call allocation once warmed up). The
  /// returned reference aliases ws.result and is invalidated by the next
  /// run() with the same workspace. Both overloads produce bit-identical
  /// results.
  const ModulatorResult& run(const dsp::SignalFn& vin_diff,
                             std::size_t n_samples, SimWorkspace& ws);

  /// Differential input amplitude that saturates the feedback DAC range:
  /// FS = (sum G_dac) * VREFP / G_in. A sine of this amplitude is 0 dBFS.
  double full_scale_diff() const;

  /// Input-pin common mode that biases the control nodes at vctrl_mid when
  /// the modulator idles at midscale duty.
  double input_common_mode() const;

  /// Loop-gain figure: feedback-induced phase-difference movement per clock
  /// at full DAC swing, in units of the quantizer LSB (pi/N). Stable,
  /// non-sluggish designs land around 1-4.
  double loop_gain_lsb_per_clock() const;

  const SimConfig& config() const { return cfg_; }

 private:
  // Batched engine state transposer (batched_modulator.cpp): after W
  // per-lane modulators are constructed (which replays the exact ctor-time
  // mismatch draw order), their component state is read out into
  // structure-of-arrays lanes.
  friend struct BatchedStateAccess;

  SimConfig cfg_;
  Options opts_;
  util::Rng rng_;
  RingVco vco1_;  // controlled by VCTRLP
  RingVco vco2_;  // controlled by VCTRLN
  ResistorDacBank dac_p_;
  ResistorDacBank dac_n_;
  CurrentSteeringDacBank cs_dac_p_;
  CurrentSteeringDacBank cs_dac_n_;
  ControlNode node_p_;
  ControlNode node_n_;
  std::vector<SamplingFrontEnd> fe1_;  // per-slice front end on ring 1
  std::vector<SamplingFrontEnd> fe2_;
  double vcm_in_ = 0.0;
};

}  // namespace vcoadc::msim
