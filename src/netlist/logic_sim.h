// Event-driven gate-level logic simulator.
//
// Executes a flattened Design directly - the digital half of verifying the
// generated HDL (Sec. 3.2) before layout: the Table 1 comparator must
// regenerate and latch, the SAFF must retime, the XOR must detect phase,
// and the Fig. 5 ring of inverters must actually oscillate at the period
// its stage delays predict. Three-valued logic (0/1/X) with inertial gate
// delays derived from the technology node.
//
// Supply-class pins (VDD/VSS/VCTRL*/VREFP/VBUF) are ignored by evaluation:
// in this discrete abstraction every gate is powered; the analog effects of
// the control-node supplies live in msim, not here.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "tech/tech_node.h"

namespace vcoadc::netlist {

enum class Logic : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

char to_char(Logic v);
Logic logic_not(Logic v);

class LogicSim {
 public:
  /// Builds the simulator over `design`'s flattened top. Gate delays come
  /// from `node` (FO4/4 for a 1x inverter, scaled by function complexity,
  /// reduced with drive strength).
  LogicSim(const Design& design, const tech::TechNode& node);

  /// Forces a net to a value at the current time (top-level stimulus).
  /// Scheduling is immediate; fan-out evaluates as time advances.
  void set(const std::string& net, Logic value);

  /// Current value of a net.
  Logic get(const std::string& net) const;

  /// Advances simulation until `t_end` seconds of simulated time.
  void run_until(double t_end);

  /// Advances until no events remain or `t_limit` is reached; returns true
  /// if the network settled (went quiescent).
  bool settle(double t_limit);

  double now() const { return now_; }

  /// Registers a callback fired on every committed change of `net`.
  void on_change(const std::string& net,
                 std::function<void(double, Logic)> cb);

  /// Count of committed net transitions since construction (activity).
  std::uint64_t transition_count() const { return transitions_; }

  /// True if the net exists.
  bool has_net(const std::string& net) const;

  /// Names of all nets (flattened).
  std::vector<std::string> net_names() const;

 private:
  struct Gate {
    const StdCell* cell = nullptr;
    std::vector<int> inputs;   // net ids in pin order
    int output = -1;           // net id (-1 if none, e.g. resistors)
    int d_in = -1, g_in = -1;  // for dlat
    double delay = 0;
    std::uint64_t seq = 0;     // inertial-delay event version
  };
  struct Event {
    double time;
    int gate;
    std::uint64_t seq;
    Logic value;
    bool operator>(const Event& other) const { return time > other.time; }
  };

  int net_id(const std::string& name);
  void evaluate_and_schedule(int gate_idx);
  void commit(int net, Logic value);
  static Logic eval_function(const Gate& g,
                             const std::vector<Logic>& values);

  std::map<std::string, int> net_ids_;
  std::vector<std::string> net_names_;
  std::vector<Logic> values_;
  std::vector<std::vector<int>> fanout_;  // net id -> gate indices
  std::vector<Gate> gates_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::map<int, std::vector<std::function<void(double, Logic)>>> callbacks_;
  double now_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace vcoadc::netlist
