// VCD (Value Change Dump, IEEE 1364) writer for LogicSim traces.
//
// Lets the generated netlist's behaviour be inspected in any waveform
// viewer (GTKWave etc.) - the verification artifact a schematic-to-HDL
// flow (Sec. 3.2) hands to the designer. Hooks a set of nets on a LogicSim
// and records every committed transition.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "netlist/logic_sim.h"

namespace vcoadc::netlist {

class VcdWriter {
 public:
  /// `timescale_s` is the VCD time unit (1 ps default).
  explicit VcdWriter(double timescale_s = 1e-12)
      : timescale_s_(timescale_s) {}

  /// Registers a net for dumping and attaches a change callback to `sim`.
  /// Must be called before the simulation runs the region of interest.
  void watch(LogicSim& sim, const std::string& net);

  /// Convenience: watch several nets.
  void watch_all(LogicSim& sim, const std::vector<std::string>& nets);

  /// Serializes the VCD file content ($date/$timescale/$scope/var defs,
  /// $dumpvars with initial values, then the change stream).
  std::string render(const std::string& module_name = "top") const;

  int num_signals() const { return static_cast<int>(ids_.size()); }
  std::size_t num_changes() const { return changes_.size(); }

 private:
  struct Change {
    double time_s;
    int signal;
    Logic value;
  };
  double timescale_s_;
  std::map<std::string, int> ids_;      // net -> signal index
  std::vector<std::string> names_;      // signal index -> net
  std::vector<Logic> initial_;
  std::vector<bool> has_initial_;
  std::vector<Change> changes_;
};

}  // namespace vcoadc::netlist
