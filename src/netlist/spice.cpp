#include "netlist/spice.h"

#include <set>
#include <sstream>

#include "util/strings.h"

namespace vcoadc::netlist {
namespace {

using util::format;

/// Device geometry: drawn length = node L, widths scale with drive.
struct Sizing {
  double l_um;
  double wn_um;  ///< NMOS width
  double wp_um;  ///< PMOS width (2x for mobility)
};

Sizing sizing_for(const StdCell& cell, const tech::TechNode& node) {
  Sizing s;
  s.l_um = node.gate_length_nm * 1e-3;
  s.wn_um = 4.0 * s.l_um * cell.drive;
  s.wp_um = 2.0 * s.wn_um;
  return s;
}

void emit_mos(std::ostringstream& os, int& idx, const std::string& d,
              const std::string& g, const std::string& s,
              const std::string& b, bool pmos, const Sizing& sz,
              double w_scale = 1.0) {
  os << format("M%d %s %s %s %s %s W=%.3fu L=%.3fu\n", idx++, d.c_str(),
               g.c_str(), s.c_str(), b.c_str(), pmos ? "PCH" : "NCH",
               (pmos ? sz.wp_um : sz.wn_um) * w_scale, sz.l_um);
}

/// Static CMOS inverter: 2 devices.
void emit_inverter(std::ostringstream& os, int& idx, const std::string& a,
                   const std::string& y, const std::string& vdd,
                   const std::string& vss, const Sizing& sz) {
  emit_mos(os, idx, y, a, vdd, vdd, true, sz);
  emit_mos(os, idx, y, a, vss, vss, false, sz);
}

/// N-input NOR: N series PMOS, N parallel NMOS.
void emit_nor(std::ostringstream& os, int& idx,
              const std::vector<std::string>& ins, const std::string& y,
              const std::string& vdd, const std::string& vss,
              const Sizing& sz) {
  // Series PMOS stack from VDD to Y; stack devices widened by fan-in.
  std::string prev = vdd;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    const std::string next =
        (i + 1 == ins.size()) ? y : "sp" + std::to_string(idx);
    emit_mos(os, idx, next, ins[i], prev, vdd, true, sz,
             static_cast<double>(ins.size()));
    prev = next;
  }
  for (const std::string& in : ins) {
    emit_mos(os, idx, y, in, vss, vss, false, sz);
  }
}

/// N-input NAND: N parallel PMOS, N series NMOS.
void emit_nand(std::ostringstream& os, int& idx,
               const std::vector<std::string>& ins, const std::string& y,
               const std::string& vdd, const std::string& vss,
               const Sizing& sz) {
  for (const std::string& in : ins) {
    emit_mos(os, idx, y, in, vdd, vdd, true, sz);
  }
  std::string prev = vss;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    const std::string next =
        (i + 1 == ins.size()) ? y : "sn" + std::to_string(idx);
    emit_mos(os, idx, next, ins[i], prev, vss, false, sz,
             static_cast<double>(ins.size()));
    prev = next;
  }
}

}  // namespace

int spice_transistor_count(const StdCell& cell) {
  if (cell.is_resistor) return 0;
  const std::string& fn = cell.function;
  if (fn == "inv") return 2;
  if (fn == "buf" || fn == "clkbuf") return 4;
  if (fn == "nand2" || fn == "nor2") return 4;
  if (fn == "nand3" || fn == "nor3") return 6;
  if (fn == "xor2") return 4 * 4;      // 4 NAND2
  if (fn == "dlat") return 4 * 4 + 2;  // 4 NAND2 + input inverter
  return 0;
}

std::string spice_cell_subckt(const StdCell& cell,
                              const tech::TechNode& node) {
  std::ostringstream os;
  const Sizing sz = sizing_for(cell, node);
  int idx = 1;

  if (cell.is_resistor) {
    os << ".SUBCKT " << cell.name << " T1 T2\n";
    os << format("R1 T1 T2 %.1f\n", cell.resistance_ohms);
    os << ".ENDS " << cell.name << "\n";
    return os.str();
  }

  const std::string& fn = cell.function;
  if (fn == "inv") {
    os << ".SUBCKT " << cell.name << " A Y VDD VSS\n";
    emit_inverter(os, idx, "A", "Y", "VDD", "VSS", sz);
  } else if (fn == "buf" || fn == "clkbuf") {
    os << ".SUBCKT " << cell.name << " A Y VDD VSS\n";
    emit_inverter(os, idx, "A", "mid", "VDD", "VSS", sz);
    emit_inverter(os, idx, "mid", "Y", "VDD", "VSS", sz);
  } else if (fn == "nor2") {
    os << ".SUBCKT " << cell.name << " A B Y VDD VSS\n";
    emit_nor(os, idx, {"A", "B"}, "Y", "VDD", "VSS", sz);
  } else if (fn == "nor3") {
    os << ".SUBCKT " << cell.name << " A B C Y VDD VSS\n";
    emit_nor(os, idx, {"A", "B", "C"}, "Y", "VDD", "VSS", sz);
  } else if (fn == "nand2") {
    os << ".SUBCKT " << cell.name << " A B Y VDD VSS\n";
    emit_nand(os, idx, {"A", "B"}, "Y", "VDD", "VSS", sz);
  } else if (fn == "nand3") {
    os << ".SUBCKT " << cell.name << " A B C Y VDD VSS\n";
    emit_nand(os, idx, {"A", "B", "C"}, "Y", "VDD", "VSS", sz);
  } else if (fn == "xor2") {
    // XOR2 out of 4 NAND2 stages.
    os << ".SUBCKT " << cell.name << " A B Y VDD VSS\n";
    emit_nand(os, idx, {"A", "B"}, "n1", "VDD", "VSS", sz);
    emit_nand(os, idx, {"A", "n1"}, "n2", "VDD", "VSS", sz);
    emit_nand(os, idx, {"B", "n1"}, "n3", "VDD", "VSS", sz);
    emit_nand(os, idx, {"n2", "n3"}, "Y", "VDD", "VSS", sz);
  } else if (fn == "dlat") {
    // Gated D latch: S/R NANDs + cross-coupled NAND pair + D inverter.
    os << ".SUBCKT " << cell.name << " D G Q VDD VSS\n";
    emit_inverter(os, idx, "D", "db", "VDD", "VSS", sz);
    emit_nand(os, idx, {"D", "G"}, "s", "VDD", "VSS", sz);
    emit_nand(os, idx, {"db", "G"}, "r", "VDD", "VSS", sz);
    emit_nand(os, idx, {"s", "qb"}, "Q", "VDD", "VSS", sz);
    emit_nand(os, idx, {"r", "Q"}, "qb", "VDD", "VSS", sz);
  } else {
    return {};
  }
  os << ".ENDS " << cell.name << "\n";
  return os.str();
}

std::string write_spice(const Design& design, const tech::TechNode& node,
                        const SpiceOptions& opts) {
  std::ostringstream os;
  os << "* SPICE deck generated by vcoadc (top: " << design.top() << ")\n";
  os << "* node: " << node.name << "\n\n";
  if (opts.emit_models) {
    const double vto = 0.25 * node.vdd;
    os << format(".MODEL NCH NMOS (LEVEL=1 VTO=%.3f KP=200u LAMBDA=%.3f)\n",
                 vto, 1.0 / node.intrinsic_gain);
    os << format(".MODEL PCH PMOS (LEVEL=1 VTO=%.3f KP=100u LAMBDA=%.3f)\n\n",
                 -vto, 1.0 / node.intrinsic_gain);
  }

  // Referenced library cells.
  if (opts.emit_cell_subckts) {
    std::set<std::string> emitted;
    for (const Module& mod : design.modules()) {
      for (const Instance& inst : mod.instances()) {
        const StdCell* cell = design.library().find(inst.master);
        if (cell == nullptr || emitted.count(cell->name)) continue;
        emitted.insert(cell->name);
        os << spice_cell_subckt(*cell, node) << "\n";
      }
    }
  }

  // One subckt per module, in stored (leaf-first) order.
  for (const Module& mod : design.modules()) {
    os << ".SUBCKT " << mod.name();
    for (const Port& p : mod.ports()) os << " " << p.name;
    os << "\n";
    for (const Instance& inst : mod.instances()) {
      os << "X" << inst.name;
      // Pin order: master's declared order.
      if (const StdCell* cell = design.library().find(inst.master)) {
        for (const PinSpec& pin : cell->pins) {
          auto it = inst.conn.find(pin.name);
          os << " " << ((it != inst.conn.end()) ? it->second : "UNCONN");
        }
      } else if (const Module* sub = design.find_module(inst.master)) {
        for (const Port& p : sub->ports()) {
          auto it = inst.conn.find(p.name);
          os << " " << ((it != inst.conn.end()) ? it->second : "UNCONN");
        }
      }
      os << " " << inst.master << "\n";
    }
    os << ".ENDS " << mod.name() << "\n\n";
  }
  os << "XTOP";
  if (const Module* top = design.find_module(design.top())) {
    for (const Port& p : top->ports()) os << " " << p.name;
  }
  os << " " << design.top() << "\n.END\n";
  return os.str();
}

}  // namespace vcoadc::netlist
