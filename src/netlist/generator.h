// HDL-generation phase (Sec. 3.2): builds the gate-level netlist of the
// proposed ADC exactly along the paper's module decomposition:
//
//   comparator  - Table 1: two cross-coupled NOR3X4 + NOR2X1 SR latch
//   VCO_cell    - Fig. 5b: one pseudo-differential ring stage out of 4
//                 digital inverters, supply pin = the control node
//   buf_cell    - the kickback-isolation buffer (same structure, fixed bias)
//   pd_VDD      - the VDD-domain chunk of one slice: two SAFFs + XOR + INV
//   pd_VREFP    - the VREFP-domain chunk: the DAC inverters (Fig. 8b)
//   ADC_slice   - Table 2: buffers, pd_VDD, two res_cells, pd_VREFP, and
//                 one VCO_cell of each ring
//   <top>       - N slices with both rings closed across them, the input
//                 resistor banks, and the clock tree
//
// Every instance is annotated with its power domain / component group per
// Fig. 12, which is what the Sec. 3.3 floorplan generation consumes.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace vcoadc::netlist {

struct GeneratorConfig {
  int num_slices = 8;
  std::string top_name = "adc_top";
  /// DAC resistor: a SERIES CHAIN of `dac_fragments` high-res fragments per
  /// slice per side (Sec. 3.1: "each resistor is decomposed into several
  /// identical fragments").
  std::string dac_res_cell = "RES11K";
  int dac_fragments = 1;
  /// Input resistor: `num_slices` parallel chains of `dac_fragments`
  /// fragments per side, mirroring the DAC bank conductance so full scale
  /// equals VREFP differentially.
  std::string input_res_cell = "RES11K";
  /// Split buffers and resistor groups in two, as the Fig. 14 floorplan does.
  bool split_groups = true;
};

/// Power-domain / group naming used across netlist + synthesis.
inline constexpr const char* kPdVdd = "PD_VDD";
inline constexpr const char* kPdVrefp = "PD_VREFP";
inline constexpr const char* kPdVctrlp = "PD_VCTRLP";
inline constexpr const char* kPdVctrln = "PD_VCTRLN";
inline constexpr const char* kPdVbuf1 = "PD_VBUF1";
inline constexpr const char* kPdVbuf2 = "PD_VBUF2";
inline constexpr const char* kGrpDacRes1 = "GRP_DAC_RES1";
inline constexpr const char* kGrpDacRes2 = "GRP_DAC_RES2";
inline constexpr const char* kGrpInRes1 = "GRP_IN_RES1";
inline constexpr const char* kGrpInRes2 = "GRP_IN_RES2";

/// Builds the full ADC design over `lib` (which must already contain the
/// resistor cells; see add_resistor_cells). The returned design has its top
/// set and passes Design::validate().
Design build_adc_design(const CellLibrary& lib, const GeneratorConfig& cfg);

}  // namespace vcoadc::netlist
