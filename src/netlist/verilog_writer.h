// Structural (gate-level) Verilog writer, producing netlists in the shape
// of the paper's Table 1 / Table 2 listings. Power-domain and group
// annotations are emitted as standard Verilog attribute instances
// `(* power_domain = "...", group = "..." *)` so they survive a round trip
// through the parser.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace vcoadc::netlist {

/// Serializes one module.
std::string write_module_verilog(const Design& design, const Module& mod);

/// Serializes the whole design, leaf modules first.
std::string write_verilog(const Design& design);

}  // namespace vcoadc::netlist
