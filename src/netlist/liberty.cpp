#include "netlist/liberty.h"

#include <cmath>
#include <sstream>

#include "util/strings.h"

namespace vcoadc::netlist {
namespace {

double function_delay_factor(const std::string& fn) {
  if (fn == "inv") return 1.0;
  if (fn == "buf" || fn == "clkbuf") return 2.0;
  if (fn == "nand2" || fn == "nor2") return 1.4;
  if (fn == "nand3" || fn == "nor3") return 1.8;
  if (fn == "xor2") return 2.2;
  if (fn == "dlat") return 2.5;
  return 1.5;
}

}  // namespace

double cell_intrinsic_delay(const StdCell& cell, const tech::TechNode& node) {
  if (cell.is_resistor) return 0.0;
  return node.fo4_delay_s / 4.0 * function_delay_factor(cell.function) /
         std::max(1.0, std::sqrt(static_cast<double>(cell.drive)));
}

std::string write_liberty(const CellLibrary& lib,
                          const tech::TechNode& node) {
  std::ostringstream os;
  os << "library (" << lib.name() << ") {\n";
  os << "  time_unit : \"1ps\" ;\n";
  os << "  capacitive_load_unit (1, ff) ;\n";
  os << "  leakage_power_unit : \"1nW\" ;\n";
  os << util::format("  nom_voltage : %.2f ;\n", node.vdd);
  for (const StdCell& cell : lib.cells()) {
    os << "  cell (" << cell.name << ") {\n";
    os << util::format("    area : %.6f ;\n", cell.area_m2() * 1e12);
    os << util::format("    property_width_um : %.6f ;\n",
                       cell.width_m * 1e6);
    os << util::format("    property_height_um : %.6f ;\n",
                       cell.height_m * 1e6);
    os << "    property_function : \"" << cell.function << "\" ;\n";
    os << util::format("    property_drive : %d ;\n", cell.drive);
    os << util::format("    cell_leakage_power : %.6f ;\n",
                       cell.leakage_w * 1e9);
    if (cell.is_resistor) {
      os << util::format("    property_resistance_ohms : %.1f ;\n",
                         cell.resistance_ohms);
    }
    const double delay_ps = cell_intrinsic_delay(cell, node) * 1e12;
    for (const PinSpec& pin : cell.pins) {
      os << "    pin (" << pin.name << ") {\n";
      os << "      direction : " << to_string(pin.dir) << " ;\n";
      if (pin.dir == PortDir::kInput) {
        os << util::format("      capacitance : %.6f ;\n",
                           cell.input_cap_f * 1e15);
      }
      if (pin.dir == PortDir::kOutput && delay_ps > 0) {
        os << "      timing () {\n";
        os << util::format("        intrinsic_rise : %.4f ;\n", delay_ps);
        os << util::format("        intrinsic_fall : %.4f ;\n", delay_ps);
        os << "      }\n";
      }
      os << "    }\n";
    }
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

LibertyParseResult parse_liberty(const std::string& text, CellLibrary& lib) {
  LibertyParseResult res;
  std::istringstream is(text);
  std::string line;
  StdCell cell;
  bool in_cell = false;
  std::string pin_name;
  PortDir pin_dir = PortDir::kInout;
  double pin_cap_ff = -1;
  int depth = 0;
  int cell_depth = -1, pin_depth = -1;
  int line_no = 0;

  auto strip_value = [](std::string v) {
    v = std::string(util::trim(v));
    if (!v.empty() && v.back() == ';') v.pop_back();
    v = std::string(util::trim(v));
    if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
      v = v.substr(1, v.size() - 2);
    }
    return v;
  };

  while (std::getline(is, line)) {
    ++line_no;
    const std::string t(util::trim(line));
    if (t.empty()) continue;

    if (util::starts_with(t, "cell ") || util::starts_with(t, "cell(")) {
      cell = StdCell{};
      cell.power_pin.clear();
      cell.ground_pin.clear();
      const auto open = t.find('(');
      const auto close = t.find(')');
      if (open == std::string::npos || close == std::string::npos) {
        res.error = util::format("line %d: malformed cell()", line_no);
        return res;
      }
      cell.name = std::string(util::trim(t.substr(open + 1, close - open - 1)));
      in_cell = true;
      cell_depth = depth;
    } else if (in_cell &&
               (util::starts_with(t, "pin ") || util::starts_with(t, "pin("))) {
      const auto open = t.find('(');
      const auto close = t.find(')');
      pin_name = std::string(util::trim(t.substr(open + 1, close - open - 1)));
      pin_dir = PortDir::kInout;
      pin_cap_ff = -1;
      pin_depth = depth;
    } else if (in_cell) {
      const auto colon = t.find(':');
      if (colon != std::string::npos) {
        const std::string key(util::trim(t.substr(0, colon)));
        const std::string value = strip_value(t.substr(colon + 1));
        if (key == "area") {
          // area alone is redundant with width/height properties
        } else if (key == "property_width_um") {
          cell.width_m = std::atof(value.c_str()) * 1e-6;
        } else if (key == "property_height_um") {
          cell.height_m = std::atof(value.c_str()) * 1e-6;
        } else if (key == "property_function") {
          cell.function = value;
        } else if (key == "property_drive") {
          cell.drive = std::atoi(value.c_str());
        } else if (key == "property_resistance_ohms") {
          cell.resistance_ohms = std::atof(value.c_str());
          cell.is_resistor = true;
        } else if (key == "cell_leakage_power") {
          cell.leakage_w = std::atof(value.c_str()) * 1e-9;
        } else if (key == "direction" && !pin_name.empty()) {
          if (value == "input") pin_dir = PortDir::kInput;
          else if (value == "output") pin_dir = PortDir::kOutput;
          else pin_dir = PortDir::kInout;
        } else if (key == "capacitance" && !pin_name.empty()) {
          pin_cap_ff = std::atof(value.c_str());
        }
      }
    }

    // Track braces AFTER interpreting the line.
    for (char c : t) {
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        if (!pin_name.empty() && depth == pin_depth) {
          cell.pins.push_back({pin_name, pin_dir});
          if (pin_cap_ff > 0) cell.input_cap_f = pin_cap_ff * 1e-15;
          // Heuristic: VDD/VREFP-style inout pins restore supply roles.
          if (pin_name == "VDD") cell.power_pin = "VDD";
          if (pin_name == "VSS") cell.ground_pin = "VSS";
          pin_name.clear();
        } else if (in_cell && depth == cell_depth) {
          lib.add(cell);
          in_cell = false;
        }
      }
    }
  }
  res.ok = true;
  return res;
}

}  // namespace vcoadc::netlist
