#include "netlist/equivalence.h"

#include <algorithm>
#include <map>

namespace vcoadc::netlist {
namespace {

constexpr std::size_t kMaxMismatches = 20;

void note(EquivalenceResult& res, std::string msg) {
  if (res.mismatches.size() < kMaxMismatches) {
    res.mismatches.push_back(std::move(msg));
  }
}

}  // namespace

EquivalenceResult check_equivalence(const Design& a, const Design& b,
                                    const EquivalenceOptions& opts) {
  EquivalenceResult res;

  // Top port lists must agree (order-insensitive).
  const Module* top_a = a.find_module(a.top());
  const Module* top_b = b.find_module(b.top());
  if (top_a == nullptr || top_b == nullptr) {
    note(res, "missing top module");
    return res;
  }
  auto port_set = [](const Module& m) {
    std::map<std::string, PortDir> ports;
    for (const Port& p : m.ports()) ports[p.name] = p.dir;
    return ports;
  };
  if (port_set(*top_a) != port_set(*top_b)) {
    note(res, "top-level port lists differ");
  }

  // Index B's flattened instances by path.
  std::map<std::string, FlatInstance> by_path;
  for (FlatInstance& fi : [&] {
         auto v = b.flatten();
         return v;
       }()) {
    by_path[fi.path] = std::move(fi);
  }

  const auto flat_a = a.flatten();
  res.instances_compared = static_cast<int>(flat_a.size());
  if (flat_a.size() != by_path.size()) {
    note(res, "instance counts differ: " + std::to_string(flat_a.size()) +
                  " vs " + std::to_string(by_path.size()));
  }

  for (const FlatInstance& fa : flat_a) {
    auto it = by_path.find(fa.path);
    if (it == by_path.end()) {
      note(res, fa.path + ": missing in second design");
      continue;
    }
    const FlatInstance& fb = it->second;
    if (fa.cell->function != fb.cell->function) {
      note(res, fa.path + ": function " + fa.cell->function + " vs " +
                    fb.cell->function);
    } else if (opts.match_drive && fa.cell->drive != fb.cell->drive) {
      note(res, fa.path + ": drive X" + std::to_string(fa.cell->drive) +
                    " vs X" + std::to_string(fb.cell->drive));
    }
    if (fa.conn != fb.conn) {
      note(res, fa.path + ": connectivity differs");
    }
    if (fa.power_domain != fb.power_domain || fa.group != fb.group) {
      note(res, fa.path + ": power domain / group annotation differs");
    }
    by_path.erase(it);
  }
  for (const auto& [path, fi] : by_path) {
    note(res, path + ": extra in second design");
  }

  res.equivalent = res.mismatches.empty();
  return res;
}

}  // namespace vcoadc::netlist
