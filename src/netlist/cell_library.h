// Standard-cell library model.
//
// Covers what the synthesis flow of Sec. 3 needs from a LEF/Liberty pair:
// cell geometry (for placement), pin directions (for netlist checking and
// routing estimation), input capacitance and leakage (for the power model).
//
// Sec. 3.1's "standard cell library modification" step is add_resistor_cells:
// the resistor is decomposed into fragments that are added to the library as
// special "resistor standard cells" (Fig. 11 shows the 1 kOhm low-res and
// 11 kOhm high-res variants), with cell height equal to the digital row
// height so the digital placer can legally place them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tech/tech_node.h"

namespace vcoadc::netlist {

enum class PortDir { kInput, kOutput, kInout };

std::string to_string(PortDir dir);

struct PinSpec {
  std::string name;
  PortDir dir = PortDir::kInput;
};

/// One library master ("standard cell").
struct StdCell {
  std::string name;       ///< e.g. "NOR3X4"
  std::string function;   ///< e.g. "nor3", "inv", "res"
  int drive = 1;          ///< drive strength (the X-number)
  double width_m = 0;     ///< placement width
  double height_m = 0;    ///< row height (all cells share it)
  std::vector<PinSpec> pins;
  double input_cap_f = 0; ///< capacitance per input pin
  double leakage_w = 0;
  bool is_resistor = false;
  double resistance_ohms = 0;  ///< for resistor cells
  /// Power/ground pin names. For this circuit these may be tied to analog
  /// nets (VCTRLP etc.) rather than the global VDD - the reason the flow
  /// needs power domains (Sec. 3.3).
  std::string power_pin = "VDD";
  std::string ground_pin = "VSS";

  bool has_pin(const std::string& pin_name) const;
  const PinSpec* find_pin(const std::string& pin_name) const;
  double area_m2() const { return width_m * height_m; }
};

class CellLibrary {
 public:
  explicit CellLibrary(std::string name = "lib") : name_(std::move(name)) {}

  /// Adds a master. A duplicate name never aborts: the first definition
  /// wins and the duplicate is dropped with a stderr warning.
  void add(StdCell cell);

  const StdCell* find(const std::string& name) const;
  /// Lookup that must succeed. An unknown name degrades to a zero-area
  /// placeholder cell with a stderr warning (never aborts); callers that
  /// need a hard error use find() / core::validate_netlist.
  const StdCell& at(const std::string& name) const;
  bool contains(const std::string& name) const { return find(name) != nullptr; }

  /// All drive strengths available for a logic function, sorted ascending.
  /// Used by the design-migration step (Sec. 4) to pick closest-size cells.
  std::vector<int> drive_strengths(const std::string& function) const;

  /// Name of the cell implementing `function` at drive `drive`, if present.
  std::optional<std::string> cell_for(const std::string& function,
                                      int drive) const;

  const std::vector<StdCell>& cells() const { return cells_; }
  const std::string& name() const { return name_; }
  double row_height_m() const;

 private:
  std::string name_;
  std::vector<StdCell> cells_;
};

/// Builds the digital portion of the library for a node: inverters, buffers,
/// NAND/NOR/XOR gates and latch support cells at several drive strengths,
/// with geometry and electricals derived from the TechNode.
CellLibrary make_standard_library(const tech::TechNode& node);

/// Sec. 3.1: adds the customized resistor standard cells. Two variants, as
/// in Fig. 11: a low-resistivity 1 kOhm cell and a high-resistivity 11 kOhm
/// cell, both at digital row height.
void add_resistor_cells(CellLibrary& lib, const tech::TechNode& node);

}  // namespace vcoadc::netlist
