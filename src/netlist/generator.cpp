#include "netlist/generator.h"

#include <cassert>

#include "util/strings.h"

namespace vcoadc::netlist {
namespace {

using util::format;

Instance make_inst(std::string name, std::string master,
                   std::map<std::string, std::string> conn,
                   std::string pd = {}, std::string group = {}) {
  Instance inst;
  inst.name = std::move(name);
  inst.master = std::move(master);
  inst.conn = std::move(conn);
  inst.power_domain = std::move(pd);
  inst.group = std::move(group);
  return inst;
}

/// Emits a series chain of `fragments` resistor cells between two nets,
/// creating the intermediate nets in `mod` (Sec. 3.1 fragment decomposition).
void add_resistor_chain(Module& mod, const std::string& name_prefix,
                        const std::string& cell, int fragments,
                        const std::string& from, const std::string& to,
                        const std::string& group) {
  std::string prev = from;
  for (int f = 0; f < fragments; ++f) {
    const std::string next =
        (f + 1 == fragments) ? to : name_prefix + "_n" + std::to_string(f);
    if (next != to) mod.add_net(next);
    mod.add_instance(make_inst(name_prefix + "_" + std::to_string(f), cell,
                               {{"T1", prev}, {"T2", next}}, {}, group));
    prev = next;
  }
}

/// Table 1: the synthesis-friendly comparator. Cross-coupled NOR3X4 pair
/// regenerates on CLK low; NOR2X1 SR latch keeps the decision during reset.
void build_comparator(Design& design) {
  Module& m = design.add_module("comparator");
  m.add_port("Q", PortDir::kOutput);
  m.add_port("QB", PortDir::kOutput);
  m.add_port("VDD", PortDir::kInout);
  m.add_port("VSS", PortDir::kInout);
  m.add_port("CLK", PortDir::kInput);
  m.add_port("INM", PortDir::kInput);
  m.add_port("INP", PortDir::kInput);
  m.add_net("OUTP");
  m.add_net("OUTM");
  m.add_instance(make_inst("I0", "NOR3X4",
                           {{"Y", "OUTP"},
                            {"VDD", "VDD"},
                            {"VSS", "VSS"},
                            {"A", "OUTM"},
                            {"B", "INP"},
                            {"C", "CLK"}}));
  m.add_instance(make_inst("I1", "NOR3X4",
                           {{"Y", "OUTM"},
                            {"VDD", "VDD"},
                            {"VSS", "VSS"},
                            {"A", "OUTP"},
                            {"B", "INM"},
                            {"C", "CLK"}}));
  m.add_instance(make_inst("I2", "NOR2X1",
                           {{"Y", "Q"},
                            {"VDD", "VDD"},
                            {"VSS", "VSS"},
                            {"A", "OUTP"},
                            {"B", "QB"}}));
  m.add_instance(make_inst("I3", "NOR2X1",
                           {{"Y", "QB"},
                            {"VDD", "VDD"},
                            {"VSS", "VSS"},
                            {"A", "OUTM"},
                            {"B", "Q"}}));
}

/// Fig. 5b: one ring stage from 4 inverters. The stage supply pin VCTRL is
/// the analog control node - the inverters' VDD pins tie to it, which is
/// exactly why this cell needs its own power domain in APR.
void build_vco_cell(Design& design) {
  Module& m = design.add_module("VCO_cell");
  m.add_port("IP", PortDir::kInput);
  m.add_port("IN", PortDir::kInput);
  m.add_port("OP", PortDir::kOutput);
  m.add_port("ON", PortDir::kOutput);
  m.add_port("VCTRL", PortDir::kInout);
  m.add_port("VSS", PortDir::kInout);
  // Forward pair.
  m.add_instance(make_inst(
      "I0", "INVX2",
      {{"A", "IP"}, {"Y", "ON"}, {"VDD", "VCTRL"}, {"VSS", "VSS"}}));
  m.add_instance(make_inst(
      "I1", "INVX2",
      {{"A", "IN"}, {"Y", "OP"}, {"VDD", "VCTRL"}, {"VSS", "VSS"}}));
  // Cross-coupled pair enforcing differential operation.
  m.add_instance(make_inst(
      "I2", "INVX1",
      {{"A", "OP"}, {"Y", "ON"}, {"VDD", "VCTRL"}, {"VSS", "VSS"}}));
  m.add_instance(make_inst(
      "I3", "INVX1",
      {{"A", "ON"}, {"Y", "OP"}, {"VDD", "VCTRL"}, {"VSS", "VSS"}}));
}

/// The kickback-isolation buffer: "similar to the VCO stage except that it
/// has a fixed bias tail" (Sec. 2.2). Its supply pin ties to VBUF.
void build_buf_cell(Design& design) {
  Module& m = design.add_module("buf_cell");
  m.add_port("BIP", PortDir::kInput);
  m.add_port("BIN", PortDir::kInput);
  m.add_port("BOP", PortDir::kOutput);
  m.add_port("BON", PortDir::kOutput);
  m.add_port("VCTRL", PortDir::kInout);  // the VBUF bias net
  m.add_port("VSS", PortDir::kInout);
  m.add_instance(make_inst(
      "I0", "INVX2",
      {{"A", "BIP"}, {"Y", "BON"}, {"VDD", "VCTRL"}, {"VSS", "VSS"}}));
  m.add_instance(make_inst(
      "I1", "INVX2",
      {{"A", "BIN"}, {"Y", "BOP"}, {"VDD", "VCTRL"}, {"VSS", "VSS"}}));
  m.add_instance(make_inst(
      "I2", "INVX1",
      {{"A", "BOP"}, {"Y", "BON"}, {"VDD", "VCTRL"}, {"VSS", "VSS"}}));
  m.add_instance(make_inst(
      "I3", "INVX1",
      {{"A", "BON"}, {"Y", "BOP"}, {"VDD", "VCTRL"}, {"VSS", "VSS"}}));
}

/// The VDD power domain of one slice (Fig. 12): two SAFFs retiming the
/// buffered ring taps, the XOR phase detector, and the DB inverter.
void build_pd_vdd(Design& design) {
  Module& m = design.add_module("pd_VDD");
  m.add_port("BOP", PortDir::kInput);
  m.add_port("BON", PortDir::kInput);
  m.add_port("BOP2", PortDir::kInput);
  m.add_port("BON2", PortDir::kInput);
  m.add_port("CLK", PortDir::kInput);
  m.add_port("D", PortDir::kOutput);
  m.add_port("DB", PortDir::kOutput);
  m.add_port("VDD", PortDir::kInout);
  m.add_port("VSS", PortDir::kInout);
  m.add_net("Q1");
  m.add_net("Q1B");
  m.add_net("Q2");
  m.add_net("Q2B");
  m.add_instance(make_inst("I0", "comparator",
                           {{"Q", "Q1"},
                            {"QB", "Q1B"},
                            {"VDD", "VDD"},
                            {"VSS", "VSS"},
                            {"CLK", "CLK"},
                            {"INP", "BOP"},
                            {"INM", "BON"}}));
  m.add_instance(make_inst("I1", "comparator",
                           {{"Q", "Q2"},
                            {"QB", "Q2B"},
                            {"VDD", "VDD"},
                            {"VSS", "VSS"},
                            {"CLK", "CLK"},
                            {"INP", "BOP2"},
                            {"INM", "BON2"}}));
  m.add_instance(make_inst(
      "I2", "XOR2X1",
      {{"A", "Q1"}, {"B", "Q2"}, {"Y", "D"}, {"VDD", "VDD"}, {"VSS", "VSS"}}));
  m.add_instance(make_inst(
      "I3", "INVX1",
      {{"A", "D"}, {"Y", "DB"}, {"VDD", "VDD"}, {"VSS", "VSS"}}));
}

/// The VREFP power domain of one slice: the DAC drive inverters of Fig. 8b.
/// Their "VDD" pin ties to VREFP so the resistor sources from the reference.
void build_pd_vrefp(Design& design) {
  Module& m = design.add_module("pd_VREFP");
  m.add_port("D", PortDir::kInput);
  m.add_port("DB", PortDir::kInput);
  m.add_port("DAC_OUT", PortDir::kOutput);
  m.add_port("DAC_OUT_B", PortDir::kOutput);
  m.add_port("VREFP", PortDir::kInout);
  m.add_port("VREFN", PortDir::kInout);
  m.add_instance(make_inst(
      "I0", "INVX2",
      {{"A", "D"}, {"Y", "DAC_OUT"}, {"VDD", "VREFP"}, {"VSS", "VREFN"}}));
  m.add_instance(make_inst("I1", "INVX2",
                           {{"A", "DB"},
                            {"Y", "DAC_OUT_B"},
                            {"VDD", "VREFP"},
                            {"VSS", "VREFN"}}));
}

/// Table 2: one slice. Port list follows the paper's Verilog, plus DOUT
/// exported so the digital back end can consume the slice bit.
void build_slice(Design& design, const GeneratorConfig& cfg) {
  Module& m = design.add_module("ADC_slice");
  for (const char* p : {"IN", "IN2", "IP", "IP2"}) {
    m.add_port(p, PortDir::kInput);
  }
  for (const char* p : {"ON", "ON2", "OP", "OP2"}) {
    m.add_port(p, PortDir::kOutput);
  }
  for (const char* p : {"VBUF", "VCTRLN", "VCTRLP", "VDD", "VREFP", "VSS"}) {
    m.add_port(p, PortDir::kInout);
  }
  m.add_port("CLK", PortDir::kInput);
  m.add_port("DOUT", PortDir::kOutput);
  for (const char* n :
       {"BON", "BOP", "BON2", "BOP2", "DB", "DAC_OUT", "DAC_OUT_B"}) {
    m.add_net(n);
  }

  m.add_instance(make_inst("I0", "buf_cell",
                           {{"BIN", "ON"},
                            {"BIP", "OP"},
                            {"BON", "BON"},
                            {"BOP", "BOP"},
                            {"VCTRL", "VBUF"},
                            {"VSS", "VSS"}},
                           kPdVbuf1));
  m.add_instance(make_inst("I1", "buf_cell",
                           {{"BIN", "ON2"},
                            {"BIP", "OP2"},
                            {"BON", "BON2"},
                            {"BOP", "BOP2"},
                            {"VCTRL", "VBUF"},
                            {"VSS", "VSS"}},
                           cfg.split_groups ? kPdVbuf2 : kPdVbuf1));
  m.add_instance(make_inst("I2", "pd_VDD",
                           {{"BON", "BON"},
                            {"BON2", "BON2"},
                            {"BOP", "BOP"},
                            {"BOP2", "BOP2"},
                            {"CLK", "CLK"},
                            {"D", "DOUT"},
                            {"DB", "DB"},
                            {"VDD", "VDD"},
                            {"VSS", "VSS"}},
                           kPdVdd));
  add_resistor_chain(m, "I3", cfg.dac_res_cell, cfg.dac_fragments,
                     "DAC_OUT_B", "VCTRLN",
                     cfg.split_groups ? kGrpDacRes2 : kGrpDacRes1);
  add_resistor_chain(m, "I4", cfg.dac_res_cell, cfg.dac_fragments,
                     "DAC_OUT", "VCTRLP", kGrpDacRes1);
  m.add_instance(make_inst("I5", "pd_VREFP",
                           {{"D", "DOUT"},
                            {"DAC_OUT", "DAC_OUT"},
                            {"DAC_OUT_B", "DAC_OUT_B"},
                            {"DB", "DB"},
                            {"VREFN", "VSS"},
                            {"VREFP", "VREFP"}},
                           kPdVrefp));
  m.add_instance(make_inst("I6", "VCO_cell",
                           {{"ON", "ON2"},
                            {"OP", "OP2"},
                            {"VCTRL", "VCTRLN"},
                            {"VSS", "VSS"},
                            {"IN", "IN2"},
                            {"IP", "IP2"}},
                           kPdVctrln));
  m.add_instance(make_inst("I7", "VCO_cell",
                           {{"ON", "ON"},
                            {"OP", "OP"},
                            {"VCTRL", "VCTRLP"},
                            {"VSS", "VSS"},
                            {"IN", "IN"},
                            {"IP", "IP"}},
                           kPdVctrlp));
}

/// Top level: N slices, rings closed across slices (with the polarity twist
/// at the wrap that keeps a differential ring oscillating), per-side input
/// resistor banks, and a buffered clock.
void build_top(Design& design, const GeneratorConfig& cfg) {
  Module& m = design.add_module(cfg.top_name);
  m.add_port("CLK", PortDir::kInput);
  m.add_port("VINP", PortDir::kInout);
  m.add_port("VINN", PortDir::kInout);
  m.add_port("VBUF", PortDir::kInout);
  m.add_port("VDD", PortDir::kInout);
  m.add_port("VREFP", PortDir::kInout);
  m.add_port("VSS", PortDir::kInout);
  for (int i = 0; i < cfg.num_slices; ++i) {
    m.add_port(format("D%d", i), PortDir::kOutput);
  }
  m.add_net("VCTRLP");
  m.add_net("VCTRLN");
  m.add_net("CLK_BUF");

  // Clock tree root.
  m.add_instance(make_inst(
      "ICLK", "CLKBUFX8",
      {{"A", "CLK"}, {"Y", "CLK_BUF"}, {"VDD", "VDD"}, {"VSS", "VSS"}},
      kPdVdd));

  // Ring tap nets: R1P_i / R1N_i between slice i-1 and slice i (ring 1).
  for (int i = 0; i < cfg.num_slices; ++i) {
    m.add_net(format("R1P_%d", i));
    m.add_net(format("R1N_%d", i));
    m.add_net(format("R2P_%d", i));
    m.add_net(format("R2N_%d", i));
  }

  for (int i = 0; i < cfg.num_slices; ++i) {
    const int prev = (i + cfg.num_slices - 1) % cfg.num_slices;
    // The wrap inverts polarity so an even-stage differential ring has the
    // net inversion it needs to oscillate.
    const bool twist = (i == 0);
    const std::string ip = format(twist ? "R1N_%d" : "R1P_%d", prev);
    const std::string in = format(twist ? "R1P_%d" : "R1N_%d", prev);
    const std::string ip2 = format(twist ? "R2N_%d" : "R2P_%d", prev);
    const std::string in2 = format(twist ? "R2P_%d" : "R2N_%d", prev);
    m.add_instance(make_inst(format("slice%d", i), "ADC_slice",
                             {{"CLK", "CLK_BUF"},
                              {"IN", in},
                              {"IN2", in2},
                              {"IP", ip},
                              {"IP2", ip2},
                              {"ON", format("R1N_%d", i)},
                              {"ON2", format("R2N_%d", i)},
                              {"OP", format("R1P_%d", i)},
                              {"OP2", format("R2P_%d", i)},
                              {"VBUF", "VBUF"},
                              {"VCTRLN", "VCTRLN"},
                              {"VCTRLP", "VCTRLP"},
                              {"VDD", "VDD"},
                              {"VREFP", "VREFP"},
                              {"VSS", "VSS"},
                              {"DOUT", format("D%d", i)}}));
  }

  // Input resistor banks: num_slices parallel chains per side, each chain
  // matching one DAC resistor, so the input conductance mirrors the DAC
  // bank and full scale equals VREFP.
  for (int i = 0; i < cfg.num_slices; ++i) {
    add_resistor_chain(m, format("RINP%d", i), cfg.input_res_cell,
                       cfg.dac_fragments, "VINP", "VCTRLP", kGrpInRes1);
    add_resistor_chain(m, format("RINN%d", i), cfg.input_res_cell,
                       cfg.dac_fragments, "VINN", "VCTRLN",
                       cfg.split_groups ? kGrpInRes2 : kGrpInRes1);
  }
}

}  // namespace

Design build_adc_design(const CellLibrary& lib, const GeneratorConfig& cfg) {
  assert(cfg.num_slices >= 2);
  Design design(&lib);
  build_comparator(design);
  build_vco_cell(design);
  build_buf_cell(design);
  build_pd_vdd(design);
  build_pd_vrefp(design);
  build_slice(design, cfg);
  build_top(design, cfg);
  design.set_top(cfg.top_name);
  return design;
}

}  // namespace vcoadc::netlist
