#include "netlist/logic_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vcoadc::netlist {
namespace {

Logic logic_and(Logic a, Logic b) {
  if (a == Logic::k0 || b == Logic::k0) return Logic::k0;
  if (a == Logic::k1 && b == Logic::k1) return Logic::k1;
  return Logic::kX;
}

Logic logic_or(Logic a, Logic b) {
  if (a == Logic::k1 || b == Logic::k1) return Logic::k1;
  if (a == Logic::k0 && b == Logic::k0) return Logic::k0;
  return Logic::kX;
}

Logic logic_xor(Logic a, Logic b) {
  if (a == Logic::kX || b == Logic::kX) return Logic::kX;
  return (a == b) ? Logic::k0 : Logic::k1;
}

/// Relative delay of a function vs a 1x inverter.
double function_delay_factor(const std::string& fn) {
  if (fn == "inv") return 1.0;
  if (fn == "buf" || fn == "clkbuf") return 2.0;
  if (fn == "nand2" || fn == "nor2") return 1.4;
  if (fn == "nand3" || fn == "nor3") return 1.8;
  if (fn == "xor2") return 2.2;
  if (fn == "dlat") return 2.5;
  return 1.5;
}

}  // namespace

char to_char(Logic v) {
  switch (v) {
    case Logic::k0:
      return '0';
    case Logic::k1:
      return '1';
    case Logic::kX:
      return 'X';
  }
  return '?';
}

Logic logic_not(Logic v) {
  if (v == Logic::k0) return Logic::k1;
  if (v == Logic::k1) return Logic::k0;
  return Logic::kX;
}

LogicSim::LogicSim(const Design& design, const tech::TechNode& node) {
  const double inv_delay = node.fo4_delay_s / 4.0;
  for (const FlatInstance& fi : design.flatten()) {
    if (fi.cell->is_resistor) continue;  // analog-only element
    Gate g;
    g.cell = fi.cell;
    // Drive strength shortens the delay (bigger devices, same load model).
    g.delay = inv_delay * function_delay_factor(fi.cell->function) /
              std::max(1.0, std::sqrt(static_cast<double>(fi.cell->drive)));
    for (const PinSpec& pin : fi.cell->pins) {
      auto it = fi.conn.find(pin.name);
      if (it == fi.conn.end()) continue;
      if (is_supply_net(it->second)) continue;
      const int id = net_id(it->second);
      if (pin.dir == PortDir::kOutput) {
        g.output = id;
      } else if (pin.dir == PortDir::kInput) {
        g.inputs.push_back(id);
        if (pin.name == "D") g.d_in = id;
        if (pin.name == "G") g.g_in = id;
      }
    }
    if (g.output < 0) continue;
    const int gate_idx = static_cast<int>(gates_.size());
    gates_.push_back(g);
    for (int in : gates_.back().inputs) {
      fanout_[static_cast<std::size_t>(in)].push_back(gate_idx);
    }
  }
}

int LogicSim::net_id(const std::string& name) {
  auto it = net_ids_.find(name);
  if (it != net_ids_.end()) return it->second;
  const int id = static_cast<int>(net_names_.size());
  net_ids_[name] = id;
  net_names_.push_back(name);
  values_.push_back(Logic::kX);
  fanout_.emplace_back();
  return id;
}

bool LogicSim::has_net(const std::string& net) const {
  return net_ids_.count(net) != 0;
}

std::vector<std::string> LogicSim::net_names() const { return net_names_; }

Logic LogicSim::eval_function(const Gate& g,
                              const std::vector<Logic>& values) {
  const std::string& fn = g.cell->function;
  auto in = [&](std::size_t i) {
    return values[static_cast<std::size_t>(g.inputs[i])];
  };
  if (fn == "inv") return logic_not(in(0));
  if (fn == "buf" || fn == "clkbuf") return in(0);
  if (fn == "nand2") return logic_not(logic_and(in(0), in(1)));
  if (fn == "nor2") return logic_not(logic_or(in(0), in(1)));
  if (fn == "nand3") {
    return logic_not(logic_and(logic_and(in(0), in(1)), in(2)));
  }
  if (fn == "nor3") return logic_not(logic_or(logic_or(in(0), in(1)), in(2)));
  if (fn == "xor2") return logic_xor(in(0), in(1));
  if (fn == "dlat") {
    // Transparent while G is high; holds otherwise (X gate -> X out unless
    // D equals the held value, conservatively X).
    const Logic gate = values[static_cast<std::size_t>(g.g_in)];
    const Logic d = values[static_cast<std::size_t>(g.d_in)];
    if (gate == Logic::k1) return d;
    if (gate == Logic::k0) return values[static_cast<std::size_t>(g.output)];
    return Logic::kX;
  }
  return Logic::kX;
}

void LogicSim::evaluate_and_schedule(int gate_idx) {
  Gate& g = gates_[static_cast<std::size_t>(gate_idx)];
  const Logic next = eval_function(g, values_);
  // Inertial delay: a new evaluation supersedes any pending event.
  ++g.seq;
  if (next == values_[static_cast<std::size_t>(g.output)]) return;
  queue_.push({now_ + g.delay, gate_idx, g.seq, next});
}

void LogicSim::commit(int net, Logic value) {
  if (values_[static_cast<std::size_t>(net)] == value) return;
  values_[static_cast<std::size_t>(net)] = value;
  ++transitions_;
  auto cb = callbacks_.find(net);
  if (cb != callbacks_.end()) {
    for (auto& fn : cb->second) fn(now_, value);
  }
  for (int gi : fanout_[static_cast<std::size_t>(net)]) {
    evaluate_and_schedule(gi);
  }
}

void LogicSim::set(const std::string& net, Logic value) {
  const int id = net_id(net);
  commit(id, value);
}

Logic LogicSim::get(const std::string& net) const {
  auto it = net_ids_.find(net);
  if (it == net_ids_.end()) return Logic::kX;
  return values_[static_cast<std::size_t>(it->second)];
}

void LogicSim::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    const Event ev = queue_.top();
    queue_.pop();
    const Gate& g = gates_[static_cast<std::size_t>(ev.gate)];
    if (ev.seq != g.seq) continue;  // superseded (inertial)
    now_ = ev.time;
    commit(g.output, ev.value);
  }
  now_ = std::max(now_, t_end);
}

bool LogicSim::settle(double t_limit) {
  while (!queue_.empty()) {
    if (queue_.top().time > t_limit) {
      now_ = t_limit;
      return false;
    }
    const Event ev = queue_.top();
    queue_.pop();
    const Gate& g = gates_[static_cast<std::size_t>(ev.gate)];
    if (ev.seq != g.seq) continue;
    now_ = ev.time;
    commit(g.output, ev.value);
  }
  return true;
}

void LogicSim::on_change(const std::string& net,
                         std::function<void(double, Logic)> cb) {
  callbacks_[net_id(net)].push_back(std::move(cb));
}

}  // namespace vcoadc::netlist
