#include "netlist/vcd.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace vcoadc::netlist {
namespace {

/// VCD identifier codes: printable ASCII starting at '!'.
std::string vcd_id(int index) {
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index > 0);
  return id;
}

char vcd_value(Logic v) {
  switch (v) {
    case Logic::k0:
      return '0';
    case Logic::k1:
      return '1';
    case Logic::kX:
      return 'x';
  }
  return 'x';
}

/// VCD var names may not contain whitespace; hierarchical '/' becomes '.'.
std::string sanitize(std::string name) {
  for (char& c : name) {
    if (c == '/') c = '.';
    if (c == ' ') c = '_';
  }
  return name;
}

}  // namespace

void VcdWriter::watch(LogicSim& sim, const std::string& net) {
  if (ids_.count(net)) return;
  const int index = static_cast<int>(names_.size());
  ids_[net] = index;
  names_.push_back(net);
  initial_.push_back(sim.get(net));
  has_initial_.push_back(true);
  sim.on_change(net, [this, index](double t, Logic v) {
    changes_.push_back({t, index, v});
  });
}

void VcdWriter::watch_all(LogicSim& sim,
                          const std::vector<std::string>& nets) {
  for (const std::string& n : nets) watch(sim, n);
}

std::string VcdWriter::render(const std::string& module_name) const {
  std::ostringstream os;
  os << "$date vcoadc logic simulation $end\n";
  os << "$version vcoadc vcd writer $end\n";
  os << "$timescale " << static_cast<long long>(timescale_s_ * 1e15 / 1000)
     << "ps $end\n";
  os << "$scope module " << module_name << " $end\n";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    os << "$var wire 1 " << vcd_id(static_cast<int>(i)) << " "
       << sanitize(names_[i]) << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";
  os << "$dumpvars\n";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    os << vcd_value(initial_[i]) << vcd_id(static_cast<int>(i)) << "\n";
  }
  os << "$end\n";

  // Changes, sorted by time (stable for same-time groups).
  std::vector<Change> sorted = changes_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Change& a, const Change& b) {
                     return a.time_s < b.time_s;
                   });
  long long last_tick = -1;
  for (const Change& c : sorted) {
    const long long tick =
        static_cast<long long>(std::llround(c.time_s / timescale_s_));
    if (tick != last_tick) {
      os << "#" << tick << "\n";
      last_tick = tick;
    }
    os << vcd_value(c.value) << vcd_id(c.signal) << "\n";
  }
  return os.str();
}

}  // namespace vcoadc::netlist
