#include "netlist/lef.h"

#include <cstdio>
#include <sstream>

#include "util/strings.h"

namespace vcoadc::netlist {
namespace {

const char* lef_direction(PortDir dir) {
  switch (dir) {
    case PortDir::kInput:
      return "INPUT";
    case PortDir::kOutput:
      return "OUTPUT";
    case PortDir::kInout:
      return "INOUT";
  }
  return "INOUT";
}

PortDir dir_from_lef(const std::string& s) {
  if (s == "INPUT") return PortDir::kInput;
  if (s == "OUTPUT") return PortDir::kOutput;
  return PortDir::kInout;
}

}  // namespace

std::string write_lef(const CellLibrary& lib) {
  std::ostringstream os;
  os << "VERSION 5.8 ;\n";
  os << "BUSBITCHARS \"[]\" ;\n";
  os << "DIVIDERCHAR \"/\" ;\n";
  os << "UNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS\n\n";
  for (const StdCell& cell : lib.cells()) {
    os << "MACRO " << cell.name << "\n";
    os << "  CLASS CORE ;\n";
    os << util::format("  SIZE %.4f BY %.4f ;\n", cell.width_m * 1e6,
                       cell.height_m * 1e6);
    os << "  PROPERTY function \"" << cell.function << "\" ;\n";
    os << util::format("  PROPERTY drive %d ;\n", cell.drive);
    os << util::format("  PROPERTY input_cap_ff %.6f ;\n",
                       cell.input_cap_f * 1e15);
    os << util::format("  PROPERTY leakage_nw %.6f ;\n",
                       cell.leakage_w * 1e9);
    if (cell.is_resistor) {
      os << util::format("  PROPERTY resistance_ohms %.1f ;\n",
                         cell.resistance_ohms);
    }
    for (const PinSpec& pin : cell.pins) {
      os << "  PIN " << pin.name << "\n";
      os << "    DIRECTION " << lef_direction(pin.dir) << " ;\n";
      if (pin.name == cell.power_pin) os << "    USE POWER ;\n";
      if (pin.name == cell.ground_pin) os << "    USE GROUND ;\n";
      os << "  END " << pin.name << "\n";
    }
    os << "END " << cell.name << "\n\n";
  }
  os << "END LIBRARY\n";
  return os.str();
}

LefParseResult parse_lef(const std::string& text, CellLibrary& lib) {
  LefParseResult res;
  std::istringstream is(text);
  std::string line;
  StdCell cell;
  bool in_macro = false;
  std::string pin_name;
  PortDir pin_dir = PortDir::kInout;
  bool pin_power = false, pin_ground = false;
  int line_no = 0;

  auto fail = [&](const std::string& msg) {
    res.ok = false;
    res.error = util::format("line %d: %s", line_no, msg.c_str());
  };

  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = util::split(util::trim(line), " \t;");
    if (tokens.empty()) continue;
    const std::string& kw = tokens[0];
    if (kw == "MACRO" && tokens.size() >= 2) {
      cell = StdCell{};
      cell.power_pin.clear();
      cell.ground_pin.clear();
      cell.name = tokens[1];
      in_macro = true;
    } else if (kw == "SIZE" && in_macro && tokens.size() >= 4) {
      cell.width_m = std::atof(tokens[1].c_str()) * 1e-6;
      cell.height_m = std::atof(tokens[3].c_str()) * 1e-6;
    } else if (kw == "PROPERTY" && in_macro && tokens.size() >= 3) {
      const std::string& key = tokens[1];
      std::string value = tokens[2];
      if (value.size() >= 2 && value.front() == '"') {
        value = value.substr(1, value.size() - 2);
      }
      if (key == "function") cell.function = value;
      if (key == "drive") cell.drive = std::atoi(value.c_str());
      if (key == "input_cap_ff") {
        cell.input_cap_f = std::atof(value.c_str()) * 1e-15;
      }
      if (key == "leakage_nw") cell.leakage_w = std::atof(value.c_str()) * 1e-9;
      if (key == "resistance_ohms") {
        cell.resistance_ohms = std::atof(value.c_str());
        cell.is_resistor = true;
      }
    } else if (kw == "PIN" && in_macro && tokens.size() >= 2) {
      pin_name = tokens[1];
      pin_dir = PortDir::kInout;
      pin_power = pin_ground = false;
    } else if (kw == "DIRECTION" && in_macro && tokens.size() >= 2) {
      pin_dir = dir_from_lef(tokens[1]);
    } else if (kw == "USE" && in_macro && tokens.size() >= 2) {
      if (tokens[1] == "POWER") pin_power = true;
      if (tokens[1] == "GROUND") pin_ground = true;
    } else if (kw == "END" && in_macro && tokens.size() >= 2) {
      if (tokens[1] == pin_name && !pin_name.empty()) {
        cell.pins.push_back({pin_name, pin_dir});
        if (pin_power) cell.power_pin = pin_name;
        if (pin_ground) cell.ground_pin = pin_name;
        pin_name.clear();
      } else if (tokens[1] == cell.name) {
        if (cell.name.empty()) {
          fail("END before MACRO");
          return res;
        }
        lib.add(cell);
        in_macro = false;
      }
    }
  }
  if (in_macro) {
    fail("unterminated MACRO " + cell.name);
    return res;
  }
  res.ok = true;
  return res;
}

}  // namespace vcoadc::netlist
