// SPICE netlist exporter.
//
// The paper's HDL-generation phase starts from a schematic ("it is a common
// practice to design AMS circuits in schematic, our synthesis flow exports
// the circuit netlist designed in schematic into gate-level HDL"). This
// module provides the inverse artifact for verification: a hierarchical
// SPICE deck of the generated design, with every digital master expanded
// to transistor level (level-1 MOS models parameterized from the node) and
// resistor cells as R elements - the Fig. 5a transistor view of what the
// Verilog describes at gate level.
#pragma once

#include <string>

#include "netlist/netlist.h"
#include "tech/tech_node.h"

namespace vcoadc::netlist {

struct SpiceOptions {
  /// Emit .MODEL cards (level-1 NMOS/PMOS parameterized from the node).
  bool emit_models = true;
  /// Emit a transistor-level .SUBCKT for every referenced library cell.
  bool emit_cell_subckts = true;
};

/// Exports the whole design (cell subckts + one subckt per module, top
/// instantiated as XTOP).
std::string write_spice(const Design& design, const tech::TechNode& node,
                        const SpiceOptions& opts = {});

/// Transistor-level subckt body for one library cell. Returns an empty
/// string for functions without a transistor expansion (none currently).
std::string spice_cell_subckt(const StdCell& cell, const tech::TechNode& node);

/// Number of transistors in the expansion of a cell (0 for resistors).
int spice_transistor_count(const StdCell& cell);

}  // namespace vcoadc::netlist
