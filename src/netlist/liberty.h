// Liberty (.lib) subset writer and parser: the timing/power view of the
// modified standard-cell library. Carries per-cell area, leakage, pin
// directions and capacitances, and a single-number propagation delay per
// cell (the linear-delay-model `intrinsic_rise`), which is what the STA
// engine consumes.
#pragma once

#include <string>

#include "netlist/cell_library.h"
#include "tech/tech_node.h"

namespace vcoadc::netlist {

/// Serializes a Liberty view. Delays derive from `node` (FO4-based, scaled
/// by function complexity / drive, matching the logic simulator's model).
std::string write_liberty(const CellLibrary& lib, const tech::TechNode& node);

struct LibertyParseResult {
  bool ok = false;
  std::string error;
};

/// Parses the write_liberty subset back into `lib` (geometry defaults to
/// area^0.5 square cells if only area is present; width/height properties
/// are emitted by the writer so round trips are exact).
LibertyParseResult parse_liberty(const std::string& text, CellLibrary& lib);

/// The intrinsic delay used for a cell by both the Liberty writer and the
/// logic simulator / STA [s].
double cell_intrinsic_delay(const StdCell& cell, const tech::TechNode& node);

}  // namespace vcoadc::netlist
