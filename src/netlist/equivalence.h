// Structural equivalence checking between two gate-level designs - the
// lightweight LEC step a real flow runs after every netlist transformation
// (schematic export -> Verilog parse-back, node migration, manual edits).
//
// Two designs are structurally equivalent when their flattened instance
// sets match one-to-one on (hierarchical path, cell FUNCTION, pin->net
// connectivity). Comparing functions rather than cell names makes the
// check migration-aware: an INVX2 remapped to INVX1 on a sparse target
// library still matches; an inverter swapped for a NAND does not.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace vcoadc::netlist {

struct EquivalenceOptions {
  /// Require identical drive strengths, not just identical functions
  /// (turn on for parse-back checks, off for migration checks).
  bool match_drive = false;
};

struct EquivalenceResult {
  bool equivalent = false;
  std::vector<std::string> mismatches;  ///< first ~20, human-readable
  int instances_compared = 0;
};

EquivalenceResult check_equivalence(const Design& a, const Design& b,
                                    const EquivalenceOptions& opts = {});

}  // namespace vcoadc::netlist
