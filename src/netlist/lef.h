// LEF (Library Exchange Format) subset writer and parser.
//
// Sec. 3.1: the modified standard-cell library (digital cells + the custom
// resistor cells) is handed to the APR tool as "LEF and GDSII files". This
// module serializes a CellLibrary to a LEF 5.x-style text (MACRO / CLASS /
// SIZE / PIN DIRECTION / USE POWER|GROUND) and parses it back. The logical
// attributes LEF does not carry (function, drive, input cap, resistance)
// ride along as PROPERTY records so a round trip is lossless.
#pragma once

#include <string>

#include "netlist/cell_library.h"

namespace vcoadc::netlist {

/// Serializes the library as LEF text.
std::string write_lef(const CellLibrary& lib);

struct LefParseResult {
  bool ok = false;
  std::string error;
};

/// Parses LEF text (the subset produced by write_lef) into `lib`.
/// Cells are appended; a duplicate name keeps the first definition and
/// warns (see CellLibrary::add).
LefParseResult parse_lef(const std::string& text, CellLibrary& lib);

}  // namespace vcoadc::netlist
