#include "netlist/netlist.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace vcoadc::netlist {

void Module::add_port(const std::string& name, PortDir dir) {
  ports_.push_back({name, dir});
}

void Module::add_net(const std::string& name) {
  if (!has_net(name) && !has_port(name)) nets_.push_back(name);
}

Instance& Module::add_instance(Instance inst) {
  instances_.push_back(std::move(inst));
  return instances_.back();
}

bool Module::has_port(const std::string& name) const {
  return std::any_of(ports_.begin(), ports_.end(),
                     [&](const Port& p) { return p.name == name; });
}

bool Module::has_net(const std::string& name) const {
  return std::find(nets_.begin(), nets_.end(), name) != nets_.end();
}

bool is_supply_net(const std::string& net) {
  const std::size_t slash = net.rfind('/');
  const std::string leaf =
      (slash == std::string::npos) ? net : net.substr(slash + 1);
  return leaf == "VDD" || leaf == "VSS" || leaf == "VREFP" ||
         leaf == "VREFN" || leaf == "VBUF" ||
         util::starts_with(leaf, "VCTRL");
}

Module& Design::add_module(const std::string& name) {
  if (Module* existing = find_module(name)) {
    // Degraded fallback instead of an abort: the caller gets the existing
    // module (the usual intent of a redundant add), and validate() /
    // core::validate_netlist reject genuinely conflicting designs.
    std::fprintf(stderr,
                 "vcoadc: [warning] netlist: duplicate module '%s'; "
                 "reusing the existing one\n",
                 name.c_str());
    return *existing;
  }
  modules_.emplace_back(name);
  return modules_.back();
}

Module* Design::find_module(const std::string& name) {
  for (Module& m : modules_) {
    if (m.name() == name) return &m;
  }
  return nullptr;
}

const Module* Design::find_module(const std::string& name) const {
  for (const Module& m : modules_) {
    if (m.name() == name) return &m;
  }
  return nullptr;
}

Module& Design::at(const std::string& name) {
  Module* m = find_module(name);
  if (m == nullptr) {
    // Degraded fallback instead of an abort: hand back an empty sentinel
    // module so rendering/stats code stays alive; callers that must hard-
    // fail use find_module() or core::validate_netlist upstream.
    std::fprintf(stderr,
                 "vcoadc: [warning] netlist: unknown module '%s'; "
                 "substituting an empty module\n",
                 name.c_str());
    static Module fallback("<unknown>");
    fallback = Module("<unknown>");
    return fallback;
  }
  return *m;
}

const Module& Design::at(const std::string& name) const {
  const Module* m = find_module(name);
  if (m == nullptr) {
    std::fprintf(stderr,
                 "vcoadc: [warning] netlist: unknown module '%s'; "
                 "substituting an empty module\n",
                 name.c_str());
    static const Module fallback("<unknown>");
    return fallback;
  }
  return *m;
}

std::vector<std::string> Design::validate() const {
  std::vector<std::string> problems;
  auto problem = [&](std::string msg) { problems.push_back(std::move(msg)); };

  if (find_module(top_) == nullptr) {
    problem("top module '" + top_ + "' not found");
  }

  for (const Module& mod : modules_) {
    auto net_known = [&](const std::string& net) {
      return mod.has_net(net) || mod.has_port(net);
    };
    for (const Instance& inst : mod.instances()) {
      const StdCell* cell = lib_->find(inst.master);
      const Module* sub = find_module(inst.master);
      if (cell == nullptr && sub == nullptr) {
        problem(mod.name() + "/" + inst.name + ": unknown master '" +
                inst.master + "'");
        continue;
      }
      for (const auto& [pin, net] : inst.conn) {
        const bool pin_ok =
            (cell != nullptr) ? cell->has_pin(pin)
                              : (sub != nullptr && sub->has_port(pin));
        if (!pin_ok) {
          problem(mod.name() + "/" + inst.name + ": master '" + inst.master +
                  "' has no pin '" + pin + "'");
        }
        if (!net_known(net)) {
          problem(mod.name() + "/" + inst.name + ": net '" + net +
                  "' not declared in module '" + mod.name() + "'");
        }
      }
      // Every input pin must be driven by *something* (connected).
      if (cell != nullptr) {
        for (const PinSpec& pin : cell->pins) {
          if (pin.dir == PortDir::kInput && inst.conn.count(pin.name) == 0) {
            problem(mod.name() + "/" + inst.name + ": input pin '" +
                    pin.name + "' unconnected");
          }
        }
      } else if (sub != nullptr) {
        for (const Port& port : sub->ports()) {
          if (port.dir == PortDir::kInput &&
              inst.conn.count(port.name) == 0) {
            problem(mod.name() + "/" + inst.name + ": input port '" +
                    port.name + "' unconnected");
          }
        }
      }
    }
  }
  return problems;
}

void Design::flatten_into(const Module& mod, const std::string& path_prefix,
                          const std::map<std::string, std::string>& port_to_net,
                          const std::string& inherited_pd,
                          const std::string& inherited_group,
                          std::vector<FlatInstance>& out) const {
  auto resolve_net = [&](const std::string& local) -> std::string {
    auto it = port_to_net.find(local);
    if (it != port_to_net.end()) return it->second;
    return path_prefix.empty() ? local : path_prefix + "/" + local;
  };

  for (const Instance& inst : mod.instances()) {
    const std::string pd =
        inst.power_domain.empty() ? inherited_pd : inst.power_domain;
    const std::string grp = inst.group.empty() ? inherited_group : inst.group;
    const std::string child_path =
        path_prefix.empty() ? inst.name : path_prefix + "/" + inst.name;

    if (const StdCell* cell = lib_->find(inst.master)) {
      FlatInstance fi;
      fi.path = child_path;
      fi.cell = cell;
      fi.power_domain = pd;
      fi.group = grp;
      for (const auto& [pin, net] : inst.conn) {
        fi.conn[pin] = resolve_net(net);
      }
      out.push_back(std::move(fi));
    } else if (const Module* sub = find_module(inst.master)) {
      std::map<std::string, std::string> child_ports;
      for (const auto& [pin, net] : inst.conn) {
        child_ports[pin] = resolve_net(net);
      }
      flatten_into(*sub, child_path, child_ports, pd, grp, out);
    }
    // Unknown masters were reported by validate(); skip here.
  }
}

std::vector<FlatInstance> Design::flatten() const {
  std::vector<FlatInstance> out;
  const Module* top_mod = find_module(top_);
  if (top_mod == nullptr) return out;
  // Reserve the exact leaf count up front: a FlatInstance move drags a
  // whole connection map along, so growth reallocations are not cheap.
  auto count_leaves = [&](auto&& self, const Module& mod) -> std::size_t {
    std::size_t n = 0;
    for (const Instance& inst : mod.instances()) {
      if (lib_->find(inst.master) != nullptr) {
        ++n;
      } else if (const Module* sub = find_module(inst.master)) {
        n += self(self, *sub);
      }
    }
    return n;
  };
  out.reserve(count_leaves(count_leaves, *top_mod));
  // Top ports map to themselves (flat net name == port name).
  std::map<std::string, std::string> ports;
  for (const Port& p : top_mod->ports()) ports[p.name] = p.name;
  flatten_into(*top_mod, "", ports, "PD_VDD", "", out);
  return out;
}

DesignStats Design::stats() const {
  DesignStats s;
  for (const FlatInstance& fi : flatten()) {
    ++s.total_instances;
    if (fi.cell->is_resistor) {
      ++s.resistors;
    } else {
      ++s.digital_gates;
    }
    ++s.by_function[fi.cell->function];
    ++s.by_power_domain[fi.cell->is_resistor ? fi.group : fi.power_domain];
    s.total_cell_area_m2 += fi.cell->area_m2();
    s.total_leakage_w += fi.cell->leakage_w;
  }
  return s;
}

}  // namespace vcoadc::netlist
