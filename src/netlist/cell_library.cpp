#include "netlist/cell_library.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vcoadc::netlist {

std::string to_string(PortDir dir) {
  switch (dir) {
    case PortDir::kInput:
      return "input";
    case PortDir::kOutput:
      return "output";
    case PortDir::kInout:
      return "inout";
  }
  return "?";
}

bool StdCell::has_pin(const std::string& pin_name) const {
  return find_pin(pin_name) != nullptr;
}

const PinSpec* StdCell::find_pin(const std::string& pin_name) const {
  for (const PinSpec& p : pins) {
    if (p.name == pin_name) return &p;
  }
  return nullptr;
}

void CellLibrary::add(StdCell cell) {
  if (contains(cell.name)) {
    // Degraded fallback instead of an abort: first definition wins (the
    // invariant lookup order), the duplicate is dropped with a warning.
    std::fprintf(stderr,
                 "vcoadc: [warning] library: duplicate cell '%s'; keeping "
                 "the first definition\n",
                 cell.name.c_str());
    return;
  }
  cells_.push_back(std::move(cell));
}

const StdCell* CellLibrary::find(const std::string& name) const {
  for (const StdCell& c : cells_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const StdCell& CellLibrary::at(const std::string& name) const {
  const StdCell* c = find(name);
  if (c == nullptr) {
    // Degraded fallback instead of an abort: a zero-area placeholder cell
    // keeps rendering/stats code alive; structural rejection of unknown
    // masters happens in Design::validate / core::validate_netlist.
    std::fprintf(stderr,
                 "vcoadc: [warning] library: unknown cell '%s'; "
                 "substituting a placeholder\n",
                 name.c_str());
    static const StdCell fallback = [] {
      StdCell c;
      c.name = "<unknown>";
      return c;
    }();
    return fallback;
  }
  return *c;
}

std::vector<int> CellLibrary::drive_strengths(
    const std::string& function) const {
  std::vector<int> out;
  for (const StdCell& c : cells_) {
    if (c.function == function) out.push_back(c.drive);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::string> CellLibrary::cell_for(const std::string& function,
                                                 int drive) const {
  for (const StdCell& c : cells_) {
    if (c.function == function && c.drive == drive) return c.name;
  }
  return std::nullopt;
}

double CellLibrary::row_height_m() const {
  return cells_.empty() ? 0.0 : cells_.front().height_m;
}

namespace {

/// Helper building one combinational master. Width is measured in placement
/// sites (one site = one M1 pitch); bigger drives use proportionally more
/// sites. Input cap scales with drive.
StdCell make_gate(const tech::TechNode& node, const std::string& name,
                  const std::string& function, int drive, int base_sites,
                  const std::vector<PinSpec>& signal_pins) {
  StdCell c;
  c.name = name;
  c.function = function;
  c.drive = drive;
  c.width_m = static_cast<double>(base_sites * drive) * node.m1_pitch_m;
  c.height_m = node.cell_row_height_m;
  c.pins = signal_pins;
  c.pins.push_back({"VDD", PortDir::kInout});
  c.pins.push_back({"VSS", PortDir::kInout});
  c.input_cap_f = node.min_inv_input_cap_f * drive;
  c.leakage_w = node.gate_leakage_w * drive;
  return c;
}

}  // namespace

CellLibrary make_standard_library(const tech::TechNode& node) {
  CellLibrary lib("stdlib_" + node.name);
  const PinSpec a{"A", PortDir::kInput};
  const PinSpec b{"B", PortDir::kInput};
  const PinSpec cc{"C", PortDir::kInput};
  const PinSpec y{"Y", PortDir::kOutput};

  for (int drive : {1, 2, 4, 8}) {
    lib.add(make_gate(node, "INVX" + std::to_string(drive), "inv", drive, 3,
                      {a, y}));
  }
  for (int drive : {1, 2, 4}) {
    lib.add(make_gate(node, "BUFX" + std::to_string(drive), "buf", drive, 4,
                      {a, y}));
  }
  for (int drive : {1, 2, 4}) {
    lib.add(make_gate(node, "NAND2X" + std::to_string(drive), "nand2", drive,
                      4, {a, b, y}));
    lib.add(make_gate(node, "NOR2X" + std::to_string(drive), "nor2", drive, 4,
                      {a, b, y}));
  }
  for (int drive : {1, 2, 4}) {
    lib.add(make_gate(node, "NAND3X" + std::to_string(drive), "nand3", drive,
                      5, {a, b, cc, y}));
    lib.add(make_gate(node, "NOR3X" + std::to_string(drive), "nor3", drive, 5,
                      {a, b, cc, y}));
  }
  for (int drive : {1, 2}) {
    lib.add(make_gate(node, "XOR2X" + std::to_string(drive), "xor2", drive, 8,
                      {a, b, y}));
  }
  // Transmission-gate latch used for retiming support logic.
  lib.add(make_gate(node, "DLATX1", "dlat", 1, 10,
                    {{"D", PortDir::kInput},
                     {"G", PortDir::kInput},
                     {"Q", PortDir::kOutput}}));
  // Clock buffer (large drive for the clock tree).
  lib.add(make_gate(node, "CLKBUFX8", "clkbuf", 8, 4, {a, y}));
  return lib;
}

void add_resistor_cells(CellLibrary& lib, const tech::TechNode& node) {
  // Fig. 11: two fragments. The low-resistivity poly cell realizes 1 kOhm in
  // a cell of the digital row height; the high-resistivity implant realizes
  // 11 kOhm in a similar footprint. Width follows squares = R / sheet_rho,
  // folded into the row height (a fixed number of folds keeps the height at
  // one row; the folds set the cell width).
  struct Variant {
    const char* name;
    double ohms;
    double sheet;
  };
  const Variant variants[] = {
      {"RES1K", 1000.0, node.poly_sheet_ohms},
      {"RES11K", 11000.0, node.hires_sheet_ohms},
  };
  for (const Variant& v : variants) {
    StdCell c;
    c.name = v.name;
    c.function = "res";
    c.drive = 1;
    const double squares = v.ohms / v.sheet;
    // Resistor geometry is matching-driven, not lithography-driven: the
    // stripe width stays at ~0.4 um (plus 0.4 um spacing) in every node, so
    // resistor area barely scales — one reason total ADC area shrinks less
    // than pure gate area between nodes (Table 3: 12.6x, not 20x).
    constexpr double kStripePitch = 0.5e-6;
    const double folds =
        std::max(1.0, std::floor(node.cell_row_height_m / kStripePitch));
    const double stripes = std::max(1.0, std::ceil(squares / folds));
    c.width_m = stripes * kStripePitch;
    c.height_m = node.cell_row_height_m;
    c.pins = {{"T1", PortDir::kInout}, {"T2", PortDir::kInout}};
    c.input_cap_f = 0.0;
    c.leakage_w = 0.0;
    c.is_resistor = true;
    c.resistance_ohms = v.ohms;
    c.power_pin.clear();   // resistors have no supply pins; they go into
    c.ground_pin.clear();  // component *groups*, not power domains
    lib.add(c);
  }
}

}  // namespace vcoadc::netlist
