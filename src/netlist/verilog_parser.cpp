#include "netlist/verilog_parser.h"

#include <cctype>

#include "util/strings.h"

namespace vcoadc::netlist {
namespace {

enum class TokKind { kIdent, kPunct, kString, kEof };

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token next() {
    skip_ws_and_comments();
    Token tok;
    tok.line = line_;
    if (pos_ >= text_.size()) return tok;  // kEof
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '\\') {
      tok.kind = TokKind::kIdent;
      // Escaped identifiers (\foo ) end at whitespace.
      if (c == '\\') {
        ++pos_;
        while (pos_ < text_.size() &&
               !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
          tok.text += text_[pos_++];
        }
        return tok;
      }
      while (pos_ < text_.size()) {
        const char d = text_[pos_];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
            d == '$') {
          tok.text += d;
          ++pos_;
        } else {
          break;
        }
      }
      return tok;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      tok.kind = TokKind::kIdent;  // numeric literals treated as idents
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '\'' || text_[pos_] == '_')) {
        tok.text += text_[pos_++];
      }
      return tok;
    }
    if (c == '"') {
      tok.kind = TokKind::kString;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        tok.text += text_[pos_++];
      }
      if (pos_ < text_.size()) ++pos_;  // closing quote
      return tok;
    }
    // Attribute delimiters are two-char tokens.
    if (c == '(' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
      tok.kind = TokKind::kPunct;
      tok.text = "(*";
      pos_ += 2;
      return tok;
    }
    if (c == '*' && pos_ + 1 < text_.size() && text_[pos_ + 1] == ')') {
      tok.kind = TokKind::kPunct;
      tok.text = "*)";
      pos_ += 2;
      return tok;
    }
    tok.kind = TokKind::kPunct;
    tok.text = std::string(1, c);
    ++pos_;
    return tok;
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ += 2;
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  Parser(const std::string& text, Design& design)
      : lexer_(text), design_(design) {
    advance();
  }

  ParseResult run() {
    while (cur_.kind != TokKind::kEof && ok_) {
      if (is_ident("module")) {
        parse_module();
      } else {
        fail("expected 'module'");
      }
    }
    ParseResult res;
    res.ok = ok_;
    res.error = error_;
    res.line = error_line_;
    return res;
  }

 private:
  void advance() { cur_ = lexer_.next(); }

  bool is_ident(const char* kw) const {
    return cur_.kind == TokKind::kIdent && cur_.text == kw;
  }
  bool is_punct(const char* p) const {
    return cur_.kind == TokKind::kPunct && cur_.text == p;
  }

  void fail(const std::string& msg) {
    if (!ok_) return;
    ok_ = false;
    error_ = msg + " (got '" + cur_.text + "')";
    error_line_ = cur_.line;
    cur_ = Token{};  // force EOF to stop the loop
  }

  static bool is_keyword(const std::string& s) {
    return s == "module" || s == "endmodule" || s == "input" ||
           s == "output" || s == "inout" || s == "wire";
  }

  std::string expect_ident(const char* what) {
    if (cur_.kind != TokKind::kIdent) {
      fail(std::string("expected ") + what);
      return {};
    }
    if (is_keyword(cur_.text)) {
      fail(std::string("expected ") + what +
           " but found keyword (missing ';'?)");
      return {};
    }
    std::string s = cur_.text;
    advance();
    return s;
  }

  void expect_punct(const char* p) {
    if (!is_punct(p)) {
      fail(std::string("expected '") + p + "'");
      return;
    }
    advance();
  }

  void parse_module() {
    advance();  // 'module'
    const std::string name = expect_ident("module name");
    if (!ok_) return;
    Module& mod = design_.add_module(name);
    std::vector<std::string> header_ports;
    if (is_punct("(")) {
      advance();
      while (ok_ && !is_punct(")")) {
        header_ports.push_back(expect_ident("port name"));
        if (is_punct(",")) advance();
      }
      expect_punct(")");
    }
    expect_punct(";");

    // Body. Directions fill in as declarations are seen; header ports
    // without a declaration default to inout.
    std::map<std::string, PortDir> dirs;
    std::string pending_pd, pending_group;
    while (ok_ && !is_ident("endmodule")) {
      if (cur_.kind == TokKind::kEof) {
        fail("unexpected end of file inside module");
        return;
      }
      if (is_ident("input") || is_ident("output") || is_ident("inout")) {
        const PortDir dir = is_ident("input")    ? PortDir::kInput
                            : is_ident("output") ? PortDir::kOutput
                                                 : PortDir::kInout;
        advance();
        while (ok_ && !is_punct(";")) {
          const std::string port = expect_ident("port name");
          dirs[port] = dir;
          if (is_punct(",")) advance();
        }
        expect_punct(";");
      } else if (is_ident("wire")) {
        advance();
        while (ok_ && !is_punct(";")) {
          mod.add_net(expect_ident("net name"));
          if (is_punct(",")) advance();
        }
        expect_punct(";");
      } else if (is_punct("(*")) {
        advance();
        while (ok_ && !is_punct("*)")) {
          const std::string key = expect_ident("attribute name");
          std::string value;
          if (is_punct("=")) {
            advance();
            if (cur_.kind == TokKind::kString ||
                cur_.kind == TokKind::kIdent) {
              value = cur_.text;
              advance();
            } else {
              fail("expected attribute value");
            }
          }
          if (key == "power_domain") pending_pd = value;
          if (key == "group") pending_group = value;
          if (is_punct(",")) advance();
        }
        expect_punct("*)");
      } else if (cur_.kind == TokKind::kIdent) {
        // Instance: <master> <name> ( .pin(net), ... );
        Instance inst;
        inst.master = expect_ident("master name");
        inst.name = expect_ident("instance name");
        inst.power_domain = pending_pd;
        inst.group = pending_group;
        pending_pd.clear();
        pending_group.clear();
        expect_punct("(");
        while (ok_ && !is_punct(")")) {
          expect_punct(".");
          const std::string pin = expect_ident("pin name");
          expect_punct("(");
          const std::string net = expect_ident("net name");
          expect_punct(")");
          inst.conn[pin] = net;
          if (is_punct(",")) advance();
        }
        expect_punct(")");
        expect_punct(";");
        if (ok_) mod.add_instance(std::move(inst));
      } else {
        fail("unexpected token in module body");
      }
    }
    if (!ok_) return;
    advance();  // 'endmodule'

    for (const std::string& port : header_ports) {
      auto it = dirs.find(port);
      mod.add_port(port, it != dirs.end() ? it->second : PortDir::kInout);
    }
    if (design_.top().empty()) design_.set_top(name);
    last_module_ = name;
  }

  Lexer lexer_;
  Design& design_;
  Token cur_;
  bool ok_ = true;
  std::string error_;
  int error_line_ = 0;
  std::string last_module_;
};

}  // namespace

ParseResult parse_verilog(const std::string& text, Design& design) {
  const bool had_top = !design.top().empty();
  Parser parser(text, design);
  ParseResult res = parser.run();
  if (res.ok && !had_top && !design.modules().empty()) {
    design.set_top(design.modules().back().name());
  }
  return res;
}

}  // namespace vcoadc::netlist
