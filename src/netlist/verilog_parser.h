// Parser for the structural Verilog subset emitted by verilog_writer (and
// by Cadence-style schematic-to-netlist exports like the paper's Table 1/2):
// module headers with port lists, input/output/inout declarations, wire
// declarations, attribute instances carrying power_domain/group, and named-
// port-connection instantiations. No behavioural constructs.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace vcoadc::netlist {

struct ParseResult {
  bool ok = false;
  std::string error;      ///< first error, with line number
  int line = 0;
};

/// Parses `text` into `design` (appending modules). The design's library is
/// used only at validate() time, not during parsing, so cells need not be
/// known to the parser. The last module in the file becomes the top unless
/// the design already has one.
ParseResult parse_verilog(const std::string& text, Design& design);

}  // namespace vcoadc::netlist
