// Hierarchical gate-level netlist data model.
//
// This is the object the whole Sec. 3 flow revolves around: the HDL
// generation phase produces it, the Verilog writer/parser serialize it, and
// the floorplanner/placer consume its flattened form.
//
// Power-domain metadata: every instance carries `power_domain` (the P/G net
// pair its supply pins connect to, e.g. "PD_VCTRLP") and `group` (for supply-
// less components such as resistors, e.g. "GRP_DAC_RES"). These drive the
// MSV-style region constraints of Sec. 3.3 / Fig. 12.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "netlist/cell_library.h"

namespace vcoadc::netlist {

struct Port {
  std::string name;
  PortDir dir = PortDir::kInout;
};

struct Instance {
  std::string name;
  std::string master;  ///< a library cell or a module in the same Design
  std::map<std::string, std::string> conn;  ///< pin -> net
  std::string power_domain;  ///< e.g. "PD_VDD"; empty = inherit from parent
  std::string group;         ///< e.g. "GRP_DAC_RES"; empty = none
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  void add_port(const std::string& name, PortDir dir);
  void add_net(const std::string& name);
  Instance& add_instance(Instance inst);

  bool has_port(const std::string& name) const;
  bool has_net(const std::string& name) const;

  const std::string& name() const { return name_; }
  const std::vector<Port>& ports() const { return ports_; }
  const std::vector<std::string>& nets() const { return nets_; }
  const std::vector<Instance>& instances() const { return instances_; }
  std::vector<Instance>& instances() { return instances_; }

 private:
  std::string name_;
  std::vector<Port> ports_;
  std::vector<std::string> nets_;  ///< internal wires (ports are also nets)
  std::vector<Instance> instances_;
};

/// A leaf cell instance after flattening, with hierarchical names.
struct FlatInstance {
  std::string path;          ///< e.g. "slice3/I7"
  const StdCell* cell = nullptr;
  std::map<std::string, std::string> conn;  ///< pin -> flat net name
  std::string power_domain;
  std::string group;
};

/// True if `net` is distributed as a supply (rail/mesh) rather than routed
/// or simulated as a signal: VDD/VSS/VREFP/VREFN/VBUF/VCTRL* leaf names,
/// also when hierarchical ("slice3/VCTRLP").
bool is_supply_net(const std::string& net);

struct DesignStats {
  int total_instances = 0;
  int digital_gates = 0;
  int resistors = 0;
  std::map<std::string, int> by_function;
  std::map<std::string, int> by_power_domain;
  double total_cell_area_m2 = 0;
  double total_leakage_w = 0;
};

/// A design: a set of modules over one cell library, with a designated top.
class Design {
 public:
  explicit Design(const CellLibrary* lib) : lib_(lib) {}

  Module& add_module(const std::string& name);
  Module* find_module(const std::string& name);
  const Module* find_module(const std::string& name) const;
  Module& at(const std::string& name);
  const Module& at(const std::string& name) const;

  void set_top(const std::string& name) { top_ = name; }
  const std::string& top() const { return top_; }

  /// Structural checks: every instance master resolves (cell or module),
  /// every connected pin exists on the master, every net referenced exists
  /// in the module, every input pin of every instance is connected.
  /// Returns a list of human-readable problems (empty = valid).
  std::vector<std::string> validate() const;

  /// Flattens the top module to leaf cells. Hierarchical local nets become
  /// "inst/net"; nets tied to parent ports take the parent net name.
  /// Instances inherit power_domain/group from their enclosing instance if
  /// they don't set their own.
  std::vector<FlatInstance> flatten() const;

  DesignStats stats() const;

  const CellLibrary& library() const { return *lib_; }
  const std::vector<Module>& modules() const { return modules_; }

 private:
  void flatten_into(const Module& mod, const std::string& path_prefix,
                    const std::map<std::string, std::string>& port_to_net,
                    const std::string& inherited_pd,
                    const std::string& inherited_group,
                    std::vector<FlatInstance>& out) const;

  const CellLibrary* lib_;
  std::vector<Module> modules_;
  std::string top_;
};

}  // namespace vcoadc::netlist
