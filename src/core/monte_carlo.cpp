#include "core/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/driver_impl.h"
#include "core/eval.h"
#include "core/flow.h"
#include "msim/batched_modulator.h"

namespace vcoadc::core {

double MonteCarloResult::yield(double spec_db) const {
  if (sndr_db.empty()) return 0.0;
  int pass = 0;
  for (double s : sndr_db) pass += (s >= spec_db);
  return static_cast<double>(pass) / static_cast<double>(sndr_db.size());
}

MonteCarloResult detail::monte_carlo_impl(const ExecContext& ctx,
                                          const AdcDesign& design,
                                          const MonteCarloOptions& opts) {
  MonteCarloResult result;
  if (opts.runs <= 0) return result;

  // Boundary checks before fanning out: a design that never built or
  // rejected simulation options would fail identically in every worker.
  if (!design.ok()) {
    emit_diag(ctx, util::Diagnostic{util::Severity::kError, "monte_carlo",
                                    "", "design was not built (invalid "
                                        "spec); no runs executed"});
    return result;
  }
  {
    const auto diags = validate_sim_options(opts.sim);
    emit_diags(ctx, diags);
    if (has_errors(diags)) return result;
  }
  Flow flow(ctx);

  // Lane-group partition for the batched SoA engine: draws [gW, gW+W) run
  // in SIMD lockstep as one task, the remainder draws run scalar, one task
  // each. batch_width 1 (or an unsupported width) degenerates to the
  // all-scalar partition; fault plans also force it so per-draw fault
  // triggers fire exactly as before.
  int width = opts.batch_width == 0 ? msim::BatchedModulator::preferred_width()
                                    : opts.batch_width;
  if (!msim::BatchedModulator::width_supported(width) ||
      ctx.faults != nullptr) {
    width = 1;
  }
  const std::size_t runs = static_cast<std::size_t>(opts.runs);
  const std::size_t w = static_cast<std::size_t>(width);
  const std::size_t n_groups = width > 1 ? runs / w : 0;
  const std::size_t grouped = n_groups * w;
  const std::size_t n_tasks = n_groups + (runs - grouped);

  BatchOptions bopts;
  bopts.threads = ctx.threads;
  bopts.seed0 = opts.seed0;
  BatchRunner runner(bopts);
  const std::vector<std::vector<double>> per_task = runner.map(
      n_tasks, [&](std::size_t task, std::uint64_t) -> std::vector<double> {
        // Each draw is a SimRun stage: distinct seed, distinct key, so the
        // first batch populates the cache and a repeat batch is all hits.
        // Group tasks issue their W keys through sim_run_batch (cold
        // entries simulate together in lockstep); remainder tasks are the
        // scalar stage. A refused run (only reachable under fault
        // injection here, since the options were validated above) reports
        // through the context and contributes an explicit NaN rather than
        // crashing the batch.
        if (task < n_groups) {
          std::vector<std::uint64_t> seeds(w);
          for (std::size_t k = 0; k < w; ++k) {
            seeds[k] = opts.seed0 + task * w + k;
          }
          const auto group = flow.sim_run_batch(design, opts.sim, seeds);
          std::vector<double> sndr(w);
          for (std::size_t k = 0; k < w; ++k) {
            sndr[k] = group[k] != nullptr
                          ? group[k]->sndr.sndr_db
                          : std::numeric_limits<double>::quiet_NaN();
          }
          return sndr;
        }
        SimulationOptions sim = opts.sim;
        sim.seed = opts.seed0 + grouped + (task - n_groups);
        const auto r = flow.sim_run(design, sim);
        return {r ? r->sndr.sndr_db
                  : std::numeric_limits<double>::quiet_NaN()};
      });
  result.sndr_db.reserve(runs);
  for (const auto& t : per_task) {
    result.sndr_db.insert(result.sndr_db.end(), t.begin(), t.end());
  }
  result.batch = runner.last_stats();
  // Stats stay per draw (the engine timed per task): a group's wall time
  // is amortized uniformly over its lanes.
  if (result.batch.task_wall_s.size() == n_tasks && n_tasks != runs) {
    std::vector<double> per_draw;
    per_draw.reserve(runs);
    for (std::size_t task = 0; task < n_tasks; ++task) {
      const std::size_t lanes = task < n_groups ? w : 1;
      for (std::size_t k = 0; k < lanes; ++k) {
        per_draw.push_back(result.batch.task_wall_s[task] /
                           static_cast<double>(lanes));
      }
    }
    result.batch.task_wall_s = std::move(per_draw);
  }

  const double n = static_cast<double>(result.sndr_db.size());
  double sum = 0, sum2 = 0;
  result.min_db = result.sndr_db.front();
  result.max_db = result.sndr_db.front();
  for (double s : result.sndr_db) {
    sum += s;
    sum2 += s * s;
    result.min_db = std::min(result.min_db, s);
    result.max_db = std::max(result.max_db, s);
  }
  result.mean_db = sum / n;
  result.stddev_db =
      std::sqrt(std::max(0.0, sum2 / n - result.mean_db * result.mean_db));
  return result;
}

MonteCarloResult monte_carlo_sndr(const AdcDesign& design,
                                  const MonteCarloOptions& opts) {
  // The caller's design shares the spec's cached stage artifacts, so the
  // evaluate() path re-derives an equivalent design for free.
  EvalRequest req;
  req.kind = EvalKind::kMonteCarlo;
  req.spec = design.spec();
  req.monte_carlo = opts;
  return std::move(evaluate(req, opts.exec).monte_carlo);
}

MonteCarloResult monte_carlo_sndr(const AdcSpec& spec,
                                  const MonteCarloOptions& opts) {
  EvalRequest req;
  req.kind = EvalKind::kMonteCarlo;
  req.spec = spec;
  req.monte_carlo = opts;
  return std::move(evaluate(req, opts.exec).monte_carlo);
}

std::vector<CornerResult> detail::corner_sweep_impl(const ExecContext& ctx,
                                                    const AdcDesign& design,
                                                    std::size_t n_samples,
                                                    int batch_width) {
  struct Corner {
    const char* name;
    PvtCorner pvt;
  };
  static constexpr Corner kCorners[] = {
      {"TT  1.00V  27C", {1.00, 1.00, 300.0}},
      {"FF  1.05V  -40C", {0.85, 1.05, 233.0}},
      {"SS  0.95V  125C", {1.20, 0.95, 398.0}},
      {"TT  0.90V  27C", {1.00, 0.90, 300.0}},
      {"TT  1.10V  27C", {1.00, 1.10, 300.0}},
      {"TT  1.00V  125C", {1.00, 1.00, 398.0}},
  };
  if (!design.ok()) {
    emit_diag(ctx, util::Diagnostic{util::Severity::kError, "corner_sweep",
                                    "", "design was not built (invalid "
                                        "spec); no corners evaluated"});
    return {};
  }
  Flow flow(ctx);

  // Width resolution mirrors monte_carlo_impl; fault plans force the
  // scalar partition so per-corner fault triggers fire exactly as before.
  int width = batch_width == 0 ? msim::BatchedModulator::preferred_width()
                               : batch_width;
  if (!msim::BatchedModulator::width_supported(width) ||
      ctx.faults != nullptr) {
    width = 1;
  }
  // Greedy partition of the corner table into lane groups: each chunk is
  // the largest supported width that fits both the chosen width and the
  // remaining corners (6 corners at width >= 4 become a 4-lane group plus
  // a 2-lane group; width 2 gives three pairs; width 1, six scalar
  // stages). Corners differ only in PVT — a run-value change the
  // heterogeneous batched engine takes directly.
  struct Chunk {
    std::size_t start;
    std::size_t len;
  };
  std::vector<Chunk> chunks;
  for (std::size_t at = 0; at < std::size(kCorners);) {
    const std::size_t left = std::size(kCorners) - at;
    std::size_t len = 1;
    for (int w : {8, 4, 2}) {
      const std::size_t sw = static_cast<std::size_t>(w);
      if (w <= width && sw <= left) {
        len = sw;
        break;
      }
    }
    chunks.push_back({at, len});
    at += len;
  }

  BatchOptions bopts;
  bopts.threads = ctx.threads;
  BatchRunner runner(bopts);
  const std::vector<std::vector<CornerResult>> per_chunk = runner.map(
      chunks.size(), [&](std::size_t ci, std::uint64_t) {
        const Chunk& chunk = chunks[ci];
        // Corners keep the spec's own seed (sim.seed = 0 means "no
        // override"): a corner changes the operating point, not the draw.
        std::vector<SimulationOptions> sims(chunk.len);
        for (std::size_t k = 0; k < chunk.len; ++k) {
          sims[k].n_samples = n_samples;
          sims[k].fin_target_hz = design.spec().bandwidth_hz / 5.0;
          sims[k].pvt = kCorners[chunk.start + k].pvt;
        }
        // Per-corner cache keys are the scalar sim_run() keys, so mixing
        // batched and scalar sweeps over one store never double-builds.
        const auto runs = chunk.len > 1
                              ? flow.sim_run_batch(design, sims)
                              : std::vector<std::shared_ptr<const RunResult>>{
                                    flow.sim_run(design, sims.front())};
        std::vector<CornerResult> crs(chunk.len);
        for (std::size_t k = 0; k < chunk.len; ++k) {
          const Corner& c = kCorners[chunk.start + k];
          crs[k].name = c.name;
          crs[k].pvt = c.pvt;
          if (runs[k] != nullptr) {
            crs[k].sndr_db = runs[k]->sndr.sndr_db;
            crs[k].power_w = runs[k]->power.total_w();
          } else {
            // Refused run (fault injection / bad per-corner options): the
            // flow already reported why; mark the corner unusable.
            crs[k].sndr_db = std::numeric_limits<double>::quiet_NaN();
            crs[k].power_w = std::numeric_limits<double>::quiet_NaN();
          }
        }
        return crs;
      });
  std::vector<CornerResult> out;
  out.reserve(std::size(kCorners));
  for (const auto& crs : per_chunk) {
    out.insert(out.end(), crs.begin(), crs.end());
  }
  return out;
}

namespace {

std::vector<CornerResult> sweep_via_eval(const AdcSpec& spec,
                                         const ExecContext& exec,
                                         std::size_t n_samples) {
  EvalRequest req;
  req.kind = EvalKind::kCornerSweep;
  req.spec = spec;
  req.corners.n_samples = n_samples;
  return std::move(evaluate(req, exec).corners);
}

}  // namespace

std::vector<CornerResult> corner_sweep(const AdcDesign& design,
                                       const ExecContext& exec,
                                       std::size_t n_samples) {
  return sweep_via_eval(design.spec(), exec, n_samples);
}

std::vector<CornerResult> corner_sweep(const AdcDesign& design,
                                       std::size_t n_samples) {
  return sweep_via_eval(design.spec(), design.exec(), n_samples);
}

std::vector<CornerResult> corner_sweep(const AdcSpec& spec,
                                       std::size_t n_samples) {
  return sweep_via_eval(spec, ExecContext{}, n_samples);
}

}  // namespace vcoadc::core
