#include "core/monte_carlo.h"

#include <algorithm>
#include <cmath>

namespace vcoadc::core {

double MonteCarloResult::yield(double spec_db) const {
  if (sndr_db.empty()) return 0.0;
  int pass = 0;
  for (double s : sndr_db) pass += (s >= spec_db);
  return static_cast<double>(pass) / static_cast<double>(sndr_db.size());
}

MonteCarloResult monte_carlo_sndr(const AdcSpec& spec,
                                  const MonteCarloOptions& opts) {
  MonteCarloResult result;
  result.sndr_db.reserve(static_cast<std::size_t>(opts.runs));
  for (int run = 0; run < opts.runs; ++run) {
    AdcSpec s = spec;
    s.seed = opts.seed0 + static_cast<std::uint64_t>(run);
    AdcDesign adc(s);
    SimulationOptions sim;
    sim.n_samples = opts.n_samples;
    sim.amplitude_dbfs = opts.amplitude_dbfs;
    sim.fin_target_hz = opts.fin_target_hz;
    const RunResult r = adc.simulate(sim);
    result.sndr_db.push_back(r.sndr.sndr_db);
  }
  const double n = static_cast<double>(result.sndr_db.size());
  double sum = 0, sum2 = 0;
  result.min_db = result.sndr_db.front();
  result.max_db = result.sndr_db.front();
  for (double s : result.sndr_db) {
    sum += s;
    sum2 += s * s;
    result.min_db = std::min(result.min_db, s);
    result.max_db = std::max(result.max_db, s);
  }
  result.mean_db = sum / n;
  result.stddev_db =
      std::sqrt(std::max(0.0, sum2 / n - result.mean_db * result.mean_db));
  return result;
}

std::vector<CornerResult> corner_sweep(const AdcSpec& spec,
                                       std::size_t n_samples) {
  struct Corner {
    const char* name;
    PvtCorner pvt;
  };
  const Corner corners[] = {
      {"TT  1.00V  27C", {1.00, 1.00, 300.0}},
      {"FF  1.05V  -40C", {0.85, 1.05, 233.0}},
      {"SS  0.95V  125C", {1.20, 0.95, 398.0}},
      {"TT  0.90V  27C", {1.00, 0.90, 300.0}},
      {"TT  1.10V  27C", {1.00, 1.10, 300.0}},
      {"TT  1.00V  125C", {1.00, 1.00, 398.0}},
  };
  std::vector<CornerResult> results;
  for (const Corner& c : corners) {
    AdcSpec s = spec;
    s.pvt = c.pvt;
    AdcDesign adc(s);
    SimulationOptions sim;
    sim.n_samples = n_samples;
    sim.fin_target_hz = spec.bandwidth_hz / 5.0;
    const RunResult r = adc.simulate(sim);
    CornerResult cr;
    cr.name = c.name;
    cr.pvt = c.pvt;
    cr.sndr_db = r.sndr.sndr_db;
    cr.power_w = r.power.total_w();
    results.push_back(cr);
  }
  return results;
}

}  // namespace vcoadc::core
