#include "core/monte_carlo.h"

#include <algorithm>
#include <cmath>

#include "core/flow.h"

namespace vcoadc::core {

double MonteCarloResult::yield(double spec_db) const {
  if (sndr_db.empty()) return 0.0;
  int pass = 0;
  for (double s : sndr_db) pass += (s >= spec_db);
  return static_cast<double>(pass) / static_cast<double>(sndr_db.size());
}

MonteCarloResult monte_carlo_sndr(const AdcDesign& design,
                                  const MonteCarloOptions& opts) {
  MonteCarloResult result;
  if (opts.runs <= 0) return result;

  ExecContext ctx = opts.exec;
  ctx.threads = ctx.resolve_threads(opts.threads);
  Flow flow(ctx);
  BatchOptions bopts;
  bopts.threads = ctx.threads;
  bopts.seed0 = opts.seed0;
  BatchRunner runner(bopts);
  result.sndr_db = runner.map(
      static_cast<std::size_t>(opts.runs),
      [&](std::size_t, std::uint64_t seed) {
        // Each draw is a SimRun stage: distinct seed, distinct key, so the
        // first batch populates the cache and a repeat batch is all hits.
        SimulationOptions sim = opts.sim;
        sim.seed = seed;
        return flow.sim_run(design, sim)->sndr.sndr_db;
      });
  result.batch = runner.last_stats();

  const double n = static_cast<double>(result.sndr_db.size());
  double sum = 0, sum2 = 0;
  result.min_db = result.sndr_db.front();
  result.max_db = result.sndr_db.front();
  for (double s : result.sndr_db) {
    sum += s;
    sum2 += s * s;
    result.min_db = std::min(result.min_db, s);
    result.max_db = std::max(result.max_db, s);
  }
  result.mean_db = sum / n;
  result.stddev_db =
      std::sqrt(std::max(0.0, sum2 / n - result.mean_db * result.mean_db));
  return result;
}

MonteCarloResult monte_carlo_sndr(const AdcSpec& spec,
                                  const MonteCarloOptions& opts) {
  return monte_carlo_sndr(AdcDesign(spec), opts);
}

std::vector<CornerResult> corner_sweep(const AdcDesign& design,
                                       const ExecContext& exec,
                                       std::size_t n_samples) {
  struct Corner {
    const char* name;
    PvtCorner pvt;
  };
  static constexpr Corner kCorners[] = {
      {"TT  1.00V  27C", {1.00, 1.00, 300.0}},
      {"FF  1.05V  -40C", {0.85, 1.05, 233.0}},
      {"SS  0.95V  125C", {1.20, 0.95, 398.0}},
      {"TT  0.90V  27C", {1.00, 0.90, 300.0}},
      {"TT  1.10V  27C", {1.00, 1.10, 300.0}},
      {"TT  1.00V  125C", {1.00, 1.00, 398.0}},
  };
  Flow flow(exec);
  BatchOptions bopts;
  bopts.threads = exec.threads;
  BatchRunner runner(bopts);
  return runner.map(
      std::size(kCorners), [&](std::size_t i, std::uint64_t) {
        // Corners keep the spec's own seed (sim.seed = 0 means "no
        // override"): a corner changes the operating point, not the draw.
        const Corner& c = kCorners[i];
        SimulationOptions sim;
        sim.n_samples = n_samples;
        sim.fin_target_hz = design.spec().bandwidth_hz / 5.0;
        sim.pvt = c.pvt;
        const auto r = flow.sim_run(design, sim);
        CornerResult cr;
        cr.name = c.name;
        cr.pvt = c.pvt;
        cr.sndr_db = r->sndr.sndr_db;
        cr.power_w = r->power.total_w();
        return cr;
      });
}

std::vector<CornerResult> corner_sweep(const AdcDesign& design,
                                       std::size_t n_samples, int threads) {
  ExecContext ctx = design.exec();
  ctx.threads = ctx.resolve_threads(threads);
  return corner_sweep(design, ctx, n_samples);
}

std::vector<CornerResult> corner_sweep(const AdcSpec& spec,
                                       std::size_t n_samples, int threads) {
  return corner_sweep(AdcDesign(spec), n_samples, threads);
}

}  // namespace vcoadc::core
