// Canonical little-endian byte serialization for persistent artifacts.
//
// The artifact store keeps every stage output on disk in the same
// canonical form the cache keys are built from (field order fixed by the
// codec, numbers as raw little-endian bit patterns): deserializing a
// record therefore reproduces the exact bytes a fresh build would have
// produced, which is what makes a store-warm run bit-identical to a cold
// one. Doubles round-trip by bit pattern — no text formatting, no
// -0.0/NaN normalization (unlike KeyHasher, which normalizes -0.0 because
// keys must treat equal values as equal; payloads must preserve bits).
//
// Reader is fail-safe, never throwing and never reading past the end: any
// short or malformed read latches ok() to false and yields zeros, so a
// truncated or corrupted record decodes to "reject and rebuild", not UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace vcoadc::core::serde {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// Raw bit pattern — exact round trip, including NaN payloads and -0.0.
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed bytes.
  void str(std::string_view s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void size(std::size_t n) { u64(n); }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t n) : p_(data), n_(n) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  /// False once any read ran past the end (or a bounded read overflowed);
  /// every subsequent read yields zero. Check once after decoding.
  bool ok() const { return ok_; }
  std::size_t remaining() const { return n_ - pos_; }
  bool at_end() const { return pos_ == n_; }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return p_[pos_ - 1];
  }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p_[pos_ - 4 + i]) << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p_[pos_ - 8 + i]) << (8 * i);
    }
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint64_t len = u64();
    if (!ok_ || len > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p_ + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  /// Element-count read, bounded by the remaining payload so a corrupted
  /// count can never drive a multi-gigabyte reserve: every element costs
  /// at least one byte, so a valid count is <= remaining().
  std::size_t size() {
    const std::uint64_t n = u64();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return 0;
    }
    return static_cast<std::size_t>(n);
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace vcoadc::core::serde
