// ArtifactStore: the disk-backed second tier under the in-process
// ArtifactCache.
//
// The cache makes warm re-runs inside one process ~free; the store makes
// them free across processes. Every record is addressed by the same
// 128-bit content-hash key the cache uses, serialized in the canonical
// field-tag/little-endian form (see serde.h) and framed with a header that
// folds in kKeyFormatVersion plus a per-artifact-type tag and format
// version, so a record can never be deserialized as the wrong type or
// against stale semantics.
//
// Durability policy:
//   - writes are write-then-rename: a record is either fully present or
//     absent, never torn, even with concurrent writers (last one wins,
//     and all writers of one key write identical bytes by construction);
//   - loads verify a whole-record checksum before any field is trusted;
//   - every failure mode (absent, truncated, corrupted, wrong version,
//     wrong type tag) degrades to a miss — the stage rebuilds — with a
//     kWarning Diagnostic for the non-absent cases; the store never
//     throws across its boundary and never crashes the flow;
//   - lifecycle: gc(max_bytes) bounds the directory by LRU-over-mtime
//     eviction (an unlinked record is never torn for a reader that
//     already opened it), sweep_tmp() reclaims the *.tmp.* orphans of
//     killed writers (age-gated; runs at open and inside gc), and shard
//     directories left empty are compacted away.
//
// On-disk layout: <dir>/<first-2-hex-of-key>/<32-hex-key>.art
// Record framing (all little-endian, via serde::Writer):
//   u32  magic 'VCAD'             u32  container version (kContainerVersion)
//   u64  kKeyFormatVersion        u64  key.lo       u64 key.hi
//   str  type_tag                 u32  type_version
//   u64  payload size             ...  payload bytes
//   u64  FNV-1a-64 checksum over every preceding record byte
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/artifact_cache.h"
#include "util/diag.h"

namespace vcoadc::core {

struct ArtifactStoreStats {
  std::uint64_t hits = 0;    ///< loads served from disk
  std::uint64_t misses = 0;  ///< loads with no usable record
  // Miss breakdown (misses == absent + corrupt + version_skew):
  std::uint64_t absent = 0;        ///< no record on disk (the normal miss)
  std::uint64_t corrupt = 0;       ///< checksum/framing/decode failure
  std::uint64_t version_skew = 0;  ///< container/key-format/type version
  std::uint64_t writes = 0;
  std::uint64_t write_failures = 0;
  /// Bytes of record data actually *served*: a hit later demoted by
  /// note_decode_failure (the codec rejected the payload) has its record
  /// bytes subtracted again, so this never over-reports delivered data.
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  // Lifecycle counters (see gc() / sweep_tmp()):
  std::uint64_t evictions = 0;           ///< records removed by gc
  std::uint64_t gc_bytes_reclaimed = 0;  ///< on-disk bytes those freed
  std::uint64_t tmp_swept = 0;  ///< stale *.tmp.* orphans removed
  double hit_rate() const {
    const double n = static_cast<double>(hits + misses);
    return n > 0 ? static_cast<double>(hits) / n : 0.0;
  }
};

/// Key-addressed persistent byte store. Thread-safe; cheap to construct
/// (one mkdir). Typed encode/decode lives in artifact_serde.h — the store
/// itself only frames, checksums and atomically persists raw payloads,
/// which keeps it self-contained enough for the sanitizer test variants.
class ArtifactStore {
 public:
  /// Opens (creating directories as needed) the store rooted at `dir`.
  /// A root that cannot be created leaves the store in a degraded state:
  /// every load is an absent-miss and every save a write_failure.
  explicit ArtifactStore(std::string dir);

  const std::string& dir() const { return dir_; }
  bool ok() const { return ok_; }

  /// Persists `payload` under (key, type_tag, type_version) atomically.
  /// Returns false (and emits a kWarning through `diag` when given) on
  /// any I/O failure; the previous record, if any, stays intact.
  bool save(const CacheKey& key, std::string_view type_tag,
            std::uint32_t type_version,
            const std::vector<std::uint8_t>& payload,
            util::DiagSink* diag = nullptr);

  /// Loads the payload for (key, type_tag, type_version). Returns false on
  /// a miss: absent records silently, corrupt/version-skewed/mistagged
  /// records with a kWarning through `diag`. Never throws.
  bool load(const CacheKey& key, std::string_view type_tag,
            std::uint32_t type_version, std::vector<std::uint8_t>* payload,
            util::DiagSink* diag = nullptr);

  /// Demotes an already-counted hit to a corrupt-miss: called by the flow
  /// when a record's frame verified but its payload failed to decode (the
  /// codec rejected it), so the stats still satisfy "hits == stage builds
  /// actually avoided".
  void note_decode_failure(const CacheKey& key, std::string_view type_tag,
                           util::DiagSink* diag = nullptr);

  /// Final path of the record for `key` (exposed for tests that corrupt
  /// or inspect records directly).
  std::string path_for(const CacheKey& key) const;

  /// Age threshold for sweep_tmp(): a *.tmp.* file older than this is an
  /// orphan of a killed writer (live writers hold a tmp for milliseconds,
  /// the rename window), younger ones are presumed in flight and left
  /// alone.
  static constexpr double kDefaultTmpMaxAgeS = 900.0;

  struct GcResult {
    std::uint64_t bytes_before = 0;  ///< record bytes found by the scan
    std::uint64_t bytes_after = 0;   ///< record bytes kept (<= max_bytes)
    std::uint64_t evicted = 0;       ///< records unlinked
    std::uint64_t tmp_swept = 0;     ///< stale tmp orphans unlinked
  };

  /// Size-bounded LRU garbage collection over record mtimes: sweeps stale
  /// tmp orphans, then unlinks oldest-modified records until the resident
  /// total is <= max_bytes, and finally removes shard directories left
  /// empty (compaction). A record is never torn mid-read: loads read from
  /// one open handle, which POSIX keeps valid across an unlink, and a
  /// load that opens after the unlink sees a clean absent-miss (the stage
  /// rebuilds). Thread-safe; never throws.
  GcResult gc(std::uint64_t max_bytes, util::DiagSink* diag = nullptr);

  /// Removes *.tmp.* files older than `max_age_s` — the leak left by
  /// killed/crashed writers (save() is write-then-rename; a writer that
  /// dies between the two strands its tmp forever). Runs at store open
  /// and inside gc(). Age-gating keeps live concurrent writers' fresh
  /// tmp files untouched. Returns the number swept.
  std::uint64_t sweep_tmp(double max_age_s = kDefaultTmpMaxAgeS,
                          util::DiagSink* diag = nullptr);

  ArtifactStoreStats stats() const;

 private:
  void warn(util::DiagSink* diag, const std::string& item,
            std::string reason) const;

  std::string dir_;
  bool ok_ = false;
  mutable std::mutex mutex_;  ///< guards stats_, tmp_counter_, hit_bytes_
  ArtifactStoreStats stats_;
  std::uint64_t tmp_counter_ = 0;
  /// Record size of the most recent hit per key, so note_decode_failure
  /// can take the rejected record's bytes back out of bytes_read.
  std::map<CacheKey, std::uint64_t> hit_bytes_;
};

}  // namespace vcoadc::core
