// Transport half of the evaluation service: the stdio and socket loops
// and the graceful-shutdown signal plumbing. The eval-request handler
// lives in serve_handler.cpp so this file stays free of the evaluation
// stack — the connection-handling tests (including the TSan variant)
// compile it standalone against util/net and a stub handler.
#include "core/serve_loop.h"

#include <cerrno>
#include <cstring>
#include <list>
#include <memory>
#include <thread>

#if !defined(_WIN32)
#include <csignal>
#endif

namespace vcoadc::core {

namespace {

bool is_blank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

ServeResult serve_stdio(std::FILE* in, std::FILE* out,
                        const ServeHandler& handler) {
  ServeResult res;
  std::string line;
  char chunk[4096];
  bool eof = false;
  while (!eof) {
    line.clear();
    // Assemble one line (fgets-based so the loop works over any FILE*,
    // pipes included, and arbitrarily long requests).
    while (true) {
      if (std::fgets(chunk, sizeof chunk, in) == nullptr) {
        eof = true;
        break;
      }
      line += chunk;
      if (!line.empty() && line.back() == '\n') {
        line.pop_back();
        break;
      }
    }
    if (line.empty() || is_blank(line)) continue;
    ++res.stats.requests;
    const std::string resp = handler(line);
    // A client that closed the pipe must stop the service cleanly, not
    // kill it (SIGPIPE is ignored) and not let it keep evaluating into
    // a void: check every write AND the flush.
    if (std::fwrite(resp.data(), 1, resp.size(), out) != resp.size() ||
        std::fputc('\n', out) == EOF || std::fflush(out) != 0) {
      ++res.stats.write_failures;
      res.clean = false;
      res.error = std::string("response write failed: ") +
                  std::strerror(errno);
      return res;
    }
    ++res.stats.responses_written;
  }
  return res;
}

ServeResult serve_socket(util::net::Listener& listener,
                         const ServeHandler& handler,
                         const SocketServeOptions& opts) {
  using util::net::Connection;
  using util::net::Listener;

  ServeResult res;
  if (!listener.valid()) {
    res.clean = false;
    res.error = "listener is not open";
    return res;
  }

  struct ConnWorker {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
    std::shared_ptr<ServeStats> stats;  ///< this connection's counters
  };
  std::list<ConnWorker> workers;

  auto reap = [&](bool join_all) {
    for (auto it = workers.begin(); it != workers.end();) {
      if (join_all || it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        res.stats.requests += it->stats->requests;
        res.stats.responses_written += it->stats->responses_written;
        res.stats.write_failures += it->stats->write_failures;
        res.stats.connections_dropped += it->stats->connections_dropped;
        it = workers.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (true) {
    Connection conn;
    const Listener::AcceptStatus st =
        listener.accept(&conn, opts.stop, opts.poll_ms);
    if (st == Listener::AcceptStatus::kStop) break;
    if (st == Listener::AcceptStatus::kError) {
      res.clean = false;
      res.error = "accept failed";
      break;
    }
    ++res.stats.connections_accepted;
    ConnWorker w;
    w.done = std::make_shared<std::atomic<bool>>(false);
    w.stats = std::make_shared<ServeStats>();
    w.thread = std::thread([conn = std::move(conn), &handler, &opts,
                            done = w.done, stats = w.stats]() mutable {
      std::string line;
      while (true) {
        const Connection::ReadStatus rs =
            conn.read_line(&line, opts.stop, opts.poll_ms);
        // kEof: client finished (a trailing partial line — a mid-line
        // disconnect — is dropped, never dispatched). kStop: shutdown
        // between requests; anything already read was answered below.
        if (rs != Connection::ReadStatus::kLine) break;
        if (is_blank(line)) continue;
        ++stats->requests;
        const std::string resp = handler(line);
        // The response for an accepted request is always written, stop
        // flag or not — that is the drain guarantee. A write failure
        // means this client is gone: drop only this connection.
        if (!conn.write_line(resp)) {
          ++stats->write_failures;
          ++stats->connections_dropped;
          break;
        }
        ++stats->responses_written;
      }
      conn.close();
      done->store(true, std::memory_order_release);
    });
    workers.push_back(std::move(w));
    reap(false);  // fold finished connections as we go, bounding the list
  }
  listener.close();  // stop accepting; unlinks the unix socket path
  reap(true);        // drain: every in-flight request finishes + responds
  return res;
}

#if !defined(_WIN32)

namespace {
std::atomic<bool> g_shutdown_flag{false};
extern "C" void vcoadc_serve_on_signal(int) {
  g_shutdown_flag.store(true, std::memory_order_relaxed);
}
}  // namespace

const std::atomic<bool>* install_shutdown_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = &vcoadc_serve_on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: a blocked poll returns EINTR promptly
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  return &g_shutdown_flag;
}

#else

namespace {
std::atomic<bool> g_shutdown_flag{false};
}

const std::atomic<bool>* install_shutdown_signal_handlers() {
  return &g_shutdown_flag;
}

#endif

}  // namespace vcoadc::core
