// The explicit stage graph of the end-to-end pipeline (the paper's Fig. 9
// flow, made a first-class object):
//
//   TechLibrary --> Netlist --> Floorplan --> Placement --> Route
//         \                                                  |
//          \--------------------> SimRun <-- (wire load) ----/
//                                    \--> Report
//
// Each stage's inputs are content-hashed (see artifact_cache.h) into a key
// for the shared ArtifactCache, so a Monte-Carlo batch, a corner sweep and
// a datasheet run over the same spec build the library/netlist/layout
// exactly once; a cached artifact *is* the object a fresh build produces,
// so cached re-runs are bit-identical to fresh ones. Stage boundaries emit
// util::Trace spans (stage name, wall time, cache hit/miss, artifact
// size) when the ExecContext carries a trace sink.
//
// Key policy (what invalidates what):
//   TechLibrary  <- node_nm
//   Netlist      <- TechLibrary + num_slices + dac_fragments
//   Floorplan    <- Netlist + target_utilization + aspect_ratio
//   Placement    <- Floorplan + placer + respect_power_domains +
//                   barycenter/refine passes + seed
//   Route        <- Placement + detailed_route
//   SimRun       <- full spec (with the per-run seed/pvt overrides
//                   canonicalized in) + n_samples + amplitude + fin +
//                   comparator + dac + record_bits + wire_cap_f
//   HdlEmit      <- Netlist (the emitted text is a pure function of the
//                   generated design; the stage re-parses its own emission
//                   and proves structural equivalence before caching)
//   GateSim      <- HdlEmit + SimRun (the behavioral reference, with
//                   record_bits canonicalized on) + ring tolerance + top
//   Report       <- assembled from cached Route + SimRun; not memoized
//                   itself (assembly is a clone + a struct fill).
// ExecContext fields (threads, trace, cache) are never hashed: they must
// not change result bytes.
#pragma once

#include <memory>

#include "core/adc.h"
#include "core/adc_spec.h"
#include "core/artifact_cache.h"
#include "core/exec_context.h"
#include "core/migration.h"
#include "core/sim_backend.h"
#include "synth/synthesis_flow.h"

namespace vcoadc::core {

/// The typed stages of the flow graph.
enum class Stage {
  kTechLibrary,
  kNetlist,
  kFloorplan,
  kPlacement,
  kRoute,
  kSimRun,
  kHdlEmit,
  kGateSim,
  kReport,
};

const char* stage_name(Stage s);

// --- Stage-boundary validators -------------------------------------------
// Every public stage of the Flow validates its inputs with these before it
// builds (or serves) an artifact; a failed validation produces structured
// diagnostics through the ExecContext and a null artifact — never an
// abort. They are public so drivers and tests can pre-check inputs.

/// Spec ranges, node validity, ring realizability, numeric sanity.
std::vector<util::Diagnostic> validate_spec(const AdcSpec& spec);

/// Capture-length (power of two, bounded), amplitude/frequency/wire-cap
/// numeric sanity.
std::vector<util::Diagnostic> validate_sim_options(
    const SimulationOptions& opts);

/// Structural netlist checks: Design::validate() (unknown masters, missing
/// pins/nets, unconnected inputs) plus duplicate instance names, empty
/// top/module detection and dangling-net warnings.
std::vector<util::Diagnostic> validate_netlist(const netlist::Design& design);

/// Floorplan/placement knobs: utilization in (0,1), aspect ratio, passes.
std::vector<util::Diagnostic> validate_synthesis_options(
    const synth::SynthesisOptions& opts);

/// True if any entry is Severity::kError.
bool has_errors(const std::vector<util::Diagnostic>& diags);

// Content-hash key builders, exposed for the determinism tests: the same
// spec + options always produce the same key (across threads, processes
// and machines of equal endianness); any result-affecting field change
// produces a different key.
CacheKey tech_library_key(const AdcSpec& spec);
CacheKey netlist_key(const AdcSpec& spec);
CacheKey floorplan_key(const AdcSpec& spec,
                       const synth::SynthesisOptions& opts);
CacheKey placement_key(const AdcSpec& spec,
                       const synth::SynthesisOptions& opts);
CacheKey synthesis_key(const AdcSpec& spec,
                       const synth::SynthesisOptions& opts);
CacheKey sim_run_key(const AdcSpec& spec, const SimulationOptions& opts);
CacheKey hdl_emit_key(const AdcSpec& spec);
/// Canonicalizes `opts` the way Flow::gate_sim does (record_bits forced on
/// in the embedded reference-run options) before hashing.
CacheKey gate_sim_key(const AdcSpec& spec, const GateSimOptions& opts);

/// Netlist-stage artifact: the cell library plus the gate-level design
/// referencing it (the design holds a raw pointer into the library, so the
/// two share lifetime here).
struct DesignBundle {
  std::shared_ptr<const netlist::CellLibrary> lib;
  std::shared_ptr<const netlist::Design> design;
};

/// Result of Flow::migrate: the migrated design plus the target library it
/// references (cache-shared; keep it alive as long as the design).
struct MigratedDesign {
  std::shared_ptr<const netlist::CellLibrary> target_lib;
  MigrationResult result;
};

/// Handle on the stage graph: runs stages on demand, memoizing through the
/// ExecContext's cache and tracing through its sink. Cheap to construct;
/// copies the context.
///
/// Failure policy (DESIGN.md §3f): every stage validates its inputs at the
/// boundary. A stage given malformed input reports structured diagnostics
/// through the context (ExecContext::diag, stderr when unset) and returns
/// a null artifact; downstream stages propagate the null. Failed builds
/// are never cached. When the context carries a util::FaultPlan, stages
/// armed in it corrupt their input before validation (bypassing the
/// cache), which is how the fault-injection harness proves the validators
/// actually guard every boundary.
class Flow {
 public:
  Flow() = default;
  explicit Flow(const ExecContext& ctx) : ctx_(ctx) {}

  const ExecContext& ctx() const { return ctx_; }

  /// TechLibrary stage: standard cells + resistor cells for spec's node.
  std::shared_ptr<const netlist::CellLibrary> tech_library(
      const AdcSpec& spec);

  /// Netlist stage: the generated gate-level ADC over the tech library.
  DesignBundle netlist(const AdcSpec& spec);

  /// Floorplan stage: flattened leaves + regioned die.
  std::shared_ptr<const synth::FloorplanStageResult> floorplan(
      const AdcSpec& spec, const synth::SynthesisOptions& opts = {});

  /// Placement stage.
  std::shared_ptr<const synth::Placement> placement(
      const AdcSpec& spec, const synth::SynthesisOptions& opts = {});

  /// Route stage: routing estimate + detailed route + DRC, the full
  /// SynthesisResult.
  std::shared_ptr<const synth::SynthesisResult> synthesis(
      const AdcSpec& spec, const synth::SynthesisOptions& opts = {});

  /// SimRun stage for a spec (pulls the Netlist stage first).
  std::shared_ptr<const RunResult> sim_run(const AdcSpec& spec,
                                           const SimulationOptions& opts = {});

  /// SimRun stage over an already-built design (the batch hot path: the
  /// caller's design shares the cached netlist artifact).
  std::shared_ptr<const RunResult> sim_run(const AdcDesign& design,
                                           const SimulationOptions& opts = {});

  /// One SimRun stage per seed (seeds[k] becomes opts.seed for entry k),
  /// cold entries built together through the batched SoA engine. Each entry
  /// keeps its own cache key — the same key sim_run() would use — so warm
  /// entries are served from the cache/store without constructing a
  /// modulator, and a batched build stores byte-identical artifacts (the
  /// lanes are bit-identical to the scalar path). The group is built
  /// lazily on the first cold entry; an all-warm group never simulates.
  /// Under an armed fault plan every entry takes the scalar sim_run() path
  /// so per-stage fault semantics are unchanged.
  std::vector<std::shared_ptr<const RunResult>> sim_run_batch(
      const AdcDesign& design, const SimulationOptions& opts,
      const std::vector<std::uint64_t>& seeds);

  /// Heterogeneous variant: entry k is the SimRun stage for opts_list[k]
  /// (lanes may differ in seed, PVT corner, amplitude, wire load — the
  /// corner-sweep and amplitude-sweep hot path). Cache keys are exactly
  /// the per-entry sim_run() keys; cold entries are built together through
  /// AdcDesign::simulate_batch(opts_list), which falls back to the scalar
  /// path for shapes the batched engine cannot take. Under an armed fault
  /// plan every entry routes through scalar sim_run().
  std::vector<std::shared_ptr<const RunResult>> sim_run_batch(
      const AdcDesign& design,
      const std::vector<SimulationOptions>& opts_list);

  /// HdlEmit stage: renders the Netlist artifact to structural Verilog,
  /// re-parses the emission and proves structural equivalence against the
  /// generated design — the emitted *text* becomes the artifact of record
  /// (the store codec reconstructs the parsed view from the text). Null
  /// with diagnostics when the round trip is not bit-equal.
  std::shared_ptr<const HdlEmitResult> hdl_emit(const AdcSpec& spec);

  /// GateSim stage: event-driven sign-off of the emitted HDL (pulls
  /// HdlEmit and the behavioral SimRun reference first). Runs the Table-1
  /// comparator truth table, the ring-period check and the slice replay,
  /// and cross-checks the decoded + CIC-decimated stream bit-for-bit
  /// against the behavioral path. Null with diagnostics on any failed
  /// check; failed sign-offs are never cached.
  std::shared_ptr<const GateSimResult> gate_sim(
      const AdcSpec& spec, const GateSimOptions& opts = {});

  /// The backend seam: the decoded + decimated output stream for a spec,
  /// produced by the selected engine. Both backends feed the same
  /// DigitalBackend, and gate_sim proves bit-identity before handing its
  /// stream out, so callers see one contract regardless of backend. Empty
  /// on failure (diagnostics through the context).
  std::vector<double> decoded_stream(
      const AdcSpec& spec, const SimulationOptions& sim = {},
      SimBackend backend = SimBackend::kBehavioral);

  /// Report stage: synthesis + simulation with the layout's wire load
  /// folded into the power model. Assembled from the cached Route and
  /// SimRun artifacts.
  NodeReport report(const AdcSpec& spec, const SimulationOptions& sim = {},
                    const synth::SynthesisOptions& synth_opts = {});

  /// Migrates the spec's netlist onto another node's (cached) library.
  MigratedDesign migrate(const AdcSpec& src_spec, double target_node_nm);

 private:
  /// Applies ExecContext knobs (route threads, trace) to synthesis options
  /// without touching key-relevant fields.
  synth::SynthesisOptions exec_opts(const synth::SynthesisOptions& opts) const;

  ExecContext ctx_;
};

}  // namespace vcoadc::core
