// BatchRunner: the parallel evaluation engine for independent design
// evaluations (Monte-Carlo mismatch draws, PVT corners, design-space
// sweeps).
//
// The determinism contract that makes parallelism free of surprises:
//   * task i always receives seed0 + i, regardless of worker count or
//     scheduling order;
//   * results are returned in a vector indexed by task id, so the output
//     is *bit-identical* to a serial run — `threads = N` and `threads = 1`
//     produce the same bytes, only faster.
// This works because every stochastic element in the simulator draws from
// an explicitly seeded util::Rng (no shared global generator), so task
// order cannot leak into task results.
//
// Instrumentation rides along for free: per-task wall time, the queue
// high-water mark and summed busy time are collected into BatchStats so
// benchmark JSON can track speedup and worker utilization over time.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/adc.h"
#include "core/exec_context.h"
#include "util/thread_pool.h"

namespace vcoadc::core {

/// Shared run-options bundle for the batch APIs.
struct BatchOptions {
  /// Worker threads; 0 = one per hardware thread. 1 runs inline on the
  /// calling thread (no pool overhead) — the serial reference.
  int threads = 0;
  /// Task i evaluates with seed0 + i (the deterministic seeding contract).
  std::uint64_t seed0 = 1000;
};

/// Instrumentation for one batch (one map() / simulate_batch() call).
struct BatchStats {
  int threads = 0;                 ///< resolved worker count
  double wall_s = 0;               ///< batch wall-clock time
  double busy_s = 0;               ///< per-task wall time, summed
  double utilization = 0;          ///< busy / (threads * wall), in [0, 1]
  std::size_t max_queue_depth = 0; ///< pending-task high-water mark
  std::vector<double> task_wall_s; ///< per-task wall time, by task index

  /// Effective parallelism: how many workers were doing useful work on
  /// average (busy / wall). Equals the speedup over a serial run when
  /// per-task cost is scheduling-independent.
  double effective_parallelism() const {
    return wall_s > 0 ? busy_s / wall_s : 0.0;
  }
};

class BatchRunner {
 public:
  explicit BatchRunner(const BatchOptions& opts = {});
  /// Convenience: BatchRunner(n) == BatchRunner({.threads = n}).
  explicit BatchRunner(int threads);
  /// Engine over an ExecContext: worker count from ctx.threads, seed0 from
  /// ctx.seed. The stage-graph drivers construct their runners this way.
  explicit BatchRunner(const ExecContext& ctx);

  const BatchOptions& options() const { return opts_; }
  /// Resolved worker count (hardware concurrency when opts.threads == 0).
  int threads() const { return threads_; }
  /// Stats of the most recent map()/simulate_batch() call.
  const BatchStats& last_stats() const { return stats_; }

  /// Evaluates fn(i, seed0 + i) for i in [0, n) across the pool and returns
  /// the results ordered by i. fn must be safe to call concurrently (the
  /// library's simulate() paths are: they share only immutable state). An
  /// exception in any task propagates after all tasks finish.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t, std::uint64_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t, std::uint64_t>;
    std::vector<R> results(n);
    stats_ = BatchStats{};
    stats_.threads = threads_;
    stats_.task_wall_s.assign(n, 0.0);
    // A fresh pool per batch keeps the stats per-batch and the thread
    // spawn cost (~µs) is noise next to a single simulate() call (~ms-s).
    // threads_ == 1 uses the inline fallback: no pool, no synchronization.
    util::ThreadPool pool(threads_ <= 1 ? 0 : static_cast<std::size_t>(threads_));
    const auto t0 = std::chrono::steady_clock::now();
    util::parallel_for_each(pool, n, [&](std::size_t i) {
      const auto s = std::chrono::steady_clock::now();
      results[i] = fn(i, opts_.seed0 + static_cast<std::uint64_t>(i));
      stats_.task_wall_s[i] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - s)
              .count();
    });
    stats_.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const util::ThreadPoolStats ps = pool.stats();
    stats_.busy_s = ps.busy_seconds;
    stats_.max_queue_depth = ps.max_queue_depth;
    stats_.utilization =
        stats_.wall_s > 0
            ? stats_.busy_s / (stats_.wall_s * static_cast<double>(threads_))
            : 0.0;
    return results;
  }

  /// Simulates `design` n times with `sim` as the base options and the
  /// mismatch seed of run i overridden to seed0 + i. The design's netlist
  /// and cell library are built once by the caller and shared read-only —
  /// this is the hot path the engine exists for.
  std::vector<RunResult> simulate_batch(const AdcDesign& design,
                                        const SimulationOptions& sim,
                                        std::size_t n);

  static int resolve_threads(int threads);

 private:
  BatchOptions opts_;
  int threads_ = 1;
  BatchStats stats_;
};

}  // namespace vcoadc::core
