#include "core/adc_spec.h"

#include <cmath>

#include "util/strings.h"

namespace vcoadc::core {

AdcSpec AdcSpec::paper_40nm() {
  AdcSpec spec;
  spec.node_nm = 40;
  // The paper leaves N unstated ("selected according to the effective
  // quantizer resolution requirement"); 16 slices is what lands the 69.5 dB
  // SNDR of Table 3 at OSR 75 with first-order shaping, with overload
  // margin down to ~-1.2 dBFS (stable input of an N-level first-order loop
  // is (1 - 2/N) of full scale).
  spec.num_slices = 16;
  spec.fs_hz = 750e6;
  spec.bandwidth_hz = 5e6;
  // Four 11k fragments in series per DAC keep the resistor static power at
  // the paper's analog budget (Fig. 15a); Kvco absorbs the loop gain.
  spec.dac_fragments = 4;
  return spec;
}

AdcSpec AdcSpec::paper_180nm() {
  AdcSpec spec;
  spec.node_nm = 180;
  spec.num_slices = 16;
  spec.fs_hz = 250e6;
  spec.bandwidth_hz = 1.4e6;
  // The higher 180 nm reference voltage would overspend analog power
  // through a 44k chain; eight fragments keep the DAC current comparable
  // to the 40 nm design point.
  spec.dac_fragments = 8;
  return spec;
}

std::vector<std::string> AdcSpec::validate() const {
  std::vector<std::string> problems;
  // Numeric sanity first: every later check divides or compares by these,
  // and NaN slips through ordered comparisons.
  const bool numerics_ok =
      std::isfinite(node_nm) && std::isfinite(fs_hz) &&
      std::isfinite(bandwidth_hz) && std::isfinite(loop_gain) &&
      std::isfinite(vco_center_over_fs) && std::isfinite(pvt.process) &&
      std::isfinite(pvt.voltage) && std::isfinite(pvt.temperature_k);
  if (!numerics_ok) {
    problems.push_back("spec contains non-finite numeric fields");
  }
  const auto node = tech::TechDatabase::standard().find(node_nm);
  if (!node.has_value()) {
    problems.push_back(util::format("unknown technology node %g nm",
                                    node_nm));
  }
  if (num_slices < 2) {
    problems.push_back("num_slices must be >= 2 (pseudo-differential ring)");
  } else if (num_slices > 64) {
    problems.push_back(
        "num_slices must be <= 64 (slice bits pack into one 64-bit word)");
  }
  if (!(fs_hz > 0)) problems.push_back("fs must be positive");
  if (!(bandwidth_hz > 0)) problems.push_back("bandwidth must be positive");
  if (bandwidth_hz > fs_hz / 2) {
    problems.push_back("bandwidth exceeds fs/2 (not an oversampled design)");
  } else if (numerics_ok && fs_hz > 0 && bandwidth_hz > 0 && osr() < 8) {
    problems.push_back(util::format(
        "OSR %.1f too low for first-order shaping (need >= 8)", osr()));
  }
  if (dac_fragments < 1) problems.push_back("dac_fragments must be >= 1");
  if (!(loop_gain > 0) || loop_gain > 4.0) {
    problems.push_back("loop_gain outside the stable (0, 4] range");
  }
  if (!(vco_center_over_fs > 0)) {
    problems.push_back("vco_center_over_fs must be positive");
  }
  if (!(pvt.process > 0)) {
    problems.push_back("pvt.process must be positive");
  }
  if (!(pvt.temperature_k > 0)) {
    problems.push_back("pvt.temperature_k must be positive");
  }
  if (numerics_ok && node.has_value() && num_slices >= 2 &&
      num_slices <= 64 && fs_hz > 0 && pvt.process > 0 &&
      vco_center_over_fs > 0) {
    // The ring must be realizable: centre frequency below the node's
    // maximum ring rate at this stage count ("within the ADC performance
    // boundary in a given process", Sec. 2.2).
    const double f_center = vco_center_over_fs * fs_hz / pvt.process;
    const double f_max = node->max_ring_freq_hz(num_slices);
    if (f_center > 0.8 * f_max) {
      problems.push_back(util::format(
          "ring centre %.2f GHz exceeds 80%% of the %s ring limit %.2f GHz "
          "- lower fs or the slice count",
          f_center / 1e9, node->name.c_str(), f_max / 1e9));
    }
  }
  if (pvt.voltage < 0.5 || pvt.voltage > 1.5) {
    problems.push_back("pvt.voltage outside [0.5, 1.5] of nominal");
  }
  return problems;
}

tech::TechNode AdcSpec::tech_node() const {
  return tech::TechDatabase::standard().at(node_nm);
}

msim::SimConfig AdcSpec::to_sim_config() const {
  const tech::TechNode node = tech_node();
  // Effective gate-delay multiplier: process corner plus a mild positive
  // temperature coefficient (~0.1%/K around 300 K).
  const double speed =
      pvt.process * (1.0 + 0.001 * (pvt.temperature_k - 300.0));
  const double vdd = node.vdd * pvt.voltage;

  msim::SimConfig cfg;
  cfg.num_slices = num_slices;
  cfg.fs_hz = fs_hz;
  cfg.substeps = 8;
  cfg.vdd = vdd;
  cfg.vrefp = vdd;            // reference tied to the supply, as in Fig. 8b
  cfg.vctrl_mid = vdd / 2.0;
  cfg.temperature_k = pvt.temperature_k;
  cfg.seed = seed;

  // Feedback network: one RES11K fragment chain per DAC (Sec. 3.1), input
  // bank of num_slices fragments in parallel per side so full scale = VDD.
  cfg.r_dac_ohms = 11000.0 * dac_fragments;
  cfg.r_input_ohms = cfg.r_dac_ohms / num_slices;
  cfg.g_vco_load_s = 5e-4;
  cfg.c_node_f = 200e-15;
  cfg.thermal_noise = with_nonidealities;

  // VCO: centre frequency anchored to fs at the typical corner; a fast or
  // slow process moves the free-running rate and the tuning gain together
  // (both are gate-speed properties). Kvco's nominal value comes from the
  // feedback network so the loop moves loop_gain quantizer LSBs of phase
  // per clock per output LSB (VcoDsmModulator::loop_gain_lsb_per_clock).
  cfg.vco_center_hz = vco_center_over_fs * fs_hz / speed;
  const double g_in = 1.0 / cfg.r_input_ohms;
  const double g_dac = num_slices / cfg.r_dac_ohms;
  const double g_tot = g_in + g_dac + cfg.g_vco_load_s;
  cfg.kvco_hz_per_v =
      loop_gain * fs_hz * g_tot / (4.0 * g_dac * node.vdd) / speed;

  if (with_nonidealities) {
    // Mismatch magnitudes follow standard raw-matching lore: a few percent
    // for gate delay / Kvco, per-mille for unsilicided resistors, and the
    // node's comparator offset sigma from the tech model. Every timing
    // aperture stretches with the corner's gate delay.
    cfg.vco_stage_mismatch_sigma = 0.02;
    cfg.vco_kvco_mismatch_sigma = 0.01;
    cfg.r_dac_mismatch_sigma = 0.002;
    cfg.comparator_offset_sigma_v = node.comparator_offset_sigma_v;
    // Input-referred comparator noise is ~an order below the offset sigma
    // for a regenerative latch of this size.
    cfg.comparator_noise_sigma_v = node.comparator_offset_sigma_v / 10.0;
    cfg.comparator_meta_window_s = node.fo4_delay_s * speed / 50.0;
    cfg.buffer_delay_s = node.fo4_delay_s * speed;
    cfg.clock_jitter_sigma_s = node.fo4_delay_s * speed / 40.0;
    // White-FM oscillator noise; scales with the ring rate.
    cfg.vco_white_fm_hz2_per_hz = 2e-8 * cfg.vco_center_hz;
  }
  return cfg;
}

std::string AdcSpec::describe() const {
  return util::format(
      "%s, %d slices, fs=%.3g MHz, BW=%.3g MHz (OSR %.0f), loop gain %.2f",
      tech_node().name.c_str(), num_slices, fs_hz / 1e6, bandwidth_hz / 1e6,
      osr(), loop_gain);
}

}  // namespace vcoadc::core
