#include "core/migration.h"

#include "tech/scaling_model.h"

namespace vcoadc::core {

MigrationResult migrate_design(const netlist::Design& src,
                               const netlist::CellLibrary& target_lib) {
  MigrationResult result{netlist::Design(&target_lib), {}, 0, 0, {}};

  for (const netlist::Module& mod : src.modules()) {
    netlist::Module& out = result.design.add_module(mod.name());
    for (const auto& port : mod.ports()) out.add_port(port.name, port.dir);
    for (const auto& net : mod.nets()) out.add_net(net);
    for (const netlist::Instance& inst : mod.instances()) {
      netlist::Instance copy = inst;
      // Submodule references migrate by name; leaf cells remap by size.
      if (const netlist::StdCell* cell = src.library().find(inst.master)) {
        if (target_lib.contains(inst.master) &&
            target_lib.at(inst.master).function == cell->function) {
          ++result.exact_matches;
        } else {
          const auto drives = target_lib.drive_strengths(cell->function);
          if (drives.empty()) {
            result.unmappable.push_back(cell->function);
          } else {
            const int best = tech::closest_drive_strength(cell->drive, drives);
            const auto name = target_lib.cell_for(cell->function, best);
            result.remapped.push_back(
                {mod.name(), inst.name, inst.master, *name, false});
            copy.master = *name;
            ++result.nearest_matches;
          }
        }
      }
      out.add_instance(std::move(copy));
    }
  }
  result.design.set_top(src.top());
  return result;
}

}  // namespace vcoadc::core
