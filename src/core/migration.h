// Design migration between technology nodes (Sec. 4): "The design migration
// between 40-nm and 180-nm process is done automatically by transforming the
// standard cells into their closest-size counterparts."
//
// migrate_design remaps every leaf instance of a gate-level design onto a
// target library: exact (function, drive) match when available, otherwise
// the closest drive strength in log space. Module structure, connectivity
// and power-domain annotations are preserved untouched - that is the whole
// point of expressing the AMS circuit in HDL.
#pragma once

#include <string>
#include <vector>

#include "netlist/cell_library.h"
#include "netlist/netlist.h"

namespace vcoadc::core {

struct MigrationRecord {
  std::string module;
  std::string instance;
  std::string from_cell;
  std::string to_cell;
  bool exact = false;
};

struct MigrationResult {
  netlist::Design design;  ///< the migrated design over the target library
  std::vector<MigrationRecord> remapped;  ///< only non-identity mappings
  int exact_matches = 0;
  int nearest_matches = 0;
  std::vector<std::string> unmappable;  ///< functions absent from target lib
};

/// Migrates `src` onto `target_lib`. The returned design references
/// `target_lib`, which must outlive it.
MigrationResult migrate_design(const netlist::Design& src,
                               const netlist::CellLibrary& target_lib);

}  // namespace vcoadc::core
