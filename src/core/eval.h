// The unified evaluation service: one request/response entry point over
// every flow driver.
//
// Each driver (datasheet, Monte Carlo, corner sweep, synthesis, migration,
// spec optimization) used to be its own free function with its own
// (spec|design, options) signature. They still exist — as thin wrappers —
// but all of them now funnel through core::evaluate(EvalRequest,
// ExecContext): one place that owns the shared semantics (validation
// order, diagnostic routing, cache/store use, ok-ness), and the seam the
// CLI's server mode speaks NDJSON through.
//
// EvalRequest is a tagged union over the driver request kinds, embedding
// the existing per-driver options structs unchanged; `kind` selects which
// members are read. The ExecContext passed to evaluate() is authoritative
// for execution knobs — any ExecContext embedded in an options struct
// (e.g. MonteCarloOptions::exec) is ignored by evaluate(), so a server can
// run every request on one shared warm context.
//
// Diagnostics: evaluate() collects every stage diagnostic of the request
// into EvalResponse::diagnostics (for the structured response), then
// re-emits them through the caller's context — all of them into ctx.diag
// when a sink is attached, otherwise only errors to stderr (the repo-wide
// never-silent policy; warnings without a sink would be noise in a serve
// loop's stderr).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/datasheet.h"
#include "core/flow.h"
#include "core/monte_carlo.h"
#include "core/optimizer.h"
#include "util/json.h"

namespace vcoadc::core {

enum class EvalKind {
  kDatasheet,
  kMonteCarlo,
  kCornerSweep,
  kSynthesize,
  kMigrate,
  kOptimize,
  kHdlEmit,
  kGateSim,
};

/// Wire name of a kind ("datasheet", "monte_carlo", "corner_sweep",
/// "synthesize", "migrate", "optimize", "hdl_emit", "gate_sim").
const char* eval_kind_name(EvalKind kind);

/// Inverse of eval_kind_name; false when `name` matches no kind.
bool eval_kind_from_name(std::string_view name, EvalKind* out);

/// Corner sweeps had no options struct before the unified API; this one
/// exists so every request kind is (spec, options)-shaped.
struct CornerSweepOptions {
  std::size_t n_samples = 1 << 13;
  /// SIMD lane width for the batched transient engine, the
  /// MonteCarloOptions convention: 0 = host-preferred, 1 = scalar
  /// per-corner stages, 2/4/8 = forced width. Corners batch as
  /// heterogeneous lanes (per-lane PVT); results are bit-identical at
  /// every setting.
  int batch_width = 0;
};

/// One driver request. `kind` selects which option members are read;
/// unused members stay default-constructed and are never touched.
struct EvalRequest {
  EvalKind kind = EvalKind::kDatasheet;
  /// Caller correlation tag, echoed verbatim into the response (the serve
  /// loop uses it to match NDJSON responses to requests).
  std::string id;
  AdcSpec spec;
  /// Simulation-backend selector (wire key "backend"). kGateLevel makes
  /// every spec-driven kind run the gate-level sign-off (hdl_emit +
  /// gate_sim, warm-cache cheap) before its driver, refusing the request
  /// when the emitted HDL fails sign-off — the gate-level path's
  /// cross-check becomes a precondition of the result. Ignored by
  /// kOptimize (its spec member is unused) and redundant for
  /// kHdlEmit/kGateSim (they are the stages themselves).
  SimBackend backend = SimBackend::kBehavioral;

  DatasheetOptions datasheet;         // kDatasheet
  MonteCarloOptions monte_carlo;      // kMonteCarlo
  CornerSweepOptions corners;         // kCornerSweep
  synth::SynthesisOptions synthesis;  // kSynthesize
  double migrate_target_node_nm = 180;  // kMigrate
  OptimizeTarget optimize_target;     // kOptimize (spec is unused)
  OptimizeOptions optimize;           // kOptimize
  GateSimOptions gate_sim;            // kGateSim + gate-level backend runs
};

/// The matching response. Exactly the member selected by `kind` is
/// populated; `ok` means the driver ran to completion on valid input
/// (datasheet complete, design built, layout produced, target library
/// resolved — the same conditions the legacy drivers signalled ad hoc).
struct EvalResponse {
  EvalKind kind = EvalKind::kDatasheet;
  std::string id;
  bool ok = false;
  /// Every diagnostic any stage of this request reported, in order.
  std::vector<util::Diagnostic> diagnostics;

  Datasheet datasheet;                // kDatasheet
  MonteCarloResult monte_carlo;       // kMonteCarlo
  std::vector<CornerResult> corners;  // kCornerSweep
  std::shared_ptr<const synth::SynthesisResult> synthesis;  // kSynthesize
  std::shared_ptr<const MigratedDesign> migrated;           // kMigrate
  OptimizeResult optimize;            // kOptimize
  std::shared_ptr<const HdlEmitResult> hdl;   // kHdlEmit
  std::shared_ptr<const GateSimResult> gate;  // kGateSim
};

/// Runs one request on `ctx`. Never throws; invalid input yields
/// ok == false plus diagnostics (in the response and via ctx).
EvalResponse evaluate(const EvalRequest& req, const ExecContext& ctx);

// --- JSON bridging (the serve protocol's vocabulary) ----------------------

/// Parses a request object: {"cmd": <kind name>, "id": ..., "spec":
/// {node,slices,fs,bw,...}, "options": {...}}. Unknown keys are ignored
/// (forward compatibility); a missing/unknown "cmd" or a non-object is an
/// error. False on error with a human-readable reason in `*error`.
bool eval_request_from_json(const util::json::Value& v, EvalRequest* out,
                            std::string* error);

/// Renders the kind-selected result as a JSON object (summary numbers, not
/// full waveforms: spectra and per-run outputs stay process-side).
util::json::Value eval_result_to_json(const EvalResponse& resp);

util::json::Value diagnostics_to_json(
    const std::vector<util::Diagnostic>& diags);

/// Stable 128-bit hex fingerprint of a rendered result — what the serve
/// protocol reports as "result_fp" so two processes can assert
/// bit-identical results without shipping the full artifacts.
std::string eval_result_fingerprint(const util::json::Value& result);

}  // namespace vcoadc::core
