// Static-linearity characterization: DC transfer curve, endpoint-fit INL
// and step-size DNL of the converter. Complements the dynamic (SNDR)
// metrics the paper reports - a generator that ships needs both, and the
// intrinsic-CLA claim has a static face too: element mismatch that the
// rotation shapes out of the spectrum also must not bend the DC transfer.
#pragma once

#include <cstddef>
#include <vector>

#include "core/adc_spec.h"
#include "msim/modulator.h"

namespace vcoadc::core {

struct TransferCurve {
  std::vector<double> input_v;  ///< differential DC inputs
  std::vector<double> output;   ///< mean normalized output per input
};

struct TransferOptions {
  int points = 33;
  std::size_t samples_per_point = 4096;
  std::size_t settle_samples = 512;  ///< discarded per point
  double span_of_fs = 0.85;          ///< sweep +/- this fraction of FS
  msim::ElementMapping mapping = msim::ElementMapping::kIntrinsicRotation;
};

/// Measures the averaged DC transfer curve of the modulator at `spec`.
TransferCurve measure_transfer(const AdcSpec& spec,
                               const TransferOptions& opts = {});

struct LinearityReport {
  double gain = 0;          ///< best-fit output per input volt
  double offset = 0;        ///< best-fit output at zero input
  double max_inl_lsb = 0;   ///< worst |residual| in quantizer LSB
  double max_dnl_lsb = 0;   ///< worst |step error| in quantizer LSB
  std::vector<double> inl_lsb;  ///< per measured point
  double lsb = 0;           ///< the LSB used (output units)
};

/// Endpoint/least-squares-fit linearity of a transfer curve; `lsb` is the
/// quantizer step in output units (2/N for an N-slice modulator).
LinearityReport analyze_linearity(const TransferCurve& curve, double lsb);

}  // namespace vcoadc::core
