// Static-linearity characterization: DC transfer curve, endpoint-fit INL
// and step-size DNL of the converter. Complements the dynamic (SNDR)
// metrics the paper reports - a generator that ships needs both, and the
// intrinsic-CLA claim has a static face too: element mismatch that the
// rotation shapes out of the spectrum also must not bend the DC transfer.
#pragma once

#include <cstddef>
#include <vector>

#include "core/adc_spec.h"
#include "msim/modulator.h"
#include "util/diag.h"

namespace vcoadc::core {

struct TransferCurve {
  std::vector<double> input_v;  ///< differential DC inputs
  std::vector<double> output;   ///< mean normalized output per input
};

struct TransferOptions {
  int points = 33;
  std::size_t samples_per_point = 4096;
  std::size_t settle_samples = 512;  ///< discarded per point
  double span_of_fs = 0.85;          ///< sweep +/- this fraction of FS
  msim::ElementMapping mapping = msim::ElementMapping::kIntrinsicRotation;
};

/// Measures the averaged DC transfer curve of the modulator at `spec`,
/// rejecting degenerate sweeps (fewer than 2 points, settle_samples eating
/// the whole capture, invalid spec) with diagnostics instead of dividing
/// by zero / underflowing the sample count.
util::Checked<TransferCurve> measure_transfer_checked(
    const AdcSpec& spec, const TransferOptions& opts = {});

/// Historical unchecked entry point: returns the curve, or an empty curve
/// (with diagnostics on stderr) when the sweep is degenerate.
TransferCurve measure_transfer(const AdcSpec& spec,
                               const TransferOptions& opts = {});

struct LinearityReport {
  double gain = 0;          ///< best-fit output per input volt
  double offset = 0;        ///< best-fit output at zero input
  double max_inl_lsb = 0;   ///< worst |residual| in quantizer LSB
  double max_dnl_lsb = 0;   ///< worst |step error| in quantizer LSB
  std::vector<double> inl_lsb;  ///< per measured point
  double lsb = 0;           ///< the LSB used (output units)
  /// Why the fit was not produced (degenerate curve, identical inputs,
  /// non-positive LSB). Empty when the report is usable.
  std::vector<util::Diagnostic> diagnostics;
};

/// Endpoint/least-squares-fit linearity of a transfer curve; `lsb` is the
/// quantizer step in output units (2/N for an N-slice modulator). A curve
/// too degenerate to fit (under 3 points, all inputs identical, bad lsb)
/// yields a zeroed report carrying `diagnostics` — never an infinite gain.
LinearityReport analyze_linearity(const TransferCurve& curve, double lsb);

}  // namespace vcoadc::core
