// The pluggable simulation-backend seam (DESIGN.md §3j).
//
// The flow can answer "what bitstream does this spec produce?" through two
// engines: the behavioral msim modulator (fast, analog-aware) and the
// event-driven gate-level LogicSim over the *emitted* Verilog (slow,
// structure-exact). SimBackend selects between them at the driver level;
// the artifacts both paths produce feed the same core::DigitalBackend, so
// a gate-level run is cross-checked bit-for-bit against the behavioral one
// before anything downstream trusts it.
//
// Two stage artifacts implement the gate-level path:
//   * HdlEmitResult — the hdl_emit stage's output. The emitted Verilog
//     *text* is the artifact of record: it is what a foundry flow would
//     consume, so the stage re-parses its own emission and proves
//     structural equivalence against the generated design before the text
//     is accepted (or cached). The re-parsed design ships alongside the
//     text purely as a convenience view; the codec reconstructs it from
//     the text on load.
//   * GateSimResult — the gate_sim stage's output: the Table-1 comparator
//     truth-table check, the ring-period check against the stage-delay
//     prediction, and the slice-replay decode whose output must match the
//     behavioral modulator bit-for-bit (then CIC+FIR decimated through the
//     shared DigitalBackend).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/adc.h"
#include "core/adc_spec.h"
#include "netlist/cell_library.h"
#include "netlist/netlist.h"
#include "util/diag.h"

namespace vcoadc::core {

/// Which engine produces the decoded bitstream a driver consumes.
enum class SimBackend {
  kBehavioral,  ///< msim transient modulator (the default)
  kGateLevel,   ///< event-driven LogicSim over the emitted Verilog
};

/// Wire name of a backend ("behavioral", "gate_level").
const char* sim_backend_name(SimBackend b);

/// Inverse of sim_backend_name; false when `name` matches no backend.
bool sim_backend_from_name(std::string_view name, SimBackend* out);

/// hdl_emit stage artifact. `verilog` is the canonical product; `parsed`
/// is the design re-parsed from that exact text over `lib` (the two share
/// lifetime: Module instances point at nothing, but validate() resolves
/// masters through the library).
struct HdlEmitResult {
  std::string verilog;  ///< emitted text — the artifact of record
  std::string top;      ///< top module name of the emitted design
  std::shared_ptr<const netlist::CellLibrary> lib;
  std::shared_ptr<const netlist::Design> parsed;  ///< re-parsed from text
  int instances_compared = 0;  ///< flattened pairs the LEC step matched
};

/// gate_sim stage knobs. `sim` configures the behavioral reference run the
/// gate-level replay is cross-checked against (record_bits is forced on —
/// the replay consumes the per-slice bitstreams). Gate-level event
/// simulation costs ~10^3 more per sample than the behavioral engine, so
/// the default capture is short; the cross-check is bit-exact at any
/// length.
struct GateSimOptions {
  SimulationOptions sim;
  /// Relative tolerance on |measured − predicted| ring period.
  double ring_period_tol = 0.25;
  /// Top module to simulate; empty = the emitted design's top.
  std::string top;

  GateSimOptions() { sim.n_samples = 1 << 12; }
};

/// gate_sim stage artifact: the three sign-off checks plus the decoded
/// stream, CIC+FIR-decimated through the same DigitalBackend as the
/// behavioral path.
struct GateSimResult {
  bool comparator_ok = false;  ///< Table-1 decide/latch truth table
  double ring_period_s = 0;    ///< measured on R1P_0 after a kick
  double ring_period_pred_s = 0;  ///< 2·N·t_stage stage-delay prediction
  bool ring_ok = false;        ///< |measured − predicted| within tolerance
  std::size_t n_samples = 0;   ///< replayed samples per slice
  int num_slices = 0;
  std::vector<double> decoded;    ///< gate-level decoder output per sample
  std::vector<double> decimated;  ///< DigitalBackend(decoded)
  bool matches_behavioral = false;  ///< decoded+decimated bit-identical
  std::uint64_t transitions = 0;  ///< committed gate events, all phases
};

/// Stage-delay prediction of the distributed ring's period: 2·N stage
/// traversals per cycle at the LogicSim inverter delay (FO4/4, ×1/√2 for
/// the 2x drive of the forward pair).
double predicted_ring_period_s(const tech::TechNode& node, int num_slices);

/// The gate-level sign-off engine: runs the comparator truth table, the
/// ring-period check and the slice replay on `parsed` (the re-parsed
/// emitted design; `opts.top` must name a module in it) and cross-checks
/// the decoded stream against `behavioral`. Null on any failed check,
/// with the reasons appended to `diags` — a failed sign-off is never a
/// cacheable artifact.
std::shared_ptr<const GateSimResult> run_gate_level_signoff(
    const netlist::Design& parsed, const AdcSpec& spec,
    const RunResult& behavioral, const GateSimOptions& opts,
    std::vector<util::Diagnostic>* diags);

}  // namespace vcoadc::core
