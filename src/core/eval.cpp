#include "core/eval.h"

#include <cstdio>
#include <utility>

#include "core/driver_impl.h"

namespace vcoadc::core {

namespace json = util::json;

const char* eval_kind_name(EvalKind kind) {
  switch (kind) {
    case EvalKind::kDatasheet:
      return "datasheet";
    case EvalKind::kMonteCarlo:
      return "monte_carlo";
    case EvalKind::kCornerSweep:
      return "corner_sweep";
    case EvalKind::kSynthesize:
      return "synthesize";
    case EvalKind::kMigrate:
      return "migrate";
    case EvalKind::kOptimize:
      return "optimize";
    case EvalKind::kHdlEmit:
      return "hdl_emit";
    case EvalKind::kGateSim:
      return "gate_sim";
  }
  return "?";
}

bool eval_kind_from_name(std::string_view name, EvalKind* out) {
  for (EvalKind k :
       {EvalKind::kDatasheet, EvalKind::kMonteCarlo, EvalKind::kCornerSweep,
        EvalKind::kSynthesize, EvalKind::kMigrate, EvalKind::kOptimize,
        EvalKind::kHdlEmit, EvalKind::kGateSim}) {
    if (name == eval_kind_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

EvalResponse evaluate(const EvalRequest& req, const ExecContext& ctx) {
  EvalResponse resp;
  resp.kind = req.kind;
  resp.id = req.id;

  // Every stage of this request reports into a request-local sink, so the
  // response carries its own complete diagnostic record even when the
  // caller's context has a sink of its own (the serve loop depends on
  // per-request isolation).
  util::DiagSink local;
  ExecContext sub = ctx;
  sub.diag = &local;

  // Gate-level backend selector: before a spec-driven driver runs, the
  // emitted-HDL sign-off (hdl_emit + gate_sim) must pass for the request's
  // spec. The stages cache like any other, so a warm context pays this
  // once per spec; a failed sign-off refuses the request outright rather
  // than reporting behavioral numbers the gate-level path contradicts.
  bool signoff_ok = true;
  if (req.backend == SimBackend::kGateLevel &&
      req.kind != EvalKind::kOptimize && req.kind != EvalKind::kHdlEmit &&
      req.kind != EvalKind::kGateSim) {
    Flow flow(sub);
    if (flow.gate_sim(req.spec, req.gate_sim) == nullptr) {
      signoff_ok = false;
      resp.ok = false;
    }
  }

  if (signoff_ok) switch (req.kind) {
    case EvalKind::kDatasheet: {
      resp.datasheet = detail::datasheet_impl(sub, req.spec, req.datasheet);
      resp.ok = resp.datasheet.complete;
      break;
    }
    case EvalKind::kMonteCarlo: {
      const AdcDesign design(req.spec, sub);
      resp.monte_carlo =
          detail::monte_carlo_impl(sub, design, req.monte_carlo);
      resp.ok = design.ok() && !local.has_errors();
      break;
    }
    case EvalKind::kCornerSweep: {
      const AdcDesign design(req.spec, sub);
      resp.corners = detail::corner_sweep_impl(
          sub, design, req.corners.n_samples, req.corners.batch_width);
      resp.ok = design.ok() && !local.has_errors();
      break;
    }
    case EvalKind::kSynthesize: {
      Flow flow(sub);
      resp.synthesis = flow.synthesis(req.spec, req.synthesis);
      resp.ok = resp.synthesis != nullptr && resp.synthesis->layout != nullptr;
      break;
    }
    case EvalKind::kMigrate: {
      MigratedDesign m =
          detail::migrate_impl(sub, req.spec, req.migrate_target_node_nm);
      resp.ok = m.target_lib != nullptr;
      resp.migrated = std::make_shared<const MigratedDesign>(std::move(m));
      break;
    }
    case EvalKind::kOptimize: {
      resp.optimize =
          detail::optimize_impl(sub, req.optimize_target, req.optimize);
      resp.ok = !local.has_errors();
      break;
    }
    case EvalKind::kHdlEmit: {
      Flow flow(sub);
      resp.hdl = flow.hdl_emit(req.spec);
      resp.ok = resp.hdl != nullptr;
      break;
    }
    case EvalKind::kGateSim: {
      Flow flow(sub);
      resp.gate = flow.gate_sim(req.spec, req.gate_sim);
      resp.ok = resp.gate != nullptr;
      break;
    }
  }

  resp.diagnostics = local.all();
  // Re-emit through the caller's context: everything into its sink when it
  // has one; otherwise only errors to stderr — a refused request is never
  // silent, but a healthy serve loop's stderr stays quiet.
  if (ctx.diag != nullptr) {
    ctx.diag->add_all(resp.diagnostics);
  } else {
    for (const util::Diagnostic& d : resp.diagnostics) {
      if (d.severity == util::Severity::kError) {
        std::fprintf(stderr, "vcoadc: %s\n", d.to_string().c_str());
      }
    }
  }
  return resp;
}

// --- JSON bridging --------------------------------------------------------

namespace {

void spec_from_json(const json::Value& v, AdcSpec* spec) {
  if (const json::Value* x = v.find("node")) {
    spec->node_nm = x->number_or(spec->node_nm);
  }
  if (const json::Value* x = v.find("slices")) {
    spec->num_slices = static_cast<int>(x->number_or(spec->num_slices));
  }
  if (const json::Value* x = v.find("fs")) {
    spec->fs_hz = x->number_or(spec->fs_hz);
  }
  if (const json::Value* x = v.find("bw")) {
    spec->bandwidth_hz = x->number_or(spec->bandwidth_hz);
  }
  if (const json::Value* x = v.find("loop_gain")) {
    spec->loop_gain = x->number_or(spec->loop_gain);
  }
  if (const json::Value* x = v.find("dac_fragments")) {
    spec->dac_fragments = static_cast<int>(x->number_or(spec->dac_fragments));
  }
  if (const json::Value* x = v.find("vco_center_over_fs")) {
    spec->vco_center_over_fs = x->number_or(spec->vco_center_over_fs);
  }
  if (const json::Value* x = v.find("with_nonidealities")) {
    spec->with_nonidealities = x->bool_or(spec->with_nonidealities);
  }
  if (const json::Value* x = v.find("seed")) {
    spec->seed = static_cast<std::uint64_t>(
        x->number_or(static_cast<double>(spec->seed)));
  }
  if (const json::Value* pvt = v.find("pvt"); pvt != nullptr) {
    if (const json::Value* x = pvt->find("process")) {
      spec->pvt.process = x->number_or(spec->pvt.process);
    }
    if (const json::Value* x = pvt->find("voltage")) {
      spec->pvt.voltage = x->number_or(spec->pvt.voltage);
    }
    if (const json::Value* x = pvt->find("temperature_k")) {
      spec->pvt.temperature_k = x->number_or(spec->pvt.temperature_k);
    }
  }
}

double opt_number(const json::Value* obj, const char* key, double fallback) {
  if (obj == nullptr) return fallback;
  const json::Value* x = obj->find(key);
  return x != nullptr ? x->number_or(fallback) : fallback;
}

json::Value spec_to_json(const AdcSpec& spec) {
  json::Value v = json::Value::make_object();
  v.set("node", json::Value::make_number(spec.node_nm));
  v.set("slices", json::Value::make_number(spec.num_slices));
  v.set("fs", json::Value::make_number(spec.fs_hz));
  v.set("bw", json::Value::make_number(spec.bandwidth_hz));
  return v;
}

json::Value mc_to_json(const MonteCarloResult& mc) {
  json::Value v = json::Value::make_object();
  v.set("runs",
        json::Value::make_number(static_cast<double>(mc.sndr_db.size())));
  v.set("mean_db", json::Value::make_number(mc.mean_db));
  v.set("stddev_db", json::Value::make_number(mc.stddev_db));
  v.set("min_db", json::Value::make_number(mc.min_db));
  v.set("max_db", json::Value::make_number(mc.max_db));
  json::Value runs = json::Value::make_array();
  for (const double s : mc.sndr_db) runs.push(json::Value::make_number(s));
  v.set("sndr_db", std::move(runs));
  return v;
}

}  // namespace

bool eval_request_from_json(const json::Value& v, EvalRequest* out,
                            std::string* error) {
  if (!v.is_object()) {
    *error = "request must be a JSON object";
    return false;
  }
  const json::Value* cmd = v.find("cmd");
  if (cmd == nullptr || !cmd->is_string()) {
    *error = "request is missing a string \"cmd\"";
    return false;
  }
  EvalRequest req;
  if (!eval_kind_from_name(cmd->string, &req.kind)) {
    *error = "unknown cmd \"" + cmd->string +
             "\" (want datasheet|monte_carlo|corner_sweep|synthesize|"
             "migrate|optimize|hdl_emit|gate_sim)";
    return false;
  }
  if (const json::Value* b = v.find("backend")) {
    if (!b->is_string() ||
        !sim_backend_from_name(b->string, &req.backend)) {
      *error = "\"backend\" must be \"behavioral\" or \"gate_level\"";
      return false;
    }
  }
  if (const json::Value* id = v.find("id")) {
    req.id = id->is_string() ? id->string : json::dump(*id);
  }
  if (const json::Value* spec = v.find("spec")) {
    if (!spec->is_object()) {
      *error = "\"spec\" must be an object";
      return false;
    }
    spec_from_json(*spec, &req.spec);
  }
  const json::Value* o = v.find("options");
  if (o != nullptr && !o->is_object()) {
    *error = "\"options\" must be an object";
    return false;
  }
  switch (req.kind) {
    case EvalKind::kDatasheet:
      req.datasheet.n_samples = static_cast<std::size_t>(opt_number(
          o, "n_samples", static_cast<double>(req.datasheet.n_samples)));
      req.datasheet.mc_runs =
          static_cast<int>(opt_number(o, "mc_runs", req.datasheet.mc_runs));
      req.datasheet.amp_sweep_points = static_cast<int>(opt_number(
          o, "amp_sweep_points", req.datasheet.amp_sweep_points));
      req.datasheet.batch_width = static_cast<int>(
          opt_number(o, "batch_width", req.datasheet.batch_width));
      break;
    case EvalKind::kMonteCarlo:
      req.monte_carlo.runs =
          static_cast<int>(opt_number(o, "runs", req.monte_carlo.runs));
      req.monte_carlo.sim.n_samples = static_cast<std::size_t>(
          opt_number(o, "n_samples",
                     static_cast<double>(req.monte_carlo.sim.n_samples)));
      req.monte_carlo.sim.fin_target_hz = opt_number(
          o, "fin", req.monte_carlo.sim.fin_target_hz);
      req.monte_carlo.sim.amplitude_dbfs = opt_number(
          o, "amplitude_dbfs", req.monte_carlo.sim.amplitude_dbfs);
      req.monte_carlo.seed0 = static_cast<std::uint64_t>(opt_number(
          o, "seed0", static_cast<double>(req.monte_carlo.seed0)));
      req.monte_carlo.batch_width = static_cast<int>(
          opt_number(o, "batch_width", req.monte_carlo.batch_width));
      break;
    case EvalKind::kCornerSweep:
      req.corners.n_samples = static_cast<std::size_t>(opt_number(
          o, "n_samples", static_cast<double>(req.corners.n_samples)));
      req.corners.batch_width = static_cast<int>(
          opt_number(o, "batch_width", req.corners.batch_width));
      break;
    case EvalKind::kSynthesize:
      req.synthesis.target_utilization = opt_number(
          o, "target_utilization", req.synthesis.target_utilization);
      req.synthesis.aspect_ratio =
          opt_number(o, "aspect_ratio", req.synthesis.aspect_ratio);
      req.synthesis.seed = static_cast<std::uint64_t>(opt_number(
          o, "seed", static_cast<double>(req.synthesis.seed)));
      if (o != nullptr) {
        if (const json::Value* x = o->find("detailed_route")) {
          req.synthesis.detailed_route =
              x->bool_or(req.synthesis.detailed_route);
        }
      }
      break;
    case EvalKind::kMigrate:
      req.migrate_target_node_nm =
          opt_number(o, "target_node", req.migrate_target_node_nm);
      break;
    case EvalKind::kOptimize:
      req.optimize_target.node_nm =
          opt_number(o, "node", req.optimize_target.node_nm);
      req.optimize_target.min_sndr_db =
          opt_number(o, "min_sndr_db", req.optimize_target.min_sndr_db);
      req.optimize_target.bandwidth_hz =
          opt_number(o, "bandwidth_hz", req.optimize_target.bandwidth_hz);
      req.optimize_target.margin_db =
          opt_number(o, "margin_db", req.optimize_target.margin_db);
      req.optimize.n_samples = static_cast<std::size_t>(opt_number(
          o, "n_samples", static_cast<double>(req.optimize.n_samples)));
      req.optimize.seed = static_cast<std::uint64_t>(
          opt_number(o, "seed", static_cast<double>(req.optimize.seed)));
      break;
    case EvalKind::kHdlEmit:
      break;  // the stage has no options: the spec is the whole input
    case EvalKind::kGateSim:
      break;  // gate_sim options parse below for every kind
  }
  // Gate-sim options apply both to the kGateSim kind and to any request
  // running under the gate-level backend, so they parse unconditionally.
  req.gate_sim.sim.n_samples = static_cast<std::size_t>(opt_number(
      o, "n_samples", static_cast<double>(req.gate_sim.sim.n_samples)));
  req.gate_sim.ring_period_tol =
      opt_number(o, "ring_period_tol", req.gate_sim.ring_period_tol);
  if (o != nullptr) {
    if (const json::Value* x = o->find("top"); x != nullptr && x->is_string()) {
      req.gate_sim.top = x->string;
    }
  }
  *out = std::move(req);
  return true;
}

json::Value diagnostics_to_json(const std::vector<util::Diagnostic>& diags) {
  json::Value arr = json::Value::make_array();
  for (const util::Diagnostic& d : diags) {
    json::Value v = json::Value::make_object();
    v.set("severity",
          json::Value::make_string(util::severity_name(d.severity)));
    v.set("stage", json::Value::make_string(d.stage));
    v.set("item", json::Value::make_string(d.item));
    v.set("reason", json::Value::make_string(d.reason));
    arr.push(std::move(v));
  }
  return arr;
}

json::Value eval_result_to_json(const EvalResponse& resp) {
  json::Value v = json::Value::make_object();
  switch (resp.kind) {
    case EvalKind::kDatasheet: {
      const Datasheet& ds = resp.datasheet;
      v.set("complete", json::Value::make_bool(ds.complete));
      v.set("sndr_db", json::Value::make_number(ds.nominal.sndr.sndr_db));
      v.set("snr_db", json::Value::make_number(ds.nominal.sndr.snr_db));
      v.set("sfdr_db", json::Value::make_number(ds.nominal.sndr.sfdr_db));
      v.set("enob", json::Value::make_number(ds.nominal.sndr.enob));
      v.set("shaping_db_per_dec",
            json::Value::make_number(ds.nominal.shaping.db_per_decade));
      v.set("power_w", json::Value::make_number(ds.nominal.power.total_w()));
      v.set("fom_fj", json::Value::make_number(ds.nominal.fom_fj));
      v.set("area_mm2", json::Value::make_number(ds.area_mm2));
      v.set("cells", json::Value::make_number(ds.layout.num_cells));
      v.set("drc_violations", json::Value::make_number(
                                  static_cast<double>(ds.drc.violations.size())));
      v.set("slack_ps", json::Value::make_number(ds.timing.slack_s * 1e12));
      v.set("power_grid_clean",
            json::Value::make_bool(ds.power_grid.clean()));
      if (!ds.mc.sndr_db.empty()) v.set("mc", mc_to_json(ds.mc));
      if (!ds.amp_sweep.empty()) {
        json::Value arr = json::Value::make_array();
        for (const AmplitudePoint& pt : ds.amp_sweep) {
          json::Value pv = json::Value::make_object();
          pv.set("amplitude_dbfs",
                 json::Value::make_number(pt.amplitude_dbfs));
          pv.set("sndr_db", json::Value::make_number(pt.sndr_db));
          pv.set("enob", json::Value::make_number(pt.enob));
          arr.push(std::move(pv));
        }
        v.set("amp_sweep", std::move(arr));
      }
      break;
    }
    case EvalKind::kMonteCarlo:
      v = mc_to_json(resp.monte_carlo);
      break;
    case EvalKind::kCornerSweep: {
      json::Value arr = json::Value::make_array();
      for (const CornerResult& c : resp.corners) {
        json::Value cv = json::Value::make_object();
        cv.set("name", json::Value::make_string(c.name));
        cv.set("process", json::Value::make_number(c.pvt.process));
        cv.set("voltage", json::Value::make_number(c.pvt.voltage));
        cv.set("temperature_k",
               json::Value::make_number(c.pvt.temperature_k));
        cv.set("sndr_db", json::Value::make_number(c.sndr_db));
        cv.set("power_w", json::Value::make_number(c.power_w));
        arr.push(std::move(cv));
      }
      v.set("corners", std::move(arr));
      break;
    }
    case EvalKind::kSynthesize: {
      if (resp.synthesis == nullptr) break;
      const synth::SynthesisResult& s = *resp.synthesis;
      v.set("cells", json::Value::make_number(s.stats.num_cells));
      v.set("regions", json::Value::make_number(s.stats.num_regions));
      v.set("die_area_mm2",
            json::Value::make_number(s.stats.die_area_m2 * 1e6));
      v.set("utilization", json::Value::make_number(s.stats.utilization));
      v.set("wirelength_um", json::Value::make_number(
                                 s.detailed_routing.total_wirelength_m * 1e6));
      v.set("vias", json::Value::make_number(s.detailed_routing.total_vias));
      v.set("failed_nets",
            json::Value::make_number(s.detailed_routing.failed_nets));
      v.set("overflowed_edges",
            json::Value::make_number(s.detailed_routing.overflowed_edges));
      v.set("drc_violations", json::Value::make_number(
                                  static_cast<double>(s.drc.violations.size())));
      v.set("wire_cap_f", json::Value::make_number(s.routing.wire_cap_f));
      break;
    }
    case EvalKind::kMigrate: {
      if (resp.migrated == nullptr) break;
      const MigratedDesign& m = *resp.migrated;
      v.set("exact_matches",
            json::Value::make_number(m.result.exact_matches));
      v.set("nearest_matches",
            json::Value::make_number(m.result.nearest_matches));
      v.set("remapped", json::Value::make_number(
                            static_cast<double>(m.result.remapped.size())));
      json::Value un = json::Value::make_array();
      for (const std::string& fn : m.result.unmappable) {
        un.push(json::Value::make_string(fn));
      }
      v.set("unmappable", std::move(un));
      break;
    }
    case EvalKind::kOptimize: {
      const OptimizeResult& r = resp.optimize;
      v.set("found", json::Value::make_bool(r.best.has_value()));
      if (r.best.has_value()) v.set("best", spec_to_json(*r.best));
      v.set("best_power_w", json::Value::make_number(r.best_power_w));
      v.set("best_sndr_db", json::Value::make_number(r.best_sndr_db));
      v.set("evaluated", json::Value::make_number(
                             static_cast<double>(r.evaluated.size())));
      break;
    }
    case EvalKind::kHdlEmit: {
      if (resp.hdl == nullptr) break;
      const HdlEmitResult& h = *resp.hdl;
      v.set("top", json::Value::make_string(h.top));
      v.set("verilog_bytes", json::Value::make_number(
                                 static_cast<double>(h.verilog.size())));
      v.set("modules",
            json::Value::make_number(static_cast<double>(
                h.parsed != nullptr ? h.parsed->modules().size() : 0)));
      v.set("instances_compared",
            json::Value::make_number(h.instances_compared));
      break;
    }
    case EvalKind::kGateSim: {
      if (resp.gate == nullptr) break;
      const GateSimResult& g = *resp.gate;
      v.set("comparator_ok", json::Value::make_bool(g.comparator_ok));
      v.set("ring_ok", json::Value::make_bool(g.ring_ok));
      v.set("ring_period_ps",
            json::Value::make_number(g.ring_period_s * 1e12));
      v.set("ring_period_pred_ps",
            json::Value::make_number(g.ring_period_pred_s * 1e12));
      v.set("n_samples", json::Value::make_number(
                             static_cast<double>(g.n_samples)));
      v.set("decoded_samples", json::Value::make_number(
                                   static_cast<double>(g.decoded.size())));
      v.set("decimated_samples",
            json::Value::make_number(static_cast<double>(g.decimated.size())));
      v.set("matches_behavioral",
            json::Value::make_bool(g.matches_behavioral));
      v.set("transitions", json::Value::make_number(
                               static_cast<double>(g.transitions)));
      break;
    }
  }
  return v;
}

std::string eval_result_fingerprint(const json::Value& result) {
  KeyHasher h;
  h.tag("eval_result");
  h.str(json::dump(result));
  return h.digest().hex();
}

}  // namespace vcoadc::core
