#include "core/flow.h"

#include <utility>

#include "msim/modulator.h"
#include "netlist/generator.h"
#include "synth/net_db.h"
#include "util/trace.h"

namespace vcoadc::core {

namespace {

// Bump when a stage's serialization or semantics change incompatibly, so
// stale process-lifetime cache entries can never alias new ones.
constexpr std::uint64_t kKeyFormatVersion = 1;

void hash_pvt(KeyHasher& h, const PvtCorner& pvt) {
  h.f64(pvt.process);
  h.f64(pvt.voltage);
  h.f64(pvt.temperature_k);
}

/// Spec fields that shape the library + netlist (structure only).
void hash_spec_structure(KeyHasher& h, const AdcSpec& spec) {
  h.tag("node_nm");
  h.f64(spec.node_nm);
  h.tag("num_slices");
  h.i64(spec.num_slices);
  h.tag("dac_fragments");
  h.i64(spec.dac_fragments);
}

/// Every result-affecting spec field (the SimRun key's basis).
void hash_spec_full(KeyHasher& h, const AdcSpec& spec) {
  hash_spec_structure(h, spec);
  h.tag("fs_hz");
  h.f64(spec.fs_hz);
  h.tag("bandwidth_hz");
  h.f64(spec.bandwidth_hz);
  h.tag("loop_gain");
  h.f64(spec.loop_gain);
  h.tag("vco_center_over_fs");
  h.f64(spec.vco_center_over_fs);
  h.tag("with_nonidealities");
  h.boolean(spec.with_nonidealities);
  h.tag("pvt");
  hash_pvt(h, spec.pvt);
  h.tag("seed");
  h.u64(spec.seed);
}

void hash_floorplan_opts(KeyHasher& h, const synth::SynthesisOptions& o) {
  h.tag("target_utilization");
  h.f64(o.target_utilization);
  h.tag("aspect_ratio");
  h.f64(o.aspect_ratio);
}

void hash_placement_opts(KeyHasher& h, const synth::SynthesisOptions& o) {
  h.tag("placer");
  h.i64(static_cast<int>(o.placer));
  h.tag("respect_power_domains");
  h.boolean(o.respect_power_domains);
  h.tag("barycenter_passes");
  h.i64(o.barycenter_passes);
  h.tag("refine_passes");
  h.i64(o.refine_passes);
  h.tag("seed");
  h.u64(o.seed);
}

// --- Approximate resident sizes for the cache stats. Estimates only; the
// cache bounds by entry count, these just make `--cache-stats` readable.

std::size_t approx_bytes_library(const netlist::CellLibrary& lib) {
  return sizeof(lib) + lib.cells().size() * 256;
}

std::size_t approx_bytes_bundle(const DesignBundle& b) {
  std::size_t n = sizeof(b);
  if (b.lib) n += approx_bytes_library(*b.lib);
  if (b.design) {
    const auto st = b.design->stats();
    n += static_cast<std::size_t>(st.total_instances) * 200;
  }
  return n;
}

std::size_t approx_bytes_flat(const std::vector<netlist::FlatInstance>& flat) {
  return flat.size() * 256;
}

std::size_t approx_bytes_floorplan(const synth::FloorplanStageResult& a) {
  return sizeof(a) + approx_bytes_flat(a.flat) +
         a.fp.regions.size() * sizeof(synth::PlacedRegion) +
         a.floorplan_spec.size();
}

std::size_t approx_bytes_placement(const synth::Placement& pl) {
  return sizeof(pl) + pl.cells.size() * sizeof(synth::PlacedCell);
}

std::size_t approx_bytes_synthesis(const synth::SynthesisResult& s) {
  std::size_t n = sizeof(s) + s.floorplan_spec.size();
  if (s.layout) {
    n += approx_bytes_flat(s.layout->flat()) +
         approx_bytes_placement(s.layout->placement());
  }
  n += s.routing.nets.size() * sizeof(synth::NetRoute);
  for (const auto& net : s.detailed_routing.nets) {
    n += sizeof(net);
    for (const auto& path : net.paths)
      n += path.size() * sizeof(synth::GridPoint);
  }
  n += s.drc.violations.size() * 128;
  return n;
}

std::size_t approx_bytes_run(const RunResult& r) {
  std::size_t n = sizeof(r);
  n += r.mod.output.size() * sizeof(double);
  n += r.mod.counts.size() * sizeof(int);
  for (const auto& bits : r.mod.slice_bits) n += bits.size() / 8;
  n += r.spectrum.freq_hz.size() * 3 * sizeof(double);
  n += r.idle_tones.size() * sizeof(dsp::IdleTone);
  return n;
}

/// Runs one memoized stage: wraps the lookup/build in a trace span and
/// falls back to a direct build when the context has no cache.
template <typename T, typename BuildFn>
std::shared_ptr<const T> run_stage(const ExecContext& ctx, Stage stage,
                                   const CacheKey& key,
                                   std::size_t (*bytes_of)(const T&),
                                   BuildFn&& build) {
  util::TraceSpan span(ctx.trace, stage_name(stage));
  std::shared_ptr<const T> value;
  bool hit = false;
  if (ctx.cache) {
    value = ctx.cache->get_or_build<T>(
        key, std::forward<BuildFn>(build),
        bytes_of ? std::function<std::size_t(const T&)>(bytes_of)
                 : std::function<std::size_t(const T&)>{},
        &hit);
  } else {
    value = build();
  }
  if (value) span.cache(hit, bytes_of ? bytes_of(*value) : sizeof(T));
  span.note("key=" + key.hex());
  return value;
}

}  // namespace

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kTechLibrary:
      return "tech_library";
    case Stage::kNetlist:
      return "netlist";
    case Stage::kFloorplan:
      return "floorplan";
    case Stage::kPlacement:
      return "placement";
    case Stage::kRoute:
      return "route";
    case Stage::kSimRun:
      return "sim_run";
    case Stage::kReport:
      return "report";
  }
  return "?";
}

CacheKey tech_library_key(const AdcSpec& spec) {
  KeyHasher h;
  h.u64(kKeyFormatVersion);
  h.tag("stage:tech_library");
  h.tag("node_nm");
  h.f64(spec.node_nm);
  return h.digest();
}

CacheKey netlist_key(const AdcSpec& spec) {
  KeyHasher h;
  h.u64(kKeyFormatVersion);
  h.tag("stage:netlist");
  hash_spec_structure(h, spec);
  return h.digest();
}

CacheKey floorplan_key(const AdcSpec& spec,
                       const synth::SynthesisOptions& opts) {
  const CacheKey up = netlist_key(spec);
  KeyHasher h;
  h.u64(kKeyFormatVersion);
  h.tag("stage:floorplan");
  h.u64(up.lo);
  h.u64(up.hi);
  hash_floorplan_opts(h, opts);
  return h.digest();
}

CacheKey placement_key(const AdcSpec& spec,
                       const synth::SynthesisOptions& opts) {
  const CacheKey up = floorplan_key(spec, opts);
  KeyHasher h;
  h.u64(kKeyFormatVersion);
  h.tag("stage:placement");
  h.u64(up.lo);
  h.u64(up.hi);
  hash_placement_opts(h, opts);
  return h.digest();
}

CacheKey synthesis_key(const AdcSpec& spec,
                       const synth::SynthesisOptions& opts) {
  const CacheKey up = placement_key(spec, opts);
  KeyHasher h;
  h.u64(kKeyFormatVersion);
  h.tag("stage:route");
  h.u64(up.lo);
  h.u64(up.hi);
  h.tag("detailed_route");
  h.boolean(opts.detailed_route);
  return h.digest();
}

CacheKey sim_run_key(const AdcSpec& spec, const SimulationOptions& opts) {
  // Canonicalize the per-run overrides into the spec: simulate() applies
  // them exactly this way, so (spec, seed-override) and (spec-with-seed,
  // no override) are the same run and must share one key.
  AdcSpec sp = spec;
  if (opts.seed != 0) sp.seed = opts.seed;
  if (opts.pvt.has_value()) sp.pvt = *opts.pvt;
  KeyHasher h;
  h.u64(kKeyFormatVersion);
  h.tag("stage:sim_run");
  hash_spec_full(h, sp);
  h.tag("n_samples");
  h.u64(opts.n_samples);
  h.tag("amplitude_dbfs");
  h.f64(opts.amplitude_dbfs);
  h.tag("fin_target_hz");
  h.f64(opts.fin_target_hz);
  h.tag("comparator");
  h.i64(static_cast<int>(opts.comparator));
  h.tag("dac");
  h.i64(static_cast<int>(opts.dac));
  h.tag("record_bits");
  h.boolean(opts.record_bits);
  h.tag("wire_cap_f");
  h.f64(opts.wire_cap_f);
  return h.digest();
}

synth::SynthesisOptions Flow::exec_opts(
    const synth::SynthesisOptions& opts) const {
  synth::SynthesisOptions o = opts;
  // ExecContext knobs only — neither may appear in a cache key.
  o.route_threads = ctx_.resolve_threads(opts.route_threads);
  // Flow spans cover the stage boundaries; the synth-internal spans are
  // for direct synth::synthesize() callers.
  o.trace = nullptr;
  return o;
}

std::shared_ptr<const netlist::CellLibrary> Flow::tech_library(
    const AdcSpec& spec) {
  return run_stage<netlist::CellLibrary>(
      ctx_, Stage::kTechLibrary, tech_library_key(spec), &approx_bytes_library,
      [&spec]() {
        const tech::TechNode node = spec.tech_node();
        auto lib = std::make_shared<netlist::CellLibrary>(
            netlist::make_standard_library(node));
        netlist::add_resistor_cells(*lib, node);
        return std::shared_ptr<const netlist::CellLibrary>(std::move(lib));
      });
}

DesignBundle Flow::netlist(const AdcSpec& spec) {
  auto bundle = run_stage<DesignBundle>(
      ctx_, Stage::kNetlist, netlist_key(spec), &approx_bytes_bundle,
      [this, &spec]() {
        DesignBundle b;
        b.lib = tech_library(spec);
        netlist::GeneratorConfig gen;
        gen.num_slices = spec.num_slices;
        gen.dac_fragments = spec.dac_fragments;
        b.design = std::make_shared<const netlist::Design>(
            netlist::build_adc_design(*b.lib, gen));
        return std::make_shared<const DesignBundle>(std::move(b));
      });
  return *bundle;
}

std::shared_ptr<const synth::FloorplanStageResult> Flow::floorplan(
    const AdcSpec& spec, const synth::SynthesisOptions& opts) {
  const synth::SynthesisOptions o = exec_opts(opts);
  return run_stage<synth::FloorplanStageResult>(
      ctx_, Stage::kFloorplan, floorplan_key(spec, opts),
      &approx_bytes_floorplan, [this, &spec, &o]() {
        const DesignBundle bundle = netlist(spec);
        auto art = std::make_shared<synth::FloorplanStageResult>();
        std::vector<synth::FlowDiagnostic> diags;
        *art = synth::run_floorplan_stage(*bundle.design, o, diags);
        // Generator output always validates (asserted by the netlist
        // tests); a failure here would be an internal inconsistency.
        art->flat.shrink_to_fit();
        // The flat instances point into the bundle's StdCells; pin the
        // bundle so the artifact survives netlist-artifact eviction (and
        // cache-less flows, where the bundle would otherwise die here).
        art->owner = std::make_shared<const DesignBundle>(bundle);
        return std::shared_ptr<const synth::FloorplanStageResult>(
            std::move(art));
      });
}

std::shared_ptr<const synth::Placement> Flow::placement(
    const AdcSpec& spec, const synth::SynthesisOptions& opts) {
  const synth::SynthesisOptions o = exec_opts(opts);
  return run_stage<synth::Placement>(
      ctx_, Stage::kPlacement, placement_key(spec, opts),
      &approx_bytes_placement, [this, &spec, &opts, &o]() {
        auto art = floorplan(spec, opts);
        // The NetDb borrows pin-name storage from `flat`, so it is rebuilt
        // over the cached artifact rather than cached itself.
        const synth::NetDb db(art->flat);
        return std::make_shared<const synth::Placement>(
            synth::run_placement_stage(*art, o, db));
      });
}

std::shared_ptr<const synth::SynthesisResult> Flow::synthesis(
    const AdcSpec& spec, const synth::SynthesisOptions& opts) {
  const synth::SynthesisOptions o = exec_opts(opts);
  return run_stage<synth::SynthesisResult>(
      ctx_, Stage::kRoute, synthesis_key(spec, opts), &approx_bytes_synthesis,
      [this, &spec, &opts, &o]() {
        auto art = floorplan(spec, opts);
        auto pl = placement(spec, opts);
        const synth::NetDb db(art->flat);
        return std::make_shared<const synth::SynthesisResult>(
            synth::run_route_stage(*art, *pl, o, db));
      });
}

std::shared_ptr<const RunResult> Flow::sim_run(const AdcSpec& spec,
                                               const SimulationOptions& opts) {
  return run_stage<RunResult>(
      ctx_, Stage::kSimRun, sim_run_key(spec, opts), &approx_bytes_run,
      [this, &spec, &opts]() {
        const AdcDesign design(spec, ctx_);
        static thread_local msim::SimWorkspace ws;
        return std::make_shared<const RunResult>(design.simulate(opts, ws));
      });
}

std::shared_ptr<const RunResult> Flow::sim_run(const AdcDesign& design,
                                               const SimulationOptions& opts) {
  return run_stage<RunResult>(
      ctx_, Stage::kSimRun, sim_run_key(design.spec(), opts),
      &approx_bytes_run, [&design, &opts]() {
        static thread_local msim::SimWorkspace ws;
        return std::make_shared<const RunResult>(design.simulate(opts, ws));
      });
}

NodeReport Flow::report(const AdcSpec& spec, const SimulationOptions& sim,
                        const synth::SynthesisOptions& synth_opts) {
  util::TraceSpan span(ctx_.trace, stage_name(Stage::kReport));
  NodeReport rep;
  auto syn = synthesis(spec, synth_opts);
  rep.synthesis = syn->clone();
  SimulationOptions with_wire = sim;
  with_wire.wire_cap_f = syn->routing.wire_cap_f;
  rep.run = *sim_run(spec, with_wire);
  rep.area_mm2 = syn->stats.die_area_m2 * 1e6;
  return rep;
}

MigratedDesign Flow::migrate(const AdcSpec& src_spec, double target_node_nm) {
  util::TraceSpan span(ctx_.trace, "migrate");
  AdcSpec target = src_spec;
  target.node_nm = target_node_nm;
  auto target_lib = tech_library(target);
  const DesignBundle src = netlist(src_spec);
  MigrationResult result = migrate_design(*src.design, *target_lib);
  span.note(std::to_string(result.exact_matches) + " exact, " +
            std::to_string(result.nearest_matches) + " nearest");
  return MigratedDesign{std::move(target_lib), std::move(result)};
}

}  // namespace vcoadc::core
