#include "core/flow.h"

#include <cmath>
#include <set>
#include <utility>

#include "core/artifact_serde.h"
#include "core/artifact_store.h"
#include "core/driver_impl.h"
#include "core/eval.h"
#include "core/serde.h"
#include "core/backend.h"
#include "msim/batched_modulator.h"
#include "msim/modulator.h"
#include "netlist/equivalence.h"
#include "netlist/generator.h"
#include "netlist/verilog_parser.h"
#include "netlist/verilog_writer.h"
#include "synth/net_db.h"
#include "util/strings.h"
#include "util/trace.h"

namespace vcoadc::core {

namespace {

using util::Diagnostic;
using util::Severity;

Diagnostic error_diag(const char* stage, std::string item,
                      std::string reason) {
  return Diagnostic{Severity::kError, stage, std::move(item),
                    std::move(reason)};
}

/// Splits a Design::validate() message ("module/inst: reason") into item
/// and reason, mirroring synth::FlowDiagnostic's convention.
Diagnostic netlist_problem_diag(const std::string& msg) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.stage = "netlist";
  const auto colon = msg.find(": ");
  if (colon != std::string::npos) {
    d.item = msg.substr(0, colon);
    d.reason = msg.substr(colon + 2);
  } else {
    d.reason = msg;
  }
  return d;
}

void hash_pvt(KeyHasher& h, const PvtCorner& pvt) {
  h.f64(pvt.process);
  h.f64(pvt.voltage);
  h.f64(pvt.temperature_k);
}

/// Spec fields that shape the library + netlist (structure only).
void hash_spec_structure(KeyHasher& h, const AdcSpec& spec) {
  h.tag("node_nm");
  h.f64(spec.node_nm);
  h.tag("num_slices");
  h.i64(spec.num_slices);
  h.tag("dac_fragments");
  h.i64(spec.dac_fragments);
}

/// Every result-affecting spec field (the SimRun key's basis).
void hash_spec_full(KeyHasher& h, const AdcSpec& spec) {
  hash_spec_structure(h, spec);
  h.tag("fs_hz");
  h.f64(spec.fs_hz);
  h.tag("bandwidth_hz");
  h.f64(spec.bandwidth_hz);
  h.tag("loop_gain");
  h.f64(spec.loop_gain);
  h.tag("vco_center_over_fs");
  h.f64(spec.vco_center_over_fs);
  h.tag("with_nonidealities");
  h.boolean(spec.with_nonidealities);
  h.tag("pvt");
  hash_pvt(h, spec.pvt);
  h.tag("seed");
  h.u64(spec.seed);
}

void hash_floorplan_opts(KeyHasher& h, const synth::SynthesisOptions& o) {
  h.tag("target_utilization");
  h.f64(o.target_utilization);
  h.tag("aspect_ratio");
  h.f64(o.aspect_ratio);
}

void hash_placement_opts(KeyHasher& h, const synth::SynthesisOptions& o) {
  h.tag("placer");
  h.i64(static_cast<int>(o.placer));
  h.tag("respect_power_domains");
  h.boolean(o.respect_power_domains);
  h.tag("barycenter_passes");
  h.i64(o.barycenter_passes);
  h.tag("refine_passes");
  h.i64(o.refine_passes);
  h.tag("seed");
  h.u64(o.seed);
}

// --- Approximate resident sizes for the cache stats. Estimates only; the
// cache bounds by entry count, these just make `--cache-stats` readable.

std::size_t approx_bytes_library(const netlist::CellLibrary& lib) {
  return sizeof(lib) + lib.cells().size() * 256;
}

std::size_t approx_bytes_bundle(const DesignBundle& b) {
  std::size_t n = sizeof(b);
  if (b.lib) n += approx_bytes_library(*b.lib);
  if (b.design) {
    const auto st = b.design->stats();
    n += static_cast<std::size_t>(st.total_instances) * 200;
  }
  return n;
}

std::size_t approx_bytes_flat(const std::vector<netlist::FlatInstance>& flat) {
  return flat.size() * 256;
}

std::size_t approx_bytes_floorplan(const synth::FloorplanStageResult& a) {
  return sizeof(a) + approx_bytes_flat(a.flat) +
         a.fp.regions.size() * sizeof(synth::PlacedRegion) +
         a.floorplan_spec.size();
}

std::size_t approx_bytes_placement(const synth::Placement& pl) {
  return sizeof(pl) + pl.cells.size() * sizeof(synth::PlacedCell);
}

std::size_t approx_bytes_synthesis(const synth::SynthesisResult& s) {
  std::size_t n = sizeof(s) + s.floorplan_spec.size();
  if (s.layout) {
    n += approx_bytes_flat(s.layout->flat()) +
         approx_bytes_placement(s.layout->placement());
  }
  n += s.routing.nets.size() * sizeof(synth::NetRoute);
  for (const auto& net : s.detailed_routing.nets) {
    n += sizeof(net);
    for (const auto& path : net.paths)
      n += path.size() * sizeof(synth::GridPoint);
  }
  n += s.drc.violations.size() * 128;
  return n;
}

std::size_t approx_bytes_hdl(const HdlEmitResult& a) {
  std::size_t n = sizeof(a) + a.verilog.size();
  if (a.lib) n += approx_bytes_library(*a.lib);
  if (a.parsed) {
    for (const netlist::Module& m : a.parsed->modules()) {
      n += m.instances().size() * 200;
    }
  }
  return n;
}

std::size_t approx_bytes_gate(const GateSimResult& g) {
  return sizeof(g) + (g.decoded.size() + g.decimated.size()) * sizeof(double);
}

std::size_t approx_bytes_run(const RunResult& r) {
  std::size_t n = sizeof(r);
  n += r.mod.output.size() * sizeof(double);
  n += r.mod.counts.size() * sizeof(int);
  for (const auto& bits : r.mod.slice_bits) n += bits.size() / 8;
  n += r.spectrum.freq_hz.size() * 3 * sizeof(double);
  n += r.idle_tones.size() * sizeof(dsp::IdleTone);
  return n;
}

/// Reports boundary diagnostics through the context: errors always land
/// (sink or stderr), warnings only when a sink is attached — a warning on
/// a healthy run must not spam stderr.
void report_diags(const ExecContext& ctx,
                  const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) {
      emit_diag(ctx, d);
    } else if (ctx.diag != nullptr) {
      ctx.diag->add(d);
    }
  }
}

/// True when the context's fault plan fires for this stage (test-only).
/// The firing stage corrupts its input before validation and must bypass
/// the artifact cache for the corrupted build.
bool fault_fires(const ExecContext& ctx, Stage stage) {
  return ctx.faults != nullptr && ctx.faults->consume(stage_name(stage));
}

/// Runs one memoized stage: wraps the lookup/build in a trace span and
/// falls back to a direct build when the context has no cache. When the
/// context carries an ArtifactStore and the stage a codec, a cache miss
/// first tries the disk tier (decode failures demote to a rebuild with a
/// warning), and a real build persists its canonical bytes — both happen
/// inside the cache's single-flight, so one process writes each record
/// once and waiters share the in-memory artifact.
template <typename T, typename BuildFn>
std::shared_ptr<const T> run_stage(const ExecContext& ctx, Stage stage,
                                   const CacheKey& key,
                                   std::size_t (*bytes_of)(const T&),
                                   const ArtifactCodec<T>* codec,
                                   BuildFn&& build) {
  util::TraceSpan span(ctx.trace, stage_name(stage));
  bool from_store = false;
  auto build_or_load = [&]() -> std::shared_ptr<const T> {
    if (ctx.store != nullptr && codec != nullptr) {
      std::vector<std::uint8_t> payload;
      if (ctx.store->load(key, codec->type_tag, codec->type_version,
                          &payload, ctx.diag)) {
        serde::Reader r(payload);
        if (std::shared_ptr<const T> loaded = codec->decode(r)) {
          from_store = true;
          return loaded;
        }
        ctx.store->note_decode_failure(key, codec->type_tag, ctx.diag);
      }
    }
    std::shared_ptr<const T> built = build();
    if (built != nullptr && ctx.store != nullptr && codec != nullptr) {
      serde::Writer w;
      codec->encode(*built, w);
      ctx.store->save(key, codec->type_tag, codec->type_version, w.bytes(),
                      ctx.diag);
    }
    return built;
  };
  std::shared_ptr<const T> value;
  bool hit = false;
  if (ctx.cache) {
    value = ctx.cache->get_or_build<T>(
        key, build_or_load,
        bytes_of ? std::function<std::size_t(const T&)>(bytes_of)
                 : std::function<std::size_t(const T&)>{},
        &hit);
  } else {
    value = build_or_load();
  }
  if (value) span.cache(hit, bytes_of ? bytes_of(*value) : sizeof(T));
  span.note("key=" + key.hex() + (from_store ? " src=store" : ""));
  return value;
}

/// Shared by the clean and fault paths of the HdlEmit stage: parses the
/// emitted text back over the bundle's library, validates the structure
/// and proves structural equivalence against the generated design — the
/// gate the emitted text must clear before it becomes the artifact of
/// record. Null with diagnostics (stage "hdl_emit") when any step fails.
std::shared_ptr<const HdlEmitResult> check_emitted_hdl(
    const ExecContext& ctx, const DesignBundle& bundle, std::string text) {
  netlist::Design parsed(bundle.lib.get());
  const netlist::ParseResult pr = netlist::parse_verilog(text, parsed);
  if (!pr.ok) {
    report_diags(ctx, {error_diag(
                          "hdl_emit", "line " + std::to_string(pr.line),
                          "emitted Verilog failed to re-parse: " + pr.error)});
    return nullptr;
  }
  parsed.set_top(bundle.design->top());
  std::vector<Diagnostic> diags;
  for (Diagnostic& d : validate_netlist(parsed)) {
    d.stage = "hdl_emit";  // the structure under test came from the text
    diags.push_back(std::move(d));
  }
  netlist::EquivalenceOptions eopts;
  eopts.match_drive = true;  // parse-back must be exact, not just functional
  const netlist::EquivalenceResult eq =
      netlist::check_equivalence(*bundle.design, parsed, eopts);
  if (!eq.equivalent) {
    for (const std::string& m : eq.mismatches) {
      diags.push_back(error_diag("hdl_emit", "", m));
    }
    if (eq.mismatches.empty()) {
      diags.push_back(error_diag(
          "hdl_emit", "",
          "emitted HDL is not equivalent to the generated design"));
    }
  }
  report_diags(ctx, diags);
  if (has_errors(diags) || !eq.equivalent) return nullptr;
  auto art = std::make_shared<HdlEmitResult>();
  art->verilog = std::move(text);
  art->top = bundle.design->top();
  art->lib = bundle.lib;
  art->parsed = std::make_shared<const netlist::Design>(std::move(parsed));
  art->instances_compared = eq.instances_compared;
  return art;
}

}  // namespace

bool has_errors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

std::vector<Diagnostic> validate_spec(const AdcSpec& spec) {
  std::vector<Diagnostic> out;
  for (const std::string& p : spec.validate()) {
    out.push_back(error_diag("spec", "", p));
  }
  return out;
}

std::vector<Diagnostic> validate_sim_options(const SimulationOptions& opts) {
  std::vector<Diagnostic> out;
  const std::size_t n = opts.n_samples;
  if (n < 16 || (n & (n - 1)) != 0) {
    out.push_back(error_diag(
        "sim_run", "n_samples",
        util::format("capture length %zu must be a power of two >= 16 "
                     "(the spectrum FFT requires it)",
                     n)));
  } else if (n > (std::size_t{1} << 26)) {
    out.push_back(error_diag(
        "sim_run", "n_samples",
        util::format("capture length %zu exceeds the 2^26 sample cap", n)));
  }
  if (!std::isfinite(opts.amplitude_dbfs)) {
    out.push_back(
        error_diag("sim_run", "amplitude_dbfs", "must be finite"));
  }
  if (!std::isfinite(opts.fin_target_hz) || opts.fin_target_hz < 0) {
    out.push_back(error_diag("sim_run", "fin_target_hz",
                             "must be finite and non-negative"));
  }
  if (!std::isfinite(opts.wire_cap_f) || opts.wire_cap_f < 0) {
    out.push_back(error_diag("sim_run", "wire_cap_f",
                             "must be finite and non-negative"));
  }
  return out;
}

std::vector<Diagnostic> validate_netlist(const netlist::Design& design) {
  std::vector<Diagnostic> out;
  if (design.modules().empty()) {
    out.push_back(error_diag("netlist", "", "design has no modules"));
    return out;
  }
  for (const std::string& p : design.validate()) {
    out.push_back(netlist_problem_diag(p));
  }
  const netlist::Module* top = design.find_module(design.top());
  if (top != nullptr && top->instances().empty()) {
    out.push_back(error_diag("netlist", design.top(),
                             "top module has no instances"));
  }
  for (const netlist::Module& mod : design.modules()) {
    // Duplicate instance names make flat paths ambiguous downstream.
    std::set<std::string> seen;
    std::set<std::string> used_nets;
    for (const netlist::Instance& inst : mod.instances()) {
      if (!seen.insert(inst.name).second) {
        out.push_back(error_diag("netlist", mod.name() + "/" + inst.name,
                                 "duplicate instance name"));
      }
      for (const auto& [pin, net] : inst.conn) used_nets.insert(net);
    }
    // Dangling nets are legal but suspicious — the usual symptom of a
    // generator emitting a group it never populated.
    for (const std::string& net : mod.nets()) {
      if (used_nets.count(net) == 0 && !netlist::is_supply_net(net)) {
        out.push_back(Diagnostic{Severity::kWarning, "netlist",
                                 mod.name() + "/" + net,
                                 "dangling net (declared but unconnected)"});
      }
    }
  }
  return out;
}

std::vector<Diagnostic> validate_synthesis_options(
    const synth::SynthesisOptions& opts) {
  std::vector<Diagnostic> out;
  if (!std::isfinite(opts.target_utilization) ||
      opts.target_utilization <= 0 || opts.target_utilization >= 1.0) {
    out.push_back(error_diag(
        "floorplan", "target_utilization",
        util::format("%g outside the open interval (0, 1)",
                     opts.target_utilization)));
  }
  if (!std::isfinite(opts.aspect_ratio) || opts.aspect_ratio <= 0) {
    out.push_back(error_diag("floorplan", "aspect_ratio",
                             "must be finite and positive"));
  }
  if (opts.barycenter_passes < 0 || opts.refine_passes < 0) {
    out.push_back(error_diag("placement", "passes",
                             "pass counts must be non-negative"));
  }
  return out;
}

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kTechLibrary:
      return "tech_library";
    case Stage::kNetlist:
      return "netlist";
    case Stage::kFloorplan:
      return "floorplan";
    case Stage::kPlacement:
      return "placement";
    case Stage::kRoute:
      return "route";
    case Stage::kSimRun:
      return "sim_run";
    case Stage::kHdlEmit:
      return "hdl_emit";
    case Stage::kGateSim:
      return "gate_sim";
    case Stage::kReport:
      return "report";
  }
  return "?";
}

CacheKey tech_library_key(const AdcSpec& spec) {
  KeyHasher h;
  h.u64(kKeyFormatVersion);
  h.tag("stage:tech_library");
  h.tag("node_nm");
  h.f64(spec.node_nm);
  return h.digest();
}

CacheKey netlist_key(const AdcSpec& spec) {
  KeyHasher h;
  h.u64(kKeyFormatVersion);
  h.tag("stage:netlist");
  hash_spec_structure(h, spec);
  return h.digest();
}

CacheKey floorplan_key(const AdcSpec& spec,
                       const synth::SynthesisOptions& opts) {
  const CacheKey up = netlist_key(spec);
  KeyHasher h;
  h.u64(kKeyFormatVersion);
  h.tag("stage:floorplan");
  h.u64(up.lo);
  h.u64(up.hi);
  hash_floorplan_opts(h, opts);
  return h.digest();
}

CacheKey placement_key(const AdcSpec& spec,
                       const synth::SynthesisOptions& opts) {
  const CacheKey up = floorplan_key(spec, opts);
  KeyHasher h;
  h.u64(kKeyFormatVersion);
  h.tag("stage:placement");
  h.u64(up.lo);
  h.u64(up.hi);
  hash_placement_opts(h, opts);
  return h.digest();
}

CacheKey synthesis_key(const AdcSpec& spec,
                       const synth::SynthesisOptions& opts) {
  const CacheKey up = placement_key(spec, opts);
  KeyHasher h;
  h.u64(kKeyFormatVersion);
  h.tag("stage:route");
  h.u64(up.lo);
  h.u64(up.hi);
  h.tag("detailed_route");
  h.boolean(opts.detailed_route);
  return h.digest();
}

CacheKey sim_run_key(const AdcSpec& spec, const SimulationOptions& opts) {
  // Canonicalize the per-run overrides into the spec: simulate() applies
  // them exactly this way, so (spec, seed-override) and (spec-with-seed,
  // no override) are the same run and must share one key.
  AdcSpec sp = spec;
  if (opts.seed != 0) sp.seed = opts.seed;
  if (opts.pvt.has_value()) sp.pvt = *opts.pvt;
  KeyHasher h;
  h.u64(kKeyFormatVersion);
  h.tag("stage:sim_run");
  hash_spec_full(h, sp);
  h.tag("n_samples");
  h.u64(opts.n_samples);
  h.tag("amplitude_dbfs");
  h.f64(opts.amplitude_dbfs);
  h.tag("fin_target_hz");
  h.f64(opts.fin_target_hz);
  h.tag("comparator");
  h.i64(static_cast<int>(opts.comparator));
  h.tag("dac");
  h.i64(static_cast<int>(opts.dac));
  h.tag("record_bits");
  h.boolean(opts.record_bits);
  h.tag("wire_cap_f");
  h.f64(opts.wire_cap_f);
  return h.digest();
}

CacheKey hdl_emit_key(const AdcSpec& spec) {
  const CacheKey up = netlist_key(spec);
  KeyHasher h;
  h.u64(kKeyFormatVersion);
  h.tag("stage:hdl_emit");
  h.u64(up.lo);
  h.u64(up.hi);
  return h.digest();
}

CacheKey gate_sim_key(const AdcSpec& spec, const GateSimOptions& opts) {
  // Canonicalize exactly as Flow::gate_sim runs it: the slice replay needs
  // the behavioral reference's per-slice bitstreams, so record_bits is
  // always on — (opts, record_bits=false) and (opts, record_bits=true) are
  // the same stage run and must share a key.
  SimulationOptions sim = opts.sim;
  sim.record_bits = true;
  const CacheKey hdl = hdl_emit_key(spec);
  const CacheKey ref = sim_run_key(spec, sim);
  KeyHasher h;
  h.u64(kKeyFormatVersion);
  h.tag("stage:gate_sim");
  h.u64(hdl.lo);
  h.u64(hdl.hi);
  h.u64(ref.lo);
  h.u64(ref.hi);
  h.tag("ring_period_tol");
  h.f64(opts.ring_period_tol);
  h.tag("top");
  h.str(opts.top);
  return h.digest();
}

synth::SynthesisOptions Flow::exec_opts(
    const synth::SynthesisOptions& opts) const {
  synth::SynthesisOptions o = opts;
  // ExecContext knobs only — neither may appear in a cache key.
  o.threads = ctx_.threads;
  // Flow spans cover the stage boundaries; the synth-internal spans are
  // for direct synth::synthesize() callers.
  o.trace = nullptr;
  return o;
}

std::shared_ptr<const netlist::CellLibrary> Flow::tech_library(
    const AdcSpec& spec) {
  AdcSpec sp = spec;
  if (fault_fires(ctx_, Stage::kTechLibrary)) sp.node_nm = -12345.0;
  const auto diags = validate_spec(sp);
  report_diags(ctx_, diags);
  if (has_errors(diags)) return nullptr;
  return run_stage<netlist::CellLibrary>(
      ctx_, Stage::kTechLibrary, tech_library_key(sp), &approx_bytes_library,
      &cell_library_codec(), [&sp]() {
        const tech::TechNode node = sp.tech_node();
        auto lib = std::make_shared<netlist::CellLibrary>(
            netlist::make_standard_library(node));
        netlist::add_resistor_cells(*lib, node);
        return std::shared_ptr<const netlist::CellLibrary>(std::move(lib));
      });
}

DesignBundle Flow::netlist(const AdcSpec& spec) {
  const auto spec_diags = validate_spec(spec);
  report_diags(ctx_, spec_diags);
  if (has_errors(spec_diags)) return {};
  if (fault_fires(ctx_, Stage::kNetlist)) {
    // Injected corruption: generate the design fresh (never through the
    // cache), then break it the way a buggy generator or hand-edited
    // netlist would — an instance of an unknown master on an undeclared
    // net. The structural validator must catch it.
    auto lib = tech_library(spec);
    if (lib == nullptr) return {};
    netlist::GeneratorConfig gen;
    gen.num_slices = spec.num_slices;
    gen.dac_fragments = spec.dac_fragments;
    netlist::Design bad = netlist::build_adc_design(*lib, gen);
    if (netlist::Module* top = bad.find_module(bad.top())) {
      netlist::Instance evil;
      evil.name = "fault_injected";
      evil.master = "CELL_DOES_NOT_EXIST";
      evil.conn["A"] = "net_does_not_exist";
      top->add_instance(std::move(evil));
    } else {
      bad.set_top("<fault_injected>");
    }
    const auto diags = validate_netlist(bad);
    report_diags(ctx_, diags);
    return {};
  }
  auto bundle = run_stage<DesignBundle>(
      ctx_, Stage::kNetlist, netlist_key(spec), &approx_bytes_bundle,
      &design_bundle_codec(),
      [this, &spec]() -> std::shared_ptr<const DesignBundle> {
        DesignBundle b;
        b.lib = tech_library(spec);
        if (b.lib == nullptr) return nullptr;
        netlist::GeneratorConfig gen;
        gen.num_slices = spec.num_slices;
        gen.dac_fragments = spec.dac_fragments;
        b.design = std::make_shared<const netlist::Design>(
            netlist::build_adc_design(*b.lib, gen));
        const auto diags = validate_netlist(*b.design);
        report_diags(ctx_, diags);
        if (has_errors(diags)) return nullptr;  // never cached
        return std::make_shared<const DesignBundle>(std::move(b));
      });
  return bundle ? *bundle : DesignBundle{};
}

std::shared_ptr<const synth::FloorplanStageResult> Flow::floorplan(
    const AdcSpec& spec, const synth::SynthesisOptions& opts) {
  const auto opt_diags = validate_synthesis_options(opts);
  report_diags(ctx_, opt_diags);
  if (has_errors(opt_diags)) return nullptr;
  const synth::SynthesisOptions o = exec_opts(opts);
  if (fault_fires(ctx_, Stage::kFloorplan)) {
    // Injected corruption: the stage's input design loses its top module,
    // so the structural pre-validation must reject it. Cache bypassed.
    const DesignBundle bundle = netlist(spec);
    if (bundle.design == nullptr) return nullptr;
    netlist::Design bad = *bundle.design;
    bad.set_top("<fault_injected>");
    std::vector<synth::FlowDiagnostic> fdiags;
    (void)synth::run_floorplan_stage(bad, o, fdiags);
    std::vector<Diagnostic> diags;
    for (const auto& fd : fdiags) {
      diags.push_back(error_diag("floorplan", fd.item,
                                 fd.stage + ": " + fd.reason));
    }
    if (diags.empty()) {
      diags.push_back(error_diag("floorplan", "", "injected fault"));
    }
    report_diags(ctx_, diags);
    return nullptr;
  }
  auto art = run_stage<synth::FloorplanStageResult>(
      ctx_, Stage::kFloorplan, floorplan_key(spec, opts),
      &approx_bytes_floorplan, &floorplan_codec(),
      [this, &spec,
       &o]() -> std::shared_ptr<const synth::FloorplanStageResult> {
        const DesignBundle bundle = netlist(spec);
        if (bundle.design == nullptr) return nullptr;
        auto art = std::make_shared<synth::FloorplanStageResult>();
        std::vector<synth::FlowDiagnostic> diags;
        *art = synth::run_floorplan_stage(*bundle.design, o, diags);
        if (!diags.empty()) {
          std::vector<Diagnostic> out;
          for (const auto& fd : diags) {
            out.push_back(error_diag("floorplan", fd.item,
                                     fd.stage + ": " + fd.reason));
          }
          report_diags(ctx_, out);
          return nullptr;  // never cached
        }
        art->flat.shrink_to_fit();
        // The flat instances point into the bundle's StdCells; pin the
        // bundle so the artifact survives netlist-artifact eviction (and
        // cache-less flows, where the bundle would otherwise die here).
        art->owner = std::make_shared<const DesignBundle>(bundle);
        return std::shared_ptr<const synth::FloorplanStageResult>(
            std::move(art));
      });
  // Post-conditions: a floorplan that cannot host placement is a failure
  // here, not a crash two stages later.
  if (art != nullptr) {
    std::vector<Diagnostic> post;
    if (art->flat.empty()) {
      post.push_back(error_diag("floorplan", "", "no leaf instances"));
    }
    if (art->fp.regions.empty()) {
      post.push_back(error_diag("floorplan", "", "no placement regions"));
    }
    if (!(std::isfinite(art->fp.die.w) && std::isfinite(art->fp.die.h) &&
          art->fp.die.w > 0 && art->fp.die.h > 0)) {
      post.push_back(error_diag("floorplan", "die",
                                "degenerate die dimensions"));
    }
    if (!post.empty()) {
      report_diags(ctx_, post);
      return nullptr;
    }
  }
  return art;
}

std::shared_ptr<const synth::Placement> Flow::placement(
    const AdcSpec& spec, const synth::SynthesisOptions& opts) {
  const synth::SynthesisOptions o = exec_opts(opts);
  if (fault_fires(ctx_, Stage::kPlacement)) {
    // Injected corruption: the upstream floorplan artifact arrives with no
    // leaf instances; the pre-validation must reject it. Cache bypassed.
    synth::FloorplanStageResult bad;
    if (auto good = floorplan(spec, opts)) {
      bad.fp = good->fp;
      bad.floorplan_spec = good->floorplan_spec;  // flat left empty
    }
    report_diags(ctx_, {error_diag("placement", "",
                                   "floorplan artifact has no instances")});
    return nullptr;
  }
  return run_stage<synth::Placement>(
      ctx_, Stage::kPlacement, placement_key(spec, opts),
      &approx_bytes_placement, &placement_codec(),
      [this, &spec, &opts, &o]() -> std::shared_ptr<const synth::Placement> {
        auto art = floorplan(spec, opts);
        if (art == nullptr) return nullptr;  // upstream already reported
        // The NetDb borrows pin-name storage from `flat`, so it is rebuilt
        // over the cached artifact rather than cached itself.
        const synth::NetDb db(art->flat);
        auto pl = std::make_shared<synth::Placement>(
            synth::run_placement_stage(*art, o, db));
        // Post-conditions: one placed cell per flat instance, finite
        // coordinates — anything else poisons routing and DRC downstream.
        // Checked on build; a cache hit was validated when it was built.
        std::vector<Diagnostic> post;
        if (pl->cells.size() != art->flat.size()) {
          post.push_back(error_diag(
              "placement", "",
              util::format("placed %zu of %zu instances", pl->cells.size(),
                           art->flat.size())));
        }
        for (const synth::PlacedCell& c : pl->cells) {
          if (!(std::isfinite(c.rect.x) && std::isfinite(c.rect.y))) {
            const bool known =
                c.flat_index >= 0 &&
                static_cast<std::size_t>(c.flat_index) < art->flat.size();
            post.push_back(
                error_diag("placement",
                           known ? art->flat[c.flat_index].path : "?",
                           "non-finite placement coordinates"));
            break;
          }
        }
        if (!post.empty()) {
          report_diags(ctx_, post);
          return nullptr;  // never cached
        }
        return pl;
      });
}

std::shared_ptr<const synth::SynthesisResult> Flow::synthesis(
    const AdcSpec& spec, const synth::SynthesisOptions& opts) {
  const synth::SynthesisOptions o = exec_opts(opts);
  if (fault_fires(ctx_, Stage::kRoute)) {
    // Injected corruption: the placement loses a cell, so the route
    // stage's pre-validation (size match) must reject it. Cache bypassed.
    auto art = floorplan(spec, opts);
    auto pl = placement(spec, opts);
    if (art == nullptr || pl == nullptr) return nullptr;
    synth::Placement bad = *pl;
    if (!bad.cells.empty()) bad.cells.pop_back();
    report_diags(ctx_,
                 {error_diag("route", "",
                             util::format(
                                 "placement covers %zu of %zu instances",
                                 bad.cells.size(), art->flat.size()))});
    return nullptr;
  }
  return run_stage<synth::SynthesisResult>(
      ctx_, Stage::kRoute, synthesis_key(spec, opts), &approx_bytes_synthesis,
      &synthesis_codec(),
      [this, &spec, &opts,
       &o]() -> std::shared_ptr<const synth::SynthesisResult> {
        auto art = floorplan(spec, opts);
        if (art == nullptr) return nullptr;  // upstream already reported
        auto pl = placement(spec, opts);
        if (pl == nullptr) return nullptr;
        if (pl->cells.size() != art->flat.size()) {
          report_diags(
              ctx_, {error_diag("route", "",
                                util::format(
                                    "placement covers %zu of %zu instances",
                                    pl->cells.size(), art->flat.size()))});
          return nullptr;
        }
        const synth::NetDb db(art->flat);
        return std::make_shared<const synth::SynthesisResult>(
            synth::run_route_stage(*art, *pl, o, db));
      });
}

std::shared_ptr<const RunResult> Flow::sim_run(const AdcSpec& spec,
                                               const SimulationOptions& opts) {
  SimulationOptions o = opts;
  if (fault_fires(ctx_, Stage::kSimRun)) {
    // Injected corruption: a capture length no FFT can take. The option
    // validator must reject it; the cache is bypassed (the validator fails
    // before the lookup).
    o.n_samples = 3;
  }
  auto diags = validate_spec(spec);
  for (Diagnostic& d : validate_sim_options(o)) diags.push_back(std::move(d));
  report_diags(ctx_, diags);
  if (has_errors(diags)) return nullptr;
  return run_stage<RunResult>(
      ctx_, Stage::kSimRun, sim_run_key(spec, o), &approx_bytes_run,
      &run_result_codec(),
      [this, &spec, &o]() -> std::shared_ptr<const RunResult> {
        const AdcDesign design(spec, ctx_);
        if (!design.ok()) return nullptr;  // ctor already reported
        static thread_local msim::SimWorkspace ws;
        return std::make_shared<const RunResult>(design.simulate(o, ws));
      });
}

std::shared_ptr<const RunResult> Flow::sim_run(const AdcDesign& design,
                                               const SimulationOptions& opts) {
  SimulationOptions o = opts;
  if (fault_fires(ctx_, Stage::kSimRun)) o.n_samples = 3;
  if (!design.ok()) {
    report_diags(ctx_, {error_diag("sim_run", "",
                                   "design was not built (invalid spec)")});
    return nullptr;
  }
  const auto diags = validate_sim_options(o);
  report_diags(ctx_, diags);
  if (has_errors(diags)) return nullptr;
  return run_stage<RunResult>(
      ctx_, Stage::kSimRun, sim_run_key(design.spec(), o),
      &approx_bytes_run, &run_result_codec(), [&design, &o]() {
        static thread_local msim::SimWorkspace ws;
        return std::make_shared<const RunResult>(design.simulate(o, ws));
      });
}

std::vector<std::shared_ptr<const RunResult>> Flow::sim_run_batch(
    const AdcDesign& design, const SimulationOptions& opts,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<std::shared_ptr<const RunResult>> out;
  out.reserve(seeds.size());
  // Fault plans corrupt per-stage inputs; route every entry through the
  // scalar stage so each draw consumes its own fault trigger exactly as an
  // unbatched loop would.
  if (ctx_.faults != nullptr) {
    for (std::uint64_t seed : seeds) {
      SimulationOptions o = opts;
      o.seed = seed;
      out.push_back(sim_run(design, o));
    }
    return out;
  }
  if (!design.ok()) {
    report_diags(ctx_, {error_diag("sim_run", "",
                                   "design was not built (invalid spec)")});
    out.assign(seeds.size(), nullptr);
    return out;
  }
  {
    const auto diags = validate_sim_options(opts);
    report_diags(ctx_, diags);
    if (has_errors(diags)) {
      out.assign(seeds.size(), nullptr);
      return out;
    }
  }
  // Lazy group build: the first cold entry simulates all lanes in one
  // batched run; warm entries never reach the builder. Results move out of
  // the group one lane at a time (each index is built at most once).
  struct Group {
    std::vector<RunResult> results;
    bool built = false;
  };
  auto group = std::make_shared<Group>();
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    SimulationOptions o = opts;
    o.seed = seeds[k];
    out.push_back(run_stage<RunResult>(
        ctx_, Stage::kSimRun, sim_run_key(design.spec(), o),
        &approx_bytes_run, &run_result_codec(),
        [&design, &opts, &seeds, &group, k]() {
          if (!group->built) {
            static thread_local msim::BatchedWorkspace ws;
            group->results = design.simulate_batch(opts, seeds, ws);
            group->built = true;
          }
          return std::make_shared<const RunResult>(
              std::move(group->results[k]));
        }));
  }
  return out;
}

std::vector<std::shared_ptr<const RunResult>> Flow::sim_run_batch(
    const AdcDesign& design,
    const std::vector<SimulationOptions>& opts_list) {
  std::vector<std::shared_ptr<const RunResult>> out;
  out.reserve(opts_list.size());
  // Same fault-plan policy as the seed-batch overload: scalar stages so
  // each entry consumes its own fault trigger.
  if (ctx_.faults != nullptr) {
    for (const SimulationOptions& o : opts_list) {
      out.push_back(sim_run(design, o));
    }
    return out;
  }
  if (!design.ok()) {
    report_diags(ctx_, {error_diag("sim_run", "",
                                   "design was not built (invalid spec)")});
    out.assign(opts_list.size(), nullptr);
    return out;
  }
  for (const SimulationOptions& o : opts_list) {
    const auto diags = validate_sim_options(o);
    report_diags(ctx_, diags);
    if (has_errors(diags)) {
      out.assign(opts_list.size(), nullptr);
      return out;
    }
  }
  // Lazy group build, as in the seed-batch overload: per-entry keys are
  // the scalar sim_run() keys, so a warm sweep never touches a modulator
  // and a cold one simulates all lanes in one batched run.
  struct Group {
    std::vector<RunResult> results;
    bool built = false;
  };
  auto group = std::make_shared<Group>();
  for (std::size_t k = 0; k < opts_list.size(); ++k) {
    out.push_back(run_stage<RunResult>(
        ctx_, Stage::kSimRun, sim_run_key(design.spec(), opts_list[k]),
        &approx_bytes_run, &run_result_codec(),
        [&design, &opts_list, &group, k]() {
          if (!group->built) {
            static thread_local msim::BatchedWorkspace ws;
            group->results = design.simulate_batch(opts_list, ws);
            group->built = true;
          }
          return std::make_shared<const RunResult>(
              std::move(group->results[k]));
        }));
  }
  return out;
}

std::shared_ptr<const HdlEmitResult> Flow::hdl_emit(const AdcSpec& spec) {
  const auto spec_diags = validate_spec(spec);
  report_diags(ctx_, spec_diags);
  if (has_errors(spec_diags)) return nullptr;
  if (fault_fires(ctx_, Stage::kHdlEmit)) {
    // Injected corruption: the emitted text loses a gate — the first
    // comparator NOR3 degrades to an inverter, the way a bad merge of a
    // hand-edited netlist would. The re-parse + LEC gate must catch it;
    // the corrupted text is built outside the cache and never saved.
    util::TraceSpan span(ctx_.trace, stage_name(Stage::kHdlEmit));
    const DesignBundle bundle = netlist(spec);
    if (bundle.design == nullptr) return nullptr;
    std::string text = netlist::write_verilog(*bundle.design);
    const std::size_t pos = text.find("NOR3X4");
    if (pos != std::string::npos) text.replace(pos, 6, "INVX1");
    if (check_emitted_hdl(ctx_, bundle, std::move(text)) != nullptr) {
      report_diags(ctx_, {error_diag("hdl_emit", "",
                                     "injected fault was not caught")});
    }
    return nullptr;
  }
  return run_stage<HdlEmitResult>(
      ctx_, Stage::kHdlEmit, hdl_emit_key(spec), &approx_bytes_hdl,
      &hdl_emit_codec(),
      [this, &spec]() -> std::shared_ptr<const HdlEmitResult> {
        const DesignBundle bundle = netlist(spec);
        if (bundle.design == nullptr) return nullptr;  // already reported
        return check_emitted_hdl(ctx_, bundle,
                                 netlist::write_verilog(*bundle.design));
      });
}

std::shared_ptr<const GateSimResult> Flow::gate_sim(
    const AdcSpec& spec, const GateSimOptions& opts) {
  GateSimOptions o = opts;
  o.sim.record_bits = true;  // the slice replay consumes the bitstreams
  if (fault_fires(ctx_, Stage::kGateSim)) {
    // Injected corruption: the requested top module does not exist in the
    // emitted design; resolution must reject it before the cache lookup.
    o.top = "<fault_injected>";
  }
  auto diags = validate_spec(spec);
  for (Diagnostic& d : validate_sim_options(o.sim)) {
    diags.push_back(std::move(d));
  }
  if (!std::isfinite(o.ring_period_tol) || o.ring_period_tol <= 0) {
    diags.push_back(error_diag("gate_sim", "ring_period_tol",
                               "must be finite and positive"));
  }
  report_diags(ctx_, diags);
  if (has_errors(diags)) return nullptr;
  auto hdl = hdl_emit(spec);
  if (hdl == nullptr) return nullptr;  // upstream already reported
  if (o.top.empty()) o.top = hdl->parsed->top();
  if (hdl->parsed->find_module(o.top) == nullptr) {
    report_diags(ctx_,
                 {error_diag("gate_sim", o.top,
                             "unresolvable top module in the emitted design")});
    return nullptr;  // before the cache lookup: a bad top never probes it
  }
  return run_stage<GateSimResult>(
      ctx_, Stage::kGateSim, gate_sim_key(spec, o), &approx_bytes_gate,
      &gate_sim_codec(),
      [this, &spec, &o, &hdl]() -> std::shared_ptr<const GateSimResult> {
        auto behavioral = sim_run(spec, o.sim);
        if (behavioral == nullptr) return nullptr;
        std::vector<Diagnostic> gdiags;
        auto res = run_gate_level_signoff(*hdl->parsed, spec, *behavioral,
                                          o, &gdiags);
        report_diags(ctx_, gdiags);
        return res;  // null on a failed sign-off — never cached
      });
}

std::vector<double> Flow::decoded_stream(const AdcSpec& spec,
                                         const SimulationOptions& sim,
                                         SimBackend backend) {
  if (backend == SimBackend::kGateLevel) {
    GateSimOptions o;
    o.sim = sim;
    auto gate = gate_sim(spec, o);
    return gate != nullptr ? gate->decimated : std::vector<double>{};
  }
  auto run = sim_run(spec, sim);
  if (run == nullptr) return {};
  return DigitalBackend(spec).process(run->mod.output);
}

NodeReport Flow::report(const AdcSpec& spec, const SimulationOptions& sim,
                        const synth::SynthesisOptions& synth_opts) {
  util::TraceSpan span(ctx_.trace, stage_name(Stage::kReport));
  NodeReport rep;
  AdcSpec sp = spec;
  if (fault_fires(ctx_, Stage::kReport)) {
    // Injected corruption: the assembled report's spec goes out of range;
    // the spec validator at the first pulled stage must reject it.
    sp.num_slices = -7;
  }
  auto syn = synthesis(sp, synth_opts);
  if (syn == nullptr) return rep;  // diagnostics already reported;
                                   // rep.complete stays false
  rep.synthesis = syn->clone();
  SimulationOptions with_wire = sim;
  with_wire.wire_cap_f = syn->routing.wire_cap_f;
  auto run = sim_run(sp, with_wire);
  if (run == nullptr) return NodeReport{};
  rep.run = *run;
  rep.area_mm2 = syn->stats.die_area_m2 * 1e6;
  rep.complete = true;
  return rep;
}

MigratedDesign detail::migrate_impl(const ExecContext& ctx,
                                    const AdcSpec& src_spec,
                                    double target_node_nm) {
  util::TraceSpan span(ctx.trace, "migrate");
  Flow flow(ctx);
  AdcSpec target = src_spec;
  target.node_nm = target_node_nm;
  if (ctx.faults != nullptr && ctx.faults->consume("migrate")) {
    // Injected corruption: a target node no library exists for.
    target.node_nm = -1.0;
  }
  auto target_lib = flow.tech_library(target);
  const DesignBundle src = flow.netlist(src_spec);
  if (target_lib == nullptr || src.design == nullptr) {
    // Upstream stages already reported why; hand back an empty migration
    // (Design is not default-constructible, so build it over nothing).
    MigrationResult empty{netlist::Design(nullptr), {}, 0, 0, {}};
    return MigratedDesign{nullptr, std::move(empty)};
  }
  MigrationResult result = migrate_design(*src.design, *target_lib);
  span.note(std::to_string(result.exact_matches) + " exact, " +
            std::to_string(result.nearest_matches) + " nearest");
  return MigratedDesign{std::move(target_lib), std::move(result)};
}

MigratedDesign Flow::migrate(const AdcSpec& src_spec, double target_node_nm) {
  EvalRequest req;
  req.kind = EvalKind::kMigrate;
  req.spec = src_spec;
  req.migrate_target_node_nm = target_node_nm;
  EvalResponse resp = evaluate(req, ctx_);
  if (resp.migrated != nullptr) return *resp.migrated;
  MigrationResult empty{netlist::Design(nullptr), {}, 0, 0, {}};
  return MigratedDesign{nullptr, std::move(empty)};
}

}  // namespace vcoadc::core
