// Internal seam between core::evaluate() and the driver bodies.
//
// The public driver functions (monte_carlo_sndr, corner_sweep,
// generate_datasheet, optimize_spec, Flow::migrate) are thin wrappers over
// evaluate(); the actual work lives in these detail:: functions, which
// take the authoritative ExecContext explicitly — no per-options exec
// copies, no deprecated thread forwarders. Not installed API: only eval.cpp
// and the driver translation units include this.
#pragma once

#include "core/datasheet.h"
#include "core/flow.h"
#include "core/monte_carlo.h"
#include "core/optimizer.h"

namespace vcoadc::core::detail {

/// Body of monte_carlo_sndr; `opts.exec` is ignored in favor of `ctx`.
MonteCarloResult monte_carlo_impl(const ExecContext& ctx,
                                  const AdcDesign& design,
                                  const MonteCarloOptions& opts);

/// Body of corner_sweep over an already-built design. `batch_width`
/// follows the MonteCarloOptions convention: 0 = host-preferred SIMD lane
/// width, 1 = scalar per-corner stages, 2/4/8 = forced width; corners are
/// partitioned into supported-width groups that run through the
/// heterogeneous batched engine (results bit-identical at every setting).
std::vector<CornerResult> corner_sweep_impl(const ExecContext& ctx,
                                            const AdcDesign& design,
                                            std::size_t n_samples,
                                            int batch_width);

/// Body of generate_datasheet; `opts.exec` is ignored in favor of `ctx`.
Datasheet datasheet_impl(const ExecContext& ctx, const AdcSpec& spec,
                         const DatasheetOptions& opts);

/// Body of optimize_spec; `opts.exec` is ignored in favor of `ctx`.
OptimizeResult optimize_impl(const ExecContext& ctx,
                             const OptimizeTarget& target,
                             const OptimizeOptions& opts);

/// Body of Flow::migrate (defined in flow.cpp with the other stages).
MigratedDesign migrate_impl(const ExecContext& ctx, const AdcSpec& src_spec,
                            double target_node_nm);

}  // namespace vcoadc::core::detail
