#include "core/sim_backend.h"

#include <cmath>
#include <utility>

#include "core/backend.h"
#include "netlist/logic_sim.h"
#include "util/strings.h"

namespace vcoadc::core {

namespace {

using netlist::Logic;
using util::Diagnostic;
using util::Severity;

Diagnostic gate_error(std::string item, std::string reason) {
  return Diagnostic{Severity::kError, "gate_sim", std::move(item),
                    std::move(reason)};
}

/// One comparator clock cycle: reset (CLK high forces both NOR3 outputs
/// low), then decide (CLK low lets the INP/INM side regenerate and the
/// NOR2 latch capture). Mirrors the Table-1 stimulus of
/// examples/gate_level_verification.cpp.
void comparator_cycle(netlist::LogicSim& sim, Logic inp, Logic inm) {
  sim.set("INP", inp);
  sim.set("INM", inm);
  sim.set("CLK", Logic::k1);
  sim.settle(sim.now() + 1e-9);
  sim.set("CLK", Logic::k0);
  sim.settle(sim.now() + 1e-9);
}

/// Table-1 decide/latch truth table: Q must follow INP through a 1/0/1
/// sequence (the middle step proves decide overrides the latched state,
/// the last that the latch was not stuck).
bool check_comparator(const netlist::Design& parsed,
                      const tech::TechNode& node,
                      std::vector<Diagnostic>* diags,
                      std::uint64_t* transitions) {
  netlist::Design cmp = parsed;
  cmp.set_top("comparator");
  if (cmp.find_module("comparator") == nullptr) {
    diags->push_back(gate_error(
        "comparator", "emitted design has no comparator module"));
    return false;
  }
  netlist::LogicSim sim(cmp, node);
  bool ok = true;
  const Logic want[3] = {Logic::k1, Logic::k0, Logic::k1};
  for (int step = 0; step < 3; ++step) {
    const Logic inp = want[step];
    comparator_cycle(sim, inp, netlist::logic_not(inp));
    const Logic q = sim.get("Q");
    const Logic qb = sim.get("QB");
    if (q != inp || qb != netlist::logic_not(inp)) {
      diags->push_back(gate_error(
          "comparator",
          util::format("decide step %d: INP=%c gave Q=%c QB=%c", step,
                       to_char(inp), to_char(q), to_char(qb))));
      ok = false;
    }
  }
  *transitions += sim.transition_count();
  return ok;
}

/// Kicks ring 1 into its oscillating state and measures the period on the
/// first tap, exactly as the print-only demo did: the half-period is the
/// spacing of consecutive edges, averaged over the last two full cycles.
bool check_ring(const netlist::Design& parsed, const AdcSpec& spec,
                const std::string& top, const tech::TechNode& node,
                double tol, GateSimResult* out,
                std::vector<Diagnostic>* diags) {
  netlist::Design ring = parsed;
  ring.set_top(top);
  netlist::LogicSim sim(ring, node);
  for (int i = 0; i < spec.num_slices; ++i) {
    const std::string p = "R1P_" + std::to_string(i);
    const std::string n = "R1N_" + std::to_string(i);
    if (!sim.has_net(p) || !sim.has_net(n)) {
      diags->push_back(gate_error(
          top, util::format("no ring tap nets %s/%s under this top",
                            p.c_str(), n.c_str())));
      return false;
    }
    sim.set(p, Logic::k0);
    sim.set(n, Logic::k1);
  }
  std::vector<double> edges;
  sim.on_change("R1P_0", [&](double t, Logic) { edges.push_back(t); });
  const double pred = predicted_ring_period_s(node, spec.num_slices);
  // Enough window for several cycles at any slice count (the demo's fixed
  // 300 ps only covers small rings).
  sim.run_until(std::max(3e-10, 8.0 * pred));
  out->transitions += sim.transition_count();
  out->ring_period_pred_s = pred;
  if (edges.size() <= 4) {
    diags->push_back(gate_error(
        top, util::format("ring did not oscillate (%zu edges observed)",
                          edges.size())));
    return false;
  }
  out->ring_period_s = (edges.back() - edges[edges.size() - 5]) / 2.0;
  if (!(std::abs(out->ring_period_s - pred) <= tol * pred)) {
    diags->push_back(gate_error(
        top, util::format("ring period %.3g s is outside %.0f%% of the "
                          "stage-delay prediction %.3g s",
                          out->ring_period_s, tol * 100.0, pred)));
    return false;
  }
  return true;
}

/// Replays the behavioral per-slice bitstreams through the gate-level
/// slice: for each (sample, slice) the ring-tap inputs are driven so the
/// two retimed comparator decisions XOR to the recorded bit iff the
/// emitted slice datapath (VCO stage -> buffer -> comparators -> XOR) is
/// structurally and functionally intact. BOP settles to IP (two
/// inversions) and BOP2 to IP2, so driving IP = bit XOR phase, IP2 = phase
/// makes DOUT = bit for a correct netlist — while a swapped gate, dropped
/// inversion or miswired pin shows up as a decode mismatch.
bool replay_slices(const netlist::Design& parsed, const AdcSpec& spec,
                   const RunResult& behavioral, const tech::TechNode& node,
                   GateSimResult* out, std::vector<Diagnostic>* diags) {
  netlist::Design slice = parsed;
  slice.set_top("ADC_slice");
  if (slice.find_module("ADC_slice") == nullptr) {
    diags->push_back(
        gate_error("ADC_slice", "emitted design has no ADC_slice module"));
    return false;
  }
  const int n_slices = spec.num_slices;
  const std::size_t n_samples = behavioral.mod.output.size();
  if (behavioral.mod.slice_bits.size() != static_cast<std::size_t>(n_slices)) {
    diags->push_back(gate_error(
        "slice_bits",
        util::format("behavioral reference recorded %zu slice streams, "
                     "spec has %d slices",
                     behavioral.mod.slice_bits.size(), n_slices)));
    return false;
  }
  for (const auto& bits : behavioral.mod.slice_bits) {
    if (bits.size() != n_samples) {
      diags->push_back(gate_error(
          "slice_bits", "behavioral slice streams are shorter than the "
                        "output stream"));
      return false;
    }
  }

  netlist::LogicSim sim(slice, node);
  const auto drive = [&](const char* p, const char* n, bool level) {
    sim.set(p, level ? Logic::k1 : Logic::k0);
    sim.set(n, level ? Logic::k0 : Logic::k1);
  };
  out->decoded.reserve(n_samples);
  for (std::size_t n = 0; n < n_samples; ++n) {
    int count = 0;
    for (int i = 0; i < n_slices; ++i) {
      const bool d = behavioral.mod.slice_bits[i][n];
      const bool phase = ((n + static_cast<std::size_t>(i)) & 1) != 0;
      drive("IP", "IN", d != phase);
      drive("IP2", "IN2", phase);
      sim.set("CLK", Logic::k1);
      sim.settle(sim.now() + 1e-9);
      sim.set("CLK", Logic::k0);
      sim.settle(sim.now() + 1e-9);
      const Logic dout = sim.get("DOUT");
      if (dout == Logic::kX) {
        diags->push_back(gate_error(
            "DOUT", util::format("slice %d sample %zu did not resolve (X)",
                                 i, n)));
        return false;
      }
      const bool gate_bit = dout == Logic::k1;
      if (gate_bit != d) {
        diags->push_back(gate_error(
            "DOUT",
            util::format("slice %d sample %zu decoded %d, behavioral bit "
                         "is %d",
                         i, n, gate_bit ? 1 : 0, d ? 1 : 0)));
        return false;
      }
      count += gate_bit ? 1 : 0;
    }
    // The modulator's exact decoder arithmetic (msim/modulator.cpp), so a
    // bit-identical stream stays bit-identical after normalization.
    out->decoded.push_back((2.0 * count - n_slices) /
                           static_cast<double>(n_slices));
  }
  out->transitions += sim.transition_count();
  out->n_samples = n_samples;
  out->num_slices = n_slices;
  return true;
}

}  // namespace

const char* sim_backend_name(SimBackend b) {
  switch (b) {
    case SimBackend::kBehavioral:
      return "behavioral";
    case SimBackend::kGateLevel:
      return "gate_level";
  }
  return "?";
}

bool sim_backend_from_name(std::string_view name, SimBackend* out) {
  for (SimBackend b : {SimBackend::kBehavioral, SimBackend::kGateLevel}) {
    if (name == sim_backend_name(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

double predicted_ring_period_s(const tech::TechNode& node, int num_slices) {
  return 2.0 * num_slices * (node.fo4_delay_s / 4.0 / std::sqrt(2.0));
}

std::shared_ptr<const GateSimResult> run_gate_level_signoff(
    const netlist::Design& parsed, const AdcSpec& spec,
    const RunResult& behavioral, const GateSimOptions& opts,
    std::vector<Diagnostic>* diags) {
  const tech::TechNode node = spec.tech_node();
  const std::string top = opts.top.empty() ? parsed.top() : opts.top;
  auto res = std::make_shared<GateSimResult>();

  res->comparator_ok =
      check_comparator(parsed, node, diags, &res->transitions);
  const bool ring_ok = check_ring(parsed, spec, top, node,
                                  opts.ring_period_tol, res.get(), diags);
  res->ring_ok = ring_ok;
  if (!res->comparator_ok || !ring_ok) return nullptr;
  if (!replay_slices(parsed, spec, behavioral, node, res.get(), diags)) {
    return nullptr;
  }

  // Cross-check: the gate-level decode must be bit-identical to the
  // behavioral modulator, before and after the shared digital back end.
  bool identical = res->decoded.size() == behavioral.mod.output.size();
  for (std::size_t i = 0; identical && i < res->decoded.size(); ++i) {
    identical = res->decoded[i] == behavioral.mod.output[i];
  }
  const DigitalBackend backend(spec);
  res->decimated = backend.process(res->decoded);
  const std::vector<double> ref = backend.process(behavioral.mod.output);
  identical = identical && res->decimated.size() == ref.size();
  for (std::size_t i = 0; identical && i < ref.size(); ++i) {
    identical = res->decimated[i] == ref[i];
  }
  res->matches_behavioral = identical;
  if (!identical) {
    diags->push_back(gate_error(
        "decode", "gate-level decoded/decimated stream diverged from the "
                  "behavioral path"));
    return nullptr;
  }
  return res;
}

}  // namespace vcoadc::core
