#include "core/linearity.h"

#include <cmath>

#include "dsp/signal_gen.h"

namespace vcoadc::core {

TransferCurve measure_transfer(const AdcSpec& spec,
                               const TransferOptions& opts) {
  TransferCurve curve;
  const msim::SimConfig cfg = spec.to_sim_config();
  msim::VcoDsmModulator::Options mopts;
  mopts.mapping = opts.mapping;

  // Full scale from a probe instance (mismatch draws are seed-fixed, so
  // every point sees the same network).
  const double fs = msim::VcoDsmModulator(cfg, mopts).full_scale_diff();
  for (int k = 0; k < opts.points; ++k) {
    const double frac =
        -opts.span_of_fs +
        2.0 * opts.span_of_fs * static_cast<double>(k) /
            static_cast<double>(opts.points - 1);
    msim::VcoDsmModulator mod(cfg, mopts);
    const auto res =
        mod.run(dsp::make_dc(frac * fs), opts.samples_per_point);
    double mean = 0;
    for (std::size_t i = opts.settle_samples; i < res.output.size(); ++i) {
      mean += res.output[i];
    }
    mean /= static_cast<double>(res.output.size() - opts.settle_samples);
    curve.input_v.push_back(frac * fs);
    curve.output.push_back(mean);
  }
  return curve;
}

LinearityReport analyze_linearity(const TransferCurve& curve, double lsb) {
  LinearityReport rep;
  rep.lsb = lsb;
  const std::size_t n = curve.input_v.size();
  if (n < 3 || lsb <= 0) return rep;

  // Least-squares line through the curve.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += curve.input_v[i];
    sy += curve.output[i];
    sxx += curve.input_v[i] * curve.input_v[i];
    sxy += curve.input_v[i] * curve.output[i];
  }
  const double dn = static_cast<double>(n);
  rep.gain = (dn * sxy - sx * sy) / (dn * sxx - sx * sx);
  rep.offset = (sy - rep.gain * sx) / dn;

  rep.inl_lsb.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ideal = rep.offset + rep.gain * curve.input_v[i];
    rep.inl_lsb[i] = (curve.output[i] - ideal) / lsb;
    rep.max_inl_lsb = std::max(rep.max_inl_lsb, std::fabs(rep.inl_lsb[i]));
  }
  for (std::size_t i = 1; i < n; ++i) {
    const double ideal_step =
        rep.gain * (curve.input_v[i] - curve.input_v[i - 1]);
    const double step = curve.output[i] - curve.output[i - 1];
    rep.max_dnl_lsb =
        std::max(rep.max_dnl_lsb, std::fabs(step - ideal_step) / lsb);
  }
  return rep;
}

}  // namespace vcoadc::core
