#include "core/linearity.h"

#include <cmath>
#include <cstdio>

#include "dsp/signal_gen.h"
#include "util/strings.h"

namespace vcoadc::core {

namespace {

using util::Diagnostic;
using util::Severity;

Diagnostic linearity_error(std::string item, std::string reason) {
  return Diagnostic{Severity::kError, "linearity", std::move(item),
                    std::move(reason)};
}

}  // namespace

util::Checked<TransferCurve> measure_transfer_checked(
    const AdcSpec& spec, const TransferOptions& opts) {
  // Degenerate sweeps made this function divide by zero (points == 1 hits
  // `points - 1` in the input grid) and underflow the unsigned sample
  // count (settle_samples >= the capture length). Reject them up front.
  std::vector<Diagnostic> diags;
  for (const std::string& p : spec.validate()) {
    diags.push_back(Diagnostic{Severity::kError, "spec", "", p});
  }
  if (opts.points < 2) {
    diags.push_back(linearity_error(
        "points",
        util::format("%d sweep points cannot span an input range "
                     "(need >= 2)",
                     opts.points)));
  }
  if (opts.samples_per_point == 0) {
    diags.push_back(
        linearity_error("samples_per_point", "must be positive"));
  } else if (opts.settle_samples >= opts.samples_per_point) {
    diags.push_back(linearity_error(
        "settle_samples",
        util::format("settling discard %zu leaves no samples of the "
                     "%zu-sample capture to average",
                     opts.settle_samples, opts.samples_per_point)));
  }
  if (!(std::isfinite(opts.span_of_fs) && opts.span_of_fs > 0 &&
        opts.span_of_fs <= 1.0)) {
    diags.push_back(linearity_error(
        "span_of_fs", "sweep span must be in (0, 1] of full scale"));
  }
  if (!diags.empty()) {
    return util::Checked<TransferCurve>::failure(std::move(diags));
  }

  TransferCurve curve;
  const msim::SimConfig cfg = spec.to_sim_config();
  msim::VcoDsmModulator::Options mopts;
  mopts.mapping = opts.mapping;

  // Full scale from a probe instance (mismatch draws are seed-fixed, so
  // every point sees the same network).
  const double fs = msim::VcoDsmModulator(cfg, mopts).full_scale_diff();
  for (int k = 0; k < opts.points; ++k) {
    const double frac =
        -opts.span_of_fs +
        2.0 * opts.span_of_fs * static_cast<double>(k) /
            static_cast<double>(opts.points - 1);
    msim::VcoDsmModulator mod(cfg, mopts);
    const auto res =
        mod.run(dsp::make_dc(frac * fs), opts.samples_per_point);
    if (res.output.size() <= opts.settle_samples) {
      // The modulator returned fewer samples than requested; averaging
      // would underflow. Surface it rather than fabricating a point.
      return util::Checked<TransferCurve>::failure(linearity_error(
          util::format("point %d", k),
          util::format("capture returned %zu samples, <= the %zu-sample "
                       "settling discard",
                       res.output.size(), opts.settle_samples)));
    }
    double mean = 0;
    for (std::size_t i = opts.settle_samples; i < res.output.size(); ++i) {
      mean += res.output[i];
    }
    mean /= static_cast<double>(res.output.size() - opts.settle_samples);
    curve.input_v.push_back(frac * fs);
    curve.output.push_back(mean);
  }
  return curve;
}

TransferCurve measure_transfer(const AdcSpec& spec,
                               const TransferOptions& opts) {
  auto checked = measure_transfer_checked(spec, opts);
  if (!checked.ok()) {
    for (const Diagnostic& d : checked.diagnostics()) {
      std::fprintf(stderr, "vcoadc: %s\n", d.to_string().c_str());
    }
    return {};
  }
  return std::move(checked.value());
}

LinearityReport analyze_linearity(const TransferCurve& curve, double lsb) {
  LinearityReport rep;
  rep.lsb = lsb;
  const std::size_t n = curve.input_v.size();
  if (n < 3 || curve.output.size() != n) {
    rep.diagnostics.push_back(linearity_error(
        "curve", util::format("need >= 3 matched points, got %zu/%zu",
                              n, curve.output.size())));
    return rep;
  }
  if (!(lsb > 0) || !std::isfinite(lsb)) {
    rep.diagnostics.push_back(
        linearity_error("lsb", "quantizer step must be finite and positive"));
    return rep;
  }

  // Least-squares line through the curve.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += curve.input_v[i];
    sy += curve.output[i];
    sxx += curve.input_v[i] * curve.input_v[i];
    sxy += curve.input_v[i] * curve.output[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  // All inputs identical (or non-finite sums) make the normal equations
  // singular; the old code returned gain = +/-inf here and every INL
  // downstream was NaN.
  if (!(std::isfinite(denom)) || denom <= 0) {
    rep.diagnostics.push_back(linearity_error(
        "curve", "input sweep is degenerate (all points at one voltage); "
                 "gain fit is singular"));
    return rep;
  }
  rep.gain = (dn * sxy - sx * sy) / denom;
  rep.offset = (sy - rep.gain * sx) / dn;

  rep.inl_lsb.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ideal = rep.offset + rep.gain * curve.input_v[i];
    rep.inl_lsb[i] = (curve.output[i] - ideal) / lsb;
    rep.max_inl_lsb = std::max(rep.max_inl_lsb, std::fabs(rep.inl_lsb[i]));
  }
  for (std::size_t i = 1; i < n; ++i) {
    const double ideal_step =
        rep.gain * (curve.input_v[i] - curve.input_v[i - 1]);
    const double step = curve.output[i] - curve.output[i - 1];
    rep.max_dnl_lsb =
        std::max(rep.max_dnl_lsb, std::fabs(step - ideal_step) / lsb);
  }
  return rep;
}

}  // namespace vcoadc::core
