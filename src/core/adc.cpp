#include "core/adc.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/flow.h"
#include "dsp/signal_gen.h"
#include "util/units.h"

namespace vcoadc::core {

AdcDesign::AdcDesign(const AdcSpec& spec) : AdcDesign(spec, ExecContext{}) {}

AdcDesign::AdcDesign(const AdcSpec& spec, const ExecContext& ctx)
    : spec_(spec), ctx_(ctx) {
  // TechLibrary + Netlist stages, shared through the context's cache: two
  // designs of the same spec (or a batch rebuilt per worker) resolve to
  // the same artifacts. The Flow validates the spec at the boundary; on
  // rejection it reports diagnostics through the context and returns an
  // empty bundle, leaving this design unbuilt (ok() == false).
  DesignBundle bundle = Flow(ctx_).netlist(spec_);
  lib_ = std::move(bundle.lib);
  design_ = std::move(bundle.design);
}

RunResult AdcDesign::simulate(const SimulationOptions& opts) const {
  msim::SimWorkspace ws;
  return simulate(opts, ws);
}

RunResult AdcDesign::simulate(const SimulationOptions& opts,
                              msim::SimWorkspace& ws) const {
  RunResult res;
  if (!ok()) {
    emit_diag(ctx_, util::Diagnostic{util::Severity::kError, "sim_run", "",
                                     "design was not built (invalid spec)"});
    return res;
  }
  // Per-run overrides: seed and PVT only influence the behavioral model and
  // the power estimate, never the netlist, so applying them here is exactly
  // equivalent to rebuilding the design from a modified spec.
  AdcSpec sp = spec_;
  if (opts.seed != 0) sp.seed = opts.seed;
  if (opts.pvt.has_value()) sp.pvt = *opts.pvt;
  const msim::SimConfig cfg = sp.to_sim_config();

  msim::VcoDsmModulator::Options mopts;
  mopts.comparator = opts.comparator;
  mopts.dac = opts.dac;
  mopts.record_bits = opts.record_bits;
  msim::VcoDsmModulator mod(cfg, mopts);

  res.full_scale_v = mod.full_scale_diff();
  res.fin_hz = dsp::coherent_freq(opts.fin_target_hz, cfg.fs_hz,
                                  opts.n_samples);
  res.amplitude_v =
      res.full_scale_v * util::from_db_amplitude(opts.amplitude_dbfs);
  res.mod = mod.run(dsp::make_sine(res.amplitude_v, res.fin_hz),
                    opts.n_samples, ws);

  res.spectrum = dsp::compute_spectrum(res.mod.output, cfg.fs_hz, 1.0,
                                       dsp::WindowKind::kHann);
  res.sndr = dsp::analyze_sndr(res.spectrum, sp.bandwidth_hz, res.fin_hz);
  // Shaping slope fitted from just above the band edge to fs/4.
  res.shaping = dsp::fit_noise_slope(res.spectrum, sp.bandwidth_hz * 1.2,
                                     cfg.fs_hz / 4.0);
  res.idle_tones = dsp::find_idle_tones(res.spectrum, res.sndr,
                                        res.fin_hz * 3.0,
                                        sp.bandwidth_hz, 12.0);

  PowerModelOptions popts;
  popts.wire_cap_f = opts.wire_cap_f;
  res.power = estimate_power(sp, *design_, res.mod, popts);
  res.fom_fj = util::walden_fom_fj(res.power.total_w(), res.sndr.sndr_db,
                                   sp.bandwidth_hz);
  return res;
}

synth::SynthesisResult AdcDesign::synthesize(
    const synth::SynthesisOptions& opts) const {
  // Route stage through the graph; the cached result is cloned so the
  // caller owns its copy (the historical by-value contract). A rejected
  // input yields an empty result (null layout) with diagnostics reported
  // through the context, mirroring synth::synthesize().
  auto syn = Flow(ctx_).synthesis(spec_, opts);
  return syn != nullptr ? syn->clone() : synth::SynthesisResult{};
}

NodeReport AdcDesign::full_report(const SimulationOptions& opts) const {
  return Flow(ctx_).report(spec_, opts);
}

}  // namespace vcoadc::core
