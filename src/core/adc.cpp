#include "core/adc.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/flow.h"
#include "dsp/signal_gen.h"
#include "util/units.h"

namespace vcoadc::core {

namespace {

/// Everything downstream of the modulator run: spectrum, SNDR, shaping
/// slope, idle tones, power, FOM. Shared verbatim by the scalar and the
/// batched simulation paths so their RunResults cannot drift apart.
void analyze_run(const AdcSpec& sp, const msim::SimConfig& cfg,
                 const SimulationOptions& opts,
                 const netlist::Design& design, RunResult& res) {
  res.spectrum = dsp::compute_spectrum(res.mod.output, cfg.fs_hz, 1.0,
                                       dsp::WindowKind::kHann);
  res.sndr = dsp::analyze_sndr(res.spectrum, sp.bandwidth_hz, res.fin_hz);
  // Shaping slope fitted from just above the band edge to fs/4.
  res.shaping = dsp::fit_noise_slope(res.spectrum, sp.bandwidth_hz * 1.2,
                                     cfg.fs_hz / 4.0);
  res.idle_tones = dsp::find_idle_tones(res.spectrum, res.sndr,
                                        res.fin_hz * 3.0,
                                        sp.bandwidth_hz, 12.0);

  PowerModelOptions popts;
  popts.wire_cap_f = opts.wire_cap_f;
  res.power = estimate_power(sp, design, res.mod, popts);
  res.fom_fj = util::walden_fom_fj(res.power.total_w(), res.sndr.sndr_db,
                                   sp.bandwidth_hz);
}

}  // namespace

AdcDesign::AdcDesign(const AdcSpec& spec) : AdcDesign(spec, ExecContext{}) {}

AdcDesign::AdcDesign(const AdcSpec& spec, const ExecContext& ctx)
    : spec_(spec), ctx_(ctx) {
  // TechLibrary + Netlist stages, shared through the context's cache: two
  // designs of the same spec (or a batch rebuilt per worker) resolve to
  // the same artifacts. The Flow validates the spec at the boundary; on
  // rejection it reports diagnostics through the context and returns an
  // empty bundle, leaving this design unbuilt (ok() == false).
  DesignBundle bundle = Flow(ctx_).netlist(spec_);
  lib_ = std::move(bundle.lib);
  design_ = std::move(bundle.design);
}

RunResult AdcDesign::simulate(const SimulationOptions& opts) const {
  msim::SimWorkspace ws;
  return simulate(opts, ws);
}

RunResult AdcDesign::simulate(const SimulationOptions& opts,
                              msim::SimWorkspace& ws) const {
  RunResult res;
  if (!ok()) {
    emit_diag(ctx_, util::Diagnostic{util::Severity::kError, "sim_run", "",
                                     "design was not built (invalid spec)"});
    return res;
  }
  // Per-run overrides: seed and PVT only influence the behavioral model and
  // the power estimate, never the netlist, so applying them here is exactly
  // equivalent to rebuilding the design from a modified spec.
  AdcSpec sp = spec_;
  if (opts.seed != 0) sp.seed = opts.seed;
  if (opts.pvt.has_value()) sp.pvt = *opts.pvt;
  const msim::SimConfig cfg = sp.to_sim_config();

  msim::VcoDsmModulator::Options mopts;
  mopts.comparator = opts.comparator;
  mopts.dac = opts.dac;
  mopts.record_bits = opts.record_bits;
  msim::VcoDsmModulator mod(cfg, mopts);

  res.full_scale_v = mod.full_scale_diff();
  res.fin_hz = dsp::coherent_freq(opts.fin_target_hz, cfg.fs_hz,
                                  opts.n_samples);
  res.amplitude_v =
      res.full_scale_v * util::from_db_amplitude(opts.amplitude_dbfs);
  res.mod = mod.run(dsp::make_sine(res.amplitude_v, res.fin_hz),
                    opts.n_samples, ws);
  analyze_run(sp, cfg, opts, *design_, res);
  return res;
}

std::vector<RunResult> AdcDesign::simulate_batch(
    const SimulationOptions& opts, const std::vector<std::uint64_t>& seeds,
    msim::BatchedWorkspace& ws) const {
  std::vector<RunResult> out(seeds.size());
  if (seeds.empty()) return out;
  if (!ok()) {
    emit_diag(ctx_, util::Diagnostic{util::Severity::kError, "sim_run", "",
                                     "design was not built (invalid spec)"});
    return out;
  }
  // Lanes share every option but the seed, so the spec/PVT resolution and
  // the coherent-bin snap happen once. Lane k's effective seed follows the
  // scalar rule (0 = keep the spec's own seed).
  AdcSpec sp = spec_;
  if (opts.pvt.has_value()) sp.pvt = *opts.pvt;
  std::vector<std::uint64_t> eff(seeds.size());
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    eff[k] = seeds[k] != 0 ? seeds[k] : sp.seed;
  }
  const msim::SimConfig cfg = sp.to_sim_config();

  msim::VcoDsmModulator::Options mopts;
  mopts.comparator = opts.comparator;
  mopts.dac = opts.dac;
  mopts.record_bits = opts.record_bits;
  auto batch = msim::BatchedModulator::create(cfg, eff, mopts);
  if (batch == nullptr) {
    // Unsupported configuration (non-resistor DAC, or a width the kernels
    // are not instantiated for): serial fallback, same results.
    msim::SimWorkspace sws;
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      SimulationOptions o = opts;
      o.seed = seeds[k];
      out[k] = simulate(o, sws);
    }
    return out;
  }

  const double fin =
      dsp::coherent_freq(opts.fin_target_hz, cfg.fs_hz, opts.n_samples);
  const int W = static_cast<int>(seeds.size());
  std::vector<double> scale(seeds.size());
  for (int k = 0; k < W; ++k) {
    const std::size_t sk = static_cast<std::size_t>(k);
    out[sk].fin_hz = fin;
    out[sk].full_scale_v = batch->full_scale_diff(k);
    out[sk].amplitude_v =
        out[sk].full_scale_v * util::from_db_amplitude(opts.amplitude_dbfs);
    // The kernel evaluates scale * base(t) per lane; with a unit-amplitude
    // base this is fl(amplitude * sin(...)), the scalar path's expression.
    scale[sk] = out[sk].amplitude_v;
  }
  const std::vector<msim::ModulatorResult>& lanes =
      batch->run(dsp::make_sine(1.0, fin), scale, opts.n_samples, ws);
  for (int k = 0; k < W; ++k) {
    const std::size_t sk = static_cast<std::size_t>(k);
    out[sk].mod = lanes[sk];
    // The per-lane spec carries the lane's seed so the analysis inputs
    // match the scalar path's field-for-field.
    AdcSpec lane_sp = sp;
    lane_sp.seed = eff[sk];
    analyze_run(lane_sp, cfg, opts, *design_, out[sk]);
  }
  return out;
}

std::vector<RunResult> AdcDesign::simulate_batch(
    const std::vector<SimulationOptions>& opts_list,
    msim::BatchedWorkspace& ws) const {
  std::vector<RunResult> out(opts_list.size());
  if (opts_list.empty()) return out;
  if (!ok()) {
    emit_diag(ctx_, util::Diagnostic{util::Severity::kError, "sim_run", "",
                                     "design was not built (invalid spec)"});
    return out;
  }
  // The lanes share one input-sample schedule (n_samples * substeps base
  // values) and one analysis netlist, so the non-PVT knobs must agree;
  // anything else goes through the scalar loop below.
  const SimulationOptions& o0 = opts_list.front();
  bool shared_shape = true;
  for (const SimulationOptions& o : opts_list) {
    shared_shape = shared_shape && o.n_samples == o0.n_samples &&
                   o.fin_target_hz == o0.fin_target_hz &&
                   o.comparator == o0.comparator && o.dac == o0.dac &&
                   o.record_bits == o0.record_bits;
  }

  // Per-lane spec/PVT resolution replays the scalar rule exactly.
  std::vector<AdcSpec> lane_sp(opts_list.size(), spec_);
  std::vector<msim::SimConfig> cfgs;
  cfgs.reserve(opts_list.size());
  for (std::size_t k = 0; k < opts_list.size(); ++k) {
    if (opts_list[k].seed != 0) lane_sp[k].seed = opts_list[k].seed;
    if (opts_list[k].pvt.has_value()) lane_sp[k].pvt = *opts_list[k].pvt;
    cfgs.push_back(lane_sp[k].to_sim_config());
  }

  std::unique_ptr<msim::BatchedModulator> batch;
  if (shared_shape) {
    msim::VcoDsmModulator::Options mopts;
    mopts.comparator = o0.comparator;
    mopts.dac = o0.dac;
    mopts.record_bits = o0.record_bits;
    batch = msim::BatchedModulator::create(cfgs, mopts);
  }
  if (batch == nullptr) {
    msim::SimWorkspace sws;
    for (std::size_t k = 0; k < opts_list.size(); ++k) {
      out[k] = simulate(opts_list[k], sws);
    }
    return out;
  }

  // PVT never moves fs (AdcSpec::to_sim_config derives fs from OSR and
  // bandwidth alone), so the coherent-bin snap is one shared computation.
  const double fin =
      dsp::coherent_freq(o0.fin_target_hz, cfgs.front().fs_hz, o0.n_samples);
  const int W = static_cast<int>(opts_list.size());
  std::vector<double> scale(opts_list.size());
  for (int k = 0; k < W; ++k) {
    const std::size_t sk = static_cast<std::size_t>(k);
    out[sk].fin_hz = fin;
    out[sk].full_scale_v = batch->full_scale_diff(k);
    out[sk].amplitude_v =
        out[sk].full_scale_v *
        util::from_db_amplitude(opts_list[sk].amplitude_dbfs);
    scale[sk] = out[sk].amplitude_v;
  }
  const std::vector<msim::ModulatorResult>& lanes =
      batch->run(dsp::make_sine(1.0, fin), scale, o0.n_samples, ws);
  for (int k = 0; k < W; ++k) {
    const std::size_t sk = static_cast<std::size_t>(k);
    out[sk].mod = lanes[sk];
    analyze_run(lane_sp[sk], cfgs[sk], opts_list[sk], *design_, out[sk]);
  }
  return out;
}

synth::SynthesisResult AdcDesign::synthesize(
    const synth::SynthesisOptions& opts) const {
  // Route stage through the graph; the cached result is cloned so the
  // caller owns its copy (the historical by-value contract). A rejected
  // input yields an empty result (null layout) with diagnostics reported
  // through the context, mirroring synth::synthesize().
  auto syn = Flow(ctx_).synthesis(spec_, opts);
  return syn != nullptr ? syn->clone() : synth::SynthesisResult{};
}

NodeReport AdcDesign::full_report(const SimulationOptions& opts) const {
  return Flow(ctx_).report(spec_, opts);
}

}  // namespace vcoadc::core
