// Datasheet generation: one call that takes an AdcSpec through simulation,
// synthesis, timing, power-grid signoff and (optionally) Monte Carlo, and
// renders the numbers a part's front page would carry. This is the
// "product view" of the generator - what a downstream user reads before
// instantiating the ADC in their SoC.
#pragma once

#include <string>

#include "core/adc.h"
#include "core/adc_spec.h"
#include "core/monte_carlo.h"
#include "synth/power_grid.h"
#include "synth/sta.h"

namespace vcoadc::core {

struct DatasheetOptions {
  std::size_t n_samples = 1 << 15;
  /// Monte-Carlo runs for the min/max SNDR lines; 0 disables.
  int mc_runs = 0;
  /// Points for the SNDR-vs-amplitude sweep (the dynamic-range curve a
  /// datasheet's "SNDR vs input level" plot carries); 0 disables. Point k
  /// drives the input at -3 - 6k dBFS, so the first point coincides with
  /// the nominal run and is served from the cache.
  int amp_sweep_points = 0;
  /// SIMD lane width for the amplitude sweep's batched lane groups, the
  /// MonteCarloOptions convention: 0 = host-preferred, 1 = scalar per-point
  /// stages, 2/4/8 = forced width. Bit-identical at every setting.
  int batch_width = 0;
  /// Execution environment; the datasheet's synthesis, nominal run and MC
  /// batch all execute as stages of the flow graph, sharing its cache.
  ExecContext exec;
};

/// One point of the SNDR-vs-amplitude curve.
struct AmplitudePoint {
  double amplitude_dbfs = 0;
  double sndr_db = 0;
  double enob = 0;
};

struct Datasheet {
  AdcSpec spec;
  RunResult nominal;
  synth::LayoutStats layout;
  synth::DrcReport drc;
  synth::MazeRouteResult routing;
  synth::TimingReport timing;
  synth::PowerGridCheck power_grid;
  MonteCarloResult mc;  ///< empty when mc_runs == 0
  std::vector<AmplitudePoint> amp_sweep;  ///< empty when amp_sweep_points == 0
  double area_mm2 = 0;
  /// True when every stage completed. False means a stage rejected its
  /// input: diagnostics were reported through the ExecContext and the
  /// unreached sections are default-constructed.
  bool complete = false;

  /// Renders the datasheet as a text document.
  std::string render() const;
};

/// Runs the full flow for a spec — a thin shim over
/// core::evaluate(EvalKind::kDatasheet). Never aborts: a spec the
/// validators reject yields an incomplete datasheet (complete == false)
/// plus diagnostics through opts.exec.
Datasheet generate_datasheet(const AdcSpec& spec,
                             const DatasheetOptions& opts = {});

}  // namespace vcoadc::core
