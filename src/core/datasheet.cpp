#include "core/datasheet.h"

#include <limits>
#include <sstream>

#include "core/driver_impl.h"
#include "core/eval.h"
#include "core/flow.h"
#include "util/strings.h"
#include "util/trace.h"
#include "util/units.h"

namespace vcoadc::core {

Datasheet detail::datasheet_impl(const ExecContext& ctx, const AdcSpec& spec,
                                 const DatasheetOptions& opts) {
  Datasheet ds;
  ds.spec = spec;

  Flow flow(ctx);

  AdcDesign adc(spec, ctx);
  if (!adc.ok()) return ds;  // spec rejected; flow already reported why
  // The Route-stage artifact is shared, not cloned: the datasheet only
  // reads it, and a full_report() over the same spec reuses it for free.
  auto synth_res = flow.synthesis(spec);
  if (synth_res == nullptr || synth_res->layout == nullptr) {
    emit_diag(ctx, util::Diagnostic{util::Severity::kError, "datasheet", "",
                                    "synthesis produced no layout; "
                                    "datasheet incomplete"});
    return ds;
  }
  ds.layout = synth_res->stats;
  ds.drc = synth_res->drc;
  ds.routing = synth_res->detailed_routing;
  ds.area_mm2 = synth_res->stats.die_area_m2 * 1e6;

  {
    util::TraceSpan span(ctx.trace, "timing");
    synth::TimingOptions topts;
    topts.clock_period_s = 1.0 / spec.fs_hz;
    topts.placement = &synth_res->layout->placement();
    ds.timing = synth::analyze_timing(adc.netlist(), spec.tech_node(), topts);
  }

  {
    util::TraceSpan span(ctx.trace, "power_grid");
    const synth::PowerGrid grid =
        synth::generate_power_grid(synth_res->layout->floorplan());
    ds.power_grid = synth::check_power_grid(grid, synth_res->layout->flat(),
                                            synth_res->layout->placement(),
                                            synth_res->layout->floorplan());
  }

  SimulationOptions sim;
  sim.n_samples = opts.n_samples;
  sim.fin_target_hz = spec.bandwidth_hz / 5.0;
  sim.wire_cap_f = synth_res->routing.wire_cap_f;
  const auto nominal = flow.sim_run(adc, sim);
  if (nominal == nullptr) return ds;  // options rejected; already reported
  ds.nominal = *nominal;

  if (opts.amp_sweep_points > 0) {
    util::TraceSpan span(ctx.trace, "amp_sweep");
    // The sweep points differ from the nominal run only in drive level —
    // exactly the heterogeneous-lane shape — so they batch through the
    // same SoA engine as the MC draws, in width-sized groups. Each point
    // keeps its scalar sim_run() cache key (point 0 *is* the nominal run
    // and comes back warm). Width resolution follows monte_carlo_impl;
    // armed fault plans force scalar stages so per-point fault triggers
    // fire exactly as an unbatched loop's would.
    int width = opts.batch_width == 0
                    ? msim::BatchedModulator::preferred_width()
                    : opts.batch_width;
    if (!msim::BatchedModulator::width_supported(width) ||
        ctx.faults != nullptr) {
      width = 1;
    }
    const std::size_t points = static_cast<std::size_t>(opts.amp_sweep_points);
    ds.amp_sweep.resize(points);
    for (std::size_t at = 0; at < points;) {
      const std::size_t left = points - at;
      std::size_t len = 1;
      for (int w : {8, 4, 2}) {
        const std::size_t sw = static_cast<std::size_t>(w);
        if (w <= width && sw <= left) {
          len = sw;
          break;
        }
      }
      std::vector<SimulationOptions> sims(len, sim);
      for (std::size_t k = 0; k < len; ++k) {
        sims[k].amplitude_dbfs = -3.0 - 6.0 * static_cast<double>(at + k);
      }
      const auto runs = len > 1
                            ? flow.sim_run_batch(adc, sims)
                            : std::vector<std::shared_ptr<const RunResult>>{
                                  flow.sim_run(adc, sims.front())};
      for (std::size_t k = 0; k < len; ++k) {
        AmplitudePoint& pt = ds.amp_sweep[at + k];
        pt.amplitude_dbfs = sims[k].amplitude_dbfs;
        if (runs[k] != nullptr) {
          pt.sndr_db = runs[k]->sndr.sndr_db;
          pt.enob = runs[k]->sndr.enob;
        } else {
          pt.sndr_db = std::numeric_limits<double>::quiet_NaN();
          pt.enob = std::numeric_limits<double>::quiet_NaN();
        }
      }
      at += len;
    }
  }

  if (opts.mc_runs > 0) {
    MonteCarloOptions mc;
    mc.runs = opts.mc_runs;
    mc.sim.n_samples = std::min<std::size_t>(opts.n_samples, 1 << 13);
    mc.sim.fin_target_hz = sim.fin_target_hz;
    // Reuse the design built above instead of reconstructing it per run;
    // calling the impl directly keeps this one evaluate() request.
    ds.mc = detail::monte_carlo_impl(ctx, adc, mc);
  }
  ds.complete = true;
  return ds;
}

Datasheet generate_datasheet(const AdcSpec& spec,
                             const DatasheetOptions& opts) {
  EvalRequest req;
  req.kind = EvalKind::kDatasheet;
  req.spec = spec;
  req.datasheet = opts;
  return std::move(evaluate(req, opts.exec).datasheet);
}

std::string Datasheet::render() const {
  std::ostringstream os;
  const auto& run = nominal;
  os << "=====================================================\n";
  os << " vcoadc synthesis-friendly VCO-based delta-sigma ADC\n";
  os << "=====================================================\n";
  os << "design point : " << spec.describe() << "\n";
  os << "input range  : " << util::si_format(run.full_scale_v, "V")
     << " differential (FS)\n\n";

  os << "-- dynamic performance (behavioral, post-layout wire load) --\n";
  os << util::format("  SNDR            %.1f dB (tone at %s, %.1f dBFS)\n",
                     run.sndr.sndr_db,
                     util::si_format(run.fin_hz, "Hz").c_str(),
                     run.sndr.fundamental_dbfs);
  os << util::format("  SNR / SFDR      %.1f / %.1f dB\n", run.sndr.snr_db,
                     run.sndr.sfdr_db);
  os << util::format("  ENOB            %.2f bits\n", run.sndr.enob);
  os << util::format("  noise shaping   %.1f dB/dec\n",
                     run.shaping.db_per_decade);
  if (!mc.sndr_db.empty()) {
    os << util::format("  SNDR (MC, n=%zu) %.1f .. %.1f dB (sigma %.2f)\n",
                       mc.sndr_db.size(), mc.min_db, mc.max_db, mc.stddev_db);
  }
  if (!amp_sweep.empty()) {
    os << "\n-- SNDR vs input amplitude --\n";
    for (const AmplitudePoint& pt : amp_sweep) {
      os << util::format("  %+7.1f dBFS    %.1f dB SNDR (%.2f ENOB)\n",
                         pt.amplitude_dbfs, pt.sndr_db, pt.enob);
    }
  }

  os << "\n-- power --\n";
  os << util::format("  total           %s (digital %.0f%%, analog %.0f%%)\n",
                     util::si_format(run.power.total_w(), "W").c_str(),
                     run.power.digital_fraction() * 100,
                     (1 - run.power.digital_fraction()) * 100);
  os << util::format("  Walden FOM      %.0f fJ/conv-step\n", run.fom_fj);

  os << "\n-- physical (automatically synthesized layout) --\n";
  os << util::format("  die area        %.4f mm^2 (%d cells, %d regions)\n",
                     area_mm2, layout.num_cells, layout.num_regions);
  os << util::format("  routing         %.1f um wire, %d vias, %d overflows\n",
                     routing.total_wirelength_m * 1e6, routing.total_vias,
                     routing.overflowed_edges);
  os << util::format("  DRC             %zu violations\n",
                     drc.violations.size());
  os << util::format("  power grid      %s (max IR drop %.2f mV)\n",
                     power_grid.clean() ? "clean" : "VIOLATIONS",
                     power_grid.max_ir_drop_v * 1e3);

  os << "\n-- timing --\n";
  os << util::format("  critical path   %.1f ps (%d loops cut)\n",
                     timing.critical_delay_s * 1e12, timing.loops_cut);
  os << util::format("  slack @ fs      %+.1f ps (max clock %.2f GHz)\n",
                     timing.slack_s * 1e12, timing.max_clock_hz / 1e9);
  return os.str();
}

}  // namespace vcoadc::core
