// Activity-based power model (the Fig. 15 / Table 3 power numbers).
//
// Digital power is CV^2*f over the synthesized netlist: every flat instance
// switches at a rate set by its power domain (ring inverters at the VCO
// rate, VDD-domain sampling logic at fs, DAC drivers at the measured bit
// toggle rate), at the voltage of its domain. A single documented
// `switching_overhead` constant covers short-circuit current, internal
// nodes, self-load and realistic (non-minimum) sizing - the usual gap
// between C_in V^2 f and measured gate power.
//
// Analog power is the static dissipation of the feedback network (resistor
// DAC) plus the replica-buffer bias. The input resistor network is driven
// by the external source and is excluded, per ADC-survey convention.
#pragma once

#include "core/adc_spec.h"
#include "msim/modulator.h"
#include "netlist/netlist.h"

namespace vcoadc::core {

struct PowerBreakdown {
  // digital (inverter/gate switching, wherever the gates' supply pins go)
  double vco_w = 0;        ///< ring inverters (PD_VCTRLP/N)
  double sampling_w = 0;   ///< comparators, XOR, latches, clock (PD_VDD)
  double dac_drive_w = 0;  ///< DAC inverters (PD_VREFP)
  double buffer_sw_w = 0;  ///< buffer inverter switching (PD_VBUF*)
  double wire_w = 0;       ///< routed signal-wire switching
  double leakage_w = 0;
  // analog (static dissipation)
  double dac_static_w = 0;   ///< resistor DAC static dissipation
  double buffer_bias_w = 0;  ///< replica-buffer bias tail

  double digital_w() const {
    return vco_w + sampling_w + dac_drive_w + buffer_sw_w + wire_w +
           leakage_w;
  }
  double analog_w() const { return dac_static_w + buffer_bias_w; }
  double total_w() const { return digital_w() + analog_w(); }
  double digital_fraction() const {
    const double t = total_w();
    return (t > 0) ? digital_w() / t : 0;
  }
};

struct PowerModelOptions {
  /// Multiplier on gate CV^2f covering crowbar current, internal nodes and
  /// realistic sizing. Calibrated once against the paper's Table 3 totals;
  /// applies to gates only, not to the extracted wire capacitance.
  double switching_overhead = 3.0;
  /// Bias current per buf_cell [A].
  double buffer_bias_per_cell_a = 5e-6;
  /// Estimated total switched signal-wire capacitance [F] (from the
  /// routing estimate); 0 if no layout is available.
  double wire_cap_f = 0.0;
};

/// Computes the breakdown for a simulated operating point. `activity` must
/// come from a run of the behavioral modulator at this spec (it supplies the
/// mean ring rates, control voltages and DAC toggle rate).
PowerBreakdown estimate_power(const AdcSpec& spec,
                              const netlist::Design& design,
                              const msim::ModulatorResult& activity,
                              const PowerModelOptions& opts = {});

}  // namespace vcoadc::core
