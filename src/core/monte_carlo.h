// Monte-Carlo mismatch analysis and PVT-corner evaluation.
//
// The paper argues the architecture is "robust against random mismatches"
// from a single post-layout run; a production generator must show it
// statistically. monte_carlo_sndr re-draws every mismatch source (VCO
// stage delays, Kvco, DAC resistors, comparator offsets) per run and
// reports the SNDR distribution and the parametric yield against a target.
//
// PVT corners ride on AdcSpec::pvt: process (gate-delay multiplier),
// voltage (supply scale) and temperature, evaluated by corner_sweep.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/adc.h"
#include "core/adc_spec.h"

namespace vcoadc::core {

struct MonteCarloOptions {
  int runs = 20;
  std::size_t n_samples = 1 << 13;
  double amplitude_dbfs = -3.0;
  double fin_target_hz = 1e6;
  std::uint64_t seed0 = 1000;  ///< run i uses seed0 + i
};

struct MonteCarloResult {
  std::vector<double> sndr_db;  ///< one per run
  double mean_db = 0;
  double stddev_db = 0;
  double min_db = 0;
  double max_db = 0;

  /// Fraction of runs meeting `spec_db`.
  double yield(double spec_db) const;
};

/// Runs `opts.runs` simulations with independent mismatch draws.
MonteCarloResult monte_carlo_sndr(const AdcSpec& spec,
                                  const MonteCarloOptions& opts = {});

struct CornerResult {
  std::string name;
  PvtCorner pvt;
  double sndr_db = 0;
  double power_w = 0;
};

/// Evaluates the classic corner set (TT, FF, SS, plus low/high voltage and
/// hot/cold temperature) at the spec's operating point.
std::vector<CornerResult> corner_sweep(const AdcSpec& spec,
                                       std::size_t n_samples = 1 << 13);

}  // namespace vcoadc::core
