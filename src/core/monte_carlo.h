// Monte-Carlo mismatch analysis and PVT-corner evaluation.
//
// The paper argues the architecture is "robust against random mismatches"
// from a single post-layout run; a production generator must show it
// statistically. monte_carlo_sndr re-draws every mismatch source (VCO
// stage delays, Kvco, DAC resistors, comparator offsets) per run and
// reports the SNDR distribution and the parametric yield against a target.
//
// Both analyses run on the parallel evaluation engine (core::BatchRunner):
// run i always simulates with seed0 + i and results are ordered by run
// index, so the output is bit-identical regardless of the thread count.
// Mismatch draws and PVT corners only perturb the behavioral model, so the
// AdcDesign (cell library + netlist) is built once and shared read-only
// across workers — callers that already hold a design use the AdcDesign
// overloads and skip the rebuild entirely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/adc.h"
#include "core/adc_spec.h"
#include "core/batch.h"
#include "core/exec_context.h"

namespace vcoadc::core {

struct MonteCarloOptions {
  int runs = 20;
  /// Per-run simulation options (unified with AdcDesign::simulate). The
  /// seed field is overwritten per run with seed0 + i. Default capture
  /// length is shorter than a single run's: MC wants many draws, not one
  /// long spectrum.
  SimulationOptions sim = [] {
    SimulationOptions s;
    s.n_samples = 1 << 13;
    return s;
  }();
  /// Execution environment (worker threads, trace sink, artifact cache);
  /// every draw runs as a SimRun stage of the flow graph, so a repeated
  /// batch over the same spec is served from the cache.
  ExecContext exec;
  std::uint64_t seed0 = 1000;  ///< run i uses seed0 + i
  /// SIMD lane width for the batched transient engine: 0 picks the host's
  /// preferred width (util::simd::active_width), 1 forces the scalar
  /// per-draw path, 2/4/8 force that lane width. Draws are partitioned
  /// into width-sized groups (draw k = lane k % width of group k / width);
  /// the remainder runs scalar. Results are bit-identical across all
  /// settings — the lanes replay the scalar draw sequence exactly — so
  /// this knob trades nothing but wall time.
  int batch_width = 0;
};

struct MonteCarloResult {
  std::vector<double> sndr_db;  ///< one per run, ordered by run index
  double mean_db = 0;
  double stddev_db = 0;
  double min_db = 0;
  double max_db = 0;
  /// Engine instrumentation: wall/busy time, per-run wall time, worker
  /// utilization and queue depth for the batch that produced sndr_db.
  BatchStats batch;

  /// Fraction of runs meeting `spec_db`.
  double yield(double spec_db) const;
};

/// Runs `opts.runs` simulations of an already-built design with independent
/// mismatch draws (seed of run i = seed0 + i), fanned across the engine.
/// Thin shim over core::evaluate(EvalKind::kMonteCarlo) — the design's
/// stages are cache-shared, so re-deriving them from its spec is free.
MonteCarloResult monte_carlo_sndr(const AdcDesign& design,
                                  const MonteCarloOptions& opts = {});

/// Spec-shaped shim over the same evaluate() entry point.
MonteCarloResult monte_carlo_sndr(const AdcSpec& spec,
                                  const MonteCarloOptions& opts = {});

struct CornerResult {
  std::string name;
  PvtCorner pvt;
  double sndr_db = 0;
  double power_w = 0;
};

/// Evaluates the classic corner set (TT, FF, SS, plus low/high voltage and
/// hot/cold temperature) on an already-built design, corners fanned across
/// the engine as SimRun stages of the flow graph. Results are ordered by
/// the canonical corner table. All three signatures are thin shims over
/// core::evaluate(EvalKind::kCornerSweep); they differ only in where the
/// ExecContext comes from (explicit, the design's own, or a default).
std::vector<CornerResult> corner_sweep(const AdcDesign& design,
                                       const ExecContext& exec,
                                       std::size_t n_samples = 1 << 13);

std::vector<CornerResult> corner_sweep(const AdcDesign& design,
                                       std::size_t n_samples = 1 << 13);

std::vector<CornerResult> corner_sweep(const AdcSpec& spec,
                                       std::size_t n_samples = 1 << 13);

}  // namespace vcoadc::core
