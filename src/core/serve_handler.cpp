// Dispatch half of the evaluation service: the NDJSON request handler
// shared by the stdio and socket transports (extracted from the CLI's
// original stdin loop, so the two transports cannot drift). The transport
// loops themselves live in serve_loop.cpp.
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/artifact_store.h"
#include "core/batch.h"
#include "core/eval.h"
#include "core/serve_loop.h"
#include "util/json.h"
#include "util/simd.h"
#include "util/trace.h"

namespace vcoadc::core {

namespace json = util::json;

namespace {

/// Renders a per-request trace as a JSON array (one object per span, the
/// same records as --trace=json's JSONL, parsed back so the response
/// stays one well-formed document).
json::Value trace_to_json(const util::Trace& trace) {
  json::Value arr = json::Value::make_array();
  const std::string jsonl = trace.render_jsonl();
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    if (nl == std::string::npos) nl = jsonl.size();
    const std::string_view line(jsonl.data() + pos, nl - pos);
    if (!line.empty()) {
      json::ParseResult pr = json::parse(line);
      arr.push(pr.ok ? std::move(pr.value)
                     : json::Value::make_string(std::string(line)));
    }
    pos = nl + 1;
  }
  return arr;
}

/// Per-request cache/store counter deltas. `cold_builds` is the number of
/// stages this request had to build from scratch: store misses when a
/// persistent store backs the run (a memory-cache miss that loads from
/// disk is warm), plain cache misses otherwise.
json::Value cache_delta_json(const ArtifactCacheStats& c0,
                             const ArtifactCacheStats& c1,
                             const ArtifactStore* store,
                             const ArtifactStoreStats& s0) {
  json::Value o = json::Value::make_object();
  const auto num = [](std::uint64_t v) {
    return json::Value::make_number(static_cast<double>(v));
  };
  o.set("hits", num(c1.hits - c0.hits));
  o.set("misses", num(c1.misses - c0.misses));
  std::uint64_t cold = c1.misses - c0.misses;
  if (store != nullptr) {
    const ArtifactStoreStats s1 = store->stats();
    o.set("store_hits", num(s1.hits - s0.hits));
    o.set("store_misses", num(s1.misses - s0.misses));
    o.set("store_writes", num(s1.writes - s0.writes));
    // Lifecycle counters: nonzero only on requests whose writes pushed
    // the store over its --store-max-bytes bound (or whose GC swept
    // orphaned tmp files). Campaign drivers watch these to see eviction
    // pressure.
    o.set("store_evictions", num(s1.evictions - s0.evictions));
    o.set("store_gc_bytes_reclaimed",
          num(s1.gc_bytes_reclaimed - s0.gc_bytes_reclaimed));
    o.set("store_tmp_swept", num(s1.tmp_swept - s0.tmp_swept));
    cold = s1.misses - s0.misses;
  }
  o.set("cold_builds", num(cold));
  // Active SIMD dispatch of the batched transient engine: clients
  // asserting result_fp across hosts read this to know which tier
  // produced the (bit-identical) result, and perf dashboards bucket
  // timings by it.
  o.set("simd_tier", json::Value::make_string(
                         util::simd::tier_name(util::simd::active_tier())));
  o.set("simd_width", num(static_cast<std::uint64_t>(
                          util::simd::active_width())));
  return o;
}

/// Echoes the request's "id" (as-is) into a response object, if present.
void echo_id(const json::Value& req, json::Value* resp) {
  if (const json::Value* id = req.find("id")) resp->set("id", *id);
}

json::Value error_response(const json::Value& req, const std::string& what) {
  json::Value resp = json::Value::make_object();
  echo_id(req, &resp);
  resp.set("ok", json::Value::make_bool(false));
  resp.set("error", json::Value::make_string(what));
  return resp;
}

/// One evaluation request -> one response object. Diagnostics are
/// request-local (fresh sink per request); the cache/store in `base` are
/// shared across the whole serve session — that is the point of serving.
json::Value handle_eval(const json::Value& reqv, const ExecContext& base,
                        bool want_trace) {
  EvalRequest req;
  std::string err;
  if (!eval_request_from_json(reqv, &req, &err)) {
    return error_response(reqv, err);
  }
  util::DiagSink sink;
  util::Trace trace;
  ExecContext ctx = base;
  ctx.diag = &sink;
  ctx.trace = want_trace ? &trace : nullptr;
  const EvalResponse resp = evaluate(req, ctx);

  json::Value out = json::Value::make_object();
  out.set("id", json::Value::make_string(resp.id));
  out.set("cmd", json::Value::make_string(eval_kind_name(resp.kind)));
  out.set("ok", json::Value::make_bool(resp.ok));
  json::Value result = eval_result_to_json(resp);
  out.set("result_fp",
          json::Value::make_string(eval_result_fingerprint(result)));
  out.set("result", std::move(result));
  out.set("diagnostics", diagnostics_to_json(resp.diagnostics));
  if (want_trace) out.set("trace", trace_to_json(trace));
  return out;
}

/// {"cmd":"batch","requests":[...]} fans the sub-requests across a
/// BatchRunner; sub-responses come back in request order and the outer ok
/// is the conjunction. The shared cache/store make overlapping
/// sub-requests (e.g. same spec, different analyses) converge on one
/// stage build.
json::Value handle_batch(const json::Value& reqv, const ExecContext& base,
                         bool want_trace) {
  const json::Value* reqs = reqv.find("requests");
  if (reqs == nullptr || !reqs->is_array()) {
    return error_response(reqv, "batch request needs a \"requests\" array");
  }
  BatchOptions bopts;
  bopts.threads = base.threads;
  BatchRunner runner(bopts);
  std::vector<json::Value> results =
      runner.map(reqs->array.size(), [&](std::size_t i, std::uint64_t) {
        return handle_eval(reqs->array[i], base, want_trace);
      });

  json::Value out = json::Value::make_object();
  echo_id(reqv, &out);
  out.set("cmd", json::Value::make_string("batch"));
  bool all_ok = true;
  json::Value arr = json::Value::make_array();
  for (json::Value& r : results) {
    const json::Value* ok = r.find("ok");
    all_ok = all_ok && ok != nullptr && ok->bool_or(false);
    arr.push(std::move(r));
  }
  out.set("ok", json::Value::make_bool(all_ok));
  out.set("results", std::move(arr));
  return out;
}

}  // namespace

ServeHandler make_eval_handler(const ExecContext& ctx,
                               const EvalServeOptions& opts) {
  struct State {
    ExecContext base;
    EvalServeOptions opts;
    /// Serializes GC runs: concurrent requests that both crossed the
    /// bound should not stack directory scans (the loser just skips —
    /// the winner's pass already enforced the bound).
    std::mutex gc_mutex;
  };
  auto st = std::make_shared<State>();
  st->base = ctx;
  st->base.diag = nullptr;   // per-request sinks, nothing global
  st->base.trace = nullptr;  // per-request traces when opts.trace
  st->opts = opts;

  return [st](const std::string& line) -> std::string {
    json::Value out;
    json::ParseResult pr = json::parse(line);
    if (!pr.ok) {
      out = error_response(json::Value::make_null(),
                           "request parse error: " + pr.error);
      return json::dump(out);
    }
    ArtifactCache* cache = st->base.cache;
    ArtifactStore* store = st->base.store;
    const ArtifactCacheStats c0 =
        cache != nullptr ? cache->stats() : ArtifactCacheStats{};
    const ArtifactStoreStats s0 =
        store != nullptr ? store->stats() : ArtifactStoreStats{};
    const json::Value* cmd = pr.value.find("cmd");
    if (cmd != nullptr && cmd->is_string() && cmd->string == "batch") {
      out = handle_batch(pr.value, st->base, st->opts.trace);
    } else {
      out = handle_eval(pr.value, st->base, st->opts.trace);
    }
    // Store lifecycle: any request that persisted new records may have
    // pushed the directory over the bound — GC before reporting the
    // deltas, so the response's counters include this request's
    // evictions.
    if (store != nullptr && st->opts.store_max_bytes > 0 &&
        store->stats().writes > s0.writes) {
      std::unique_lock<std::mutex> lock(st->gc_mutex, std::try_to_lock);
      if (lock.owns_lock()) store->gc(st->opts.store_max_bytes);
    }
    if (st->opts.cache_stats && cache != nullptr) {
      out.set("cache", cache_delta_json(c0, cache->stats(), store, s0));
    }
    return json::dump(out);
  };
}

}  // namespace vcoadc::core
