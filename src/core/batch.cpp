#include "core/batch.h"

#include <algorithm>

namespace vcoadc::core {

BatchRunner::BatchRunner(const BatchOptions& opts)
    : opts_(opts), threads_(resolve_threads(opts.threads)) {}

BatchRunner::BatchRunner(int threads) : BatchRunner(BatchOptions{threads}) {}

BatchRunner::BatchRunner(const ExecContext& ctx)
    : BatchRunner(BatchOptions{ctx.threads, ctx.seed}) {}

int BatchRunner::resolve_threads(int threads) {
  if (threads > 0) return threads;
  return static_cast<int>(util::ThreadPool::hardware_workers());
}

std::vector<RunResult> BatchRunner::simulate_batch(
    const AdcDesign& design, const SimulationOptions& sim, std::size_t n) {
  return map(n, [&](std::size_t, std::uint64_t seed) {
    // One workspace per worker thread: draws on the same worker reuse the
    // modulator's result/scratch buffers instead of reallocating per run.
    static thread_local msim::SimWorkspace ws;
    SimulationOptions s = sim;
    s.seed = seed;
    return design.simulate(s, ws);
  });
}

}  // namespace vcoadc::core
