// AdcSpec: the user-facing design point of the proposed ADC.
//
// A spec picks the technology node and the architecture knobs the paper
// calls out in Sec. 2.2 ("easy adaptations to different specifications"):
//   * more slices        -> higher effective quantizer resolution
//   * higher clock       -> wider signal bandwidth
//   * stronger loop gain -> higher SQNR
// Everything else (VCO centre frequency, Kvco, resistor network, noise and
// mismatch magnitudes) derives from the spec + TechNode, so the same spec
// ports across nodes - which is the scaling-compatibility experiment.
#pragma once

#include <string>
#include <vector>

#include "msim/sim_config.h"
#include "tech/tech_node.h"

namespace vcoadc::core {

/// Process/voltage/temperature corner. Defaults are the typical corner.
struct PvtCorner {
  /// Gate-delay multiplier: <1 fast (FF), >1 slow (SS). Scales the ring
  /// rate, edge slew, metastable aperture, buffer delay and jitter.
  double process = 1.0;
  /// Supply scale relative to the node's nominal VDD.
  double voltage = 1.0;
  double temperature_k = 300.0;
};

struct AdcSpec {
  double node_nm = 40;        ///< technology node (must be in TechDatabase)
  int num_slices = 8;         ///< N: slices == ring stages == DAC elements
  double fs_hz = 750e6;       ///< modulator clock
  double bandwidth_hz = 5e6;  ///< signal band for SNDR evaluation
  /// Loop gain in quantizer LSBs of feedback phase movement per clock per
  /// output LSB; 1.0 is the classic first-order operating point.
  double loop_gain = 1.0;
  /// Series high-res fragments per DAC resistor (Sec. 3.1 fragments).
  int dac_fragments = 1;
  /// VCO centre frequency as a multiple of fs. Default is deliberately far
  /// from a small rational so the sampled ring phase doesn't orbit-lock.
  double vco_center_over_fs = 2.724;
  /// Enable the device non-idealities (mismatch, offset, jitter, noise).
  bool with_nonidealities = true;
  /// Operating corner (typical by default).
  PvtCorner pvt;
  std::uint64_t seed = 1;

  /// The Table 3 operating points.
  static AdcSpec paper_40nm();
  static AdcSpec paper_180nm();

  /// Oversampling ratio fs / (2 BW).
  double osr() const { return fs_hz / (2.0 * bandwidth_hz); }

  /// Checks the spec for nonsense (unknown node, slices < 2, fs/BW out of
  /// range, ring rate beyond the node's capability, fragments < 1...).
  /// Returns human-readable problems; empty = valid.
  std::vector<std::string> validate() const;

  /// Resolves the technology node. An unknown node degrades to the
  /// nearest/interpolated node with a stderr warning (never aborts);
  /// validate() is the authoritative rejection path.
  tech::TechNode tech_node() const;

  /// Derives the behavioral simulator configuration for this spec.
  msim::SimConfig to_sim_config() const;

  std::string describe() const;
};

}  // namespace vcoadc::core
