// The evaluation service's request-dispatch loop, extracted from the CLI
// so the stdio and socket transports share one path.
//
// Layering (bottom-up):
//   * ServeHandler — one NDJSON request line in, one response line out
//     (no trailing newline). Must be thread-safe: the socket transport
//     calls it from concurrent per-connection threads.
//   * serve_stdio(in, out, handler) — the original `vcoadc serve` loop:
//     reads lines from `in`, writes one response line each to `out`. A
//     failed write (the reader closed the pipe) stops the loop cleanly
//     with clean == false instead of silently dropping responses; call
//     util::net::ignore_sigpipe() first so the failure is an error
//     return, not a fatal signal.
//   * serve_socket(listener, handler, opts) — accepts connections until
//     the stop flag, one thread per connection (blocking per-connection
//     reads would starve a fixed pool, so threads are spawned per
//     connection and reaped as they finish). Per-connection request
//     ordering is preserved (one serial loop per connection); a dead
//     client drops only its own connection. On stop the listener closes,
//     every in-flight request finishes and its response is written
//     (drain), then the connections close.
//   * make_eval_handler(ctx, opts) — the evaluation-service handler:
//     parses the request, dispatches core::evaluate / batch fan-out on
//     the one shared warm ExecContext, embeds per-request cache/store
//     deltas and traces, and triggers store GC after writing requests
//     when a size bound is configured.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "core/exec_context.h"
#include "util/net.h"

namespace vcoadc::core {

/// One request line -> one response line (no trailing '\n'). Thread-safe.
using ServeHandler = std::function<std::string(const std::string& line)>;

struct ServeStats {
  std::uint64_t requests = 0;            ///< non-blank lines dispatched
  std::uint64_t responses_written = 0;   ///< lines that reached the peer
  std::uint64_t write_failures = 0;      ///< responses the peer never got
  std::uint64_t connections_accepted = 0;  // socket transport only
  std::uint64_t connections_dropped = 0;   ///< closed on a write failure
};

struct ServeResult {
  /// False when the transport died under the service: the stdio sink
  /// broke, or the listener failed. A client disconnecting is NOT an
  /// error — socket serving stays clean and keeps the other connections.
  bool clean = true;
  std::string error;  ///< reason when !clean
  ServeStats stats;
};

/// Stdio transport: newline-delimited requests on `in`, one response line
/// each on `out` (nothing else is written — the stream stays pure NDJSON).
/// Stops at EOF, or cleanly (clean = false, error filled) when a write or
/// flush fails — the reader is gone, so continuing would drop responses
/// silently.
ServeResult serve_stdio(std::FILE* in, std::FILE* out,
                        const ServeHandler& handler);

struct SocketServeOptions {
  /// Poll slice for accept/read loops; the stop flag is honored within
  /// one slice.
  int poll_ms = 200;
  /// Graceful-shutdown flag (e.g. install_shutdown_signal_handlers()).
  /// Null = serve until the listener errors.
  const std::atomic<bool>* stop = nullptr;
};

/// Socket transport over an already-listening socket. Thread-per-
/// connection; requests on one connection are answered in order; the
/// handler runs concurrently across connections (the shared cache's
/// single-flight collapses duplicate stage builds).
ServeResult serve_socket(util::net::Listener& listener,
                         const ServeHandler& handler,
                         const SocketServeOptions& opts = {});

/// Installs SIGINT/SIGTERM handlers that set the returned flag (POSIX;
/// a no-op returning an always-false flag elsewhere). Idempotent. The
/// serve loops then drain in-flight requests and shut down cleanly.
const std::atomic<bool>* install_shutdown_signal_handlers();

struct EvalServeOptions {
  bool cache_stats = false;  ///< embed a per-request "cache" delta object
  bool trace = false;        ///< embed a per-request "trace" array
  /// Size bound for ctx.store: after any request that wrote records, the
  /// handler runs ArtifactStore::gc(store_max_bytes). 0 = unbounded.
  std::uint64_t store_max_bytes = 0;
};

/// Builds the evaluation-service handler over one shared warm context.
/// `ctx.cache`/`ctx.store` are shared by every request (that is the point
/// of serving); diagnostics and traces are request-local. The returned
/// handler is thread-safe and never throws.
ServeHandler make_eval_handler(const ExecContext& ctx,
                               const EvalServeOptions& opts);

}  // namespace vcoadc::core
