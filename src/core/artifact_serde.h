// Typed codecs between stage artifacts and the persistent store's
// canonical byte form (serde.h).
//
// One codec per cached stage artifact type. Each carries the type tag and
// format version that frame its records on disk (artifact_store.h): bump a
// codec's version whenever its field list or order changes and old records
// become version-skew misses instead of mis-decoding.
//
// Decoding is total: a malformed payload yields null (the flow treats it
// as a corrupt-miss and rebuilds), never UB — serde::Reader bounds every
// read, and decoders check ok() plus structural invariants (e.g. every
// flat instance's cell name resolves in the embedded library).
//
// Pointer policy: FlatInstance::cell points into a CellLibrary, so codecs
// that carry flat instances embed the set of referenced StdCells as a
// self-contained library, serialize cells by name, and re-point the
// decoded instances into that library (held alive via the artifact's
// `owner`). The embedded cells carry full StdCell data, so every field a
// downstream stage reads through the pointer round-trips bit-exactly.
#pragma once

#include <cstdint>
#include <memory>

#include "core/adc.h"
#include "core/flow.h"
#include "core/serde.h"

namespace vcoadc::core {

/// A stage-artifact codec: the on-disk identity (tag + version) plus the
/// canonical encode/decode pair.
template <typename T>
struct ArtifactCodec {
  const char* type_tag;
  std::uint32_t type_version;
  void (*encode)(const T&, serde::Writer&);
  /// Null on malformed bytes (caller treats it as a corrupt-miss).
  std::shared_ptr<const T> (*decode)(serde::Reader&);
};

const ArtifactCodec<netlist::CellLibrary>& cell_library_codec();
const ArtifactCodec<DesignBundle>& design_bundle_codec();
const ArtifactCodec<synth::FloorplanStageResult>& floorplan_codec();
const ArtifactCodec<synth::Placement>& placement_codec();
const ArtifactCodec<synth::SynthesisResult>& synthesis_codec();
const ArtifactCodec<RunResult>& run_result_codec();
/// The HdlEmit artifact stores the emitted Verilog *text* plus the library
/// it elaborates against; the parsed view is reconstructed by re-parsing
/// the text on decode (a text the parser refuses is a corrupt-miss), so
/// the stored bytes stay the flow's single source of truth.
const ArtifactCodec<HdlEmitResult>& hdl_emit_codec();
const ArtifactCodec<GateSimResult>& gate_sim_codec();

}  // namespace vcoadc::core
