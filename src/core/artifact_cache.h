// Content-addressed artifact cache for the stage-graph flow.
//
// Every stage output (cell library, netlist, floorplan, placement, routed
// layout, simulation run) is keyed by a content hash of *exactly the
// inputs that influence its bytes*: the relevant AdcSpec fields plus the
// relevant options sub-struct, canonically serialized (field tags +
// little-endian raw bytes) and digested with two independent FNV-1a lanes
// into a 128-bit key. Keys are therefore stable across processes and
// across machines of the same endianness; a cached artifact is the very
// object a fresh build would have produced, so cached re-runs are
// bit-identical to fresh ones by construction.
//
// The cache itself is bounded (LRU over ready entries), thread-safe, and
// single-flight: when N workers ask for the same missing key at once, one
// builds while the others wait on a shared future — a Monte-Carlo batch,
// a corner sweep and a datasheet run over the same spec build the shared
// prefix exactly once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <typeindex>

namespace vcoadc::core {

/// Canonical key-format version, hashed into every stage key and written
/// into every persistent-store record header. Bump when a stage's
/// serialization or semantics change incompatibly: old in-process cache
/// entries can then never alias new ones, and old on-disk records are
/// rejected as version-skew misses instead of being deserialized wrong.
inline constexpr std::uint64_t kKeyFormatVersion = 1;

/// 128-bit content-hash key (two independent FNV-1a-64 lanes).
struct CacheKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const CacheKey& o) const {
    return lo == o.lo && hi == o.hi;
  }
  bool operator!=(const CacheKey& o) const { return !(*this == o); }
  bool operator<(const CacheKey& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }

  std::string hex() const;
};

/// Canonical-serialization hasher. Feed fields in a fixed order with
/// explicit tags; the digest depends only on the fed bytes, never on
/// addresses or process state.
class KeyHasher {
 public:
  KeyHasher() = default;

  void bytes(const void* data, std::size_t n);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);  ///< bit pattern; -0.0 normalized to +0.0
  void boolean(bool v) { u64(v ? 1 : 0); }
  void str(std::string_view s);  ///< length-prefixed
  /// Field/stage tag: keeps adjacent fields from aliasing and gives every
  /// stage its own key namespace.
  void tag(std::string_view t) { str(t); }

  CacheKey digest() const { return {lo_, hi_}; }

 private:
  // FNV-1a offset bases: lane 0 is the standard basis, lane 1 a distinct
  // odd constant so the two 64-bit lanes decorrelate.
  std::uint64_t lo_ = 14695981039346656037ull;
  std::uint64_t hi_ = 0x9e3779b97f4a7c15ull;
};

struct ArtifactCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      ///< lookups that had to build
  std::uint64_t evictions = 0;
  std::size_t entries = 0;       ///< ready entries currently resident
  std::size_t bytes = 0;         ///< approximate resident artifact bytes
  double hit_rate() const {
    const double n = static_cast<double>(hits + misses);
    return n > 0 ? static_cast<double>(hits) / n : 0.0;
  }
};

/// Bounded, thread-safe, type-erased artifact store.
class ArtifactCache {
 public:
  explicit ArtifactCache(std::size_t max_entries = 512);

  /// Returns the cached artifact for `key`, building it with `build` on a
  /// miss. Concurrent callers with the same key share one build. `build`
  /// returns shared_ptr<const T>; `approx_bytes` (optional) sizes the entry
  /// for the stats. A key that resolves to a different artifact type is a
  /// programming error (stage tags make it unreachable); it is reported to
  /// stderr and the artifact is rebuilt uncached rather than aborting. A
  /// build that returns null (a stage that refused its input) is never
  /// stored: the failure is returned to this caller, waiters get null, and
  /// the next lookup rebuilds.
  template <typename T, typename BuildFn>
  std::shared_ptr<const T> get_or_build(
      const CacheKey& key, BuildFn&& build,
      std::function<std::size_t(const T&)> approx_bytes = {},
      bool* out_hit = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      if (it->second.type != std::type_index(typeid(T))) {
        std::fprintf(stderr,
                     "ArtifactCache: key %s maps to a different artifact "
                     "type (stage-tag bug); rebuilding uncached\n",
                     key.hex().c_str());
        lock.unlock();
        if (out_hit) *out_hit = false;
        return build();
      }
      ++hits_;
      if (out_hit) *out_hit = true;
      if (it->second.ready) touch(it);
      auto fut = it->second.fut;
      lock.unlock();
      // Either ready (get() returns immediately) or another thread is
      // building this key right now — wait for its result.
      return std::static_pointer_cast<const T>(fut.get());
    }
    ++misses_;
    if (out_hit) *out_hit = false;
    std::promise<std::shared_ptr<const void>> prom;
    {
      Slot slot;
      slot.type = std::type_index(typeid(T));
      slot.fut = prom.get_future().share();
      map_.emplace(key, std::move(slot));
    }
    lock.unlock();
    // Build outside the lock; same-key callers block on the shared future.
    std::shared_ptr<const T> value;
    try {
      value = build();
    } catch (...) {
      prom.set_exception(std::current_exception());
      lock.lock();
      map_.erase(key);
      throw;
    }
    const std::size_t nbytes =
        (approx_bytes && value) ? approx_bytes(*value) : sizeof(T);
    prom.set_value(std::static_pointer_cast<const void>(value));
    lock.lock();
    if (value == nullptr) {
      // Failed build (stage refused its input): unblock same-key waiters
      // with the null, but never let the failure become a cached artifact.
      map_.erase(key);
      return nullptr;
    }
    auto it2 = map_.find(key);
    if (it2 != map_.end()) {
      it2->second.ready = true;
      it2->second.bytes = nbytes;
      lru_.push_front(key);
      it2->second.lru = lru_.begin();
      bytes_ += nbytes;
      evict_over_capacity();
    }
    return value;
  }

  ArtifactCacheStats stats() const;
  std::size_t max_entries() const { return max_entries_; }
  void clear();

 private:
  struct Slot {
    std::shared_future<std::shared_ptr<const void>> fut;
    std::type_index type = std::type_index(typeid(void));
    std::size_t bytes = 0;
    bool ready = false;
    std::list<CacheKey>::iterator lru;
  };

  void touch(std::map<CacheKey, Slot>::iterator it);
  void evict_over_capacity();  ///< caller holds mutex_

  mutable std::mutex mutex_;
  std::map<CacheKey, Slot> map_;
  std::list<CacheKey> lru_;  ///< front = most recently used, ready only
  std::size_t max_entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::size_t bytes_ = 0;
};

/// The process-wide cache the flow uses by default (ExecContext::cache's
/// default target). Bounded; safe to share across threads and drivers.
ArtifactCache& default_artifact_cache();

}  // namespace vcoadc::core
