#include "core/artifact_cache.h"

#include <cstring>

namespace vcoadc::core {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}

std::string CacheKey::hex() const {
  char buf[36];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

void KeyHasher::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    lo_ = (lo_ ^ p[i]) * kFnvPrime;
    // Lane 1 folds the byte position in as well, so the two lanes stay
    // decorrelated even on inputs FNV is weak against.
    hi_ = (hi_ ^ (p[i] + 0x9eu) ^ (i & 0xffu)) * kFnvPrime;
  }
}

void KeyHasher::u64(std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  bytes(b, 8);
}

void KeyHasher::f64(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0 and +0.0
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void KeyHasher::str(std::string_view s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

ArtifactCache::ArtifactCache(std::size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

void ArtifactCache::touch(std::map<CacheKey, Slot>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it->second.lru);
}

void ArtifactCache::evict_over_capacity() {
  std::size_t ready = lru_.size();
  while (ready > max_entries_) {
    const CacheKey victim = lru_.back();
    lru_.pop_back();
    auto it = map_.find(victim);
    if (it != map_.end()) {
      bytes_ -= it->second.bytes;
      map_.erase(it);
    }
    ++evictions_;
    --ready;
  }
}

ArtifactCacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ArtifactCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

void ArtifactCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  // In-flight builds keep their slots: erasing a not-yet-ready slot would
  // orphan the builder's map_.find on completion (harmless) but also let a
  // second builder start — allowed, since both produce identical bytes.
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second.ready) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  lru_.clear();
  bytes_ = 0;
}

ArtifactCache& default_artifact_cache() {
  static ArtifactCache cache(512);
  return cache;
}

}  // namespace vcoadc::core
