// AdcDesign: the top-level object of the library.
//
// From one AdcSpec it derives all three views the paper works with:
//   * a behavioral simulation model (msim) -> waveforms, spectra, SNDR
//   * a gate-level netlist (netlist)       -> Verilog, gate counts, power
//   * a synthesized layout (synth)         -> floorplan, area, DRC
// plus the combined metrics of Table 3 (power breakdown, Walden FOM).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/adc_spec.h"
#include "core/exec_context.h"
#include "core/power_model.h"
#include "dsp/spectrum.h"
#include "msim/batched_modulator.h"
#include "msim/modulator.h"
#include "netlist/cell_library.h"
#include "netlist/netlist.h"
#include "synth/synthesis_flow.h"

namespace vcoadc::core {

struct SimulationOptions {
  std::size_t n_samples = 1 << 16;
  /// Input tone amplitude in dB below full scale. -3 dBFS keeps clear of
  /// the first-order overload boundary (-20*log10(1 - 2/N) below FS).
  double amplitude_dbfs = -3.0;
  double fin_target_hz = 1e6;    ///< snapped to a coherent odd-cycle bin
  msim::ComparatorKind comparator = msim::ComparatorKind::kNor3;
  msim::DacKind dac = msim::DacKind::kResistor;
  bool record_bits = false;
  /// Wire capacitance fed to the power model (from a synthesis run); 0 ok.
  double wire_cap_f = 0.0;
  /// When nonzero, overrides AdcSpec::seed for this run. Mismatch, noise and
  /// jitter draws only affect the behavioral model, so one AdcDesign (cell
  /// library + netlist, which are seed-independent) can be re-simulated with
  /// fresh draws — this is the Monte-Carlo hot path.
  std::uint64_t seed = 0;
  /// When set, overrides AdcSpec::pvt for this run. The netlist is
  /// corner-independent, so PVT sweeps also share one AdcDesign.
  std::optional<PvtCorner> pvt;
};

struct RunResult {
  double fin_hz = 0;
  double amplitude_v = 0;       ///< differential input amplitude
  double full_scale_v = 0;
  msim::ModulatorResult mod;
  dsp::Spectrum spectrum;
  dsp::SndrReport sndr;
  dsp::SlopeFit shaping;        ///< fitted noise slope above the band edge
  std::vector<dsp::IdleTone> idle_tones;  ///< in-band spur scan
  PowerBreakdown power;
  double fom_fj = 0;            ///< Walden FOM [fJ/conv-step]
};

/// Everything Table 3 needs for one node: simulation + layout.
struct NodeReport {
  RunResult run;
  synth::SynthesisResult synthesis;
  double area_mm2 = 0;
  /// True when every stage completed; false means a stage rejected its
  /// input (diagnostics were reported through the ExecContext) and the
  /// other fields are default-constructed.
  bool complete = false;
};

/// Thin façade over the stage graph (core/flow.h): construction pulls the
/// TechLibrary and Netlist stage artifacts from the ExecContext's shared
/// cache (so two designs of the same spec share one library + netlist),
/// and synthesize()/full_report() run the Floorplan/Placement/Route/
/// SimRun/Report stages through the same graph.
class AdcDesign {
 public:
  explicit AdcDesign(const AdcSpec& spec);
  /// As above with an explicit execution context (thread budget, trace
  /// sink, artifact cache) threaded into every stage this design runs.
  /// A spec the validators reject does NOT abort: the failure is reported
  /// through the context (ExecContext::diag, stderr when unset) and the
  /// design is left unbuilt — check ok() before simulating/synthesizing.
  AdcDesign(const AdcSpec& spec, const ExecContext& ctx);

  /// True when the spec validated and the library + netlist were built.
  /// When false, simulate()/synthesize()/full_report() return empty
  /// results (and report a diagnostic) instead of crashing, and
  /// library()/netlist() must not be called.
  bool ok() const { return lib_ != nullptr && design_ != nullptr; }

  /// Runs the behavioral model and the full spectrum analysis.
  RunResult simulate(const SimulationOptions& opts = {}) const;

  /// Same, but the modulator's output/scratch buffers come from `ws` and are
  /// reused across calls. Batch drivers hand each worker thread one
  /// workspace so repeated draws do not allocate in the sim hot loop; see
  /// msim::SimWorkspace for the (single-thread) ownership contract. Results
  /// are bit-identical to the workspace-free overload.
  RunResult simulate(const SimulationOptions& opts,
                     msim::SimWorkspace& ws) const;

  /// Simulates one Monte-Carlo lane group: seeds[k] plays the role of
  /// opts.seed for result k (0 = keep the spec's seed). When the batched
  /// SoA engine supports the configuration (resistor DAC, lane width 2/4/8)
  /// all lanes run in SIMD lockstep through one msim::BatchedModulator;
  /// otherwise each seed runs through the scalar path. Either way every
  /// RunResult is bit-identical to simulate() with that seed — the batched
  /// kernel's per-lane IEEE operation sequence matches the scalar
  /// modulator's (see util/simd.h), and the analysis stack is shared.
  std::vector<RunResult> simulate_batch(const SimulationOptions& opts,
                                        const std::vector<std::uint64_t>& seeds,
                                        msim::BatchedWorkspace& ws) const;

  /// Heterogeneous lane group: result k is bit-identical to
  /// simulate(opts_list[k]). Lanes may differ in seed, PVT corner,
  /// amplitude and wire load (PVT moves supply/VCO/noise *values* but not
  /// the clock structure, so corner sweeps batch cleanly); they must agree
  /// on n_samples, fin_target_hz, comparator, dac and record_bits — the
  /// lanes share one input-sample schedule and one netlist. Option lists
  /// the batched engine cannot take (disagreeing options, unsupported
  /// width, current-steering DAC, or a PVT split that flips a noise-source
  /// on/off flag across lanes) run through the scalar path instead.
  std::vector<RunResult> simulate_batch(
      const std::vector<SimulationOptions>& opts_list,
      msim::BatchedWorkspace& ws) const;

  /// Runs the Fig. 9 layout-synthesis flow on the generated netlist.
  synth::SynthesisResult synthesize(
      const synth::SynthesisOptions& opts = {}) const;

  /// Synthesis + simulation with the layout's wire load folded into the
  /// power model — the "post-layout" result of the paper's Sec. 4.
  NodeReport full_report(const SimulationOptions& opts = {}) const;

  const AdcSpec& spec() const { return spec_; }
  const ExecContext& exec() const { return ctx_; }
  const netlist::CellLibrary& library() const { return *lib_; }
  const netlist::Design& netlist() const { return *design_; }

 private:
  AdcSpec spec_;
  ExecContext ctx_;
  // Cache-shared stage artifacts; the design holds a raw pointer into the
  // library, so both are kept alive together.
  std::shared_ptr<const netlist::CellLibrary> lib_;
  std::shared_ptr<const netlist::Design> design_;
};

}  // namespace vcoadc::core
