// Digital back end of the ADC (Sec. 2.1): "with subsequent low pass
// filtering and decimating in digital domain, the effect of quantization to
// the in-band signal can be suppressed."
//
// A CIC decimator takes the modulator stream down by most of the OSR, a
// droop-compensating FIR flattens the CIC's sinc^N passband, and a final
// half-rate FIR decimation lands the output at ~2x the signal bandwidth.
// The whole back end is plain digital logic - on silicon it would go
// through the same digital synthesis flow as the rest of the ADC.
#pragma once

#include <cstddef>
#include <vector>

#include "core/adc_spec.h"

namespace vcoadc::core {

struct BackendConfig {
  int cic_order = 3;
  /// CIC rate change; 0 = derived from the spec's OSR (≈ OSR/4).
  int cic_rate = 0;
  int fir_rate = 4;
  std::size_t fir_taps = 127;
  bool droop_compensation = true;
  std::size_t comp_taps = 15;
};

/// Designs a linear-phase FIR that equalizes the CIC's sinc^N droop over
/// [0, passband_frac] of the post-CIC rate (least-squares frequency
/// sampling). Odd tap count; unity DC gain.
std::vector<double> design_cic_compensator(int cic_order, int cic_rate,
                                           std::size_t taps,
                                           double passband_frac = 0.2);

class DigitalBackend {
 public:
  DigitalBackend(const AdcSpec& spec, const BackendConfig& cfg = {});

  /// Filters and decimates a modulator output stream.
  std::vector<double> process(const std::vector<double>& modulator_out) const;

  int total_decimation() const { return cic_rate_ * cfg_.fir_rate; }
  double output_rate_hz() const { return fs_hz_ / total_decimation(); }
  int cic_rate() const { return cic_rate_; }
  const std::vector<double>& compensator_taps() const { return comp_; }

 private:
  BackendConfig cfg_;
  double fs_hz_;
  int cic_rate_;
  std::vector<double> comp_;  ///< droop compensator (empty if disabled)
};

}  // namespace vcoadc::core
