#include "core/artifact_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <vector>

#include "core/serde.h"
#include "util/strings.h"

#if defined(_WIN32)
#include <process.h>
#define VCOADC_GETPID _getpid
#else
#include <unistd.h>
#define VCOADC_GETPID ::getpid
#endif

namespace vcoadc::core {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x44414356u;  // "VCAD" little-endian
constexpr std::uint32_t kContainerVersion = 1;

// Framing overhead without the type tag's characters: magic + container
// version + key-format version + key echo + tag length + type version +
// payload size + trailing checksum.
constexpr std::size_t kFixedFrameBytes = 4 + 4 + 8 + 16 + 8 + 4 + 8 + 8;

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Reads a whole file; false on open/read failure.
bool read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  if (len < 0) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<std::size_t>(len));
  const std::size_t got =
      len > 0 ? std::fread(out->data(), 1, out->size(), f) : 0;
  std::fclose(f);
  return got == out->size();
}

bool write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t put =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  return put == bytes.size() && flushed;
}

}  // namespace

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  ok_ = !ec && fs::is_directory(dir_, ec) && !ec;
  // Startup sweep: tmp files are orphans of writers killed mid-save (the
  // write-then-rename window). Age-gated, so a store opened next to live
  // writer processes never touches their in-flight files.
  if (ok_) sweep_tmp();
}

void ArtifactStore::warn(util::DiagSink* diag, const std::string& item,
                         std::string reason) const {
  if (diag != nullptr) {
    diag->add(util::Diagnostic{util::Severity::kWarning, "artifact_store",
                               item, std::move(reason)});
  }
}

std::string ArtifactStore::path_for(const CacheKey& key) const {
  const std::string hex = key.hex();
  return dir_ + "/" + hex.substr(0, 2) + "/" + hex + ".art";
}

bool ArtifactStore::save(const CacheKey& key, std::string_view type_tag,
                         std::uint32_t type_version,
                         const std::vector<std::uint8_t>& payload,
                         util::DiagSink* diag) {
  const std::string final_path = path_for(key);
  auto fail = [&](std::string reason) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.write_failures;
    }
    warn(diag, key.hex(), std::move(reason));
    return false;
  };
  if (!ok_) return fail("store root is unusable: " + dir_);

  serde::Writer w;
  w.u32(kMagic);
  w.u32(kContainerVersion);
  w.u64(kKeyFormatVersion);
  w.u64(key.lo);
  w.u64(key.hi);
  w.str(type_tag);
  w.u32(type_version);
  w.u64(payload.size());
  std::vector<std::uint8_t> record = w.take();
  record.insert(record.end(), payload.begin(), payload.end());
  {
    serde::Writer trailer;
    trailer.u64(fnv1a64(record.data(), record.size()));
    const auto& t = trailer.bytes();
    record.insert(record.end(), t.begin(), t.end());
  }

  std::uint64_t serial = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    serial = ++tmp_counter_;
  }
  // Unique temp name per (process, attempt): concurrent writers never
  // share a temp file, and the final rename is atomic, so a reader sees
  // either a complete old record or a complete new one.
  const std::string tmp_path = util::format(
      "%s.tmp.%d.%llu", final_path.c_str(),
      static_cast<int>(VCOADC_GETPID()),
      static_cast<unsigned long long>(serial));

  std::error_code ec;
  fs::create_directories(fs::path(final_path).parent_path(), ec);
  if (ec) return fail("cannot create shard directory: " + ec.message());
  if (!write_file(tmp_path, record)) {
    fs::remove(tmp_path, ec);
    return fail("write failed: " + tmp_path);
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return fail("rename failed: " + ec.message());
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.writes;
    stats_.bytes_written += record.size();
  }
  return true;
}

bool ArtifactStore::load(const CacheKey& key, std::string_view type_tag,
                         std::uint32_t type_version,
                         std::vector<std::uint8_t>* payload,
                         util::DiagSink* diag) {
  enum class Miss { kAbsent, kCorrupt, kVersionSkew };
  auto miss = [&](Miss why, std::string reason) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      if (why == Miss::kAbsent) ++stats_.absent;
      if (why == Miss::kCorrupt) ++stats_.corrupt;
      if (why == Miss::kVersionSkew) ++stats_.version_skew;
    }
    if (why != Miss::kAbsent) warn(diag, key.hex(), std::move(reason));
    return false;
  };

  std::vector<std::uint8_t> record;
  if (!ok_ || !read_file(path_for(key), &record)) {
    return miss(Miss::kAbsent, {});
  }
  if (record.size() < kFixedFrameBytes) {
    return miss(Miss::kCorrupt, "record truncated below frame size");
  }
  // Checksum first: nothing in a corrupted record can be trusted, not
  // even its version fields.
  serde::Reader trailer(record.data() + record.size() - 8, 8);
  if (trailer.u64() != fnv1a64(record.data(), record.size() - 8)) {
    return miss(Miss::kCorrupt, "checksum mismatch (corrupt record)");
  }
  serde::Reader r(record.data(), record.size() - 8);
  if (r.u32() != kMagic) {
    return miss(Miss::kCorrupt, "bad magic (not an artifact record)");
  }
  if (const std::uint32_t v = r.u32(); v != kContainerVersion) {
    return miss(Miss::kVersionSkew,
                util::format("container version %u, want %u", v,
                             kContainerVersion));
  }
  if (const std::uint64_t v = r.u64(); v != kKeyFormatVersion) {
    return miss(Miss::kVersionSkew,
                util::format("key format version %llu, want %llu",
                             static_cast<unsigned long long>(v),
                             static_cast<unsigned long long>(
                                 kKeyFormatVersion)));
  }
  if (r.u64() != key.lo || r.u64() != key.hi) {
    return miss(Miss::kCorrupt, "key echo mismatch (misfiled record)");
  }
  if (const std::string tag = r.str(); tag != type_tag) {
    return miss(Miss::kCorrupt,
                "type tag '" + tag + "' where '" + std::string(type_tag) +
                    "' was expected (stage-tag bug?)");
  }
  if (const std::uint32_t v = r.u32(); v != type_version) {
    return miss(Miss::kVersionSkew,
                util::format("type format version %u, want %u", v,
                             type_version));
  }
  const std::uint64_t n = r.u64();
  if (!r.ok() || n != r.remaining()) {
    return miss(Miss::kCorrupt, "payload size disagrees with record size");
  }
  payload->assign(record.end() - 8 - static_cast<std::ptrdiff_t>(n),
                  record.end() - 8);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    stats_.bytes_read += record.size();
    // Remembered so a later note_decode_failure can take these bytes
    // back out of bytes_read: a codec-rejected record was never served.
    hit_bytes_[key] = record.size();
  }
  return true;
}

void ArtifactStore::note_decode_failure(const CacheKey& key,
                                        std::string_view type_tag,
                                        util::DiagSink* diag) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stats_.hits > 0) --stats_.hits;
    ++stats_.misses;
    ++stats_.corrupt;
    // The demoted hit's bytes were never data actually served — undo the
    // bytes_read the load charged, so byte counters never over-report.
    // (The miss-taxonomy invariant misses == absent + corrupt +
    // version_skew is preserved: the demotion increments both sides.)
    const auto it = hit_bytes_.find(key);
    if (it != hit_bytes_.end()) {
      stats_.bytes_read -= std::min(stats_.bytes_read, it->second);
      hit_bytes_.erase(it);
    }
  }
  warn(diag, key.hex(),
       "payload failed to decode as '" + std::string(type_tag) +
           "'; rebuilding");
}

std::uint64_t ArtifactStore::sweep_tmp(double max_age_s,
                                       util::DiagSink* diag) {
  if (!ok_) return 0;
  std::error_code ec;
  const auto now = fs::file_time_type::clock::now();
  std::uint64_t swept = 0;
  for (fs::directory_iterator shard(dir_, ec), end;
       !ec && shard != end; shard.increment(ec)) {
    std::error_code sec;
    if (!shard->is_directory(sec) || sec) continue;
    for (fs::directory_iterator it(shard->path(), sec), send;
         !sec && it != send; it.increment(sec)) {
      const std::string name = it->path().filename().string();
      if (name.find(".tmp.") == std::string::npos) continue;
      std::error_code fec;
      const auto mtime = fs::last_write_time(it->path(), fec);
      if (fec) continue;  // vanished mid-scan (a writer just renamed it)
      const double age_s =
          std::chrono::duration<double>(now - mtime).count();
      if (age_s < max_age_s) continue;  // a live writer's in-flight file
      if (fs::remove(it->path(), fec) && !fec) {
        ++swept;
      } else if (fec) {
        warn(diag, name, "tmp sweep could not remove: " + fec.message());
      }
    }
  }
  if (swept > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.tmp_swept += swept;
  }
  return swept;
}

ArtifactStore::GcResult ArtifactStore::gc(std::uint64_t max_bytes,
                                          util::DiagSink* diag) {
  GcResult res;
  if (!ok_) return res;
  res.tmp_swept = sweep_tmp(kDefaultTmpMaxAgeS, diag);

  // Scan every shard for records, oldest-mtime-first eviction order. The
  // scan is lock-free over the filesystem: records written concurrently
  // with it may be missed this pass, so the bound is exact when quiescent
  // and converges under churn (the serve loop re-runs gc after writes).
  struct Rec {
    std::string path;
    std::uint64_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<Rec> recs;
  std::error_code ec;
  for (fs::directory_iterator shard(dir_, ec), end;
       !ec && shard != end; shard.increment(ec)) {
    std::error_code sec;
    if (!shard->is_directory(sec) || sec) continue;
    for (fs::directory_iterator it(shard->path(), sec), send;
         !sec && it != send; it.increment(sec)) {
      if (it->path().extension() != ".art") continue;
      std::error_code fec;
      Rec r;
      r.path = it->path().string();
      r.size = it->file_size(fec);
      if (fec) continue;
      r.mtime = fs::last_write_time(it->path(), fec);
      if (fec) continue;
      res.bytes_before += r.size;
      recs.push_back(std::move(r));
    }
  }
  std::sort(recs.begin(), recs.end(), [](const Rec& a, const Rec& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
  });

  std::uint64_t total = res.bytes_before;
  std::uint64_t freed = 0;
  for (const Rec& r : recs) {
    if (total <= max_bytes) break;
    std::error_code fec;
    // unlink, not truncate: a reader holding the record open keeps its
    // complete bytes (POSIX unlink semantics), so no load is ever torn
    // mid-read; the next opener gets a clean absent-miss and rebuilds.
    if (fs::remove(r.path, fec) && !fec) {
      total -= r.size;
      freed += r.size;
      ++res.evicted;
    } else if (fec) {
      warn(diag, r.path, "gc could not evict: " + fec.message());
    }
  }
  res.bytes_after = total;

  // Compaction: shard directories whose every record was evicted are
  // removed. A concurrent writer that loses the (benign) race re-creates
  // its shard in save(); at worst that one save reports write_failure
  // and the stage keeps its built artifact.
  for (fs::directory_iterator shard(dir_, ec), end;
       !ec && shard != end; shard.increment(ec)) {
    std::error_code sec;
    if (!shard->is_directory(sec) || sec) continue;
    if (fs::is_empty(shard->path(), sec) && !sec) {
      fs::remove(shard->path(), sec);
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.evictions += res.evicted;
    stats_.gc_bytes_reclaimed += freed;
  }
  return res;
}

ArtifactStoreStats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace vcoadc::core
